#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

/// \file verdict.hpp
/// The result type of the online property monitors (check/).
///
/// Every paper property is either a safety property (uniform agreement,
/// validity, uniform integrity — a violation is a finite witness and the
/// verdict is final) or an eventual property (strong completeness, eventual
/// weak/strong accuracy, leader agreement/stability, the ◇C coupling clause
/// — on a finite run the monitor reports the start of the current holding
/// suffix, and the caller decides with how much margin before the end the
/// property must have stabilized).

namespace ecfd::check {

enum class VerdictState {
  kHolding,   ///< currently satisfied; `holds_since` marks the suffix start
  kPending,   ///< eventual property currently violated — may still stabilize
  kViolated,  ///< safety property irrecoverably violated at `violated_at`
};

/// One property's verdict at query time.
struct Verdict {
  std::string property;  ///< e.g. "fd.strong_completeness"
  VerdictState state{VerdictState::kHolding};
  bool eventual{true};   ///< eventual (suffix-based) vs safety (final)
  bool required{true};   ///< enforced for the detector class under test
  TimeUs holds_since{0};           ///< start of the holding suffix (kHolding)
  TimeUs violated_at{kTimeNever};  ///< last (eventual) / first (safety) violation
  std::string witness;             ///< human-readable violating witness
  std::int64_t violations{0};      ///< number of violating observations

  [[nodiscard]] std::string to_string() const;
};

/// Final classification of an eventual property on a finished run: it must
/// be holding and have stabilized at least `margin` before `end`. Safety
/// properties just must not be violated.
[[nodiscard]] bool satisfied(const Verdict& v, TimeUs end, DurUs margin);

/// The verdicts in \p all that are required and not satisfied.
[[nodiscard]] std::vector<Verdict> failing(const std::vector<Verdict>& all,
                                           TimeUs end, DurUs margin);

const char* to_string(VerdictState s);

}  // namespace ecfd::check
