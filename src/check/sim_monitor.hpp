#pragma once

#include <memory>
#include <vector>

#include <map>

#include "check/consensus_monitor.hpp"
#include "check/fd_monitor.hpp"
#include "consensus/harness.hpp"
#include "net/system.hpp"
#include "obs/recorder.hpp"

/// \file sim_monitor.hpp
/// Glue that attaches the online property monitors to a running simulation.
///
/// A SimMonitor samples every attached failure-detector oracle on a fixed
/// cadence through the system scheduler (read-only — it sends no messages
/// and perturbs nothing but the event count) and registers decision
/// callbacks on the consensus protocols. It is measurement machinery in the
/// same spirit as fd/probe.hpp, but evaluates properties online instead of
/// retaining the full timeline.
///
/// The monitor outlives the System it observed: after the run, verdicts()
/// keeps answering from the folded state.

namespace ecfd::check {

class SimMonitor {
 public:
  struct Config {
    DurUs period{msec(10)};  ///< sampling cadence
    bool require_strong_accuracy{false};
    bool check_suspect{true};
    bool check_leader{true};
  };

  explicit SimMonitor(Config cfg) : cfg_(cfg) {}

  /// Binds to a system. \p correct = processes that never crash during the
  /// run (from the fault plan); \p until = when sampling stops (and the
  /// consensus termination deadline unless attach_consensus overrides it).
  void install(System& sys, const ProcessSet& correct, TimeUs until);

  /// Attaches process \p p's oracles (either may be null).
  void attach_fd(ProcessId p, const SuspectOracle* s, const LeaderOracle* l);

  /// Scenario self-check: declares that process \p p's local clock must
  /// never stray more than \p bound from true simulation time. Each
  /// sampling tick compares host(p).now() against the scheduler clock and
  /// latches a "scenario.skew_bound" safety violation on excess — this is
  /// how a skew *injector* that breaks its own declared envelope gets
  /// caught (the well-formed injector clamps, see
  /// ProcessHost::set_clock_skew). Re-registering keeps the loosest bound
  /// (each window's clamp still enforces its own tighter value). The
  /// verdict only exists once at least one bound is declared, so runs
  /// without skew keep their historical verdict lists and digests.
  void register_skew_bound(ProcessId p, DurUs bound);

  /// Attaches consensus protocols (decision callbacks) and the proposals
  /// for the validity check.
  void attach_consensus(
      const std::vector<consensus::ConsensusProtocol*>& protocols,
      const std::vector<consensus::Value>& proposals, TimeUs deadline);

  /// Arms the sampling timer; call after install()/attach_fd().
  void start();

  /// Routes verdict-state transitions into \p rec's system ring (host -1)
  /// as kVerdict events: a = new VerdictState ordinal, label = interned
  /// property name. Attach the same recorder to the System so the monitor's
  /// verdict flips interleave with the per-host protocol events in the
  /// merged timeline. nullptr detaches.
  void set_recorder(obs::Recorder* rec) { recorder_ = rec; }

  /// One-call setup from a harness instrumentation hook: install, attach
  /// every oracle and protocol, start sampling until \p horizon.
  void install_from(const consensus::HarnessInstruments& inst,
                    TimeUs horizon);

  /// All verdicts (FD + consensus) as of time \p now.
  [[nodiscard]] std::vector<Verdict> verdicts(TimeUs now) const;

  /// Required-and-failing verdicts on a finished run ending at \p end,
  /// with eventual properties owing `margin` of stability.
  [[nodiscard]] std::vector<Verdict> violations(TimeUs end,
                                                DurUs margin) const;

  [[nodiscard]] const FdPropertyMonitor* fd() const { return fd_.get(); }
  [[nodiscard]] const ConsensusMonitor* consensus() const {
    return consensus_.get();
  }
  /// Mutable access for direct decision reporting (mutation tests route a
  /// buggy engine's double-report past the idempotent decide()).
  [[nodiscard]] ConsensusMonitor* mutable_consensus() {
    return consensus_.get();
  }

 private:
  void tick();
  void record_verdict_transitions(TimeUs now);

  Config cfg_;
  System* sys_{nullptr};
  obs::Recorder* recorder_{nullptr};
  std::map<std::string, VerdictState> last_verdict_state_;
  TimeUs until_{0};
  std::map<ProcessId, DurUs> skew_bounds_;
  Verdict skew_verdict_;  ///< meaningful once !skew_bounds_.empty()
  std::vector<const SuspectOracle*> suspects_;
  std::vector<const LeaderOracle*> leaders_;
  std::unique_ptr<FdPropertyMonitor> fd_;
  std::unique_ptr<ConsensusMonitor> consensus_;
};

}  // namespace ecfd::check
