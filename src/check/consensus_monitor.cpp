#include "check/consensus_monitor.hpp"

#include <cassert>

namespace ecfd::check {

namespace {

std::string pname(ProcessId p) { return "p" + std::to_string(p); }

}  // namespace

Verdict ConsensusMonitor::SafetyState::verdict(const char* name,
                                               TimeUs holds_since) const {
  Verdict v;
  v.property = name;
  v.eventual = false;
  v.required = true;
  if (violated) {
    v.state = VerdictState::kViolated;
    v.violated_at = at;
    v.witness = witness;
    v.violations = 1;
  } else {
    v.state = VerdictState::kHolding;
    v.holds_since = holds_since;
  }
  return v;
}

ConsensusMonitor::ConsensusMonitor(Config cfg) : cfg_(std::move(cfg)) {
  assert(cfg_.n > 0);
  first_.resize(static_cast<std::size_t>(cfg_.n));
}

void ConsensusMonitor::note_proposal(ProcessId p, consensus::Value v,
                                     TimeUs) {
  assert(p >= 0 && p < cfg_.n);
  (void)p;
  proposed_.insert(v);
}

void ConsensusMonitor::note_decision(ProcessId p, consensus::Value v,
                                     int round, TimeUs at) {
  assert(p >= 0 && p < cfg_.n);
  (void)round;
  ++decisions_;
  auto& f = first_[static_cast<std::size_t>(p)];

  // Uniform integrity: every process decides at most once.
  if (f.decided) {
    if (f.value != v) {
      integrity_.violate(at, pname(p) + " decided twice: " +
                                 std::to_string(f.value) + " then " +
                                 std::to_string(v));
    } else {
      integrity_.violate(at, pname(p) + " re-decided value " +
                                 std::to_string(v));
    }
    return;
  }
  f.decided = true;
  f.value = v;
  f.at = at;
  if (cfg_.correct.contains(p)) {
    last_correct_decision_ = std::max(last_correct_decision_, at);
  }

  // Validity: the decided value was proposed by some process.
  if (proposed_.count(v) == 0) {
    validity_.violate(at, pname(p) + " decided unproposed value " +
                              std::to_string(v));
  }

  // Uniform agreement: no two processes (correct or faulty) decide
  // differently.
  if (!agreed_.has_value()) {
    agreed_ = v;
    agreed_by_ = p;
  } else if (*agreed_ != v) {
    agreement_.violate(at, pname(p) + " decided " + std::to_string(v) +
                               " but " + pname(agreed_by_) + " decided " +
                               std::to_string(*agreed_));
  }
}

void ConsensusMonitor::attach(
    const std::vector<consensus::ConsensusProtocol*>& protocols) {
  for (ProcessId p = 0; p < static_cast<ProcessId>(protocols.size()); ++p) {
    consensus::ConsensusProtocol* proto =
        protocols[static_cast<std::size_t>(p)];
    if (proto == nullptr) continue;
    proto->set_on_decide([this, p](const consensus::Decision& d) {
      note_decision(p, d.value, d.round, d.at);
    });
  }
}

std::vector<Verdict> ConsensusMonitor::verdicts(TimeUs now) const {
  std::vector<Verdict> out;
  out.push_back(agreement_.verdict("consensus.uniform_agreement", 0));
  out.push_back(validity_.verdict("consensus.validity", 0));
  out.push_back(integrity_.verdict("consensus.uniform_integrity", 0));

  // Termination by deadline: every correct process has decided.
  Verdict term;
  term.property = "consensus.termination";
  term.eventual = false;
  term.required = true;
  ProcessSet undecided(cfg_.n);
  for (ProcessId p : cfg_.correct.members()) {
    if (!first_[static_cast<std::size_t>(p)].decided) undecided.add(p);
  }
  if (undecided.empty()) {
    term.state = VerdictState::kHolding;
    term.holds_since = last_correct_decision_;
  } else if (now >= cfg_.deadline) {
    term.state = VerdictState::kViolated;
    term.violated_at = cfg_.deadline;
    term.violations = undecided.size();
    term.witness = "correct " + undecided.to_string() +
                   " undecided at deadline";
  } else {
    term.state = VerdictState::kPending;
    term.witness = "correct " + undecided.to_string() + " undecided";
  }
  out.push_back(term);
  return out;
}

}  // namespace ecfd::check
