#include "check/mutants.hpp"

#include "net/protocol_ids.hpp"

namespace ecfd::check {

// --- failure-detector mutants ------------------------------------------

FlappingLeaderFd::FlappingLeaderFd(Env& env, DurUs period)
    : Protocol(env, protocol_ids::kCheckMutantFd), period_(period) {}

ProcessSet FlappingLeaderFd::suspected() const {
  return ProcessSet(env_.n());
}

ProcessId FlappingLeaderFd::trusted() const {
  return static_cast<ProcessId>((env_.now() / period_) %
                                static_cast<TimeUs>(env_.n()));
}

SlanderFd::SlanderFd(Env& env)
    : Protocol(env, protocol_ids::kCheckMutantFd) {}

ProcessSet SlanderFd::suspected() const {
  ProcessSet s = ProcessSet::full(env_.n());
  s.remove(env_.self());
  return s;
}

BlindFd::BlindFd(Env& env) : Protocol(env, protocol_ids::kCheckMutantFd) {}

ProcessSet BlindFd::suspected() const { return ProcessSet(env_.n()); }

CoupledViolationFd::CoupledViolationFd(Env& env)
    : Protocol(env, protocol_ids::kCheckMutantFd) {}

ProcessSet CoupledViolationFd::suspected() const {
  ProcessSet s(env_.n());
  s.add(0);
  return s;
}

// --- consensus mutants --------------------------------------------------

SplitBrainConsensus::SplitBrainConsensus(Env& env)
    : ConsensusProtocol(env, protocol_ids::kCheckMutantConsensus) {}

void SplitBrainConsensus::propose(consensus::Value v) { decide(v, 1); }

InventedValueConsensus::InventedValueConsensus(Env& env)
    : ConsensusProtocol(env, protocol_ids::kCheckMutantConsensus) {}

void InventedValueConsensus::propose(consensus::Value) {
  decide(kInvented, 1);
}

DoubleDecideConsensus::DoubleDecideConsensus(Env& env, Reporter extra_report)
    : ConsensusProtocol(env, protocol_ids::kCheckMutantConsensus),
      extra_report_(std::move(extra_report)) {}

void DoubleDecideConsensus::propose(consensus::Value v) {
  decide(v, 1);  // first decision goes through the normal callback
  if (extra_report_) {
    // The illegal second decision repeats the same value: integrity is
    // violated by deciding twice at all, and keeping the value fixed
    // leaves agreement/validity clean so the monitor's attribution is
    // unambiguous.
    extra_report_(env_.self(), v, 2, env_.now());
  }
}

SilentConsensus::SilentConsensus(Env& env)
    : ConsensusProtocol(env, protocol_ids::kCheckMutantConsensus) {}

NoMajorityConsensus::NoMajorityConsensus(Env& env)
    : ConsensusProtocol(env, protocol_ids::kCheckMutantConsensus) {}

void NoMajorityConsensus::propose(consensus::Value v) {
  if (env_.self() == 0) {
    // The self-appointed coordinator imposes its value with no quorum.
    env_.broadcast(Message::make<consensus::Value>(
        protocol_ids::kCheckMutantConsensus, 1, "mutant.impose", v));
    decide(v, 1);
    return;
  }
  // Everyone else takes over (again without a quorum) when the coordinator
  // stays silent — under a partition this forks the decision.
  env_.set_timer(msec(300) + env_.self() * msec(200), [this, v] {
    if (has_decided()) return;
    env_.broadcast(Message::make<consensus::Value>(
        protocol_ids::kCheckMutantConsensus, 1, "mutant.impose", v));
    decide(v, 1);
  });
}

void NoMajorityConsensus::on_message(const Message& m) {
  decide(m.as<consensus::Value>(), 1);
}

// --- catalogue ----------------------------------------------------------

const std::vector<Mutant>& all_mutants() {
  static const std::vector<Mutant> kAll = {
      Mutant::kFlappingLeader, Mutant::kSlander,       Mutant::kBlind,
      Mutant::kCoupledViolation, Mutant::kSplitBrain,  Mutant::kInventedValue,
      Mutant::kDoubleDecide,   Mutant::kSilent,        Mutant::kNoMajority,
      Mutant::kFrozenMargin,   Mutant::kSkewBound,
      Mutant::kStuckCellPropagator, Mutant::kDroppedRefutation,
  };
  return kAll;
}

const char* mutant_name(Mutant m) {
  switch (m) {
    case Mutant::kFlappingLeader: return "flapping_leader";
    case Mutant::kSlander: return "slander";
    case Mutant::kBlind: return "blind";
    case Mutant::kCoupledViolation: return "coupled_violation";
    case Mutant::kSplitBrain: return "split_brain";
    case Mutant::kInventedValue: return "invented_value";
    case Mutant::kDoubleDecide: return "double_decide";
    case Mutant::kSilent: return "silent";
    case Mutant::kNoMajority: return "no_majority";
    case Mutant::kFrozenMargin: return "frozen_margin";
    case Mutant::kSkewBound: return "skew_bound";
    case Mutant::kStuckCellPropagator: return "stuck_cell_propagator";
    case Mutant::kDroppedRefutation: return "dropped_refutation";
  }
  return "?";
}

const char* expected_property(Mutant m) {
  switch (m) {
    case Mutant::kFlappingLeader: return "fd.leader_agreement";
    case Mutant::kSlander: return "fd.eventual_weak_accuracy";
    case Mutant::kBlind: return "fd.strong_completeness";
    case Mutant::kCoupledViolation: return "fd.coupling";
    case Mutant::kSplitBrain: return "consensus.uniform_agreement";
    case Mutant::kInventedValue: return "consensus.validity";
    case Mutant::kDoubleDecide: return "consensus.uniform_integrity";
    case Mutant::kSilent: return "consensus.termination";
    case Mutant::kNoMajority: return "consensus.uniform_agreement";
    case Mutant::kFrozenMargin: return "fd.eventual_strong_accuracy";
    case Mutant::kSkewBound: return "scenario.skew_bound";
    case Mutant::kStuckCellPropagator: return "fd.strong_completeness";
    case Mutant::kDroppedRefutation: return "fd.eventual_strong_accuracy";
  }
  return "?";
}

}  // namespace ecfd::check
