#include "check/fuzz.hpp"

#include <algorithm>
#include <cassert>

#include "check/sim_monitor.hpp"
#include "consensus/fd_stacks.hpp"
#include "fd/heartbeat_p.hpp"
#include "fd/hier_c.hpp"
#include "fd/swim.hpp"
#include "net/link.hpp"
#include "runner/fingerprint.hpp"

namespace ecfd::check {

namespace {

/// Independent stream per (seed, profile) so the four profile campaigns
/// over the same seed range explore different schedules.
Rng schedule_rng(const FuzzCaseConfig& cfg) {
  return Rng(cfg.seed * 0x9e3779b97f4a7c15ULL +
             (static_cast<std::uint64_t>(cfg.profile) + 1) *
                 0x517cc1b727220a95ULL);
}

void add_crashes(const FuzzCaseConfig& cfg, Rng& rng, int max_crashes,
                 FaultSchedule& out) {
  if (max_crashes <= 0) return;
  const int count =
      1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(max_crashes)));
  ProcessSet victims(cfg.n);
  for (int k = 0; k < count; ++k) {
    auto p = static_cast<ProcessId>(rng.below(static_cast<std::uint64_t>(cfg.n)));
    if (victims.contains(p)) continue;  // fewer crashes, never more
    victims.add(p);
    FaultEvent e;
    e.kind = FaultEvent::Kind::kCrash;
    e.process = p;
    e.at = msec(100) + rng.range(0, cfg.chaos_end - msec(100));
    out.events.push_back(e);
  }
}

/// Lays out up to \p max_windows disjoint [at, until) windows, all ending
/// by chaos_end, via a forward-moving cursor.
template <class MakeEvent>
void add_windows(const FuzzCaseConfig& cfg, Rng& rng, int max_windows,
                 MakeEvent&& make) {
  const int count = static_cast<int>(
      rng.below(static_cast<std::uint64_t>(max_windows) + 1));
  TimeUs cursor = msec(500);
  for (int k = 0; k < count; ++k) {
    const TimeUs start = cursor + rng.range(0, sec(2));
    if (start >= cfg.chaos_end - msec(200)) break;
    const TimeUs until =
        std::min<TimeUs>(start + msec(300) + rng.range(0, sec(3)),
                         cfg.chaos_end);
    make(start, until);
    cursor = until + msec(200);
  }
}

void add_partitions(const FuzzCaseConfig& cfg, Rng& rng, FaultSchedule& out) {
  add_windows(cfg, rng, 2, [&](TimeUs start, TimeUs until) {
    // A random nonempty proper subset of the universe.
    const auto universe = (std::uint64_t{1} << cfg.n) - 2;
    const std::uint64_t mask = 1 + rng.below(universe);
    ProcessSet group(cfg.n);
    for (ProcessId p = 0; p < cfg.n; ++p) {
      if ((mask >> p) & 1) group.add(p);
    }
    FaultEvent e;
    e.kind = FaultEvent::Kind::kPartitionWindow;
    e.at = start;
    e.until = until;
    e.group = group;
    out.events.push_back(e);
  });
}

void add_chaos(const FuzzCaseConfig& cfg, Rng& rng, FaultSchedule& out) {
  add_windows(cfg, rng, 2, [&](TimeUs start, TimeUs until) {
    FaultEvent e;
    e.kind = FaultEvent::Kind::kChaosWindow;
    e.at = start;
    e.until = until;
    e.chaos.loss_ppm = static_cast<std::uint32_t>(rng.below(300'001));
    e.chaos.extra_delay_max = rng.range(0, msec(20));
    e.chaos.duplicate_ppm = static_cast<std::uint32_t>(rng.below(100'001));
    if (!e.chaos.active()) e.chaos.loss_ppm = 50'000;
    out.events.push_back(e);
  });
}

// --- WAN/geo scenario pack generators -----------------------------------
// Parameter bounds are chosen so a correct stack still converges well
// before horizon - stable_margin: windows end by chaos_end like every
// other fault, and the whole-run geo matrix is bounded enough that the
// FDs' widening schedules outgrow the worst one-way delay within seconds.

void add_geo(const FuzzCaseConfig& cfg, Rng& rng, FaultSchedule& out) {
  const auto& names = geo_preset_names();
  const GeoSpec* preset =
      geo_preset(names[rng.below(names.size())]);
  FaultEvent e;
  e.kind = FaultEvent::Kind::kGeoLatency;
  e.at = 0;
  e.until = cfg.horizon;
  // 60%..150% of the preset, drawn per seed; the scaled matrices are
  // embedded in the event so replay never consults the preset table.
  e.geo = preset->scaled(60 + rng.range(0, 90), 100);
  out.events.push_back(e);
}

void add_flaps(const FuzzCaseConfig& cfg, Rng& rng, FaultSchedule& out) {
  add_windows(cfg, rng, 2, [&](TimeUs start, TimeUs until) {
    FaultEvent e;
    e.kind = FaultEvent::Kind::kFlapWindow;
    e.at = start;
    e.until = until;
    e.process =
        static_cast<ProcessId>(rng.below(static_cast<std::uint64_t>(cfg.n)));
    e.flap_period = msec(100) + rng.range(0, msec(400));
    e.flap_up_ppm = 300'000 + static_cast<std::uint32_t>(rng.below(400'001));
    out.events.push_back(e);
  });
}

void add_grays(const FuzzCaseConfig& cfg, Rng& rng, FaultSchedule& out) {
  add_windows(cfg, rng, 2, [&](TimeUs start, TimeUs until) {
    FaultEvent e;
    e.kind = FaultEvent::Kind::kGrayWindow;
    e.at = start;
    e.until = until;
    e.process =
        static_cast<ProcessId>(rng.below(static_cast<std::uint64_t>(cfg.n)));
    e.gray_factor_milli =
        2000 + static_cast<std::uint32_t>(rng.below(6001));  // 2x..8x slow
    e.gray_send_extra = rng.range(0, msec(30));
    out.events.push_back(e);
  });
}

void add_skews(const FuzzCaseConfig& cfg, Rng& rng, FaultSchedule& out) {
  add_windows(cfg, rng, 2, [&](TimeUs start, TimeUs until) {
    FaultEvent e;
    e.kind = FaultEvent::Kind::kSkewWindow;
    e.at = start;
    e.until = until;
    e.process =
        static_cast<ProcessId>(rng.below(static_cast<std::uint64_t>(cfg.n)));
    e.skew_bound = msec(20) + rng.range(0, msec(60));
    e.skew_offset = rng.range(-e.skew_bound, e.skew_bound);
    e.skew_drift_ppm = static_cast<std::int32_t>(rng.range(-30'000, 30'000));
    out.events.push_back(e);
  });
}

}  // namespace

const char* profile_name(FuzzProfile p) {
  switch (p) {
    case FuzzProfile::kCrash: return "crash";
    case FuzzProfile::kPartition: return "partition";
    case FuzzProfile::kLossDelay: return "loss_delay";
    case FuzzProfile::kChurn: return "churn";
    case FuzzProfile::kGeo: return "geo";
    case FuzzProfile::kFlap: return "flap";
    case FuzzProfile::kGray: return "gray";
    case FuzzProfile::kSkew: return "skew";
  }
  return "?";
}

const std::vector<FuzzProfile>& all_profiles() {
  static const std::vector<FuzzProfile> profiles = {
      FuzzProfile::kCrash, FuzzProfile::kPartition, FuzzProfile::kLossDelay,
      FuzzProfile::kChurn, FuzzProfile::kGeo,       FuzzProfile::kFlap,
      FuzzProfile::kGray,  FuzzProfile::kSkew,
  };
  return profiles;
}

std::optional<FuzzProfile> profile_from_name(const std::string& s) {
  for (FuzzProfile p : all_profiles()) {
    if (s == profile_name(p)) return p;
  }
  return std::nullopt;
}

const char* algo_name(consensus::Algo a) {
  switch (a) {
    case consensus::Algo::kEcfdC: return "ecfd_c";
    case consensus::Algo::kEcfdCMerged: return "ecfd_c_merged";
    case consensus::Algo::kChandraTouegS: return "chandra_toueg";
    case consensus::Algo::kMrOmega: return "mr_omega";
  }
  return "?";
}

std::optional<consensus::Algo> algo_from_name(const std::string& s) {
  for (consensus::Algo a :
       {consensus::Algo::kEcfdC, consensus::Algo::kEcfdCMerged,
        consensus::Algo::kChandraTouegS, consensus::Algo::kMrOmega}) {
    if (s == algo_name(a)) return a;
  }
  return std::nullopt;
}

const char* fd_stack_name(consensus::FdStack f) {
  return consensus::fd_stack_info(f).name;
}

std::optional<consensus::FdStack> fd_stack_from_name(const std::string& s) {
  // Canonical names only: repro files and digests must not drift when a
  // CLI alias changes.
  for (const consensus::FdStackInfo& info : consensus::all_fd_stacks()) {
    if (s == info.name) return info.id;
  }
  return std::nullopt;
}

FaultSchedule generate_schedule(const FuzzCaseConfig& cfg) {
  assert(cfg.n >= 2 && cfg.n <= 63);
  assert(cfg.chaos_end + cfg.stable_margin <= cfg.horizon);
  Rng rng = schedule_rng(cfg);
  FaultSchedule out;
  const int max_crashes = (cfg.n - 1) / 2;
  switch (cfg.profile) {
    case FuzzProfile::kCrash:
      add_crashes(cfg, rng, max_crashes, out);
      break;
    case FuzzProfile::kPartition:
      add_partitions(cfg, rng, out);
      if (max_crashes > 0 && rng.chance(0.3)) {
        add_crashes(cfg, rng, 1, out);
      }
      break;
    case FuzzProfile::kLossDelay:
      add_chaos(cfg, rng, out);
      break;
    case FuzzProfile::kChurn:
      add_crashes(cfg, rng, max_crashes, out);
      add_partitions(cfg, rng, out);
      add_chaos(cfg, rng, out);
      break;
    case FuzzProfile::kGeo:
      add_geo(cfg, rng, out);
      if (max_crashes > 0 && rng.chance(0.4)) add_crashes(cfg, rng, 1, out);
      break;
    case FuzzProfile::kFlap:
      add_flaps(cfg, rng, out);
      if (max_crashes > 0 && rng.chance(0.3)) add_crashes(cfg, rng, 1, out);
      break;
    case FuzzProfile::kGray:
      add_grays(cfg, rng, out);
      if (max_crashes > 0 && rng.chance(0.3)) add_crashes(cfg, rng, 1, out);
      break;
    case FuzzProfile::kSkew:
      add_skews(cfg, rng, out);
      if (max_crashes > 0 && rng.chance(0.3)) add_crashes(cfg, rng, 1, out);
      break;
  }
  return out;
}

ProcessSet crashed_in(const FaultSchedule& s, int n) {
  ProcessSet crashed(n);
  for (const FaultEvent& e : s.events) {
    if (e.kind == FaultEvent::Kind::kCrash) crashed.add(e.process);
  }
  return crashed;
}

namespace {

/// Blocks or unblocks every directed link touching \p v.
void set_flapped(Network* net, ProcessId v, bool down) {
  for (ProcessId q = 0; q < net->n(); ++q) {
    if (q == v) continue;
    net->set_blocked(v, q, down);
    net->set_blocked(q, v, down);
  }
}

}  // namespace

void apply_schedule(System& sys, const FaultSchedule& s,
                    SimMonitor* monitor) {
  Network* net = &sys.network();
  for (const FaultEvent& e : s.events) {
    switch (e.kind) {
      case FaultEvent::Kind::kCrash:
        // Crashes travel through the scenario crash plan so the harness's
        // notion of "correct" matches the schedule; nothing to do here.
        break;
      case FaultEvent::Kind::kPartitionWindow:
        sys.scheduler().schedule_at(
            e.at, [net, g = e.group] { net->partition(g); });
        sys.scheduler().schedule_at(e.until, [net] { net->heal(); });
        break;
      case FaultEvent::Kind::kChaosWindow:
        sys.scheduler().schedule_at(
            e.at, [net, c = e.chaos] { net->set_chaos(c); });
        sys.scheduler().schedule_at(e.until, [net] { net->clear_chaos(); });
        break;
      case FaultEvent::Kind::kGeoLatency:
        // The WAN matrix is the run's environment, not a transient fault:
        // swap the links right away (apply_schedule runs from the harness
        // instrument hook, before the system starts).
        assert(e.geo.valid());
        net->set_links(geo_link_factory(e.geo));
        break;
      case FaultEvent::Kind::kFlapWindow: {
        const ProcessId v = e.process;
        const DurUs period = std::max<DurUs>(e.flap_period, msec(10));
        const DurUs up =
            period * static_cast<DurUs>(e.flap_up_ppm) / 1'000'000;
        const DurUs down = period - up;
        if (down <= 0) break;
        // One up/down duty cycle per period; the window never outlives
        // its heal — the last down phase is truncated at `until`.
        for (TimeUs t = e.at + up; t < e.until; t += period) {
          sys.scheduler().schedule_at(
              t, [net, v] { set_flapped(net, v, true); });
          sys.scheduler().schedule_at(
              std::min<TimeUs>(t + down, e.until),
              [net, v] { set_flapped(net, v, false); });
        }
        break;
      }
      case FaultEvent::Kind::kGrayWindow: {
        ProcessHost* h = &sys.host(e.process);
        sys.scheduler().schedule_at(
            e.at, [h, f = e.gray_factor_milli, x = e.gray_send_extra] {
              h->set_gray(f, x);
            });
        sys.scheduler().schedule_at(e.until, [h] { h->set_gray(1000, 0); });
        break;
      }
      case FaultEvent::Kind::kSkewWindow: {
        ProcessHost* h = &sys.host(e.process);
        if (monitor != nullptr) {
          monitor->register_skew_bound(e.process, e.skew_bound);
        }
        sys.scheduler().schedule_at(
            e.at, [h, o = e.skew_offset, d = e.skew_drift_ppm,
                   b = e.skew_bound] { h->set_clock_skew(o, d, b); });
        sys.scheduler().schedule_at(e.until,
                                    [h] { h->clear_clock_skew(); });
        break;
      }
    }
  }
}

std::uint64_t fuzz_digest(const FuzzCaseConfig& cfg,
                          const FaultSchedule& schedule,
                          const std::vector<Verdict>& verdicts,
                          std::uint64_t result_fingerprint) {
  runner::Fnv1a h;
  h.i64(cfg.n);
  h.u64(cfg.seed);
  h.u64(static_cast<std::uint64_t>(cfg.profile));
  h.u64(static_cast<std::uint64_t>(cfg.algo));
  h.u64(static_cast<std::uint64_t>(cfg.fd));
  h.i64(cfg.horizon);
  h.i64(cfg.chaos_end);
  h.i64(cfg.stable_margin);
  h.i64(cfg.monitor_period);
  h.u64(schedule.events.size());
  for (const FaultEvent& e : schedule.events) {
    h.u64(static_cast<std::uint64_t>(e.kind));
    h.i64(e.at);
    h.i64(e.until);
    h.i64(e.process);
    for (ProcessId p : e.group.members()) h.i64(p);
    h.u64(e.chaos.loss_ppm);
    h.i64(e.chaos.extra_delay_max);
    h.u64(e.chaos.duplicate_ppm);
    // Scenario-pack fields are hashed only for their own kinds, so the
    // byte stream — and thus every pinned digest — of pre-existing
    // schedules is unchanged.
    switch (e.kind) {
      case FaultEvent::Kind::kGeoLatency:
        h.i64(e.geo.regions);
        for (DurUs d : e.geo.base) h.i64(d);
        for (DurUs d : e.geo.jitter) h.i64(d);
        break;
      case FaultEvent::Kind::kFlapWindow:
        h.i64(e.flap_period);
        h.u64(e.flap_up_ppm);
        break;
      case FaultEvent::Kind::kGrayWindow:
        h.u64(e.gray_factor_milli);
        h.i64(e.gray_send_extra);
        break;
      case FaultEvent::Kind::kSkewWindow:
        h.i64(e.skew_offset);
        h.i64(e.skew_drift_ppm);
        h.i64(e.skew_bound);
        break;
      default:
        break;
    }
  }
  h.u64(verdicts.size());
  for (const Verdict& v : verdicts) {
    h.str(v.property);
    h.u64(static_cast<std::uint64_t>(v.state));
    h.i64(v.holds_since);
    h.i64(v.violated_at);
    h.i64(v.violations);
  }
  h.u64(result_fingerprint);
  return h.value();
}

FuzzOutcome run_fuzz_case(const FuzzCaseConfig& cfg,
                          const FaultSchedule& schedule,
                          obs::Recorder* recorder) {
  consensus::HarnessConfig hc;
  hc.scenario.n = cfg.n;
  hc.scenario.seed = cfg.seed;
  hc.scenario.links = LinkKind::kPartialSync;
  for (const FaultEvent& e : schedule.events) {
    if (e.kind == FaultEvent::Kind::kCrash) {
      hc.scenario.with_crash(e.process, e.at);
    }
  }
  hc.algo = cfg.algo;
  hc.fd = cfg.fd;
  hc.run_to_horizon = true;
  hc.horizon = cfg.horizon;

  SimMonitor::Config mc;
  mc.period = cfg.monitor_period;
  mc.require_strong_accuracy = cfg.require_strong_accuracy;
  SimMonitor monitor(mc);
  hc.instrument = [&](const consensus::HarnessInstruments& inst) {
    if (recorder != nullptr) {
      inst.sys.attach_recorder(recorder);
      monitor.set_recorder(recorder);
    }
    monitor.install_from(inst, cfg.horizon);
    apply_schedule(inst.sys, schedule, &monitor);
  };

  const consensus::HarnessResult r = consensus::run_consensus(hc);

  FuzzOutcome out;
  out.verdicts = monitor.verdicts(r.sim_end);
  out.violations = monitor.violations(r.sim_end, cfg.stable_margin);
  out.ok = out.violations.empty();
  out.every_correct_decided = r.every_correct_decided;
  out.sim_end = r.sim_end;
  out.counters = r.counters;
  out.result_fingerprint = runner::fingerprint_result(r);
  out.digest =
      fuzz_digest(cfg, schedule, out.verdicts, out.result_fingerprint);
  if (monitor.fd() != nullptr) out.detections = monitor.fd()->detections();
  return out;
}

FuzzOutcome run_fuzz_case(const FuzzCaseConfig& cfg) {
  return run_fuzz_case(cfg, generate_schedule(cfg));
}

bool violates(const FuzzOutcome& o, const std::string& property) {
  return std::any_of(
      o.violations.begin(), o.violations.end(),
      [&](const Verdict& v) { return v.property == property; });
}

FaultSchedule shrink_schedule(const FuzzCaseConfig& cfg,
                              FaultSchedule schedule,
                              const std::string& property, int* runs) {
  int count = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < schedule.events.size(); ++i) {
      FaultSchedule candidate;
      candidate.events = schedule.events;
      candidate.events.erase(candidate.events.begin() +
                             static_cast<std::ptrdiff_t>(i));
      ++count;
      if (violates(run_fuzz_case(cfg, candidate), property)) {
        schedule = std::move(candidate);
        progress = true;
        break;  // restart: indices shifted
      }
    }
  }
  if (runs != nullptr) *runs = count;
  return schedule;
}

FuzzOutcome run_mutant(Mutant m, std::uint64_t seed) {
  const int n = 5;
  const TimeUs horizon = sec(10);
  const DurUs margin = sec(2);

  ScenarioConfig sc;
  sc.n = n;
  sc.seed = seed;
  sc.links = LinkKind::kReliable;
  if (m == Mutant::kBlind || m == Mutant::kStuckCellPropagator) {
    sc.with_crash(n - 1, sec(2));
  }
  auto sys = make_system(sc);
  if (m == Mutant::kDroppedRefutation) {
    // A permanently gray p1: its 3x stretched probe windows keep it from
    // ever falsely suspecting others, while the 30 ms send lag makes its
    // acks miss everyone else's windows — p1 gets suspected, refutes, and
    // the mutated gossiper drops the refutation. Permanent false suspicion
    // of one process, stability everywhere else: exactly eventual strong
    // (not weak) accuracy. The unmutated SwimFd passes this scenario
    // (tests/test_swim.cpp asserts it).
    sys->host(1).set_gray(3000, msec(30));
  }
  if (m == Mutant::kFrozenMargin) {
    // One geo-style jittery directed link: p1 -> p0 delays in [1, 60] ms,
    // far beyond the frozen margin below, while every other link keeps
    // the tight default band. The observer p0 then flaps on p1 forever
    // (eventual strong accuracy lost) while everyone's view of everyone
    // else stabilizes (eventual weak accuracy kept) — the attribution
    // stays unambiguous.
    sys->network().set_link(
        1, 0, std::make_unique<ReliableLink>(msec(1), msec(60)));
  }

  ProcessSet correct = ProcessSet::full(n);
  for (const CrashPlan& c : sc.crashes) correct.remove(c.process);

  const bool fd_mutant =
      m == Mutant::kFlappingLeader || m == Mutant::kSlander ||
      m == Mutant::kBlind || m == Mutant::kCoupledViolation ||
      m == Mutant::kFrozenMargin || m == Mutant::kStuckCellPropagator ||
      m == Mutant::kDroppedRefutation;
  const bool scenario_mutant = m == Mutant::kSkewBound;

  SimMonitor::Config mc;
  mc.check_suspect =
      m == Mutant::kSlander || m == Mutant::kBlind ||
      m == Mutant::kCoupledViolation || m == Mutant::kFrozenMargin ||
      m == Mutant::kStuckCellPropagator || m == Mutant::kDroppedRefutation;
  mc.check_leader =
      m == Mutant::kFlappingLeader || m == Mutant::kCoupledViolation;
  mc.require_strong_accuracy =
      m == Mutant::kFrozenMargin || m == Mutant::kDroppedRefutation;
  SimMonitor monitor(mc);
  monitor.install(*sys, correct, horizon);

  std::vector<consensus::ConsensusProtocol*> cons;
  if (fd_mutant) {
    for (ProcessId p = 0; p < n; ++p) {
      auto& host = sys->host(p);
      switch (m) {
        case Mutant::kFlappingLeader: {
          auto& f = host.emplace<FlappingLeaderFd>(msec(400));
          monitor.attach_fd(p, &f, &f);
          break;
        }
        case Mutant::kSlander: {
          auto& f = host.emplace<SlanderFd>();
          monitor.attach_fd(p, &f, &f);
          break;
        }
        case Mutant::kBlind: {
          auto& f = host.emplace<BlindFd>();
          monitor.attach_fd(p, &f, &f);
          break;
        }
        case Mutant::kCoupledViolation: {
          auto& f = host.emplace<CoupledViolationFd>();
          monitor.attach_fd(p, &f, &f);
          break;
        }
        case Mutant::kFrozenMargin: {
          // The real adaptive ◇P with its mutation hook engaged: a small
          // margin that never widens. The identical config with
          // widen_on_mistake=true passes this exact scenario
          // (tests/test_adaptive_timeout.cpp asserts it).
          fd::HeartbeatP::Config hbc;
          hbc.adaptive = true;
          hbc.predictor.alpha = msec(6);
          hbc.predictor.widen_on_mistake = false;
          auto& f = host.emplace<fd::HeartbeatP>(hbc);
          monitor.attach_fd(p, &f, nullptr);
          break;
        }
        case Mutant::kStuckCellPropagator: {
          // The real hierarchy with the propagation hook stuck on.
          fd::HierC::Config hcfg;
          hcfg.mutate_stuck_propagation = true;
          auto& f = host.emplace<fd::HierC>(hcfg);
          monitor.attach_fd(p, &f, nullptr);
          break;
        }
        case Mutant::kDroppedRefutation: {
          // The real gossiper with refutation application disabled.
          fd::SwimFd::Config scfg;
          scfg.mutate_drop_refutations = true;
          auto& f = host.emplace<fd::SwimFd>(scfg);
          monitor.attach_fd(p, &f, nullptr);
          break;
        }
        default: break;
      }
    }
  } else if (scenario_mutant) {
    // The broken injector: declares a 10 ms envelope to the monitor but
    // applies a raw 40 ms + drift skew with the clamp disabled (bound 0).
    monitor.register_skew_bound(1, msec(10));
    ProcessHost* h = &sys->host(1);
    sys->scheduler().schedule_at(
        msec(500), [h] { h->set_clock_skew(msec(40), 5000, 0); });
  } else {
    std::vector<consensus::Value> proposals(static_cast<std::size_t>(n));
    for (ProcessId p = 0; p < n; ++p) {
      // DoubleDecide must violate *only* integrity: its engine decides the
      // local proposal, so give everyone the same one — the bug it carries
      // is the repeat report, not the value.
      proposals[static_cast<std::size_t>(p)] =
          m == Mutant::kDoubleDecide ? 100 : 100 + p;
    }
    for (ProcessId p = 0; p < n; ++p) {
      auto& host = sys->host(p);
      switch (m) {
        case Mutant::kSplitBrain:
          cons.push_back(&host.emplace<SplitBrainConsensus>());
          break;
        case Mutant::kInventedValue:
          cons.push_back(&host.emplace<InventedValueConsensus>());
          break;
        case Mutant::kDoubleDecide:
          cons.push_back(&host.emplace<DoubleDecideConsensus>(
              [&monitor](ProcessId q, consensus::Value v, int round,
                         TimeUs at) {
                if (auto* cm = monitor.mutable_consensus()) {
                  cm->note_decision(q, v, round, at);
                }
              }));
          break;
        case Mutant::kSilent:
          cons.push_back(&host.emplace<SilentConsensus>());
          break;
        case Mutant::kNoMajority:
          cons.push_back(&host.emplace<NoMajorityConsensus>());
          break;
        default: break;
      }
    }
    monitor.attach_consensus(cons, proposals, horizon);
    if (m == Mutant::kNoMajority) {
      // Separate the self-appointed coordinator's side from the takeover
      // side until well after both have (unsafely) decided.
      ProcessSet group(n);
      group.add(0);
      group.add(1);
      sys->network().partition(group);
      Network* net = &sys->network();
      sys->scheduler().schedule_at(sec(2), [net] { net->heal(); });
    }
    for (ProcessId p = 0; p < n; ++p) {
      const auto i = static_cast<std::size_t>(p);
      sys->scheduler().schedule_at(
          msec(1), [sp = sys.get(), c = cons[i], p, v = proposals[i]] {
            if (!sp->host(p).crashed()) c->propose(v);
          });
    }
  }

  monitor.start();
  sys->start();
  sys->run_until(horizon);

  FuzzOutcome out;
  out.verdicts = monitor.verdicts(sys->now());
  out.violations = monitor.violations(sys->now(), margin);
  out.ok = out.violations.empty();
  out.sim_end = sys->now();
  FuzzCaseConfig dcfg;
  dcfg.n = n;
  dcfg.seed = seed;
  dcfg.horizon = horizon;
  dcfg.chaos_end = sec(2);
  dcfg.stable_margin = margin;
  out.digest = fuzz_digest(dcfg, FaultSchedule{}, out.verdicts, 0);
  return out;
}

}  // namespace ecfd::check
