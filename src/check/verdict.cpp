#include "check/verdict.hpp"

#include <sstream>

namespace ecfd::check {

const char* to_string(VerdictState s) {
  switch (s) {
    case VerdictState::kHolding:
      return "holding";
    case VerdictState::kPending:
      return "pending";
    case VerdictState::kViolated:
      return "VIOLATED";
  }
  return "?";
}

std::string Verdict::to_string() const {
  std::ostringstream os;
  os << property << ": " << check::to_string(state);
  if (state == VerdictState::kHolding) {
    os << " since " << holds_since / 1000 << "ms";
  } else if (violated_at != kTimeNever) {
    os << " at " << violated_at / 1000 << "ms";
  }
  if (violations > 0) os << " (" << violations << " violating samples)";
  if (!witness.empty()) os << " — " << witness;
  if (!required) os << " [informational]";
  return os.str();
}

bool satisfied(const Verdict& v, TimeUs end, DurUs margin) {
  if (v.state == VerdictState::kViolated) return false;
  if (!v.eventual) return v.state == VerdictState::kHolding;
  return v.state == VerdictState::kHolding && v.holds_since + margin <= end;
}

std::vector<Verdict> failing(const std::vector<Verdict>& all, TimeUs end,
                             DurUs margin) {
  std::vector<Verdict> out;
  for (const Verdict& v : all) {
    if (v.required && !satisfied(v, end, margin)) out.push_back(v);
  }
  return out;
}

}  // namespace ecfd::check
