#include "check/repro.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ecfd::check {

namespace {

std::string group_to_text(const ProcessSet& g) {
  std::string out;
  for (ProcessId p : g.members()) {
    if (!out.empty()) out += ',';
    out += std::to_string(p);
  }
  return out;
}

bool group_from_text(const std::string& s, int n, ProcessSet& out) {
  out = ProcessSet(n);
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    int p = 0;
    try {
      p = std::stoi(tok);
    } catch (...) {
      return false;
    }
    if (p < 0 || p >= n) return false;
    out.add(p);
  }
  return !out.empty();
}

std::string durs_to_text(const std::vector<DurUs>& ds) {
  std::string out;
  for (DurUs d : ds) {
    if (!out.empty()) out += ',';
    out += std::to_string(d);
  }
  return out;
}

bool durs_from_text(const std::string& s, std::size_t want,
                    std::vector<DurUs>& out) {
  out.clear();
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    try {
      std::size_t pos = 0;
      out.push_back(std::stoll(tok, &pos, 0));
      if (pos != tok.size()) return false;
    } catch (...) {
      return false;
    }
  }
  return out.size() == want;
}

/// Splits "key=value" tokens of an event line into a flat list.
struct KvLine {
  std::vector<std::pair<std::string, std::string>> kv;
  [[nodiscard]] const std::string* get(const std::string& key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

bool parse_kv(std::istringstream& is, KvLine& out) {
  std::string tok;
  while (is >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos) return false;
    out.kv.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
  }
  return true;
}

bool to_i64(const std::string& s, std::int64_t& v) {
  try {
    std::size_t pos = 0;
    v = std::stoll(s, &pos, 0);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

bool to_u64(const std::string& s, std::uint64_t& v) {
  try {
    std::size_t pos = 0;
    v = std::stoull(s, &pos, 0);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

std::string to_text(const ReproFile& r) {
  std::ostringstream os;
  os << "ecfd.repro.v1\n";
  os << "n " << r.config.n << "\n";
  os << "seed " << r.config.seed << "\n";
  os << "profile " << profile_name(r.config.profile) << "\n";
  os << "algo " << algo_name(r.config.algo) << "\n";
  os << "fd " << fd_stack_name(r.config.fd) << "\n";
  os << "horizon_us " << r.config.horizon << "\n";
  os << "chaos_end_us " << r.config.chaos_end << "\n";
  os << "margin_us " << r.config.stable_margin << "\n";
  os << "period_us " << r.config.monitor_period << "\n";
  if (!r.property.empty()) os << "property " << r.property << "\n";
  if (r.digest != 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(r.digest));
    os << "digest " << buf << "\n";
  }
  for (const FaultEvent& e : r.schedule.events) {
    switch (e.kind) {
      case FaultEvent::Kind::kCrash:
        os << "event crash at=" << e.at << " p=" << e.process << "\n";
        break;
      case FaultEvent::Kind::kPartitionWindow:
        os << "event partition at=" << e.at << " until=" << e.until
           << " group=" << group_to_text(e.group) << "\n";
        break;
      case FaultEvent::Kind::kChaosWindow:
        os << "event chaos at=" << e.at << " until=" << e.until
           << " loss_ppm=" << e.chaos.loss_ppm
           << " delay_max_us=" << e.chaos.extra_delay_max
           << " dup_ppm=" << e.chaos.duplicate_ppm << "\n";
        break;
      case FaultEvent::Kind::kGeoLatency:
        // The full drawn matrices travel with the file: replay must stay
        // bit-identical even after the preset tables or the generator's
        // scaling draw change.
        os << "event geo at=" << e.at << " until=" << e.until
           << " regions=" << e.geo.regions
           << " base_us=" << durs_to_text(e.geo.base)
           << " jitter_us=" << durs_to_text(e.geo.jitter) << "\n";
        break;
      case FaultEvent::Kind::kFlapWindow:
        os << "event flap at=" << e.at << " until=" << e.until
           << " p=" << e.process << " period_us=" << e.flap_period
           << " up_ppm=" << e.flap_up_ppm << "\n";
        break;
      case FaultEvent::Kind::kGrayWindow:
        os << "event gray at=" << e.at << " until=" << e.until
           << " p=" << e.process << " factor_milli=" << e.gray_factor_milli
           << " send_extra_us=" << e.gray_send_extra << "\n";
        break;
      case FaultEvent::Kind::kSkewWindow:
        os << "event skew at=" << e.at << " until=" << e.until
           << " p=" << e.process << " offset_us=" << e.skew_offset
           << " drift_ppm=" << e.skew_drift_ppm
           << " bound_us=" << e.skew_bound << "\n";
        break;
    }
  }
  os << "end\n";
  return os.str();
}

std::optional<ReproFile> parse_repro(const std::string& text,
                                     std::string* error) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "ecfd.repro.v1") {
    fail(error, "missing ecfd.repro.v1 header");
    return std::nullopt;
  }
  ReproFile r;
  bool ended = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "end") {
      ended = true;
      break;
    }
    std::int64_t i64 = 0;
    std::uint64_t u64 = 0;
    std::string word;
    if (key == "n") {
      if (!(ls >> i64) || i64 < 2 || i64 > 63) {
        fail(error, "bad n");
        return std::nullopt;
      }
      r.config.n = static_cast<int>(i64);
    } else if (key == "seed") {
      if (!(ls >> u64)) {
        fail(error, "bad seed");
        return std::nullopt;
      }
      r.config.seed = u64;
    } else if (key == "profile") {
      ls >> word;
      const auto p = profile_from_name(word);
      if (!p) {
        fail(error, "unknown profile " + word);
        return std::nullopt;
      }
      r.config.profile = *p;
    } else if (key == "algo") {
      ls >> word;
      const auto a = algo_from_name(word);
      if (!a) {
        fail(error, "unknown algo " + word);
        return std::nullopt;
      }
      r.config.algo = *a;
    } else if (key == "fd") {
      ls >> word;
      const auto f = fd_stack_from_name(word);
      if (!f) {
        fail(error, "unknown fd stack " + word);
        return std::nullopt;
      }
      r.config.fd = *f;
    } else if (key == "horizon_us") {
      if (!(ls >> r.config.horizon)) {
        fail(error, "bad horizon_us");
        return std::nullopt;
      }
    } else if (key == "chaos_end_us") {
      if (!(ls >> r.config.chaos_end)) {
        fail(error, "bad chaos_end_us");
        return std::nullopt;
      }
    } else if (key == "margin_us") {
      if (!(ls >> r.config.stable_margin)) {
        fail(error, "bad margin_us");
        return std::nullopt;
      }
    } else if (key == "period_us") {
      if (!(ls >> r.config.monitor_period)) {
        fail(error, "bad period_us");
        return std::nullopt;
      }
    } else if (key == "property") {
      ls >> r.property;
    } else if (key == "digest") {
      ls >> word;
      if (!to_u64(word, r.digest)) {
        fail(error, "bad digest");
        return std::nullopt;
      }
    } else if (key == "event") {
      std::string kind;
      ls >> kind;
      KvLine kv;
      if (!parse_kv(ls, kv)) {
        fail(error, "malformed event line: " + line);
        return std::nullopt;
      }
      FaultEvent e;
      const std::string* at = kv.get("at");
      if (at == nullptr || !to_i64(*at, e.at)) {
        fail(error, "event missing at=");
        return std::nullopt;
      }
      if (kind == "crash") {
        e.kind = FaultEvent::Kind::kCrash;
        const std::string* p = kv.get("p");
        std::int64_t pid = 0;
        if (p == nullptr || !to_i64(*p, pid) || pid < 0 ||
            pid >= r.config.n) {
          fail(error, "crash event with bad p=");
          return std::nullopt;
        }
        e.process = static_cast<ProcessId>(pid);
      } else if (kind == "partition") {
        e.kind = FaultEvent::Kind::kPartitionWindow;
        const std::string* until = kv.get("until");
        const std::string* group = kv.get("group");
        if (until == nullptr || !to_i64(*until, e.until) ||
            group == nullptr ||
            !group_from_text(*group, r.config.n, e.group)) {
          fail(error, "partition event with bad until=/group=");
          return std::nullopt;
        }
      } else if (kind == "chaos") {
        e.kind = FaultEvent::Kind::kChaosWindow;
        const std::string* until = kv.get("until");
        const std::string* loss = kv.get("loss_ppm");
        const std::string* delay = kv.get("delay_max_us");
        const std::string* dup = kv.get("dup_ppm");
        std::uint64_t loss_v = 0;
        std::uint64_t dup_v = 0;
        if (until == nullptr || !to_i64(*until, e.until) ||
            loss == nullptr || !to_u64(*loss, loss_v) || delay == nullptr ||
            !to_i64(*delay, e.chaos.extra_delay_max) || dup == nullptr ||
            !to_u64(*dup, dup_v)) {
          fail(error, "chaos event with bad fields");
          return std::nullopt;
        }
        e.chaos.loss_ppm = static_cast<std::uint32_t>(loss_v);
        e.chaos.duplicate_ppm = static_cast<std::uint32_t>(dup_v);
      } else if (kind == "geo") {
        e.kind = FaultEvent::Kind::kGeoLatency;
        const std::string* until = kv.get("until");
        const std::string* regions = kv.get("regions");
        const std::string* base = kv.get("base_us");
        const std::string* jitter = kv.get("jitter_us");
        std::int64_t reg = 0;
        if (until == nullptr || !to_i64(*until, e.until) ||
            regions == nullptr || !to_i64(*regions, reg) || reg < 1 ||
            reg > 64) {
          fail(error, "geo event with bad until=/regions=");
          return std::nullopt;
        }
        e.geo.regions = static_cast<int>(reg);
        const auto cells = static_cast<std::size_t>(reg * reg);
        if (base == nullptr || !durs_from_text(*base, cells, e.geo.base) ||
            jitter == nullptr ||
            !durs_from_text(*jitter, cells, e.geo.jitter)) {
          fail(error, "geo event with bad base_us=/jitter_us=");
          return std::nullopt;
        }
      } else if (kind == "flap") {
        e.kind = FaultEvent::Kind::kFlapWindow;
        const std::string* until = kv.get("until");
        const std::string* p = kv.get("p");
        const std::string* period = kv.get("period_us");
        const std::string* up = kv.get("up_ppm");
        std::int64_t pid = 0;
        std::uint64_t up_v = 0;
        if (until == nullptr || !to_i64(*until, e.until) || p == nullptr ||
            !to_i64(*p, pid) || pid < 0 || pid >= r.config.n ||
            period == nullptr || !to_i64(*period, e.flap_period) ||
            up == nullptr || !to_u64(*up, up_v) || up_v > 1'000'000) {
          fail(error, "flap event with bad fields");
          return std::nullopt;
        }
        e.process = static_cast<ProcessId>(pid);
        e.flap_up_ppm = static_cast<std::uint32_t>(up_v);
      } else if (kind == "gray") {
        e.kind = FaultEvent::Kind::kGrayWindow;
        const std::string* until = kv.get("until");
        const std::string* p = kv.get("p");
        const std::string* factor = kv.get("factor_milli");
        const std::string* extra = kv.get("send_extra_us");
        std::int64_t pid = 0;
        std::uint64_t factor_v = 0;
        if (until == nullptr || !to_i64(*until, e.until) || p == nullptr ||
            !to_i64(*p, pid) || pid < 0 || pid >= r.config.n ||
            factor == nullptr || !to_u64(*factor, factor_v) ||
            factor_v == 0 || extra == nullptr ||
            !to_i64(*extra, e.gray_send_extra)) {
          fail(error, "gray event with bad fields");
          return std::nullopt;
        }
        e.process = static_cast<ProcessId>(pid);
        e.gray_factor_milli = static_cast<std::uint32_t>(factor_v);
      } else if (kind == "skew") {
        e.kind = FaultEvent::Kind::kSkewWindow;
        const std::string* until = kv.get("until");
        const std::string* p = kv.get("p");
        const std::string* offset = kv.get("offset_us");
        const std::string* drift = kv.get("drift_ppm");
        const std::string* bound = kv.get("bound_us");
        std::int64_t pid = 0;
        std::int64_t drift_v = 0;
        if (until == nullptr || !to_i64(*until, e.until) || p == nullptr ||
            !to_i64(*p, pid) || pid < 0 || pid >= r.config.n ||
            offset == nullptr || !to_i64(*offset, e.skew_offset) ||
            drift == nullptr || !to_i64(*drift, drift_v) ||
            drift_v <= -1'000'000 || drift_v >= 1'000'000 ||
            bound == nullptr || !to_i64(*bound, e.skew_bound)) {
          fail(error, "skew event with bad fields");
          return std::nullopt;
        }
        e.process = static_cast<ProcessId>(pid);
        e.skew_drift_ppm = static_cast<std::int32_t>(drift_v);
      } else {
        fail(error, "unknown event kind " + kind);
        return std::nullopt;
      }
      r.schedule.events.push_back(std::move(e));
    } else {
      fail(error, "unknown key " + key);
      return std::nullopt;
    }
  }
  if (!ended) {
    fail(error, "missing end marker");
    return std::nullopt;
  }
  return r;
}

bool save_repro(const ReproFile& r, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  os << to_text(r);
  return static_cast<bool>(os);
}

std::optional<ReproFile> load_repro(const std::string& path,
                                    std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse_repro(buf.str(), error);
}

FuzzOutcome replay(const ReproFile& r, obs::Recorder* recorder) {
  return run_fuzz_case(r.config, r.schedule, recorder);
}

}  // namespace ecfd::check
