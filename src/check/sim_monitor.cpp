#include "check/sim_monitor.hpp"

#include <algorithm>
#include <cassert>

namespace ecfd::check {

void SimMonitor::install(System& sys, const ProcessSet& correct,
                         TimeUs until) {
  assert(sys_ == nullptr && "SimMonitor::install called twice");
  sys_ = &sys;
  until_ = until;
  suspects_.assign(static_cast<std::size_t>(sys.n()), nullptr);
  leaders_.assign(static_cast<std::size_t>(sys.n()), nullptr);

  FdPropertyMonitor::Config fc;
  fc.n = sys.n();
  fc.correct = correct;
  fc.check_suspect = cfg_.check_suspect;
  fc.check_leader = cfg_.check_leader;
  fc.require_strong_accuracy = cfg_.require_strong_accuracy;
  fd_ = std::make_unique<FdPropertyMonitor>(fc);
  // The consensus monitor only exists once attach_consensus() names the
  // protocols — a pure-FD run must not fail a vacuous termination check.
}

void SimMonitor::register_skew_bound(ProcessId p, DurUs bound) {
  assert(sys_ != nullptr && "install() first");
  if (skew_bounds_.empty()) {
    skew_verdict_.property = "scenario.skew_bound";
    skew_verdict_.eventual = false;
    skew_verdict_.required = true;
    skew_verdict_.state = VerdictState::kHolding;
  }
  auto [it, inserted] = skew_bounds_.emplace(p, bound);
  if (!inserted) it->second = std::max(it->second, bound);
}

void SimMonitor::attach_fd(ProcessId p, const SuspectOracle* s,
                           const LeaderOracle* l) {
  assert(sys_ != nullptr && "install() first");
  suspects_[static_cast<std::size_t>(p)] = s;
  leaders_[static_cast<std::size_t>(p)] = l;
}

void SimMonitor::attach_consensus(
    const std::vector<consensus::ConsensusProtocol*>& protocols,
    const std::vector<consensus::Value>& proposals, TimeUs deadline) {
  assert(sys_ != nullptr && "install() first");
  ConsensusMonitor::Config cc;
  cc.n = sys_->n();
  cc.correct = fd_->config().correct;
  cc.deadline = deadline;
  consensus_ = std::make_unique<ConsensusMonitor>(cc);
  consensus_->attach(protocols);
  for (ProcessId p = 0;
       p < static_cast<ProcessId>(proposals.size()); ++p) {
    consensus_->note_proposal(p, proposals[static_cast<std::size_t>(p)], 0);
  }
}

void SimMonitor::start() {
  assert(sys_ != nullptr && "install() first");
  tick();
}

void SimMonitor::install_from(const consensus::HarnessInstruments& inst,
                              TimeUs horizon) {
  install(inst.sys, inst.correct, horizon);
  for (ProcessId p = 0; p < inst.sys.n(); ++p) {
    attach_fd(p, inst.suspects[static_cast<std::size_t>(p)],
              inst.leaders[static_cast<std::size_t>(p)]);
  }
  attach_consensus(inst.protocols, inst.proposals, horizon);
  start();
}

void SimMonitor::tick() {
  const TimeUs now = sys_->now();
  FdPropertyMonitor::Snapshot snap;
  snap.time = now;
  snap.crashed = sys_->crashed();
  const auto n = static_cast<std::size_t>(sys_->n());
  snap.suspected.resize(n);
  snap.trusted.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = static_cast<ProcessId>(i);
    if (sys_->host(p).crashed()) continue;
    if (suspects_[i] != nullptr) snap.suspected[i] = suspects_[i]->suspected();
    if (leaders_[i] != nullptr) snap.trusted[i] = leaders_[i]->trusted();
  }
  fd_->observe(snap);
  if (!skew_bounds_.empty() &&
      skew_verdict_.state != VerdictState::kViolated) {
    for (const auto& [p, bound] : skew_bounds_) {
      if (sys_->host(p).crashed()) continue;
      const std::int64_t err = sys_->host(p).now() - now;
      if (err > bound || err < -bound) {
        skew_verdict_.state = VerdictState::kViolated;
        skew_verdict_.violated_at = now;
        skew_verdict_.violations = 1;
        skew_verdict_.witness = "p" + std::to_string(p) + " clock error " +
                                std::to_string(err) + "us exceeds bound " +
                                std::to_string(bound) + "us";
        break;
      }
    }
  }
  if (recorder_ != nullptr) record_verdict_transitions(now);
  if (now < until_) {
    sys_->scheduler().schedule_after(cfg_.period, [this] { tick(); });
  }
}

void SimMonitor::record_verdict_transitions(TimeUs now) {
  for (const Verdict& v : verdicts(now)) {
    const auto it = last_verdict_state_.find(v.property);
    if (it != last_verdict_state_.end() && it->second == v.state) continue;
    const bool first = it == last_verdict_state_.end();
    last_verdict_state_[v.property] = v.state;
    // The initial kHolding of every property is not a transition worth a
    // timeline row; pending/violated starts are.
    if (first && v.state == VerdictState::kHolding) continue;
    recorder_->system_ring().push(now, obs::EventType::kVerdict,
                                  static_cast<std::int32_t>(v.state), 0,
                                  recorder_->intern(v.property));
  }
}

std::vector<Verdict> SimMonitor::verdicts(TimeUs now) const {
  std::vector<Verdict> out = fd_ ? fd_->verdicts() : std::vector<Verdict>{};
  if (consensus_) {
    for (Verdict& v : consensus_->verdicts(now)) out.push_back(std::move(v));
  }
  if (!skew_bounds_.empty()) out.push_back(skew_verdict_);
  return out;
}

std::vector<Verdict> SimMonitor::violations(TimeUs end, DurUs margin) const {
  return failing(verdicts(end), end, margin);
}

}  // namespace ecfd::check
