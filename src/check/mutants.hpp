#pragma once

#include <functional>
#include <vector>

#include "consensus/consensus.hpp"
#include "fd/oracle.hpp"
#include "net/env.hpp"
#include "net/process_set.hpp"

/// \file mutants.hpp
/// Deliberately broken failure-detector and consensus variants.
///
/// These exist to validate the monitors themselves (mutation testing): each
/// mutant violates exactly one paper property, and the corresponding
/// monitor MUST flag it with that property name and a nonempty witness —
/// tests/test_mutation_catch.cpp asserts this for every mutant. A monitor
/// change that stops catching a mutant is a regression in the checking
/// tooling, not in the algorithms.

namespace ecfd::check {

// --- failure-detector mutants ------------------------------------------

/// Ω that never stabilizes: trusted = (now / period) mod n, forever.
/// All processes flap in lockstep, so only the permanence clause of leader
/// agreement (and leader stability) can catch it — instantaneous agreement
/// looks fine at every sample. Violates: fd.leader_agreement.
class FlappingLeaderFd final : public Protocol,
                               public SuspectOracle,
                               public LeaderOracle {
 public:
  FlappingLeaderFd(Env& env, DurUs period);
  void on_message(const Message&) override {}
  [[nodiscard]] ProcessSet suspected() const override;
  [[nodiscard]] ProcessId trusted() const override;

 private:
  DurUs period_;
};

/// ◇S whose accuracy is gone: every process permanently suspects every
/// other process (completeness trivially holds; no correct process is ever
/// unsuspected). Violates: fd.eventual_weak_accuracy.
class SlanderFd final : public Protocol,
                        public SuspectOracle,
                        public LeaderOracle {
 public:
  explicit SlanderFd(Env& env);
  void on_message(const Message&) override {}
  [[nodiscard]] ProcessSet suspected() const override;
  [[nodiscard]] ProcessId trusted() const override { return env_.self(); }
};

/// Detector that never suspects anyone: crashed processes go permanently
/// undetected. Violates: fd.strong_completeness (under any crash).
class BlindFd final : public Protocol,
                      public SuspectOracle,
                      public LeaderOracle {
 public:
  explicit BlindFd(Env& env);
  void on_message(const Message&) override {}
  [[nodiscard]] ProcessSet suspected() const override;
  [[nodiscard]] ProcessId trusted() const override { return 0; }
};

/// ◇C whose two outputs are permanently inconsistent: everyone trusts p0
/// AND suspects p0 (plus nobody else), forever. Completeness over the
/// remaining processes, weak accuracy and Omega all hold. Violates:
/// fd.coupling (Definition 1, third clause).
class CoupledViolationFd final : public Protocol,
                                 public SuspectOracle,
                                 public LeaderOracle {
 public:
  explicit CoupledViolationFd(Env& env);
  void on_message(const Message&) override {}
  [[nodiscard]] ProcessSet suspected() const override;
  [[nodiscard]] ProcessId trusted() const override { return 0; }
};

// --- consensus mutants --------------------------------------------------

/// "Consensus" where every process simply decides its own proposal.
/// Violates: consensus.uniform_agreement (with distinct proposals).
class SplitBrainConsensus final : public consensus::ConsensusProtocol {
 public:
  explicit SplitBrainConsensus(Env& env);
  void propose(consensus::Value v) override;
  void on_message(const Message&) override {}
  [[nodiscard]] int current_round() const override { return 1; }
};

/// Decides a constant that nobody proposed. Violates: consensus.validity.
class InventedValueConsensus final : public consensus::ConsensusProtocol {
 public:
  static constexpr consensus::Value kInvented = 0x0BADBADBAD;
  explicit InventedValueConsensus(Env& env);
  void propose(consensus::Value v) override;
  void on_message(const Message&) override {}
  [[nodiscard]] int current_round() const override { return 1; }
};

/// Decides, then "re-decides" a different value. ConsensusProtocol::decide
/// is idempotent by construction, so the second decision is reported
/// straight to the monitor through the extra reporter — which is exactly
/// the double-report a buggy engine would produce. Violates:
/// consensus.uniform_integrity.
class DoubleDecideConsensus final : public consensus::ConsensusProtocol {
 public:
  using Reporter =
      std::function<void(ProcessId, consensus::Value, int, TimeUs)>;
  DoubleDecideConsensus(Env& env, Reporter extra_report);
  void propose(consensus::Value v) override;
  void on_message(const Message&) override {}
  [[nodiscard]] int current_round() const override { return 1; }

 private:
  Reporter extra_report_;
};

/// Never decides at all. Violates: consensus.termination (by deadline).
class SilentConsensus final : public consensus::ConsensusProtocol {
 public:
  explicit SilentConsensus(Env& env);
  void propose(consensus::Value) override {}
  void on_message(const Message&) override {}
  [[nodiscard]] int current_round() const override { return 1; }
};

/// A coordinator that decides and imposes its value WITHOUT gathering a
/// majority: processes 0 and 1 both act as coordinator, broadcast their
/// proposal, and everyone decides the first coordinator value it receives.
/// Under a partition separating the two coordinators, the two sides decide
/// differently — the exact unsafety that the paper's majority-of-replies
/// rule exists to prevent. Violates: consensus.uniform_agreement (under
/// the partition schedule used by run_mutant).
class NoMajorityConsensus final : public consensus::ConsensusProtocol {
 public:
  explicit NoMajorityConsensus(Env& env);
  void propose(consensus::Value v) override;
  void on_message(const Message& m) override;
  [[nodiscard]] int current_round() const override { return 1; }
};

// --- the mutation catalogue ---------------------------------------------

enum class Mutant {
  kFlappingLeader,
  kSlander,
  kBlind,
  kCoupledViolation,
  kSplitBrain,
  kInventedValue,
  kDoubleDecide,
  kSilent,
  kNoMajority,
  /// Adaptive heartbeat ◇P whose safety margin never widens
  /// (ArrivalPredictor::Config::widen_on_mistake = false, tiny alpha).
  /// run_mutant pairs it with one geo-style jittery directed link whose
  /// lateness exceeds the frozen margin forever: the observer across that
  /// link flaps on its peer without end, while every other pair is stable
  /// — so eventual *weak* accuracy holds and eventual *strong* accuracy
  /// does not. Violates: fd.eventual_strong_accuracy.
  kFrozenMargin,
  /// A skew injector that applies a raw, unclamped clock skew while
  /// declaring a (much smaller) bound to the monitor — the bug the
  /// well-formed injector's ProcessHost clamp makes impossible. Caught by
  /// the scenario self-check, not an FD property. Violates:
  /// scenario.skew_bound.
  kSkewBound,
  /// The real two-level hierarchical ◇C (fd/hier_c) with its mutation hook
  /// engaged: cell leaders keep electing and beating but propagate an
  /// eternally empty digest, so members never learn of any crash. The
  /// identical config with the hook off passes this exact scenario
  /// (tests/test_hier_c.cpp asserts it). Violates: fd.strong_completeness.
  kStuckCellPropagator,
  /// The real SWIM gossiper (fd/swim) with its mutation hook engaged:
  /// ALIVE updates that would clear a suspect/dead entry are discarded, so
  /// the one false suspicion a gray host provokes becomes permanent while
  /// every other pair stabilizes. Violates: fd.eventual_strong_accuracy.
  kDroppedRefutation,
};

/// Every mutant, for iteration in tests.
[[nodiscard]] const std::vector<Mutant>& all_mutants();

[[nodiscard]] const char* mutant_name(Mutant m);

/// The property name the mutant's monitor MUST report as failing.
[[nodiscard]] const char* expected_property(Mutant m);

}  // namespace ecfd::check
