#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "check/fd_monitor.hpp"
#include "fd/oracle.hpp"
#include "runtime/thread_env.hpp"

/// \file thread_monitor.hpp
/// Read-only attachment of the FD property monitor to the threaded runtime.
///
/// Failure-detector state on the threaded runtime is owned by each host's
/// thread, so the monitor never reads an oracle directly: sample() posts a
/// read closure onto every live host's own executor, collects the replies
/// under the monitor's lock, and folds the combined snapshot into the same
/// FdPropertyMonitor used on the simulator. Hosts that are crashed (or too
/// slow to reply before the timeout) appear as having no output, exactly
/// like crashed processes in a simulated snapshot.
///
/// The threaded runtime is nondeterministic, so verdicts here are judged
/// with generous margins — the fuzz campaigns run on the simulator.

namespace ecfd::check {

class ThreadedFdMonitor {
 public:
  ThreadedFdMonitor(runtime::ThreadSystem& sys, FdPropertyMonitor::Config cfg);

  /// Attaches process \p p's oracles (either may be null). Must happen
  /// before ThreadSystem::start().
  void attach(ProcessId p, const SuspectOracle* s, const LeaderOracle* l);

  /// Takes one whole-system sample; blocks up to \p timeout wall-clock for
  /// hosts to reply. Call from the coordinating (test) thread.
  void sample(DurUs timeout = msec(500));

  [[nodiscard]] const FdPropertyMonitor& monitor() const { return monitor_; }

  /// Human-readable report of every non-holding property: the verdict lines
  /// plus, when the runtime carries an obs::Recorder
  /// (ThreadSystem::Config::trace_depth or attach_recorder), the recent
  /// state-ring events of each host named in a witness ("p<id>") — typed
  /// suspect/unsuspect/leader-change transitions and trace() notes — so a
  /// violation arrives with the offending host's FD history attached.
  /// Empty when all properties hold.
  [[nodiscard]] std::string violation_report() const;

 private:
  runtime::ThreadSystem& sys_;
  FdPropertyMonitor monitor_;
  std::vector<const SuspectOracle*> suspects_;
  std::vector<const LeaderOracle*> leaders_;

  /// Verdict states as of the previous sample; transitions are pushed into
  /// the runtime recorder's system ring as kVerdict events.
  std::map<std::string, VerdictState> last_verdict_state_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t round_{0};  ///< guards against late replies from a prior sample
  int pending_{0};
  std::vector<std::optional<ProcessSet>> got_suspected_;
  std::vector<std::optional<ProcessId>> got_trusted_;
};

}  // namespace ecfd::check
