#include "check/thread_monitor.hpp"

#include <cctype>
#include <chrono>
#include <set>
#include <sstream>

namespace ecfd::check {

namespace {

/// Extracts process ids from "p<digits>" tokens in a witness string (the
/// format fd_monitor's pname() emits).
std::set<ProcessId> processes_in_witness(const std::string& witness, int n) {
  std::set<ProcessId> out;
  for (std::size_t i = 0; i < witness.size(); ++i) {
    if (witness[i] != 'p') continue;
    if (i > 0 && (std::isalnum(static_cast<unsigned char>(witness[i - 1])) ||
                  witness[i - 1] == '_')) {
      continue;  // 'p' inside a word, not a process name
    }
    std::size_t j = i + 1;
    long id = 0;
    while (j < witness.size() &&
           std::isdigit(static_cast<unsigned char>(witness[j]))) {
      id = id * 10 + (witness[j] - '0');
      ++j;
    }
    if (j > i + 1 && id < n) out.insert(static_cast<ProcessId>(id));
    i = j - 1;
  }
  return out;
}

}  // namespace

ThreadedFdMonitor::ThreadedFdMonitor(runtime::ThreadSystem& sys,
                                     FdPropertyMonitor::Config cfg)
    : sys_(sys),
      monitor_(std::move(cfg)),
      suspects_(static_cast<std::size_t>(sys.n()), nullptr),
      leaders_(static_cast<std::size_t>(sys.n()), nullptr),
      got_suspected_(static_cast<std::size_t>(sys.n())),
      got_trusted_(static_cast<std::size_t>(sys.n())) {}

void ThreadedFdMonitor::attach(ProcessId p, const SuspectOracle* s,
                               const LeaderOracle* l) {
  suspects_[static_cast<std::size_t>(p)] = s;
  leaders_[static_cast<std::size_t>(p)] = l;
}

void ThreadedFdMonitor::sample(DurUs timeout) {
  const int n = sys_.n();
  std::uint64_t round;
  {
    std::unique_lock<std::mutex> lk(mu_);
    round = ++round_;
    pending_ = 0;
    for (auto& s : got_suspected_) s.reset();
    for (auto& t : got_trusted_) t.reset();
  }

  ProcessSet crashed(n);
  int expected = 0;
  for (ProcessId p = 0; p < n; ++p) {
    const auto i = static_cast<std::size_t>(p);
    runtime::ThreadHost& host = sys_.host(p);
    if (host.crashed()) {
      crashed.add(p);
      continue;
    }
    if (suspects_[i] == nullptr && leaders_[i] == nullptr) continue;
    ++expected;
    // The read happens on the host's own thread: oracle state is only ever
    // touched there, so this is the race-free way to observe it.
    host.post([this, i, round] {
      std::optional<ProcessSet> susp;
      std::optional<ProcessId> trusted;
      if (suspects_[i] != nullptr) susp = suspects_[i]->suspected();
      if (leaders_[i] != nullptr) trusted = leaders_[i]->trusted();
      std::lock_guard<std::mutex> lk(mu_);
      if (round != round_) return;  // stale reply from a previous sample
      got_suspected_[i] = std::move(susp);
      got_trusted_[i] = std::move(trusted);
      ++pending_;
      cv_.notify_all();
    });
  }

  FdPropertyMonitor::Snapshot snap;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_for(lk, std::chrono::microseconds(timeout),
                 [&] { return pending_ >= expected; });
    snap.suspected = got_suspected_;
    snap.trusted = got_trusted_;
  }
  snap.time = sys_.now();
  snap.crashed = crashed;
  monitor_.observe(snap);

  // Verdict transitions go to the runtime recorder's system ring so the
  // merged timeline shows when each property flipped, interleaved with the
  // per-host protocol events. sample() is called from one coordinating
  // thread, so last_verdict_state_ needs no lock.
  obs::Recorder* rec = sys_.recorder();
  if (rec != nullptr) {
    for (const Verdict& v : monitor_.verdicts()) {
      const auto it = last_verdict_state_.find(v.property);
      if (it != last_verdict_state_.end() && it->second == v.state) continue;
      const bool first = it == last_verdict_state_.end();
      last_verdict_state_[v.property] = v.state;
      if (first && v.state == VerdictState::kHolding) continue;
      rec->system_ring().push(snap.time, obs::EventType::kVerdict,
                              static_cast<std::int32_t>(v.state), 0,
                              rec->intern(v.property));
    }
  }
}

std::string ThreadedFdMonitor::violation_report() const {
  constexpr std::size_t kMaxTracedHosts = 4;
  std::ostringstream os;
  std::set<ProcessId> implicated;
  for (const Verdict& v : monitor_.verdicts()) {
    if (v.state == VerdictState::kHolding) continue;
    os << v.to_string() << '\n';
    for (ProcessId p : processes_in_witness(v.witness, sys_.n())) {
      implicated.insert(p);
    }
  }
  std::size_t traced = 0;
  for (ProcessId p : implicated) {
    if (traced == kMaxTracedHosts) {
      os << "  (further implicated hosts omitted)\n";
      break;
    }
    const auto events = sys_.host(p).recent_trace();
    if (events.empty()) continue;
    ++traced;
    os << "  recent trace of p" << p << ":\n";
    for (const auto& e : events) {
      os << "    t=" << e.time << "us " << e.tag;
      if (!e.detail.empty()) os << " " << e.detail;
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace ecfd::check
