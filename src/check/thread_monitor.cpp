#include "check/thread_monitor.hpp"

#include <chrono>

namespace ecfd::check {

ThreadedFdMonitor::ThreadedFdMonitor(runtime::ThreadSystem& sys,
                                     FdPropertyMonitor::Config cfg)
    : sys_(sys),
      monitor_(std::move(cfg)),
      suspects_(static_cast<std::size_t>(sys.n()), nullptr),
      leaders_(static_cast<std::size_t>(sys.n()), nullptr),
      got_suspected_(static_cast<std::size_t>(sys.n())),
      got_trusted_(static_cast<std::size_t>(sys.n())) {}

void ThreadedFdMonitor::attach(ProcessId p, const SuspectOracle* s,
                               const LeaderOracle* l) {
  suspects_[static_cast<std::size_t>(p)] = s;
  leaders_[static_cast<std::size_t>(p)] = l;
}

void ThreadedFdMonitor::sample(DurUs timeout) {
  const int n = sys_.n();
  std::uint64_t round;
  {
    std::unique_lock<std::mutex> lk(mu_);
    round = ++round_;
    pending_ = 0;
    for (auto& s : got_suspected_) s.reset();
    for (auto& t : got_trusted_) t.reset();
  }

  ProcessSet crashed(n);
  int expected = 0;
  for (ProcessId p = 0; p < n; ++p) {
    const auto i = static_cast<std::size_t>(p);
    runtime::ThreadHost& host = sys_.host(p);
    if (host.crashed()) {
      crashed.add(p);
      continue;
    }
    if (suspects_[i] == nullptr && leaders_[i] == nullptr) continue;
    ++expected;
    // The read happens on the host's own thread: oracle state is only ever
    // touched there, so this is the race-free way to observe it.
    host.post([this, i, round] {
      std::optional<ProcessSet> susp;
      std::optional<ProcessId> trusted;
      if (suspects_[i] != nullptr) susp = suspects_[i]->suspected();
      if (leaders_[i] != nullptr) trusted = leaders_[i]->trusted();
      std::lock_guard<std::mutex> lk(mu_);
      if (round != round_) return;  // stale reply from a previous sample
      got_suspected_[i] = std::move(susp);
      got_trusted_[i] = std::move(trusted);
      ++pending_;
      cv_.notify_all();
    });
  }

  FdPropertyMonitor::Snapshot snap;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_for(lk, std::chrono::microseconds(timeout),
                 [&] { return pending_ >= expected; });
    snap.suspected = got_suspected_;
    snap.trusted = got_trusted_;
  }
  snap.time = sys_.now();
  snap.crashed = crashed;
  monitor_.observe(snap);
}

}  // namespace ecfd::check
