#pragma once

#include <optional>
#include <string>
#include <vector>

#include "check/fd_monitor.hpp"
#include "check/mutants.hpp"
#include "check/verdict.hpp"
#include "consensus/harness.hpp"
#include "net/geo.hpp"
#include "net/network.hpp"

/// \file fuzz.hpp
/// Adversarial fault-injection fuzzing of the FD/consensus stacks.
///
/// A FaultSchedule is a seeded, serializable list of compound fault events
/// (crash, partition window, chaos window) injected into a consensus
/// harness run that is observed by the online property monitors. Correct
/// algorithms must show zero required-property violations on every
/// schedule the generator can produce; a violation yields a greedy-shrunk
/// minimal schedule plus a replayable repro file (check/repro.hpp).
///
/// Events are *compound*: a partition or chaos window carries its own end
/// time, so the shrinker can drop any single event without ever stranding
/// an un-healed partition (which would manufacture false violations).
/// Generated windows never overlap (heal()/clear_chaos() are global) and
/// everything ends by `chaos_end`, leaving a quiet tail in which eventual
/// properties must stabilize with `stable_margin` to spare.

namespace ecfd::check {

/// One injected fault.
struct FaultEvent {
  enum class Kind {
    kCrash,            ///< crash-stop `process` at `at`
    kPartitionWindow,  ///< partition `group` vs rest during [at, until)
    kChaosWindow,      ///< message chaos overlay active during [at, until)
    // WAN/geo scenario pack. New kinds are appended (never reordered) so
    // the ordinals hashed into historical fuzz digests stay stable.
    kGeoLatency,  ///< swap every link to the embedded geo matrix at t=0
    kFlapWindow,  ///< `process`'s links toggle up/down during [at, until)
    kGrayWindow,  ///< `process` alive-but-slow during [at, until)
    kSkewWindow,  ///< `process`'s clock skewed during [at, until)
  };
  Kind kind{Kind::kCrash};
  TimeUs at{0};
  TimeUs until{0};          ///< window events only
  ProcessId process{kNoProcess};  ///< kCrash + per-process windows
  ProcessSet group;         ///< kPartitionWindow only
  Network::Chaos chaos;     ///< kChaosWindow only

  // kGeoLatency: the exact matrices drawn, embedded so replays never
  // depend on the preset tables or the generator.
  GeoSpec geo;

  // kFlapWindow: duty cycle — each `flap_period` starts with an up phase
  // of flap_period * flap_up_ppm / 1e6, then the process's links drop
  // everything until the period ends. The window always heals at `until`.
  DurUs flap_period{0};
  std::uint32_t flap_up_ppm{0};

  // kGrayWindow: local timer stretch (1000 = normal) and per-message
  // extra send latency (ProcessHost::set_gray).
  std::uint32_t gray_factor_milli{0};
  DurUs gray_send_extra{0};

  // kSkewWindow: clock offset + drift, clamped by the injector to
  // +-skew_bound (ProcessHost::set_clock_skew); the bound is also
  // registered with the monitor's scenario self-check.
  std::int64_t skew_offset{0};
  std::int32_t skew_drift_ppm{0};
  DurUs skew_bound{0};
};

struct FaultSchedule {
  std::vector<FaultEvent> events;
};

/// What mix of faults the generator draws from.
enum class FuzzProfile {
  kCrash,      ///< crash-stops only (up to a minority)
  kPartition,  ///< partition/heal windows, possibly one crash
  kLossDelay,  ///< chaos windows: loss bursts, delay spikes, duplication
  kChurn,      ///< everything combined
  // WAN/geo scenario pack (appended: per-profile rng streams and the
  // ordinals in fuzz digests must not move for the LAN profiles).
  kGeo,   ///< whole-run asymmetric WAN latency matrix, maybe one crash
  kFlap,  ///< flapping-link windows, maybe one crash
  kGray,  ///< alive-but-slow windows, maybe one crash
  kSkew,  ///< bounded clock skew/drift windows, maybe one crash
};

/// Every profile, in campaign order ("--profile all").
[[nodiscard]] const std::vector<FuzzProfile>& all_profiles();

[[nodiscard]] const char* profile_name(FuzzProfile p);
[[nodiscard]] std::optional<FuzzProfile> profile_from_name(
    const std::string& s);

[[nodiscard]] const char* algo_name(consensus::Algo a);
[[nodiscard]] std::optional<consensus::Algo> algo_from_name(
    const std::string& s);

[[nodiscard]] const char* fd_stack_name(consensus::FdStack f);
[[nodiscard]] std::optional<consensus::FdStack> fd_stack_from_name(
    const std::string& s);

/// One fuzz case = (system under test, fault profile, seed, timing bounds).
struct FuzzCaseConfig {
  int n{5};
  std::uint64_t seed{1};
  FuzzProfile profile{FuzzProfile::kChurn};
  consensus::Algo algo{consensus::Algo::kEcfdC};
  consensus::FdStack fd{consensus::FdStack::kRing};
  TimeUs horizon{sec(24)};       ///< run end + termination deadline
  TimeUs chaos_end{sec(12)};     ///< all faults quiesce by here
  DurUs stable_margin{sec(4)};   ///< eventual properties must stabilize
                                 ///< at least this long before horizon
  DurUs monitor_period{msec(10)};
  bool require_strong_accuracy{false};
};

/// Draws a schedule from the profile, deterministically from cfg.seed.
/// Invariants: crashes <= (n-1)/2 (a majority stays alive), windows are
/// disjoint per kind, and every fault ends by cfg.chaos_end.
[[nodiscard]] FaultSchedule generate_schedule(const FuzzCaseConfig& cfg);

/// Processes crashed by the schedule.
[[nodiscard]] ProcessSet crashed_in(const FaultSchedule& s, int n);

class SimMonitor;

/// Schedules the window events of \p s onto a live system (crash events
/// are handled by the harness's scenario crash plan, not here). A
/// kGeoLatency event swaps the links immediately — the WAN matrix is
/// environment for the whole run, not a transient fault. When \p monitor
/// is given, skew windows register their declared bound with its
/// scenario.skew_bound self-check.
void apply_schedule(System& sys, const FaultSchedule& s,
                    SimMonitor* monitor = nullptr);

/// Result of one monitored, fault-injected run.
struct FuzzOutcome {
  bool ok{true};                     ///< no required property failed
  std::vector<Verdict> verdicts;     ///< everything, at run end
  std::vector<Verdict> violations;   ///< required-and-failing subset
  bool every_correct_decided{false};
  TimeUs sim_end{0};
  sim::Counters counters;            ///< simulator counter registry at end
  std::uint64_t result_fingerprint{0};  ///< fingerprint_result (0 for mutants)
  std::uint64_t digest{0};  ///< config + schedule + verdicts + fingerprint
  /// Monitor-witnessed detection ground truth (crash first seen + first
  /// suspicion per observer), for validating the online QoS scoreboard.
  /// Deliberately NOT folded into `digest`: historical digests predate it.
  std::vector<FdPropertyMonitor::DetectionWitness> detections;
};

/// Runs one fuzz case under the given schedule, with monitors attached.
/// When \p recorder is non-null it is attached to the simulated system
/// (typed per-host event rings) and to the monitor (kVerdict transitions in
/// the system ring), so a failing case can be replayed into a timeline.
[[nodiscard]] FuzzOutcome run_fuzz_case(const FuzzCaseConfig& cfg,
                                        const FaultSchedule& schedule,
                                        obs::Recorder* recorder = nullptr);

/// Generates the schedule from cfg.seed, then runs it.
[[nodiscard]] FuzzOutcome run_fuzz_case(const FuzzCaseConfig& cfg);

/// True iff \p o reports a violation of exactly \p property.
[[nodiscard]] bool violates(const FuzzOutcome& o, const std::string& property);

/// Greedy 1-minimal shrink: repeatedly re-runs the case with one event
/// removed and keeps the removal whenever \p property still fails. The
/// returned schedule still violates \p property and no single further
/// removal preserves the violation. \p runs (optional) counts re-runs.
[[nodiscard]] FaultSchedule shrink_schedule(const FuzzCaseConfig& cfg,
                                            FaultSchedule schedule,
                                            const std::string& property,
                                            int* runs = nullptr);

/// Runs mutant \p m under its canonical catching scenario (see
/// check/mutants.hpp) and returns the monitored outcome; callers assert
/// that violates(outcome, expected_property(m)) holds.
[[nodiscard]] FuzzOutcome run_mutant(Mutant m, std::uint64_t seed);

/// Digest of a fuzz case + schedule + outcome, for replay pinning.
[[nodiscard]] std::uint64_t fuzz_digest(const FuzzCaseConfig& cfg,
                                        const FaultSchedule& schedule,
                                        const std::vector<Verdict>& verdicts,
                                        std::uint64_t result_fingerprint);

}  // namespace ecfd::check
