#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "check/verdict.hpp"
#include "consensus/consensus.hpp"
#include "net/process_set.hpp"

/// \file consensus_monitor.hpp
/// Online monitor for the Uniform Consensus properties (Section 5.1,
/// Theorem 2): uniform agreement, validity, uniform integrity, and
/// termination-by-deadline.
///
/// Event driven: the harness (or a test) feeds note_proposal() for every
/// proposal and note_decision() for every decision event. The three safety
/// properties yield a final kViolated verdict with a concrete witness the
/// moment they break; termination is judged against a deadline when
/// verdicts() is called with the run's end time.
///
/// note_decision is deliberately *not* routed through
/// ConsensusProtocol::decide() alone — decide() is idempotent, so a mutant
/// that "decides twice" must report both events directly for the integrity
/// monitor to see them (see check/mutants.hpp).

namespace ecfd::check {

class ConsensusMonitor {
 public:
  struct Config {
    int n{0};
    ProcessSet correct;           ///< processes that never crash
    TimeUs deadline{kTimeNever};  ///< termination-by-deadline bound
  };

  explicit ConsensusMonitor(Config cfg);

  /// Records that process \p p proposed \p v.
  void note_proposal(ProcessId p, consensus::Value v, TimeUs at);

  /// Records a decision event at process \p p.
  void note_decision(ProcessId p, consensus::Value v, int round, TimeUs at);

  /// Convenience: installs note_decision as the on_decide callback of every
  /// protocol (indexed by process id; null entries are skipped). The
  /// monitor must outlive the protocols' run.
  void attach(const std::vector<consensus::ConsensusProtocol*>& protocols);

  /// Verdicts as of time \p now. Property names:
  ///   consensus.uniform_agreement, consensus.validity,
  ///   consensus.uniform_integrity, consensus.termination
  [[nodiscard]] std::vector<Verdict> verdicts(TimeUs now) const;

  [[nodiscard]] std::int64_t decisions() const { return decisions_; }

 private:
  struct SafetyState {
    bool violated{false};
    TimeUs at{kTimeNever};
    std::string witness;
    void violate(TimeUs now, const std::string& why) {
      if (violated) return;
      violated = true;
      at = now;
      witness = why;
    }
    [[nodiscard]] Verdict verdict(const char* name, TimeUs holds_since) const;
  };

  struct FirstDecision {
    bool decided{false};
    consensus::Value value{};
    TimeUs at{0};
  };

  Config cfg_;
  std::set<consensus::Value> proposed_;
  std::vector<FirstDecision> first_;
  std::optional<consensus::Value> agreed_;
  ProcessId agreed_by_{kNoProcess};
  std::int64_t decisions_{0};
  TimeUs last_correct_decision_{0};
  SafetyState agreement_;
  SafetyState validity_;
  SafetyState integrity_;
};

}  // namespace ecfd::check
