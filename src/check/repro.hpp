#pragma once

#include <optional>
#include <string>

#include "check/fuzz.hpp"

/// \file repro.hpp
/// Replayable repro files for fuzz-found violations ("ecfd.repro.v1").
///
/// A repro file captures a FuzzCaseConfig plus the (usually shrunk) fault
/// schedule, the target property, and the run digest. Replaying the file
/// re-runs the identical monitored simulation; because every field —
/// including the chaos probabilities, stored as exact parts-per-million
/// integers — round-trips losslessly through the text form, the replay's
/// digest matches the recorded one bit for bit.
///
/// The format is line-oriented text so a repro attaches to a bug report
/// and diffs cleanly:
///
///   ecfd.repro.v1
///   n 5
///   seed 42
///   profile churn
///   algo ecfd_c
///   fd ring
///   horizon_us 24000000
///   chaos_end_us 12000000
///   margin_us 4000000
///   period_us 10000
///   property fd.leader_agreement
///   digest 0x1234abcd5678ef90
///   event crash at=2000000 p=3
///   event partition at=1000000 until=5000000 group=0,2
///   event chaos at=3000000 until=8000000 loss_ppm=200000
///       delay_max_us=15000 dup_ppm=50000   (one line in the file)
///   end

namespace ecfd::check {

struct ReproFile {
  FuzzCaseConfig config;
  FaultSchedule schedule;
  std::string property;     ///< target property; empty = any violation
  std::uint64_t digest{0};  ///< recorded run digest; 0 = unrecorded
};

/// Serializes to the ecfd.repro.v1 text form.
[[nodiscard]] std::string to_text(const ReproFile& r);

/// Parses the text form; nullopt (and *error, if given) on malformed input.
[[nodiscard]] std::optional<ReproFile> parse_repro(const std::string& text,
                                                   std::string* error = nullptr);

/// File I/O convenience wrappers around to_text/parse_repro.
bool save_repro(const ReproFile& r, const std::string& path);
[[nodiscard]] std::optional<ReproFile> load_repro(const std::string& path,
                                                  std::string* error = nullptr);

/// Re-runs the recorded case. The outcome's digest must equal r.digest
/// when the file was produced by the same build.
[[nodiscard]] FuzzOutcome replay(const ReproFile& r,
                                 obs::Recorder* recorder = nullptr);

}  // namespace ecfd::check
