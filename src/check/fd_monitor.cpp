#include "check/fd_monitor.hpp"

#include <cassert>
#include <string>

namespace ecfd::check {

namespace {

std::string pname(ProcessId p) { return "p" + std::to_string(p); }

}  // namespace

void FdPropertyMonitor::EventualState::update(TimeUs now, bool now_ok,
                                              const std::string& why) {
  if (now_ok) {
    if (!ok) {
      ok = true;
      holds_since = now;
    }
    return;
  }
  ok = false;
  last_violation = now;
  witness = why;
  ++violations;
}

Verdict FdPropertyMonitor::EventualState::verdict(const char* name,
                                                  bool required) const {
  Verdict v;
  v.property = name;
  v.eventual = true;
  v.required = required;
  v.state = ok ? VerdictState::kHolding : VerdictState::kPending;
  v.holds_since = holds_since;
  v.violated_at = last_violation;
  // Keep the last violation description even while holding: for a property
  // that stabilized too late, "why not earlier" IS the witness.
  v.witness = witness;
  v.violations = violations;
  return v;
}

FdPropertyMonitor::FdPropertyMonitor(Config cfg) : cfg_(std::move(cfg)) {
  assert(cfg_.n > 0);
  unsuspected_since_.assign(static_cast<std::size_t>(cfg_.n), 0);
  prev_trusted_.assign(static_cast<std::size_t>(cfg_.n), std::nullopt);
}

void FdPropertyMonitor::observe(const Snapshot& snap) {
  assert(snap.time >= last_time_ && "snapshots must be time-ordered");
  assert(static_cast<int>(snap.suspected.size()) == cfg_.n);
  assert(static_cast<int>(snap.trusted.size()) == cfg_.n);
  last_time_ = snap.time;
  ++snapshots_;
  const TimeUs now = snap.time;
  const auto& correct = cfg_.correct;

  if (cfg_.check_suspect) {
    // Detection witnesses: per victim, the first snapshot where the crash
    // was visible and, per observer, the first snapshot sampling the
    // observer suspecting it.
    for (ProcessId c : snap.crashed.members()) {
      DetectionWitness* w = nullptr;
      for (DetectionWitness& d : detections_) {
        if (d.victim == c) {
          w = &d;
          break;
        }
      }
      if (w == nullptr) {
        DetectionWitness d;
        d.victim = c;
        d.crashed_seen = now;
        d.first_suspect.assign(static_cast<std::size_t>(cfg_.n), kTimeNever);
        detections_.push_back(std::move(d));
        w = &detections_.back();
      }
      for (ProcessId q : correct.members()) {
        auto& first = w->first_suspect[static_cast<std::size_t>(q)];
        if (first != kTimeNever) continue;
        const auto& sq = snap.suspected[static_cast<std::size_t>(q)];
        if (sq.has_value() && sq->contains(c)) first = now;
      }
    }

    // Strong completeness: every process crashed by now is suspected by
    // every correct process.
    {
      bool ok = true;
      std::string why;
      for (ProcessId c : snap.crashed.members()) {
        for (ProcessId q : correct.members()) {
          const auto& sq = snap.suspected[static_cast<std::size_t>(q)];
          if (!sq.has_value() || !sq->contains(c)) {
            ok = false;
            why = pname(q) + " does not suspect crashed " + pname(c);
            break;
          }
        }
        if (!ok) break;
      }
      completeness_.update(now, ok, why);
    }

    // Eventual strong accuracy: no correct process suspected by any
    // correct process.
    {
      bool ok = true;
      std::string why;
      for (ProcessId q : correct.members()) {
        const auto& sq = snap.suspected[static_cast<std::size_t>(q)];
        if (!sq.has_value()) {
          ok = false;
          why = pname(q) + " has no suspect output";
          break;
        }
        for (ProcessId c : correct.members()) {
          if (sq->contains(c)) {
            ok = false;
            why = pname(q) + " suspects correct " + pname(c);
            break;
          }
        }
        if (!ok) break;
      }
      strong_accuracy_.update(now, ok, why);
    }

    // Eventual weak accuracy: track, per correct candidate c, the suffix
    // during which no correct process suspects c.
    {
      bool any_candidate = false;
      ProcessId suspected_everyone_witness = kNoProcess;
      for (ProcessId c : correct.members()) {
        bool clean = true;
        for (ProcessId q : correct.members()) {
          const auto& sq = snap.suspected[static_cast<std::size_t>(q)];
          if (!sq.has_value() || sq->contains(c)) {
            clean = false;
            suspected_everyone_witness = q;
            break;
          }
        }
        auto& since = unsuspected_since_[static_cast<std::size_t>(c)];
        if (clean) {
          if (since == kTimeNever) since = now;
          any_candidate = true;
        } else {
          since = kTimeNever;
        }
      }
      if (!any_candidate) {
        ++ewa_bad_samples_;
        ewa_last_bad_ = now;
        ewa_witness_ = "every correct process is suspected (last: " +
                       pname(suspected_everyone_witness) +
                       " suspects the final candidate)";
      }
    }
  }

  if (cfg_.check_leader) {
    // Leader agreement (Omega, Property 1): all correct processes trust
    // the same correct process — and keep trusting it (a change of the
    // common leader resets the suffix, so a forever-flapping Omega never
    // stabilizes even when the flaps are synchronized).
    {
      bool ok = true;
      std::string why;
      ProcessId common = kNoProcess;
      for (ProcessId q : correct.members()) {
        const auto& tq = snap.trusted[static_cast<std::size_t>(q)];
        if (!tq.has_value() || *tq == kNoProcess) {
          ok = false;
          why = pname(q) + " has no leader output";
          break;
        }
        if (common == kNoProcess) {
          common = *tq;
        } else if (*tq != common) {
          ok = false;
          why = pname(q) + " trusts " + pname(*tq) + " but " +
                pname(correct.first()) + " trusts " + pname(common);
          break;
        }
      }
      if (ok && !correct.contains(common)) {
        ok = false;
        why = "common leader " + pname(common) + " is faulty";
      }
      if (ok && prev_common_leader_ != kNoProcess &&
          common != prev_common_leader_) {
        ok = false;
        why = "common leader changed " + pname(prev_common_leader_) +
              " -> " + pname(common);
      }
      prev_common_leader_ = ok ? common : kNoProcess;
      leader_agreement_.update(now, ok, why);
    }

    // Leader stability (per process): trusted_q unchanged since the last
    // snapshot, for every correct q. Informational — subsumed by
    // agreement's permanence clause, but a far more precise witness for
    // flapping detectors.
    {
      bool ok = true;
      std::string why;
      for (ProcessId q : correct.members()) {
        const auto& tq = snap.trusted[static_cast<std::size_t>(q)];
        auto& prev = prev_trusted_[static_cast<std::size_t>(q)];
        if (prev.has_value() && tq.has_value() && *prev != *tq) {
          ok = false;
          why = pname(q) + " switched leader " + pname(*prev) + " -> " +
                pname(*tq);
        }
        prev = tq;
      }
      leader_stability_.update(now, ok, why);
    }
  }

  if (cfg_.check_suspect && cfg_.check_leader) {
    // ◇C coupling clause (Definition 1, third clause): eventually
    // trusted_p ∉ suspected_p at every correct p.
    bool ok = true;
    std::string why;
    for (ProcessId q : correct.members()) {
      const auto& tq = snap.trusted[static_cast<std::size_t>(q)];
      const auto& sq = snap.suspected[static_cast<std::size_t>(q)];
      if (!tq.has_value() || !sq.has_value()) continue;
      if (*tq != kNoProcess && sq->contains(*tq)) {
        ok = false;
        why = pname(q) + " suspects its own trusted " + pname(*tq);
        break;
      }
    }
    coupling_.update(now, ok, why);
  }
}

std::vector<Verdict> FdPropertyMonitor::verdicts() const {
  std::vector<Verdict> out;
  if (cfg_.check_suspect) {
    out.push_back(completeness_.verdict("fd.strong_completeness", true));

    // Eventual weak accuracy: the earliest clean suffix over candidates.
    Verdict ewa;
    ewa.property = "fd.eventual_weak_accuracy";
    ewa.eventual = true;
    ewa.required = true;
    ewa.violations = ewa_bad_samples_;
    ProcessId best = kNoProcess;
    TimeUs best_since = kTimeNever;
    for (ProcessId c : cfg_.correct.members()) {
      const TimeUs since = unsuspected_since_[static_cast<std::size_t>(c)];
      if (since < best_since) {
        best_since = since;
        best = c;
      }
    }
    if (best == kNoProcess) {
      ewa.state = VerdictState::kPending;
      ewa.violated_at = ewa_last_bad_;
      ewa.witness = ewa_witness_.empty()
                        ? std::string("no unsuspected correct candidate")
                        : ewa_witness_;
    } else {
      ewa.state = VerdictState::kHolding;
      ewa.holds_since = best_since;
      ewa.witness = "witness " + pname(best);
    }
    out.push_back(ewa);

    out.push_back(strong_accuracy_.verdict("fd.eventual_strong_accuracy",
                                           cfg_.require_strong_accuracy));
  }
  if (cfg_.check_leader) {
    out.push_back(leader_agreement_.verdict("fd.leader_agreement", true));
    out.push_back(leader_stability_.verdict("fd.leader_stability", false));
  }
  if (cfg_.check_suspect && cfg_.check_leader) {
    out.push_back(coupling_.verdict("fd.coupling", true));
  }
  return out;
}

}  // namespace ecfd::check
