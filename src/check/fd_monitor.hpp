#pragma once

#include <optional>
#include <string>
#include <vector>

#include "check/verdict.hpp"
#include "net/process_set.hpp"

/// \file fd_monitor.hpp
/// Online monitor for the paper's failure-detector properties (Sections
/// 2-3: the Chandra-Toueg completeness/accuracy axes, Omega's Property 1,
/// and Definition 1's ◇C coupling clause `trusted_p ∉ suspected_p`).
///
/// The monitor is a pure state machine: feed it whole-system snapshots in
/// time order via observe() and query verdicts() at any point. It has no
/// dependency on the simulator, so the same class evaluates runs on the
/// discrete-event System (driven by check::SimMonitor) and, read-only, on
/// the threaded runtime (driven by check::ThreadedFdMonitor).
///
/// Eventual properties ("there is a time after which X holds") are tracked
/// as the start of the current holding suffix: every violating snapshot
/// resets the suffix and records the witness. The caller classifies a
/// finished run with check::satisfied(), which demands stabilization with
/// margin before the end.

namespace ecfd::check {

class FdPropertyMonitor {
 public:
  struct Config {
    int n{0};
    /// Processes that never crash during the run (known from the fault
    /// schedule); the paper's properties quantify over these.
    ProcessSet correct;
    /// Evaluate the suspected-set properties (completeness/accuracy).
    bool check_suspect{true};
    /// Evaluate the leader properties (Omega agreement + stability).
    bool check_leader{true};
    /// Enforce eventual *strong* accuracy (◇P stacks); otherwise it is
    /// reported informationally and only weak accuracy is required.
    bool require_strong_accuracy{false};
  };

  explicit FdPropertyMonitor(Config cfg);

  /// One whole-system observation. `suspected[p]` / `trusted[p]` are
  /// nullopt for crashed processes and for processes without that oracle.
  struct Snapshot {
    TimeUs time{0};
    ProcessSet crashed;  ///< processes crashed at snapshot time
    std::vector<std::optional<ProcessSet>> suspected;
    std::vector<std::optional<ProcessId>> trusted;
  };

  /// Feeds a snapshot; snapshots must arrive in nondecreasing time order.
  void observe(const Snapshot& snap);

  /// Verdicts over everything observed so far. Property names:
  ///   fd.strong_completeness, fd.eventual_weak_accuracy,
  ///   fd.eventual_strong_accuracy, fd.leader_agreement,
  ///   fd.leader_stability, fd.coupling
  [[nodiscard]] std::vector<Verdict> verdicts() const;

  [[nodiscard]] TimeUs last_observed() const { return last_time_; }
  [[nodiscard]] std::int64_t snapshots() const { return snapshots_; }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Ground-truth detection witness for one crashed process, as the
  /// monitor saw it: when the crash first appeared in a snapshot and when
  /// each observer's suspicion of the victim was first sampled. Times are
  /// quantized to the monitor period, so they bound — rather than equal —
  /// the event-exact detection times the obs::QosScoreboard estimates;
  /// tests/test_obs_qos.cpp validates the scoreboard against these.
  struct DetectionWitness {
    ProcessId victim{kNoProcess};
    TimeUs crashed_seen{kTimeNever};
    /// Indexed by observer; kTimeNever = never seen suspecting the victim.
    std::vector<TimeUs> first_suspect;
  };

  /// One entry per victim, in the order crashes were first observed.
  [[nodiscard]] const std::vector<DetectionWitness>& detections() const {
    return detections_;
  }

 private:
  /// Suffix tracker for one eventual property.
  struct EventualState {
    bool ok{true};
    TimeUs holds_since{0};
    TimeUs last_violation{kTimeNever};
    std::string witness;
    std::int64_t violations{0};

    void update(TimeUs now, bool now_ok, const std::string& why);
    [[nodiscard]] Verdict verdict(const char* name, bool required) const;
  };

  Config cfg_;
  TimeUs last_time_{0};
  std::int64_t snapshots_{0};

  EventualState completeness_;
  EventualState strong_accuracy_;
  EventualState leader_agreement_;
  EventualState leader_stability_;
  EventualState coupling_;

  // Eventual weak accuracy needs a per-candidate view: the SAME correct
  // process must eventually be unsuspected by every correct process
  // forever. unsuspected_since_[c] is the start of c's current clean
  // suffix (kTimeNever while c is suspected by some correct process).
  std::vector<TimeUs> unsuspected_since_;
  std::int64_t ewa_bad_samples_{0};
  TimeUs ewa_last_bad_{kTimeNever};
  std::string ewa_witness_;

  // Leader-change detection.
  std::vector<std::optional<ProcessId>> prev_trusted_;
  ProcessId prev_common_leader_{kNoProcess};

  // Detection witnesses (see DetectionWitness).
  std::vector<DetectionWitness> detections_;
};

}  // namespace ecfd::check
