#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

/// \file http_export.hpp
/// A minimal embedded HTTP/1.0 exporter for observability endpoints.
///
/// This replaces the detached-thread metrics server that used to live
/// inside tools/ecfd_node.cpp: that one leaked its listening socket and
/// could never be joined, so a node's exit raced an accept() on a
/// half-dead process. MetricsHttpServer owns the whole lifecycle —
/// start() binds (port 0 picks an ephemeral port, reported by port(), so
/// tests can run in parallel), the accept loop polls with a short timeout
/// and checks a stop flag, and stop() shuts the listener down and joins
/// the thread. The destructor stops too, so a node cannot leak it.
///
/// Handlers are registered per path and return the full response body;
/// they run on the server thread, so they must be thread-safe against the
/// node's main loop (the metrics registry and the QoS scoreboard's bound
/// gauges already are). Anything not registered is a 404; GET only.

namespace ecfd::obs {

class MetricsHttpServer {
 public:
  MetricsHttpServer() = default;
  ~MetricsHttpServer() { stop(); }
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Registers \p gen to serve GET \p path (exact match) with the given
  /// Content-Type. Call before start(); not thread-safe afterwards.
  void handle(std::string path, std::string content_type,
              std::function<std::string()> gen);

  /// Binds 0.0.0.0:\p port (0 = ephemeral) and starts the accept thread.
  /// Returns false with *error set on bind failure.
  bool start(int port, std::string* error = nullptr);

  /// The bound port (after start()); -1 when not running.
  [[nodiscard]] int port() const { return port_; }

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Stops the accept loop, closes the listener, joins the thread.
  /// Idempotent.
  void stop();

 private:
  struct Route {
    std::string path;
    std::string content_type;
    std::function<std::string()> gen;
  };

  void serve_loop();
  void serve_client(int fd);

  std::vector<Route> routes_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  int listen_fd_{-1};
  int port_{-1};
};

}  // namespace ecfd::obs
