#include "obs/http_export.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace ecfd::obs {

void MetricsHttpServer::handle(std::string path, std::string content_type,
                               std::function<std::string()> gen) {
  routes_.push_back(
      Route{std::move(path), std::move(content_type), std::move(gen)});
}

bool MetricsHttpServer::start(int port, std::string* error) {
  if (running()) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket() failed";
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  // Loopback only: this is an operator/scraper endpoint, not cluster
  // traffic, and must not widen the node's attack surface.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    if (error != nullptr) {
      *error = "bind/listen on port " + std::to_string(port) + " failed";
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void MetricsHttpServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, 200);  // short timeout: stop() latency
    if (r <= 0) continue;
    if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) break;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    serve_client(client);
    ::close(client);
  }
}

void MetricsHttpServer::serve_client(int fd) {
  char req[1024];
  const ssize_t got = ::recv(fd, req, sizeof(req) - 1, 0);
  if (got <= 0) return;
  req[got] = '\0';

  // "GET /path HTTP/1.x" — anything else is a 404/405.
  std::string path;
  if (std::strncmp(req, "GET ", 4) == 0) {
    const char* start = req + 4;
    const char* end = std::strchr(start, ' ');
    if (end != nullptr) path.assign(start, end);
  }
  const Route* route = nullptr;
  for (const Route& r : routes_) {
    if (r.path == path) {
      route = &r;
      break;
    }
  }

  std::string body;
  std::string header;
  if (route != nullptr) {
    body = route->gen();
    header = "HTTP/1.0 200 OK\r\nContent-Type: " + route->content_type +
             "\r\nContent-Length: " + std::to_string(body.size()) +
             "\r\nConnection: close\r\n\r\n";
  } else {
    body = "not found\n";
    for (const Route& r : routes_) body += r.path + "\n";
    header = "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\n"
             "Content-Length: " + std::to_string(body.size()) +
             "\r\nConnection: close\r\n\r\n";
  }
  const std::string resp = header + body;
  std::size_t off = 0;
  while (off < resp.size()) {
    const ssize_t sent = ::send(fd, resp.data() + off, resp.size() - off,
                                MSG_NOSIGNAL);
    if (sent <= 0) break;
    off += static_cast<std::size_t>(sent);
  }
}

void MetricsHttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_ = -1;
}

}  // namespace ecfd::obs
