#include "obs/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <tuple>

#include "obs/json.hpp"

namespace ecfd::obs {

namespace {

/// Reverse of event_type_name(); kNone for unknown names (forward compat:
/// a newer writer's types render as gaps, not parse failures).
EventType event_type_from_name(const std::string& name) {
  for (int i = 1; i < kNumEventTypes; ++i) {
    const auto t = static_cast<EventType>(i);
    if (name == event_type_name(t)) return t;
  }
  return EventType::kNone;
}

void json_escape_into(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

const std::string& label_of(const MergedTimeline& t, std::int32_t id) {
  static const std::string kEmpty;
  if (id < 0 || static_cast<std::size_t>(id) >= t.strings.size()) return kEmpty;
  return t.strings[static_cast<std::size_t>(id)];
}

}  // namespace

std::optional<TimelineDoc> parse_trace_json(const std::string& text,
                                            std::string* error) {
  std::string parse_error;
  const json::Value root = json::parse(text, &parse_error);
  auto fail = [&](const std::string& what) -> std::optional<TimelineDoc> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  if (!parse_error.empty()) return fail("bad JSON: " + parse_error);
  if (root.kind() != json::Value::Kind::kObject) {
    return fail("trace document is not a JSON object");
  }
  if (root.at("schema").as_string() != "ecfd.trace.v1") {
    return fail("schema is not ecfd.trace.v1");
  }

  TimelineDoc doc;
  doc.meta.source = root.at("source").as_string();
  const std::string clock = root.at("clock").as_string();
  if (clock == "virtual") {
    doc.meta.clock = ClockDomain::kVirtual;
  } else if (clock == "monotonic") {
    doc.meta.clock = ClockDomain::kMonotonic;
  } else {
    return fail("clock must be \"virtual\" or \"monotonic\"");
  }
  doc.meta.wall_epoch_us = root.at("wall_epoch_us").as_int();
  doc.n = static_cast<int>(root.at("n").as_int());
  doc.dropped = static_cast<std::uint64_t>(root.at("dropped").as_int());
  for (const json::Value& s : root.at("strings").as_array()) {
    doc.strings.push_back(s.as_string());
  }
  const json::Array& events = root.at("events").as_array();
  doc.events.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json::Array& row = events[i].as_array();
    if (row.size() != 6) {
      return fail("event " + std::to_string(i) +
                  " is not a 6-element [time, host, type, a, b, label] row");
    }
    Event e;
    e.time = row[0].as_int();
    e.host = static_cast<std::int32_t>(row[1].as_int());
    e.type = event_type_from_name(row[2].as_string());
    e.a = static_cast<std::int32_t>(row[3].as_int());
    e.b = row[4].as_int();
    e.label = static_cast<std::int32_t>(row[5].as_int());
    if (e.type != EventType::kNone) doc.events.push_back(e);
  }
  return doc;
}

TimelineDoc snapshot_doc(const Recorder& rec, std::string origin) {
  TimelineDoc doc;
  doc.meta = rec.meta();
  doc.n = rec.hosts();
  doc.dropped = rec.dropped_total();
  doc.strings = rec.strings();
  doc.events = rec.merged();
  doc.origin = std::move(origin);
  return doc;
}

namespace {

/// Per-doc clock refinement from wire-level causal edges.
///
/// Wall-clock epoch calibration (wall_epoch_us differences) is only as good
/// as CLOCK_REALTIME agreement between the processes. When traces carry
/// kWireSend/kWireDeliver pairs (the causal-seq wire flag), every matched
/// frame gives a one-way delay observation d = recv_j - send_i =
/// latency + (err_j - err_i); the minimum over many frames approaches the
/// floor latency plus the offset error (standard NTP reasoning). With both
/// directions measured, (d_ij - d_ji) / 2 estimates err_j - err_i with the
/// symmetric part of the latency cancelled. Corrections propagate over a
/// BFS spanning tree anchored at \p anchor; docs without a causal path to
/// the anchor keep the epoch-only calibration.
///
/// \p offsets are the already-computed epoch rebases; returns an extra
/// per-doc additive correction.
std::vector<std::int64_t> causal_corrections(
    const std::vector<TimelineDoc>& docs,
    const std::vector<std::int64_t>& offsets, std::size_t anchor) {
  std::vector<std::int64_t> corr(docs.size(), 0);
  if (docs.size() < 2) return corr;

  // host -> the unique monotonic doc that recorded its kWireSend events
  // (-1 unknown, -2 ambiguous: the host appears in several docs).
  std::map<std::int32_t, int> host_doc;
  // (sender, receiver, seq) -> epoch-rebased send time.
  std::map<std::tuple<std::int32_t, std::int32_t, std::int64_t>, TimeUs>
      send_at;
  for (std::size_t d = 0; d < docs.size(); ++d) {
    if (docs[d].meta.clock != ClockDomain::kMonotonic) continue;
    for (const Event& e : docs[d].events) {
      if (e.type != EventType::kWireSend) continue;
      auto [it, inserted] = host_doc.emplace(e.host, static_cast<int>(d));
      if (!inserted && it->second != static_cast<int>(d)) it->second = -2;
      send_at[{e.host, e.a, e.b}] = e.time + offsets[d];
    }
  }
  if (host_doc.empty()) return corr;

  // Minimum observed one-way delay per ordered doc pair.
  std::map<std::pair<int, int>, std::int64_t> min_delay;
  for (std::size_t d = 0; d < docs.size(); ++d) {
    if (docs[d].meta.clock != ClockDomain::kMonotonic) continue;
    for (const Event& e : docs[d].events) {
      if (e.type != EventType::kWireDeliver) continue;
      const auto src_doc = host_doc.find(e.a);
      if (src_doc == host_doc.end() || src_doc->second < 0 ||
          src_doc->second == static_cast<int>(d)) {
        continue;
      }
      const auto sent = send_at.find({e.a, e.host, e.b});
      if (sent == send_at.end()) continue;
      const std::int64_t delay = (e.time + offsets[d]) - sent->second;
      const std::pair<int, int> key{src_doc->second, static_cast<int>(d)};
      auto [it, inserted] = min_delay.emplace(key, delay);
      if (!inserted && delay < it->second) it->second = delay;
    }
  }

  // BFS from the anchor over doc pairs measured in both directions.
  std::vector<bool> placed(docs.size(), false);
  placed[anchor] = true;
  std::vector<std::size_t> frontier{anchor};
  while (!frontier.empty()) {
    std::vector<std::size_t> next;
    for (const std::size_t i : frontier) {
      for (std::size_t j = 0; j < docs.size(); ++j) {
        if (placed[j]) continue;
        const auto fwd = min_delay.find({static_cast<int>(i),
                                         static_cast<int>(j)});
        const auto rev = min_delay.find({static_cast<int>(j),
                                         static_cast<int>(i)});
        if (fwd == min_delay.end() || rev == min_delay.end()) continue;
        // (d_ij - d_ji) / 2 estimates err_j - err_i on the raw rebased
        // clocks; subtracting it (relative to i's own correction) aligns j.
        corr[j] = corr[i] - (fwd->second - rev->second) / 2;
        placed[j] = true;
        next.push_back(j);
      }
    }
    frontier = std::move(next);
  }
  return corr;
}

}  // namespace

MergedTimeline merge(const std::vector<TimelineDoc>& docs) {
  MergedTimeline out;
  std::int64_t min_epoch = 0;
  bool have_epoch = false;
  std::size_t anchor = 0;
  for (std::size_t d = 0; d < docs.size(); ++d) {
    out.n = std::max(out.n, docs[d].n);
    out.dropped += docs[d].dropped;
    if (docs[d].meta.clock == ClockDomain::kMonotonic) {
      out.monotonic = true;
      if (!have_epoch || docs[d].meta.wall_epoch_us < min_epoch) {
        min_epoch = docs[d].meta.wall_epoch_us;
        have_epoch = true;
        anchor = d;
      }
    }
  }

  std::map<std::string, std::int32_t> merged_ids;
  auto intern = [&](const std::string& s) {
    auto it = merged_ids.find(s);
    if (it != merged_ids.end()) return it->second;
    const auto id = static_cast<std::int32_t>(out.strings.size());
    out.strings.push_back(s);
    merged_ids.emplace(s, id);
    return id;
  };

  // Epoch rebases first, then the causal refinement computed on top.
  std::vector<std::int64_t> offsets(docs.size(), 0);
  for (std::size_t d = 0; d < docs.size(); ++d) {
    if (docs[d].meta.clock == ClockDomain::kMonotonic) {
      offsets[d] = docs[d].meta.wall_epoch_us - min_epoch;
    }
  }
  const std::vector<std::int64_t> corr =
      causal_corrections(docs, offsets, anchor);

  struct Tagged {
    Event e;
    std::size_t doc;
    std::size_t idx;
  };
  std::vector<Tagged> all;
  for (std::size_t d = 0; d < docs.size(); ++d) {
    const TimelineDoc& doc = docs[d];
    const std::int64_t offset =
        doc.meta.clock == ClockDomain::kMonotonic ? offsets[d] + corr[d] : 0;
    // One-time remap of this doc's label ids into the merged table.
    std::vector<std::int32_t> remap(doc.strings.size());
    for (std::size_t i = 0; i < doc.strings.size(); ++i) {
      remap[i] = intern(doc.strings[i]);
    }
    for (std::size_t i = 0; i < doc.events.size(); ++i) {
      Event e = doc.events[i];
      e.time += offset;
      e.label = e.label >= 0 && static_cast<std::size_t>(e.label) < remap.size()
                    ? remap[static_cast<std::size_t>(e.label)]
                    : -1;
      if (e.type == EventType::kNote && e.b >= 0 &&
          static_cast<std::size_t>(e.b) < remap.size()) {
        e.b = remap[static_cast<std::size_t>(e.b)];
      }
      all.push_back(Tagged{e, d, i});
      out.n = std::max(out.n, e.host + 1);
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const Tagged& x, const Tagged& y) {
    if (x.e.time != y.e.time) return x.e.time < y.e.time;
    if (x.e.host != y.e.host) return x.e.host < y.e.host;
    if (x.doc != y.doc) return x.doc < y.doc;
    return x.idx < y.idx;
  });
  out.events.reserve(all.size());
  for (const Tagged& t : all) out.events.push_back(t.e);
  return out;
}

void write_text(std::ostream& os, const MergedTimeline& t) {
  std::string line;
  for (const Event& e : t.events) {
    line.clear();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%12lld us  ",
                  static_cast<long long>(e.time));
    line += buf;
    if (e.host < 0) {
      line += "sys ";
    } else {
      std::snprintf(buf, sizeof(buf), "p%-3d", e.host);
      line += buf;
    }
    line += " ";
    switch (e.type) {
      case EventType::kSend:
        line += "send -> p" + std::to_string(e.a) +
                " proto=" + std::to_string(e.b);
        break;
      case EventType::kDeliver:
        line += "deliver <- p" + std::to_string(e.a) +
                " proto=" + std::to_string(e.b);
        break;
      case EventType::kTimerSet:
        line += "timer_set id=" + std::to_string(e.b);
        break;
      case EventType::kTimerCancel:
        line += "timer_cancel id=" + std::to_string(e.b);
        break;
      case EventType::kSuspect:
        line += "suspect p" + std::to_string(e.a);
        break;
      case EventType::kUnsuspect:
        line += "unsuspect p" + std::to_string(e.a);
        break;
      case EventType::kLeaderChange:
        line += "leader -> p" + std::to_string(e.a);
        break;
      case EventType::kRoundStart:
        line += "round " + std::to_string(e.a) + " start";
        break;
      case EventType::kDecide:
        line += "decide round=" + std::to_string(e.a) +
                " value=" + std::to_string(e.b);
        break;
      case EventType::kCrash:
        line += "crash";
        break;
      case EventType::kDrop:
        line += "drop -> p" + std::to_string(e.a);
        break;
      case EventType::kVerdict:
        line += "verdict " + label_of(t, e.label) +
                " state=" + std::to_string(e.a);
        break;
      case EventType::kNote:
        line += label_of(t, e.label);
        {
          const std::string& detail =
              label_of(t, static_cast<std::int32_t>(e.b));
          if (!detail.empty()) line += ": " + detail;
        }
        break;
      case EventType::kLeaseGrant:
        line += "lease_grant term=" + std::to_string(e.b);
        break;
      case EventType::kLeaseRevoke:
        line += "lease_revoke term=" + std::to_string(e.b);
        break;
      case EventType::kWireSend:
        line += "wire_send -> p" + std::to_string(e.a) +
                " seq=" + std::to_string(e.b);
        break;
      case EventType::kWireDeliver:
        line += "wire_deliver <- p" + std::to_string(e.a) +
                " seq=" + std::to_string(e.b);
        break;
      case EventType::kNone:
        line += "?";
        break;
    }
    if (!label_of(t, e.label).empty() && e.type != EventType::kVerdict &&
        e.type != EventType::kNote) {
      line += "  [" + label_of(t, e.label) + "]";
    }
    os << line << "\n";
  }
}

namespace {

/// Chrome lanes per host: one row per subsystem keeps the timeline legible.
int lane_of(EventType t) {
  switch (t) {
    case EventType::kSend:
    case EventType::kDeliver:
    case EventType::kDrop:
    case EventType::kTimerSet:
    case EventType::kTimerCancel:
    case EventType::kWireSend:
    case EventType::kWireDeliver:
      return 0;  // net
    case EventType::kSuspect:
    case EventType::kUnsuspect:
    case EventType::kLeaderChange:
      return 1;  // fd
    case EventType::kRoundStart:
    case EventType::kDecide:
      return 2;  // consensus
    default:
      return 3;  // notes / crash / verdicts
  }
}

struct ChromeWriter {
  std::string j;
  bool first{true};

  void open() { j += "{\"traceEvents\": [\n"; }

  void event_start() {
    j += first ? "  " : ",\n  ";
    first = false;
  }

  void metadata(int pid, int tid, const std::string& kind,
                const std::string& name) {
    event_start();
    j += "{\"ph\": \"M\", \"pid\": " + std::to_string(pid);
    if (tid >= 0) j += ", \"tid\": " + std::to_string(tid);
    j += ", \"name\": \"" + kind + "\", \"args\": {\"name\": \"";
    json_escape_into(&j, name);
    j += "\"}}";
  }

  void instant(const std::string& name, TimeUs ts, int pid, int tid,
               const std::string& args_json) {
    event_start();
    j += "{\"ph\": \"i\", \"s\": \"t\", \"name\": \"";
    json_escape_into(&j, name);
    j += "\", \"ts\": " + std::to_string(ts) +
         ", \"pid\": " + std::to_string(pid) +
         ", \"tid\": " + std::to_string(tid) + ", \"args\": " + args_json +
         "}";
  }

  void span(const std::string& name, TimeUs ts, TimeUs end, int pid, int tid,
            const std::string& args_json) {
    const TimeUs dur = end > ts ? end - ts : 1;
    event_start();
    j += "{\"ph\": \"X\", \"name\": \"";
    json_escape_into(&j, name);
    j += "\", \"ts\": " + std::to_string(ts) +
         ", \"dur\": " + std::to_string(dur) +
         ", \"pid\": " + std::to_string(pid) +
         ", \"tid\": " + std::to_string(tid) + ", \"args\": " + args_json +
         "}";
  }

  void close(const MergedTimeline& t) {
    j += "\n],\n";
    j += "\"displayTimeUnit\": \"ms\",\n";
    j += "\"otherData\": {\"schema\": \"ecfd.trace.v1\", \"n\": " +
         std::to_string(t.n) +
         ", \"dropped\": " + std::to_string(t.dropped) + ", \"clock\": \"" +
         (t.monotonic ? "monotonic" : "virtual") + "\"}\n}\n";
  }
};

}  // namespace

void write_chrome_trace(std::ostream& os, const MergedTimeline& t) {
  ChromeWriter w;
  w.open();

  const int monitor_pid = t.n;  // synthetic process for host=-1 observers
  for (int p = 0; p < t.n; ++p) {
    w.metadata(p, -1, "process_name", "p" + std::to_string(p));
    w.metadata(p, 0, "thread_name", "net");
    w.metadata(p, 1, "thread_name", "fd");
    w.metadata(p, 2, "thread_name", "consensus");
    w.metadata(p, 3, "thread_name", "notes");
  }
  w.metadata(monitor_pid, -1, "process_name", "monitor");
  w.metadata(monitor_pid, 3, "thread_name", "verdicts");

  TimeUs end_time = 0;
  for (const Event& e : t.events) end_time = std::max(end_time, e.time);
  ++end_time;  // open intervals close just past the last event

  // Interval state reconstructed from the point events, per host.
  struct HostState {
    std::map<int, TimeUs> suspected_since;  // victim -> start
    int leader{-1};
    TimeUs leader_since{0};
    int round{-1};
    TimeUs round_since{0};
  };
  std::map<int, HostState> hosts;

  for (const Event& e : t.events) {
    const int pid = e.host < 0 ? monitor_pid : e.host;
    const int tid = lane_of(e.type);
    const std::string& label = label_of(t, e.label);
    std::string args = "{\"a\": " + std::to_string(e.a) +
                       ", \"b\": " + std::to_string(e.b);
    if (!label.empty()) {
      args += ", \"label\": \"";
      json_escape_into(&args, label);
      args += "\"";
    }
    args += "}";

    std::string name = event_type_name(e.type);
    HostState& hs = hosts[pid];
    switch (e.type) {
      case EventType::kSend:
      case EventType::kDeliver:
      case EventType::kDrop:
      case EventType::kWireSend:
      case EventType::kWireDeliver:
        name += e.type == EventType::kDeliver ||
                        e.type == EventType::kWireDeliver
                    ? " p"
                    : " -> p";
        name += std::to_string(e.a);
        break;
      case EventType::kSuspect:
        name += " p" + std::to_string(e.a);
        hs.suspected_since.emplace(e.a, e.time);
        break;
      case EventType::kUnsuspect: {
        name += " p" + std::to_string(e.a);
        auto it = hs.suspected_since.find(e.a);
        if (it != hs.suspected_since.end()) {
          w.span("suspect p" + std::to_string(e.a), it->second, e.time, pid,
                 1, "{\"victim\": " + std::to_string(e.a) + "}");
          hs.suspected_since.erase(it);
        }
        break;
      }
      case EventType::kLeaderChange:
        name += " -> p" + std::to_string(e.a);
        if (hs.leader >= 0) {
          w.span("leader p" + std::to_string(hs.leader), hs.leader_since,
                 e.time, pid, 1,
                 "{\"leader\": " + std::to_string(hs.leader) + "}");
        }
        hs.leader = e.a;
        hs.leader_since = e.time;
        break;
      case EventType::kRoundStart:
        name = "round " + std::to_string(e.a);
        if (hs.round >= 0) {
          w.span("round " + std::to_string(hs.round), hs.round_since, e.time,
                 pid, 2, "{\"round\": " + std::to_string(hs.round) + "}");
        }
        hs.round = e.a;
        hs.round_since = e.time;
        break;
      case EventType::kDecide:
        name = "decide r" + std::to_string(e.a) + "=" + std::to_string(e.b);
        if (hs.round >= 0) {
          w.span("round " + std::to_string(hs.round), hs.round_since, e.time,
                 pid, 2, "{\"round\": " + std::to_string(hs.round) + "}");
          hs.round = -1;
        }
        break;
      case EventType::kVerdict:
        name = "verdict " + label + " s" + std::to_string(e.a);
        break;
      case EventType::kNote: {
        name = label.empty() ? "note" : label;
        const std::string& detail =
            label_of(t, static_cast<std::int32_t>(e.b));
        if (!detail.empty()) {
          args = "{\"detail\": \"";
          json_escape_into(&args, detail);
          args += "\"}";
        }
        break;
      }
      default:
        break;
    }
    w.instant(name, e.time, pid, tid, args);
  }

  // Close the intervals still open at the end of the trace (a crashed
  // leader stays suspected forever: that open span IS the finding).
  for (auto& [pid, hs] : hosts) {
    for (const auto& [victim, since] : hs.suspected_since) {
      w.span("suspect p" + std::to_string(victim), since, end_time, pid, 1,
             "{\"victim\": " + std::to_string(victim) + "}");
    }
    if (hs.leader >= 0) {
      w.span("leader p" + std::to_string(hs.leader), hs.leader_since,
             end_time, pid, 1,
             "{\"leader\": " + std::to_string(hs.leader) + "}");
    }
    if (hs.round >= 0) {
      w.span("round " + std::to_string(hs.round), hs.round_since, end_time,
             pid, 2, "{\"round\": " + std::to_string(hs.round) + "}");
    }
  }

  w.close(t);
  os << w.j;
}

}  // namespace ecfd::obs
