#pragma once

#include <cstdint>

#include "sim/time.hpp"

/// \file event.hpp
/// The typed event schema of the unified observability layer.
///
/// Every Env backend (deterministic simulator, sharded threaded runtime,
/// UDP SocketEnv) records the same fixed-size binary events into per-host
/// rings (obs/recorder.hpp), so a suspicion flap on real sockets and the
/// same flap in the simulator land in one format and merge into one
/// timeline (obs/timeline.hpp). Events are PODs: recording is a handful of
/// atomic stores, never an allocation, and compiles to nothing when the
/// library is built with -DECFD_OBS_DISABLED.

namespace ecfd::obs {

/// Compile-time event kinds. The numeric values are part of the
/// ecfd.trace.v1 on-disk format — append, never renumber.
enum class EventType : std::uint8_t {
  kNone = 0,         ///< empty slot (never emitted)
  kSend = 1,         ///< a = destination, b = protocol id
  kDeliver = 2,      ///< a = source,      b = protocol id
  kTimerSet = 3,     ///< a = -1,          b = timer id
  kTimerCancel = 4,  ///< a = -1,          b = timer id
  kSuspect = 5,      ///< a = suspected process
  kUnsuspect = 6,    ///< a = unsuspected process
  kLeaderChange = 7, ///< a = new trusted leader
  kRoundStart = 8,   ///< a = round number
  kDecide = 9,       ///< a = round number, b = decided value
  kCrash = 10,       ///< this host crash-stopped
  kDrop = 11,        ///< a = destination, message dropped before the wire
  kVerdict = 12,     ///< a = VerdictState, label = property name
  kNote = 13,        ///< label = tag, b = interned detail (Env::trace text)
  kLeaseGrant = 14,  ///< kv leader lease established; b = lease term
  kLeaseRevoke = 15, ///< kv leader lease lost;        b = lease term
  kWireSend = 16,    ///< frame left for the wire; a = dst, b = causal seq
  kWireDeliver = 17, ///< frame arrived off the wire; a = src, b = origin seq
};

inline constexpr int kNumEventTypes = 18;

/// High-frequency per-message/per-timer events. These go to a host's "hot"
/// ring; everything else (suspicions, leader changes, rounds, decides,
/// crashes, verdicts, notes) goes to a separate "state" ring so that rare
/// protocol transitions are never evicted by message churn.
constexpr bool is_hot_event(EventType t) {
  return (t >= EventType::kSend && t <= EventType::kTimerCancel) ||
         t == EventType::kDrop || t == EventType::kWireSend ||
         t == EventType::kWireDeliver;
}

/// Stable wire/rendering name of an event type ("suspect", "decide", ...).
const char* event_type_name(EventType t);

/// One recorded observation. `host` is the recording process (-1 for
/// system-level observers such as property monitors); `label` indexes the
/// recorder's interned string table (-1 = none). The meaning of `a`/`b` is
/// per-type, documented on EventType.
struct Event {
  TimeUs time{0};
  std::int32_t host{-1};
  std::int32_t a{-1};
  std::int64_t b{0};
  std::int32_t label{-1};
  EventType type{EventType::kNone};
};

}  // namespace ecfd::obs
