#include "obs/qos.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace ecfd::obs {

QosScoreboard::QosScoreboard(int n)
    : n_(n),
      cells_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n)),
      crashed_at_(static_cast<std::size_t>(n), kTimeNever),
      detected_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                false) {
  assert(n > 0);
}

void QosScoreboard::note_crash(std::int32_t victim, TimeUs at) {
  if (victim < 0 || victim >= n_) return;
  TimeUs& slot = crashed_at_[static_cast<std::size_t>(victim)];
  if (at < slot) slot = at;
}

void QosScoreboard::ingest(const Event& e) {
  if (window_start_ == kTimeNever || e.time < window_start_) {
    window_start_ = e.time;
  }
  if (window_end_ == kTimeNever || e.time > window_end_) window_end_ = e.time;

  if (e.type == EventType::kCrash) {
    note_crash(e.host, e.time);
    return;
  }
  if (e.type != EventType::kSuspect && e.type != EventType::kUnsuspect) {
    return;
  }
  const int o = e.host;
  const int p = e.a;
  if (o < 0 || o >= n_ || p < 0 || p >= n_) return;
  QosCell& c = at(o, p);
  const TimeUs crash = crashed_at_[static_cast<std::size_t>(p)];
  const std::size_t pair =
      static_cast<std::size_t>(o) * static_cast<std::size_t>(n_) +
      static_cast<std::size_t>(p);

  if (e.type == EventType::kSuspect) {
    if (c.suspected) return;  // duplicate transition, keep the first onset
    c.suspected = true;
    c.suspect_since = e.time;
    ++c.suspicions;
    if (suspicions_total_ != nullptr) {
      suspicions_total_->fetch_add(1, std::memory_order_relaxed);
    }
    if (crash != kTimeNever && e.time >= crash) {
      // The peer really is dead: this is the detection, not a mistake.
      if (!detected_[pair]) {
        detected_[pair] = true;
        ++c.detections;
        c.detection_sum_us += e.time - crash;
        if (detection_hist_ != nullptr) detection_hist_->observe(e.time - crash);
        if (detections_total_ != nullptr) {
          detections_total_->fetch_add(1, std::memory_order_relaxed);
        }
      }
      return;
    }
    // Tentatively a mistake (the peer may still crash later; the episode
    // is classified when it closes). Recurrence is measured start-to-start.
    if (c.have_mistake_start) {
      ++c.recurrences;
      c.recurrence_sum_us += e.time - c.last_mistake_start;
      if (recurrence_hist_ != nullptr) {
        recurrence_hist_->observe(e.time - c.last_mistake_start);
      }
    }
    c.last_mistake_start = e.time;
    c.have_mistake_start = true;
    return;
  }

  // kUnsuspect.
  if (!c.suspected) return;
  c.suspected = false;
  if (crash != kTimeNever && c.suspect_since >= crash) {
    return;  // retracting a true detection: no mistake bookkeeping
  }
  // The episode started while the peer was correct, so the portion before
  // any crash was a mistake.
  const TimeUs end = crash == kTimeNever ? e.time : std::min(e.time, crash);
  const std::int64_t dur = end > c.suspect_since ? end - c.suspect_since : 0;
  ++c.mistakes;
  c.mistake_dur_sum_us += dur;
  c.mistake_time_us += dur;
  if (mistake_dur_hist_ != nullptr) mistake_dur_hist_->observe(dur);
  if (mistakes_total_ != nullptr) {
    mistakes_total_->fetch_add(1, std::memory_order_relaxed);
  }
  if (crash != kTimeNever && e.time >= crash && !detected_[pair]) {
    // The suspicion was already open when the peer died: detection time 0.
    detected_[pair] = true;
    ++c.detections;
    if (detection_hist_ != nullptr) detection_hist_->observe(0);
    if (detections_total_ != nullptr) {
      detections_total_->fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void QosScoreboard::finalize(TimeUs end) {
  if (finalized_) return;
  finalized_ = true;
  if (window_start_ == kTimeNever) window_start_ = end;
  if (window_end_ == kTimeNever || end > window_end_) window_end_ = end;
  for (int o = 0; o < n_; ++o) {
    for (int p = 0; p < n_; ++p) {
      QosCell& c = at(o, p);
      if (!c.suspected) continue;
      const TimeUs crash = crashed_at_[static_cast<std::size_t>(p)];
      if (crash != kTimeNever && c.suspect_since >= crash) continue;
      const TimeUs stop =
          crash == kTimeNever ? window_end_ : std::min(window_end_, crash);
      if (stop > c.suspect_since) {
        c.mistake_time_us += stop - c.suspect_since;
      }
      const std::size_t pair =
          static_cast<std::size_t>(o) * static_cast<std::size_t>(n_) +
          static_cast<std::size_t>(p);
      if (crash != kTimeNever && window_end_ >= crash && !detected_[pair]) {
        detected_[pair] = true;
        ++c.detections;
        if (detection_hist_ != nullptr) detection_hist_->observe(0);
      }
    }
  }
}

double QosScoreboard::query_accuracy(int observer, int peer) const {
  const QosCell& c = cell(observer, peer);
  if (window_start_ == kTimeNever) return 1.0;
  const TimeUs crash = crashed_at_[static_cast<std::size_t>(peer)];
  const TimeUs stop =
      crash == kTimeNever ? window_end_ : std::min(window_end_, crash);
  if (stop <= window_start_) return 1.0;
  const double len = static_cast<double>(stop - window_start_);
  double pa = 1.0 - static_cast<double>(c.mistake_time_us) / len;
  return std::clamp(pa, 0.0, 1.0);
}

void QosScoreboard::bind_metrics(MetricsRegistry* m) {
  metrics_ = m;
  if (m == nullptr) {
    detection_hist_ = mistake_dur_hist_ = recurrence_hist_ = nullptr;
    suspicions_total_ = mistakes_total_ = detections_total_ = nullptr;
    return;
  }
  detection_hist_ = m->histogram("qos.detection_us");
  mistake_dur_hist_ = m->histogram("qos.mistake_duration_us");
  recurrence_hist_ = m->histogram("qos.mistake_recurrence_us");
  suspicions_total_ = m->counter("qos.suspicions");
  mistakes_total_ = m->counter("qos.mistakes");
  detections_total_ = m->counter("qos.detections");
}

void QosScoreboard::export_gauges(int self, TimeUs now) {
  if (metrics_ == nullptr || self < 0 || self >= n_) return;
  for (int p = 0; p < n_; ++p) {
    if (p == self) continue;
    const QosCell& c = cell(self, p);
    // P_A as of `now`: the closed mistake time plus the open episode so far.
    const TimeUs crash = crashed_at_[static_cast<std::size_t>(p)];
    std::int64_t mistake_time = c.mistake_time_us;
    if (c.suspected && (crash == kTimeNever || c.suspect_since < crash)) {
      const TimeUs stop = crash == kTimeNever ? now : std::min(now, crash);
      if (stop > c.suspect_since) mistake_time += stop - c.suspect_since;
    }
    double pa = 1.0;
    const TimeUs start = window_start_ == kTimeNever ? now : window_start_;
    const TimeUs stop = crash == kTimeNever ? now : std::min(now, crash);
    if (stop > start) {
      pa = std::clamp(
          1.0 - static_cast<double>(mistake_time) /
                    static_cast<double>(stop - start),
          0.0, 1.0);
    }
    const std::string suffix = ".p" + std::to_string(p);
    metrics_->set_gauge("qos.pa_ppm" + suffix,
                        static_cast<std::int64_t>(pa * 1'000'000.0));
    metrics_->set_gauge("qos.suspected" + suffix, c.suspected ? 1 : 0);
  }
}

void QosScoreboard::write_table(std::ostream& os) const {
  os << "observer  peer  susp  detect    t_d_ms  mistakes    t_m_ms   "
        "t_mr_ms     p_a\n";
  char buf[160];
  auto cell_ms = [](double us) {
    return us < 0 ? -1.0 : us / 1000.0;
  };
  auto fmt_ms = [&](char* out, std::size_t cap, double us) {
    if (us < 0) {
      std::snprintf(out, cap, "%9s", "-");
    } else {
      std::snprintf(out, cap, "%9.2f", cell_ms(us));
    }
  };
  for (int o = 0; o < n_; ++o) {
    for (int p = 0; p < n_; ++p) {
      if (o == p) continue;
      const QosCell& c = cell(o, p);
      const bool crashed =
          crashed_at_[static_cast<std::size_t>(p)] != kTimeNever;
      if (c.suspicions == 0 && !crashed) continue;
      char td[16], tm[16], tmr[16];
      fmt_ms(td, sizeof(td), c.mean_detection_us());
      fmt_ms(tm, sizeof(tm), c.mean_mistake_us());
      fmt_ms(tmr, sizeof(tmr), c.mean_recurrence_us());
      std::snprintf(buf, sizeof(buf),
                    "p%-7d  p%-3d  %4lld  %6lld %s  %8lld %s %s  %6.4f%s\n",
                    o, p, static_cast<long long>(c.suspicions),
                    static_cast<long long>(c.detections), td,
                    static_cast<long long>(c.mistakes), tm, tmr,
                    query_accuracy(o, p), crashed ? "  [crashed]" : "");
      os << buf;
    }
  }
}

}  // namespace ecfd::obs
