#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timeline.hpp"

/// \file flight.hpp
/// The crash flight recorder: an mmap-backed persistent image of a node's
/// event rings and metrics, plus an async-signal-safe crash dump so a
/// SIGSEGV/SIGABRT/SIGBUS leaves behind the last seconds of history.
///
/// Design: open() maps a fixed-layout `ecfd.postmortem.v1` file with
/// MAP_SHARED, so every byte written to the mapping is backed by the page
/// cache and survives process death — including kill -9 — without any
/// msync. Two write paths feed the image:
///
///   snapshot(now)    cold path, called from the node's report timer. May
///                    take locks (Recorder string table, registry mutex):
///                    refreshes the interned strings, the metric NAME
///                    table, and the ring slots. Also caches the metric
///                    Cell pointers for the hot path.
///
///   crash_dump(sig)  async-signal-safe: no allocation, no locks, no
///                    stdio. Copies the ring slots (relaxed atomic loads),
///                    stores the cached metric cell values, stamps the
///                    signal number and crash time (CLOCK_MONOTONIC delta
///                    from open()), all via plain stores into the mapping.
///
/// Only the node's own rings go into the image (hot + state for `self`,
/// plus the system ring): a live process only ever records into those, and
/// keeping the image small bounds signal-handler work.
///
/// install_crash_handler() registers SIGSEGV/SIGABRT/SIGBUS handlers with
/// SA_RESETHAND|SA_NODEFER that dump and re-raise, so the process still
/// dies with the original signal (correct wait status, core if enabled).
///
/// read_postmortem() parses the file back into a TimelineDoc (reusing the
/// ecfd_trace rendering pipeline) and appends a synthetic kCrash event at
/// the recorded crash time, so `ecfd_trace --postmortem` shows a timeline
/// that ends at the moment of death.

namespace ecfd::obs {

/// On-disk constants of the ecfd.postmortem.v1 format. The layout is
/// packed little-endian with naturally aligned fixed-width fields; see
/// flight.cpp for the exact struct definitions.
inline constexpr char kPostmortemMagic[8] = {'E', 'C', 'F', 'D',
                                             'P', 'M', '0', '1'};
inline constexpr std::uint32_t kPostmortemVersion = 1;

class FlightRecorder {
 public:
  FlightRecorder() = default;
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Creates (truncates) \p path and maps the image. \p self is this
  /// node's id; its hot + state rings and the system ring of \p rec are
  /// the ones persisted. Returns false (with *error set) on I/O failure.
  /// The recorder and registry must outlive this object.
  bool open(const std::string& path, const Recorder* rec, int self,
            std::string* error);

  /// Registry whose counters/gauges are persisted (optional; may be null).
  void set_metrics(const MetricsRegistry* m) { metrics_ = m; }

  [[nodiscard]] bool is_open() const { return base_ != nullptr; }

  /// Cold-path refresh; see file comment. \p now is the Env clock reading
  /// used to correlate crash time with event time.
  void snapshot(TimeUs now);

  /// Async-signal-safe dump; see file comment. Safe to call with
  /// signal = 0 for an orderly final flush.
  void crash_dump(int signal);

  /// Unmaps and closes (final snapshot NOT taken automatically).
  void close();

  /// Registers this recorder as the process-wide crash-dump target and
  /// installs SIGSEGV/SIGABRT/SIGBUS handlers. Only one FlightRecorder
  /// per process can be registered; passing nullptr deregisters.
  static void install_crash_handler(FlightRecorder* fr);

 private:
  struct RingRef {
    const EventRing* ring{nullptr};
    std::size_t desc_off{0};  ///< file offset of the ring descriptor
    std::size_t depth{0};     ///< slot capacity persisted
    std::uint32_t kind{0};    ///< 0 hot, 1 state, 2 system
    std::int32_t host{-1};
  };

  void write_rings();           ///< signal-safe slot copy into the image
  void write_metric_values();   ///< signal-safe cached-cell value store

  unsigned char* base_{nullptr};
  std::size_t bytes_{0};
  int fd_{-1};
  int self_{-1};
  const Recorder* rec_{nullptr};
  const MetricsRegistry* metrics_{nullptr};
  std::vector<RingRef> rings_;
  std::vector<MetricsRegistry::CellRef> metric_cells_;  ///< cached at snapshot
  std::int64_t base_mono_us_{0};  ///< CLOCK_MONOTONIC at open()
  TimeUs base_env_us_{0};         ///< Env clock at the last snapshot
  std::int64_t base_env_mono_us_{0};  ///< CLOCK_MONOTONIC at that snapshot
  std::uint64_t snapshot_count_{0};
};

/// Everything read_postmortem() recovers besides the timeline itself.
struct PostmortemInfo {
  int node{-1};
  int signal{0};            ///< 0 = orderly flush, else the fatal signal
  TimeUs crash_time_us{0};  ///< Env-clock estimate of the moment of death
  std::uint64_t snapshots{0};
  std::uint64_t events{0};
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
};

/// Parses an ecfd.postmortem.v1 file into a renderable TimelineDoc (events
/// time-sorted, synthetic kCrash appended when a fatal signal was
/// recorded). Returns false with *error on malformed input.
bool read_postmortem(const std::string& path, TimelineDoc* doc,
                     PostmortemInfo* info, std::string* error);

}  // namespace ecfd::obs
