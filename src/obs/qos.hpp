#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "obs/event.hpp"
#include "obs/metrics.hpp"

/// \file qos.hpp
/// Online per-peer failure-detector QoS estimators (Chen, Toueg, Aguilera,
/// "On the quality of service of failure detectors"), computed incrementally
/// from the typed event stream the obs layer already records:
///
///   T_D   detection time       — crash -> the observer's first suspicion
///   T_M   mistake duration     — false suspicion -> its retraction
///   T_MR  mistake recurrence   — start of one mistake -> start of the next
///   P_A   query accuracy       — probability a random query about a
///                                correct peer answers "not suspected"
///
/// fd/qos.hpp computes the same family offline from probe *samples*; this
/// class is the production counterpart: it folds kSuspect / kUnsuspect /
/// kCrash state-ring transitions as they happen, so a live ecfd_node can
/// serve the numbers from its metrics endpoint and ecfd_trace --qos can
/// replay any merged timeline into the same scoreboard. Crash times come
/// from kCrash events when the backend records them (the simulator does) or
/// from note_crash() when the caller knows ground truth (the fuzzer's fault
/// schedule); without either, detection columns stay empty and the mistake
/// metrics remain exact — an unretracted suspicion is never presumed false.
///
/// Ingest is allocation-free after construction and must see each
/// observer's events in nondecreasing time order (rings and merged
/// timelines both guarantee that).

namespace ecfd::obs {

/// Aggregated estimator state for one (observer, peer) pair.
struct QosCell {
  // Suspicion bookkeeping.
  std::int64_t suspicions{0};      ///< kSuspect transitions seen
  bool suspected{false};           ///< suspicion currently open
  TimeUs suspect_since{0};         ///< valid while suspected

  // T_D: crash -> first suspicion at this observer.
  std::int64_t detections{0};
  std::int64_t detection_sum_us{0};

  // T_M / T_MR: closed false-suspicion episodes.
  std::int64_t mistakes{0};
  std::int64_t mistake_dur_sum_us{0};
  std::int64_t recurrences{0};
  std::int64_t recurrence_sum_us{0};
  TimeUs last_mistake_start{0};
  bool have_mistake_start{false};

  // P_A: time-integrated false-suspicion exposure over the observed
  // window (mistake intervals still open at finalize are included).
  std::int64_t mistake_time_us{0};

  [[nodiscard]] double mean_detection_us() const {
    return detections > 0
               ? static_cast<double>(detection_sum_us) / detections
               : -1.0;
  }
  [[nodiscard]] double mean_mistake_us() const {
    return mistakes > 0 ? static_cast<double>(mistake_dur_sum_us) / mistakes
                        : -1.0;
  }
  [[nodiscard]] double mean_recurrence_us() const {
    return recurrences > 0
               ? static_cast<double>(recurrence_sum_us) / recurrences
               : -1.0;
  }
};

class QosScoreboard {
 public:
  explicit QosScoreboard(int n);

  [[nodiscard]] int n() const { return n_; }

  /// Declares ground-truth crash time for \p victim (idempotent: the
  /// earliest declaration wins). kCrash events do this automatically.
  void note_crash(std::int32_t victim, TimeUs at);

  /// Folds one event. Only kSuspect / kUnsuspect (observer = e.host,
  /// peer = e.a) and kCrash (victim = e.host) change state; everything
  /// else is ignored, so a whole merged timeline can be streamed through.
  /// Events must arrive in nondecreasing time order per observer.
  void ingest(const Event& e);

  /// Streams a batch (e.g. Recorder::merged() or a ring snapshot).
  void ingest_all(const std::vector<Event>& events) {
    for (const Event& e : events) ingest(e);
  }

  /// Closes the observation window at \p end: open false suspicions are
  /// charged to mistake time (but not counted as closed mistakes) and the
  /// P_A denominators are fixed. Call once, after the last ingest.
  void finalize(TimeUs end);

  /// The (observer, peer) cell; observer/peer in [0, n).
  [[nodiscard]] const QosCell& cell(int observer, int peer) const {
    return cells_[static_cast<std::size_t>(observer) *
                      static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(peer)];
  }

  /// Ground-truth crash time of \p p (kTimeNever when not known crashed).
  [[nodiscard]] TimeUs crash_time(int p) const {
    return crashed_at_[static_cast<std::size_t>(p)];
  }

  /// First ingest time seen (window start for P_A); kTimeNever if none.
  [[nodiscard]] TimeUs window_start() const { return window_start_; }
  [[nodiscard]] TimeUs window_end() const { return window_end_; }

  /// P_A for (observer, peer): 1 - mistake_time / correct-window length.
  /// Returns 1.0 for an empty window; the peer's post-crash time is
  /// excluded from the denominator (suspecting the dead is not a mistake).
  [[nodiscard]] double query_accuracy(int observer, int peer) const;

  /// Registers the live aggregate estimators on \p m:
  ///   histograms qos.detection_us, qos.mistake_duration_us,
  ///              qos.mistake_recurrence_us (one observation per episode)
  ///   counters   qos.suspicions, qos.mistakes, qos.detections
  /// Call before ingest; pass nullptr to detach.
  void bind_metrics(MetricsRegistry* m);

  /// Publishes per-peer gauges for observer \p self on the bound registry:
  ///   qos.pa_ppm.p<peer>      query accuracy, parts-per-million
  ///   qos.suspected.p<peer>   1 while a suspicion of <peer> is open
  /// Cheap enough for a report-period timer; uses \p now as the P_A
  /// window end without finalizing.
  void export_gauges(int self, TimeUs now);

  /// Renders the scoreboard as a fixed-width table: one row per
  /// (observer, peer) pair with any activity, "-" for estimators without
  /// samples. Deterministic output.
  void write_table(std::ostream& os) const;

 private:
  [[nodiscard]] QosCell& at(int observer, int peer) {
    return cells_[static_cast<std::size_t>(observer) *
                      static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(peer)];
  }
  /// Accrued false-suspicion time for one pair up to \p until.
  void charge_mistake_time(QosCell& c, int peer, TimeUs until);

  int n_;
  std::vector<QosCell> cells_;         ///< n*n, observer-major
  std::vector<TimeUs> crashed_at_;     ///< kTimeNever = not crashed
  std::vector<bool> detected_;         ///< n*n: T_D sample already taken
  TimeUs window_start_{kTimeNever};
  TimeUs window_end_{kTimeNever};
  bool finalized_{false};

  MetricsRegistry* metrics_{nullptr};
  Histogram* detection_hist_{nullptr};
  Histogram* mistake_dur_hist_{nullptr};
  Histogram* recurrence_hist_{nullptr};
  MetricsRegistry::Cell* suspicions_total_{nullptr};
  MetricsRegistry::Cell* mistakes_total_{nullptr};
  MetricsRegistry::Cell* detections_total_{nullptr};
};

}  // namespace ecfd::obs
