#include "obs/metrics.hpp"

namespace ecfd::obs {

MetricsRegistry::Cell* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &counters_[name];
}

MetricsRegistry::Cell* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &gauges_[name];
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::int64_t MetricsRegistry::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0
                               : it->second.load(std::memory_order_relaxed);
}

std::int64_t MetricsRegistry::gauge_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0
                             : it->second.load(std::memory_order_relaxed);
}

std::int64_t MetricsRegistry::sum_prefix(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t total = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second.load(std::memory_order_relaxed);
  }
  return total;
}

void MetricsRegistry::import_counters(const sim::Counters& src,
                                      const std::string& prefix) {
  for (const auto& [key, value] : src.all()) {
    counter(prefix + key)->store(value, std::memory_order_relaxed);
  }
}

namespace {

void json_escape_into(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os,
                                 const std::string& source) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string j;
  j += "{\n  \"schema\": \"ecfd.metrics.v1\",\n";
  j += "  \"source\": \"";
  json_escape_into(&j, source);
  j += "\",\n";

  j += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, cell] : counters_) {
    j += first ? "\n" : ",\n";
    first = false;
    j += "    \"";
    json_escape_into(&j, name);
    j += "\": " + std::to_string(cell.load(std::memory_order_relaxed));
  }
  j += counters_.empty() ? "},\n" : "\n  },\n";

  j += "  \"gauges\": {";
  first = true;
  for (const auto& [name, cell] : gauges_) {
    j += first ? "\n" : ",\n";
    first = false;
    j += "    \"";
    json_escape_into(&j, name);
    j += "\": " + std::to_string(cell.load(std::memory_order_relaxed));
  }
  j += gauges_.empty() ? "},\n" : "\n  },\n";

  j += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    j += first ? "\n" : ",\n";
    first = false;
    j += "    \"";
    json_escape_into(&j, name);
    j += "\": {\"count\": " + std::to_string(h->count()) +
         ", \"sum\": " + std::to_string(h->sum()) + ", \"buckets\": [";
    // Trailing all-zero buckets are elided; bucket i lower bound is
    // Histogram::bucket_lower(i), so the shape is reconstructible.
    int last = Histogram::kBuckets - 1;
    while (last > 0 && h->bucket_count(last) == 0) --last;
    for (int i = 0; i <= last; ++i) {
      if (i != 0) j += ", ";
      j += std::to_string(h->bucket_count(i));
    }
    j += "]}";
  }
  j += histograms_.empty() ? "}\n" : "\n  }\n";
  j += "}\n";
  os << j;
}

void MetricsRegistry::write_text(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "# ecfd.metrics.v1 text exposition\n";
  for (const auto& [name, cell] : counters_) {
    os << "counter " << name << " "
       << cell.load(std::memory_order_relaxed) << "\n";
  }
  for (const auto& [name, cell] : gauges_) {
    os << "gauge " << name << " " << cell.load(std::memory_order_relaxed)
       << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "histogram " << name << " count=" << h->count()
       << " sum=" << h->sum();
    int last = Histogram::kBuckets - 1;
    while (last > 0 && h->bucket_count(last) == 0) --last;
    for (int i = 0; i <= last; ++i) {
      if (h->bucket_count(i) == 0) continue;
      os << " ge" << Histogram::bucket_lower(i) << "=" << h->bucket_count(i);
    }
    os << "\n";
  }
}

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Our dotted names
/// map dots (and any other forbidden byte) to '_'.
std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, cell] : counters_) {
    const std::string p = prometheus_name(name) + "_total";
    os << "# TYPE " << p << " counter\n"
       << p << " " << cell.load(std::memory_order_relaxed) << "\n";
  }
  for (const auto& [name, cell] : gauges_) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " gauge\n"
       << p << " " << cell.load(std::memory_order_relaxed) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " histogram\n";
    int last = Histogram::kBuckets - 1;
    while (last > 0 && h->bucket_count(last) == 0) --last;
    std::int64_t cum = 0;
    for (int i = 0; i <= last; ++i) {
      cum += h->bucket_count(i);
      // Bucket i holds integers in [bucket_lower(i), bucket_lower(i+1)),
      // so its inclusive `le` bound is bucket_lower(i+1) - 1.
      os << p << "_bucket{le=\"" << Histogram::bucket_lower(i + 1) - 1
         << "\"} " << cum << "\n";
    }
    os << p << "_bucket{le=\"+Inf\"} " << h->count() << "\n"
       << p << "_sum " << h->sum() << "\n"
       << p << "_count " << h->count() << "\n";
  }
}

std::vector<MetricsRegistry::CellRef> MetricsRegistry::cells() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CellRef> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, cell] : counters_) {
    out.push_back(CellRef{name, &cell, false});
  }
  for (const auto& [name, cell] : gauges_) {
    out.push_back(CellRef{name, &cell, true});
  }
  return out;
}

}  // namespace ecfd::obs
