#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

/// \file json.hpp
/// A minimal recursive-descent JSON reader for the observability tools.
///
/// The repo's machine-readable artifacts (ecfd.trace.v1, ecfd.metrics.v1,
/// bench reports) are all JSON emitted by this codebase; tools/ecfd_trace
/// needs to read them back without adding a dependency the container does
/// not have. This parser handles exactly standard JSON (objects, arrays,
/// strings with the escapes our writers emit, numbers, booleans, null) and
/// rejects everything else with a position-carrying error. It is for
/// tool-sized inputs — values are owned copies, not views.

namespace ecfd::obs::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() = default;
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  explicit Value(double d) : kind_(Kind::kDouble), double_(d) {}
  explicit Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  explicit Value(Array a)
      : kind_(Kind::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : kind_(Kind::kObject), object_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] std::int64_t as_int() const {
    return kind_ == Kind::kDouble ? static_cast<std::int64_t>(double_) : int_;
  }
  [[nodiscard]] double as_double() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const Array& as_array() const {
    static const Array kEmpty;
    return array_ ? *array_ : kEmpty;
  }
  [[nodiscard]] const Object& as_object() const {
    static const Object kEmpty;
    return object_ ? *object_ : kEmpty;
  }

  /// Object member lookup; returns a null Value for absent keys or
  /// non-objects.
  [[nodiscard]] const Value& at(const std::string& key) const;

 private:
  Kind kind_{Kind::kNull};
  bool bool_{false};
  std::int64_t int_{0};
  double double_{0.0};
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses \p text. On failure returns a null Value and sets \p error (with
/// a byte offset) when non-null.
Value parse(const std::string& text, std::string* error = nullptr);

}  // namespace ecfd::obs::json
