#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.hpp"

/// \file recorder.hpp
/// The typed event recorder shared by every Env backend.
///
/// A Recorder owns one fixed-size EventRing per host plus one system ring
/// for observers that are not a process (property monitors). Rings are
/// preallocated at bind time; recording an event is a relaxed fetch_add on
/// the ring head plus a few relaxed atomic stores into the slot — no locks,
/// no allocation, safe to call from the simulator's single thread, from a
/// sharded-runtime worker, or (for the rare cross-thread producer) from any
/// thread, because every slot field is an atomic. A reader that snapshots a
/// ring while a writer is mid-slot may see a torn *event* (fields from two
/// writes) but never torn *fields* and never undefined behaviour; callers
/// that need exact snapshots (tests, the merge tools) read at quiescence.
///
/// Overflow policy: the ring keeps the newest `depth` events and counts the
/// overwritten ones (`dropped()`), so a long run degrades to "recent
/// history per host" instead of unbounded memory.
///
/// Strings never enter the hot path: an event carries an optional interned
/// id into the recorder's string table. Interning takes a mutex and may
/// allocate — it is for cold paths (verdict transitions, Env::trace text)
/// and one-time label registration.

namespace ecfd::obs {

/// Fixed-capacity multi-producer event ring. Capacity is rounded up to a
/// power of two.
class EventRing {
 public:
  EventRing() = default;

  /// Allocates the slot array; not thread-safe (bind-time only).
  void init(std::int32_t host, std::size_t depth);

  [[nodiscard]] bool enabled() const { return !slots_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::int32_t host() const { return host_; }

  /// Records one event. Lock-free and allocation-free; callable from any
  /// thread. No-op on an uninitialized ring.
  void push(TimeUs time, EventType type, std::int32_t a = -1,
            std::int64_t b = 0, std::int32_t label = -1) {
    if (slots_.empty()) return;
    const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[static_cast<std::size_t>(seq) & mask_];
    s.time.store(time, std::memory_order_relaxed);
    s.a.store(a, std::memory_order_relaxed);
    s.b.store(b, std::memory_order_relaxed);
    s.label.store(label, std::memory_order_relaxed);
    s.type.store(static_cast<std::uint8_t>(type), std::memory_order_release);
  }

  /// Events ever pushed (including overwritten ones).
  [[nodiscard]] std::uint64_t pushed() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Events lost to ring overwrite so far.
  [[nodiscard]] std::uint64_t dropped() const {
    const std::uint64_t n = pushed();
    return n > capacity() ? n - capacity() : 0;
  }

  /// Copies the retained events oldest-first, paired with their global
  /// per-ring sequence numbers. Exact at quiescence; see file comment for
  /// concurrent-read semantics.
  void snapshot(std::vector<Event>* out,
                std::vector<std::uint64_t>* seqs = nullptr) const;

  /// One raw slot, POD-packed for the flight recorder's mmap image
  /// (obs/flight.hpp). 32 bytes, naturally aligned, endian-native.
  struct RawEvent {
    TimeUs time{0};
    std::int64_t b{0};
    std::int32_t a{-1};
    std::int32_t label{-1};
    std::uint32_t type{0};
    std::uint32_t pad{0};
  };

  /// Async-signal-safe bounded copy: writes min(capacity, cap) slots in
  /// RING-INDEX order (not time order — the returned head counter lets the
  /// reader reconstruct the sequence) into \p out. No locks, no
  /// allocation; relaxed atomic loads only. Returns pushed().
  std::uint64_t copy_raw(RawEvent* out, std::size_t cap) const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::size_t count = std::min(slots_.size(), cap);
    for (std::size_t i = 0; i < count; ++i) {
      const Slot& s = slots_[i];
      RawEvent& e = out[i];
      e.time = s.time.load(std::memory_order_relaxed);
      e.b = s.b.load(std::memory_order_relaxed);
      e.a = s.a.load(std::memory_order_relaxed);
      e.label = s.label.load(std::memory_order_relaxed);
      e.type = s.type.load(std::memory_order_relaxed);
      e.pad = 0;
    }
    return head;
  }

 private:
  struct Slot {
    std::atomic<TimeUs> time{0};
    std::atomic<std::int64_t> b{0};
    std::atomic<std::int32_t> a{-1};
    std::atomic<std::int32_t> label{-1};
    std::atomic<std::uint8_t> type{0};
  };

  std::int32_t host_{-1};
  std::uint64_t mask_{0};
  std::atomic<std::uint64_t> head_{0};
  std::vector<Slot> slots_;
};

/// Where a trace came from, for clock calibration at merge time.
enum class ClockDomain {
  kVirtual,    ///< deterministic simulator: virtual microseconds
  kMonotonic,  ///< wall-clock backends: microseconds since a local epoch
};

/// Per-recorder export metadata, embedded in ecfd.trace.v1 files so
/// tools/ecfd_trace can align traces from different OS processes.
struct TraceMeta {
  std::string source{"sim"};            ///< "sim" | "runtime" | "socket"
  ClockDomain clock{ClockDomain::kVirtual};
  /// CLOCK_REALTIME microseconds at recorder creation; lets ecfd_trace
  /// align monotonic traces recorded by different OS processes. 0 for
  /// virtual time.
  std::int64_t wall_epoch_us{0};
};

/// Two event rings per host (hot: send/deliver/timer churn; state: rare
/// protocol transitions — see is_hot_event) plus a system ring, a string
/// table, and the ecfd.trace.v1 writer. The split guarantees a suspicion
/// or decide event survives however many heartbeats follow it.
class Recorder {
 public:
  /// \p depth is the per-host hot-ring capacity (rounded up to a power of
  /// two); state rings get min(depth, kStateDepth). Host rings are created
  /// lazily by bind_hosts(), so a Recorder can be constructed before the
  /// universe size is known.
  explicit Recorder(std::size_t depth);

  /// State-ring capacity cap: transitions are rare, so a modest ring holds
  /// the full story even when the hot depth is large.
  static constexpr std::size_t kStateDepth = 1024;

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Ensures rings exist for hosts [0, n). Not thread-safe; call at
  /// bind time, before any concurrent push.
  void bind_hosts(int n);

  [[nodiscard]] int hosts() const { return static_cast<int>(rings_.size()); }
  [[nodiscard]] std::size_t depth() const { return depth_; }

  /// Hot ring of host \p p (must be < hosts()).
  [[nodiscard]] EventRing& ring(int p) { return rings_[static_cast<std::size_t>(p)]->hot; }
  [[nodiscard]] const EventRing& ring(int p) const {
    return rings_[static_cast<std::size_t>(p)]->hot;
  }

  /// State ring of host \p p (rare protocol transitions).
  [[nodiscard]] EventRing& state_ring(int p) {
    return rings_[static_cast<std::size_t>(p)]->state;
  }
  [[nodiscard]] const EventRing& state_ring(int p) const {
    return rings_[static_cast<std::size_t>(p)]->state;
  }

  /// Ring for non-process observers (monitors); events carry host = -1.
  [[nodiscard]] EventRing& system_ring() { return system_ring_; }
  [[nodiscard]] const EventRing& system_ring() const { return system_ring_; }

  /// Interns \p s, returning its stable id. Thread-safe; may allocate —
  /// cold paths only.
  std::int32_t intern(std::string_view s);

  /// Resolves an interned id ("" for -1/unknown). Thread-safe.
  [[nodiscard]] std::string string_at(std::int32_t id) const;

  /// Snapshot of the interned table, index = id.
  [[nodiscard]] std::vector<std::string> strings() const;

  /// Every retained event from every ring, merged into one causal order:
  /// sorted by (time, host, per-ring sequence). Within one recorder all
  /// rings share a clock, so timestamp order IS causal order up to the
  /// clock's resolution; ties break deterministically.
  [[nodiscard]] std::vector<Event> merged() const;

  /// Total events lost to ring overwrite, across rings.
  [[nodiscard]] std::uint64_t dropped_total() const;

  TraceMeta& meta() { return meta_; }
  [[nodiscard]] const TraceMeta& meta() const { return meta_; }

  /// Writes the whole recorder as an ecfd.trace.v1 JSON document. The
  /// output is deterministic: same events + strings => byte-identical
  /// bytes.
  void write_trace_json(std::ostream& os) const;

 private:
  struct HostRings {
    EventRing hot;
    EventRing state;
  };

  std::size_t depth_;
  TraceMeta meta_;
  std::vector<std::unique_ptr<HostRings>> rings_;
  EventRing system_ring_;

  mutable std::mutex strings_mu_;
  std::vector<std::string> strings_;
  std::map<std::string, std::int32_t, std::less<>> string_ids_;
};

}  // namespace ecfd::obs
