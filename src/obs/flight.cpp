#include "obs/flight.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstring>
#include <ctime>
#include <fstream>

namespace ecfd::obs {

namespace {

// ---------------------------------------------------------------------
// On-disk layout of ecfd.postmortem.v1. All fields are little-endian,
// naturally aligned, fixed width; tools/check_bench_schema.py mirrors the
// offsets with struct.unpack, so treat this as a wire format: append,
// never reorder.
// ---------------------------------------------------------------------

struct PmHeader {
  char magic[8];                 //   0: "ECFDPM01"
  std::uint32_t version;         //   8
  std::uint32_t header_bytes;    //  12: sizeof(PmHeader)
  std::int32_t node;             //  16: recording process id
  std::int32_t n;                //  20: universe size (rec->hosts())
  std::int64_t wall_epoch_us;    //  24: CLOCK_REALTIME at recorder creation
  std::int64_t crash_time_us;    //  32: Env-clock estimate of death (-1 none)
  std::int64_t base_env_time_us; //  40: Env clock at last snapshot
  std::int64_t base_mono_us;     //  48: CLOCK_MONOTONIC at last snapshot
  std::uint64_t snapshot_count;  //  56
  std::uint64_t file_bytes;      //  64
  std::uint32_t crash_signal;    //  72: 0 = no crash recorded
  std::uint32_t clock;           //  76: 0 virtual, 1 monotonic
  char source[16];               //  80: "socket" | "sim" | ... (NUL-padded)
  std::uint32_t strings_off;     //  96
  std::uint32_t strings_cap;     // 100: region bytes
  std::uint32_t strings_len;     // 104: bytes used
  std::uint32_t string_count;    // 108
  std::uint32_t metrics_off;     // 112
  std::uint32_t metrics_cap;     // 116: max entries
  std::uint32_t metrics_count;   // 120
  std::uint32_t rings_off;       // 124
  std::uint32_t ring_count;      // 128
  std::uint32_t reserved;        // 132
};
static_assert(sizeof(PmHeader) == 136, "ecfd.postmortem.v1 header layout");

struct PmRingDesc {
  std::int32_t host;    // -1 for the system ring
  std::uint32_t kind;   // 0 hot, 1 state, 2 system
  std::uint64_t depth;  // persisted slot count (power of two)
  std::uint64_t head;   // total events ever pushed, at dump time
};
static_assert(sizeof(PmRingDesc) == 24, "ring descriptor layout");

struct PmMetric {
  std::uint32_t kind;  // 0 counter, 1 gauge
  char name[52];       // NUL-terminated (truncated if longer)
  std::int64_t value;
};
static_assert(sizeof(PmMetric) == 64, "metric entry layout");

using RawEvent = EventRing::RawEvent;
static_assert(sizeof(RawEvent) == 32, "raw slot layout");

constexpr std::size_t kHeaderRegion = 256;
constexpr std::size_t kStringsCap = 64 * 1024;
constexpr std::size_t kMetricsCap = 512;  // entries

std::int64_t mono_now_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 +
         ts.tv_nsec / 1000;
}

std::atomic<FlightRecorder*> g_crash_target{nullptr};

void crash_signal_handler(int sig) {
  FlightRecorder* fr = g_crash_target.load(std::memory_order_relaxed);
  if (fr != nullptr) fr->crash_dump(sig);
  // SA_RESETHAND restored the default disposition on entry, so re-raising
  // terminates the process with the original signal (correct wait status).
  ::raise(sig);
}

}  // namespace

FlightRecorder::~FlightRecorder() { close(); }

bool FlightRecorder::open(const std::string& path, const Recorder* rec,
                          int self, std::string* error) {
  close();
  rec_ = rec;
  self_ = self;

  rings_.clear();
  auto add_ring = [&](const EventRing* r, std::uint32_t kind,
                      std::int32_t host) {
    if (r == nullptr || !r->enabled()) return;
    RingRef ref;
    ref.ring = r;
    ref.kind = kind;
    ref.host = host;
    ref.depth = r->capacity();
    rings_.push_back(ref);
  };
  if (self >= 0 && self < rec->hosts()) {
    add_ring(&rec->ring(self), 0, self);
    add_ring(&rec->state_ring(self), 1, self);
  }
  add_ring(&rec->system_ring(), 2, -1);

  // Layout: header | strings | metrics | ring descs + slots.
  std::size_t off = kHeaderRegion;
  const std::size_t strings_off = off;
  off += kStringsCap;
  const std::size_t metrics_off = off;
  off += kMetricsCap * sizeof(PmMetric);
  const std::size_t rings_off = off;
  for (RingRef& r : rings_) {
    r.desc_off = off;
    off += sizeof(PmRingDesc) + r.depth * sizeof(RawEvent);
  }
  bytes_ = off;

  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    if (error != nullptr) *error = "open(" + path + ") failed";
    return false;
  }
  if (::ftruncate(fd_, static_cast<off_t>(bytes_)) != 0) {
    if (error != nullptr) *error = "ftruncate(" + path + ") failed";
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  void* map = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                     fd_, 0);
  if (map == MAP_FAILED) {
    if (error != nullptr) *error = "mmap(" + path + ") failed";
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  base_ = static_cast<unsigned char*>(map);

  base_mono_us_ = mono_now_us();
  base_env_mono_us_ = base_mono_us_;
  base_env_us_ = 0;
  snapshot_count_ = 0;

  auto* h = reinterpret_cast<PmHeader*>(base_);
  std::memset(h, 0, sizeof(PmHeader));
  std::memcpy(h->magic, kPostmortemMagic, sizeof(kPostmortemMagic));
  h->version = kPostmortemVersion;
  h->header_bytes = sizeof(PmHeader);
  h->node = self;
  h->n = rec->hosts();
  h->crash_time_us = -1;
  h->file_bytes = bytes_;
  h->strings_off = static_cast<std::uint32_t>(strings_off);
  h->strings_cap = static_cast<std::uint32_t>(kStringsCap);
  h->metrics_off = static_cast<std::uint32_t>(metrics_off);
  h->metrics_cap = static_cast<std::uint32_t>(kMetricsCap);
  h->rings_off = static_cast<std::uint32_t>(rings_off);
  h->ring_count = static_cast<std::uint32_t>(rings_.size());

  snapshot(0);
  return true;
}

void FlightRecorder::snapshot(TimeUs now) {
  if (base_ == nullptr) return;
  auto* h = reinterpret_cast<PmHeader*>(base_);

  base_env_us_ = now;
  base_env_mono_us_ = mono_now_us();
  h->base_env_time_us = base_env_us_;
  h->base_mono_us = base_env_mono_us_;

  const TraceMeta& meta = rec_->meta();
  h->wall_epoch_us = meta.wall_epoch_us;
  h->clock = meta.clock == ClockDomain::kMonotonic ? 1 : 0;
  std::memset(h->source, 0, sizeof(h->source));
  std::strncpy(h->source, meta.source.c_str(), sizeof(h->source) - 1);

  // Interned strings: u32 length + bytes, concatenated. The table only
  // grows, so rewriting the whole region at each snapshot is correct and
  // keeps the format free of incremental bookkeeping.
  const std::vector<std::string> strs = rec_->strings();
  unsigned char* sp = base_ + h->strings_off;
  std::size_t used = 0;
  std::uint32_t count = 0;
  for (const std::string& s : strs) {
    const std::size_t need = 4 + s.size();
    if (used + need > h->strings_cap) break;
    const auto len = static_cast<std::uint32_t>(s.size());
    std::memcpy(sp + used, &len, 4);
    std::memcpy(sp + used + 4, s.data(), s.size());
    used += need;
    ++count;
  }
  h->strings_len = static_cast<std::uint32_t>(used);
  h->string_count = count;

  // Metric names + cached cell pointers for the signal-safe value path.
  // NOTE: metric_cells_ is also read by crash_dump(); a signal landing
  // exactly inside this assignment can observe a torn vector, in which
  // case the dump may lose metric values — the rings are unaffected.
  if (metrics_ != nullptr) {
    std::vector<MetricsRegistry::CellRef> cells = metrics_->cells();
    if (cells.size() > kMetricsCap) cells.resize(kMetricsCap);
    metric_cells_ = std::move(cells);
    auto* entries = reinterpret_cast<PmMetric*>(base_ + h->metrics_off);
    for (std::size_t i = 0; i < metric_cells_.size(); ++i) {
      PmMetric& m = entries[i];
      m.kind = metric_cells_[i].is_gauge ? 1 : 0;
      std::memset(m.name, 0, sizeof(m.name));
      std::strncpy(m.name, metric_cells_[i].name.c_str(),
                   sizeof(m.name) - 1);
    }
    h->metrics_count = static_cast<std::uint32_t>(metric_cells_.size());
  }

  write_metric_values();
  write_rings();
  h->snapshot_count = ++snapshot_count_;
}

void FlightRecorder::crash_dump(int signal) {
  if (base_ == nullptr) return;
  auto* h = reinterpret_cast<PmHeader*>(base_);
  const std::int64_t mono = mono_now_us();
  h->crash_time_us = base_env_us_ + (mono - base_env_mono_us_);
  h->crash_signal = static_cast<std::uint32_t>(signal);
  write_rings();
  write_metric_values();
  // MAP_SHARED dirty pages outlive the process; no msync needed.
}

void FlightRecorder::write_rings() {
  for (const RingRef& r : rings_) {
    auto* desc = reinterpret_cast<PmRingDesc*>(base_ + r.desc_off);
    auto* slots =
        reinterpret_cast<RawEvent*>(base_ + r.desc_off + sizeof(PmRingDesc));
    desc->host = r.host;
    desc->kind = r.kind;
    desc->depth = r.depth;
    desc->head = r.ring->copy_raw(slots, r.depth);
  }
}

void FlightRecorder::write_metric_values() {
  if (base_ == nullptr || metric_cells_.empty()) return;
  auto* h = reinterpret_cast<PmHeader*>(base_);
  auto* entries = reinterpret_cast<PmMetric*>(base_ + h->metrics_off);
  const std::size_t count = std::min<std::size_t>(
      metric_cells_.size(), h->metrics_count);
  for (std::size_t i = 0; i < count; ++i) {
    entries[i].value =
        metric_cells_[i].cell->load(std::memory_order_relaxed);
  }
}

void FlightRecorder::close() {
  if (g_crash_target.load(std::memory_order_relaxed) == this) {
    g_crash_target.store(nullptr, std::memory_order_relaxed);
  }
  if (base_ != nullptr) {
    ::munmap(base_, bytes_);
    base_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rings_.clear();
  metric_cells_.clear();
  bytes_ = 0;
}

void FlightRecorder::install_crash_handler(FlightRecorder* fr) {
  g_crash_target.store(fr, std::memory_order_relaxed);
  if (fr == nullptr) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &crash_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND | SA_NODEFER;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGBUS, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
}

// ----------------------------------------------------------------- reader

bool read_postmortem(const std::string& path, TimelineDoc* doc,
                     PostmortemInfo* info, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = path + ": " + msg;
    return false;
  };

  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open");
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  if (buf.size() < sizeof(PmHeader)) return fail("truncated header");
  const auto* data = reinterpret_cast<const unsigned char*>(buf.data());

  PmHeader h{};
  std::memcpy(&h, data, sizeof(h));
  if (std::memcmp(h.magic, kPostmortemMagic, sizeof(kPostmortemMagic)) != 0) {
    return fail("bad magic (not an ecfd.postmortem.v1 file)");
  }
  if (h.version != kPostmortemVersion) return fail("unsupported version");
  if (h.file_bytes > buf.size()) return fail("truncated body");
  auto region_ok = [&](std::uint64_t off, std::uint64_t len) {
    return off <= buf.size() && len <= buf.size() - off;
  };
  if (!region_ok(h.strings_off, h.strings_cap) ||
      !region_ok(h.metrics_off,
                 std::uint64_t{h.metrics_cap} * sizeof(PmMetric))) {
    return fail("region out of bounds");
  }

  doc->origin = path;
  doc->n = h.n;
  doc->meta.source.assign(h.source, strnlen(h.source, sizeof(h.source)));
  doc->meta.clock =
      h.clock == 1 ? ClockDomain::kMonotonic : ClockDomain::kVirtual;
  doc->meta.wall_epoch_us = h.wall_epoch_us;
  doc->strings.clear();
  doc->events.clear();
  doc->dropped = 0;

  // Strings.
  {
    const unsigned char* sp = data + h.strings_off;
    std::size_t used = 0;
    for (std::uint32_t i = 0; i < h.string_count; ++i) {
      if (used + 4 > h.strings_len) return fail("string table truncated");
      std::uint32_t len = 0;
      std::memcpy(&len, sp + used, 4);
      if (used + 4 + len > h.strings_len) {
        return fail("string table truncated");
      }
      doc->strings.emplace_back(
          reinterpret_cast<const char*>(sp + used + 4), len);
      used += 4 + len;
    }
  }

  // Metrics.
  if (info != nullptr) {
    info->counters.clear();
    info->gauges.clear();
    const std::uint32_t mcount = std::min(h.metrics_count, h.metrics_cap);
    const auto* entries =
        reinterpret_cast<const PmMetric*>(data + h.metrics_off);
    for (std::uint32_t i = 0; i < mcount; ++i) {
      PmMetric m{};
      std::memcpy(&m, &entries[i], sizeof(m));
      std::string name(m.name, strnlen(m.name, sizeof(m.name)));
      auto& dst = m.kind == 1 ? info->gauges : info->counters;
      dst.emplace_back(std::move(name), m.value);
    }
  }

  // Rings.
  std::uint64_t off = h.rings_off;
  for (std::uint32_t r = 0; r < h.ring_count; ++r) {
    if (!region_ok(off, sizeof(PmRingDesc))) return fail("ring truncated");
    PmRingDesc desc{};
    std::memcpy(&desc, data + off, sizeof(desc));
    off += sizeof(PmRingDesc);
    if (desc.depth == 0 || (desc.depth & (desc.depth - 1)) != 0 ||
        desc.depth > (1u << 24)) {
      return fail("bad ring depth");
    }
    if (!region_ok(off, desc.depth * sizeof(RawEvent))) {
      return fail("ring slots truncated");
    }
    const auto* slots = reinterpret_cast<const RawEvent*>(data + off);
    off += desc.depth * sizeof(RawEvent);

    const std::uint64_t count = std::min(desc.head, desc.depth);
    if (desc.head > desc.depth) doc->dropped += desc.head - desc.depth;
    const std::uint64_t mask = desc.depth - 1;
    for (std::uint64_t seq = desc.head - count; seq < desc.head; ++seq) {
      RawEvent raw{};
      std::memcpy(&raw, &slots[seq & mask], sizeof(raw));
      if (raw.type == 0 || raw.type >= static_cast<std::uint32_t>(kNumEventTypes)) {
        continue;  // empty or from-the-future slot
      }
      Event e;
      e.time = raw.time;
      e.host = desc.host;
      e.a = raw.a;
      e.b = raw.b;
      e.label = raw.label;
      e.type = static_cast<EventType>(raw.type);
      doc->events.push_back(e);
    }
  }

  if (info != nullptr) {
    info->node = h.node;
    info->signal = static_cast<int>(h.crash_signal);
    info->crash_time_us = h.crash_time_us;
    info->snapshots = h.snapshot_count;
  }

  // A fatal signal ends the timeline: make the crash a first-class event
  // so the rendering pipeline shows history stopping at the moment of
  // death.
  if (h.crash_signal != 0) {
    Event e;
    e.time = h.crash_time_us;
    e.host = h.node;
    e.a = static_cast<std::int32_t>(h.crash_signal);
    e.type = EventType::kCrash;
    doc->events.push_back(e);
  }

  std::stable_sort(doc->events.begin(), doc->events.end(),
                   [](const Event& x, const Event& y) {
                     if (x.time != y.time) return x.time < y.time;
                     return x.host < y.host;
                   });
  if (info != nullptr) info->events = doc->events.size();
  return true;
}

}  // namespace ecfd::obs
