#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hpp"

/// \file metrics.hpp
/// The unified metrics registry: named counters, gauges, and log-bucketed
/// latency histograms shared by every backend and tool.
///
/// This absorbs the previously per-backend accounting (SocketEnv's
/// hand-rolled traffic/batching counters, the runtime's ad-hoc totals) into
/// one store with one export format, `ecfd.metrics.v1` JSON, plus a plain
/// text exposition for the ecfd_node daemon's metrics endpoint.
///
/// Hot-path discipline mirrors sim::Counters::slot(): register once, keep
/// the returned cell pointer, bump it directly. Cells are std::atomic so
/// multi-threaded backends (the sharded runtime) can share a registry;
/// relaxed increments cost the same as a plain add on x86/ARM when
/// uncontended. Registration takes a mutex and may allocate — bind time
/// only. Cell pointers stay valid for the registry's lifetime (map nodes
/// do not move).

namespace ecfd::obs {

/// A log2-bucketed histogram of non-negative integer observations
/// (microseconds by convention). Bucket i counts values in
/// [2^(i-1), 2^i); bucket 0 counts {0}; the last bucket is open-ended.
/// observe() is lock-free and allocation-free.
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void observe(std::int64_t v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v < 0 ? 0 : v, std::memory_order_relaxed);
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Bucket index of \p v: 0 for v<=0, else 1+floor(log2(v)), clamped.
  static int bucket_of(std::int64_t v) {
    if (v <= 0) return 0;
    int b = 1;
    while (v > 1 && b < kBuckets - 1) {
      v >>= 1;
      ++b;
    }
    return b;
  }

  /// Inclusive lower bound of bucket \p i (0, 1, 2, 4, 8, ...).
  static std::int64_t bucket_lower(int i) {
    if (i <= 0) return 0;
    return std::int64_t{1} << (i - 1);
  }

  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t bucket_count(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> buckets_[kBuckets]{};
};

/// Named counters + gauges + histograms with stable-handle registration.
class MetricsRegistry {
 public:
  using Cell = std::atomic<std::int64_t>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) a monotonic counter; the pointer stays valid for
  /// the registry's lifetime. Thread-safe; allocates on first use.
  Cell* counter(const std::string& name);

  /// Registers (or finds) a gauge (a settable level, not a monotonic sum).
  Cell* gauge(const std::string& name);

  /// Registers (or finds) a histogram.
  Histogram* histogram(const std::string& name);

  /// Convenience slow paths (lookup per call).
  void add(const std::string& name, std::int64_t delta = 1) {
    counter(name)->fetch_add(delta, std::memory_order_relaxed);
  }
  void set_gauge(const std::string& name, std::int64_t v) {
    gauge(name)->store(v, std::memory_order_relaxed);
  }
  void observe(const std::string& name, std::int64_t v) {
    histogram(name)->observe(v);
  }

  /// Counter value; 0 for unknown names. (Gauges live in a separate
  /// namespace; use gauge_value.)
  [[nodiscard]] std::int64_t get(const std::string& name) const;
  [[nodiscard]] std::int64_t gauge_value(const std::string& name) const;

  /// Sum of counters whose name starts with \p prefix (parity with
  /// sim::Counters::sum_prefix).
  [[nodiscard]] std::int64_t sum_prefix(const std::string& prefix) const;

  /// Copies every counter of \p src into this registry (names prefixed
  /// with \p prefix), so single-threaded sim::Counters accounting exports
  /// through the same ecfd.metrics.v1 document.
  void import_counters(const sim::Counters& src, const std::string& prefix = "");

  /// Writes the registry as an ecfd.metrics.v1 JSON document. Keys are
  /// sorted: same contents => byte-identical bytes.
  void write_json(std::ostream& os, const std::string& source) const;

  /// Plain-text exposition (one "counter|gauge|histogram NAME ..." line
  /// each, sorted), served by the ecfd_node --metrics-port endpoint.
  void write_text(std::ostream& os) const;

  /// Prometheus text exposition format (version 0.0.4): dots in names
  /// become underscores, counters gain a _total suffix, histograms expand
  /// into cumulative `le` buckets plus _sum/_count. Served by ecfd_node at
  /// GET /metrics so a stock Prometheus scraper can ingest the registry.
  void write_prometheus(std::ostream& os) const;

  /// A stable reference to one scalar cell, for exporters that must read
  /// values without taking the registry mutex (the crash flight recorder's
  /// signal handler). Pointers stay valid for the registry's lifetime.
  struct CellRef {
    std::string name;
    const Cell* cell{nullptr};
    bool is_gauge{false};
  };

  /// Snapshot of every counter and gauge cell, name-sorted within each
  /// kind (counters first). Takes the mutex; call at bind/snapshot time,
  /// then read the returned pointers lock-free.
  [[nodiscard]] std::vector<CellRef> cells() const;

 private:
  mutable std::mutex mu_;  ///< guards registration and iteration
  std::map<std::string, Cell> counters_;
  std::map<std::string, Cell> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ecfd::obs
