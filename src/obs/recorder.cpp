#include "obs/recorder.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace ecfd::obs {

const char* event_type_name(EventType t) {
  switch (t) {
    case EventType::kNone: return "none";
    case EventType::kSend: return "send";
    case EventType::kDeliver: return "deliver";
    case EventType::kTimerSet: return "timer_set";
    case EventType::kTimerCancel: return "timer_cancel";
    case EventType::kSuspect: return "suspect";
    case EventType::kUnsuspect: return "unsuspect";
    case EventType::kLeaderChange: return "leader_change";
    case EventType::kRoundStart: return "round_start";
    case EventType::kDecide: return "decide";
    case EventType::kCrash: return "crash";
    case EventType::kDrop: return "drop";
    case EventType::kVerdict: return "verdict";
    case EventType::kNote: return "note";
    case EventType::kLeaseGrant: return "lease_grant";
    case EventType::kLeaseRevoke: return "lease_revoke";
    case EventType::kWireSend: return "wire_send";
    case EventType::kWireDeliver: return "wire_deliver";
  }
  return "unknown";
}

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

// ------------------------------------------------------------ EventRing

void EventRing::init(std::int32_t host, std::size_t depth) {
  assert(slots_.empty() && "init() is bind-time only");
  if (depth == 0) return;
  host_ = host;
  const std::size_t cap = round_up_pow2(depth);
  mask_ = cap - 1;
  slots_ = std::vector<Slot>(cap);
}

void EventRing::snapshot(std::vector<Event>* out,
                         std::vector<std::uint64_t>* seqs) const {
  out->clear();
  if (seqs != nullptr) seqs->clear();
  if (slots_.empty()) return;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t count = std::min<std::uint64_t>(head, capacity());
  out->reserve(static_cast<std::size_t>(count));
  for (std::uint64_t seq = head - count; seq < head; ++seq) {
    const Slot& s = slots_[static_cast<std::size_t>(seq) & mask_];
    Event e;
    e.type = static_cast<EventType>(s.type.load(std::memory_order_acquire));
    if (e.type == EventType::kNone) continue;  // writer not yet committed
    e.time = s.time.load(std::memory_order_relaxed);
    e.a = s.a.load(std::memory_order_relaxed);
    e.b = s.b.load(std::memory_order_relaxed);
    e.label = s.label.load(std::memory_order_relaxed);
    e.host = host_;
    out->push_back(e);
    if (seqs != nullptr) seqs->push_back(seq);
  }
}

// ------------------------------------------------------------- Recorder

Recorder::Recorder(std::size_t depth) : depth_(round_up_pow2(depth == 0 ? 1 : depth)) {
  system_ring_.init(-1, depth_);
}

void Recorder::bind_hosts(int n) {
  while (hosts() < n) {
    auto rings = std::make_unique<HostRings>();
    rings->hot.init(hosts(), depth_);
    rings->state.init(hosts(), std::min(depth_, kStateDepth));
    rings_.push_back(std::move(rings));
  }
}

std::int32_t Recorder::intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(strings_mu_);
  auto it = string_ids_.find(s);
  if (it != string_ids_.end()) return it->second;
  const auto id = static_cast<std::int32_t>(strings_.size());
  strings_.emplace_back(s);
  string_ids_.emplace(std::string(s), id);
  return id;
}

std::string Recorder::string_at(std::int32_t id) const {
  std::lock_guard<std::mutex> lock(strings_mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= strings_.size()) return "";
  return strings_[static_cast<std::size_t>(id)];
}

std::vector<std::string> Recorder::strings() const {
  std::lock_guard<std::mutex> lock(strings_mu_);
  return strings_;
}

std::vector<Event> Recorder::merged() const {
  struct Tagged {
    Event e;
    std::uint64_t seq;
    std::uint32_t ring;
  };
  std::vector<Tagged> all;
  std::vector<Event> events;
  std::vector<std::uint64_t> seqs;
  std::uint32_t ring_ord = 0;
  auto take = [&](const EventRing& r) {
    r.snapshot(&events, &seqs);
    for (std::size_t i = 0; i < events.size(); ++i) {
      all.push_back(Tagged{events[i], seqs[i], ring_ord});
    }
    ++ring_ord;
  };
  for (const auto& r : rings_) {
    take(r->hot);
    take(r->state);
  }
  take(system_ring_);

  std::stable_sort(all.begin(), all.end(), [](const Tagged& x, const Tagged& y) {
    if (x.e.time != y.e.time) return x.e.time < y.e.time;
    if (x.e.host != y.e.host) return x.e.host < y.e.host;
    if (x.ring != y.ring) return x.ring < y.ring;
    return x.seq < y.seq;
  });
  std::vector<Event> out;
  out.reserve(all.size());
  for (const Tagged& t : all) out.push_back(t.e);
  return out;
}

std::uint64_t Recorder::dropped_total() const {
  std::uint64_t d = system_ring_.dropped();
  for (const auto& r : rings_) d += r->hot.dropped() + r->state.dropped();
  return d;
}

namespace {

void json_escape_into(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

void Recorder::write_trace_json(std::ostream& os) const {
  const std::vector<Event> events = merged();
  std::string j;
  j.reserve(events.size() * 48 + 512);
  j += "{\n  \"schema\": \"ecfd.trace.v1\",\n";
  j += "  \"source\": \"";
  json_escape_into(&j, meta_.source);
  j += "\",\n";
  j += "  \"clock\": \"";
  j += meta_.clock == ClockDomain::kVirtual ? "virtual" : "monotonic";
  j += "\",\n";
  j += "  \"wall_epoch_us\": " + std::to_string(meta_.wall_epoch_us) + ",\n";
  j += "  \"n\": " + std::to_string(hosts()) + ",\n";
  j += "  \"depth\": " + std::to_string(depth_) + ",\n";
  j += "  \"dropped\": " + std::to_string(dropped_total()) + ",\n";
  j += "  \"strings\": [";
  const std::vector<std::string> strs = strings();
  for (std::size_t i = 0; i < strs.size(); ++i) {
    if (i != 0) j += ", ";
    j += "\"";
    json_escape_into(&j, strs[i]);
    j += "\"";
  }
  j += "],\n";
  // One event per line: [time_us, host, "type", a, b, label]
  j += "  \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    j += i == 0 ? "\n" : ",\n";
    j += "    [" + std::to_string(e.time) + ", " + std::to_string(e.host) +
         ", \"" + event_type_name(e.type) + "\", " + std::to_string(e.a) +
         ", " + std::to_string(e.b) + ", " + std::to_string(e.label) + "]";
  }
  j += events.empty() ? "]\n" : "\n  ]\n";
  j += "}\n";
  os << j;
}

}  // namespace ecfd::obs
