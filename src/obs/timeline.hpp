#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/recorder.hpp"

/// \file timeline.hpp
/// Cross-backend timeline reconstruction.
///
/// A TimelineDoc is one recorder's worth of events (parsed back from an
/// ecfd.trace.v1 file, or snapshotted from a live Recorder). merge() aligns
/// any number of docs onto one time axis — virtual time passes through
/// untouched; monotonic docs from different OS processes are calibrated by
/// their recorded wall-clock epochs — and tools/ecfd_trace renders the
/// result as text or as Chrome-trace JSON (chrome://tracing, Perfetto).
///
/// The Chrome export reconstructs intervals from the point events:
/// suspect/unsuspect pairs become per-observer suspicion spans, leader
/// changes become leader epochs, round starts become round spans — so an
/// n=64 leader-crash run reads as a visual story: heartbeats stop, the
/// suspicion spans open, the leader epoch flips, the decide markers land.

namespace ecfd::obs {

/// One trace source on its own clock.
struct TimelineDoc {
  TraceMeta meta;
  int n{0};
  std::uint64_t dropped{0};
  std::vector<std::string> strings;
  std::vector<Event> events;  ///< sorted by (time, host, seq) at write time
  std::string origin;         ///< file path or tool-chosen tag (for errors)
};

/// Parses an ecfd.trace.v1 JSON document. On failure returns nullopt and
/// sets \p error.
std::optional<TimelineDoc> parse_trace_json(const std::string& text,
                                            std::string* error = nullptr);

/// Snapshots a live recorder into a doc (no serialization round-trip).
TimelineDoc snapshot_doc(const Recorder& rec, std::string origin);

/// All docs merged onto one axis. Labels are re-interned into one table.
struct MergedTimeline {
  int n{0};                          ///< max host id + 1 across docs
  bool monotonic{false};             ///< any doc used wall clocks
  std::uint64_t dropped{0};
  std::vector<std::string> strings;
  std::vector<Event> events;         ///< time-sorted; label -> strings
};

/// Merges docs. Monotonic docs are rebased so the earliest wall epoch is
/// t=0 and all later docs are offset by their epoch difference — the
/// calibration that makes per-process UDP traces line up. Virtual-time
/// docs pass through unchanged (merging the two kinds is allowed but the
/// axes are unrelated; ecfd_trace warns).
MergedTimeline merge(const std::vector<TimelineDoc>& docs);

/// Human-readable merged timeline, one event per line.
void write_text(std::ostream& os, const MergedTimeline& t);

/// Chrome-trace JSON (the "JSON Array with metadata" object form): one
/// Chrome process per host, lanes for net/fd/consensus/notes, "X" spans
/// for suspicion intervals, leader epochs and rounds, instants for the
/// rest. Deterministic output.
void write_chrome_trace(std::ostream& os, const MergedTimeline& t);

}  // namespace ecfd::obs
