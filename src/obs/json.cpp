#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

namespace ecfd::obs::json {

const Value& Value::at(const std::string& key) const {
  static const Value kNull;
  if (kind_ != Kind::kObject || !object_) return kNull;
  auto it = object_->find(key);
  return it == object_->end() ? kNull : it->second;
}

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos{0};
  std::string error{};

  [[nodiscard]] bool failed() const { return !error.empty(); }

  void fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
  }

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  [[nodiscard]] char peek() { return pos < text.size() ? text[pos] : '\0'; }

  bool consume(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos;
    return true;
  }

  bool expect(char c) {
    if (!consume(c)) {
      fail(std::string("expected '") + c + "'");
      return false;
    }
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        return match("true") ? Value(true) : Value();
      case 'f':
        return match("false") ? Value(false) : Value();
      case 'n':
        match("null");
        return Value();
      default:
        return parse_number();
    }
  }

  bool match(const char* word) {
    std::size_t i = 0;
    while (word[i] != '\0') {
      if (pos + i >= text.size() || text[pos + i] != word[i]) {
        fail(std::string("expected '") + word + "'");
        return false;
      }
      ++i;
    }
    pos += i;
    return true;
  }

  std::string parse_string() {
    std::string out;
    if (!expect('"')) return out;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) break;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos + 4 > text.size()) {
            fail("truncated \\u escape");
            return out;
          }
          const std::string hex = text.substr(pos, 4);
          pos += 4;
          const auto code =
              static_cast<unsigned>(std::strtoul(hex.c_str(), nullptr, 16));
          // Our writers only emit \u for control characters; decode the
          // BMP code point as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
          return out;
      }
    }
    fail("unterminated string");
    return out;
  }

  Value parse_number() {
    skip_ws();
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    bool is_double = false;
    while (pos < text.size()) {
      const char c = text[pos];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) {
      fail("expected a value");
      return Value();
    }
    const std::string num = text.substr(start, pos - start);
    if (is_double) return Value(std::strtod(num.c_str(), nullptr));
    return Value(static_cast<std::int64_t>(
        std::strtoll(num.c_str(), nullptr, 10)));
  }

  Value parse_array() {
    Array arr;
    if (!expect('[')) return Value();
    skip_ws();
    if (consume(']')) return Value(std::move(arr));
    while (true) {
      arr.push_back(parse_value());
      if (failed()) return Value();
      if (consume(']')) return Value(std::move(arr));
      if (!expect(',')) return Value();
    }
  }

  Value parse_object() {
    Object obj;
    if (!expect('{')) return Value();
    skip_ws();
    if (consume('}')) return Value(std::move(obj));
    while (true) {
      skip_ws();
      std::string key = parse_string();
      if (failed()) return Value();
      if (!expect(':')) return Value();
      obj.emplace(std::move(key), parse_value());
      if (failed()) return Value();
      if (consume('}')) return Value(std::move(obj));
      if (!expect(',')) return Value();
    }
  }
};

}  // namespace

Value parse(const std::string& text, std::string* error) {
  Parser p{text};
  Value v = p.parse_value();
  if (!p.failed()) {
    p.skip_ws();
    if (p.pos != text.size()) p.fail("trailing characters");
  }
  if (p.failed()) {
    if (error != nullptr) *error = p.error;
    return Value();
  }
  return v;
}

}  // namespace ecfd::obs::json
