#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <typeinfo>
#include <unordered_set>

#include "net/env.hpp"
#include "net/protocol_ids.hpp"

/// \file reliable_broadcast.hpp
/// Reliable Broadcast by message diffusion (Chandra-Toueg [6]): on first
/// delivery of a broadcast, a process relays it to everyone before handing
/// it to the application. Guarantees:
///   * validity    — a correct broadcaster's message is delivered by all
///                   correct processes;
///   * agreement   — if any correct process delivers m, all correct do;
///   * uniform integrity — m is delivered at most once, and only if it was
///                   broadcast.
/// The consensus algorithms use it to propagate decisions (the "R-broadcast
/// ... decide" of Fig. 4).

namespace ecfd::broadcast {

/// A delivered broadcast.
struct RbEnvelope {
  ProcessId origin{kNoProcess};
  std::uint64_t seq{0};  ///< per-origin sequence number
  int tag{0};            ///< application-defined discriminator

  std::shared_ptr<const void> body{};
  const std::type_info* body_type{nullptr};

  template <class T>
  const T& as() const {
    assert(body && body_type && *body_type == typeid(T) &&
           "RB envelope body type mismatch");
    return *static_cast<const T*>(body.get());
  }
};

class ReliableBroadcast final : public Protocol {
 public:
  using DeliverFn = std::function<void(const RbEnvelope&)>;

  /// \p pid allows hosting several independent instances on one process
  /// (e.g. one per replicated-log slot); it must match across processes.
  explicit ReliableBroadcast(Env& env,
                             ProtocolId pid = protocol_ids::kReliableBroadcast);

  /// Installs the application callback invoked on every R-delivery.
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// R-broadcasts a typed body. The local process R-delivers immediately
  /// (after relaying), everyone else on first receipt.
  template <class T>
  void r_broadcast(int tag, T body) {
    RbEnvelope env_out;
    env_out.origin = env_.self();
    env_out.seq = next_seq_++;
    env_out.tag = tag;
    auto owned = std::make_shared<const T>(std::move(body));
    env_out.body_type = &typeid(T);
    env_out.body = std::move(owned);
    diffuse_and_deliver(env_out);
  }

  void on_message(const Message& m) override;

  /// Number of distinct broadcasts delivered here (for tests).
  [[nodiscard]] std::size_t delivered_count() const { return seen_.size(); }

 private:
  void diffuse_and_deliver(const RbEnvelope& envelope);
  [[nodiscard]] static std::uint64_t key(const RbEnvelope& e) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.origin))
            << 32) |
           (e.seq & 0xffffffffULL);
  }

  DeliverFn deliver_;
  std::uint64_t next_seq_{1};
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace ecfd::broadcast
