#include "broadcast/reliable_broadcast.hpp"

namespace ecfd::broadcast {

namespace {
constexpr int kRelay = 1;
}

ReliableBroadcast::ReliableBroadcast(Env& env, ProtocolId pid)
    : Protocol(env, pid) {}

void ReliableBroadcast::diffuse_and_deliver(const RbEnvelope& envelope) {
  if (!seen_.insert(key(envelope)).second) return;  // already delivered
  // Relay first (diffusion), then deliver to the application; the envelope
  // body is shared, so relaying costs no copies.
  env_.broadcast(
      Message::make(protocol_id(), kRelay, "rb.relay", envelope));
  if (deliver_) deliver_(envelope);
}

void ReliableBroadcast::on_message(const Message& m) {
  if (m.type != kRelay) return;
  diffuse_and_deliver(m.as<RbEnvelope>());
}

}  // namespace ecfd::broadcast
