#include "runner/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace ecfd::runner {

ThreadPool::ThreadPool(unsigned threads) {
  threads = std::max(1u, threads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_
      task = std::move(tasks_.back());
      tasks_.pop_back();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

unsigned ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& fn) {
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(threads);
  std::atomic<std::size_t> next{0};
  const std::size_t workers =
      std::min<std::size_t>(pool.threads(), count);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace ecfd::runner
