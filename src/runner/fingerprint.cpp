#include "runner/fingerprint.hpp"

namespace ecfd::runner {

std::uint64_t fingerprint_counters(const sim::Counters& counters) {
  Fnv1a h;
  for (const auto& [key, value] : counters.all()) {
    h.str(key);
    h.i64(value);
  }
  return h.value();
}

std::uint64_t fingerprint_trace(const sim::Trace& trace) {
  Fnv1a h;
  for (const auto& e : trace.events()) {
    h.i64(e.time);
    h.i64(e.process);
    h.str(e.tag);
    h.str(e.detail);
  }
  return h.value();
}

std::uint64_t fingerprint_result(const consensus::HarnessResult& r) {
  Fnv1a h;
  for (const auto& o : r.outcomes) {
    h.u64(o.decided ? 1 : 0);
    h.i64(o.value);
    h.i64(o.round);
    h.i64(o.at);
    h.i64(o.last_round);
  }
  h.u64(r.every_correct_decided ? 1 : 0);
  h.u64(r.uniform_agreement ? 1 : 0);
  h.u64(r.validity ? 1 : 0);
  h.i64(r.max_decision_round);
  h.i64(r.min_decision_round);
  h.i64(r.last_decision_at);
  h.i64(r.consensus_msgs);
  h.i64(r.rb_msgs);
  h.i64(r.fd_msgs);
  h.i64(r.max_round_entered);
  h.u64(r.events_fired);
  h.i64(r.sim_end);
  h.u64(fingerprint_counters(r.counters));
  return h.value();
}

}  // namespace ecfd::runner
