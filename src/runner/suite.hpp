#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "consensus/harness.hpp"
#include "obs/recorder.hpp"

/// \file suite.hpp
/// The canonical multi-seed experiment sweeps driven by tools/bench_runner
/// and replayed (in miniature) by tests/test_determinism.cpp.
///
/// A case is one fully self-contained simulation: (experiment, config,
/// seed) -> CaseMetrics. Cases never share state, so any subset can run on
/// any thread; the per-case `hash` must come out bit-identical regardless.

namespace ecfd::runner {

/// What one simulation run produced.
struct CaseMetrics {
  std::uint64_t hash{0};      ///< order-sensitive digest of the whole run
  std::uint64_t events{0};    ///< scheduler events fired
  std::int64_t msgs{0};       ///< messages sent on the simulated network
  double metric{0.0};         ///< experiment-specific headline number (ms)
};

/// E4-style: crash one process under a live all-to-all heartbeat ◇P stack
/// and measure time until every correct process suspects it. A non-null
/// \p rec is attached to the simulated system (typed event rings) —
/// recording does not perturb the run's hash.
CaseMetrics run_detection_case(int n, std::uint64_t seed,
                               obs::Recorder* rec = nullptr);

/// E5-style: one full consensus instance under crashes on a live
/// heartbeat+Omega stack; metric is the last correct decision time.
CaseMetrics run_consensus_case(int n, std::uint64_t seed,
                               consensus::Algo algo, int crashes,
                               obs::Recorder* rec = nullptr);

/// Scheduler kernel churn: schedule/cancel/pop against a standing backlog,
/// no network. Metric is ops executed (for events/sec accounting).
CaseMetrics run_churn_case(std::uint64_t seed, int pending, int ops);

/// One runnable case of a sweep.
struct CaseSpec {
  std::string experiment;  ///< sweep name, e.g. "e4_detection"
  std::string config;      ///< human-readable point, e.g. "n=16"
  std::uint64_t seed{0};
  std::function<CaseMetrics()> run;
  /// Same case with a typed event recorder attached; null for cases with
  /// no network to record (micro_churn). Used by bench_runner --trace.
  std::function<CaseMetrics(obs::Recorder*)> run_traced;
};

/// Builds the full sweep list. `quick` shrinks seed counts and sizes to a
/// CI-friendly few-second suite; otherwise E4/E5 run 32 seeds per point.
std::vector<CaseSpec> build_suite(bool quick);

}  // namespace ecfd::runner
