#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.hpp
/// A small fixed-size thread pool for fanning independent single-threaded
/// simulations across cores.
///
/// Each simulation is completely self-contained (its own Scheduler, Network,
/// Rng, Counters), so the only shared state between workers is the task
/// queue itself; results land in caller-owned slots indexed by task, which
/// makes the parallel output byte-identical to a sequential run regardless
/// of completion order.

namespace ecfd::runner {

class ThreadPool {
 public:
  /// Starts \p threads workers (at least 1).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] unsigned threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Default worker count: hardware_concurrency, at least 1.
  static unsigned default_threads();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::vector<std::function<void()>> tasks_;
  std::size_t in_flight_{0};
  bool stopping_{false};
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for every i in [0, count) on \p threads workers and waits
/// for completion. With threads == 1 this degenerates to a plain loop on
/// the calling thread (no pool is created).
void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace ecfd::runner
