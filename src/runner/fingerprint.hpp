#pragma once

#include <cstdint>
#include <string>

#include "consensus/harness.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

/// \file fingerprint.hpp
/// Order-sensitive digests of simulation runs.
///
/// A fingerprint folds everything observable about a run — counters, trace
/// events, decision times, events fired — into one 64-bit FNV-1a hash. Two
/// runs of the same scenario and seed must produce the same fingerprint on
/// any thread, any build, and across refactors of the simulation kernel;
/// the determinism suite (tests/test_determinism.cpp) and the parallel
/// experiment driver (tools/bench_runner.cpp) both assert exactly that.

namespace ecfd::runner {

/// Incremental FNV-1a (64-bit) hasher.
class Fnv1a {
 public:
  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001b3ULL;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_{0xcbf29ce484222325ULL};
};

/// Digest of every counter, key and value, in sorted-key order.
std::uint64_t fingerprint_counters(const sim::Counters& counters);

/// Digest of every trace event in emission order.
std::uint64_t fingerprint_trace(const sim::Trace& trace);

/// Digest of a consensus harness result (outcomes, rounds, times, message
/// totals, counters, events fired).
std::uint64_t fingerprint_result(const consensus::HarnessResult& r);

}  // namespace ecfd::runner
