#include "runner/suite.hpp"

#include <vector>

#include "fd/heartbeat_p.hpp"
#include "net/scenario.hpp"
#include "runner/fingerprint.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace ecfd::runner {

CaseMetrics run_detection_case(int n, std::uint64_t seed,
                               obs::Recorder* rec) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.links = LinkKind::kPartialSync;
  cfg.gst = 0;
  cfg.delta = msec(5);
  auto sys = make_system(cfg);
  if (rec != nullptr) sys->attach_recorder(rec);
  std::vector<const SuspectOracle*> oracles(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p) {
    oracles[static_cast<std::size_t>(p)] = &sys->host(p).emplace<fd::HeartbeatP>();
  }
  sys->start();

  const TimeUs crash_at = msec(500);
  const ProcessId victim = n / 2;
  sys->crash_at(victim, crash_at);
  sys->run_until(crash_at);

  DurUs latency = -1;
  const TimeUs deadline = crash_at + sec(30);
  while (sys->now() < deadline) {
    sys->run_for(msec(1));
    bool all = true;
    for (ProcessId p = 0; p < n; ++p) {
      if (p == victim) continue;
      if (!oracles[static_cast<std::size_t>(p)]->suspected().contains(victim)) {
        all = false;
        break;
      }
    }
    if (all) {
      latency = sys->now() - crash_at;
      break;
    }
  }

  CaseMetrics m;
  m.events = sys->scheduler().fired();
  m.msgs = sys->network().sent_total();
  m.metric = latency < 0 ? 30000.0 : static_cast<double>(latency) / 1000.0;
  Fnv1a h;
  h.i64(latency);
  h.u64(m.events);
  h.i64(m.msgs);
  h.i64(sys->now());
  h.u64(fingerprint_counters(sys->counters()));
  m.hash = h.value();
  return m;
}

CaseMetrics run_consensus_case(int n, std::uint64_t seed,
                               consensus::Algo algo, int crashes,
                               obs::Recorder* rec) {
  consensus::HarnessConfig cfg;
  cfg.scenario.n = n;
  cfg.scenario.seed = seed;
  cfg.scenario.links = LinkKind::kPartialSync;
  cfg.scenario.gst = msec(100);
  cfg.scenario.delta = msec(5);
  cfg.scenario.pre_gst_max = msec(40);
  cfg.algo = algo;
  cfg.fd = consensus::FdStack::kOmegaPlusHeartbeat;
  cfg.horizon = sec(60);
  for (int i = 0; i < crashes; ++i) {
    cfg.scenario.with_crash(i, msec(20) + i * msec(25));
  }
  if (rec != nullptr) {
    cfg.instrument = [rec](const consensus::HarnessInstruments& inst) {
      inst.sys.attach_recorder(rec);
    };
  }
  const consensus::HarnessResult r = consensus::run_consensus(cfg);

  CaseMetrics m;
  m.events = r.events_fired;
  m.msgs = r.consensus_msgs + r.rb_msgs + r.fd_msgs;
  m.metric = static_cast<double>(r.last_decision_at) / 1000.0;
  m.hash = fingerprint_result(r);
  return m;
}

CaseMetrics run_churn_case(std::uint64_t seed, int pending, int ops) {
  sim::Scheduler sched;
  Rng rng(seed);
  std::vector<sim::EventId> ids;
  ids.reserve(static_cast<std::size_t>(pending));
  std::uint64_t fired_acc = 0;

  for (int i = 0; i < pending; ++i) {
    ids.push_back(sched.schedule_after(
        static_cast<DurUs>(rng.below(1000)) + 1,
        [&fired_acc] { ++fired_acc; }));
  }
  for (int i = 0; i < ops; ++i) {
    const std::uint64_t pick = rng.below(3);
    if (pick == 0 && !ids.empty()) {
      // Cancel a pseudo-random pending event (ignoring already-fired ids).
      const std::size_t at = rng.below(ids.size());
      sched.cancel(ids[at]);
      ids[at] = ids.back();
      ids.pop_back();
    } else if (pick == 1) {
      ids.push_back(sched.schedule_after(
          static_cast<DurUs>(rng.below(1000)) + 1,
          [&fired_acc] { ++fired_acc; }));
    } else {
      sched.step();
    }
  }
  sched.run();

  CaseMetrics m;
  m.events = sched.fired();
  m.msgs = 0;
  m.metric = static_cast<double>(ops);
  Fnv1a h;
  h.u64(fired_acc);
  h.u64(sched.fired());
  h.i64(sched.now());
  m.hash = h.value();
  return m;
}

std::vector<CaseSpec> build_suite(bool quick) {
  std::vector<CaseSpec> suite;
  const std::uint64_t seeds = quick ? 4 : 32;

  const std::vector<int> detection_ns = quick ? std::vector<int>{8}
                                              : std::vector<int>{8, 16, 32};
  for (int n : detection_ns) {
    for (std::uint64_t s = 0; s < seeds; ++s) {
      suite.push_back(
          {"e4_detection", "n=" + std::to_string(n), s,
           [n, s] { return run_detection_case(n, 100 + s); },
           [n, s](obs::Recorder* rec) {
             return run_detection_case(n, 100 + s, rec);
           }});
    }
  }

  struct AlgoPoint {
    consensus::Algo algo;
    const char* name;
  };
  const AlgoPoint algos[] = {{consensus::Algo::kEcfdC, "ecfd-C"},
                             {consensus::Algo::kChandraTouegS, "ct-S"},
                             {consensus::Algo::kMrOmega, "mr-omega"}};
  for (const auto& a : algos) {
    for (std::uint64_t s = 0; s < seeds; ++s) {
      suite.push_back({"e5_consensus", std::string("algo=") + a.name, s,
                       [algo = a.algo, s] {
                         return run_consensus_case(7, 500 + s, algo, 1);
                       },
                       [algo = a.algo, s](obs::Recorder* rec) {
                         return run_consensus_case(7, 500 + s, algo, 1, rec);
                       }});
    }
  }

  const int churn_pending = quick ? 10'000 : 100'000;
  const int churn_ops = quick ? 200'000 : 2'000'000;
  for (std::uint64_t s = 0; s < (quick ? 2u : 8u); ++s) {
    suite.push_back({"micro_churn",
                     "pending=" + std::to_string(churn_pending), s,
                     [=] { return run_churn_case(s + 1, churn_pending, churn_ops); },
                     /*run_traced=*/nullptr});
  }
  return suite;
}

}  // namespace ecfd::runner
