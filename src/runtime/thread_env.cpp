#include "runtime/thread_env.hpp"

#include <cassert>

namespace ecfd::runtime {

// ----------------------------------------------------------------- host

ThreadHost::ThreadHost(ThreadSystem& sys, ProcessId id, int n,
                       std::uint64_t seed)
    : sys_(sys), id_(id), n_(n), rng_(seed) {}

ThreadHost::~ThreadHost() { stop_thread(); }

void ThreadHost::add_protocol(std::unique_ptr<Protocol> proto) {
  assert(proto != nullptr);
  const ProtocolId pid = proto->protocol_id();
  assert(by_id_.find(pid) == by_id_.end());
  by_id_.emplace(pid, proto.get());
  owned_.push_back(std::move(proto));
}

void ThreadHost::post_at(TimeUs when, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    queue_.push(Work{when, next_seq_++, kInvalidTimer, std::move(fn)});
  }
  cv_.notify_one();
}

TimeUs ThreadHost::now() const { return sys_.now(); }

void ThreadHost::send(ProcessId dst, Message m) {
  if (crashed()) return;
  m.src = id_;
  m.dst = dst;
  sys_.route(m);
}

TimerId ThreadHost::set_timer(DurUs delay, std::function<void()> fn) {
  TimerId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || crashed_) return kInvalidTimer;
    id = next_timer_++;
    queue_.push(Work{now() + delay, next_seq_++, id, std::move(fn)});
  }
  cv_.notify_one();
  return id;
}

void ThreadHost::cancel_timer(TimerId id) {
  if (id == kInvalidTimer) return;
  std::lock_guard<std::mutex> lock(mu_);
  cancelled_.insert(id);
}

void ThreadHost::trace(const std::string&, const std::string&) {
  // The threaded runtime keeps no trace; attach a debugger or add printf
  // locally when needed.
}

void ThreadHost::crash() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = true;
}

bool ThreadHost::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

void ThreadHost::deliver(const Message& m) {
  post([this, m]() {
    auto it = by_id_.find(m.protocol);
    if (it != by_id_.end()) it->second->on_message(m);
  });
}

void ThreadHost::start_thread() {
  thread_ = std::thread([this]() { run_loop(); });
}

void ThreadHost::stop_thread() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
}

void ThreadHost::run_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopping_) return;
    if (queue_.empty()) {
      cv_.wait(lock);
      continue;
    }
    const TimeUs due = queue_.top().when;
    const TimeUs current = sys_.now();
    if (due > current) {
      cv_.wait_for(lock, std::chrono::microseconds(due - current));
      continue;
    }
    Work w = queue_.top();
    queue_.pop();
    if (w.timer != kInvalidTimer) {
      auto it = cancelled_.find(w.timer);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
    }
    if (crashed_) continue;  // a crashed process executes nothing
    lock.unlock();
    w.fn();
    lock.lock();
  }
}

// --------------------------------------------------------------- system

ThreadSystem::ThreadSystem(Config cfg)
    : cfg_(cfg),
      epoch_(std::chrono::steady_clock::now()),
      route_rng_(cfg.seed ^ 0x5bd1e995) {
  assert(cfg_.n > 0);
  Rng seeder(cfg_.seed);
  hosts_.reserve(static_cast<std::size_t>(cfg_.n));
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    hosts_.push_back(
        std::make_unique<ThreadHost>(*this, p, cfg_.n, seeder.next()));
  }
}

ThreadSystem::~ThreadSystem() {
  for (auto& h : hosts_) h->stop_thread();
}

TimeUs ThreadSystem::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void ThreadSystem::start() {
  assert(!started_);
  started_ = true;
  for (auto& h : hosts_) h->start_thread();
  for (auto& h : hosts_) {
    ThreadHost* host = h.get();
    host->post([host]() {
      for (auto& proto : host->owned_) proto->start();
    });
  }
}

void ThreadSystem::route(const Message& m) {
  DurUs delay;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (route_rng_.chance(cfg_.loss_p)) return;  // lost
    delay = route_rng_.range(cfg_.min_delay, cfg_.max_delay);
  }
  ThreadHost& dst = *hosts_[static_cast<std::size_t>(m.dst)];
  if (dst.crashed()) return;
  dst.post_at(now() + delay, [&dst, m]() {
    auto it = dst.by_id_.find(m.protocol);
    if (it != dst.by_id_.end() && !dst.crashed()) it->second->on_message(m);
  });
}

}  // namespace ecfd::runtime
