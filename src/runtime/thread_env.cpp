#include "runtime/thread_env.hpp"

#include <algorithm>
#include <cassert>

namespace ecfd::runtime {

namespace {

/// The Worker whose loop is executing on this thread (nullptr on every
/// non-worker thread: tests, monitors, legacy host threads). Lets hosts
/// tell owner-thread calls from foreign ones and gives route() a lock-free
/// RNG stream.
thread_local Worker* t_worker = nullptr;

}  // namespace

// ----------------------------------------------------------------- host

ThreadHost::ThreadHost(ThreadSystem& sys, ProcessId id, int n,
                       std::uint64_t seed)
    : sys_(sys), id_(id), n_(n), rng_(seed) {}

ThreadHost::~ThreadHost() {
  if (legacy_) stop_thread();
}

void ThreadHost::add_protocol(std::unique_ptr<Protocol> proto) {
  assert(proto != nullptr);
  assert(!sys_.started() && "register protocols before start()");
  const ProtocolId pid = proto->protocol_id();
  assert(by_id_.find(pid) == by_id_.end());
  by_id_.emplace(pid, proto.get());
  owned_.push_back(std::move(proto));
}

void ThreadHost::post_at(TimeUs when, std::function<void()> fn) {
  if (legacy_) {
    legacy_post_at(when, std::move(fn));
    return;
  }
  enqueue(when, sim::InplaceAction([f = std::move(fn)]() mutable { f(); }));
}

void ThreadHost::crash() {
  record(EventType::kCrash);
  crashed_.store(true, std::memory_order_release);
}

std::size_t ThreadHost::bookkeeping_records() const {
  if (legacy_) {
    std::lock_guard<std::mutex> lock(legacy_->mu);
    return legacy_->cancelled.size();
  }
  return foreign_records_.load(std::memory_order_acquire);
}

std::vector<TraceRecord> ThreadHost::recent_trace() const {
  std::vector<TraceRecord> out;
  obs::Recorder* rec = sys_.recorder_;
  if (rec == nullptr || id_ >= rec->hosts()) return out;
  std::vector<obs::Event> events;
  rec->state_ring(id_).snapshot(&events);
  out.reserve(events.size());
  for (const obs::Event& e : events) {
    TraceRecord r;
    r.time = e.time;
    if (e.type == EventType::kNote) {
      // Env::trace text round-trips through the interned table.
      r.tag = rec->string_at(e.label);
      r.detail = rec->string_at(static_cast<std::int32_t>(e.b));
    } else {
      r.tag = std::string("obs.") + obs::event_type_name(e.type);
      r.detail = "a=" + std::to_string(e.a) + " b=" + std::to_string(e.b);
    }
    out.push_back(std::move(r));
  }
  return out;
}

TimeUs ThreadHost::now() const { return sys_.now() + clock_error(); }

void ThreadHost::set_gray(std::uint32_t factor_milli, DurUs send_extra) {
  assert(factor_milli > 0 && "gray factor must be positive");
  gray_factor_milli_.store(factor_milli, std::memory_order_release);
  gray_send_extra_.store(send_extra, std::memory_order_release);
}

void ThreadHost::set_clock_skew(std::int64_t offset_us,
                                std::int32_t drift_ppm, DurUs bound_us) {
  assert(drift_ppm > -1'000'000 && "clock cannot run backwards");
  skew_offset_.store(offset_us, std::memory_order_relaxed);
  skew_drift_ppm_.store(drift_ppm, std::memory_order_relaxed);
  skew_bound_.store(bound_us, std::memory_order_relaxed);
  skew_since_.store(sys_.now(), std::memory_order_relaxed);
  skew_active_.store(offset_us != 0 || drift_ppm != 0,
                     std::memory_order_release);
}

std::int64_t ThreadHost::clock_error() const {
  if (!skew_active_.load(std::memory_order_acquire)) return 0;
  const TimeUs t = sys_.now();
  std::int64_t err =
      skew_offset_.load(std::memory_order_relaxed) +
      skew_drift_ppm_.load(std::memory_order_relaxed) *
          (t - skew_since_.load(std::memory_order_relaxed)) / 1'000'000;
  const std::int64_t bound = skew_bound_.load(std::memory_order_relaxed);
  if (bound > 0) err = std::clamp(err, -bound, bound);
  return err;
}

void ThreadHost::send(ProcessId dst, Message m) {
  if (crashed()) return;
  m.src = id_;
  m.dst = dst;
  record(EventType::kSend, dst, m.protocol);
  const DurUs extra = gray_send_extra_.load(std::memory_order_acquire);
  if (extra > 0) {
    // Gray NIC: the message leaves the host late but otherwise intact.
    post_at(sys_.now() + extra, [this, msg = std::move(m)]() mutable {
      if (!crashed()) sys_.route(std::move(msg));
    });
    return;
  }
  sys_.route(std::move(m));
}

TimerId ThreadHost::set_timer(DurUs delay, std::function<void()> fn) {
  const TimerId id = set_timer_impl(delay, std::move(fn));
  if (id != kInvalidTimer) {
    record(EventType::kTimerSet, -1, static_cast<std::int64_t>(id));
  }
  return id;
}

TimerId ThreadHost::set_timer_impl(DurUs delay, std::function<void()> fn) {
  const std::uint32_t gf = gray_factor_milli_.load(std::memory_order_acquire);
  if (gf != 1000) {
    // Gray CPU: the host's deferred work runs factor× late.
    delay = delay * static_cast<DurUs>(gf) / 1000;
  }
  const std::int32_t drift = skew_active_.load(std::memory_order_acquire)
                                 ? skew_drift_ppm_.load(std::memory_order_relaxed)
                                 : 0;
  if (drift != 0) {
    // A fast local clock fires its timers early in fabric time (and a
    // slow one late): the host *believes* it waited `delay`.
    delay = delay * 1'000'000 / (1'000'000 + drift);
  }
  if (legacy_) return legacy_set_timer(delay, std::move(fn));
  if (crashed()) return kInvalidTimer;
  const TimeUs when = sys_.now() + delay;
  if (!sys_.started() || on_owner_thread()) {
    return arm_on_owner(when, std::move(fn));
  }
  // Foreign thread: the wheel is single-threaded, so route the arm through
  // the mailbox and hand back an id from the out-of-band namespace.
  const TimerId fid =
      kForeignTimerBit | foreign_seq_.fetch_add(1, std::memory_order_relaxed);
  foreign_records_.fetch_add(1, std::memory_order_acq_rel);
  arm_foreign(fid, when, std::move(fn));
  return fid;
}

void ThreadHost::cancel_timer(TimerId id) {
  if (id != kInvalidTimer) {
    record(EventType::kTimerCancel, -1, static_cast<std::int64_t>(id));
  }
  if (legacy_) {
    legacy_cancel_timer(id);
    return;
  }
  if (id == kInvalidTimer) return;
  if (!sys_.started() || on_owner_thread()) {
    cancel_on_owner(id);
    return;
  }
  enqueue(now(), sim::InplaceAction([this, id]() { cancel_on_owner(id); }));
}

void ThreadHost::trace(const std::string& tag, const std::string& detail) {
  if (!recording()) return;
  // Cold path by contract: callers already pay string construction.
  obs::Recorder* rec = recorder();
  record(EventType::kNote, -1, rec->intern(detail), rec->intern(tag));
}

bool ThreadHost::on_owner_thread() const {
  return worker_ != nullptr && t_worker == worker_;
}

void ThreadHost::enqueue(TimeUs when, sim::InplaceAction fn) {
  if (sys_.stopping()) return;
  mailbox_.push(WorkItem{when, std::move(fn)});
  worker_->notify(when);
}

void ThreadHost::dispatch(const Message& m) {
  auto it = by_id_.find(m.protocol);
  if (it == by_id_.end()) return;
  record(EventType::kDeliver, m.src, m.protocol);
  it->second->on_message(m);
}

TimerId ThreadHost::arm_on_owner(TimeUs when, std::function<void()> fn) {
  const WheelHandle h = worker_->wheel_.schedule(
      when, static_cast<std::uint32_t>(id_), TimerWheel::Kind::kTimer,
      sim::InplaceAction([f = std::move(fn)]() mutable { f(); }));
  live_timers_.fetch_add(1, std::memory_order_acq_rel);
  worker_->publish_wheel_size();
  return h;
}

void ThreadHost::arm_foreign(TimerId fid, TimeUs when,
                             std::function<void()> fn) {
  enqueue(sys_.now(),
          sim::InplaceAction([this, fid, when, f = std::move(fn)]() mutable {
            const WheelHandle h = worker_->wheel_.schedule(
                when, static_cast<std::uint32_t>(id_), TimerWheel::Kind::kTimer,
                sim::InplaceAction([this, fid, f2 = std::move(f)]() mutable {
                  foreign_timers_.erase(fid);
                  foreign_records_.fetch_sub(1, std::memory_order_acq_rel);
                  f2();
                }));
            foreign_timers_.emplace(fid, h);
            live_timers_.fetch_add(1, std::memory_order_acq_rel);
            worker_->publish_wheel_size();
          }));
}

void ThreadHost::cancel_on_owner(TimerId id) {
  if ((id & kForeignTimerBit) != 0) {
    auto it = foreign_timers_.find(id);
    if (it == foreign_timers_.end()) return;  // fired or cancelled already
    const WheelHandle h = it->second;
    foreign_timers_.erase(it);
    foreign_records_.fetch_sub(1, std::memory_order_acq_rel);
    if (worker_->wheel_.cancel(h)) {
      live_timers_.fetch_sub(1, std::memory_order_acq_rel);
      worker_->publish_wheel_size();
    }
    return;
  }
  if (worker_->wheel_.cancel(id)) {
    live_timers_.fetch_sub(1, std::memory_order_acq_rel);
    worker_->publish_wheel_size();
  }
}

// ------------------------------------------------- host, legacy executor

void ThreadHost::legacy_post_at(TimeUs when, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(legacy_->mu);
    if (legacy_->stopping) return;
    legacy_->queue.push(
        Work{when, legacy_->next_seq++, kInvalidTimer, std::move(fn)});
  }
  legacy_->cv.notify_one();
}

TimerId ThreadHost::legacy_set_timer(DurUs delay, std::function<void()> fn) {
  TimerId id;
  {
    std::lock_guard<std::mutex> lock(legacy_->mu);
    if (legacy_->stopping || crashed()) return kInvalidTimer;
    id = legacy_->next_timer++;
    legacy_->pending.insert(id);
    legacy_->queue.push(
        Work{now() + delay, legacy_->next_seq++, id, std::move(fn)});
  }
  live_timers_.fetch_add(1, std::memory_order_acq_rel);
  legacy_->cv.notify_one();
  return id;
}

void ThreadHost::legacy_cancel_timer(TimerId id) {
  if (id == kInvalidTimer) return;
  bool was_pending = false;
  {
    std::lock_guard<std::mutex> lock(legacy_->mu);
    // Tombstone only timers that are still pending: cancelling an
    // already-fired id used to insert a tombstone nothing would ever
    // consume, growing `cancelled` without bound in long runs.
    auto it = legacy_->pending.find(id);
    if (it != legacy_->pending.end()) {
      legacy_->pending.erase(it);
      legacy_->cancelled.insert(id);
      was_pending = true;
    }
  }
  if (was_pending) live_timers_.fetch_sub(1, std::memory_order_acq_rel);
}

void ThreadHost::start_thread() {
  legacy_->thread = std::thread([this]() { legacy_run_loop(); });
}

void ThreadHost::stop_thread() {
  {
    std::lock_guard<std::mutex> lock(legacy_->mu);
    legacy_->stopping = true;
  }
  legacy_->cv.notify_one();
  if (legacy_->thread.joinable()) legacy_->thread.join();
}

void ThreadHost::legacy_run_loop() {
  std::unique_lock<std::mutex> lock(legacy_->mu);
  for (;;) {
    if (legacy_->stopping) return;
    if (legacy_->queue.empty()) {
      legacy_->cv.wait(lock);
      continue;
    }
    const TimeUs due = legacy_->queue.top().when;
    const TimeUs current = sys_.now();
    if (due > current) {
      legacy_->cv.wait_for(lock, std::chrono::microseconds(due - current));
      continue;
    }
    // priority_queue::top() is const; moving out is safe because pop()
    // removes exactly that element — this avoids copying the closure.
    Work w = std::move(const_cast<Work&>(legacy_->queue.top()));
    legacy_->queue.pop();
    if (w.timer != kInvalidTimer) {
      auto it = legacy_->cancelled.find(w.timer);
      if (it != legacy_->cancelled.end()) {
        legacy_->cancelled.erase(it);
        continue;
      }
      legacy_->pending.erase(w.timer);
      live_timers_.fetch_sub(1, std::memory_order_acq_rel);
    }
    if (crashed()) continue;  // a crashed process executes nothing
    lock.unlock();
    w.fn();
    lock.lock();
  }
}

// --------------------------------------------------------------- worker

Worker::Worker(ThreadSystem& sys, int index, std::uint64_t seed,
               TimeUs now_us)
    : sys_(sys), index_(index), rng_(seed), wheel_(now_us) {}

void Worker::start() {
  thread_ = std::thread([this]() { run(); });
}

void Worker::request_stop() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(m_);
    notified_ = true;
  }
  cv_.notify_one();
}

void Worker::join() {
  if (thread_.joinable()) thread_.join();
}

void Worker::run() {
  t_worker = this;
  while (!stop_.load(std::memory_order_acquire)) {
    bool did_work = false;
    for (ThreadHost* h : hosts_) did_work |= drain_host(h);
    wheel_.advance(sys_.now(), [this](std::uint32_t host, TimerWheel::Kind kind,
                                      sim::InplaceAction& fn) {
      run_entry(host, kind, fn);
    });
    publish_wheel_size();
    if (did_work) continue;

    // Sleep protocol (Dekker-style): publish how long we intend to sleep,
    // THEN re-check every mailbox flag. A producer pushes, sets the flag
    // (seq_cst) and only then reads wake_deadline_; whichever side loses
    // the seq_cst race still observes the other's store, so a push can
    // never slip past a worker that decided to sleep.
    const TimeUs due = wheel_.next_due();
    wake_deadline_.store(due, std::memory_order_seq_cst);
    bool pending = false;
    for (ThreadHost* h : hosts_) {
      if (h->mailbox_.nonempty()) {
        pending = true;
        break;
      }
    }
    if (pending || stop_.load(std::memory_order_acquire)) {
      wake_deadline_.store(kAwake, std::memory_order_seq_cst);
      continue;
    }
    {
      std::unique_lock<std::mutex> lock(m_);
      if (!notified_) {
        if (due == kTimeNever) {
          cv_.wait(lock, [this]() { return notified_; });
        } else {
          cv_.wait_until(lock, sys_.to_clock(due),
                         [this]() { return notified_; });
        }
      }
      notified_ = false;
    }
    wake_deadline_.store(kAwake, std::memory_order_seq_cst);
  }
  t_worker = nullptr;
}

bool Worker::drain_host(ThreadHost* h) {
  batch_.clear();
  if (!h->mailbox_.drain(batch_)) return false;
  const TimeUs now_us = sys_.now();
  for (WorkItem& item : batch_) {
    if (item.when <= now_us) {
      // Due already: run in place straight out of the drained batch — no
      // copy, no detour through the wheel.
      if (!h->crashed()) item.fn();
    } else {
      wheel_.schedule(item.when, static_cast<std::uint32_t>(h->self()),
                      TimerWheel::Kind::kPost, std::move(item.fn));
    }
  }
  batch_.clear();
  return true;
}

void Worker::run_entry(std::uint32_t host, TimerWheel::Kind kind,
                       sim::InplaceAction& fn) {
  ThreadHost* h = sys_.hosts_[host].get();
  if (kind == TimerWheel::Kind::kTimer) {
    h->live_timers_.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (h->crashed()) return;
  fn();
}

void Worker::notify(TimeUs when) {
  if (t_worker == this) return;  // self-push: the running loop will see it
  const TimeUs deadline = wake_deadline_.load(std::memory_order_seq_cst);
  if (deadline == kAwake || when >= deadline) return;
  {
    std::lock_guard<std::mutex> lock(m_);
    notified_ = true;
  }
  cv_.notify_one();
}

// --------------------------------------------------------------- system

ThreadSystem::ThreadSystem(Config cfg)
    : cfg_(cfg),
      epoch_(std::chrono::steady_clock::now()),
      ext_rng_(cfg.seed ^ 0x5bd1e995) {
  assert(cfg_.n > 0);
  Rng seeder(cfg_.seed);
  hosts_.reserve(static_cast<std::size_t>(cfg_.n));
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    hosts_.push_back(
        std::make_unique<ThreadHost>(*this, p, cfg_.n, seeder.next()));
  }
  if (cfg_.trace_depth > 0) {
    recorder_owned_ = std::make_unique<obs::Recorder>(
        static_cast<std::size_t>(cfg_.trace_depth));
    recorder_ = recorder_owned_.get();
    bind_recorder_rings();
  }
  if (cfg_.legacy_thread_per_process) {
    for (auto& h : hosts_) {
      h->legacy_ = std::make_unique<ThreadHost::LegacyState>();
    }
    return;
  }
  int m = cfg_.workers > 0
              ? cfg_.workers
              : static_cast<int>(std::thread::hardware_concurrency());
  if (m < 1) m = 1;
  if (m > cfg_.n) m = cfg_.n;
  const TimeUs t0 = now();
  workers_.reserve(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    workers_.push_back(std::make_unique<Worker>(*this, i, seeder.next(), t0));
  }
  const int block = cfg_.shard_block > 1 ? cfg_.shard_block : 1;
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    Worker* w = workers_[static_cast<std::size_t>((p / block) % m)].get();
    hosts_[static_cast<std::size_t>(p)]->worker_ = w;
    w->hosts_.push_back(hosts_[static_cast<std::size_t>(p)].get());
  }
}

ThreadSystem::~ThreadSystem() {
  stopping_.store(true, std::memory_order_seq_cst);
  if (cfg_.legacy_thread_per_process) {
    for (auto& h : hosts_) h->stop_thread();
    return;
  }
  for (auto& w : workers_) w->request_stop();
  for (auto& w : workers_) w->join();
}

TimeUs ThreadSystem::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void ThreadSystem::attach_recorder(obs::Recorder* rec) {
  assert(!started() && "attach_recorder before start()");
  recorder_ = rec != nullptr ? rec : recorder_owned_.get();
  if (rec == nullptr) {
    for (auto& h : hosts_) h->bind_obs(nullptr, -1);
    if (recorder_ != nullptr) bind_recorder_rings();
    return;
  }
  bind_recorder_rings();
}

void ThreadSystem::bind_recorder_rings() {
  obs::Recorder* rec = recorder_;
  rec->meta().source = "runtime";
  rec->meta().clock = obs::ClockDomain::kMonotonic;
  // All hosts share epoch_, so one wall calibration covers the system:
  // wall time of ThreadSystem t=0.
  rec->meta().wall_epoch_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count() -
      now();
  rec->bind_hosts(cfg_.n);
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    hosts_[static_cast<std::size_t>(p)]->bind_obs(rec, p);
  }
}

void ThreadSystem::start() {
  assert(!started());
  if (cfg_.legacy_thread_per_process) {
    started_.store(true, std::memory_order_release);
    for (auto& h : hosts_) h->start_thread();
    for (auto& h : hosts_) {
      ThreadHost* host = h.get();
      host->post([host]() {
        for (auto& proto : host->owned_) proto->start();
      });
    }
    return;
  }
  // Queue each host's protocol starts before the workers exist, so the
  // very first thing every worker does is run start() for its shard.
  const TimeUs t0 = now();
  for (auto& h : hosts_) {
    ThreadHost* host = h.get();
    host->mailbox_.push(WorkItem{t0, sim::InplaceAction([host]() {
                                   for (auto& proto : host->owned_) {
                                     proto->start();
                                   }
                                 })});
  }
  started_.store(true, std::memory_order_release);
  for (auto& w : workers_) w->start();
}

void ThreadSystem::route(Message m) {
  routed_.fetch_add(1, std::memory_order_relaxed);
  DurUs delay;
  Worker* w = t_worker;
  bool lost = false;
  if (w != nullptr && &w->sys_ == this) {
    // Worker thread of this system: its private stream, no lock at all.
    lost = w->rng_.chance(cfg_.loss_p);
    if (!lost) delay = w->rng_.range(cfg_.min_delay, cfg_.max_delay);
  } else {
    // Foreign threads (tests, monitors) and every legacy host thread share
    // one locked stream — in legacy mode this lock on the whole fabric is
    // the old design, preserved for comparison.
    std::lock_guard<std::mutex> lock(ext_rng_mu_);
    lost = ext_rng_.chance(cfg_.loss_p);
    if (!lost) delay = ext_rng_.range(cfg_.min_delay, cfg_.max_delay);
  }
  if (lost) {
    if (m.src >= 0 && m.src < cfg_.n) {
      hosts_[static_cast<std::size_t>(m.src)]->record(EventType::kDrop, m.dst,
                                                      m.protocol);
    }
    return;
  }
  ThreadHost& dst = *hosts_[static_cast<std::size_t>(m.dst)];
  if (dst.crashed()) return;
  const TimeUs when = now() + delay;
  ThreadHost* hp = &dst;
  if (cfg_.legacy_thread_per_process) {
    dst.legacy_post_at(when, [hp, m = std::move(m)]() {
      if (!hp->crashed()) hp->dispatch(m);
    });
    return;
  }
  dst.enqueue(when, sim::InplaceAction(
                        [hp, m = std::move(m)]() { hp->dispatch(m); }));
}

std::int64_t ThreadSystem::wheel_entries() const {
  std::int64_t total = 0;
  for (const auto& w : workers_) total += w->wheel_entries();
  return total;
}

}  // namespace ecfd::runtime
