#pragma once

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "sim/inplace_action.hpp"
#include "sim/time.hpp"

/// \file mailbox.hpp
/// The cross-shard handoff primitive of the sharded threaded runtime.
///
/// Every virtual host owns one Mailbox. Any thread may push (other workers
/// routing messages, the test thread posting closures, the property monitor
/// sampling); only the host's owning worker drains. Pushes take a per-host
/// spinlock for a few instructions (one vector push_back of a move-only
/// item), and the drain swaps the whole backlog out in O(1), so neither
/// side ever holds the lock across user code. Both buffers keep their
/// capacity across swaps, so the steady state performs zero heap
/// allocations — the same discipline as the simulator's event queue.

namespace ecfd::runtime {

/// One unit of deferred execution bound for a specific host: run `fn` on
/// the host's owning worker at (or after) absolute time `when`.
struct WorkItem {
  TimeUs when{0};
  sim::InplaceAction fn{};
};

/// Minimal test-and-set spinlock. Critical sections in this runtime are a
/// handful of instructions (vector push/swap, trace-ring writes), so
/// spinning beats a futex round-trip; the yield bounds pathological
/// preemption on oversubscribed machines.
class SpinLock {
 public:
  void lock() {
    int spins = 0;
    while (flag_.test_and_set(std::memory_order_acquire)) {
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// MPSC mailbox: many producers push, the owning worker drains by swap.
///
/// The `nonempty` flag is the producer/consumer rendezvous the worker's
/// sleep protocol relies on (see Worker::run): producers set it with
/// seq_cst AFTER appending, workers read it with seq_cst after publishing
/// their wake deadline, so a push can never be missed by a worker that
/// decided to sleep (Dekker-style store/load ordering).
class Mailbox {
 public:
  void push(WorkItem item) {
    lock_.lock();
    in_.push_back(std::move(item));
    lock_.unlock();
    nonempty_.store(true, std::memory_order_seq_cst);
  }

  /// Swaps the backlog into \p out (must be empty). Returns true when any
  /// item was handed over. The consumer keeps reusing the same vector, so
  /// capacities ping-pong between the two buffers and stabilise.
  bool drain(std::vector<WorkItem>& out) {
    if (!nonempty_.load(std::memory_order_seq_cst)) return false;
    nonempty_.store(false, std::memory_order_seq_cst);
    lock_.lock();
    in_.swap(out);
    lock_.unlock();
    return !out.empty();
  }

  /// Producer-visible emptiness hint; pairs with the worker sleep protocol.
  [[nodiscard]] bool nonempty() const {
    return nonempty_.load(std::memory_order_seq_cst);
  }

 private:
  SpinLock lock_;
  std::atomic<bool> nonempty_{false};
  std::vector<WorkItem> in_;
};

}  // namespace ecfd::runtime
