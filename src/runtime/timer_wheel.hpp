#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inplace_action.hpp"
#include "sim/time.hpp"

/// \file timer_wheel.hpp
/// Hierarchical timing wheel with O(1) schedule and O(1) true cancellation.
///
/// Each worker of the sharded threaded runtime owns one wheel holding every
/// deferred action of its hosts: protocol timers and delayed message
/// deliveries alike. The design replaces the old runtime's
/// priority_queue + cancelled-tombstone-set pair, which (a) cost O(log n)
/// per operation under contention and (b) leaked a set entry whenever an
/// already-fired timer was cancelled.
///
/// Structure: kLevels levels of kSlots slots each, 64 us per level-0 tick
/// (a level-0 lap is ~4 ms, the whole wheel spans ~18 minutes; deadlines
/// beyond the horizon park in the top level and re-cascade). Entries live
/// in a chunked slab — the same recipe as sim::EventQueue — with intrusive
/// doubly-linked slot lists, a free list, and generation-tagged handles,
/// so schedule/cancel/fire are allocation-free once the slab has grown to
/// the working-set size and a stale handle can never touch a recycled
/// slot. Cancellation unlinks the entry immediately: there is no tombstone
/// to leak and nothing to skip at fire time.
///
/// Firing rounds deadlines UP to the next tick boundary, so an action
/// never runs early; the worst lateness from bucketing is one tick (64 us)
/// plus however long the worker was busy.
///
/// Thread model: a wheel belongs to exactly one worker thread. All
/// cross-thread traffic goes through the hosts' mailboxes and reaches the
/// wheel only on the owning thread, so the wheel itself needs no locks.

namespace ecfd::runtime {

/// Generation-tagged handle of a scheduled entry; 0 is never returned.
using WheelHandle = std::uint64_t;

inline constexpr WheelHandle kInvalidWheelHandle = 0;

class TimerWheel {
 public:
  static constexpr int kTickShift = 6;  ///< 1 tick = 64 us
  static constexpr DurUs kTickUs = DurUs{1} << kTickShift;
  static constexpr int kLevelBits = 6;  ///< 64 slots per level
  static constexpr std::size_t kSlots = std::size_t{1} << kLevelBits;
  static constexpr int kLevels = 4;     ///< horizon 64us * 64^4 ≈ 17.9 min

  /// What the entry's action means to the executor: a plain deferred
  /// closure (message delivery, post_at) or a protocol timer, which the
  /// worker must also account against the host's live-timer counter.
  enum class Kind : std::uint8_t { kPost = 0, kTimer = 1 };

  explicit TimerWheel(TimeUs now_us);

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Schedules \p fn for host \p host at absolute time \p when_us (clamped
  /// to strictly-future; past deadlines fire on the next tick).
  WheelHandle schedule(TimeUs when_us, std::uint32_t host, Kind kind,
                       sim::InplaceAction fn);

  /// Cancels a pending entry, destroying its action immediately. Returns
  /// false for stale/fired/unknown handles — and never leaks bookkeeping
  /// for them (the regression the old runtime's cancelled_ set had).
  bool cancel(WheelHandle h);

  /// Advances wheel time to \p now_us, invoking
  /// `sink(host, kind, action)` for every entry that came due, in tick
  /// order. The sink may schedule and cancel freely (re-arming timers,
  /// sending messages); slots never move under it.
  template <class Sink>
  void advance(TimeUs now_us, Sink&& sink) {
    const std::uint64_t target = tick_floor(now_us);
    while (base_ < target) {
      if (live_ == 0) {
        base_ = target;
        return;
      }
      ++base_;
      const std::size_t idx0 = base_ & (kSlots - 1);
      if (idx0 == 0) cascade(1);
      if (bitmap_[0] & (std::uint64_t{1} << idx0)) expire(idx0, sink);
    }
  }

  /// Earliest wall-clock time (us) at which advance() could have work to
  /// do: exact for level-0 entries, a conservative cascade boundary for
  /// higher levels. kTimeNever when empty. Sleeping until this instant is
  /// always safe (never fires anything late beyond tick rounding).
  [[nodiscard]] TimeUs next_due() const;

  /// Live (scheduled, not yet fired or cancelled) entries.
  [[nodiscard]] std::size_t size() const { return live_; }

 private:
  static constexpr std::int32_t kNil = -1;       ///< list end
  static constexpr std::int32_t kFree = -2;      ///< on the free list
  static constexpr std::int32_t kDetached = -3;  ///< mid-fire, off any list

  struct Entry {
    std::uint64_t deadline{0};  ///< absolute tick
    std::uint32_t gen{1};
    std::uint32_t host{0};
    std::int32_t prev{kNil};
    std::int32_t next{kNil};
    std::int32_t list{kFree};  ///< slot id (level*kSlots+slot) or a k* state
    Kind kind{Kind::kPost};
    sim::InplaceAction fn{};
  };

  /// Chunked slab: entries never move, so actions can run in place and the
  /// slab can grow while a fire is in progress.
  class Slab {
   public:
    static constexpr std::size_t kChunkShift = 9;  // 512 entries / chunk
    static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
    static constexpr std::size_t kChunkMask = kChunkSize - 1;

    Entry& operator[](std::size_t i) {
      return chunks_[i >> kChunkShift][i & kChunkMask];
    }
    const Entry& operator[](std::size_t i) const {
      return chunks_[i >> kChunkShift][i & kChunkMask];
    }
    [[nodiscard]] std::size_t size() const { return size_; }

    std::size_t grow() {
      if (size_ == chunks_.size() * kChunkSize) {
        chunks_.push_back(std::make_unique<Entry[]>(kChunkSize));
      }
      return size_++;
    }

   private:
    std::vector<std::unique_ptr<Entry[]>> chunks_;
    std::size_t size_{0};
  };

  static std::uint64_t tick_floor(TimeUs us) {
    return static_cast<std::uint64_t>(us) >> kTickShift;
  }
  static std::uint64_t tick_ceil(TimeUs us) {
    return (static_cast<std::uint64_t>(us) + (kTickUs - 1)) >> kTickShift;
  }
  static TimeUs tick_to_us(std::uint64_t tick) {
    return static_cast<TimeUs>(tick << kTickShift);
  }
  static WheelHandle encode(std::int32_t index, std::uint32_t gen) {
    // Bit 63 stays clear (gen is truncated to 31 bits) so callers can use
    // the high bit of a TimerId for their own out-of-band namespaces.
    return (static_cast<WheelHandle>(gen & 0x7fffffffu) << 32) |
           (static_cast<WheelHandle>(index) + 1);
  }

  /// Links entry \p e into the slot its deadline maps to relative to
  /// base_. Deadlines beyond the horizon park in the top level.
  void link(std::int32_t e);
  void unlink(std::int32_t e);
  void release(std::int32_t e);

  /// Re-distributes the level-\p level slot that base_ just reached into
  /// lower levels (recursing upward at each level's own wrap point).
  void cascade(int level);

  template <class Sink>
  void expire(std::size_t slot, Sink&& sink) {
    // Detach the whole chain first so cancel() from inside an action sees
    // kDetached and neuters (rather than unlinks) chain members.
    std::int32_t e = heads_[slot];
    heads_[slot] = kNil;
    bitmap_[0] &= ~(std::uint64_t{1} << slot);
    for (std::int32_t i = e; i != kNil; i = slab_[i].next) {
      slab_[i].list = kDetached;
    }
    while (e != kNil) {
      Entry& entry = slab_[e];
      const std::int32_t next = entry.next;
      if (entry.fn) {
        // Move the action out before running it: a self-cancel from inside
        // the action then sees an empty slot (and returns false) instead of
        // destroying the very callable that is executing.
        sim::InplaceAction fn = std::move(entry.fn);
        sink(entry.host, entry.kind, fn);
      }
      release(e);  // bumps the generation, staling outstanding handles
      e = next;
    }
  }

  Slab slab_;
  std::vector<std::int32_t> free_;
  std::int32_t heads_[kLevels * kSlots];
  std::uint64_t bitmap_[kLevels];
  std::uint64_t base_;  ///< last fully-processed tick
  std::size_t live_{0};
};

}  // namespace ecfd::runtime
