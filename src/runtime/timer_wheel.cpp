#include "runtime/timer_wheel.hpp"

#include <bit>
#include <cassert>

namespace ecfd::runtime {

namespace {

/// Index of the lowest set bit; bm must be nonzero.
inline int lowest_bit(std::uint64_t bm) { return std::countr_zero(bm); }

}  // namespace

TimerWheel::TimerWheel(TimeUs now_us) : base_(tick_floor(now_us)) {
  for (auto& h : heads_) h = kNil;
  for (auto& b : bitmap_) b = 0;
}

void TimerWheel::link(std::int32_t e) {
  Entry& entry = slab_[e];
  const std::uint64_t d = entry.deadline;
  assert(d > base_ && "link requires a strictly-future deadline");
  const std::uint64_t delta = d - base_;
  int level = 0;
  std::uint64_t slot_key = d;
  for (; level < kLevels - 1; ++level) {
    if (delta < (std::uint64_t{1} << ((level + 1) * kLevelBits))) break;
  }
  if (level == kLevels - 1 &&
      delta >= (std::uint64_t{1} << (kLevels * kLevelBits))) {
    // Beyond the horizon: park at the farthest top-level slot; the entry
    // keeps its true deadline and re-cascades until it fits.
    slot_key = base_ + (std::uint64_t{1} << (kLevels * kLevelBits)) - 1;
  }
  const std::size_t slot =
      (slot_key >> (level * kLevelBits)) & (kSlots - 1);
  const std::size_t list = static_cast<std::size_t>(level) * kSlots + slot;
  entry.list = static_cast<std::int32_t>(list);
  entry.prev = kNil;
  entry.next = heads_[list];
  if (entry.next != kNil) slab_[entry.next].prev = e;
  heads_[list] = e;
  bitmap_[level] |= std::uint64_t{1} << slot;
}

void TimerWheel::unlink(std::int32_t e) {
  Entry& entry = slab_[e];
  assert(entry.list >= 0);
  const std::size_t list = static_cast<std::size_t>(entry.list);
  if (entry.prev != kNil) {
    slab_[entry.prev].next = entry.next;
  } else {
    heads_[list] = entry.next;
  }
  if (entry.next != kNil) slab_[entry.next].prev = entry.prev;
  if (heads_[list] == kNil) {
    bitmap_[list >> kLevelBits] &= ~(std::uint64_t{1} << (list & (kSlots - 1)));
  }
  entry.prev = entry.next = kNil;
  entry.list = kDetached;
}

void TimerWheel::release(std::int32_t e) {
  Entry& entry = slab_[e];
  entry.fn.reset();
  entry.gen = (entry.gen + 1) & 0x7fffffffu;
  if (entry.gen == 0) entry.gen = 1;  // keep handles nonzero
  entry.list = kFree;
  free_.push_back(e);
  assert(live_ > 0);
  --live_;
}

WheelHandle TimerWheel::schedule(TimeUs when_us, std::uint32_t host,
                                 Kind kind, sim::InplaceAction fn) {
  std::int32_t e;
  if (!free_.empty()) {
    e = free_.back();
    free_.pop_back();
  } else {
    e = static_cast<std::int32_t>(slab_.grow());
  }
  Entry& entry = slab_[e];
  std::uint64_t d = tick_ceil(when_us);
  if (d <= base_) d = base_ + 1;  // past/now: next tick, never "immediately"
  entry.deadline = d;
  entry.host = host;
  entry.kind = kind;
  entry.fn = std::move(fn);
  link(e);
  ++live_;
  return encode(e, entry.gen);
}

bool TimerWheel::cancel(WheelHandle h) {
  if (h == kInvalidWheelHandle) return false;
  const std::uint64_t raw = (h & 0xffffffffu);
  if (raw == 0) return false;
  const std::size_t index = static_cast<std::size_t>(raw - 1);
  if (index >= slab_.size()) return false;
  Entry& entry = slab_[index];
  if (entry.gen != static_cast<std::uint32_t>(h >> 32)) return false;
  if (entry.list == kFree) return false;
  if (entry.list == kDetached) {
    // Due this very tick and sitting in the fire chain: neuter it. The
    // expire loop releases the slot (and the live count) when it gets
    // there; the action provably never runs. An empty fn means the entry
    // is the one currently executing (expire moved the action out) or was
    // already cancelled — report "too late" so callers don't double-count.
    const bool pending = static_cast<bool>(entry.fn);
    entry.fn.reset();
    return pending;
  }
  unlink(static_cast<std::int32_t>(index));
  release(static_cast<std::int32_t>(index));
  return true;
}

void TimerWheel::cascade(int level) {
  if (level >= kLevels) return;
  const std::size_t slot = (base_ >> (level * kLevelBits)) & (kSlots - 1);
  if (slot == 0) cascade(level + 1);
  const std::size_t list = static_cast<std::size_t>(level) * kSlots + slot;
  std::int32_t e = heads_[list];
  heads_[list] = kNil;
  bitmap_[level] &= ~(std::uint64_t{1} << slot);
  while (e != kNil) {
    const std::int32_t next = slab_[e].next;
    // Entries due exactly at base_ land in level 0 at base_'s own slot,
    // which advance() expires right after this cascade returns.
    if (slab_[e].deadline <= base_) {
      Entry& entry = slab_[e];
      entry.deadline = base_;
      const std::size_t s0 = base_ & (kSlots - 1);
      const std::size_t l0 = s0;
      entry.list = static_cast<std::int32_t>(l0);
      entry.prev = kNil;
      entry.next = heads_[l0];
      if (entry.next != kNil) slab_[entry.next].prev = e;
      heads_[l0] = e;
      bitmap_[0] |= std::uint64_t{1} << s0;
    } else {
      link(e);
    }
    e = next;
  }
}

TimeUs TimerWheel::next_due() const {
  if (live_ == 0) return kTimeNever;
  TimeUs best = kTimeNever;
  // Level 0 is exact: slot s holds deadline tick (base_ & ~63) | s, in this
  // 64-tick window when s > base_'s index, in the next window otherwise.
  const std::size_t idx0 = base_ & (kSlots - 1);
  if (bitmap_[0] != 0) {
    const std::uint64_t above =
        idx0 == kSlots - 1 ? 0
                           : bitmap_[0] & ~((std::uint64_t{2} << idx0) - 1);
    std::uint64_t tick;
    if (above != 0) {
      tick = (base_ & ~(kSlots - 1)) | static_cast<std::uint64_t>(lowest_bit(above));
    } else {
      tick = (base_ & ~(kSlots - 1)) + kSlots +
             static_cast<std::uint64_t>(lowest_bit(bitmap_[0]));
    }
    best = tick_to_us(tick);
  }
  // Higher levels are conservative: an entry in level L's slot s cannot
  // fire before the cascade that redistributes that slot, so the next
  // relevant cascade instant is a safe wake-up bound.
  for (int level = 1; level < kLevels; ++level) {
    if (bitmap_[level] == 0) continue;
    const int shift = level * kLevelBits;
    const std::uint64_t cur = base_ >> shift;  // this level's window index
    const std::size_t idx = cur & (kSlots - 1);
    const std::uint64_t above =
        idx == kSlots - 1 ? 0
                          : bitmap_[level] & ~((std::uint64_t{2} << idx) - 1);
    std::uint64_t window;
    if (above != 0) {
      window = (cur & ~(kSlots - 1)) | static_cast<std::uint64_t>(lowest_bit(above));
    } else {
      window = (cur & ~(kSlots - 1)) + kSlots +
               static_cast<std::uint64_t>(lowest_bit(bitmap_[level]));
    }
    const TimeUs t = tick_to_us(window << shift);
    if (t < best) best = t;
  }
  return best;
}

}  // namespace ecfd::runtime
