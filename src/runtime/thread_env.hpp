#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/env.hpp"

/// \file thread_env.hpp
/// The non-simulated runtime: every process is a real std::thread with its
/// own executor, timers run on the wall clock, and message passing goes
/// through in-process queues with injected delay and loss. Protocols are
/// written against Env, so the exact same classes that run under the
/// deterministic simulator run here — this is the library's answer to
/// deploying the paper's algorithms on a real asynchronous substrate.
///
/// Unlike the simulator, execution is nondeterministic; tests against this
/// runtime assert eventual properties with generous deadlines.

namespace ecfd::runtime {

class ThreadSystem;

/// One process: a thread draining a deadline-ordered work queue.
class ThreadHost final : public Env {
 public:
  ThreadHost(ThreadSystem& sys, ProcessId id, int n, std::uint64_t seed);
  ~ThreadHost() override;

  ThreadHost(const ThreadHost&) = delete;
  ThreadHost& operator=(const ThreadHost&) = delete;

  /// Registers a protocol (must happen before ThreadSystem::start()).
  void add_protocol(std::unique_ptr<Protocol> proto);

  template <class P, class... Args>
  P& emplace(Args&&... args) {
    auto owned = std::make_unique<P>(*this, std::forward<Args>(args)...);
    P& ref = *owned;
    add_protocol(std::move(owned));
    return ref;
  }

  /// Runs \p fn on this process's thread as soon as possible.
  void post(std::function<void()> fn) { post_at(now(), std::move(fn)); }

  /// Runs \p fn on this process's thread at absolute time \p when (us).
  void post_at(TimeUs when, std::function<void()> fn);

  /// Crash-stop: silences the process (thread keeps draining nothing).
  void crash();
  [[nodiscard]] bool crashed() const;

  // --- Env ------------------------------------------------------------
  [[nodiscard]] TimeUs now() const override;
  void send(ProcessId dst, Message m) override;
  TimerId set_timer(DurUs delay, std::function<void()> fn) override;
  void cancel_timer(TimerId id) override;
  [[nodiscard]] ProcessId self() const override { return id_; }
  [[nodiscard]] int n() const override { return n_; }
  Rng& rng() override { return rng_; }
  void trace(const std::string& tag, const std::string& detail) override;

 private:
  friend class ThreadSystem;

  struct Work {
    TimeUs when{};
    std::uint64_t seq{};
    TimerId timer{kInvalidTimer};
    std::function<void()> fn;
  };
  struct WorkLater {
    bool operator()(const Work& a, const Work& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void run_loop();
  void start_thread();
  void stop_thread();
  void deliver(const Message& m);

  ThreadSystem& sys_;
  ProcessId id_;
  int n_;
  Rng rng_;  // only touched from this host's thread (and pre-start setup)

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Work, std::vector<Work>, WorkLater> queue_;
  std::unordered_set<TimerId> cancelled_;
  std::uint64_t next_seq_{1};
  TimerId next_timer_{1};
  bool stopping_{false};
  bool crashed_{false};

  std::vector<std::unique_ptr<Protocol>> owned_;
  std::unordered_map<ProtocolId, Protocol*> by_id_;
  std::thread thread_;
};

/// The whole threaded system: n hosts plus the message fabric.
class ThreadSystem {
 public:
  struct Config {
    int n{3};
    std::uint64_t seed{1};
    DurUs min_delay{usec(200)};
    DurUs max_delay{msec(5)};
    double loss_p{0.0};
  };

  explicit ThreadSystem(Config cfg);
  ~ThreadSystem();

  ThreadSystem(const ThreadSystem&) = delete;
  ThreadSystem& operator=(const ThreadSystem&) = delete;

  [[nodiscard]] int n() const { return cfg_.n; }
  ThreadHost& host(ProcessId p) { return *hosts_[static_cast<std::size_t>(p)]; }

  /// Starts all threads and protocol stacks.
  void start();

  /// Wall-clock microseconds since construction.
  [[nodiscard]] TimeUs now() const;

  /// Routes a message (delay/loss applied); called by hosts.
  void route(const Message& m);

 private:
  Config cfg_;
  std::chrono::steady_clock::time_point epoch_;
  std::mutex route_mu_;  // guards route_rng_
  Rng route_rng_;
  std::vector<std::unique_ptr<ThreadHost>> hosts_;
  bool started_{false};
};

}  // namespace ecfd::runtime
