#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/env.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/timer_wheel.hpp"

/// \file thread_env.hpp
/// The non-simulated runtime: virtual hosts with wall-clock timers and
/// in-process message passing with injected delay and loss. Protocols are
/// written against Env, so the exact same classes that run under the
/// deterministic simulator run here — this is the library's answer to
/// deploying the paper's algorithms on a real asynchronous substrate.
///
/// Since the sharded-executor rewrite, a host is NOT an OS thread: M worker
/// threads (default hardware_concurrency) each own a shard of the n hosts,
/// so n is bounded by memory, not by the OS — the regimes where the paper's
/// 2(n-1) periodic-message claim becomes interesting (n ≥ 1024) actually
/// run. Each host has an MPSC mailbox for cross-shard sends, each worker a
/// hierarchical timer wheel (O(1) schedule/cancel, no tombstones) and its
/// own RNG stream for delay/loss injection (no global routing lock), and
/// every deferred action is a sim::InplaceAction, so the steady-state
/// heartbeat path performs zero heap allocations. Config's
/// `legacy_thread_per_process` escape hatch keeps the pre-sharding
/// one-thread-per-host executor for one release (and as the bench_e9
/// baseline).
///
/// Unlike the simulator, execution is nondeterministic; tests against this
/// runtime assert eventual properties with generous deadlines.

namespace ecfd::runtime {

class ThreadSystem;
class Worker;

/// One rendered record of a host's recent observability history
/// (Config::trace_depth / an attached obs::Recorder). Env::trace text
/// round-trips through the recorder's interned strings; typed events
/// render as "obs.<type>" tags.
struct TraceRecord {
  TimeUs time{0};
  std::string tag;
  std::string detail;
};

/// One process: protocols plus an Env implementation. In the sharded
/// executor the host is a passive mailbox + timer bookkeeping owned by a
/// Worker; in legacy mode it owns a thread draining a deadline-ordered
/// work queue (the pre-sharding design).
class ThreadHost final : public Env {
 public:
  ThreadHost(ThreadSystem& sys, ProcessId id, int n, std::uint64_t seed);
  ~ThreadHost() override;

  ThreadHost(const ThreadHost&) = delete;
  ThreadHost& operator=(const ThreadHost&) = delete;

  /// Registers a protocol (must happen before ThreadSystem::start()).
  void add_protocol(std::unique_ptr<Protocol> proto);

  template <class P, class... Args>
  P& emplace(Args&&... args) {
    auto owned = std::make_unique<P>(*this, std::forward<Args>(args)...);
    P& ref = *owned;
    add_protocol(std::move(owned));
    return ref;
  }

  /// Runs \p fn on this process's executor as soon as possible.
  void post(std::function<void()> fn) { post_at(now(), std::move(fn)); }

  /// Runs \p fn on this process's executor at absolute time \p when (us).
  void post_at(TimeUs when, std::function<void()> fn);

  /// Crash-stop: silences the process (its pending work is skipped).
  void crash();
  [[nodiscard]] bool crashed() const {
    return crashed_.load(std::memory_order_acquire);
  }

  /// Gray failure: the host stays alive but slow. Timer delays stretch by
  /// factor_milli/1000 (1000 = healthy) and every send is held back by
  /// \p send_extra before entering the fabric. Safe from any thread;
  /// mirrors sim::ProcessHost::set_gray so the same scenario drives both
  /// runtimes.
  void set_gray(std::uint32_t factor_milli, DurUs send_extra);
  [[nodiscard]] bool gray() const {
    return gray_factor_milli_.load(std::memory_order_acquire) != 1000 ||
           gray_send_extra_.load(std::memory_order_acquire) != 0;
  }

  /// Bounded clock skew: now() reads offset + drift_ppm-scaled elapsed
  /// time ahead of (or behind) the fabric clock, clamped to ±bound_us
  /// (bound 0 = unclamped; only mutation tests use that). Timers fire
  /// early/late accordingly. Mirrors sim::ProcessHost::set_clock_skew.
  void set_clock_skew(std::int64_t offset_us, std::int32_t drift_ppm,
                      DurUs bound_us);
  void clear_clock_skew() { set_clock_skew(0, 0, 0); }

  /// Current now() − fabric-clock difference in microseconds.
  [[nodiscard]] std::int64_t clock_error() const;

  /// Timers armed and not yet fired or cancelled. After quiescence (all
  /// timers fired or cancelled) this returns exactly 0 — the regression
  /// guard for the old runtime's unbounded cancelled-set leak.
  [[nodiscard]] std::int64_t pending_timers() const {
    return live_timers_.load(std::memory_order_acquire);
  }

  /// Internal bookkeeping entries that outlive their timer (legacy
  /// tombstones, cross-thread timer indirections). Must also drop to 0
  /// after quiescence on a live host.
  [[nodiscard]] std::size_t bookkeeping_records() const;

  /// The last recorded state-transition events, oldest first, rendered to
  /// text (empty when no recorder is attached and Config::trace_depth is
  /// 0). Safe from any thread.
  [[nodiscard]] std::vector<TraceRecord> recent_trace() const;

  // --- Env ------------------------------------------------------------
  [[nodiscard]] TimeUs now() const override;
  void send(ProcessId dst, Message m) override;
  TimerId set_timer(DurUs delay, std::function<void()> fn) override;
  void cancel_timer(TimerId id) override;
  TimerId set_timer_impl(DurUs delay, std::function<void()> fn);
  [[nodiscard]] ProcessId self() const override { return id_; }
  [[nodiscard]] int n() const override { return n_; }
  Rng& rng() override { return rng_; }
  void trace(const std::string& tag, const std::string& detail) override;

 private:
  friend class ThreadSystem;
  friend class Worker;

  /// Cross-thread timer ids (set_timer called off the owning worker) live
  /// in a separate namespace so the hot owner-thread path needs no map at
  /// all: a plain wheel handle IS the TimerId.
  static constexpr TimerId kForeignTimerBit = TimerId{1} << 63;

  // --- sharded-executor internals (owner-thread unless noted) ---------
  [[nodiscard]] bool on_owner_thread() const;
  void enqueue(TimeUs when, sim::InplaceAction fn);  // any thread
  void dispatch(const Message& m);
  TimerId arm_on_owner(TimeUs when, std::function<void()> fn);
  void arm_foreign(TimerId fid, TimeUs when, std::function<void()> fn);
  void cancel_on_owner(TimerId id);

  // --- legacy (one-thread-per-host) internals -------------------------
  struct Work {
    TimeUs when{};
    std::uint64_t seq{};
    TimerId timer{kInvalidTimer};
    std::function<void()> fn;
  };
  struct WorkLater {
    bool operator()(const Work& a, const Work& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  struct LegacyState {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::priority_queue<Work, std::vector<Work>, WorkLater> queue;
    /// Timers armed and not yet fired/cancelled. cancel_timer only
    /// tombstones ids still in here, which fixes the old leak where
    /// cancelling an already-fired timer grew `cancelled` forever.
    std::unordered_set<TimerId> pending;
    std::unordered_set<TimerId> cancelled;
    std::uint64_t next_seq{1};
    TimerId next_timer{1};
    bool stopping{false};
    std::thread thread;
  };
  void legacy_post_at(TimeUs when, std::function<void()> fn);
  TimerId legacy_set_timer(DurUs delay, std::function<void()> fn);
  void legacy_cancel_timer(TimerId id);
  void legacy_run_loop();
  void start_thread();  // legacy only
  void stop_thread();   // legacy only

  ThreadSystem& sys_;
  ProcessId id_;
  int n_;
  Rng rng_;  // only touched from this host's execution context

  std::atomic<bool> crashed_{false};

  // Gray-failure state (any thread reads, injector writes).
  std::atomic<std::uint32_t> gray_factor_milli_{1000};
  std::atomic<std::int64_t> gray_send_extra_{0};

  // Clock-skew state. `skew_active_` gates the hot now() path; the fields
  // behind it only change under set_clock_skew (rare) and are read
  // relaxed — a torn read across an injector update momentarily blends
  // old and new skew, which is within the model (skew is adversarial).
  std::atomic<bool> skew_active_{false};
  std::atomic<std::int64_t> skew_offset_{0};
  std::atomic<std::int32_t> skew_drift_ppm_{0};
  std::atomic<std::int64_t> skew_bound_{0};
  std::atomic<TimeUs> skew_since_{0};

  // Sharded executor state.
  Worker* worker_{nullptr};
  Mailbox mailbox_;
  std::atomic<std::int64_t> live_timers_{0};
  std::unordered_map<TimerId, WheelHandle> foreign_timers_;  // owner thread
  std::atomic<std::size_t> foreign_records_{0};
  std::atomic<std::uint64_t> foreign_seq_{1};

  std::unique_ptr<LegacyState> legacy_;

  std::vector<std::unique_ptr<Protocol>> owned_;
  std::unordered_map<ProtocolId, Protocol*> by_id_;
};

/// One executor thread of the sharded runtime: owns a shard of the hosts,
/// their deferred work (timer wheel) and an RNG stream for routing.
class Worker {
 public:
  Worker(ThreadSystem& sys, int index, std::uint64_t seed, TimeUs now_us);

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Live wheel entries, as last published by the owning thread (for
  /// introspection/tests; exact once the system is quiescent).
  [[nodiscard]] std::int64_t wheel_entries() const {
    return wheel_size_.load(std::memory_order_acquire);
  }

 private:
  friend class ThreadHost;
  friend class ThreadSystem;

  static constexpr TimeUs kAwake = -1;

  void start();
  void request_stop();
  void join();
  void run();
  bool drain_host(ThreadHost* h);
  void run_entry(std::uint32_t host, TimerWheel::Kind kind,
                 sim::InplaceAction& fn);
  /// Producer-side wake: called after a mailbox push destined for this
  /// worker. Only touches the mutex when the worker may sleep past `when`.
  void notify(TimeUs when);
  void publish_wheel_size() {
    wheel_size_.store(static_cast<std::int64_t>(wheel_.size()),
                      std::memory_order_release);
  }

  ThreadSystem& sys_;
  int index_;
  Rng rng_;
  TimerWheel wheel_;
  std::vector<ThreadHost*> hosts_;
  std::vector<WorkItem> batch_;

  std::atomic<std::int64_t> wheel_size_{0};
  /// kAwake while running; while sleeping, the wall-clock instant the
  /// worker will wake at on its own. Producers must notify iff their
  /// item's due time is earlier (seq_cst pairs with Mailbox's flag).
  std::atomic<TimeUs> wake_deadline_{kAwake};
  std::mutex m_;
  std::condition_variable cv_;
  bool notified_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// The whole threaded system: n hosts, M workers, plus the message fabric.
class ThreadSystem {
 public:
  struct Config {
    int n{3};
    std::uint64_t seed{1};
    DurUs min_delay{usec(200)};
    DurUs max_delay{msec(5)};
    double loss_p{0.0};
    /// Sharded executor width: worker threads carrying the n hosts
    /// (0 = hardware_concurrency, clamped to [1, n]).
    int workers{0};
    /// Cell-aware placement: hosts are assigned to workers in contiguous
    /// blocks of this size — worker(p) = (p / shard_block) % M — so a
    /// hierarchical detector whose cells are contiguous id ranges (e.g.
    /// fd::HierC) keeps intra-cell traffic on one worker. 1 (default)
    /// preserves the classic round-robin p % M layout.
    int shard_block{1};
    /// Escape hatch: the pre-sharding one-OS-thread-per-process executor
    /// with a global routing lock. Kept for one release; also the
    /// baseline bench_e9_runtime_scale measures the sharded executor
    /// against.
    bool legacy_thread_per_process{false};
    /// Per-host event-ring depth (0 = tracing off). When on, the system
    /// owns an obs::Recorder keeping the last `trace_depth` events per
    /// host so monitor violation reports can show what the offending host
    /// last did. Ignored when an external recorder is attached.
    int trace_depth{0};
  };

  explicit ThreadSystem(Config cfg);
  ~ThreadSystem();

  ThreadSystem(const ThreadSystem&) = delete;
  ThreadSystem& operator=(const ThreadSystem&) = delete;

  [[nodiscard]] int n() const { return cfg_.n; }
  [[nodiscard]] int workers() const { return static_cast<int>(workers_.size()); }
  [[nodiscard]] bool legacy() const { return cfg_.legacy_thread_per_process; }
  ThreadHost& host(ProcessId p) { return *hosts_[static_cast<std::size_t>(p)]; }

  /// Starts all workers (or, legacy, all host threads) and protocol stacks.
  void start();
  [[nodiscard]] bool started() const {
    return started_.load(std::memory_order_acquire);
  }

  /// Wall-clock microseconds since construction.
  [[nodiscard]] TimeUs now() const;

  /// Routes a message (delay/loss applied); called by hosts. Uses the
  /// calling worker's own RNG stream — no global lock on the fabric.
  void route(Message m);

  /// Messages that entered the fabric (before loss), since construction.
  /// Relaxed counter: cheap on the send path, exact at quiescence — the
  /// scale benches read it to report per-node message rates.
  [[nodiscard]] std::uint64_t messages_routed() const {
    return routed_.load(std::memory_order_relaxed);
  }

  /// Sum of live timer-wheel entries across workers (0 in legacy mode),
  /// as last published by each worker; exact at quiescence.
  [[nodiscard]] std::int64_t wheel_entries() const;

  /// Attaches an external typed event recorder (tools that export traces).
  /// Must be called before start(); \p rec must outlive this system.
  /// Overrides the Config::trace_depth internal recorder.
  void attach_recorder(obs::Recorder* rec);

  /// The active recorder: external if attached, else the internal
  /// Config::trace_depth one, else nullptr.
  [[nodiscard]] obs::Recorder* recorder() const { return recorder_; }

 private:
  friend class ThreadHost;
  friend class Worker;

  [[nodiscard]] std::chrono::steady_clock::time_point to_clock(TimeUs t) const {
    return epoch_ + std::chrono::microseconds(t);
  }
  [[nodiscard]] bool stopping() const {
    return stopping_.load(std::memory_order_acquire);
  }

  void bind_recorder_rings();

  Config cfg_;
  std::chrono::steady_clock::time_point epoch_;
  /// Owned recorder (Config::trace_depth); declared before hosts_/workers_
  /// so rings outlive every thread that can still push into them.
  std::unique_ptr<obs::Recorder> recorder_owned_;
  obs::Recorder* recorder_{nullptr};
  /// Delay/loss draws for sends from threads that are not workers (tests,
  /// monitors, legacy host threads). In legacy mode this lock on every
  /// route IS the old design — and the contention bench_e9 measures.
  std::mutex ext_rng_mu_;
  Rng ext_rng_;
  std::vector<std::unique_ptr<ThreadHost>> hosts_;
  std::vector<std::unique_ptr<Worker>> workers_;  // after hosts_: dies first
  std::atomic<std::uint64_t> routed_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace ecfd::runtime
