#pragma once

#include <cstdint>
#include <vector>

#include "fd/oracle.hpp"
#include "net/env.hpp"
#include "net/protocol_ids.hpp"

/// \file stable_leader.hpp
/// Stable leader election, after Aguilera, Delporte-Gallet, Fauconnier,
/// Toueg (DISC 2001, the paper's reference [2], discussed in Sections 1.1
/// and 4): an Omega detector that is STABLE — once a leader is elected it
/// remains the leader for as long as it does not crash and its links
/// behave well, even if lower-id processes later recover credibility.
///
/// Mechanism (accusation counters):
///  * every process keeps a monotone counter per process — the number of
///    times that process has been accused of having crashed;
///  * the leader is the process minimizing (counter, id);
///  * the current leader broadcasts OK beats carrying the counter vector
///    (n−1 messages per period in the steady state);
///  * a process that times out on its current leader increments that
///    leader's counter, widens the timeout, and broadcasts the accusation
///    so that everyone converges on the same counters (max-merge).
///
/// A crashed leader silently accumulates accusations until it loses the
/// argmin; a falsely accused leader loses it at most finitely often,
/// because each mistake widens the accuser's timeout. Unlike the
/// lowest-id rule of fd/leader_candidate.hpp, leadership does NOT bounce
/// back to a lower-id process once it has moved on — that is the
/// stability property, measured by tests as the number of leader changes.

namespace ecfd::fd {

class StableLeader final : public Protocol, public LeaderOracle {
 public:
  struct Config {
    DurUs period{msec(10)};
    DurUs initial_timeout{msec(30)};
    DurUs timeout_increment{msec(10)};
  };

  explicit StableLeader(Env& env);
  StableLeader(Env& env, Config cfg);

  void start() override;
  void on_message(const Message& m) override;

  /// The process minimizing (accusations, id).
  [[nodiscard]] ProcessId trusted() const override;

  /// Accusation count known against q (exposed for tests).
  [[nodiscard]] std::uint64_t accusations(ProcessId q) const {
    return counters_[static_cast<std::size_t>(q)];
  }

  /// How many times this module's trusted() output changed (stability
  /// metric; sampled on the protocol's own period).
  [[nodiscard]] int leader_changes() const { return leader_changes_; }

 private:
  enum MsgType { kOk = 1, kAccuse = 2 };

  void tick();
  void merge(const std::vector<std::uint64_t>& remote);

  Config cfg_;
  std::vector<std::uint64_t> counters_;
  std::vector<TimeUs> last_heard_;
  std::vector<DurUs> timeout_;
  ProcessId observed_leader_{kNoProcess};
  int leader_changes_{-1};  ///< first observation is not a "change"
};

}  // namespace ecfd::fd
