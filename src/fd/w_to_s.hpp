#pragma once

#include "fd/oracle.hpp"
#include "net/env.hpp"
#include "net/protocol_ids.hpp"

/// \file w_to_s.hpp
/// Chandra-Toueg's transformation from weak to strong completeness ([6],
/// used in Section 3 to lift a ◇W detector to ◇S before composing ◇C).
///
/// Every process periodically broadcasts its input module's suspect set.
/// On receiving (q, S), process p sets output := (output ∪ S) \ {q}: it
/// adopts q's suspicions but clears q itself, because the message proves q
/// alive. If some correct process permanently suspects a crashed process
/// (weak completeness), everyone eventually adopts that suspicion — strong
/// completeness — while each accuracy property of the input is preserved
/// (an eventually-unsuspected process eventually appears in no broadcast
/// set, and its own broadcasts clear any stale suspicion of it).

namespace ecfd::fd {

class WToS final : public Protocol, public SuspectOracle {
 public:
  struct Config {
    DurUs period{msec(10)};
  };

  /// \p input: local module with weak completeness (not owned).
  WToS(Env& env, const SuspectOracle* input);
  WToS(Env& env, const SuspectOracle* input, Config cfg);

  void start() override;
  void on_message(const Message& m) override;

  [[nodiscard]] ProcessSet suspected() const override { return output_; }

 private:
  void tick();

  Config cfg_;
  const SuspectOracle* input_;
  ProcessSet output_;
};

}  // namespace ecfd::fd
