#include "fd/probe.hpp"

namespace ecfd {

FdProbe::FdProbe(System& sys, DurUs period)
    : sys_(sys),
      period_(period),
      suspect_(static_cast<std::size_t>(sys.n()), nullptr),
      leader_(static_cast<std::size_t>(sys.n()), nullptr) {}

void FdProbe::attach(ProcessId p, const SuspectOracle* s,
                     const LeaderOracle* l) {
  suspect_[static_cast<std::size_t>(p)] = s;
  leader_[static_cast<std::size_t>(p)] = l;
}

void FdProbe::start(TimeUs until) {
  until_ = until;
  arm();
}

void FdProbe::arm() {
  sys_.scheduler().schedule_after(period_, [this]() {
    sample_once();
    if (sys_.now() + period_ <= until_) arm();
  });
}

void FdProbe::sample_once() {
  FdSample s;
  s.time = sys_.now();
  const int n = sys_.n();
  s.suspected.resize(static_cast<std::size_t>(n));
  s.trusted.resize(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p) {
    if (sys_.host(p).crashed()) continue;
    const auto i = static_cast<std::size_t>(p);
    if (suspect_[i] != nullptr) s.suspected[i] = suspect_[i]->suspected();
    if (leader_[i] != nullptr) s.trusted[i] = leader_[i]->trusted();
  }
  samples_.push_back(std::move(s));
}

}  // namespace ecfd
