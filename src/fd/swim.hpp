#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/ecfd_oracle.hpp"
#include "net/env.hpp"
#include "net/protocol_ids.hpp"

/// \file swim.hpp
/// SWIM-style gossip membership as a ◇C module: randomized ping / ping-req
/// indirect probing with suspicion timeouts, incarnation-numbered
/// refutations, and membership updates piggybacked on every protocol
/// message (Das, Gupta & Motivala's SWIM, adapted to the paper's
/// crash-stop, fixed-universe model).
///
/// Per period every process probes ONE uniformly random peer, so the
/// steady-state message load is ~2n per period (ping + ack) regardless of
/// n — constant per node, against the flat heartbeat ◇P's O(n) per node.
/// A missed direct ack triggers k indirect probes through random relays
/// (acks route back through the relay), so one slow or lossy link cannot
/// by itself produce a suspicion. Only when direct and indirect probes all
/// fail does the prober suspect the target and gossip the suspicion.
///
/// Refutation is pure SWIM: a process seeing itself suspected or declared
/// dead at incarnation i bumps its own incarnation past i and gossips an
/// ALIVE update, which overrides the suspicion everywhere; receiving an
/// ack never clears a suspicion by itself. Two adaptations keep the
/// detector inside class ◇C under crash-stop with a fixed universe:
///   * ALIVE at a higher incarnation overrides DEAD (classic SWIM treats
///     dead as final, which would forfeit eventual accuracy after one
///     premature death verdict);
///   * every applied refutation widens the probe timeout (Chen-style
///     widening), so post-GST each process makes only finitely many
///     mistakes and eventual *strong* accuracy holds.
/// suspected() is the set of peers in suspect-or-dead state; trusted() is
/// the first unsuspected process, so the coupling clause holds at every
/// instant and the trusted outputs converge with the suspected sets.
///
/// State per host is sparse: peers at default (alive, incarnation 0) own
/// no entry, so steady-state memory is O(faulty + recently-churned), not
/// O(n) — the membership bitset aside.

namespace ecfd::fd {

/// One piggybacked membership update.
struct SwimUpdate {
  ProcessId subject{kNoProcess};
  std::uint32_t incarnation{0};
  std::uint8_t state{0};  ///< SwimFd::kAlive / kSuspect / kDead
};

/// Body shared by ping / ping-req / ack messages.
struct SwimBody {
  std::uint64_t seq{0};
  ProcessId origin{kNoProcess};   ///< prober the ack must reach
  ProcessId subject{kNoProcess};  ///< probe target (ping-req relays)
  std::vector<SwimUpdate> updates;
};

class SwimFd final : public Protocol, public core::EcfdOracle {
 public:
  enum PeerState : std::uint8_t { kAlive = 0, kSuspect = 1, kDead = 2 };

  struct Config {
    /// Probe cadence: one random direct probe per period.
    DurUs period{msec(10)};
    /// Direct-ack wait before indirect probing; the full probe resolves
    /// (and suspicion starts) after twice this. Widens on every applied
    /// refutation.
    DurUs ack_timeout{msec(10)};
    DurUs timeout_increment{msec(10)};
    /// Suspicion duration before the subject is declared dead (still
    /// refutable at a higher incarnation).
    DurUs suspect_timeout{msec(400)};
    /// Indirect probe fan-out on a missed direct ack.
    int indirect_k{2};
    /// Max piggybacked updates per message.
    int max_piggyback{6};
    /// Mutation hook (check/mutants): the disseminator drops refutations —
    /// an ALIVE update that would clear a local suspect/dead entry is
    /// discarded instead of applied, so one false suspicion anywhere
    /// becomes permanent. Breaks exactly fd.eventual_strong_accuracy.
    bool mutate_drop_refutations{false};
  };

  explicit SwimFd(Env& env);
  SwimFd(Env& env, Config cfg);

  void start() override;
  void on_message(const Message& m) override;

  /// Peers in suspect or dead state.
  [[nodiscard]] ProcessSet suspected() const override { return suspected_; }

  /// First unsuspected process — coupling holds by construction.
  [[nodiscard]] ProcessId trusted() const override;

  [[nodiscard]] std::uint32_t incarnation() const { return self_inc_; }
  [[nodiscard]] DurUs current_ack_timeout() const { return ack_timeout_; }

 private:
  enum MsgType { kPing = 1, kPingReq = 2, kAck = 3 };

  struct Peer {
    std::uint32_t incarnation{0};
    std::uint8_t state{kAlive};
    TimeUs suspected_at{0};
  };

  struct Probe {
    ProcessId target{kNoProcess};
    bool acked{false};
  };

  /// A gossip-buffer entry: retransmitted on outgoing messages until its
  /// budget (~3·log2 n sends) is spent; newest update per subject wins.
  struct Buffered {
    SwimUpdate u;
    int sends_left{0};
  };

  void tick();
  [[nodiscard]] ProcessId random_peer_except(ProcessId skip) const;
  /// Applies one update; returns true when it changed state (and was
  /// therefore re-enqueued for dissemination).
  bool apply_update(const SwimUpdate& u);
  void enqueue_update(const SwimUpdate& u);
  void piggyback(SwimBody& body);
  /// Attaches the local suspect/dead claim about body.subject to an
  /// outgoing ping, so a directly reachable victim always learns of (and
  /// can refute) a stale rumor even after its gossip budget drained.
  void attach_subject_state(SwimBody& body);
  void send_with_gossip(ProcessId dst, int type, const char* label,
                        SwimBody body);
  void resolve_probe(std::uint64_t seq);
  [[nodiscard]] std::uint32_t known_incarnation(ProcessId p) const;

  Config cfg_;
  DurUs ack_timeout_;
  std::uint32_t self_inc_{0};
  std::uint64_t next_seq_{1};

  std::unordered_map<ProcessId, Peer> peers_;  ///< non-default peers only
  ProcessSet suspected_;
  std::unordered_map<std::uint64_t, Probe> probes_;
  std::vector<Buffered> gossip_;
  int gossip_budget_{0};  ///< sends_left for fresh entries
  ProcessId last_trusted_{0};  ///< for kLeaderChange records only
};

}  // namespace ecfd::fd
