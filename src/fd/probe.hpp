#pragma once

#include <optional>
#include <vector>

#include "fd/oracle.hpp"
#include "net/system.hpp"

/// \file probe.hpp
/// Periodic sampling of every process's failure-detector output, producing
/// the timeline that fd/properties.hpp evaluates.

namespace ecfd {

/// One snapshot of the whole system's FD outputs.
struct FdSample {
  TimeUs time{};
  /// Per process: suspected set (nullopt when the process is crashed or has
  /// no suspect oracle attached).
  std::vector<std::optional<ProcessSet>> suspected;
  /// Per process: trusted process (nullopt when crashed / not attached).
  std::vector<std::optional<ProcessId>> trusted;
};

/// Samples attached oracles on a fixed cadence using the system scheduler.
///
/// The probe itself is not a process: it is measurement machinery and sends
/// no messages.
class FdProbe {
 public:
  FdProbe(System& sys, DurUs period);

  /// Attaches process \p p's oracles (either pointer may be null).
  void attach(ProcessId p, const SuspectOracle* s, const LeaderOracle* l);

  /// Starts sampling now and every period until \p until.
  void start(TimeUs until);

  [[nodiscard]] const std::vector<FdSample>& samples() const {
    return samples_;
  }

 private:
  void sample_once();
  void arm();

  System& sys_;
  DurUs period_;
  TimeUs until_{0};
  std::vector<const SuspectOracle*> suspect_;
  std::vector<const LeaderOracle*> leader_;
  std::vector<FdSample> samples_;
};

}  // namespace ecfd
