#include "fd/properties.hpp"

#include <algorithm>
#include <functional>

namespace ecfd {

namespace {

/// Finds the earliest suffix of \p samples on which \p pred holds at every
/// sample. Returns {false, kTimeNever} if it fails at the last sample (or
/// there are no samples).
Eventually find_suffix(const std::vector<FdSample>& samples,
                       const std::function<bool(const FdSample&)>& pred) {
  if (samples.empty()) return {};
  // Scan backwards to the first failure.
  std::size_t start = samples.size();
  for (std::size_t i = samples.size(); i-- > 0;) {
    if (!pred(samples[i])) break;
    start = i;
  }
  if (start == samples.size()) return {};
  return Eventually{true, samples[start].time};
}

}  // namespace

TimeUs FdReport::ecfd_stable_from() const {
  TimeUs t = 0;
  t = std::max(t, strong_completeness.from);
  t = std::max(t, eventual_weak_accuracy.from);
  t = std::max(t, omega.from);
  t = std::max(t, ecfd_coupling.from);
  return t;
}

FdReport check_fd_properties(const RunFacts& facts,
                             const std::vector<FdSample>& samples) {
  FdReport report;
  const int n = facts.n;
  const ProcessSet& correct = facts.correct;
  ProcessSet faulty = ProcessSet::full(n) - correct;

  const auto correct_ids = correct.members();
  const auto faulty_ids = faulty.members();

  auto susp_of = [&](const FdSample& s, ProcessId p)
      -> const std::optional<ProcessSet>& {
    return s.suspected[static_cast<std::size_t>(p)];
  };
  auto trust_of = [&](const FdSample& s, ProcessId p)
      -> const std::optional<ProcessId>& {
    return s.trusted[static_cast<std::size_t>(p)];
  };

  const bool any_suspect_output = std::any_of(
      samples.begin(), samples.end(), [&](const FdSample& s) {
        return std::any_of(correct_ids.begin(), correct_ids.end(),
                           [&](ProcessId p) { return susp_of(s, p).has_value(); });
      });
  const bool any_leader_output = std::any_of(
      samples.begin(), samples.end(), [&](const FdSample& s) {
        return std::any_of(correct_ids.begin(), correct_ids.end(),
                           [&](ProcessId p) { return trust_of(s, p).has_value(); });
      });

  if (any_suspect_output) {
    // Strong completeness: each faulty process is in every correct
    // process's suspected set.
    report.strong_completeness = find_suffix(samples, [&](const FdSample& s) {
      for (ProcessId p : correct_ids) {
        const auto& sp = susp_of(s, p);
        if (!sp.has_value()) return false;
        for (ProcessId q : faulty_ids) {
          if (!sp->contains(q)) return false;
        }
      }
      return true;
    });

    // Weak completeness: per faulty q, SOME correct p suspects q on a
    // suffix. Each q may have a different witness, so evaluate per q.
    report.weak_completeness = {true, 0};
    for (ProcessId q : faulty_ids) {
      Eventually best{};
      for (ProcessId p : correct_ids) {
        Eventually e = find_suffix(samples, [&](const FdSample& s) {
          const auto& sp = susp_of(s, p);
          return sp.has_value() && sp->contains(q);
        });
        if (e.holds && (!best.holds || e.from < best.from)) best = e;
      }
      if (!best.holds) {
        report.weak_completeness = {};
        break;
      }
      report.weak_completeness.from =
          std::max(report.weak_completeness.from, best.from);
    }
    if (faulty_ids.empty()) report.weak_completeness = {true, 0};
    if (report.strong_completeness.holds && faulty_ids.empty()) {
      report.strong_completeness.from = 0;
    }

    // Eventual strong accuracy: no correct process suspected by any
    // correct process.
    report.eventual_strong_accuracy =
        find_suffix(samples, [&](const FdSample& s) {
          for (ProcessId p : correct_ids) {
            const auto& sp = susp_of(s, p);
            if (!sp.has_value()) return false;
            for (ProcessId q : correct_ids) {
              if (sp->contains(q)) return false;
            }
          }
          return true;
        });

    // Eventual weak accuracy: some correct process never suspected by any
    // correct process, from some point on.
    for (ProcessId q : correct_ids) {
      Eventually e = find_suffix(samples, [&](const FdSample& s) {
        for (ProcessId p : correct_ids) {
          const auto& sp = susp_of(s, p);
          if (!sp.has_value() || sp->contains(q)) return false;
        }
        return true;
      });
      if (e.holds &&
          (!report.eventual_weak_accuracy.holds ||
           e.from < report.eventual_weak_accuracy.from)) {
        report.eventual_weak_accuracy = e;
        report.ewa_witness = q;
      }
    }
  }

  if (any_leader_output) {
    // Omega: all correct processes permanently trust the same correct
    // process.
    for (ProcessId leader : correct_ids) {
      Eventually e = find_suffix(samples, [&](const FdSample& s) {
        for (ProcessId p : correct_ids) {
          const auto& tp = trust_of(s, p);
          if (!tp.has_value() || *tp != leader) return false;
        }
        return true;
      });
      if (e.holds && (!report.omega.holds || e.from < report.omega.from)) {
        report.omega = e;
        report.omega_leader = leader;
      }
    }
  }

  if (any_suspect_output && any_leader_output) {
    // Coupling clause of Definition 1: eventually, for every correct p,
    // trusted_p is not in suspected_p.
    report.ecfd_coupling = find_suffix(samples, [&](const FdSample& s) {
      for (ProcessId p : correct_ids) {
        const auto& sp = susp_of(s, p);
        const auto& tp = trust_of(s, p);
        if (!sp.has_value() || !tp.has_value()) return false;
        if (sp->contains(*tp)) return false;
      }
      return true;
    });
  }

  return report;
}

}  // namespace ecfd
