#pragma once

#include <vector>

#include "fd/adaptive_timeout.hpp"
#include "fd/oracle.hpp"
#include "net/env.hpp"
#include "net/protocol_ids.hpp"

/// \file heartbeat_p.hpp
/// The Chandra-Toueg all-to-all heartbeat implementation of ◇P in models
/// of partial synchrony ([6], Section 1.1).
///
/// Every process broadcasts I-AM-ALIVE every `period`. Process p suspects q
/// when it has not heard from q within its per-target timeout Δ_p(q); when
/// a message from a suspected q arrives, p removes q from the suspected set
/// and increases Δ_p(q). After GST, each pair makes only finitely many
/// mistakes, so the output converges to exactly the crashed set — i.e. both
/// strong completeness and eventual strong accuracy hold.
///
/// Periodic cost: n(n-1) messages — the quadratic baseline the paper's
/// Section 4 compares its 2(n-1) ◇C→◇P transformation against.

namespace ecfd::obs {
class MetricsRegistry;
}

namespace ecfd::fd {

class HeartbeatP final : public Protocol, public SuspectOracle {
 public:
  struct Config {
    DurUs period{msec(10)};           ///< heartbeat broadcast period Φ
    DurUs initial_timeout{msec(30)};  ///< initial Δ_p(q)
    DurUs timeout_increment{msec(10)};///< Δ_p(q) += this on each mistake

    /// When true, Δ_p(q) comes from a per-peer Chen-style arrival
    /// predictor (fd/adaptive_timeout.hpp) instead of the static widening
    /// schedule: suspect q once predicted-next-arrival + α has passed.
    /// Mistakes widen α, so convergence (and thus ◇P) is preserved while
    /// the baseline tracks the observed inter-arrival time per link.
    bool adaptive{false};
    ArrivalPredictor::Config predictor{};
  };

  explicit HeartbeatP(Env& env);
  HeartbeatP(Env& env, Config cfg);

  void start() override;
  void on_message(const Message& m) override;

  [[nodiscard]] ProcessSet suspected() const override { return suspected_; }

  /// Current adaptive timeout for q (exposed for tests).
  [[nodiscard]] DurUs timeout_of(ProcessId q) const {
    return timeout_[static_cast<std::size_t>(q)];
  }

  /// Per-peer arrival predictor (nullptr unless cfg.adaptive).
  [[nodiscard]] const ArrivalPredictor* predictor(ProcessId q) const {
    if (pred_.empty()) return nullptr;
    return &pred_[static_cast<std::size_t>(q)];
  }

  /// Exports the predictors' QoS under "<prefix>.p<q>.": per-peer
  /// predicted-vs-actual error histogram (predict_err_us, replayed per
  /// log2 bucket), arrivals/predictions/mistakes counters and an alpha_us
  /// gauge. No-op for a static-schedule instance.
  void export_adaptive_metrics(obs::MetricsRegistry& reg,
                               const std::string& prefix) const;

 private:
  void beat();
  void check();

  Config cfg_;
  ProcessSet suspected_;
  std::vector<TimeUs> last_heard_;
  std::vector<DurUs> timeout_;
  std::vector<ArrivalPredictor> pred_;  ///< per peer; empty when static
};

}  // namespace ecfd::fd
