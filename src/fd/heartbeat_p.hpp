#pragma once

#include <vector>

#include "fd/oracle.hpp"
#include "net/env.hpp"
#include "net/protocol_ids.hpp"

/// \file heartbeat_p.hpp
/// The Chandra-Toueg all-to-all heartbeat implementation of ◇P in models
/// of partial synchrony ([6], Section 1.1).
///
/// Every process broadcasts I-AM-ALIVE every `period`. Process p suspects q
/// when it has not heard from q within its per-target timeout Δ_p(q); when
/// a message from a suspected q arrives, p removes q from the suspected set
/// and increases Δ_p(q). After GST, each pair makes only finitely many
/// mistakes, so the output converges to exactly the crashed set — i.e. both
/// strong completeness and eventual strong accuracy hold.
///
/// Periodic cost: n(n-1) messages — the quadratic baseline the paper's
/// Section 4 compares its 2(n-1) ◇C→◇P transformation against.

namespace ecfd::fd {

class HeartbeatP final : public Protocol, public SuspectOracle {
 public:
  struct Config {
    DurUs period{msec(10)};           ///< heartbeat broadcast period Φ
    DurUs initial_timeout{msec(30)};  ///< initial Δ_p(q)
    DurUs timeout_increment{msec(10)};///< Δ_p(q) += this on each mistake
  };

  explicit HeartbeatP(Env& env);
  HeartbeatP(Env& env, Config cfg);

  void start() override;
  void on_message(const Message& m) override;

  [[nodiscard]] ProcessSet suspected() const override { return suspected_; }

  /// Current adaptive timeout for q (exposed for tests).
  [[nodiscard]] DurUs timeout_of(ProcessId q) const {
    return timeout_[static_cast<std::size_t>(q)];
  }

 private:
  void beat();
  void check();

  Config cfg_;
  ProcessSet suspected_;
  std::vector<TimeUs> last_heard_;
  std::vector<DurUs> timeout_;
};

}  // namespace ecfd::fd
