#include "fd/w_to_s.hpp"

namespace ecfd::fd {

namespace {
constexpr int kSuspects = 1;
}

WToS::WToS(Env& env, const SuspectOracle* input)
    : WToS(env, input, Config{}) {}

WToS::WToS(Env& env, const SuspectOracle* input, Config cfg)
    : Protocol(env, protocol_ids::kWToS),
      cfg_(cfg),
      input_(input),
      output_(env.n()) {}

void WToS::start() {
  env_.set_timer(env_.rng().range(0, cfg_.period), [this]() { tick(); });
}

void WToS::tick() {
  const ProcessSet in = input_->suspected();
  env_.broadcast(Message::make(protocol_id(), kSuspects, "wts.suspects", in));
  // Local suspicions merge immediately (a process trivially "receives" its
  // own broadcast).
  output_ |= in;
  output_.remove(env_.self());
  env_.set_timer(cfg_.period, [this]() { tick(); });
}

void WToS::on_message(const Message& m) {
  if (m.type != kSuspects) return;
  output_ |= m.as<ProcessSet>();
  output_.remove(m.src);  // the message itself proves m.src alive
  output_.remove(env_.self());
}

}  // namespace ecfd::fd
