#include "fd/heartbeat_counter.hpp"

namespace ecfd::fd {

namespace {
constexpr int kBeat = 1;
}

HeartbeatCounter::HeartbeatCounter(Env& env)
    : HeartbeatCounter(env, Config{}) {}

HeartbeatCounter::HeartbeatCounter(Env& env, Config cfg)
    : Protocol(env, protocol_ids::kHeartbeatCounter),
      cfg_(cfg),
      counters_(static_cast<std::size_t>(env.n()), 0) {}

void HeartbeatCounter::start() {
  env_.set_timer(env_.rng().range(0, cfg_.period), [this]() { beat(); });
}

void HeartbeatCounter::beat() {
  ++counters_[static_cast<std::size_t>(env_.self())];
  env_.broadcast(Message::make_empty(protocol_id(), kBeat, "hbc.beat"));
  env_.set_timer(cfg_.period, [this]() { beat(); });
}

void HeartbeatCounter::on_message(const Message& m) {
  if (m.type != kBeat) return;
  ++counters_[static_cast<std::size_t>(m.src)];
}

}  // namespace ecfd::fd
