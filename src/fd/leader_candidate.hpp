#pragma once

#include <vector>

#include "fd/oracle.hpp"
#include "net/env.hpp"
#include "net/protocol_ids.hpp"

/// \file leader_candidate.hpp
/// The leader-candidate implementation of Omega in partial synchrony,
/// after Larrea, Fernández, Arévalo (SRDS 2000, [16]).
///
/// Processes consider candidates in the fixed order p0, p1, ... Each
/// process's candidate is the lowest-id process it has not (yet) suspected.
/// Only a process that considers *itself* the candidate broadcasts LEADER
/// heartbeats (n-1 messages per period); every other process monitors its
/// current candidate with an adaptive timeout, suspecting it and moving to
/// the next candidate on expiry, and rolling back (with a widened timeout)
/// when it hears from a lower-id process again.
///
/// After GST the first correct process p_l is heard within its (eventually
/// large enough) timeouts, so every correct process converges to trusting
/// p_l: Property 1 (Omega). Note the suspected set maintained here contains
/// only lower-id prefix processes — it is NOT ◇S-complete; this detector
/// provides leader election only, which is exactly how the paper uses it.

namespace ecfd::fd {

class LeaderCandidate final : public Protocol, public LeaderOracle {
 public:
  struct Config {
    DurUs period{msec(10)};
    DurUs initial_timeout{msec(30)};
    DurUs timeout_increment{msec(10)};
  };

  explicit LeaderCandidate(Env& env);
  LeaderCandidate(Env& env, Config cfg);

  void start() override;
  void on_message(const Message& m) override;

  /// The current candidate (lowest-id unsuspected process).
  [[nodiscard]] ProcessId trusted() const override;

  /// Prefix suspicions (exposed for tests; not a complete suspect list).
  [[nodiscard]] const ProcessSet& prefix_suspects() const { return suspected_; }

 private:
  void tick();
  void announce();

  Config cfg_;
  ProcessSet suspected_;
  std::vector<TimeUs> last_heard_;
  std::vector<DurUs> timeout_;
  bool announcing_{false};
};

}  // namespace ecfd::fd
