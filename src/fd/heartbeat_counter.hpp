#pragma once

#include <cstdint>
#include <vector>

#include "net/env.hpp"
#include "net/protocol_ids.hpp"

/// \file heartbeat_counter.hpp
/// The timeout-free Heartbeat failure detector of Aguilera, Chen, Toueg
/// (WDAG'97 — the paper's reference [1], cited among the unreliable-
/// failure-detector classes in Section 1.1).
///
/// Unlike every other detector in this library, HB uses NO timing
/// assumptions at all: when queried it returns a vector of unbounded
/// heartbeat counters, one per process. Its characteristic properties:
///
///   * HB-completeness — the counter of a crashed process eventually
///     stops increasing;
///   * HB-accuracy     — the counter of a correct process never stops
///     increasing (at every correct process).
///
/// It therefore never "suspects" anyone and makes no mistakes; consumers
/// (e.g. quiescent reliable-communication protocols) act on whether a
/// counter has moved since they last looked. The implementation is the
/// all-to-all variant for fully connected networks: every process
/// periodically broadcasts HEARTBEAT and increments the sender's counter
/// on receipt. It works verbatim over fair-lossy links — message loss
/// only slows counters down, which HB semantics tolerate by design.

namespace ecfd::fd {

class HeartbeatCounter final : public Protocol {
 public:
  struct Config {
    DurUs period{msec(10)};
  };

  explicit HeartbeatCounter(Env& env);
  HeartbeatCounter(Env& env, Config cfg);

  void start() override;
  void on_message(const Message& m) override;

  /// The HB output: current counter vector (own slot counts own beats).
  [[nodiscard]] const std::vector<std::uint64_t>& counters() const {
    return counters_;
  }

  /// Counter of a single process.
  [[nodiscard]] std::uint64_t counter(ProcessId q) const {
    return counters_[static_cast<std::size_t>(q)];
  }

 private:
  void beat();

  Config cfg_;
  std::vector<std::uint64_t> counters_;
};

}  // namespace ecfd::fd
