#include "fd/efficient_p.hpp"

namespace ecfd::fd {

EfficientP::EfficientP(Env& env) : EfficientP(env, Config{}) {}

EfficientP::EfficientP(Env& env, Config cfg)
    : Protocol(env, protocol_ids::kEfficientP),
      cfg_(cfg),
      candidate_susp_(env.n()),
      local_list_(env.n()),
      adopted_(env.n()),
      last_heard_(static_cast<std::size_t>(env.n()), 0),
      last_alive_(static_cast<std::size_t>(env.n()), 0),
      beat_timeout_(static_cast<std::size_t>(env.n()), cfg.initial_timeout),
      alive_timeout_(static_cast<std::size_t>(env.n()), cfg.initial_timeout) {}

void EfficientP::start() {
  env_.set_timer(env_.rng().range(0, cfg_.period), [this]() { tick(); });
}

ProcessId EfficientP::trusted() const {
  const ProcessId c = candidate_susp_.first_excluded();
  return c == kNoProcess ? env_.self() : c;
}

void EfficientP::tick() {
  const ProcessId candidate = trusted();
  const bool leader_now = candidate == env_.self();
  if (leader_now && !acting_leader_) {
    // Freshly acquired leadership: grant a grace period on the alive
    // inflow (nobody has been reporting to us) — same rationale as CToP.
    const TimeUs now = env_.now();
    for (auto& t : last_alive_) t = now;
    local_list_.clear();
  }
  acting_leader_ = leader_now;

  if (acting_leader_) {
    // Build the list from the I-AM-ALIVE inflow (Fig. 2, Task 3)...
    const TimeUs now = env_.now();
    for (ProcessId q = 0; q < env_.n(); ++q) {
      if (q == env_.self()) continue;
      const auto i = static_cast<std::size_t>(q);
      if (!local_list_.contains(q) && now - last_alive_[i] > alive_timeout_[i]) {
        local_list_.add(q);
        env_.record(EventType::kSuspect, q);
        env_.trace("effp.suspect", "p" + std::to_string(q));
      }
    }
    // ...and publish it piggybacked on the leadership beat (Omega
    // heartbeat + Fig. 2 Task 1, one message).
    env_.broadcast(
        Message::make(protocol_id(), kLeaderList, "effp.leader", local_list_));
    adopted_ = local_list_;
  } else {
    // Monitor the candidate's beats; on timeout, move to the next.
    const auto i = static_cast<std::size_t>(candidate);
    if (env_.now() - last_heard_[i] > beat_timeout_[i]) {
      candidate_susp_.add(candidate);
      env_.record(EventType::kSuspect, candidate);
      env_.record(EventType::kLeaderChange, trusted());
      env_.trace("effp.candidate_suspect", "p" + std::to_string(candidate));
    }
    // Report alive to the (possibly new) candidate (Fig. 2, Task 2).
    const ProcessId target = trusted();
    if (target != env_.self()) {
      env_.send(target, Message::make_empty(protocol_id(), kAlive, "effp.alive"));
    }
  }
  env_.set_timer(cfg_.period, [this]() { tick(); });
}

void EfficientP::on_message(const Message& m) {
  const auto i = static_cast<std::size_t>(m.src);
  switch (m.type) {
    case kLeaderList: {
      last_heard_[i] = env_.now();
      if (candidate_susp_.contains(m.src)) {
        // A lower-ranked candidate is back: roll back, widen its timeout.
        candidate_susp_.remove(m.src);
        beat_timeout_[i] += cfg_.timeout_increment;
        env_.record(EventType::kUnsuspect, m.src);
        env_.record(EventType::kLeaderChange, trusted());
        env_.trace("effp.rollback", "p" + std::to_string(m.src));
      }
      // Adopt the list only from our current candidate (Fig. 2, Task 5).
      if (m.src == trusted()) {
        adopted_ = m.as<ProcessSet>();
        adopted_.remove(env_.self());
      }
      break;
    }
    case kAlive: {
      last_alive_[i] = env_.now();
      if (local_list_.contains(m.src)) {
        // Fig. 2, Task 4: retract and widen.
        local_list_.remove(m.src);
        alive_timeout_[i] += cfg_.timeout_increment;
        env_.record(EventType::kUnsuspect, m.src);
        env_.trace("effp.unsuspect", "p" + std::to_string(m.src));
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace ecfd::fd
