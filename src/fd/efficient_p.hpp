#pragma once

#include <vector>

#include "core/ecfd_oracle.hpp"
#include "net/env.hpp"
#include "net/protocol_ids.hpp"

/// \file efficient_p.hpp
/// The paper's Section 4 piggyback optimization, realized as one combined
/// protocol: the leader-candidate Omega algorithm ([16]) fused with the
/// Fig. 2 ◇C→◇P transformation, with the suspected list piggybacked on the
/// leader's periodic heartbeat.
///
/// "Following the previous strategy, we get an extremely efficient
///  implementation of ◇P that has a cost of 2(n−1) messages periodically
///  sent (n−1 of the implementation of the ◇C failure detector D based on
///  [16], and n−1 of the transformation algorithm of Fig. 2)."
///
/// Per period: the current leader broadcasts LEADER(list) (n−1 messages,
/// serving simultaneously as the Omega heartbeat and as Fig. 2's Task 1),
/// and every other process sends I-AM-ALIVE to its current candidate (n−1
/// messages, Fig. 2's Task 2). Candidates are considered in the fixed
/// order p0, p1, ...: a process suspects its candidate on an adaptive
/// timeout and moves to the next, rolling back (with a widened timeout)
/// when a lower-id candidate is heard again.
///
/// The module therefore answers every query class at once: suspected()
/// is a ◇P-quality list, trusted() is an Omega-quality leader — a ◇C
/// detector by construction, at less message cost than the heartbeat ◇P's
/// n(n−1) or even the ring's 2n.

namespace ecfd::fd {

class EfficientP final : public Protocol, public core::EcfdOracle {
 public:
  struct Config {
    DurUs period{msec(10)};
    DurUs initial_timeout{msec(30)};
    DurUs timeout_increment{msec(10)};
  };

  explicit EfficientP(Env& env);
  EfficientP(Env& env, Config cfg);

  void start() override;
  void on_message(const Message& m) override;

  /// The ◇P output: the list built by the leader and adopted by everyone.
  [[nodiscard]] ProcessSet suspected() const override { return adopted_; }

  /// The Omega output: the lowest-id candidate not timed out.
  [[nodiscard]] ProcessId trusted() const override;

  [[nodiscard]] bool acting_leader() const { return acting_leader_; }

 private:
  enum MsgType { kLeaderList = 1, kAlive = 2 };

  void tick();

  Config cfg_;
  /// Candidate-order suspicions (prefix), for leader election only.
  ProcessSet candidate_susp_;
  /// The published/adopted ◇P list.
  ProcessSet local_list_;
  ProcessSet adopted_;
  bool acting_leader_{false};
  std::vector<TimeUs> last_heard_;  ///< leader beats (election monitoring)
  std::vector<TimeUs> last_alive_;  ///< I-AM-ALIVE inflow (list building)
  std::vector<DurUs> beat_timeout_;
  std::vector<DurUs> alive_timeout_;
};

}  // namespace ecfd::fd
