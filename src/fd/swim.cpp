#include "fd/swim.hpp"

#include <algorithm>
#include <cmath>

namespace ecfd::fd {

SwimFd::SwimFd(Env& env) : SwimFd(env, Config{}) {}

SwimFd::SwimFd(Env& env, Config cfg)
    : Protocol(env, protocol_ids::kSwim),
      cfg_(cfg),
      ack_timeout_(cfg.ack_timeout),
      suspected_(env.n()) {
  const double lg = std::log2(static_cast<double>(std::max(2, env.n())));
  gossip_budget_ = 3 * static_cast<int>(std::ceil(lg)) + 4;
}

void SwimFd::start() {
  env_.set_timer(env_.rng().range(0, cfg_.period), [this]() { tick(); });
}

ProcessId SwimFd::trusted() const {
  const ProcessId t = suspected_.first_excluded();
  return t == kNoProcess ? env_.self() : t;
}

std::uint32_t SwimFd::known_incarnation(ProcessId p) const {
  const auto it = peers_.find(p);
  return it == peers_.end() ? 0 : it->second.incarnation;
}

ProcessId SwimFd::random_peer_except(ProcessId skip) const {
  // Uniform over the other n-1 ids; rng() is per-process deterministic.
  auto& rng = const_cast<Env&>(env_).rng();
  auto r = static_cast<ProcessId>(rng.range(0, env_.n() - 2));
  if (r >= skip) ++r;
  return r;
}

void SwimFd::enqueue_update(const SwimUpdate& u) {
  for (Buffered& b : gossip_) {
    if (b.u.subject == u.subject) {
      b.u = u;
      b.sends_left = gossip_budget_;
      return;
    }
  }
  gossip_.push_back(Buffered{u, gossip_budget_});
}

void SwimFd::piggyback(SwimBody& body) {
  int taken = 0;
  for (Buffered& b : gossip_) {
    if (taken >= cfg_.max_piggyback) break;
    body.updates.push_back(b.u);
    --b.sends_left;
    ++taken;
  }
  if (taken > 0) {
    gossip_.erase(std::remove_if(gossip_.begin(), gossip_.end(),
                                 [](const Buffered& b) {
                                   return b.sends_left <= 0;
                                 }),
                  gossip_.end());
  }
}

void SwimFd::send_with_gossip(ProcessId dst, int type, const char* label,
                              SwimBody body) {
  piggyback(body);
  env_.send(dst, Message::make(protocol_id(), type, label, std::move(body)));
}

bool SwimFd::apply_update(const SwimUpdate& u) {
  const ProcessId p = u.subject;
  if (p < 0 || p >= env_.n()) return false;
  if (p == env_.self()) {
    // Someone thinks we are suspect/dead: refute by outliving the claimed
    // incarnation and gossiping the proof. A stale rumor (already outlived)
    // still re-arms the alive assertion — the earlier refutation's gossip
    // may have been lost, and the rumor holder only clears on seeing it.
    if (u.state != kAlive) {
      if (u.incarnation >= self_inc_) self_inc_ = u.incarnation + 1;
      enqueue_update(SwimUpdate{p, self_inc_, kAlive});
      env_.trace("swim.refute", "inc" + std::to_string(self_inc_));
    }
    return false;
  }

  const auto it = peers_.find(p);
  const std::uint32_t cur_inc = it == peers_.end() ? 0 : it->second.incarnation;
  const std::uint8_t cur_state =
      it == peers_.end() ? static_cast<std::uint8_t>(kAlive) : it->second.state;
  bool applied = false;

  switch (u.state) {
    case kAlive: {
      if (u.incarnation <= cur_inc) break;
      const bool refutes = cur_state != kAlive;
      if (refutes && cfg_.mutate_drop_refutations) break;
      peers_[p] = Peer{u.incarnation, kAlive, 0};
      if (refutes) {
        suspected_.remove(p);
        // A refuted suspicion is a mistake: widen the probe window so
        // post-GST mistakes stay finite (eventual strong accuracy).
        ack_timeout_ += cfg_.timeout_increment;
        env_.record(EventType::kUnsuspect, p);
        env_.trace("swim.unsuspect", "p" + std::to_string(p));
      }
      applied = true;
      break;
    }
    case kSuspect: {
      if (u.incarnation > cur_inc ||
          (u.incarnation == cur_inc && cur_state == kAlive)) {
        peers_[p] = Peer{u.incarnation, kSuspect, env_.now()};
        if (cur_state == kAlive) {
          suspected_.add(p);
          env_.record(EventType::kSuspect, p);
          env_.trace("swim.suspect", "p" + std::to_string(p));
        }
        applied = true;
      }
      break;
    }
    case kDead: {
      if (u.incarnation >= cur_inc && cur_state != kDead) {
        peers_[p] = Peer{u.incarnation, kDead, env_.now()};
        if (cur_state == kAlive) {
          suspected_.add(p);
          env_.record(EventType::kSuspect, p);
        }
        env_.trace("swim.dead", "p" + std::to_string(p));
        applied = true;
      }
      break;
    }
    default:
      break;
  }
  if (applied) {
    enqueue_update(u);
    const ProcessId t = trusted();
    if (t != last_trusted_) {
      last_trusted_ = t;
      env_.record(EventType::kLeaderChange, t);
    }
  }
  return applied;
}

void SwimFd::attach_subject_state(SwimBody& body) {
  // A ping aimed at a peer we hold in suspect/dead state carries that very
  // claim, outside any gossip budget: refutations gossip with a finite
  // budget, so a victim that never saw the original rumor would otherwise
  // stay falsely suspected here forever — direct probes are the backstop
  // that makes the accuracy eventual-STRONG in a fixed universe.
  const auto it = peers_.find(body.subject);
  if (it != peers_.end() && it->second.state != kAlive) {
    body.updates.push_back(
        SwimUpdate{body.subject, it->second.incarnation, it->second.state});
  }
}

void SwimFd::resolve_probe(std::uint64_t seq) {
  const auto it = probes_.find(seq);
  if (it == probes_.end()) return;
  const ProcessId t = it->second.target;
  probes_.erase(it);
  // No direct or indirect ack inside the window: originate a suspicion at
  // the target's currently known incarnation.
  apply_update(SwimUpdate{t, known_incarnation(t), kSuspect});
}

void SwimFd::tick() {
  const TimeUs now = env_.now();

  // Promote expired suspicions to dead (still refutable at a higher
  // incarnation — see the file comment on the crash-stop adaptation).
  for (ProcessId p : suspected_.members()) {
    const auto it = peers_.find(p);
    if (it != peers_.end() && it->second.state == kSuspect &&
        now - it->second.suspected_at > cfg_.suspect_timeout) {
      apply_update(SwimUpdate{p, it->second.incarnation, kDead});
    }
  }

  if (env_.n() > 1) {
    const ProcessId target = random_peer_except(env_.self());
    const std::uint64_t seq = next_seq_++;
    probes_[seq] = Probe{target, false};
    SwimBody body{seq, env_.self(), target, {}};
    attach_subject_state(body);
    send_with_gossip(target, kPing, "swim.ping", std::move(body));
    env_.set_timer(ack_timeout_, [this, seq, target]() {
      if (probes_.find(seq) == probes_.end()) return;  // acked already
      // Missed direct ack: probe indirectly through k random relays.
      ProcessSet chosen(env_.n());
      int relays = 0;
      for (int attempt = 0; attempt < 8 * cfg_.indirect_k && relays < cfg_.indirect_k;
           ++attempt) {
        const ProcessId r = random_peer_except(env_.self());
        if (r == target || chosen.contains(r)) continue;
        chosen.add(r);
        ++relays;
        send_with_gossip(r, kPingReq, "swim.pingreq",
                         SwimBody{seq, env_.self(), target, {}});
      }
      env_.set_timer(ack_timeout_, [this, seq]() { resolve_probe(seq); });
    });
  }

  env_.set_timer(cfg_.period, [this]() { tick(); });
}

void SwimFd::on_message(const Message& m) {
  const auto& b = m.as<SwimBody>();
  for (const SwimUpdate& u : b.updates) apply_update(u);
  switch (m.type) {
    case kPing:
      // Ack to the immediate sender; it forwards when it relayed.
      send_with_gossip(m.src, kAck, "swim.ack",
                       SwimBody{b.seq, b.origin, env_.self(), {}});
      break;
    case kPingReq:
      if (b.subject >= 0 && b.subject < env_.n() && b.subject != env_.self()) {
        SwimBody fwd{b.seq, b.origin, b.subject, {}};
        attach_subject_state(fwd);
        send_with_gossip(b.subject, kPing, "swim.ping", std::move(fwd));
      }
      break;
    case kAck:
      if (b.origin == env_.self()) {
        probes_.erase(b.seq);
      } else if (b.origin >= 0 && b.origin < env_.n()) {
        send_with_gossip(b.origin, kAck, "swim.ack",
                         SwimBody{b.seq, b.origin, b.subject, {}});
      }
      break;
    default:
      break;
  }
}

}  // namespace ecfd::fd
