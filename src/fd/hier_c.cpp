#include "fd/hier_c.hpp"

#include <algorithm>
#include <cmath>

namespace ecfd::fd {

namespace {

int default_cell_size(int n) {
  const int c = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  return std::max(1, c);
}

}  // namespace

HierC::HierC(Env& env) : HierC(env, Config{}) {}

HierC::HierC(Env& env, Config cfg)
    : Protocol(env, protocol_ids::kHierC),
      cfg_(cfg),
      cell_size_(std::clamp(cfg.cell_size > 0 ? cfg.cell_size
                                              : default_cell_size(env.n()),
                            1, env.n())),
      n_cells_((env.n() + cell_size_ - 1) / cell_size_),
      own_cell_(env.self() / cell_size_),
      cell_cand_susp_(env.n()),
      last_beat_(static_cast<std::size_t>(cell_members(env.self() / cell_size_)), 0),
      beat_timeout_(last_beat_.size(), cfg.initial_timeout),
      last_alive_(last_beat_.size(), 0),
      alive_timeout_(last_beat_.size(), cfg.initial_timeout),
      cell_report_(env.n()),
      cell_susp_(n_cells_),
      last_cell_heard_(static_cast<std::size_t>(n_cells_), 0),
      cell_timeout_(static_cast<std::size_t>(n_cells_), cfg.initial_timeout),
      believed_leader_(static_cast<std::size_t>(n_cells_), kNoProcess),
      top_digest_(env.n()),
      adopted_(env.n()) {
  for (int d = 0; d < n_cells_; ++d) {
    believed_leader_[static_cast<std::size_t>(d)] = cell_first(d);
  }
}

void HierC::start() {
  env_.set_timer(env_.rng().range(0, cfg_.period), [this]() { tick(); });
}

ProcessId HierC::cell_end(int d) const {
  return std::min((d + 1) * cell_size_, env_.n());
}

ProcessId HierC::cell_candidate() const {
  for (ProcessId q = cell_first(own_cell_); q < cell_end(own_cell_); ++q) {
    if (!cell_cand_susp_.contains(q)) return q;
  }
  return env_.self();
}

int HierC::top_candidate_cell() const {
  const int d = cell_susp_.first_excluded();
  return d == kNoProcess ? own_cell_ : d;
}

ProcessId HierC::cell_contact(int d) const {
  if (!cell_susp_.contains(d)) {
    return believed_leader_[static_cast<std::size_t>(d)];
  }
  // Suspected cell: the believed leader may be long dead — rotate through
  // the membership so a live acting leader is eventually contacted.
  const int sz = cell_members(d);
  return cell_first(d) + static_cast<ProcessId>(rotate_ %
                             static_cast<std::uint64_t>(sz));
}

void HierC::note_top_contact(ProcessId src) {
  const int d = cell_of(src);
  const auto i = static_cast<std::size_t>(d);
  last_cell_heard_[i] = env_.now();
  believed_leader_[i] = src;
  if (cell_susp_.contains(d)) {
    cell_susp_.remove(d);
    cell_timeout_[i] += cfg_.timeout_increment;
    env_.trace("hier.cell_rollback", "c" + std::to_string(d));
  }
}

void HierC::tick() {
  const TimeUs now = env_.now();
  ++rotate_;

  const ProcessId cand = cell_candidate();
  const bool leader_now = cand == env_.self();
  if (leader_now && !acting_cell_leader_) {
    // Fresh cell leadership: grace on the alive inflow (nobody has been
    // reporting to us) and on the top level (our inter-cell bookkeeping is
    // stale from our time as a plain member) — same rationale as
    // EfficientP's fresh-leader grace.
    for (auto& t : last_alive_) t = now;
    for (auto& t : last_cell_heard_) t = now;
    cell_report_.clear();
  }
  acting_cell_leader_ = leader_now;

  if (acting_cell_leader_) {
    // Build the own-cell report from the alive inflow.
    for (ProcessId q = cell_first(own_cell_); q < cell_end(own_cell_); ++q) {
      if (q == env_.self()) continue;
      const std::size_t i = off(q);
      if (!cell_report_.contains(q) && now - last_alive_[i] > alive_timeout_[i]) {
        cell_report_.add(q);
        env_.record(EventType::kSuspect, q);
        env_.trace("hier.suspect", "p" + std::to_string(q));
      }
    }

    // --- top level among acting cell leaders -------------------------
    const bool top_now = top_candidate_cell() == own_cell_;
    if (top_now && !acting_top_leader_) {
      for (auto& t : last_cell_heard_) t = now;
      reports_.clear();
    }
    acting_top_leader_ = top_now;

    if (acting_top_leader_) {
      // Time out cells whose reports stopped (whole-cell crashes).
      for (int d = 0; d < n_cells_; ++d) {
        if (d == own_cell_ || cell_susp_.contains(d)) continue;
        const auto i = static_cast<std::size_t>(d);
        if (now - last_cell_heard_[i] > cell_timeout_[i]) {
          cell_susp_.add(d);
          reports_.erase(d);
          env_.trace("hier.cell_suspect", "c" + std::to_string(d));
        }
      }
      // Compose the global digest: own report plus, per remote cell, its
      // last report — or its whole membership while the cell is silent.
      ProcessSet digest = cell_report_;
      for (int d = 0; d < n_cells_; ++d) {
        if (d == own_cell_) continue;
        if (cell_susp_.contains(d)) {
          for (ProcessId q = cell_first(d); q < cell_end(d); ++q) digest.add(q);
        } else if (const auto it = reports_.find(d); it != reports_.end()) {
          digest |= it->second;
        }
      }
      top_digest_ = digest;
      if (digest_leader_ != env_.self()) {
        digest_leader_ = env_.self();
        env_.record(EventType::kLeaderChange, digest_leader_);
      }
      const Message beat = Message::make(
          protocol_id(), kTopBeat, "hier.top_beat",
          HierDigest{digest, env_.self()});
      for (int d = 0; d < n_cells_; ++d) {
        if (d != own_cell_) env_.send(cell_contact(d), beat);
      }
    } else {
      // Monitor the top-candidate cell's beats; on timeout move on.
      const int c = top_candidate_cell();
      if (c != own_cell_) {
        const auto i = static_cast<std::size_t>(c);
        if (now - last_cell_heard_[i] > cell_timeout_[i]) {
          cell_susp_.add(c);
          env_.trace("hier.cell_suspect", "c" + std::to_string(c));
        }
      }
      // Report the own-cell view to the (possibly new) top candidate.
      const int target_cell = top_candidate_cell();
      if (target_cell != own_cell_) {
        env_.send(cell_contact(target_cell),
                  Message::make(protocol_id(), kTopReport, "hier.top_report",
                                cell_report_));
      }
    }

    // --- gossip the composed digest down into the cell ----------------
    ProcessSet down = top_digest_;
    for (ProcessId q = cell_first(own_cell_); q < cell_end(own_cell_); ++q) {
      down.remove(q);
    }
    down |= cell_report_;
    adopted_ = down;
    const Message beat = Message::make(
        protocol_id(), kCellBeat, "hier.cell_beat",
        HierDigest{cfg_.mutate_stuck_propagation ? ProcessSet(env_.n()) : down,
                   digest_leader_});
    for (ProcessId q = cell_first(own_cell_); q < cell_end(own_cell_); ++q) {
      if (q != env_.self()) env_.send(q, beat);
    }
  } else {
    acting_top_leader_ = false;
    // Plain member: monitor the cell candidate's beats.
    const std::size_t i = off(cand);
    if (now - last_beat_[i] > beat_timeout_[i]) {
      cell_cand_susp_.add(cand);
      env_.record(EventType::kSuspect, cand);
      env_.trace("hier.cand_suspect", "p" + std::to_string(cand));
    }
    const ProcessId target = cell_candidate();
    if (target != env_.self()) {
      env_.send(target,
                Message::make_empty(protocol_id(), kCellAlive, "hier.alive"));
    }
  }
  env_.set_timer(cfg_.period, [this]() { tick(); });
}

void HierC::on_message(const Message& m) {
  switch (m.type) {
    case kCellBeat: {
      if (cell_of(m.src) != own_cell_) break;
      const std::size_t i = off(m.src);
      last_beat_[i] = env_.now();
      if (cell_cand_susp_.contains(m.src)) {
        // A lower-ranked cell candidate is back: roll back, widen.
        cell_cand_susp_.remove(m.src);
        beat_timeout_[i] += cfg_.timeout_increment;
        env_.record(EventType::kUnsuspect, m.src);
        env_.trace("hier.rollback", "p" + std::to_string(m.src));
      }
      if (m.src == cell_candidate()) {
        const auto& d = m.as<HierDigest>();
        adopted_ = d.susp;
        adopted_.remove(env_.self());
        if (digest_leader_ != d.leader) {
          digest_leader_ = d.leader;
          env_.record(EventType::kLeaderChange, digest_leader_);
        }
      }
      break;
    }
    case kCellAlive: {
      if (cell_of(m.src) != own_cell_) break;
      const std::size_t i = off(m.src);
      last_alive_[i] = env_.now();
      if (cell_report_.contains(m.src)) {
        cell_report_.remove(m.src);
        alive_timeout_[i] += cfg_.timeout_increment;
        env_.record(EventType::kUnsuspect, m.src);
        env_.trace("hier.unsuspect", "p" + std::to_string(m.src));
      }
      break;
    }
    case kTopBeat: {
      note_top_contact(m.src);
      const int d = cell_of(m.src);
      if (acting_cell_leader_ && d != own_cell_ && d == top_candidate_cell()) {
        const auto& body = m.as<HierDigest>();
        top_digest_ = body.susp;
        if (digest_leader_ != body.leader) {
          digest_leader_ = body.leader;
          env_.record(EventType::kLeaderChange, digest_leader_);
        }
      }
      break;
    }
    case kTopReport: {
      note_top_contact(m.src);
      const int d = cell_of(m.src);
      if (acting_top_leader_ && d != own_cell_) {
        // Keep the report inside the sender's cell: a buggy or byzantine
        // report must not let cell d slander processes it does not own.
        ProcessSet r = m.as<ProcessSet>();
        for (ProcessId q : r.members()) {
          if (cell_of(q) != d) r.remove(q);
        }
        if (r.empty()) {
          reports_.erase(d);
        } else {
          reports_[d] = std::move(r);
        }
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace ecfd::fd
