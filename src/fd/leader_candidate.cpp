#include "fd/leader_candidate.hpp"

namespace ecfd::fd {

namespace {
constexpr int kLeaderBeat = 1;
}

LeaderCandidate::LeaderCandidate(Env& env)
    : LeaderCandidate(env, Config{}) {}

LeaderCandidate::LeaderCandidate(Env& env, Config cfg)
    : Protocol(env, protocol_ids::kLeaderCandidate),
      cfg_(cfg),
      suspected_(env.n()),
      last_heard_(static_cast<std::size_t>(env.n()), 0),
      timeout_(static_cast<std::size_t>(env.n()), cfg.initial_timeout) {}

void LeaderCandidate::start() {
  env_.set_timer(env_.rng().range(0, cfg_.period), [this]() { tick(); });
}

ProcessId LeaderCandidate::trusted() const {
  const ProcessId c = suspected_.first_excluded();
  return c == kNoProcess ? env_.self() : c;
}

void LeaderCandidate::announce() {
  env_.broadcast(Message::make_empty(protocol_id(), kLeaderBeat, "lc.leader"));
}

void LeaderCandidate::tick() {
  const ProcessId candidate = trusted();
  if (candidate == env_.self()) {
    // I believe I am the leader: announce it. (Only the current candidate
    // sends messages, so the steady-state cost is n-1 per period.)
    announcing_ = true;
    announce();
  } else {
    announcing_ = false;
    // Monitor the candidate.
    const auto i = static_cast<std::size_t>(candidate);
    if (env_.now() - last_heard_[i] > timeout_[i]) {
      suspected_.add(candidate);
      env_.record(EventType::kSuspect, candidate);
      env_.record(EventType::kLeaderChange, trusted());
      env_.trace("lc.suspect", "p" + std::to_string(candidate));
    }
  }
  env_.set_timer(cfg_.period, [this]() { tick(); });
}

void LeaderCandidate::on_message(const Message& m) {
  if (m.type != kLeaderBeat) return;
  const auto i = static_cast<std::size_t>(m.src);
  last_heard_[i] = env_.now();
  if (suspected_.contains(m.src)) {
    // A lower-ranked candidate is alive after all: fall back to it and
    // widen its timeout so mistakes die out after GST.
    suspected_.remove(m.src);
    timeout_[i] += cfg_.timeout_increment;
    env_.record(EventType::kUnsuspect, m.src);
    env_.record(EventType::kLeaderChange, trusted());
    env_.trace("lc.rollback", "p" + std::to_string(m.src));
  }
}

}  // namespace ecfd::fd
