#include "fd/heartbeat_p.hpp"

#include <string>

#include "obs/metrics.hpp"

namespace ecfd::fd {

namespace {
constexpr int kAlive = 1;
}

HeartbeatP::HeartbeatP(Env& env) : HeartbeatP(env, Config{}) {}

HeartbeatP::HeartbeatP(Env& env, Config cfg)
    : Protocol(env, protocol_ids::kHeartbeatP),
      cfg_(cfg),
      suspected_(env.n()),
      last_heard_(static_cast<std::size_t>(env.n()), 0),
      timeout_(static_cast<std::size_t>(env.n()), cfg.initial_timeout) {
  if (cfg_.adaptive) {
    pred_.assign(static_cast<std::size_t>(env.n()),
                 ArrivalPredictor(cfg_.predictor));
  }
}

void HeartbeatP::start() {
  // Stagger the very first beat a little so all-process bursts do not
  // synchronize artificially; determinism is preserved (per-process rng).
  env_.set_timer(env_.rng().range(0, cfg_.period), [this]() { beat(); });
  env_.set_timer(cfg_.period / 2, [this]() { check(); });
}

void HeartbeatP::beat() {
  env_.broadcast(Message::make_empty(protocol_id(), kAlive, "hb_p.alive"));
  env_.set_timer(cfg_.period, [this]() { beat(); });
}

void HeartbeatP::check() {
  const TimeUs now = env_.now();
  for (ProcessId q = 0; q < env_.n(); ++q) {
    if (q == env_.self()) continue;
    const auto i = static_cast<std::size_t>(q);
    const bool late = cfg_.adaptive
                          ? now > pred_[i].deadline(last_heard_[i])
                          : now - last_heard_[i] > timeout_[i];
    if (!suspected_.contains(q) && late) {
      suspected_.add(q);
      env_.record(EventType::kSuspect, q);
      env_.trace("hb_p.suspect", "p" + std::to_string(q));
    }
  }
  env_.set_timer(cfg_.period / 2, [this]() { check(); });
}

void HeartbeatP::on_message(const Message& m) {
  if (m.type != kAlive) return;
  const auto i = static_cast<std::size_t>(m.src);
  last_heard_[i] = env_.now();
  if (cfg_.adaptive) pred_[i].observe(last_heard_[i]);
  if (suspected_.contains(m.src)) {
    // Premature suspicion: retract and widen the timeout so this pair
    // eventually stops making mistakes (eventual strong accuracy).
    suspected_.remove(m.src);
    if (cfg_.adaptive) {
      pred_[i].note_mistake();
    } else {
      timeout_[i] += cfg_.timeout_increment;
    }
    env_.record(EventType::kUnsuspect, m.src);
    env_.trace("hb_p.unsuspect", "p" + std::to_string(m.src));
  }
}

void HeartbeatP::export_adaptive_metrics(obs::MetricsRegistry& reg,
                                         const std::string& prefix) const {
  if (pred_.empty()) return;
  for (ProcessId q = 0; q < env_.n(); ++q) {
    if (q == env_.self()) continue;
    const ArrivalPredictor& pr = pred_[static_cast<std::size_t>(q)];
    const std::string base = prefix + ".p" + std::to_string(q);
    reg.add(base + ".arrivals", pr.stats().arrivals);
    reg.add(base + ".predictions", pr.stats().predictions);
    reg.add(base + ".mistakes", pr.stats().mistakes);
    reg.set_gauge(base + ".alpha_us", pr.alpha());
    obs::Histogram* h = reg.histogram(base + ".predict_err_us");
    for (int b = 0; b < ArrivalPredictor::kErrBuckets; ++b) {
      for (std::int64_t c = pr.err_bucket(b); c > 0; --c) {
        h->observe(obs::Histogram::bucket_lower(b));
      }
    }
  }
}

}  // namespace ecfd::fd
