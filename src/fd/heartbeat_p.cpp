#include "fd/heartbeat_p.hpp"

namespace ecfd::fd {

namespace {
constexpr int kAlive = 1;
}

HeartbeatP::HeartbeatP(Env& env) : HeartbeatP(env, Config{}) {}

HeartbeatP::HeartbeatP(Env& env, Config cfg)
    : Protocol(env, protocol_ids::kHeartbeatP),
      cfg_(cfg),
      suspected_(env.n()),
      last_heard_(static_cast<std::size_t>(env.n()), 0),
      timeout_(static_cast<std::size_t>(env.n()), cfg.initial_timeout) {}

void HeartbeatP::start() {
  // Stagger the very first beat a little so all-process bursts do not
  // synchronize artificially; determinism is preserved (per-process rng).
  env_.set_timer(env_.rng().range(0, cfg_.period), [this]() { beat(); });
  env_.set_timer(cfg_.period / 2, [this]() { check(); });
}

void HeartbeatP::beat() {
  env_.broadcast(Message::make_empty(protocol_id(), kAlive, "hb_p.alive"));
  env_.set_timer(cfg_.period, [this]() { beat(); });
}

void HeartbeatP::check() {
  const TimeUs now = env_.now();
  for (ProcessId q = 0; q < env_.n(); ++q) {
    if (q == env_.self()) continue;
    const auto i = static_cast<std::size_t>(q);
    if (!suspected_.contains(q) && now - last_heard_[i] > timeout_[i]) {
      suspected_.add(q);
      env_.record(EventType::kSuspect, q);
      env_.trace("hb_p.suspect", "p" + std::to_string(q));
    }
  }
  env_.set_timer(cfg_.period / 2, [this]() { check(); });
}

void HeartbeatP::on_message(const Message& m) {
  if (m.type != kAlive) return;
  const auto i = static_cast<std::size_t>(m.src);
  last_heard_[i] = env_.now();
  if (suspected_.contains(m.src)) {
    // Premature suspicion: retract and widen the timeout so this pair
    // eventually stops making mistakes (eventual strong accuracy).
    suspected_.remove(m.src);
    timeout_[i] += cfg_.timeout_increment;
    env_.record(EventType::kUnsuspect, m.src);
    env_.trace("hb_p.unsuspect", "p" + std::to_string(m.src));
  }
}

}  // namespace ecfd::fd
