#pragma once

#include "net/process_set.hpp"

/// \file oracle.hpp
/// Failure-detector query interfaces (Section 2.1).
///
/// A distributed failure detector is a set of modules, one per process; a
/// process only queries its local module. These interfaces are what a local
/// module exposes:
///   * SuspectOracle  — D.suspected_p, a set of processes believed crashed
///                      (the classical Chandra-Toueg interface);
///   * LeaderOracle   — D.trusted_p, a single process believed correct
///                      (the Omega interface).
///
/// The paper's ◇C interface (both at once, with the coupling clause) is
/// core/ecfd_oracle.hpp.

namespace ecfd {

/// Local module returning a set of suspected processes.
class SuspectOracle {
 public:
  virtual ~SuspectOracle();

  /// The current set of suspected processes, D.suspected_p.
  [[nodiscard]] virtual ProcessSet suspected() const = 0;
};

/// Local module returning a trusted process.
class LeaderOracle {
 public:
  virtual ~LeaderOracle();

  /// The current trusted process, D.trusted_p.
  [[nodiscard]] virtual ProcessId trusted() const = 0;
};

}  // namespace ecfd
