#pragma once

#include <vector>

#include "fd/oracle.hpp"
#include "net/env.hpp"
#include "net/protocol_ids.hpp"

/// \file scripted_fd.hpp
/// A failure detector whose output follows a pre-programmed timeline.
///
/// Sends no messages. Used to (a) drive consensus algorithms through
/// adversarial detector behaviours (Theorem 3's worst case, E2/E6), and
/// (b) feed the ◇W→◇S / ◇S→Ω transformations with precisely controlled
/// inputs in unit tests.

namespace ecfd::fd {

class ScriptedFd final : public Protocol,
                         public SuspectOracle,
                         public LeaderOracle {
 public:
  /// Output in force from `at` until the next step.
  struct Step {
    TimeUs at{0};
    ProcessSet suspected;
    ProcessId trusted{kNoProcess};
  };

  /// Steps must be sorted by `at` ascending; the first step should be at 0
  /// (queries before the first step return it anyway).
  ScriptedFd(Env& env, std::vector<Step> steps);

  void on_message(const Message&) override {}

  [[nodiscard]] ProcessSet suspected() const override;
  [[nodiscard]] ProcessId trusted() const override;

 private:
  [[nodiscard]] const Step& current() const;

  std::vector<Step> steps_;
};

/// Builds the per-process script of a stable ◇C detector: every process
/// permanently suspects exactly \p crashed and trusts \p leader, from time
/// \p from on (before that, everyone suspects everyone else and trusts
/// itself — the maximally unhelpful start).
std::vector<ScriptedFd::Step> stable_script(int n, ProcessId self,
                                            const ProcessSet& crashed,
                                            ProcessId leader, TimeUs from);

/// Like stable_script, but after stabilization the suspected set is
/// "everyone except the leader (and self)" — a legal ◇S output whose only
/// accuracy witness is the leader. This is the adversarial detector of
/// Theorem 3: rotating-coordinator algorithms fail every round whose
/// coordinator is not the leader, while the ◇C algorithm is unaffected.
std::vector<ScriptedFd::Step> ewa_only_script(int n, ProcessId self,
                                              ProcessId leader, TimeUs from);

}  // namespace ecfd::fd
