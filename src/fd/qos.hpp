#pragma once

#include <optional>
#include <vector>

#include "fd/probe.hpp"
#include "fd/properties.hpp"

/// \file qos.hpp
/// Quality-of-service metrics for failure detectors, in the spirit of
/// Chen, Toueg, Aguilera ("On the quality of service of failure
/// detectors"). The paper's Section 4 argues its ◇C→◇P transformation
/// avoids the ring's high detection latency; these metrics quantify such
/// claims on sampled runs:
///
///   * detection time   — crash -> first sample where a given (or every)
///                        correct process suspects the victim;
///   * mistake rate     — false-suspicion episodes (a correct process
///                        becoming suspected) per second of run;
///   * mistake duration — how long such an episode lasts until retracted;
///   * query accuracy   — fraction of samples where a correct process's
///                        suspected set contains no correct process.

namespace ecfd {

struct QosReport {
  /// Per crashed process: delay (us) until EVERY correct process suspected
  /// it, measured from the crash; nullopt if never within the run.
  struct Detection {
    ProcessId victim{kNoProcess};
    TimeUs crash_at{0};
    std::optional<DurUs> all_suspect_delay;
    std::optional<DurUs> first_suspect_delay;  ///< some correct process
  };
  std::vector<Detection> detections;

  /// False-suspicion episodes: (observer, victim) both correct, victim
  /// entering observer's suspected set. Episodes are counted at sample
  /// granularity.
  int mistake_episodes{0};
  double mistakes_per_second{0};
  /// Mean duration (us) of a false-suspicion episode (closed episodes
  /// only).
  double mean_mistake_duration_us{0};

  /// Fraction of (sample, correct observer) pairs whose suspected set
  /// contained no correct process.
  double query_accuracy{1.0};
};

/// Crash events needed to anchor detection measurements.
struct CrashEvent {
  ProcessId process{kNoProcess};
  TimeUs at{0};
};

/// Computes QoS metrics from a sampled run. \p facts.correct must reflect
/// the whole run (every process in a CrashEvent is faulty).
QosReport compute_qos(const RunFacts& facts,
                      const std::vector<CrashEvent>& crashes,
                      const std::vector<FdSample>& samples);

}  // namespace ecfd
