#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

/// \file adaptive_timeout.hpp
/// QoS-adaptive heartbeat timeout source (Chen, Toueg & Aguilera, "On the
/// Quality of Service of Failure Detectors").
///
/// The static schedule in fd/heartbeat_p.hpp waits a constant Delta_p(q)
/// after the last heartbeat and widens it additively on every mistake —
/// correct, but the constant must be provisioned for the slowest link the
/// deployment will ever see, so on a WAN it either false-suspects across
/// the ocean or detects LAN crashes an order of magnitude late. Chen-style
/// estimation instead *predicts* the next heartbeat arrival from a sliding
/// window of observed arrivals and suspects only once the prediction plus
/// a safety margin alpha has passed. The margin still widens on each
/// premature suspicion (and never otherwise), so the finitely-many-
/// mistakes convergence argument of [6] is preserved — the predictor only
/// moves the baseline from a worst-case constant to the observed arrival
/// process.

namespace ecfd::fd {

/// Windowed next-heartbeat-arrival estimator with an adaptive safety
/// margin. One instance per observed peer; all state is plain integers so
/// instances are copyable and deterministic.
class ArrivalPredictor {
 public:
  struct Config {
    int window{16};                    ///< inter-arrival samples kept
    DurUs alpha{msec(20)};             ///< initial safety margin
    DurUs alpha_increment{msec(10)};   ///< widening step per mistake
    DurUs max_alpha{sec(5)};           ///< widening ceiling
    DurUs fallback_timeout{msec(30)};  ///< pre-warm-up deadline delta
    /// Mutation hook (check/mutants.hpp kFrozenMargin): a predictor that
    /// never widens keeps making the same mistake forever and loses
    /// eventual accuracy on any link whose jitter exceeds alpha.
    bool widen_on_mistake{true};
  };

  /// Aggregate predicted-vs-actual quality, exported into obs metrics.
  struct Stats {
    std::int64_t arrivals{0};
    std::int64_t predictions{0};  ///< arrivals that had a prior prediction
    std::int64_t mistakes{0};     ///< premature suspicions (note_mistake)
    std::int64_t abs_err_sum{0};  ///< sum |actual - predicted| (us)
    std::int64_t abs_err_max{0};  ///< worst |actual - predicted| (us)
  };

  /// log2 buckets of |actual - predicted|: bucket 0 counts {0}, bucket i
  /// counts [2^(i-1), 2^i) us — same convention as obs::Histogram so the
  /// export replays losslessly per bucket.
  static constexpr int kErrBuckets = 40;

  ArrivalPredictor() : ArrivalPredictor(Config{}) {}
  explicit ArrivalPredictor(Config cfg);

  /// Feeds one heartbeat arrival (local-clock timestamp).
  void observe(TimeUs arrival);

  /// Reports a premature suspicion of this peer; widens alpha (unless the
  /// mutation hook froze it).
  void note_mistake();

  /// True once two arrivals produced the first inter-arrival sample.
  [[nodiscard]] bool warmed_up() const { return count_ >= 2; }

  /// Windowed mean inter-arrival time (0 before warm-up).
  [[nodiscard]] DurUs mean_interval() const;

  /// Estimated next arrival: last arrival + mean interval (kTimeNever
  /// before warm-up).
  [[nodiscard]] TimeUs predicted_next() const;

  /// Suspicion deadline: predicted_next() + alpha once warmed up, else
  /// \p ref + fallback_timeout (ref = last heard / start of observation).
  [[nodiscard]] TimeUs deadline(TimeUs ref) const;

  [[nodiscard]] DurUs alpha() const { return alpha_; }
  [[nodiscard]] TimeUs last_arrival() const { return last_arrival_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::int64_t err_bucket(int i) const {
    return err_buckets_[static_cast<std::size_t>(i)];
  }

 private:
  Config cfg_;
  std::vector<DurUs> intervals_;  ///< ring buffer of recent inter-arrivals
  int next_{0};
  std::int64_t count_{0};  ///< arrivals observed
  TimeUs last_arrival_{0};
  DurUs alpha_;
  Stats stats_;
  std::vector<std::int64_t> err_buckets_;
};

}  // namespace ecfd::fd
