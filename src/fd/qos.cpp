#include "fd/qos.hpp"

namespace ecfd {

QosReport compute_qos(const RunFacts& facts,
                      const std::vector<CrashEvent>& crashes,
                      const std::vector<FdSample>& samples) {
  QosReport report;
  const auto correct_ids = facts.correct.members();

  auto susp_of = [&](const FdSample& s, ProcessId p)
      -> const std::optional<ProcessSet>& {
    return s.suspected[static_cast<std::size_t>(p)];
  };

  // --- detection times -------------------------------------------------
  for (const CrashEvent& c : crashes) {
    QosReport::Detection d;
    d.victim = c.process;
    d.crash_at = c.at;
    for (const FdSample& s : samples) {
      if (s.time < c.at) continue;
      bool any = false;
      bool all = true;
      for (ProcessId p : correct_ids) {
        const auto& sp = susp_of(s, p);
        const bool has = sp.has_value() && sp->contains(c.process);
        any = any || has;
        all = all && has;
      }
      if (any && !d.first_suspect_delay.has_value()) {
        d.first_suspect_delay = s.time - c.at;
      }
      if (all) {
        d.all_suspect_delay = s.time - c.at;
        break;
      }
    }
    report.detections.push_back(d);
  }

  // --- mistakes and query accuracy --------------------------------------
  // Track, per (observer, victim) pair of correct processes, the open
  // false-suspicion episode (start time).
  const int n = facts.n;
  std::vector<std::optional<TimeUs>> open(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  auto cell = [n](ProcessId obs, ProcessId vic) {
    return static_cast<std::size_t>(obs) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(vic);
  };

  std::int64_t accurate_pairs = 0;
  std::int64_t total_pairs = 0;
  double closed_duration_total = 0;
  int closed_episodes = 0;

  for (const FdSample& s : samples) {
    for (ProcessId obs : correct_ids) {
      const auto& sp = susp_of(s, obs);
      if (!sp.has_value()) continue;
      ++total_pairs;
      bool clean = true;
      for (ProcessId vic : correct_ids) {
        if (vic == obs) continue;
        const bool suspected_now = sp->contains(vic);
        if (suspected_now) clean = false;
        auto& episode = open[cell(obs, vic)];
        if (suspected_now && !episode.has_value()) {
          episode = s.time;
          ++report.mistake_episodes;
        } else if (!suspected_now && episode.has_value()) {
          closed_duration_total += static_cast<double>(s.time - *episode);
          ++closed_episodes;
          episode.reset();
        }
      }
      if (clean) ++accurate_pairs;
    }
  }

  if (total_pairs > 0) {
    report.query_accuracy =
        static_cast<double>(accurate_pairs) / static_cast<double>(total_pairs);
  }
  if (closed_episodes > 0) {
    report.mean_mistake_duration_us = closed_duration_total / closed_episodes;
  }
  if (facts.end_time > 0) {
    report.mistakes_per_second = static_cast<double>(report.mistake_episodes) /
                                 (static_cast<double>(facts.end_time) / 1e6);
  }
  return report;
}

}  // namespace ecfd
