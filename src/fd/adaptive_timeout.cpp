#include "fd/adaptive_timeout.hpp"

#include <algorithm>
#include <cassert>

namespace ecfd::fd {

namespace {

int err_bucket_of(std::int64_t v) {
  if (v <= 0) return 0;
  int b = 1;
  while (v > 1 && b < ArrivalPredictor::kErrBuckets - 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

ArrivalPredictor::ArrivalPredictor(Config cfg)
    : cfg_(cfg),
      intervals_(static_cast<std::size_t>(std::max(cfg.window, 1)), 0),
      alpha_(cfg.alpha),
      err_buckets_(kErrBuckets, 0) {
  assert(cfg.window >= 1);
}

void ArrivalPredictor::observe(TimeUs arrival) {
  ++stats_.arrivals;
  if (count_ >= 1) {
    if (warmed_up()) {
      const std::int64_t err = std::abs(arrival - predicted_next());
      ++stats_.predictions;
      stats_.abs_err_sum += err;
      stats_.abs_err_max = std::max(stats_.abs_err_max, err);
      ++err_buckets_[static_cast<std::size_t>(err_bucket_of(err))];
    }
    // A skew-stepped clock can observe time running backwards; clamp the
    // sample so the window mean stays a duration.
    const DurUs iv = std::max<DurUs>(arrival - last_arrival_, 0);
    intervals_[static_cast<std::size_t>(next_)] = iv;
    next_ = (next_ + 1) % static_cast<int>(intervals_.size());
  }
  last_arrival_ = arrival;
  ++count_;
}

void ArrivalPredictor::note_mistake() {
  ++stats_.mistakes;
  if (!cfg_.widen_on_mistake) return;
  alpha_ = std::min(alpha_ + cfg_.alpha_increment, cfg_.max_alpha);
}

DurUs ArrivalPredictor::mean_interval() const {
  const auto have = static_cast<std::size_t>(std::clamp<std::int64_t>(
      count_ - 1, 0, static_cast<std::int64_t>(intervals_.size())));
  if (have == 0) return 0;
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < have; ++i) sum += intervals_[i];
  return sum / static_cast<std::int64_t>(have);
}

TimeUs ArrivalPredictor::predicted_next() const {
  if (!warmed_up()) return kTimeNever;
  return last_arrival_ + mean_interval();
}

TimeUs ArrivalPredictor::deadline(TimeUs ref) const {
  if (!warmed_up()) return ref + cfg_.fallback_timeout;
  return predicted_next() + alpha_;
}

}  // namespace ecfd::fd
