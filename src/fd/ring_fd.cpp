#include "fd/ring_fd.hpp"

namespace ecfd::fd {

namespace {
constexpr int kQuery = 1;
constexpr int kReply = 2;
}

RingFd::RingFd(Env& env) : RingFd(env, Config{}) {}

RingFd::RingFd(Env& env, Config cfg)
    : Protocol(env, protocol_ids::kRingFd),
      cfg_(cfg),
      suspected_(env.n()),
      known_seq_(static_cast<std::size_t>(env.n()), 0),
      timeout_(static_cast<std::size_t>(env.n()), cfg.initial_timeout),
      last_heard_(static_cast<std::size_t>(env.n()), 0) {}

void RingFd::start() {
  env_.set_timer(env_.rng().range(0, cfg_.period), [this]() { poll(); });
}

ProcessId RingFd::target() const {
  const int n = env_.n();
  for (int step = 1; step < n; ++step) {
    const ProcessId q = (env_.self() + step) % n;
    if (!suspected_.contains(q)) return q;
  }
  // Everyone else suspected: keep probing the immediate successor so that a
  // totally isolated view can still recover.
  return (env_.self() + 1) % n;
}

RingFd::Body RingFd::make_body() const {
  Body b;
  b.seq = known_seq_;
  b.seq[static_cast<std::size_t>(env_.self())] = seq_;
  b.susp = suspected_;
  return b;
}

void RingFd::send_query(ProcessId to) {
  env_.send(to, Message::make(protocol_id(), kQuery, "ring.query", make_body()));
  const TimeUs sent = env_.now();
  env_.set_timer(timeout_[static_cast<std::size_t>(to)], [this, to, sent]() {
    if (last_heard_[static_cast<std::size_t>(to)] < sent &&
        !suspected_.contains(to)) {
      suspected_.add(to);
      env_.record(EventType::kSuspect, to);
      env_.trace("ring.suspect", "p" + std::to_string(to));
    }
  });
}

void RingFd::poll() {
  ++seq_;
  ++polls_;
  send_query(target());

  // Recovery poll: probe one currently suspected process occasionally, so a
  // process everyone suspects (and thus nobody targets) can still clear
  // itself directly. Timeouts of already-suspected processes don't re-arm.
  if (cfg_.recovery_every > 0 && polls_ % cfg_.recovery_every == 0 &&
      !suspected_.empty()) {
    const auto suspects = suspected_.members();
    recovery_cursor_ = (recovery_cursor_ + 1) % static_cast<int>(suspects.size());
    const ProcessId victim = suspects[static_cast<std::size_t>(recovery_cursor_)];
    env_.send(victim,
              Message::make(protocol_id(), kQuery, "ring.query", make_body()));
  }

  env_.set_timer(cfg_.period, [this]() { poll(); });
}

void RingFd::merge(const Body& body) {
  const int n = env_.n();
  for (ProcessId r = 0; r < n; ++r) {
    const auto i = static_cast<std::size_t>(r);
    if (r == env_.self()) continue;
    // Adopt a remote suspicion only when the sender knows r at least as
    // freshly as we do; otherwise it is stale news.
    if (body.susp.contains(r) && body.seq[i] >= known_seq_[i]) {
      if (!suspected_.contains(r)) {
        suspected_.add(r);
        env_.record(EventType::kSuspect, r);
        env_.trace("ring.adopt_suspect", "p" + std::to_string(r));
      }
    }
    if (body.seq[i] > known_seq_[i]) {
      known_seq_[i] = body.seq[i];
      if (suspected_.contains(r)) {
        suspected_.remove(r);
        timeout_[i] += cfg_.timeout_increment;
        env_.record(EventType::kUnsuspect, r);
        env_.trace("ring.unsuspect", "p" + std::to_string(r));
      }
    }
  }
}

void RingFd::on_message(const Message& m) {
  last_heard_[static_cast<std::size_t>(m.src)] = env_.now();
  const auto& body = m.as<Body>();
  // A message from m.src proves it alive right now: treat like a fresh
  // sequence observation even if the numeric seq already reached us via a
  // third party.
  if (suspected_.contains(m.src)) {
    suspected_.remove(m.src);
    timeout_[static_cast<std::size_t>(m.src)] += cfg_.timeout_increment;
    env_.record(EventType::kUnsuspect, m.src);
    env_.trace("ring.unsuspect", "p" + std::to_string(m.src));
  }
  merge(body);
  if (m.type == kQuery) {
    env_.send(m.src,
              Message::make(protocol_id(), kReply, "ring.reply", make_body()));
  }
}

ProcessId RingFd::trusted() const {
  const ProcessId first = suspected_.first_excluded();
  // first_excluded covers 0..n-1 and can only fail when everything is
  // suspected, which cannot include self.
  return first == kNoProcess ? env_.self() : first;
}

}  // namespace ecfd::fd
