#include "fd/stable_leader.hpp"

#include <algorithm>

namespace ecfd::fd {

StableLeader::StableLeader(Env& env) : StableLeader(env, Config{}) {}

StableLeader::StableLeader(Env& env, Config cfg)
    : Protocol(env, protocol_ids::kStableLeader),
      cfg_(cfg),
      counters_(static_cast<std::size_t>(env.n()), 0),
      last_heard_(static_cast<std::size_t>(env.n()), 0),
      timeout_(static_cast<std::size_t>(env.n()), cfg.initial_timeout) {}

void StableLeader::start() {
  env_.set_timer(env_.rng().range(0, cfg_.period), [this]() { tick(); });
}

ProcessId StableLeader::trusted() const {
  ProcessId best = 0;
  for (ProcessId q = 1; q < env_.n(); ++q) {
    if (counters_[static_cast<std::size_t>(q)] <
        counters_[static_cast<std::size_t>(best)]) {
      best = q;
    }
  }
  return best;
}

void StableLeader::tick() {
  const ProcessId leader = trusted();
  if (leader != observed_leader_) {
    ++leader_changes_;
    observed_leader_ = leader;
    env_.record(EventType::kLeaderChange, leader);
    // Fresh leader: grant a grace period so we don't instantly accuse a
    // process we were not monitoring before.
    last_heard_[static_cast<std::size_t>(leader)] = env_.now();
  }

  if (leader == env_.self()) {
    env_.broadcast(Message::make(protocol_id(), kOk, "sl.ok", counters_));
  } else {
    const auto i = static_cast<std::size_t>(leader);
    if (env_.now() - last_heard_[i] > timeout_[i]) {
      // Accuse: charge the leader and tell everyone, so counters converge.
      ++counters_[i];
      timeout_[i] += cfg_.timeout_increment;
      last_heard_[i] = env_.now();  // restart the clock for the next check
      env_.trace("sl.accuse", "p" + std::to_string(leader));
      env_.broadcast(Message::make(protocol_id(), kAccuse, "sl.accuse",
                                   counters_));
    }
  }
  env_.set_timer(cfg_.period, [this]() { tick(); });
}

void StableLeader::merge(const std::vector<std::uint64_t>& remote) {
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] = std::max(counters_[i], remote[i]);
  }
}

void StableLeader::on_message(const Message& m) {
  const auto& remote = m.as<std::vector<std::uint64_t>>();
  merge(remote);
  if (m.type == kOk) {
    last_heard_[static_cast<std::size_t>(m.src)] = env_.now();
  }
}

}  // namespace ecfd::fd
