#pragma once

#include <cstdint>
#include <vector>

#include "fd/oracle.hpp"
#include "net/env.hpp"
#include "net/protocol_ids.hpp"

/// \file ring_fd.hpp
/// Ring-based failure detection in partial synchrony, after Larrea,
/// Arévalo, Fernández (DISC'99, [15]).
///
/// Processes are arranged on a logical ring p0 -> p1 -> ... -> p{n-1} -> p0.
/// Each process polls only its current *target* — the first process after it
/// (in ring order) that it does not suspect — with a QUERY, and the target
/// answers with a REPLY. On a timeout the target is suspected and the next
/// candidate becomes the target, so the periodic cost is 2n messages
/// system-wide (one QUERY + one REPLY per process), versus n² for the
/// all-to-all heartbeat ◇P.
///
/// Suspicion information and per-process freshness counters piggyback on
/// QUERY/REPLY and travel hop-by-hop around the ring, which is why this
/// detector has the O(n)-hop crash-detection-propagation latency that
/// Section 4 of the paper contrasts with its ◇C→◇P transformation.
///
/// Mechanics of the circulated state:
///  * every process increments a local sequence number each poll period and
///    gossips the pointwise-max vector of all sequence numbers it knows;
///  * a remote suspicion of r is adopted only when the sender's knowledge
///    of r is at least as fresh as ours, and any fresher sequence number
///    for r retracts the suspicion (and widens the timeout for a local
///    mistake). Crashed processes stop advancing, so their suspicion
///    spreads and sticks; correct processes keep advancing, so false
///    suspicions are eventually washed out — yielding strong completeness
///    and (post-GST) eventual strong accuracy.
///
/// The detector also exposes the ring leader — the first non-suspected
/// process in ring order starting from p0 — which Section 3 uses to build a
/// ◇C detector from this algorithm at no extra message cost.

namespace ecfd::fd {

class RingFd final : public Protocol, public SuspectOracle, public LeaderOracle {
 public:
  struct Config {
    DurUs period{msec(10)};            ///< poll period
    DurUs initial_timeout{msec(30)};   ///< initial per-target timeout
    DurUs timeout_increment{msec(10)}; ///< widened on each false suspicion
    int recovery_every{4};  ///< every k-th poll also re-polls one suspect
  };

  explicit RingFd(Env& env);
  RingFd(Env& env, Config cfg);

  void start() override;
  void on_message(const Message& m) override;

  [[nodiscard]] ProcessSet suspected() const override { return suspected_; }

  /// First non-suspected process in ring order from p0 (§3's leader rule).
  [[nodiscard]] ProcessId trusted() const override;

  /// Current poll target (exposed for tests).
  [[nodiscard]] ProcessId target() const;

  /// The circulated QUERY/REPLY body (public so the wire codec can
  /// serialize it for the real-network transport).
  struct Body {
    std::vector<std::uint64_t> seq;
    ProcessSet susp;
  };

 private:
  void poll();
  void merge(const Body& body);
  [[nodiscard]] Body make_body() const;
  void send_query(ProcessId to);

  Config cfg_;
  ProcessSet suspected_;
  std::uint64_t seq_{1};
  std::vector<std::uint64_t> known_seq_;
  std::vector<DurUs> timeout_;
  std::vector<TimeUs> last_heard_;
  int polls_{0};
  int recovery_cursor_{0};
};

}  // namespace ecfd::fd
