#pragma once

#include <unordered_map>
#include <vector>

#include "core/ecfd_oracle.hpp"
#include "net/env.hpp"
#include "net/protocol_ids.hpp"

/// \file hier_c.hpp
/// Two-level hierarchical ◇C: the paper's flat constructions scale the
/// per-period message count as O(n²) (heartbeat ◇P) or, at best, 2(n−1)
/// (EfficientP — still all-to-one). This module composes two instances of
/// the same candidate-order Omega + alive-report machinery into a
/// hierarchy, in the spirit of the system-level-diagnosis line (Duarte et
/// al.) where a testing hierarchy makes detection cost per node sublinear:
///
///   * the universe is partitioned into contiguous *cells* of ~√n
///     processes; inside each cell the EfficientP discipline elects a cell
///     leader and builds a cell-local suspected report (O(cell) messages);
///   * the acting cell leaders run the same discipline among themselves,
///     one "process" per cell, with the *first non-suspected cell* rule
///     electing the global (top) leader (O(n/cell) messages);
///   * the top leader composes the per-cell reports into one global
///     digest — suspected set plus its own id as the trusted process —
///     and gossips it down: one beat per cell contact, re-broadcast by
///     each cell leader to its members.
///
/// Steady state per period: every process sends one intra-cell message and
/// every cell leader two more — ~2n messages total, O(n) instead of O(n²),
/// with per-peer timer state O(√n) per host (own cell plus one slot per
/// cell). All timeouts widen on retraction exactly like EfficientP's, so
/// after GST the composed digest satisfies strong completeness, eventual
/// strong accuracy, Omega permanence for the top leader, and the ◇C
/// coupling clause (a digest composed by leader L never contains L).
///
/// Liveness repair: believed per-cell contacts can go stale when leaders
/// crash on both sides of the hierarchy simultaneously. Whenever a cell is
/// suspected at the top level, messages towards it rotate through the
/// cell's members instead of the stale believed leader, so any two live
/// acting leaders eventually exchange a message and the suspicion rolls
/// back. Without rotation, two surviving leaders pointing at each other's
/// crashed predecessors would deadlock.

namespace ecfd::fd {

/// Body of the digest-carrying beats (top → cell leaders → members).
struct HierDigest {
  ProcessSet susp;
  ProcessId leader{kNoProcess};
};

class HierC final : public Protocol, public core::EcfdOracle {
 public:
  struct Config {
    DurUs period{msec(10)};
    DurUs initial_timeout{msec(30)};
    DurUs timeout_increment{msec(10)};
    /// Processes per cell; 0 = ceil(sqrt(n)).
    int cell_size{0};
    /// Mutation hook (check/mutants): the cell leader keeps electing and
    /// beating but re-propagates an eternally empty digest, so members
    /// never learn of remote (or even local) crashes. Breaks exactly
    /// fd.strong_completeness.
    bool mutate_stuck_propagation{false};
  };

  explicit HierC(Env& env);
  HierC(Env& env, Config cfg);

  void start() override;
  void on_message(const Message& m) override;

  /// The adopted global digest (never contains self).
  [[nodiscard]] ProcessSet suspected() const override { return adopted_; }

  /// The digest's composer: the current top leader as last heard.
  [[nodiscard]] ProcessId trusted() const override { return digest_leader_; }

  [[nodiscard]] bool acting_cell_leader() const { return acting_cell_leader_; }
  [[nodiscard]] bool acting_top_leader() const { return acting_top_leader_; }
  [[nodiscard]] int cell_size() const { return cell_size_; }
  [[nodiscard]] int n_cells() const { return n_cells_; }
  [[nodiscard]] int cell_of(ProcessId p) const { return p / cell_size_; }

 private:
  enum MsgType { kCellBeat = 1, kCellAlive = 2, kTopBeat = 3, kTopReport = 4 };

  [[nodiscard]] ProcessId cell_first(int d) const { return d * cell_size_; }
  [[nodiscard]] ProcessId cell_end(int d) const;
  [[nodiscard]] int cell_members(int d) const { return cell_end(d) - cell_first(d); }
  /// Offset of own-cell member \p q in the per-cell arrays.
  [[nodiscard]] std::size_t off(ProcessId q) const {
    return static_cast<std::size_t>(q - cell_first(own_cell_));
  }

  /// First own-cell member not suspected at cell level (self if none).
  [[nodiscard]] ProcessId cell_candidate() const;
  /// First cell not suspected at top level (own cell if none).
  [[nodiscard]] int top_candidate_cell() const;
  /// Where to address top-level traffic for cell \p d: the believed acting
  /// leader, or — while d is top-suspected — a rotating member (see the
  /// liveness repair note in the file comment).
  [[nodiscard]] ProcessId cell_contact(int d) const;

  void tick();
  void note_top_contact(ProcessId src);

  Config cfg_;
  int cell_size_{1};
  int n_cells_{1};
  int own_cell_{0};

  // --- intra-cell state (indexed by own-cell offset) -------------------
  ProcessSet cell_cand_susp_;  ///< candidate-order suspicions, own cell
  std::vector<TimeUs> last_beat_;
  std::vector<DurUs> beat_timeout_;
  bool acting_cell_leader_{false};

  // --- cell-leader role ------------------------------------------------
  std::vector<TimeUs> last_alive_;
  std::vector<DurUs> alive_timeout_;
  ProcessSet cell_report_;  ///< suspected members of own cell (never self)

  // --- top level (used while acting cell leader) -----------------------
  ProcessSet cell_susp_;  ///< universe = n_cells
  std::vector<TimeUs> last_cell_heard_;
  std::vector<DurUs> cell_timeout_;
  std::vector<ProcessId> believed_leader_;
  /// Last report per remote cell, lazily allocated — only cells that ever
  /// reported something nonempty occupy an entry.
  std::unordered_map<int, ProcessSet> reports_;
  bool acting_top_leader_{false};
  std::uint64_t rotate_{0};

  // --- adopted output ---------------------------------------------------
  ProcessSet top_digest_;  ///< last adopted top-level digest (leaders)
  ProcessSet adopted_;     ///< published composition, never contains self
  ProcessId digest_leader_{0};
};

}  // namespace ecfd::fd
