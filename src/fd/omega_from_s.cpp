#include "fd/omega_from_s.hpp"

#include <algorithm>

namespace ecfd::fd {

namespace {
constexpr int kCounts = 1;
}

OmegaFromS::OmegaFromS(Env& env, const SuspectOracle* input)
    : OmegaFromS(env, input, Config{}) {}

OmegaFromS::OmegaFromS(Env& env, const SuspectOracle* input, Config cfg)
    : Protocol(env, protocol_ids::kOmegaFromS),
      cfg_(cfg),
      input_(input),
      rows_(static_cast<std::size_t>(env.n()),
            std::vector<std::uint64_t>(static_cast<std::size_t>(env.n()), 0)) {}

void OmegaFromS::start() {
  env_.set_timer(env_.rng().range(0, cfg_.period), [this]() { tick(); });
}

void OmegaFromS::tick() {
  auto& mine = rows_[static_cast<std::size_t>(env_.self())];
  const ProcessSet susp = input_->suspected();
  for (ProcessId q = 0; q < env_.n(); ++q) {
    if (q != env_.self() && susp.contains(q)) {
      ++mine[static_cast<std::size_t>(q)];
    }
  }
  env_.broadcast(Message::make(protocol_id(), kCounts, "ofs.counts", mine));
  env_.set_timer(cfg_.period, [this]() { tick(); });
}

void OmegaFromS::on_message(const Message& m) {
  if (m.type != kCounts) return;
  const auto& row = m.as<std::vector<std::uint64_t>>();
  auto& known = rows_[static_cast<std::size_t>(m.src)];
  for (std::size_t i = 0; i < known.size(); ++i) {
    known[i] = std::max(known[i], row[i]);
  }
}

std::uint64_t OmegaFromS::penalty(ProcessId q) const {
  std::uint64_t total = 0;
  for (const auto& row : rows_) total += row[static_cast<std::size_t>(q)];
  return total;
}

ProcessId OmegaFromS::trusted() const {
  ProcessId best = 0;
  std::uint64_t best_penalty = penalty(0);
  for (ProcessId q = 1; q < env_.n(); ++q) {
    const std::uint64_t s = penalty(q);
    if (s < best_penalty) {
      best = q;
      best_penalty = s;
    }
  }
  return best;
}

}  // namespace ecfd::fd
