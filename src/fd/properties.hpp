#pragma once

#include <vector>

#include "fd/probe.hpp"
#include "net/process_set.hpp"
#include "sim/time.hpp"

/// \file properties.hpp
/// Evaluation of failure-detector properties (Section 1.1, Fig. 1; Property
/// 1 for Omega; Definition 1 for ◇C) over a sampled run.
///
/// Every property is of the form "there is a time after which X holds
/// permanently". On a finite run we interpret that as "there is a sample
/// index s* such that X holds at every sample >= s*", and report when the
/// suffix starts so callers can additionally require stabilization to
/// happen with margin before the run's end.

namespace ecfd {

/// Facts about a finished run that the checkers need.
struct RunFacts {
  int n{0};
  /// Processes that never crashed during the run ("correct", Section 2.1).
  ProcessSet correct;
  TimeUs end_time{0};
};

/// Result of evaluating one eventual property: whether a qualifying suffix
/// exists and the time of its first sample (kTimeNever when it does not).
struct Eventually {
  bool holds{false};
  TimeUs from{kTimeNever};
};

/// Full property report for a run.
struct FdReport {
  Eventually strong_completeness;       ///< every crashed suspected by every correct
  Eventually weak_completeness;         ///< every crashed suspected by some correct
  Eventually eventual_strong_accuracy;  ///< no correct suspected by any correct
  Eventually eventual_weak_accuracy;    ///< some correct never suspected by any correct
  ProcessId ewa_witness{kNoProcess};    ///< the witness process for EWA
  Eventually omega;                     ///< all correct trust the same correct process
  ProcessId omega_leader{kNoProcess};   ///< that process
  Eventually ecfd_coupling;             ///< trusted_p not in suspected_p (Def. 1, 3rd clause)

  /// ◇P = strong completeness + eventual strong accuracy.
  [[nodiscard]] bool is_eventually_perfect() const {
    return strong_completeness.holds && eventual_strong_accuracy.holds;
  }
  /// ◇S = strong completeness + eventual weak accuracy.
  [[nodiscard]] bool is_eventually_strong() const {
    return strong_completeness.holds && eventual_weak_accuracy.holds;
  }
  /// ◇W = weak completeness + eventual weak accuracy.
  [[nodiscard]] bool is_eventually_weak() const {
    return weak_completeness.holds && eventual_weak_accuracy.holds;
  }
  /// ◇Q = weak completeness + eventual strong accuracy.
  [[nodiscard]] bool is_eventually_quasi_perfect() const {
    return weak_completeness.holds && eventual_strong_accuracy.holds;
  }
  /// Omega (Property 1).
  [[nodiscard]] bool is_omega() const { return omega.holds; }
  /// ◇C (Definition 1): ◇S sets + Omega trusted + coupling clause.
  [[nodiscard]] bool is_eventually_consistent() const {
    return is_eventually_strong() && omega.holds && ecfd_coupling.holds;
  }

  /// Latest stabilization time over the properties making up ◇C; useful for
  /// "stabilized well before the run ended" assertions.
  [[nodiscard]] TimeUs ecfd_stable_from() const;
};

/// Evaluates all properties over the sampled timeline.
///
/// Only correct processes' outputs are consulted (the definitions quantify
/// over correct processes); samples where a correct process has no suspect
/// (resp. leader) output attached make suspicion (resp. omega) properties
/// vacuously fail, except that runs sampling only one kind of oracle simply
/// leave the other family of properties unevaluated (holds = false).
FdReport check_fd_properties(const RunFacts& facts,
                             const std::vector<FdSample>& samples);

}  // namespace ecfd
