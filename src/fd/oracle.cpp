#include "fd/oracle.hpp"

namespace ecfd {

// Out-of-line destructors anchor the vtables in this translation unit.
SuspectOracle::~SuspectOracle() = default;
LeaderOracle::~LeaderOracle() = default;

}  // namespace ecfd
