#include "fd/scripted_fd.hpp"

#include <cassert>

namespace ecfd::fd {

ScriptedFd::ScriptedFd(Env& env, std::vector<Step> steps)
    : Protocol(env, protocol_ids::kScriptedFd), steps_(std::move(steps)) {
  assert(!steps_.empty());
  for (std::size_t i = 1; i < steps_.size(); ++i) {
    assert(steps_[i - 1].at <= steps_[i].at && "script must be sorted");
  }
}

const ScriptedFd::Step& ScriptedFd::current() const {
  const TimeUs now = env_.now();
  // Latest step with at <= now; the first step if none qualifies.
  const Step* best = &steps_.front();
  for (const Step& s : steps_) {
    if (s.at <= now) best = &s;
    else break;
  }
  return *best;
}

ProcessSet ScriptedFd::suspected() const { return current().suspected; }

ProcessId ScriptedFd::trusted() const { return current().trusted; }

std::vector<ScriptedFd::Step> stable_script(int n, ProcessId self,
                                            const ProcessSet& crashed,
                                            ProcessId leader, TimeUs from) {
  std::vector<ScriptedFd::Step> steps;
  ScriptedFd::Step chaos;
  chaos.at = 0;
  chaos.suspected = ProcessSet::full(n);
  chaos.suspected.remove(self);
  chaos.trusted = self;
  steps.push_back(chaos);

  ScriptedFd::Step stable;
  stable.at = from;
  stable.suspected = crashed;
  stable.suspected.remove(self);
  stable.trusted = leader;
  steps.push_back(std::move(stable));
  return steps;
}

std::vector<ScriptedFd::Step> ewa_only_script(int n, ProcessId self,
                                              ProcessId leader, TimeUs from) {
  std::vector<ScriptedFd::Step> steps;
  ScriptedFd::Step chaos;
  chaos.at = 0;
  chaos.suspected = ProcessSet::full(n);
  chaos.suspected.remove(self);
  chaos.trusted = self;
  steps.push_back(chaos);

  ScriptedFd::Step stable;
  stable.at = from;
  stable.suspected = ProcessSet::full(n);
  stable.suspected.remove(self);
  stable.suspected.remove(leader);
  stable.trusted = leader;
  steps.push_back(std::move(stable));
  return steps;
}

}  // namespace ecfd::fd
