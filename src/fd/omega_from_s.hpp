#pragma once

#include <cstdint>
#include <vector>

#include "fd/oracle.hpp"
#include "net/env.hpp"
#include "net/protocol_ids.hpp"

/// \file omega_from_s.hpp
/// Asynchronous reduction of a ◇S (or ◇W) detector to Omega, in the style
/// of Chandra-Hadzilacos-Toueg [5] and Chu [7] (Section 3 of the paper).
///
/// Each process accumulates, per target q, a penalty counter that grows
/// while the local input detector suspects q, and gossips its counter row
/// to everyone each period. The trusted process is the one minimizing
/// (total penalty, id). A process that is eventually never suspected stops
/// accumulating penalty anywhere, while every other process's penalty grows
/// without bound, so all correct processes converge to the same correct
/// leader — using no timing assumptions whatsoever.
///
/// As the paper notes, this generality costs Θ(n²) periodic messages,
/// which motivates the cheap ring/leader-candidate routes to ◇C.

namespace ecfd::fd {

class OmegaFromS final : public Protocol, public LeaderOracle {
 public:
  struct Config {
    DurUs period{msec(10)};
  };

  /// \p input is this process's local ◇S module (not owned; must outlive).
  OmegaFromS(Env& env, const SuspectOracle* input);
  OmegaFromS(Env& env, const SuspectOracle* input, Config cfg);

  void start() override;
  void on_message(const Message& m) override;

  [[nodiscard]] ProcessId trusted() const override;

  /// Total penalty of q across all known rows (exposed for tests).
  [[nodiscard]] std::uint64_t penalty(ProcessId q) const;

 private:
  void tick();

  Config cfg_;
  const SuspectOracle* input_;
  /// rows_[r][q]: penalty process r has charged q, as far as we know.
  std::vector<std::vector<std::uint64_t>> rows_;
};

}  // namespace ecfd::fd
