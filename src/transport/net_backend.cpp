#include "transport/dgram_env.hpp"
#include "transport/socket_env.hpp"
#if defined(ECFD_URING)
#include "transport/uring_env.hpp"
#endif

/// \file net_backend.cpp
/// The backend factory: the only place that knows both DgramEnv
/// subclasses exist. Requesting uring is always safe — compiled out,
/// kernel too old, seccomp-filtered, or ECFD_URING_DISABLE all degrade to
/// the poll backend with an explanatory note instead of failing, so a
/// fleet config can say `backend = uring` and heterogeneous hosts do the
/// right thing.

namespace ecfd::transport {

std::unique_ptr<DgramEnv> make_net_env(Backend requested,
                                       DgramEnv::Options opts,
                                       std::string* error,
                                       std::string* note) {
  if (requested == Backend::kUring) {
#if defined(ECFD_URING)
    auto env = std::make_unique<UringEnv>(opts);
    std::string uring_error;
    if (env->open(&uring_error)) return env;
    if (note) {
      *note = "io_uring unavailable (" + uring_error + "); using poll backend";
    }
#else
    if (note) {
      *note = "io_uring backend compiled out (ECFD_URING=OFF); "
              "using poll backend";
    }
#endif
  }
  auto env = std::make_unique<SocketEnv>(std::move(opts));
  if (!env->open(error)) return nullptr;
  return env;
}

}  // namespace ecfd::transport
