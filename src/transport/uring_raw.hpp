#pragma once

/// \file uring_raw.hpp
/// A minimal io_uring shim: raw syscalls + ring mmap, no liburing.
///
/// The container bakes in the kernel UAPI header (<linux/io_uring.h>) but
/// not the userspace library, so UringEnv talks to the kernel directly.
/// This header owns exactly the mechanical part liburing would: the three
/// syscalls, mapping the SQ/CQ rings and SQE array, and the acquire /
/// release fences the shared-ring protocol requires (kernel-written
/// indices are load-acquire, our indices store-release). Everything with
/// a policy in it — buffer rings, multishot arming, completion routing —
/// stays in uring_env.cpp where it can be read next to the event loop.
///
/// Single-threaded by design, like the env it serves: one submitter, one
/// reaper, no SQPOLL.

#include <linux/io_uring.h>
#include <linux/time_types.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>

#ifndef __NR_io_uring_setup
#define __NR_io_uring_setup 425
#endif
#ifndef __NR_io_uring_enter
#define __NR_io_uring_enter 426
#endif
#ifndef __NR_io_uring_register
#define __NR_io_uring_register 427
#endif

namespace ecfd::transport::uring {

inline int sys_setup(unsigned entries, io_uring_params* p) {
  const long r = ::syscall(__NR_io_uring_setup, entries, p);
  return r < 0 ? -errno : static_cast<int>(r);
}

inline int sys_enter(int fd, unsigned to_submit, unsigned min_complete,
                     unsigned flags, const void* arg, std::size_t argsz) {
  const long r = ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete,
                           flags, arg, argsz);
  return r < 0 ? -errno : static_cast<int>(r);
}

inline int sys_register(int fd, unsigned opcode, const void* arg,
                        unsigned nr_args) {
  const long r = ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args);
  return r < 0 ? -errno : static_cast<int>(r);
}

/// One mapped io_uring instance. init() → get_sqe()/advance_sq() →
/// submit()/submit_and_wait() → peek_cqe()/seen_cqe().
class Ring {
 public:
  Ring() = default;
  ~Ring() { close(); }
  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  bool init(unsigned entries, std::string* error) {
    io_uring_params p{};
    ring_fd_ = sys_setup(entries, &p);
    if (ring_fd_ < 0) {
      if (error) {
        *error = std::string("io_uring_setup: ") + std::strerror(-ring_fd_);
      }
      ring_fd_ = -1;
      return false;
    }
    features_ = p.features;

    sq_mmap_sz_ = p.sq_off.array + p.sq_entries * sizeof(std::uint32_t);
    cq_mmap_sz_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    if ((p.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      sq_mmap_sz_ = cq_mmap_sz_ = std::max(sq_mmap_sz_, cq_mmap_sz_);
    }
    sq_mmap_ = ::mmap(nullptr, sq_mmap_sz_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_mmap_ == MAP_FAILED) return fail(error, "mmap(sq ring)");
    if ((p.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      cq_mmap_ = sq_mmap_;
    } else {
      cq_mmap_ = ::mmap(nullptr, cq_mmap_sz_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_,
                        IORING_OFF_CQ_RING);
      if (cq_mmap_ == MAP_FAILED) return fail(error, "mmap(cq ring)");
    }
    sqe_mmap_sz_ = p.sq_entries * sizeof(io_uring_sqe);
    sqe_mmap_ = ::mmap(nullptr, sqe_mmap_sz_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqe_mmap_ == MAP_FAILED) return fail(error, "mmap(sqes)");

    auto* sq = static_cast<std::uint8_t*>(sq_mmap_);
    sq_head_ = reinterpret_cast<std::uint32_t*>(sq + p.sq_off.head);
    sq_tail_ = reinterpret_cast<std::uint32_t*>(sq + p.sq_off.tail);
    sq_mask_ = *reinterpret_cast<std::uint32_t*>(sq + p.sq_off.ring_mask);
    sq_entries_ = p.sq_entries;
    sq_array_ = reinterpret_cast<std::uint32_t*>(sq + p.sq_off.array);
    sqes_ = static_cast<io_uring_sqe*>(sqe_mmap_);

    auto* cq = static_cast<std::uint8_t*>(cq_mmap_);
    cq_head_ = reinterpret_cast<std::uint32_t*>(cq + p.cq_off.head);
    cq_tail_ = reinterpret_cast<std::uint32_t*>(cq + p.cq_off.tail);
    cq_mask_ = *reinterpret_cast<std::uint32_t*>(cq + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);

    sq_tail_local_ = *sq_tail_;
    cq_head_local_ = *cq_head_;
    return true;
  }

  void close() {
    if (sqe_mmap_ != nullptr) ::munmap(sqe_mmap_, sqe_mmap_sz_);
    if (cq_mmap_ != nullptr && cq_mmap_ != sq_mmap_) {
      ::munmap(cq_mmap_, cq_mmap_sz_);
    }
    if (sq_mmap_ != nullptr) ::munmap(sq_mmap_, sq_mmap_sz_);
    sq_mmap_ = cq_mmap_ = sqe_mmap_ = nullptr;
    if (ring_fd_ >= 0) ::close(ring_fd_);
    ring_fd_ = -1;
  }

  [[nodiscard]] int fd() const { return ring_fd_; }
  [[nodiscard]] unsigned features() const { return features_; }
  [[nodiscard]] unsigned sq_space() const {
    return sq_entries_ -
           (sq_tail_local_ - __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE));
  }

  /// A zeroed SQE to fill in, or nullptr when the SQ is full (submit and
  /// reap, then retry).
  io_uring_sqe* get_sqe() {
    if (sq_space() == 0) return nullptr;
    io_uring_sqe* sqe = &sqes_[sq_tail_local_ & sq_mask_];
    std::memset(sqe, 0, sizeof(*sqe));
    return sqe;
  }

  /// Publishes the SQE last returned by get_sqe().
  void advance_sq() {
    sq_array_[sq_tail_local_ & sq_mask_] = sq_tail_local_ & sq_mask_;
    ++sq_tail_local_;
    __atomic_store_n(sq_tail_, sq_tail_local_, __ATOMIC_RELEASE);
    ++to_submit_;
  }

  /// One io_uring_enter covering everything published since the last
  /// submit; returns 0 or a negative errno (-ETIME on wait timeout).
  int submit() { return enter(0, nullptr); }

  /// Submit + block for at least one CQE, up to \p ts (nullptr = forever).
  /// Requires IORING_FEAT_EXT_ARG for the timeout form.
  int submit_and_wait(const __kernel_timespec* ts) { return enter(1, ts); }

  /// The next unseen CQE, or nullptr when the CQ is drained.
  io_uring_cqe* peek_cqe() {
    if (cq_head_local_ == __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE)) {
      return nullptr;
    }
    return &cqes_[cq_head_local_ & cq_mask_];
  }

  /// Consumes the CQE last returned by peek_cqe().
  void seen_cqe() {
    ++cq_head_local_;
    __atomic_store_n(cq_head_, cq_head_local_, __ATOMIC_RELEASE);
  }

 private:
  bool fail(std::string* error, const char* what) {
    if (error) *error = std::string(what) + ": " + std::strerror(errno);
    close();
    return false;
  }

  int enter(unsigned min_complete, const __kernel_timespec* ts) {
    unsigned flags = 0;
    io_uring_getevents_arg arg{};
    const void* argp = nullptr;
    std::size_t argsz = 0;
    if (min_complete > 0) {
      flags |= IORING_ENTER_GETEVENTS;
      if (ts != nullptr) {
        flags |= IORING_ENTER_EXT_ARG;
        arg.ts = reinterpret_cast<std::uint64_t>(ts);
        argp = &arg;
        argsz = sizeof(arg);
      }
    }
    const int r = sys_enter(ring_fd_, to_submit_, min_complete, flags, argp,
                            argsz);
    if (r >= 0) {
      to_submit_ -= static_cast<unsigned>(r) > to_submit_
                        ? to_submit_
                        : static_cast<unsigned>(r);
      return 0;
    }
    // -ETIME is a successful timed wait; the submissions still went in.
    if (r == -ETIME) {
      to_submit_ = 0;
      return r;
    }
    return r;
  }

  int ring_fd_{-1};
  unsigned features_{0};

  void* sq_mmap_{nullptr};
  void* cq_mmap_{nullptr};
  void* sqe_mmap_{nullptr};
  std::size_t sq_mmap_sz_{0};
  std::size_t cq_mmap_sz_{0};
  std::size_t sqe_mmap_sz_{0};

  std::uint32_t* sq_head_{nullptr};
  std::uint32_t* sq_tail_{nullptr};
  std::uint32_t sq_mask_{0};
  std::uint32_t sq_entries_{0};
  std::uint32_t* sq_array_{nullptr};
  io_uring_sqe* sqes_{nullptr};
  std::uint32_t sq_tail_local_{0};
  unsigned to_submit_{0};

  std::uint32_t* cq_head_{nullptr};
  std::uint32_t* cq_tail_{nullptr};
  std::uint32_t cq_mask_{0};
  io_uring_cqe* cqes_{nullptr};
  std::uint32_t cq_head_local_{0};
};

}  // namespace ecfd::transport::uring
