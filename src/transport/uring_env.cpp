#include "transport/uring_env.hpp"

#include <netinet/in.h>
#include <sys/mman.h>
#include <sys/socket.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "wire/codec.hpp"

namespace ecfd::transport {

namespace {

/// Marks the multishot receive's CQEs; send CQEs carry their slot index.
constexpr std::uint64_t kRecvUserData = ~0ULL;

std::uint32_t round_pow2(std::uint32_t v, std::uint32_t lo, std::uint32_t hi) {
  std::uint32_t p = lo;
  while (p < v && p < hi) p <<= 1;
  return p;
}

}  // namespace

UringEnv::~UringEnv() {
  // The kernel releases the registered pbuf ring with the ring fd (closed
  // by the Ring member's destructor); only our mapping remains to drop.
  if (buf_ring_ != nullptr) ::munmap(buf_ring_, buf_ring_bytes_);
}

bool UringEnv::wire_init(std::string* error) {
  const auto fail = [&](const std::string& reason) {
    if (error) *error = reason;
    if (buf_ring_ != nullptr) {
      ::munmap(buf_ring_, buf_ring_bytes_);
      buf_ring_ = nullptr;
    }
    ring_.close();
    return false;
  };

  // The CI fallback smoke (and any operator who wants the poll backend
  // without a rebuild) forces the "kernel without io_uring" path here.
  if (std::getenv("ECFD_URING_DISABLE") != nullptr) {
    return fail("disabled via ECFD_URING_DISABLE");
  }

  const std::uint32_t depth = round_pow2(
      static_cast<std::uint32_t>(options().net.uring_depth), 16, 4096);
  std::string ring_error;
  if (!ring_.init(depth, &ring_error)) return fail(ring_error);
  if ((ring_.features() & IORING_FEAT_EXT_ARG) == 0) {
    return fail("kernel lacks IORING_FEAT_EXT_ARG (pre-5.11)");
  }

  if (!setup_buf_ring(error)) {
    const std::string reason = error ? *error : "pbuf ring setup failed";
    return fail(reason);
  }

  slots_.resize(depth);
  free_slots_.clear();
  free_slots_.reserve(depth);
  for (std::size_t i = depth; i > 0; --i) free_slots_.push_back(i - 1);

  std::string arm_error;
  if (!arm_recv(&arm_error)) return fail(arm_error);
  const int r = ring_.submit();
  if (r < 0) {
    return fail(std::string("io_uring_enter(submit recv): ") +
                std::strerror(-r));
  }
  return true;
}

bool UringEnv::setup_buf_ring(std::string* error) {
  buf_count_ = round_pow2(
      static_cast<std::uint32_t>(options().net.uring_recv_buffers), 8, 32768);
  // Each provided buffer holds the recvmsg completion header, the space
  // the template msghdr reserves for the source address, then the payload.
  buf_size_ = sizeof(io_uring_recvmsg_out) + sizeof(sockaddr_in) +
              wire::kMaxFrameBytes;

  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  buf_ring_bytes_ = buf_count_ * sizeof(io_uring_buf);
  buf_ring_bytes_ = (buf_ring_bytes_ + page - 1) & ~(page - 1);
  void* mem = ::mmap(nullptr, buf_ring_bytes_, PROT_READ | PROT_WRITE,
                     MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
  if (mem == MAP_FAILED) {
    if (error) *error = std::string("mmap(pbuf ring): ") + std::strerror(errno);
    return false;
  }
  buf_ring_ = static_cast<io_uring_buf_ring*>(mem);

  io_uring_buf_reg reg{};
  reg.ring_addr = reinterpret_cast<std::uint64_t>(buf_ring_);
  reg.ring_entries = buf_count_;
  reg.bgid = 0;
  const int r =
      uring::sys_register(ring_.fd(), IORING_REGISTER_PBUF_RING, &reg, 1);
  if (r < 0) {
    if (error) {
      *error = std::string("IORING_REGISTER_PBUF_RING: ") + std::strerror(-r);
    }
    ::munmap(buf_ring_, buf_ring_bytes_);
    buf_ring_ = nullptr;
    return false;
  }

  recv_bufs_.resize(static_cast<std::size_t>(buf_count_) * buf_size_);
  buf_ring_tail_ = 0;
  for (std::uint32_t bid = 0; bid < buf_count_; ++bid) {
    recycle_buffer(static_cast<std::uint16_t>(bid));
  }
  return true;
}

void UringEnv::recycle_buffer(std::uint16_t bid) {
  // NOT buf_ring_->bufs: the UAPI declares the entry array with
  // __DECLARE_FLEX_ARRAY, whose C++ expansion wraps it in a struct with a
  // (one-byte, padded-to-eight) empty member, shifting `bufs` to offset 8.
  // The kernel reads entries at offset 0, where the union overlays them.
  auto* entries = reinterpret_cast<io_uring_buf*>(buf_ring_);
  io_uring_buf& e =
      entries[buf_ring_tail_ & static_cast<std::uint16_t>(buf_count_ - 1)];
  e.addr = reinterpret_cast<std::uint64_t>(recv_buf(bid));
  e.len = static_cast<std::uint32_t>(buf_size_);
  e.bid = bid;
  ++buf_ring_tail_;
  __atomic_store_n(&buf_ring_->tail, buf_ring_tail_, __ATOMIC_RELEASE);
}

bool UringEnv::arm_recv(std::string* error) {
  io_uring_sqe* sqe = ring_.get_sqe();
  if (sqe == nullptr) {
    // SQ momentarily full: stay unarmed; process_cqes() retries after the
    // next submit drains the queue. Only fatal during wire_init (where
    // the SQ is empty, so this branch cannot trigger).
    if (error) *error = "submission queue full";
    return false;
  }
  std::memset(&recv_template_, 0, sizeof(recv_template_));
  recv_template_.msg_namelen = sizeof(sockaddr_in);
  sqe->opcode = IORING_OP_RECVMSG;
  sqe->fd = sock_fd();
  sqe->addr = reinterpret_cast<std::uint64_t>(&recv_template_);
  sqe->len = 1;
  sqe->ioprio = IORING_RECV_MULTISHOT;
  sqe->flags = IOSQE_BUFFER_SELECT;
  sqe->buf_group = 0;
  sqe->user_data = kRecvUserData;
  ring_.advance_sq();
  recv_armed_ = true;
  return true;
}

io_uring_sqe* UringEnv::get_sqe_blocking() {
  io_uring_sqe* sqe = ring_.get_sqe();
  while (sqe == nullptr) {
    // Submitting hands the queued SQEs to the kernel and frees SQ space;
    // -EBUSY means the CQ overflowed first, so reap before retrying.
    if (ring_.submit() == -EBUSY) {
      __kernel_timespec ts{0, 1000000};  // 1ms
      ring_.submit_and_wait(&ts);
    }
    process_cqes();
    sqe = ring_.get_sqe();
  }
  return sqe;
}

std::size_t UringEnv::acquire_slot() {
  while (free_slots_.empty()) {
    // Every in-flight sendmsg owes a CQE; wait for one to come back.
    __kernel_timespec ts{1, 0};
    ring_.submit_and_wait(&ts);
    process_cqes();
  }
  const std::size_t idx = free_slots_.back();
  free_slots_.pop_back();
  return idx;
}

void UringEnv::wire_flush(std::vector<Datagram> out) {
  if (out.empty()) return;
  const bool batched = out.size() >= 2;
  for (auto& d : out) {
    const std::size_t idx = acquire_slot();
    SendSlot& s = slots_[idx];
    s.bytes = std::move(d.bytes);
    s.dst = d.dst;
    s.frames = d.frames;
    s.batched = batched;
    const auto& sa = d.addr.empty() ? peer_sockaddr(d.dst) : d.addr;
    std::memset(&s.addr, 0, sizeof(s.addr));
    std::memcpy(&s.addr, sa.data(), std::min(sizeof(s.addr), sa.size()));
    s.iov.iov_base = s.bytes.data();
    s.iov.iov_len = s.bytes.size();
    std::memset(&s.msg, 0, sizeof(s.msg));
    s.msg.msg_name = &s.addr;
    s.msg.msg_namelen = sizeof(s.addr);
    s.msg.msg_iov = &s.iov;
    s.msg.msg_iovlen = 1;

    io_uring_sqe* sqe = get_sqe_blocking();
    sqe->opcode = IORING_OP_SENDMSG;
    sqe->fd = sock_fd();
    sqe->addr = reinterpret_cast<std::uint64_t>(&s.msg);
    sqe->len = 1;
    sqe->user_data = idx;
    ring_.advance_sq();
    ++inflight_sends_;
  }
  send_batch_hist().observe(static_cast<std::int64_t>(out.size()));
  // The whole tick's datagrams leave on this one enter; completions are
  // reaped opportunistically on the next wait.
  ring_.submit();
}

void UringEnv::handle_recv_cqe(const io_uring_cqe& cqe) {
  if (cqe.res < 0) {
    // -ENOBUFS: all provided buffers were in flight. They recycle as
    // their CQEs are consumed; the re-arm at the end of process_cqes()
    // is the whole recovery.
    return;
  }
  if ((cqe.flags & IORING_CQE_F_BUFFER) == 0) return;
  const auto bid =
      static_cast<std::uint16_t>(cqe.flags >> IORING_CQE_BUFFER_SHIFT);
  std::uint8_t* buf = recv_buf(bid);
  const auto len = static_cast<std::size_t>(cqe.res);

  // Buffer layout (io_uring multishot recvmsg): completion header, then
  // msg_namelen bytes of source address, then the datagram payload.
  io_uring_recvmsg_out out{};
  if (len >= sizeof(out)) {
    std::memcpy(&out, buf, sizeof(out));
    const std::size_t payload_off = sizeof(out) + recv_template_.msg_namelen +
                                    recv_template_.msg_controllen;
    if ((out.flags & MSG_TRUNC) == 0 && out.namelen >= sizeof(sockaddr_in) &&
        payload_off + out.payloadlen <= len) {
      sockaddr_in from{};
      std::memcpy(&from, buf + sizeof(out), sizeof(from));
      on_datagram(buf + payload_off, out.payloadlen,
                  pack_external_token(ntohl(from.sin_addr.s_addr),
                                      ntohs(from.sin_port)));
    } else {
      metrics().add("net.decode_error");
    }
  } else {
    metrics().add("net.decode_error");
  }
  recycle_buffer(bid);
}

void UringEnv::process_cqes() {
  int received = 0;
  while (io_uring_cqe* cqe = ring_.peek_cqe()) {
    if (cqe->user_data == kRecvUserData) {
      if ((cqe->flags & IORING_CQE_F_MORE) == 0) recv_armed_ = false;
      if (cqe->res >= 0 && (cqe->flags & IORING_CQE_F_BUFFER) != 0) {
        ++received;
      }
      handle_recv_cqe(*cqe);
    } else {
      SendSlot& s = slots_[cqe->user_data];
      if (cqe->res < 0) {
        note_send_error();
      } else {
        note_dgram_sent(Datagram{s.dst, s.frames, {}, {}}, s.batched);
      }
      s.bytes.clear();
      s.bytes.shrink_to_fit();
      free_slots_.push_back(cqe->user_data);
      --inflight_sends_;
    }
    ring_.seen_cqe();
  }
  if (received > 0) recv_batch_hist().observe(received);
  // The kernel retires a multishot on transient error or buffer
  // starvation; re-arm so the socket never goes deaf.
  if (!recv_armed_) arm_recv(nullptr);
}

void UringEnv::wire_wait(DurUs max_wait) {
  process_cqes();
  if (max_wait < 0) max_wait = 0;
  __kernel_timespec ts{};
  ts.tv_sec = max_wait / 1000000;
  ts.tv_nsec = (max_wait % 1000000) * 1000;
  ring_.submit_and_wait(&ts);
  process_cqes();
}

}  // namespace ecfd::transport
