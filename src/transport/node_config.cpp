#include "transport/node_config.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace ecfd::transport {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool fail(std::string* error, const std::string& reason) {
  if (error) *error = reason;
  return false;
}

bool parse_i64(const std::string& s, std::int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_f64(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_bool(const std::string& s, bool* out) {
  if (s == "true" || s == "1" || s == "yes" || s == "on") {
    *out = true;
    return true;
  }
  if (s == "false" || s == "0" || s == "no" || s == "off") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

std::optional<PeerAddr> parse_peer_addr(const std::string& s) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0) return std::nullopt;
  PeerAddr a;
  a.host = trim(s.substr(0, colon));
  std::int64_t port = 0;
  if (a.host.empty() || !parse_i64(trim(s.substr(colon + 1)), &port) ||
      port < 1 || port > 65535) {
    return std::nullopt;
  }
  a.port = static_cast<std::uint16_t>(port);
  return a;
}

std::optional<NodeConfig> parse_node_config(const std::string& text,
                                            std::string* error) {
  NodeConfig cfg;
  std::map<int, PeerAddr> peers;

  std::istringstream in(text);
  std::string raw;
  std::string section;
  int lineno = 0;

  const auto bad = [&](const std::string& why) -> std::optional<NodeConfig> {
    fail(error, "config line " + std::to_string(lineno) + ": " + why);
    return std::nullopt;
  };

  while (std::getline(in, raw)) {
    ++lineno;
    // Strip comments ('#' or ';' anywhere outside values we care about —
    // hosts and numbers never contain those characters).
    const auto hash = raw.find_first_of("#;");
    std::string line = trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') return bad("unterminated section header");
      section = trim(line.substr(1, line.size() - 2));
      if (section != "cluster" && section != "peers" && section != "chaos" &&
          section != "net" && section != "kv") {
        return bad("unknown section [" + section + "]");
      }
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) return bad("expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) return bad("empty key or value");

    if (section == "peers") {
      std::int64_t id = 0;
      if (!parse_i64(key, &id) || id < 0 || id > 4096) {
        return bad("bad peer id '" + key + "'");
      }
      const auto addr = parse_peer_addr(value);
      if (!addr) return bad("bad peer address '" + value + "'");
      if (!peers.emplace(static_cast<int>(id), *addr).second) {
        return bad("duplicate peer id " + key);
      }
    } else if (section == "cluster") {
      std::int64_t i = 0;
      if (key == "seed") {
        if (!parse_i64(value, &i) || i < 0) return bad("bad seed");
        cfg.seed = static_cast<std::uint64_t>(i);
      } else if (key == "fd") {
        cfg.fd = value;
      } else if (key == "consensus") {
        if (!parse_bool(value, &cfg.consensus)) return bad("bad consensus flag");
      } else if (key == "period_ms") {
        if (!parse_i64(value, &i) || i <= 0) return bad("bad period_ms");
        cfg.period = msec(i);
      } else if (key == "initial_timeout_ms") {
        if (!parse_i64(value, &i) || i <= 0) return bad("bad initial_timeout_ms");
        cfg.initial_timeout = msec(i);
      } else if (key == "timeout_increment_ms") {
        if (!parse_i64(value, &i) || i < 0) return bad("bad timeout_increment_ms");
        cfg.timeout_increment = msec(i);
      } else if (key == "backend") {
        if (value != "poll" && value != "uring") {
          return bad("backend must be 'poll' or 'uring'");
        }
        cfg.backend = value;
      } else {
        return bad("unknown [cluster] key '" + key + "'");
      }
    } else if (section == "chaos") {
      std::int64_t i = 0;
      if (key == "loss") {
        if (!parse_f64(value, &cfg.loss) || cfg.loss < 0.0 || cfg.loss >= 1.0) {
          return bad("loss must be in [0,1)");
        }
      } else if (key == "min_delay_ms") {
        if (!parse_i64(value, &i) || i < 0) return bad("bad min_delay_ms");
        cfg.min_delay = msec(i);
      } else if (key == "max_delay_ms") {
        if (!parse_i64(value, &i) || i < 0) return bad("bad max_delay_ms");
        cfg.max_delay = msec(i);
      } else {
        return bad("unknown [chaos] key '" + key + "'");
      }
    } else if (section == "net") {
      std::int64_t i = 0;
      if (key == "coalesce") {
        if (!parse_bool(value, &cfg.net_coalesce)) return bad("bad coalesce");
      } else if (key == "max_envelope_frames") {
        if (!parse_i64(value, &i) || i < 2 || i > 256) {
          return bad("max_envelope_frames must be in 2..256");
        }
        cfg.net_max_envelope_frames = static_cast<int>(i);
      } else if (key == "max_envelope_bytes") {
        if (!parse_i64(value, &i) || i < 256 || i > 65536) {
          return bad("max_envelope_bytes must be in 256..65536");
        }
        cfg.net_max_envelope_bytes = static_cast<int>(i);
      } else if (key == "flush_delay_us") {
        if (!parse_i64(value, &i) || i < 0 || i > 1000000) {
          return bad("flush_delay_us must be in 0..1000000");
        }
        cfg.net_flush_delay = i;
      } else if (key == "send_batch") {
        if (!parse_i64(value, &i) || i < 1 || i > 1024) {
          return bad("send_batch must be in 1..1024");
        }
        cfg.net_send_batch = static_cast<int>(i);
      } else if (key == "recv_batch") {
        if (!parse_i64(value, &i) || i < 1 || i > 1024) {
          return bad("recv_batch must be in 1..1024");
        }
        cfg.net_recv_batch = static_cast<int>(i);
      } else if (key == "mmsg") {
        if (!parse_bool(value, &cfg.net_mmsg)) return bad("bad mmsg flag");
      } else {
        return bad("unknown [net] key '" + key + "'");
      }
    } else if (section == "kv") {
      std::int64_t i = 0;
      if (key == "enabled") {
        if (!parse_bool(value, &cfg.kv_enabled)) return bad("bad kv enabled");
      } else if (key == "capacity") {
        if (!parse_i64(value, &i) || i <= 0 || i > (1 << 20)) {
          return bad("bad kv capacity");
        }
        cfg.kv_capacity = static_cast<int>(i);
      } else if (key == "pipeline_depth") {
        if (!parse_i64(value, &i) || i <= 0 || i > 256) {
          return bad("bad kv pipeline_depth");
        }
        cfg.kv_pipeline_depth = static_cast<int>(i);
      } else if (key == "batch_max_ops") {
        if (!parse_i64(value, &i) || i <= 0 || i > 448) {
          return bad("bad kv batch_max_ops (1..448)");
        }
        cfg.kv_batch_max_ops = static_cast<int>(i);
      } else if (key == "batch_wait_ms") {
        if (!parse_i64(value, &i) || i < 0) return bad("bad kv batch_wait_ms");
        cfg.kv_batch_wait = msec(i);
      } else if (key == "lease_establish_ms") {
        if (!parse_i64(value, &i) || i < 0) {
          return bad("bad kv lease_establish_ms");
        }
        cfg.kv_lease_establish = msec(i);
      } else if (key == "snapshot_every") {
        if (!parse_i64(value, &i) || i < 0) return bad("bad kv snapshot_every");
        cfg.kv_snapshot_every = static_cast<int>(i);
      } else if (key == "dedup_window") {
        if (!parse_i64(value, &i) || i <= 0 || i > 4096) {
          return bad("bad kv dedup_window");
        }
        cfg.kv_dedup_window = static_cast<int>(i);
      } else {
        return bad("unknown [kv] key '" + key + "'");
      }
    } else {
      return bad("key outside any section");
    }
  }

  if (peers.empty()) {
    fail(error, "config has no [peers]");
    return std::nullopt;
  }
  // Peer ids must be the contiguous range 0..n-1 (they are ProcessIds).
  const int n = static_cast<int>(peers.size());
  for (int p = 0; p < n; ++p) {
    const auto it = peers.find(p);
    if (it == peers.end()) {
      fail(error, "peer table must cover ids 0.." + std::to_string(n - 1) +
                      " contiguously (missing " + std::to_string(p) + ")");
      return std::nullopt;
    }
    cfg.peers.push_back(it->second);
  }
  if (cfg.max_delay < cfg.min_delay) {
    fail(error, "chaos max_delay_ms < min_delay_ms");
    return std::nullopt;
  }
  return cfg;
}

std::optional<NodeConfig> load_node_config(const std::string& path,
                                           std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open config file: " + path);
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_node_config(text.str(), error);
}

}  // namespace ecfd::transport
