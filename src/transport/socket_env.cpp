#include "transport/socket_env.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "wire/codec.hpp"

namespace ecfd::transport {

bool SocketEnv::wire_init(std::string* error) {
  (void)error;  // plain sockets: nothing beyond the base's bind can fail
  send_batch_ = std::max<std::size_t>(1, options().net.send_batch);
  recv_batch_ = std::max<std::size_t>(1, options().net.recv_batch);
  use_mmsg_ = options().net.mmsg;
  return true;
}

void SocketEnv::wire_flush(std::vector<Datagram> out) {
  std::size_t done = 0;
  std::vector<mmsghdr> msgs(send_batch_);
  std::vector<iovec> iovs(send_batch_);
  while (done < out.size()) {
    const std::size_t batch = std::min(send_batch_, out.size() - done);
    if (batch >= 2 && use_mmsg_) {
      std::memset(msgs.data(), 0, batch * sizeof(mmsghdr));
      for (std::size_t i = 0; i < batch; ++i) {
        Datagram& d = out[done + i];
        auto& sa = d.addr.empty() ? peer_sockaddr(d.dst) : d.addr;
        iovs[i].iov_base = d.bytes.data();
        iovs[i].iov_len = d.bytes.size();
        msgs[i].msg_hdr.msg_iov = &iovs[i];
        msgs[i].msg_hdr.msg_iovlen = 1;
        msgs[i].msg_hdr.msg_name = const_cast<std::uint8_t*>(sa.data());
        msgs[i].msg_hdr.msg_namelen = static_cast<socklen_t>(sa.size());
      }
      const int sent =
          ::sendmmsg(sock_fd(), msgs.data(), static_cast<unsigned int>(batch),
                     0);
      if (sent > 0) {
        for (int i = 0; i < sent; ++i) {
          note_dgram_sent(out[done + static_cast<std::size_t>(i)], true);
        }
        send_batch_hist().observe(sent);
        done += static_cast<std::size_t>(sent);
        continue;
      }
      if (errno == ENOSYS || errno == EOPNOTSUPP) {
        use_mmsg_ = false;  // kernel without sendmmsg: per-datagram path
        continue;
      }
      // UDP is lossy by contract; ENOBUFS etc. just drop the head datagram
      // (matching the old per-datagram behaviour) and keep making progress.
      note_send_error();
      ++done;
      continue;
    }
    const Datagram& d = out[done];
    const auto& sa = d.addr.empty() ? peer_sockaddr(d.dst) : d.addr;
    const auto sent =
        ::sendto(sock_fd(), d.bytes.data(), d.bytes.size(), 0,
                 reinterpret_cast<const sockaddr*>(sa.data()),
                 static_cast<socklen_t>(sa.size()));
    if (sent < 0) {
      note_send_error();
    } else {
      note_dgram_sent(d, false);
      send_batch_hist().observe(1);
    }
    ++done;
  }
}

void SocketEnv::drain_socket() {
  while (use_mmsg_) {
    if (recv_bufs_.size() < recv_batch_ * wire::kMaxFrameBytes) {
      recv_bufs_.resize(recv_batch_ * wire::kMaxFrameBytes);
    }
    std::vector<mmsghdr> msgs(recv_batch_);
    std::vector<iovec> iovs(recv_batch_);
    std::vector<sockaddr_in> froms(recv_batch_);
    std::memset(msgs.data(), 0, recv_batch_ * sizeof(mmsghdr));
    std::memset(froms.data(), 0, recv_batch_ * sizeof(sockaddr_in));
    for (std::size_t i = 0; i < recv_batch_; ++i) {
      iovs[i].iov_base = recv_bufs_.data() + i * wire::kMaxFrameBytes;
      iovs[i].iov_len = wire::kMaxFrameBytes;
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_name = &froms[i];
      msgs[i].msg_hdr.msg_namelen = sizeof(froms[i]);
    }
    const int got = ::recvmmsg(sock_fd(), msgs.data(),
                               static_cast<unsigned int>(recv_batch_), 0,
                               nullptr);
    if (got < 0) {
      if (errno == ENOSYS || errno == EOPNOTSUPP) {
        use_mmsg_ = false;  // kernel without recvmmsg: per-datagram path
        break;
      }
      // EAGAIN/EWOULDBLOCK: drained. Anything else on UDP is transient;
      // either way this read pass is over.
      return;
    }
    recv_batch_hist().observe(got);
    for (int i = 0; i < got; ++i) {
      on_datagram(recv_bufs_.data() +
                      static_cast<std::size_t>(i) * wire::kMaxFrameBytes,
                  msgs[i].msg_len,
                  pack_external_token(ntohl(froms[i].sin_addr.s_addr),
                                      ntohs(froms[i].sin_port)));
    }
    if (static_cast<std::size_t>(got) < recv_batch_) return;  // drained
  }
  std::uint8_t buf[wire::kMaxFrameBytes];
  for (;;) {
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    const auto got = ::recvfrom(sock_fd(), buf, sizeof(buf), 0,
                                reinterpret_cast<sockaddr*>(&from), &from_len);
    if (got < 0) return;  // EAGAIN: drained (anything else: pass is over)
    recv_batch_hist().observe(1);
    on_datagram(buf, static_cast<std::size_t>(got),
                pack_external_token(ntohl(from.sin_addr.s_addr),
                                    ntohs(from.sin_port)));
  }
}

void SocketEnv::wire_wait(DurUs max_wait) {
  pollfd pfd{};
  pfd.fd = sock_fd();
  pfd.events = POLLIN;
  // +1ms so a timer due mid-millisecond is not busy-polled.
  const int timeout_ms = static_cast<int>(max_wait / 1000 + 1);
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready > 0 && (pfd.revents & POLLIN) != 0) drain_socket();
}

}  // namespace ecfd::transport
