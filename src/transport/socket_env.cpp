#include "transport/socket_env.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "wire/codec.hpp"

namespace ecfd::transport {

namespace {

/// Builds an IPv4 sockaddr for a peer row; stored type-erased so the
/// header stays free of <netinet/in.h>.
std::vector<std::uint8_t> make_sockaddr(const PeerAddr& peer) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(peer.port);
  if (::inet_pton(AF_INET, peer.host.c_str(), &sa.sin_addr) != 1) {
    return {};  // caught in open(): the transport is numeric-IPv4 only
  }
  std::vector<std::uint8_t> out(sizeof(sa));
  std::memcpy(out.data(), &sa, sizeof(sa));
  return out;
}

/// Packs a sender's IPv4 address + port into the opaque external token
/// ((ip << 16) | port, both host byte order).
SocketEnv::ExternalToken token_of(const sockaddr_in& sa) {
  return (static_cast<std::uint64_t>(ntohl(sa.sin_addr.s_addr)) << 16) |
         ntohs(sa.sin_port);
}

sockaddr_in sockaddr_of(SocketEnv::ExternalToken token) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(static_cast<std::uint32_t>(token >> 16));
  sa.sin_port = htons(static_cast<std::uint16_t>(token & 0xffff));
  return sa;
}

}  // namespace

SocketEnv::SocketEnv(Options opts)
    : opts_(std::move(opts)),
      rng_(opts_.seed * 0x9E3779B97F4A7C15ULL +
           static_cast<std::uint64_t>(opts_.self) + 1),
      epoch_(std::chrono::steady_clock::now()) {
  assert(!opts_.peers.empty());
  assert(opts_.self >= 0 && opts_.self < n());
  // Register-once, bump-direct: the wire paths below never build counter
  // name strings.
  peer_cells_.resize(static_cast<std::size_t>(n()));
  for (ProcessId p = 0; p < n(); ++p) {
    const std::string suffix = ".p" + std::to_string(p);
    auto& cells = peer_cells_[static_cast<std::size_t>(p)];
    cells.sent = metrics_.counter("net.sent" + suffix);
    cells.sent_batched = metrics_.counter("net.sent_batched" + suffix);
    cells.sent_single = metrics_.counter("net.sent_single" + suffix);
    cells.recv = metrics_.counter("net.recv" + suffix);
  }
  send_batch_hist_ = metrics_.histogram("net.send_batch");
}

void SocketEnv::attach_recorder(obs::Recorder* rec) {
  assert(!started_ && "attach_recorder before start()");
  if (rec == nullptr) {
    bind_obs(nullptr, -1);
    return;
  }
  rec->meta().source = "socket";
  rec->meta().clock = obs::ClockDomain::kMonotonic;
  rec->meta().wall_epoch_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count() -
      now();
  rec->bind_hosts(n());
  bind_obs(rec, opts_.self);
}

SocketEnv::~SocketEnv() {
  if (fd_ >= 0) ::close(fd_);
}

bool SocketEnv::open(std::string* error) {
  const auto fail = [&](const std::string& reason) {
    if (error) *error = reason;
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    return false;
  };

  peer_sockaddrs_.clear();
  for (const auto& peer : opts_.peers) {
    auto sa = make_sockaddr(peer);
    if (sa.empty()) {
      return fail("bad peer host (numeric IPv4 required): " + peer.host);
    }
    peer_sockaddrs_.push_back(std::move(sa));
  }

  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return fail(std::string("socket(): ") + std::strerror(errno));

  // Deliberately no SO_REUSEADDR: UDP has no TIME_WAIT to work around, and
  // on Linux the option would let a second process bind the same unicast
  // port and silently steal datagrams. A duplicate --id must fail loudly.
  sockaddr_in self_sa{};
  std::memcpy(&self_sa, peer_sockaddrs_[static_cast<std::size_t>(opts_.self)].data(),
              sizeof(self_sa));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&self_sa),
             sizeof(self_sa)) != 0) {
    return fail("bind(" + opts_.peers[static_cast<std::size_t>(opts_.self)].host +
                ":" +
                std::to_string(opts_.peers[static_cast<std::size_t>(opts_.self)].port) +
                "): " + std::strerror(errno));
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }

  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    return fail(std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno));
  }
  return true;
}

void SocketEnv::add_protocol(std::unique_ptr<Protocol> proto) {
  assert(!started_ && "register protocols before start()");
  Protocol* p = proto.get();
  const bool inserted = by_id_.emplace(p->protocol_id(), p).second;
  assert(inserted && "duplicate protocol id on this node");
  (void)inserted;
  owned_.push_back(std::move(proto));
}

void SocketEnv::start() {
  assert(fd_ >= 0 && "open() must succeed before start()");
  started_ = true;
  for (auto& p : owned_) p->start();
}

TimeUs SocketEnv::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void SocketEnv::send(ProcessId dst, Message m) {
  assert(dst >= 0 && dst < n());
  m.src = opts_.self;
  m.dst = dst;
  record(EventType::kSend, dst, m.protocol);

  if (dst == opts_.self) {
    // Self-sends never touch the wire (mirrors the other backends'
    // minimal-delay local delivery).
    set_timer(0, [this, m = std::move(m)]() { deliver(m); });
    return;
  }

  const std::string key = message_counter_key(m);
  std::vector<std::uint8_t> frame;
  std::string error;
  if (!wire::encode_message(m, &frame, &error)) {
    metrics_.add("net.encode_error");
    trace("net.encode_error", key + ": " + error);
    return;
  }

  // Injected chaos: drop, or hold the encoded frame back for a while.
  if (opts_.loss > 0.0 && rng_.chance(opts_.loss)) {
    metrics_.add(key + ".dropped");
    record(EventType::kDrop, dst, m.protocol);
    return;
  }
  metrics_.add(key + ".sent");
  if (opts_.max_extra_delay > 0) {
    const DurUs delay =
        rng_.range(opts_.min_extra_delay, opts_.max_extra_delay);
    set_timer(delay, [this, dst, frame = std::move(frame)]() mutable {
      transmit(dst, std::move(frame));
    });
    return;
  }
  transmit(dst, std::move(frame));
}

void SocketEnv::transmit(ProcessId dst, std::vector<std::uint8_t> frame) {
  out_.push_back(PendingSend{dst, std::move(frame), {}});
}

void SocketEnv::send_external(ExternalToken token, Message m) {
  m.src = opts_.self;
  m.dst = kNoProcess;
  std::vector<std::uint8_t> frame;
  std::string error;
  if (!wire::encode_message(m, &frame, &error)) {
    metrics_.add("net.encode_error");
    trace("net.encode_error", error);
    return;
  }
  metrics_.add("net.sent_external");
  const sockaddr_in sa = sockaddr_of(token);
  std::vector<std::uint8_t> addr(sizeof(sa));
  std::memcpy(addr.data(), &sa, sizeof(sa));
  out_.push_back(PendingSend{kNoProcess, std::move(frame), std::move(addr)});
}

void SocketEnv::flush_sends() {
  std::size_t done = 0;
  while (done < out_.size()) {
    const std::size_t batch = std::min(kSendBatch, out_.size() - done);
    if (batch >= 2 && use_mmsg_) {
      mmsghdr msgs[kSendBatch];
      iovec iovs[kSendBatch];
      std::memset(msgs, 0, batch * sizeof(mmsghdr));
      for (std::size_t i = 0; i < batch; ++i) {
        PendingSend& ps = out_[done + i];
        auto& sa = ps.addr.empty()
                       ? peer_sockaddrs_[static_cast<std::size_t>(ps.dst)]
                       : ps.addr;
        iovs[i].iov_base = ps.frame.data();
        iovs[i].iov_len = ps.frame.size();
        msgs[i].msg_hdr.msg_iov = &iovs[i];
        msgs[i].msg_hdr.msg_iovlen = 1;
        msgs[i].msg_hdr.msg_name = sa.data();
        msgs[i].msg_hdr.msg_namelen = static_cast<socklen_t>(sa.size());
      }
      const int sent =
          ::sendmmsg(fd_, msgs, static_cast<unsigned int>(batch), 0);
      if (sent > 0) {
        for (int i = 0; i < sent; ++i) {
          const ProcessId dst = out_[done + static_cast<std::size_t>(i)].dst;
          if (dst < 0) continue;  // external: counted at queue time
          auto& cells = peer_cells_[static_cast<std::size_t>(dst)];
          cells.sent->fetch_add(1, std::memory_order_relaxed);
          cells.sent_batched->fetch_add(1, std::memory_order_relaxed);
        }
        send_batch_hist_->observe(sent);
        done += static_cast<std::size_t>(sent);
        continue;
      }
      if (errno == ENOSYS || errno == EOPNOTSUPP) {
        use_mmsg_ = false;  // kernel without sendmmsg: per-datagram path
        continue;
      }
      // UDP is lossy by contract; ENOBUFS etc. just drop the head datagram
      // (matching the old per-datagram behaviour) and keep making progress.
      metrics_.add("net.send_error");
      ++done;
      continue;
    }
    const PendingSend& ps = out_[done];
    const auto& sa = ps.addr.empty()
                         ? peer_sockaddrs_[static_cast<std::size_t>(ps.dst)]
                         : ps.addr;
    const auto sent =
        ::sendto(fd_, ps.frame.data(), ps.frame.size(), 0,
                 reinterpret_cast<const sockaddr*>(sa.data()),
                 static_cast<socklen_t>(sa.size()));
    if (sent < 0) {
      metrics_.add("net.send_error");
    } else if (ps.dst >= 0) {
      auto& cells = peer_cells_[static_cast<std::size_t>(ps.dst)];
      cells.sent->fetch_add(1, std::memory_order_relaxed);
      cells.sent_single->fetch_add(1, std::memory_order_relaxed);
      send_batch_hist_->observe(1);
    }
    ++done;
  }
  out_.clear();
}

TimerId SocketEnv::set_timer(DurUs delay, std::function<void()> fn) {
  const TimerId id = next_timer_++;
  timers_.push(Timer{now() + (delay < 0 ? 0 : delay), next_seq_++, id,
                     std::move(fn)});
  record(EventType::kTimerSet, -1, static_cast<std::int64_t>(id));
  return id;
}

void SocketEnv::cancel_timer(TimerId id) {
  if (id == kInvalidTimer) return;
  cancelled_.insert(id);
  record(EventType::kTimerCancel, -1, static_cast<std::int64_t>(id));
}

void SocketEnv::trace(const std::string& tag, const std::string& detail) {
  if (recording()) {
    record(EventType::kNote, -1, recorder()->intern(detail),
           recorder()->intern(tag));
  }
  if (!opts_.trace_to_stderr) return;
  std::fprintf(stderr, "[%lld] p%d %s %s\n",
               static_cast<long long>(now()), opts_.self, tag.c_str(),
               detail.c_str());
}

TimeUs SocketEnv::next_timer_at() const {
  return timers_.empty() ? kTimeNever : timers_.top().when;
}

void SocketEnv::fire_due_timers() {
  while (!timers_.empty() && timers_.top().when <= now() && !stopping_) {
    Timer t = timers_.top();
    timers_.pop();
    const auto cancelled = cancelled_.find(t.id);
    if (cancelled != cancelled_.end()) {
      cancelled_.erase(cancelled);
      continue;
    }
    t.fn();
  }
}

void SocketEnv::deliver(const Message& m) {
  const auto it = by_id_.find(m.protocol);
  if (it == by_id_.end()) {
    metrics_.add("net.unknown_protocol");
    return;
  }
  record(EventType::kDeliver, m.src, m.protocol);
  it->second->on_message(m);
}

void SocketEnv::handle_frame(const std::uint8_t* data, std::size_t len,
                             ExternalToken from_token) {
  std::string error;
  auto decoded = wire::decode_message(data, len, &error);
  if (!decoded) {
    metrics_.add("net.decode_error");
    trace("net.decode_error", error);
    return;
  }
  // src = kNoProcess marks a frame from outside the universe (a kv
  // client); route it to the external handler with the sender's address
  // token so a reply can find its way back.
  if (decoded->dst == opts_.self && decoded->src < 0 && external_) {
    metrics_.add("net.recv_external");
    record(EventType::kDeliver, kNoProcess, decoded->protocol);
    external_(from_token, *decoded);
    return;
  }
  // A frame for another node (misconfigured peer table, stale sender)
  // is rejected here — protocols only ever see their own traffic.
  if (decoded->dst != opts_.self || decoded->src < 0 || decoded->src >= n()) {
    metrics_.add("net.misaddressed");
    return;
  }
  peer_cells_[static_cast<std::size_t>(decoded->src)].recv->fetch_add(
      1, std::memory_order_relaxed);
  deliver(*decoded);
}

void SocketEnv::drain_socket() {
  while (use_mmsg_) {
    if (recv_bufs_.size() < kRecvBatch * wire::kMaxFrameBytes) {
      recv_bufs_.resize(kRecvBatch * wire::kMaxFrameBytes);
    }
    mmsghdr msgs[kRecvBatch];
    iovec iovs[kRecvBatch];
    sockaddr_in froms[kRecvBatch];
    std::memset(msgs, 0, sizeof(msgs));
    std::memset(froms, 0, sizeof(froms));
    for (std::size_t i = 0; i < kRecvBatch; ++i) {
      iovs[i].iov_base = recv_bufs_.data() + i * wire::kMaxFrameBytes;
      iovs[i].iov_len = wire::kMaxFrameBytes;
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_name = &froms[i];
      msgs[i].msg_hdr.msg_namelen = sizeof(froms[i]);
    }
    const int got =
        ::recvmmsg(fd_, msgs, static_cast<unsigned int>(kRecvBatch), 0,
                   nullptr);
    if (got < 0) {
      if (errno == ENOSYS || errno == EOPNOTSUPP) {
        use_mmsg_ = false;  // kernel without recvmmsg: per-datagram path
        break;
      }
      // EAGAIN/EWOULDBLOCK: drained. Anything else on UDP is transient;
      // either way this read pass is over.
      return;
    }
    for (int i = 0; i < got; ++i) {
      handle_frame(recv_bufs_.data() +
                       static_cast<std::size_t>(i) * wire::kMaxFrameBytes,
                   msgs[i].msg_len, token_of(froms[i]));
    }
    if (static_cast<std::size_t>(got) < kRecvBatch) return;  // drained
  }
  std::uint8_t buf[wire::kMaxFrameBytes];
  for (;;) {
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    const auto got =
        ::recvfrom(fd_, buf, sizeof(buf), 0,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    if (got < 0) return;  // EAGAIN: drained (anything else: pass is over)
    handle_frame(buf, static_cast<std::size_t>(got), token_of(from));
  }
}

void SocketEnv::poll_once(DurUs max_wait) {
  fire_due_timers();
  flush_sends();  // everything queued by timers/protocol starts
  if (stopping_) return;

  DurUs wait = max_wait;
  const TimeUs next = next_timer_at();
  if (next != kTimeNever) {
    const DurUs until_timer = next - now();
    if (until_timer < wait) wait = until_timer;
  }
  if (wait < 0) wait = 0;

  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  // +1ms so a timer due mid-millisecond is not busy-polled.
  const int timeout_ms = static_cast<int>(wait / 1000 + 1);
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready > 0 && (pfd.revents & POLLIN) != 0) drain_socket();
  fire_due_timers();
  flush_sends();  // replies triggered by received datagrams go out now
}

void SocketEnv::run_for(DurUs dur) {
  stopping_ = false;
  const TimeUs end = now() + dur;
  while (!stopping_ && now() < end) poll_once(end - now());
}

bool SocketEnv::run_until(const std::function<bool()>& pred, DurUs deadline) {
  stopping_ = false;
  const TimeUs end = now() + deadline;
  while (!stopping_ && !pred() && now() < end) poll_once(msec(20));
  return pred();
}

}  // namespace ecfd::transport
