#pragma once

#include <netinet/in.h>
#include <sys/socket.h>

#include <string>
#include <vector>

#include "transport/dgram_env.hpp"
#include "transport/uring_raw.hpp"

/// \file uring_env.hpp
/// The io_uring real-network backend — the high-throughput DgramEnv.
///
/// Same socket, same wire format, same event-loop contract as the poll(2)
/// backend (socket_env.hpp); what changes is how bytes cross the kernel
/// boundary:
///
///  * Receive: one multishot IORING_OP_RECVMSG stays armed on the socket.
///    The kernel picks a buffer from a registered provided-buffer ring
///    (IORING_REGISTER_PBUF_RING) per datagram and posts a CQE — in the
///    steady state datagrams arrive with ZERO receive syscalls; buffers
///    are recycled back onto the ring as each CQE is consumed.
///  * Send: every datagram of a tick becomes an IORING_OP_SENDMSG SQE in
///    a slot pool (buffers pinned until their CQE), and ONE
///    io_uring_enter(2) submits the whole batch — where the poll backend
///    pays ceil(k / send_batch) sendmmsg calls, this pays one regardless
///    of k. Slots deliberately carry no IOSQE_IO_LINK: linking would make
///    one EPERM cancel the rest of the tick's traffic.
///  * Wait: io_uring_enter(GETEVENTS | EXT_ARG) with a nanosecond
///    timespec replaces poll(2)'s millisecond timeout.
///
/// Construction never fails; wire_init() does (kernel without io_uring,
/// seccomp, ECFD_URING_DISABLE=1 in the environment) and make_net_env()
/// then degrades to the poll backend, so `--backend uring` is a request,
/// not a requirement.

namespace ecfd::transport {

class UringEnv final : public DgramEnv {
 public:
  explicit UringEnv(Options opts) : DgramEnv(std::move(opts)) {}
  ~UringEnv() override;

  [[nodiscard]] const char* backend_name() const override { return "uring"; }

 protected:
  bool wire_init(std::string* error) override;
  void wire_flush(std::vector<Datagram> out) override;
  void wire_wait(DurUs max_wait) override;

 private:
  /// One in-flight sendmsg: everything the kernel reads asynchronously
  /// (msghdr, iovec, sockaddr, payload) pinned until the CQE lands.
  struct SendSlot {
    msghdr msg{};
    iovec iov{};
    sockaddr_in addr{};
    std::vector<std::uint8_t> bytes;
    ProcessId dst{kNoProcess};
    std::uint32_t frames{1};
    bool batched{false};
  };

  bool setup_buf_ring(std::string* error);
  bool arm_recv(std::string* error);
  /// Returns a free send-slot index, reaping completions (blocking if
  /// needed) when the pool is exhausted.
  std::size_t acquire_slot();
  io_uring_sqe* get_sqe_blocking();
  /// Drains the CQ: recv CQEs route through on_datagram() (and re-arm the
  /// multishot when the kernel retires it), send CQEs release their slot.
  void process_cqes();
  void handle_recv_cqe(const io_uring_cqe& cqe);
  void recycle_buffer(std::uint16_t bid);

  [[nodiscard]] std::uint8_t* recv_buf(std::uint16_t bid) {
    return recv_bufs_.data() + static_cast<std::size_t>(bid) * buf_size_;
  }

  uring::Ring ring_;

  // Provided-buffer ring (group 0) for the multishot receive.
  io_uring_buf_ring* buf_ring_{nullptr};
  std::size_t buf_ring_bytes_{0};
  std::uint32_t buf_count_{0};   ///< power of two
  std::uint16_t buf_ring_tail_{0};
  std::size_t buf_size_{0};      ///< recvmsg_out header + name + payload
  std::vector<std::uint8_t> recv_bufs_;
  msghdr recv_template_{};       ///< pinned while the multishot is armed
  bool recv_armed_{false};

  std::vector<SendSlot> slots_;
  std::vector<std::size_t> free_slots_;
  std::size_t inflight_sends_{0};
};

}  // namespace ecfd::transport
