#include "transport/dgram_env.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "wire/codec.hpp"
#include "wire/envelope.hpp"

namespace ecfd::transport {

namespace {

/// Builds an IPv4 sockaddr for a peer row; stored type-erased so the
/// header stays free of <netinet/in.h>.
std::vector<std::uint8_t> make_sockaddr(const PeerAddr& peer) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(peer.port);
  if (::inet_pton(AF_INET, peer.host.c_str(), &sa.sin_addr) != 1) {
    return {};  // caught in open(): the transport is numeric-IPv4 only
  }
  std::vector<std::uint8_t> out(sizeof(sa));
  std::memcpy(out.data(), &sa, sizeof(sa));
  return out;
}

sockaddr_in sockaddr_of(DgramEnv::ExternalToken token) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(static_cast<std::uint32_t>(token >> 16));
  sa.sin_port = htons(static_cast<std::uint16_t>(token & 0xffff));
  return sa;
}

}  // namespace

DgramEnv::DgramEnv(Options opts)
    : opts_(std::move(opts)),
      rng_(opts_.seed * 0x9E3779B97F4A7C15ULL +
           static_cast<std::uint64_t>(opts_.self) + 1),
      epoch_(std::chrono::steady_clock::now()),
      coalescer_(static_cast<int>(opts_.peers.size()), opts_.net.coalesce) {
  assert(!opts_.peers.empty());
  assert(opts_.self >= 0 && opts_.self < n());
  // Register-once, bump-direct: the wire paths below never build counter
  // name strings.
  peer_cells_.resize(static_cast<std::size_t>(n()));
  for (ProcessId p = 0; p < n(); ++p) {
    const std::string suffix = ".p" + std::to_string(p);
    auto& cells = peer_cells_[static_cast<std::size_t>(p)];
    cells.sent = metrics_.counter("net.sent" + suffix);
    cells.dgram_sent = metrics_.counter("net.dgram_sent" + suffix);
    cells.sent_batched = metrics_.counter("net.sent_batched" + suffix);
    cells.sent_single = metrics_.counter("net.sent_single" + suffix);
    cells.recv = metrics_.counter("net.recv" + suffix);
  }
  send_batch_hist_ = metrics_.histogram("net.send_batch");
  recv_batch_hist_ = metrics_.histogram("net.recv_batch");
  coalesce_hist_ = metrics_.histogram("net.coalesce_frames");
  envelope_sent_ = metrics_.counter("net.envelope_sent");
  envelope_recv_ = metrics_.counter("net.envelope_recv");
  set_gray(opts_.gray_factor_milli, opts_.gray_send_extra);
  set_clock_skew(opts_.skew_offset, opts_.skew_drift_ppm, opts_.skew_bound);
}

DgramEnv::~DgramEnv() {
  if (fd_ >= 0) ::close(fd_);
}

void DgramEnv::attach_recorder(obs::Recorder* rec) {
  assert(!started_ && "attach_recorder before start()");
  if (rec == nullptr) {
    bind_obs(nullptr, -1);
    return;
  }
  rec->meta().source = "socket";
  rec->meta().clock = obs::ClockDomain::kMonotonic;
  rec->meta().wall_epoch_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count() -
      now();
  rec->bind_hosts(n());
  bind_obs(rec, opts_.self);
}

bool DgramEnv::open(std::string* error) {
  const auto fail = [&](const std::string& reason) {
    if (error) *error = reason;
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    return false;
  };

  peer_sockaddrs_.clear();
  for (const auto& peer : opts_.peers) {
    auto sa = make_sockaddr(peer);
    if (sa.empty()) {
      return fail("bad peer host (numeric IPv4 required): " + peer.host);
    }
    peer_sockaddrs_.push_back(std::move(sa));
  }

  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return fail(std::string("socket(): ") + std::strerror(errno));

  // Deliberately no SO_REUSEADDR: UDP has no TIME_WAIT to work around, and
  // on Linux the option would let a second process bind the same unicast
  // port and silently steal datagrams. A duplicate --id must fail loudly.
  sockaddr_in self_sa{};
  std::memcpy(&self_sa,
              peer_sockaddrs_[static_cast<std::size_t>(opts_.self)].data(),
              sizeof(self_sa));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&self_sa),
             sizeof(self_sa)) != 0) {
    return fail("bind(" +
                opts_.peers[static_cast<std::size_t>(opts_.self)].host + ":" +
                std::to_string(
                    opts_.peers[static_cast<std::size_t>(opts_.self)].port) +
                "): " + std::strerror(errno));
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    bound_port_ = ntohs(bound.sin_port);
  }

  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    return fail(std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno));
  }

  std::string backend_error;
  if (!wire_init(&backend_error)) {
    return fail(std::string(backend_name()) +
                " backend init: " + backend_error);
  }
  return true;
}

void DgramEnv::add_protocol(std::unique_ptr<Protocol> proto) {
  assert(!started_ && "register protocols before start()");
  Protocol* p = proto.get();
  const bool inserted = by_id_.emplace(p->protocol_id(), p).second;
  assert(inserted && "duplicate protocol id on this node");
  (void)inserted;
  owned_.push_back(std::move(proto));
}

void DgramEnv::start() {
  assert(fd_ >= 0 && "open() must succeed before start()");
  started_ = true;
  for (auto& p : owned_) p->start();
}

TimeUs DgramEnv::mono_now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TimeUs DgramEnv::now() const { return mono_now() + clock_error(); }

void DgramEnv::set_gray(std::uint32_t factor_milli, DurUs send_extra) {
  assert(factor_milli > 0 && "gray factor must be positive");
  gray_factor_milli_ = factor_milli;
  gray_send_extra_ = send_extra;
}

void DgramEnv::set_clock_skew(std::int64_t offset_us, std::int32_t drift_ppm,
                              DurUs bound_us) {
  assert(drift_ppm > -1'000'000 && "clock cannot run backwards");
  skew_offset_ = offset_us;
  skew_drift_ppm_ = drift_ppm;
  skew_bound_ = bound_us;
  skew_since_ = mono_now();
  skew_active_ = offset_us != 0 || drift_ppm != 0;
}

std::int64_t DgramEnv::clock_error() const {
  if (!skew_active_) return 0;
  std::int64_t err = skew_offset_ +
                     static_cast<std::int64_t>(skew_drift_ppm_) *
                         (mono_now() - skew_since_) / 1'000'000;
  if (skew_bound_ > 0) err = std::clamp(err, -skew_bound_, skew_bound_);
  return err;
}

void DgramEnv::send(ProcessId dst, Message m) {
  assert(dst >= 0 && dst < n());
  m.src = opts_.self;
  m.dst = dst;
  record(EventType::kSend, dst, m.protocol);

  if (dst == opts_.self) {
    // Self-sends never touch the wire (mirrors the other backends'
    // minimal-delay local delivery).
    set_timer(0, [this, m = std::move(m)]() { deliver(m); });
    return;
  }

  const std::string key = message_counter_key(m);
  // While a recorder is attached, every outgoing frame carries a per-sender
  // causal sequence number (wire flag kFlagCausalSeq), and the matching
  // kWireSend event lets ecfd_trace stitch true happens-before send->deliver
  // edges across process traces. Untraced runs emit legacy frames.
  const std::uint64_t causal_seq = recording() ? ++wire_seq_ : 0;
  std::vector<std::uint8_t> frame;
  std::string error;
  if (!wire::encode_message(m, &frame, &error, causal_seq)) {
    metrics_.add("net.encode_error");
    trace("net.encode_error", key + ": " + error);
    return;
  }

  // Injected chaos: drop, or hold the encoded frame back for a while.
  if (opts_.loss > 0.0 && rng_.chance(opts_.loss)) {
    metrics_.add(key + ".dropped");
    record(EventType::kDrop, dst, m.protocol);
    return;
  }
  metrics_.add(key + ".sent");
  if (causal_seq != 0) {
    record(EventType::kWireSend, dst, static_cast<std::int64_t>(causal_seq));
  }
  // Gray NIC holdback stacks with the injected chaos delay; the holdback
  // timer itself runs on the (possibly gray-stretched) local clock — a
  // gray host is slow everywhere.
  DurUs hold = gray_send_extra_;
  if (opts_.max_extra_delay > 0) {
    hold += rng_.range(opts_.min_extra_delay, opts_.max_extra_delay);
  }
  if (hold > 0) {
    set_timer(hold, [this, dst, frame = std::move(frame)]() mutable {
      transmit(dst, std::move(frame));
    });
    return;
  }
  transmit(dst, std::move(frame));
}

void DgramEnv::transmit(ProcessId dst, std::vector<std::uint8_t> frame) {
  // The coalescer holds the frame until its peer's flush window closes;
  // batches that hit the size caps pack right away and wait in out_ for
  // the next flush_sends() (same loop iteration).
  std::vector<Coalescer::Packed> ready;
  coalescer_.add(dst, std::move(frame), now(), &ready);
  for (auto& p : ready) {
    out_.push_back(Datagram{p.dst, static_cast<std::uint32_t>(p.frames),
                            {}, std::move(p.bytes)});
  }
}

void DgramEnv::send_external(ExternalToken token, Message m) {
  m.src = opts_.self;
  m.dst = kNoProcess;
  std::vector<std::uint8_t> frame;
  std::string error;
  if (!wire::encode_message(m, &frame, &error)) {
    metrics_.add("net.encode_error");
    trace("net.encode_error", error);
    return;
  }
  metrics_.add("net.sent_external");
  const sockaddr_in sa = sockaddr_of(token);
  std::vector<std::uint8_t> addr(sizeof(sa));
  std::memcpy(addr.data(), &sa, sizeof(sa));
  ext_out_.push_back(Datagram{kNoProcess, 1, std::move(addr), std::move(frame)});
}

void DgramEnv::flush_sends() {
  // Size-triggered packs queued earlier in the iteration go first so the
  // per-peer FIFO survives coalescing.
  std::vector<Coalescer::Packed> packed;
  coalescer_.flush_due(now(), &packed);
  if (out_.empty() && packed.empty() && ext_out_.empty()) return;

  std::vector<Datagram> wire_out;
  wire_out.reserve(out_.size() + packed.size() + ext_out_.size());
  for (auto& d : out_) wire_out.push_back(std::move(d));
  out_.clear();
  for (auto& p : packed) {
    wire_out.push_back(Datagram{p.dst, static_cast<std::uint32_t>(p.frames),
                                {}, std::move(p.bytes)});
  }
  for (auto& d : ext_out_) wire_out.push_back(std::move(d));
  ext_out_.clear();
  wire_flush(std::move(wire_out));
}

void DgramEnv::note_dgram_sent(const Datagram& d, bool batched) {
  coalesce_hist_->observe(static_cast<std::int64_t>(d.frames));
  if (d.frames >= 2) envelope_sent_->fetch_add(1, std::memory_order_relaxed);
  if (d.dst < 0) return;  // external: counted at queue time
  auto& cells = peer_cells_[static_cast<std::size_t>(d.dst)];
  cells.sent->fetch_add(d.frames, std::memory_order_relaxed);
  cells.dgram_sent->fetch_add(1, std::memory_order_relaxed);
  (batched ? cells.sent_batched : cells.sent_single)
      ->fetch_add(1, std::memory_order_relaxed);
}

TimerId DgramEnv::set_timer(DurUs delay, std::function<void()> fn) {
  const TimerId id = next_timer_++;
  if (delay < 0) delay = 0;
  if (gray_factor_milli_ != 1000) {
    // Gray CPU: deferred work runs factor× late. Skew drift needs no
    // counterpart here — timers live in the skewed clock already.
    delay = delay * static_cast<DurUs>(gray_factor_milli_) / 1000;
  }
  timers_.push(Timer{now() + delay, next_seq_++, id, std::move(fn)});
  record(EventType::kTimerSet, -1, static_cast<std::int64_t>(id));
  return id;
}

void DgramEnv::cancel_timer(TimerId id) {
  if (id == kInvalidTimer) return;
  cancelled_.insert(id);
  record(EventType::kTimerCancel, -1, static_cast<std::int64_t>(id));
}

void DgramEnv::trace(const std::string& tag, const std::string& detail) {
  if (recording()) {
    record(EventType::kNote, -1, recorder()->intern(detail),
           recorder()->intern(tag));
  }
  if (!opts_.trace_to_stderr) return;
  std::fprintf(stderr, "[%lld] p%d %s %s\n", static_cast<long long>(now()),
               opts_.self, tag.c_str(), detail.c_str());
}

TimeUs DgramEnv::next_timer_at() const {
  return timers_.empty() ? kTimeNever : timers_.top().when;
}

void DgramEnv::fire_due_timers() {
  // Drain against a snapshot of the clock: a timer armed during the drain
  // (notably a zero-delay re-arming tick) lands strictly after `cutoff`
  // and fires on the NEXT loop iteration, so a self-rearming timer can
  // keep the loop busy but can never wedge it.
  const TimeUs cutoff = now();
  while (!timers_.empty() && timers_.top().when <= cutoff && !stopping_) {
    Timer t = timers_.top();
    timers_.pop();
    const auto cancelled = cancelled_.find(t.id);
    if (cancelled != cancelled_.end()) {
      cancelled_.erase(cancelled);
      continue;
    }
    t.fn();
  }
}

void DgramEnv::deliver(const Message& m) {
  const auto it = by_id_.find(m.protocol);
  if (it == by_id_.end()) {
    metrics_.add("net.unknown_protocol");
    return;
  }
  record(EventType::kDeliver, m.src, m.protocol);
  it->second->on_message(m);
}

void DgramEnv::handle_frame(const std::uint8_t* data, std::size_t len,
                            ExternalToken from_token) {
  std::string error;
  std::uint64_t causal_seq = 0;
  auto decoded = wire::decode_message(data, len, &error, &causal_seq);
  if (!decoded) {
    metrics_.add("net.decode_error");
    trace("net.decode_error", error);
    return;
  }
  // src = kNoProcess marks a frame from outside the universe (a kv
  // client); route it to the external handler with the sender's address
  // token so a reply can find its way back.
  if (decoded->dst == opts_.self && decoded->src < 0 && external_) {
    metrics_.add("net.recv_external");
    record(EventType::kDeliver, kNoProcess, decoded->protocol);
    external_(from_token, *decoded);
    return;
  }
  // A frame for another node (misconfigured peer table, stale sender)
  // is rejected here — protocols only ever see their own traffic.
  if (decoded->dst != opts_.self || decoded->src < 0 || decoded->src >= n()) {
    metrics_.add("net.misaddressed");
    return;
  }
  peer_cells_[static_cast<std::size_t>(decoded->src)].recv->fetch_add(
      1, std::memory_order_relaxed);
  if (causal_seq != 0) {
    record(EventType::kWireDeliver, decoded->src,
           static_cast<std::int64_t>(causal_seq));
  }
  deliver(*decoded);
}

void DgramEnv::on_datagram(const std::uint8_t* data, std::size_t len,
                           ExternalToken from_token) {
  if (wire::is_envelope(data, len)) {
    std::string error;
    const auto frames = wire::decode_envelope(data, len, &error);
    if (!frames) {
      // A corrupt envelope rejects whole: its framing cannot be trusted,
      // so none of the inner frames can be salvaged.
      metrics_.add("net.envelope_decode_error");
      trace("net.envelope_decode_error", error);
      return;
    }
    envelope_recv_->fetch_add(1, std::memory_order_relaxed);
    // Inner frames carry their own CRC, so one corrupt frame rejects
    // individually (inside handle_frame) while its siblings deliver.
    for (const auto& f : *frames) handle_frame(f.data, f.len, from_token);
    return;
  }
  handle_frame(data, len, from_token);
}

void DgramEnv::poll_once(DurUs max_wait) {
  fire_due_timers();
  flush_sends();  // everything queued by timers/protocol starts
  if (stopping_) return;

  DurUs wait = max_wait;
  const TimeUs next = next_timer_at();
  if (next != kTimeNever) {
    const DurUs until_timer = next - now();
    if (until_timer < wait) wait = until_timer;
  }
  // A batch held back by a nonzero flush_delay must not be overslept.
  const TimeUs held = coalescer_.next_deadline();
  if (held != kTimeNever) {
    const DurUs until_flush = held - now();
    if (until_flush < wait) wait = until_flush;
  }
  if (wait < 0) wait = 0;

  wire_wait(wait);
  fire_due_timers();
  flush_sends();  // replies triggered by received datagrams go out now
}

void DgramEnv::run_for(DurUs dur) {
  stopping_ = false;
  const TimeUs end = now() + dur;
  while (!stopping_ && now() < end) poll_once(end - now());
}

bool DgramEnv::run_until(const std::function<bool()>& pred, DurUs deadline) {
  stopping_ = false;
  const TimeUs end = now() + deadline;
  while (!stopping_ && !pred() && now() < end) poll_once(msec(20));
  return pred();
}

std::optional<Backend> parse_backend(const std::string& s) {
  if (s == "poll") return Backend::kPoll;
  if (s == "uring") return Backend::kUring;
  return std::nullopt;
}

const char* backend_name(Backend b) {
  return b == Backend::kUring ? "uring" : "poll";
}

}  // namespace ecfd::transport
