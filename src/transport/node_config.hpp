#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

/// \file node_config.hpp
/// Cluster configuration for the real-network transport: a static peer
/// table (ProcessId -> host:port) plus protocol timing and chaos knobs,
/// loaded from a small INI-style file shared by every node of a cluster.
///
/// Format (comments with '#' or ';', case-sensitive keys):
///
///   [cluster]
///   seed = 1
///   fd = efficient_p          ; heartbeat_p | efficient_p | stable_leader | ecfd
///   period_ms = 50
///   initial_timeout_ms = 250
///   timeout_increment_ms = 100
///   consensus = false
///   backend = poll            ; poll | uring (uring degrades to poll when
///                             ; the kernel lacks io_uring)
///
///   [peers]
///   0 = 127.0.0.1:9100
///   1 = 127.0.0.1:9101
///   2 = 127.0.0.1:9102
///
///   [chaos]                   ; optional injected faults, applied on send
///   loss = 0.0
///   min_delay_ms = 0
///   max_delay_ms = 0
///
///   [net]                     ; optional wire tuning (defaults shown)
///   coalesce = true           ; pack frames per peer per tick into one
///                             ; batch-envelope datagram (§4 piggybacking)
///   max_envelope_frames = 64  ; frames per envelope before immediate flush
///   max_envelope_bytes = 1400 ; payload bytes per envelope (MTU-safe)
///   flush_delay_us = 0        ; how long a frame may wait for company;
///                             ; 0 = flush every event-loop iteration
///   send_batch = 64           ; datagrams per sendmmsg(2) (poll backend)
///   recv_batch = 16           ; datagrams per recvmmsg(2) (poll backend)
///   mmsg = true               ; use sendmmsg/recvmmsg (poll backend)
///
///   [kv]                      ; optional replicated key-value service
///   enabled = true
///   capacity = 1024           ; replicated-log slots (fixed up front)
///   pipeline_depth = 4        ; slots proposed ahead of the decided prefix
///   batch_max_ops = 64
///   batch_wait_ms = 2
///   lease_establish_ms = 500
///   snapshot_every = 64       ; applied slots between snapshots/compactions
///   dedup_window = 64         ; cached results per client session
///
/// Peer ids must be exactly 0..n-1; every node of the cluster loads the
/// same file and is told which row is "self" on its command line.

namespace ecfd::transport {

/// One row of the peer table.
struct PeerAddr {
  std::string host;
  std::uint16_t port{0};
};

struct NodeConfig {
  std::vector<PeerAddr> peers;  ///< indexed by ProcessId, size n

  std::uint64_t seed{1};
  std::string fd{"efficient_p"};
  bool consensus{false};
  std::string backend{"poll"};  ///< "poll" | "uring"

  DurUs period{msec(50)};
  DurUs initial_timeout{msec(250)};
  DurUs timeout_increment{msec(100)};

  double loss{0.0};
  DurUs min_delay{0};
  DurUs max_delay{0};

  // [net] — wire tuning, mapped onto transport::NetTuning by the caller.
  bool net_coalesce{true};
  int net_max_envelope_frames{64};
  int net_max_envelope_bytes{1400};
  DurUs net_flush_delay{0};
  int net_send_batch{64};
  int net_recv_batch{16};
  bool net_mmsg{true};

  // [kv] — the replicated key-value service (tools/ecfd_node --kv).
  bool kv_enabled{false};
  int kv_capacity{1024};
  int kv_pipeline_depth{4};
  int kv_batch_max_ops{64};
  DurUs kv_batch_wait{msec(2)};
  DurUs kv_lease_establish{msec(500)};
  int kv_snapshot_every{64};
  int kv_dedup_window{64};

  [[nodiscard]] int n() const { return static_cast<int>(peers.size()); }
};

/// Parses config text. Returns std::nullopt and sets \p error on malformed
/// input (unknown section/key, bad peer table, out-of-range values).
std::optional<NodeConfig> parse_node_config(const std::string& text,
                                            std::string* error = nullptr);

/// Reads and parses a config file.
std::optional<NodeConfig> load_node_config(const std::string& path,
                                           std::string* error = nullptr);

/// Parses "host:port"; used for the peer table and for CLI overrides.
std::optional<PeerAddr> parse_peer_addr(const std::string& s);

}  // namespace ecfd::transport
