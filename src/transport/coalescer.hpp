#pragma once

#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "sim/time.hpp"

/// \file coalescer.hpp
/// Per-peer tick coalescing: the queue between a protocol's send() calls
/// and the wire. Frames queued for the same peer within one flush window
/// leave as ONE batch-envelope datagram (wire/envelope.hpp) instead of k
/// datagrams — the transport-layer completion of the paper's §4
/// piggybacking argument. Both real-network backends (poll(2) SocketEnv
/// and io_uring UringEnv) share this queue, so the ablation in
/// bench/bench_net.cpp compares backends with coalescing held constant.
///
/// Flush discipline:
///  * a full batch (max_frames, or max_bytes of payload) packs immediately;
///  * otherwise frames wait until the peer's deadline — the time the FIRST
///    queued frame arrived plus flush_delay. The default flush_delay of 0
///    makes every loop iteration a flush boundary: all sends triggered by
///    one timer tick (heartbeat + suspected list + consensus + ...) still
///    coalesce, but nothing is ever delayed past the iteration that
///    produced it, so detection latency is untouched (E11 pins this).
///  * a lone frame is passed through raw — the envelope wrapper is only
///    paid when it amortizes.

namespace ecfd::transport {

struct CoalescerOptions {
  bool enabled{true};
  /// Frames per envelope before an immediate pack (clamped to
  /// wire::kMaxFramesPerEnvelope by the ctor).
  std::size_t max_frames{64};
  /// Payload-byte budget per envelope before an immediate pack. The
  /// default stays under a 1500-byte MTU so coalescing never introduces
  /// IP fragmentation on real links; loopback benches sweep it up to the
  /// 64 KiB frame cap.
  std::size_t max_bytes{1400};
  /// How long the first frame queued to a peer may wait for company.
  /// 0 = flush at the end of the loop iteration that queued it.
  DurUs flush_delay{0};
};

class Coalescer {
 public:
  /// One ready-to-send datagram: either a raw single frame (frames == 1)
  /// or a batch envelope (frames >= 2).
  struct Packed {
    ProcessId dst{kNoProcess};
    std::size_t frames{1};
    std::vector<std::uint8_t> bytes;
  };

  Coalescer(int n, CoalescerOptions opts);

  /// Queues one encoded frame for \p dst. Batches that hit the size
  /// limits are packed into \p ready immediately; everything else waits
  /// for flush_due/flush_all.
  void add(ProcessId dst, std::vector<std::uint8_t> frame, TimeUs now,
           std::vector<Packed>* ready);

  /// Packs every peer queue whose deadline has arrived (all of them when
  /// flush_delay is 0).
  void flush_due(TimeUs now, std::vector<Packed>* out);

  /// Packs everything regardless of deadline (shutdown, backend switch).
  void flush_all(std::vector<Packed>* out);

  /// Earliest pending deadline, kTimeNever when nothing is queued; event
  /// loops clamp their wait so a held batch is never overslept.
  [[nodiscard]] TimeUs next_deadline() const;

  [[nodiscard]] bool idle() const { return pending_ == 0; }
  [[nodiscard]] const CoalescerOptions& options() const { return opts_; }

 private:
  struct PeerQueue {
    std::vector<std::vector<std::uint8_t>> frames;
    std::size_t bytes{0};        ///< payload bytes queued (frames only)
    TimeUs deadline{kTimeNever}; ///< kTimeNever = empty queue
  };

  void pack(PeerQueue& q, ProcessId dst, std::vector<Packed>* out);

  std::vector<PeerQueue> queues_;  ///< indexed by ProcessId
  std::size_t pending_{0};         ///< peers with a non-empty queue
  CoalescerOptions opts_;
};

}  // namespace ecfd::transport
