#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/env.hpp"
#include "obs/metrics.hpp"
#include "transport/coalescer.hpp"
#include "transport/node_config.hpp"

/// \file dgram_env.hpp
/// The shared core of the real-network Env backends.
///
/// One DgramEnv is one process of the universe: it owns a bound UDP
/// socket, a single-threaded event loop interleaving datagram receipt with
/// wall-clock timers, the wire codec routing (decode, misaddressing,
/// external clients), injected chaos, the unified metrics registry, and —
/// new in this layer — the per-peer tick coalescer that folds every frame
/// due to a peer in one flush window into a single batch-envelope datagram
/// (wire/envelope.hpp, the paper's §4 piggybacking carried to the wire).
///
/// What a concrete backend adds is only the syscall discipline:
///   * SocketEnv (socket_env.hpp): poll(2) + sendmmsg/recvmmsg batching —
///     the portable baseline;
///   * UringEnv (uring_env.hpp): io_uring with a registered provided-buffer
///     ring, multishot recvmsg, and batched submit chains — one syscall
///     flushes a whole tick's datagrams and receives complete without any
///     syscall at all in the steady state.
/// Identical protocol code, identical wire format, identical counters; the
/// two interoperate in one cluster (tests/test_uring_env.cpp) and are
/// compared by bench/bench_net.cpp.
///
/// Threading: everything — protocol callbacks, timers, sends — happens on
/// the thread that calls run_for()/run_until(). The class is not
/// thread-safe; cross-process concurrency comes from running one env per
/// OS process (tools/ecfd_node.cpp) or per thread (tests, bench_net).

namespace ecfd::transport {

/// Runtime-tunable wire knobs (previously hardcoded constants in
/// socket_env.hpp; lifted so bench_net can sweep them and the INI [net]
/// section can pin them per cluster).
struct NetTuning {
  std::size_t send_batch{64};  ///< datagrams per sendmmsg(2) syscall
  std::size_t recv_batch{16};  ///< datagrams per recvmmsg(2) syscall
  bool mmsg{true};  ///< start on sendmmsg/recvmmsg (auto-clears on ENOSYS)
  std::size_t uring_depth{512};       ///< io_uring SQ entries
  std::size_t uring_recv_buffers{64}; ///< provided-buffer ring entries
  CoalescerOptions coalesce;          ///< per-peer tick coalescing
};

class DgramEnv : public Env {
 public:
  struct Options {
    ProcessId self{0};
    std::vector<PeerAddr> peers;  ///< indexed by ProcessId, size n

    std::uint64_t seed{1};

    /// Injected chaos, applied on send (on top of whatever the real
    /// network does): drop probability and uniform extra delay.
    double loss{0.0};
    DurUs min_extra_delay{0};
    DurUs max_extra_delay{0};

    /// Gray failure from birth: timer delays stretch by
    /// gray_factor_milli/1000 (1000 = healthy) and every outgoing frame is
    /// held back by gray_send_extra. Also settable at runtime via
    /// set_gray(); mirrors sim::ProcessHost / runtime::ThreadHost.
    std::uint32_t gray_factor_milli{1000};
    DurUs gray_send_extra{0};

    /// Bounded clock skew from birth: now() runs skew_offset ahead plus
    /// skew_drift_ppm, clamped to ±skew_bound (0 = unclamped). Also
    /// settable at runtime via set_clock_skew().
    std::int64_t skew_offset{0};
    std::int32_t skew_drift_ppm{0};
    DurUs skew_bound{0};

    /// When set, trace() lines go to stderr as "[t_us] pK tag detail".
    bool trace_to_stderr{false};

    NetTuning net;
  };

  explicit DgramEnv(Options opts);
  ~DgramEnv() override;

  DgramEnv(const DgramEnv&) = delete;
  DgramEnv& operator=(const DgramEnv&) = delete;

  /// Binds self's UDP port (nonblocking) and initializes the backend
  /// (io_uring setup for UringEnv). Must succeed before start().
  bool open(std::string* error = nullptr);

  /// Registers a protocol (before start()).
  void add_protocol(std::unique_ptr<Protocol> proto);

  template <class P, class... Args>
  P& emplace(Args&&... args) {
    auto owned = std::make_unique<P>(*this, std::forward<Args>(args)...);
    P& ref = *owned;
    add_protocol(std::move(owned));
    return ref;
  }

  /// Invokes Protocol::start() on every registered protocol.
  void start();

  /// Runs the event loop for \p dur of wall-clock time (or until stop()).
  void run_for(DurUs dur);

  /// Runs until \p pred holds (checked after every loop iteration) or
  /// \p deadline elapses; returns pred's final value.
  bool run_until(const std::function<bool()>& pred, DurUs deadline);

  /// Makes the current run_for/run_until return promptly; callable from a
  /// timer or message callback.
  void stop() { stopping_ = true; }

  /// Gray failure at runtime: alive but slow. Timer delays (including the
  /// heartbeat schedule) stretch by factor_milli/1000; outgoing frames are
  /// held back by \p send_extra before the coalescer sees them.
  void set_gray(std::uint32_t factor_milli, DurUs send_extra);
  [[nodiscard]] bool gray() const {
    return gray_factor_milli_ != 1000 || gray_send_extra_ != 0;
  }

  /// Bounded clock skew at runtime. now() reads
  /// offset + drift_ppm · elapsed/1e6 ahead of the monotonic clock, the
  /// error clamped to ±bound_us (0 = unclamped; only mutation tests use
  /// that). Timers live in the skewed clock, so a fast clock fires them
  /// early in wall time — no separate delay adjustment needed here, unlike
  /// the simulator whose scheduler runs on global time.
  void set_clock_skew(std::int64_t offset_us, std::int32_t drift_ppm,
                      DurUs bound_us);
  void clear_clock_skew() { set_clock_skew(0, 0, 0); }

  /// Current now() − monotonic-clock difference in microseconds.
  [[nodiscard]] std::int64_t clock_error() const;

  /// The backend's short name ("poll" or "uring"), for logs and reports.
  [[nodiscard]] virtual const char* backend_name() const = 0;

  /// Per-peer and per-label traffic accounting on the unified
  /// obs::MetricsRegistry (same .get() lookups as the old sim::Counters):
  ///   "msg.<label>.sent/.dropped"   logical messages, by label
  ///   "net.sent.p<dst>"             frames sent to dst (post-coalescing,
  ///                                 an envelope counts its inner frames)
  ///   "net.recv.p<src>"             frames received from src
  ///   "net.dgram_sent.p<dst>"       datagrams actually sent to dst;
  ///                                 "net.sent_batched.p<dst>" of them
  ///                                 left in a multi-datagram syscall
  ///                                 batch, "net.sent_single.p<dst>" one
  ///                                 at a time — the two sum to dgram_sent
  ///   "net.envelope_sent/_recv"     batch envelopes on the wire
  ///   "net.envelope_decode_error"   corrupt/truncated envelopes rejected
  ///   "net.decode_error", "net.misaddressed", "net.unknown_protocol"
  /// Histograms (log2 buckets, exported via /metrics.json):
  ///   "net.send_batch"      datagrams per send syscall
  ///   "net.recv_batch"      datagrams per receive pass
  ///   "net.coalesce_frames" frames per sent datagram (the coalescing win)
  [[nodiscard]] obs::MetricsRegistry& counters() { return metrics_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }

  /// Attaches a typed event recorder; this node's events go to ring(self).
  /// Call before start(); \p rec must outlive this env.
  void attach_recorder(obs::Recorder* rec);

  /// Local UDP port actually bound (differs from the peer table when the
  /// configured port was 0 = ephemeral; used by tests).
  [[nodiscard]] std::uint16_t bound_port() const { return bound_port_; }

  // --- External clients -------------------------------------------------
  // Datagrams whose decoded src is kNoProcess are not peer traffic: they
  // come from clients outside the universe (the kv client library). They
  // are routed to the external handler together with an opaque token that
  // identifies the sender's address; send_external() routes a reply back.
  // Without a handler such frames count as misaddressed. External frames
  // are never coalesced — clients decode single frames only.

  /// IPv4 address + UDP port of an external sender, packed
  /// (ip << 16) | port; stable for the sender's lifetime, usable as a map
  /// key, and round-trippable through send_external.
  using ExternalToken = std::uint64_t;
  using ExternalHandler = std::function<void(ExternalToken, const Message&)>;

  /// Installs the handler for external frames (before start()).
  void set_external_handler(ExternalHandler fn) { external_ = std::move(fn); }

  /// Encodes and queues \p m for the external sender \p token (stamps
  /// src = self, dst = kNoProcess). Counted as "net.sent_external".
  void send_external(ExternalToken token, Message m);

  // --- Env --------------------------------------------------------------
  [[nodiscard]] TimeUs now() const override;
  void send(ProcessId dst, Message m) override;
  TimerId set_timer(DurUs delay, std::function<void()> fn) override;
  void cancel_timer(TimerId id) override;
  [[nodiscard]] ProcessId self() const override { return opts_.self; }
  [[nodiscard]] int n() const override {
    return static_cast<int>(opts_.peers.size());
  }
  Rng& rng() override { return rng_; }
  void trace(const std::string& tag, const std::string& detail) override;

 protected:
  /// One wire datagram, ready for the backend's send syscall. addr empty
  /// means "look dst up in the peer table"; dst == kNoProcess marks an
  /// external reply (addr set, per-peer counters skipped).
  struct Datagram {
    ProcessId dst{kNoProcess};
    std::uint32_t frames{1};  ///< logical frames inside (envelope batch)
    std::vector<std::uint8_t> addr;  ///< raw sockaddr; empty = peer table
    std::vector<std::uint8_t> bytes;
  };

  // --- Backend hooks ----------------------------------------------------

  /// Called once from open() after the socket is bound and nonblocking;
  /// the place for ring setup. Return false (setting \p error) to fail
  /// open() — the factory then falls back to the poll backend.
  virtual bool wire_init(std::string* error) = 0;

  /// Sends every datagram in \p out (order within a peer must be kept).
  /// The backend owns the buffers from here (io_uring keeps them alive
  /// until the CQE). Call note_dgram_sent()/note_send_error() per result.
  virtual void wire_flush(std::vector<Datagram> out) = 0;

  /// Blocks until datagrams arrive or \p max_wait elapses, delivering
  /// each through on_datagram(). May process send completions too.
  virtual void wire_wait(DurUs max_wait) = 0;

  // --- Services for backends --------------------------------------------

  /// Decodes one received datagram (batch envelopes are unpacked here)
  /// and routes every inner frame; counters on every error path.
  void on_datagram(const std::uint8_t* data, std::size_t len,
                   ExternalToken from_token);

  /// Success accounting for one sent datagram (\p batched: it left in a
  /// multi-datagram syscall batch).
  void note_dgram_sent(const Datagram& d, bool batched);
  void note_send_error() { metrics_.add("net.send_error"); }

  [[nodiscard]] const std::vector<std::uint8_t>& peer_sockaddr(
      ProcessId p) const {
    return peer_sockaddrs_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] int sock_fd() const { return fd_; }
  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] obs::Histogram& recv_batch_hist() { return *recv_batch_hist_; }
  [[nodiscard]] obs::Histogram& send_batch_hist() { return *send_batch_hist_; }

 private:
  struct Timer {
    TimeUs when{};
    std::uint64_t seq{};
    TimerId id{kInvalidTimer};
    std::function<void()> fn;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// One loop iteration: fire due timers, flush queued sends, then block
  /// in the backend for at most \p max_wait waiting for datagrams.
  void poll_once(DurUs max_wait);
  void fire_due_timers();
  [[nodiscard]] TimeUs next_timer_at() const;
  /// Queues an encoded frame for \p dst in the coalescer; the wire
  /// syscall happens at the next flush_sends().
  void transmit(ProcessId dst, std::vector<std::uint8_t> frame);
  /// Packs everything due out of the coalescer and hands the datagrams to
  /// the backend.
  void flush_sends();
  /// Decodes one single-frame datagram and routes it.
  void handle_frame(const std::uint8_t* data, std::size_t len,
                    ExternalToken from_token);
  void deliver(const Message& m);

  /// Pre-registered per-peer counter cells (bind-time registration,
  /// direct bumps on the send/receive paths — see MetricsRegistry docs).
  struct PeerCells {
    obs::MetricsRegistry::Cell* sent{nullptr};
    obs::MetricsRegistry::Cell* dgram_sent{nullptr};
    obs::MetricsRegistry::Cell* sent_batched{nullptr};
    obs::MetricsRegistry::Cell* sent_single{nullptr};
    obs::MetricsRegistry::Cell* recv{nullptr};
  };

  Options opts_;
  obs::MetricsRegistry metrics_;
  std::vector<PeerCells> peer_cells_;
  obs::Histogram* send_batch_hist_{nullptr};
  obs::Histogram* recv_batch_hist_{nullptr};
  obs::Histogram* coalesce_hist_{nullptr};
  obs::MetricsRegistry::Cell* envelope_sent_{nullptr};
  obs::MetricsRegistry::Cell* envelope_recv_{nullptr};
  Rng rng_;
  std::chrono::steady_clock::time_point epoch_;

  /// Microseconds since epoch_, unskewed (the fabric truth clock).
  [[nodiscard]] TimeUs mono_now() const;

  // Gray + skew state (single-threaded like everything else here).
  std::uint32_t gray_factor_milli_{1000};
  DurUs gray_send_extra_{0};
  bool skew_active_{false};
  std::int64_t skew_offset_{0};
  std::int32_t skew_drift_ppm_{0};
  DurUs skew_bound_{0};
  TimeUs skew_since_{0};

  int fd_{-1};
  std::uint16_t bound_port_{0};
  std::vector<std::vector<std::uint8_t>> peer_sockaddrs_;  ///< opaque sockaddr_in

  Coalescer coalescer_;
  std::vector<Datagram> out_;      ///< size-triggered packs awaiting flush
  std::vector<Datagram> ext_out_;  ///< external replies, never coalesced

  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timers_;
  std::unordered_set<TimerId> cancelled_;
  std::uint64_t next_seq_{1};
  std::uint64_t wire_seq_{0};  ///< causal send sequence (0 = none issued)
  TimerId next_timer_{1};
  bool stopping_{false};

  std::vector<std::unique_ptr<Protocol>> owned_;
  std::unordered_map<ProtocolId, Protocol*> by_id_;
  ExternalHandler external_;
  bool started_{false};
};

/// Maps a parsed config's [net] section onto the tuning struct (peers,
/// seed, and chaos stay the caller's job).
inline NetTuning net_tuning_from(const NodeConfig& cfg) {
  NetTuning t;
  t.send_batch = static_cast<std::size_t>(cfg.net_send_batch);
  t.recv_batch = static_cast<std::size_t>(cfg.net_recv_batch);
  t.mmsg = cfg.net_mmsg;
  t.coalesce.enabled = cfg.net_coalesce;
  t.coalesce.max_frames = static_cast<std::size_t>(cfg.net_max_envelope_frames);
  t.coalesce.max_bytes = static_cast<std::size_t>(cfg.net_max_envelope_bytes);
  t.coalesce.flush_delay = cfg.net_flush_delay;
  return t;
}

/// Packs an IPv4 address + UDP port (both host byte order) into the
/// opaque ExternalToken backends hand to on_datagram(); inverse of the
/// unpacking send_external() does.
constexpr std::uint64_t pack_external_token(std::uint32_t ip_host,
                                            std::uint16_t port_host) {
  return (static_cast<std::uint64_t>(ip_host) << 16) | port_host;
}

// --- Backend selection ---------------------------------------------------

enum class Backend { kPoll, kUring };

/// Parses "poll" / "uring"; nullopt on anything else.
std::optional<Backend> parse_backend(const std::string& s);
const char* backend_name(Backend b);

/// Builds and opens the requested backend. When io_uring is requested but
/// unavailable — compiled out (ECFD_URING=OFF), kernel without the needed
/// ops, or disabled via the ECFD_URING_DISABLE environment variable — the
/// env degrades to the poll backend instead of dying; \p note (when
/// non-null) explains the substitution. Returns nullptr with \p error set
/// only when even the poll backend cannot open (bad address, port in use).
std::unique_ptr<DgramEnv> make_net_env(Backend requested, DgramEnv::Options opts,
                                       std::string* error = nullptr,
                                       std::string* note = nullptr);

}  // namespace ecfd::transport
