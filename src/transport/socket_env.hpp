#pragma once

#include <string>
#include <vector>

#include "transport/dgram_env.hpp"

/// \file socket_env.hpp
/// The poll(2) real-network backend — the portable baseline DgramEnv.
///
/// Everything interesting (event loop, timers, chaos, coalescing, codec
/// routing, metrics) lives in the shared base; this class contributes only
/// the syscall discipline: block in poll(2) for readiness, then move
/// datagrams with sendmmsg(2)/recvmmsg(2) — up to net.send_batch (resp.
/// net.recv_batch) datagrams per syscall — falling back to per-datagram
/// sendto(2)/recvfrom(2) on kernels without the batched calls (or when
/// Options::net.mmsg is cleared, which bench_net uses to ablate syscall
/// batching separately from coalescing).
///
/// Transport semantics are exactly what the paper's asynchronous model
/// asks for: messages can be dropped (UDP, plus optional injected loss),
/// delayed (network, plus optional injected delay), and a crashed process
/// is just a killed OS process. See uring_env.hpp for the io_uring
/// sibling and dgram_env.hpp for the shared contract.

namespace ecfd::transport {

class SocketEnv final : public DgramEnv {
 public:
  explicit SocketEnv(Options opts) : DgramEnv(std::move(opts)) {}

  [[nodiscard]] const char* backend_name() const override { return "poll"; }

 protected:
  bool wire_init(std::string* error) override;
  void wire_flush(std::vector<Datagram> out) override;
  void wire_wait(DurUs max_wait) override;

 private:
  /// Reads until EAGAIN, recvmmsg(2) up to recv_batch_ datagrams per
  /// syscall, routing each through on_datagram().
  void drain_socket();

  std::size_t send_batch_{64};
  std::size_t recv_batch_{16};
  std::vector<std::uint8_t> recv_bufs_;  ///< recv_batch_ frame-sized buffers
  bool use_mmsg_{true};  ///< cleared on ENOSYS; falls back to sendto/recvfrom
};

}  // namespace ecfd::transport
