#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/env.hpp"
#include "obs/metrics.hpp"
#include "transport/node_config.hpp"

/// \file socket_env.hpp
/// The third Env backend: a real-network runtime over nonblocking UDP.
///
/// One SocketEnv is one process of the universe. It binds the UDP port of
/// its own peer-table row and runs a single-threaded poll(2) event loop that
/// interleaves datagram receipt with wall-clock timers — the same
/// deadline-heap discipline as the other two backends, so identical
/// protocol code runs unchanged on the simulator, the thread runtime, and
/// real sockets.
///
/// Transport semantics are exactly what the paper's asynchronous model
/// asks for: messages can be dropped (UDP, plus optional injected loss),
/// delayed (network, plus optional injected delay), and a crashed process
/// is just a killed OS process. Frames are encoded with wire/codec.hpp;
/// undecodable or misaddressed datagrams are counted and dropped, never
/// delivered.
///
/// Threading: everything — protocol callbacks, timers, sends — happens on
/// the thread that calls run_for()/run_until(). The class is not
/// thread-safe; cross-process concurrency comes from running one SocketEnv
/// per OS process (tools/ecfd_node.cpp) or per thread (tests).

namespace ecfd::transport {

class SocketEnv final : public Env {
 public:
  struct Options {
    ProcessId self{0};
    std::vector<PeerAddr> peers;  ///< indexed by ProcessId, size n

    std::uint64_t seed{1};

    /// Injected chaos, applied on send (on top of whatever the real
    /// network does): drop probability and uniform extra delay.
    double loss{0.0};
    DurUs min_extra_delay{0};
    DurUs max_extra_delay{0};

    /// When set, trace() lines go to stderr as "[t_us] pK tag detail".
    bool trace_to_stderr{false};
  };

  explicit SocketEnv(Options opts);
  ~SocketEnv() override;

  SocketEnv(const SocketEnv&) = delete;
  SocketEnv& operator=(const SocketEnv&) = delete;

  /// Binds self's UDP port (nonblocking). Must succeed before start().
  bool open(std::string* error = nullptr);

  /// Registers a protocol (before start()).
  void add_protocol(std::unique_ptr<Protocol> proto);

  template <class P, class... Args>
  P& emplace(Args&&... args) {
    auto owned = std::make_unique<P>(*this, std::forward<Args>(args)...);
    P& ref = *owned;
    add_protocol(std::move(owned));
    return ref;
  }

  /// Invokes Protocol::start() on every registered protocol.
  void start();

  /// Runs the event loop for \p dur of wall-clock time (or until stop()).
  void run_for(DurUs dur);

  /// Runs until \p pred holds (checked after every loop iteration) or
  /// \p deadline elapses; returns pred's final value.
  bool run_until(const std::function<bool()>& pred, DurUs deadline);

  /// Makes the current run_for/run_until return promptly; callable from a
  /// timer or message callback.
  void stop() { stopping_ = true; }

  /// Per-peer and per-label traffic accounting, now on the unified
  /// obs::MetricsRegistry (same .get() lookups as the old sim::Counters):
  ///   "msg.<label>.sent/.dropped", "net.sent.p<dst>", "net.recv.p<src>",
  ///   "net.decode_error", "net.misaddressed", "net.unknown_protocol".
  /// Syscall batching is observable per peer: "net.sent_batched.p<dst>"
  /// counts datagrams that left in a sendmmsg(2) batch of two or more,
  /// "net.sent_single.p<dst>" those sent one-at-a-time (batch of one, or
  /// the sendto(2) fallback); the two always sum to "net.sent.p<dst>".
  /// The "net.send_batch" histogram records the datagrams-per-syscall
  /// distribution the batching achieves.
  [[nodiscard]] obs::MetricsRegistry& counters() { return metrics_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }

  /// Attaches a typed event recorder; this node's events go to ring(self).
  /// Call before start(); \p rec must outlive this env.
  void attach_recorder(obs::Recorder* rec);

  /// Local UDP port actually bound (differs from the peer table when the
  /// configured port was 0 = ephemeral; used by tests).
  [[nodiscard]] std::uint16_t bound_port() const { return bound_port_; }

  // --- External clients -------------------------------------------------
  // Datagrams whose decoded src is kNoProcess are not peer traffic: they
  // come from clients outside the universe (the kv client library). They
  // are routed to the external handler together with an opaque token that
  // identifies the sender's address; send_external() routes a reply back.
  // Without a handler such frames count as misaddressed, exactly as
  // before.

  /// IPv4 address + UDP port of an external sender, packed
  /// (ip << 16) | port; stable for the sender's lifetime, usable as a map
  /// key, and round-trippable through send_external.
  using ExternalToken = std::uint64_t;
  using ExternalHandler = std::function<void(ExternalToken, const Message&)>;

  /// Installs the handler for external frames (before start()).
  void set_external_handler(ExternalHandler fn) {
    external_ = std::move(fn);
  }

  /// Encodes and queues \p m for the external sender \p token (stamps
  /// src = self, dst = kNoProcess). Counted as "net.sent_external".
  void send_external(ExternalToken token, Message m);

  // --- Env --------------------------------------------------------------
  [[nodiscard]] TimeUs now() const override;
  void send(ProcessId dst, Message m) override;
  TimerId set_timer(DurUs delay, std::function<void()> fn) override;
  void cancel_timer(TimerId id) override;
  [[nodiscard]] ProcessId self() const override { return opts_.self; }
  [[nodiscard]] int n() const override {
    return static_cast<int>(opts_.peers.size());
  }
  Rng& rng() override { return rng_; }
  void trace(const std::string& tag, const std::string& detail) override;

 private:
  struct Timer {
    TimeUs when{};
    std::uint64_t seq{};
    TimerId id{kInvalidTimer};
    std::function<void()> fn;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// One loop iteration: fire due timers, flush queued sends, then block
  /// in poll(2) for at most \p max_wait waiting for datagrams.
  void poll_once(DurUs max_wait);
  void drain_socket();
  void fire_due_timers();
  [[nodiscard]] TimeUs next_timer_at() const;
  /// Queues an encoded frame for \p dst; the wire syscall happens at the
  /// next flush_sends() (same loop iteration, batched with its neighbours).
  void transmit(ProcessId dst, std::vector<std::uint8_t> frame);
  /// Sends everything queued by transmit(), sendmmsg(2) up to kSendBatch
  /// datagrams per syscall, falling back to per-datagram sendto(2) when
  /// the kernel lacks the batched call.
  void flush_sends();
  /// Decodes one received datagram and routes it (counters on error);
  /// \p from_token identifies the sender address for the external path.
  void handle_frame(const std::uint8_t* data, std::size_t len,
                    ExternalToken from_token);
  void deliver(const Message& m);

  /// Pre-registered per-peer counter cells (bind-time registration,
  /// direct bumps on the send/receive paths — see MetricsRegistry docs).
  struct PeerCells {
    obs::MetricsRegistry::Cell* sent{nullptr};
    obs::MetricsRegistry::Cell* sent_batched{nullptr};
    obs::MetricsRegistry::Cell* sent_single{nullptr};
    obs::MetricsRegistry::Cell* recv{nullptr};
  };

  Options opts_;
  obs::MetricsRegistry metrics_;
  std::vector<PeerCells> peer_cells_;
  obs::Histogram* send_batch_hist_{nullptr};
  Rng rng_;
  std::chrono::steady_clock::time_point epoch_;

  int fd_{-1};
  std::uint16_t bound_port_{0};
  std::vector<std::vector<std::uint8_t>> peer_sockaddrs_;  ///< opaque sockaddr_in

  static constexpr std::size_t kSendBatch = 64;  ///< datagrams per sendmmsg
  static constexpr std::size_t kRecvBatch = 16;  ///< datagrams per recvmmsg
  struct PendingSend {
    ProcessId dst{};  ///< kNoProcess for external sends (addr set instead)
    std::vector<std::uint8_t> frame;
    std::vector<std::uint8_t> addr;  ///< raw sockaddr; empty = peer table
  };
  std::vector<PendingSend> out_;       ///< queued until flush_sends()
  std::vector<std::uint8_t> recv_bufs_;  ///< kRecvBatch frame-sized buffers
  bool use_mmsg_{true};  ///< cleared on ENOSYS; falls back to sendto/recvfrom

  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timers_;
  std::unordered_set<TimerId> cancelled_;
  std::uint64_t next_seq_{1};
  TimerId next_timer_{1};
  bool stopping_{false};

  std::vector<std::unique_ptr<Protocol>> owned_;
  std::unordered_map<ProtocolId, Protocol*> by_id_;
  ExternalHandler external_;
  bool started_{false};
};

}  // namespace ecfd::transport
