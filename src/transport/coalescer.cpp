#include "transport/coalescer.hpp"

#include <cassert>
#include <utility>

#include "wire/envelope.hpp"

namespace ecfd::transport {

Coalescer::Coalescer(int n, CoalescerOptions opts)
    : queues_(static_cast<std::size_t>(n)), opts_(opts) {
  if (opts_.max_frames < 2) opts_.max_frames = 2;
  if (opts_.max_frames > wire::kMaxFramesPerEnvelope) {
    opts_.max_frames = wire::kMaxFramesPerEnvelope;
  }
  // The envelope (header, per-frame length prefixes, CRC) must itself fit
  // one datagram; budget conservatively against the frame cap.
  const std::size_t hard_cap =
      wire::kMaxFrameBytes - wire::kEnvelopeOverheadBytes -
      opts_.max_frames * wire::kEnvelopeFrameOverheadBytes;
  if (opts_.max_bytes > hard_cap) opts_.max_bytes = hard_cap;
  if (opts_.max_bytes < 256) opts_.max_bytes = 256;
}

void Coalescer::pack(PeerQueue& q, ProcessId dst, std::vector<Packed>* out) {
  if (q.frames.empty()) return;
  Packed p;
  p.dst = dst;
  p.frames = q.frames.size();
  if (q.frames.size() == 1) {
    p.bytes = std::move(q.frames.front());
  } else {
    std::string error;
    if (!wire::encode_envelope(q.frames, &p.bytes, &error)) {
      // Cannot happen with the add() bounds below; degrade to singles
      // rather than dropping traffic if it ever does.
      for (auto& f : q.frames) {
        out->push_back(Packed{dst, 1, std::move(f)});
      }
      q.frames.clear();
      q.bytes = 0;
      q.deadline = kTimeNever;
      --pending_;
      return;
    }
  }
  q.frames.clear();
  q.bytes = 0;
  q.deadline = kTimeNever;
  --pending_;
  out->push_back(std::move(p));
}

void Coalescer::add(ProcessId dst, std::vector<std::uint8_t> frame,
                    TimeUs now, std::vector<Packed>* ready) {
  assert(dst >= 0 && static_cast<std::size_t>(dst) < queues_.size());
  if (!opts_.enabled) {
    ready->push_back(Packed{dst, 1, std::move(frame)});
    return;
  }
  PeerQueue& q = queues_[static_cast<std::size_t>(dst)];
  // An oversized frame never fits an envelope: flush the queue and pass
  // it through raw, preserving per-peer FIFO order.
  if (frame.size() > opts_.max_bytes) {
    pack(q, dst, ready);
    ready->push_back(Packed{dst, 1, std::move(frame)});
    return;
  }
  if (!q.frames.empty() && q.bytes + frame.size() > opts_.max_bytes) {
    pack(q, dst, ready);
  }
  if (q.frames.empty()) {
    q.deadline = now + opts_.flush_delay;
    ++pending_;
  }
  q.bytes += frame.size();
  q.frames.push_back(std::move(frame));
  if (q.frames.size() >= opts_.max_frames) pack(q, dst, ready);
}

void Coalescer::flush_due(TimeUs now, std::vector<Packed>* out) {
  if (pending_ == 0) return;
  for (std::size_t p = 0; p < queues_.size() && pending_ > 0; ++p) {
    PeerQueue& q = queues_[p];
    if (!q.frames.empty() && q.deadline <= now) {
      pack(q, static_cast<ProcessId>(p), out);
    }
  }
}

void Coalescer::flush_all(std::vector<Packed>* out) {
  if (pending_ == 0) return;
  for (std::size_t p = 0; p < queues_.size() && pending_ > 0; ++p) {
    pack(queues_[p], static_cast<ProcessId>(p), out);
  }
}

TimeUs Coalescer::next_deadline() const {
  TimeUs earliest = kTimeNever;
  if (pending_ == 0) return earliest;
  for (const PeerQueue& q : queues_) {
    if (!q.frames.empty() && q.deadline < earliest) earliest = q.deadline;
  }
  return earliest;
}

}  // namespace ecfd::transport
