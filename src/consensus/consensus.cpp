#include "consensus/consensus.hpp"

#include <sstream>

namespace ecfd::consensus {

/// Renders a decision for logs and test failure messages.
std::string to_string(const Decision& d) {
  std::ostringstream os;
  os << "decide(" << d.value << ") in round " << d.round << " at " << d.at
     << "us";
  return os.str();
}

}  // namespace ecfd::consensus
