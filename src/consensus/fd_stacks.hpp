#pragma once

#include <memory>
#include <string>
#include <vector>

#include "consensus/harness.hpp"
#include "core/ecfd_oracle.hpp"
#include "net/process_host.hpp"

/// \file fd_stacks.hpp
/// The single failure-detector stack factory shared by the consensus
/// harness, ecfd_sim, ecfd_fuzz and check/fuzz.cpp. Each FdStack entry
/// carries its canonical name (pinned by fuzz digests and repro files), a
/// short CLI alias, a help one-liner and an installer that emplaces the
/// stack's protocols on a host and returns the oracle views. Adding a
/// stack means adding one table row here — and APPENDING to the FdStack
/// enum, since fuzz digests hash its ordinal.

namespace ecfd::consensus {

/// What install_fd_stack() mounted: the oracle views plus an optional
/// query-time adapter the caller must keep alive for the run (protocol
/// instances themselves are owned by the host).
struct FdInstallation {
  std::unique_ptr<core::EcfdOracle> owned;  ///< adapter; null if a protocol
  const core::EcfdOracle* ecfd{nullptr};
  const SuspectOracle* suspect{nullptr};
  const LeaderOracle* leader{nullptr};
};

/// Scenario-derived inputs some stacks need (today: kScriptedStable).
struct FdStackParams {
  ProcessSet crashed;            ///< processes the script must suspect
  ProcessId leader{kNoProcess};  ///< scripted post-stability leader
  TimeUs stable_at{0};           ///< scripted stabilization time
  bool ewa_only{false};          ///< scripted: Theorem-3 adversarial ◇S
};

struct FdStackInfo {
  FdStack id;
  const char* name;   ///< canonical (fuzz digests, repro files)
  const char* alias;  ///< short CLI alias, may equal name
  const char* summary;
  FdInstallation (*install)(ProcessHost& host, const FdStackParams& params);
};

/// All stacks, in FdStack ordinal order.
const std::vector<FdStackInfo>& all_fd_stacks();

const FdStackInfo& fd_stack_info(FdStack f);

/// Lookup by canonical name or alias; nullptr when unknown.
const FdStackInfo* fd_stack_by_name(const std::string& s);

/// Installs stack \p f on \p host; see FdInstallation for ownership.
FdInstallation install_fd_stack(FdStack f, ProcessHost& host,
                                const FdStackParams& params = {});

/// Counter prefixes ("msg.<label>.") that count as failure-detector
/// traffic in harness cost accounting.
const std::vector<std::string>& fd_msg_prefixes();

}  // namespace ecfd::consensus
