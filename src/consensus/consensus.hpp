#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "net/env.hpp"

/// \file consensus.hpp
/// The (Uniform) Consensus problem interface (Section 5.1).
///
/// Each process proposes a value; all correct processes must reach an
/// irrevocable decision on a common proposed value:
///   * Termination        — every correct process eventually decides;
///   * Uniform integrity  — every process decides at most once;
///   * Uniform agreement  — no two processes (correct or faulty) decide
///                          differently;
///   * Validity           — a decided value was proposed by some process.

namespace ecfd::consensus {

/// Proposed / decided values.
using Value = std::int64_t;

/// A decision event at one process.
struct Decision {
  Value value{};
  int round{0};   ///< round in which the deciding broadcast originated
  TimeUs at{0};   ///< local time of the decision
};

/// Base class for consensus protocol instances.
class ConsensusProtocol : public Protocol {
 public:
  using Protocol::Protocol;

  /// Proposes this process's initial value. Call exactly once, after the
  /// system has started (or it will be buffered until start()).
  virtual void propose(Value v) = 0;

  [[nodiscard]] bool has_decided() const { return decision_.has_value(); }
  [[nodiscard]] const std::optional<Decision>& decision() const {
    return decision_;
  }

  /// Round this process is currently executing (1-based; 0 before propose).
  [[nodiscard]] virtual int current_round() const = 0;

  /// Optional decision callback.
  void set_on_decide(std::function<void(const Decision&)> fn) {
    on_decide_ = std::move(fn);
  }

 protected:
  /// Records the decision; idempotent (uniform integrity).
  void decide(Value v, int round) {
    if (decision_.has_value()) return;
    decision_ = Decision{v, round, env_.now()};
    env_.record(EventType::kDecide, round, v);
    env_.trace("consensus.decide",
               "v=" + std::to_string(v) + " r=" + std::to_string(round));
    if (on_decide_) (*on_decide_)(*decision_);
  }

 private:
  std::optional<Decision> decision_;
  std::optional<std::function<void(const Decision&)>> on_decide_;
};

}  // namespace ecfd::consensus
