#include "consensus/fd_stacks.hpp"

#include "core/ecfd_compose.hpp"
#include "fd/efficient_p.hpp"
#include "fd/heartbeat_p.hpp"
#include "fd/hier_c.hpp"
#include "fd/leader_candidate.hpp"
#include "fd/ring_fd.hpp"
#include "fd/scripted_fd.hpp"
#include "fd/swim.hpp"

namespace ecfd::consensus {

namespace {

FdInstallation install_ring(ProcessHost& host, const FdStackParams&) {
  FdInstallation out;
  auto& ring = host.emplace<fd::RingFd>();
  out.owned = std::make_unique<core::EcfdFromRing>(&ring);
  out.ecfd = out.owned.get();
  out.suspect = &ring;
  out.leader = &ring;
  return out;
}

FdInstallation install_heartbeat(ProcessHost& host, const FdStackParams&) {
  FdInstallation out;
  auto& hb = host.emplace<fd::HeartbeatP>();
  auto from_p = std::make_unique<core::EcfdFromP>(&hb);
  out.suspect = &hb;
  out.leader = from_p.get();
  out.ecfd = from_p.get();
  out.owned = std::move(from_p);
  return out;
}

FdInstallation install_heartbeat_adaptive(ProcessHost& host,
                                          const FdStackParams&) {
  FdInstallation out;
  fd::HeartbeatP::Config hbc;
  hbc.adaptive = true;
  hbc.predictor.fallback_timeout = hbc.initial_timeout;
  auto& hb = host.emplace<fd::HeartbeatP>(hbc);
  auto from_p = std::make_unique<core::EcfdFromP>(&hb);
  out.suspect = &hb;
  out.leader = from_p.get();
  out.ecfd = from_p.get();
  out.owned = std::move(from_p);
  return out;
}

FdInstallation install_omega_heartbeat(ProcessHost& host,
                                       const FdStackParams&) {
  FdInstallation out;
  auto& hb = host.emplace<fd::HeartbeatP>();
  auto& lc = host.emplace<fd::LeaderCandidate>();
  out.owned = std::make_unique<core::EcfdFromSAndOmega>(&hb, &lc);
  out.ecfd = out.owned.get();
  out.suspect = &hb;
  out.leader = &lc;
  return out;
}

FdInstallation install_efficient_p(ProcessHost& host, const FdStackParams&) {
  FdInstallation out;
  // EfficientP is a complete ◇C module already; no adapter needed.
  auto& eff = host.emplace<fd::EfficientP>();
  out.ecfd = &eff;
  out.suspect = &eff;
  out.leader = &eff;
  return out;
}

FdInstallation install_scripted(ProcessHost& host,
                                const FdStackParams& params) {
  FdInstallation out;
  const int n = host.n();
  ProcessId leader = params.leader;
  if (leader == kNoProcess) {
    ProcessSet correct = ProcessSet::full(n) - params.crashed;
    leader = correct.empty() ? 0 : correct.first();
  }
  auto& scripted = host.emplace<fd::ScriptedFd>(
      params.ewa_only
          ? fd::ewa_only_script(n, host.self(), leader, params.stable_at)
          : fd::stable_script(n, host.self(), params.crashed, leader,
                              params.stable_at));
  out.owned = std::make_unique<core::EcfdFromSAndOmega>(&scripted, &scripted);
  out.ecfd = out.owned.get();
  out.suspect = &scripted;
  out.leader = &scripted;
  return out;
}

FdInstallation install_hier_c(ProcessHost& host, const FdStackParams&) {
  FdInstallation out;
  auto& hier = host.emplace<fd::HierC>();
  out.ecfd = &hier;
  out.suspect = &hier;
  out.leader = &hier;
  return out;
}

FdInstallation install_swim(ProcessHost& host, const FdStackParams&) {
  FdInstallation out;
  auto& swim = host.emplace<fd::SwimFd>();
  out.ecfd = &swim;
  out.suspect = &swim;
  out.leader = &swim;
  return out;
}

}  // namespace

const std::vector<FdStackInfo>& all_fd_stacks() {
  static const std::vector<FdStackInfo> kStacks = {
      {FdStack::kRing, "ring", "ring",
       "ring ◇S/◇P with its free leader (◇C at no extra cost)",
       &install_ring},
      {FdStack::kHeartbeatP, "heartbeat_p", "heartbeat",
       "all-to-all heartbeat ◇P, leader = first unsuspected",
       &install_heartbeat},
      {FdStack::kOmegaPlusHeartbeat, "omega_heartbeat", "mix",
       "leader-candidate Omega + heartbeat ◇S, composed",
       &install_omega_heartbeat},
      {FdStack::kEfficientP, "efficient_p", "effp",
       "§4 piggybacked Omega+◇P (cheapest flat full stack)",
       &install_efficient_p},
      {FdStack::kScriptedStable, "scripted", "scripted",
       "scripted: chaos until fd_stable_at, then perfect",
       &install_scripted},
      {FdStack::kHeartbeatAdaptive, "heartbeat_adaptive", "adaptive",
       "heartbeat ◇P with Chen-style adaptive timeouts",
       &install_heartbeat_adaptive},
      {FdStack::kHierC, "hier_c", "hier",
       "two-level hierarchical ◇C: √n cells, O(n) msgs/period",
       &install_hier_c},
      {FdStack::kSwim, "swim", "swim",
       "SWIM gossip membership as ◇C: O(1) msgs per node per period",
       &install_swim},
  };
  return kStacks;
}

const FdStackInfo& fd_stack_info(FdStack f) {
  return all_fd_stacks()[static_cast<std::size_t>(f)];
}

const FdStackInfo* fd_stack_by_name(const std::string& s) {
  for (const FdStackInfo& info : all_fd_stacks()) {
    if (s == info.name || s == info.alias) return &info;
  }
  return nullptr;
}

FdInstallation install_fd_stack(FdStack f, ProcessHost& host,
                                const FdStackParams& params) {
  return fd_stack_info(f).install(host, params);
}

const std::vector<std::string>& fd_msg_prefixes() {
  static const std::vector<std::string> kPrefixes = {
      "msg.hb_p.", "msg.ring.", "msg.lc.",   "msg.ofs.",
      "msg.effp.", "msg.hier.", "msg.swim.",
  };
  return kPrefixes;
}

}  // namespace ecfd::consensus
