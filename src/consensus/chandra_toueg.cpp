#include "consensus/chandra_toueg.hpp"

#include <cassert>

namespace ecfd::consensus {

namespace {
constexpr int kDecideTag = 1;
}

ChandraTouegConsensus::ChandraTouegConsensus(Env& env, const SuspectOracle* fd,
                                             broadcast::ReliableBroadcast* rb)
    : ChandraTouegConsensus(env, fd, rb, Config{}) {}

ChandraTouegConsensus::ChandraTouegConsensus(Env& env,
                                             const SuspectOracle* fd,
                                             broadcast::ReliableBroadcast* rb,
                                             Config cfg)
    : ConsensusProtocol(env, protocol_ids::kConsensusCT),
      cfg_(cfg),
      fd_(fd),
      rb_(rb) {
  rb_->set_deliver(
      [this](const broadcast::RbEnvelope& e) { on_rb_deliver(e); });
}

void ChandraTouegConsensus::start() {
  started_ = true;
  env_.set_timer(cfg_.poll_period, [this]() { poll(); });
  if (proposed_ && round_ == 0) begin_round_one();
}

void ChandraTouegConsensus::propose(Value v) {
  if (proposed_) return;
  proposed_ = true;
  estimate_ = v;
  ts_ = 0;
  if (started_ && round_ == 0) begin_round_one();
}

void ChandraTouegConsensus::begin_round_one() {
  enter_round(1);
  std::vector<Message> buffered;
  buffered.swap(pre_propose_buffer_);
  for (const Message& m : buffered) on_message(m);
  step();
}

void ChandraTouegConsensus::poll() {
  if (halted_) return;
  step();
  if (!halted_) env_.set_timer(cfg_.poll_period, [this]() { poll(); });
}

void ChandraTouegConsensus::enter_round(int r) {
  assert(r > round_);
  estimates_.erase(estimates_.begin(), estimates_.lower_bound(r));
  acks_.erase(acks_.begin(), acks_.lower_bound(r));
  proposals_.erase(proposals_.begin(), proposals_.lower_bound(r));

  round_ = r;
  env_.record(EventType::kRoundStart, r);
  is_coordinator_ = coordinator_of(r) == env_.self();

  if (cfg_.max_rounds > 0 && round_ > cfg_.max_rounds) {
    gave_up_ = true;
    halt();
    return;
  }

  // Phase 1: send the estimate to the coordinator (self-estimates enter
  // the tally directly; no self-messages, as in the paper's counting).
  const ProcessId c = coordinator_of(r);
  if (is_coordinator_) {
    auto [it, inserted] = estimates_.try_emplace(r);
    if (inserted) it->second.responders = ProcessSet(env_.n());
    it->second.responders.add(env_.self());
    ++it->second.total;
    it->second.best = estimate_;
    it->second.best_ts = ts_;
    phase_ = 2;
  } else {
    env_.send(c, Message::make(protocol_id(), kEstimate, "ct.estimate",
                               EstimateBody{r, estimate_, ts_}));
    phase_ = 3;
  }
}

bool ChandraTouegConsensus::step_once() {
  switch (phase_) {
    case 2: {  // coordinator gathers the first majority of estimates
      auto it = estimates_.find(round_);
      if (it == estimates_.end() || it->second.total < majority()) {
        return false;
      }
      // Propose the largest-timestamp estimate, adopt it, self-ack.
      estimate_ = it->second.best;
      ts_ = round_;
      env_.broadcast(Message::make(protocol_id(), kPropose, "ct.propose",
                                   ProposeBody{round_, estimate_}));
      auto [ait, inserted] = acks_.try_emplace(round_);
      if (inserted) ait->second.responders = ProcessSet(env_.n());
      ait->second.responders.add(env_.self());
      ++ait->second.acks;
      phase_ = 4;
      return true;
    }
    case 3: {  // participant waits for the proposition or a suspicion
      auto it = proposals_.find(round_);
      const ProcessId c = coordinator_of(round_);
      if (it != proposals_.end()) {
        estimate_ = it->second.value;
        ts_ = round_;
        env_.send(c, Message::make(protocol_id(), kAck, "ct.ack",
                                   RoundOnly{round_}));
        enter_round(round_ + 1);
        return !halted_;
      }
      if (fd_->suspected().contains(c)) {
        env_.send(c, Message::make(protocol_id(), kNack, "ct.nack",
                                   RoundOnly{round_}));
        enter_round(round_ + 1);
        return !halted_;
      }
      return false;
    }
    case 4: {  // coordinator gathers the first majority of ack/nacks
      auto it = acks_.find(round_);
      if (it == acks_.end()) return false;
      const AckTally& t = it->second;
      if (t.acks + t.nacks < majority()) return false;
      if (t.nacks == 0) {
        // All of the first majority adopted the proposition.
        rb_->r_broadcast(kDecideTag, DecideBody{round_, estimate_});
      }
      enter_round(round_ + 1);
      return !halted_;
    }
    default:
      return false;
  }
}

void ChandraTouegConsensus::step() {
  while (!halted_ && round_ > 0 && step_once()) {
  }
}

void ChandraTouegConsensus::on_message(const Message& m) {
  if (halted_) return;
  if (round_ == 0) {
    pre_propose_buffer_.push_back(m);
    return;
  }
  switch (m.type) {
    case kEstimate: {
      const auto& b = m.as<EstimateBody>();
      if (b.round < round_) break;  // stale: that round is over for us
      auto [it, inserted] = estimates_.try_emplace(b.round);
      if (inserted) it->second.responders = ProcessSet(env_.n());
      if (it->second.responders.contains(m.src)) break;
      it->second.responders.add(m.src);
      ++it->second.total;
      if (b.ts > it->second.best_ts) {
        it->second.best_ts = b.ts;
        it->second.best = b.value;
      }
      step();
      break;
    }
    case kPropose: {
      const auto& b = m.as<ProposeBody>();
      if (b.round < round_) break;  // we already acked or nacked that round
      proposals_.emplace(b.round, b);
      step();
      break;
    }
    case kAck:
    case kNack: {
      const int r = m.as<RoundOnly>().round;
      if (r < round_) break;
      auto [it, inserted] = acks_.try_emplace(r);
      if (inserted) it->second.responders = ProcessSet(env_.n());
      if (it->second.responders.contains(m.src)) break;
      it->second.responders.add(m.src);
      if (m.type == kAck) {
        ++it->second.acks;
      } else {
        ++it->second.nacks;
      }
      step();
      break;
    }
    default:
      break;
  }
}

void ChandraTouegConsensus::on_rb_deliver(const broadcast::RbEnvelope& e) {
  if (e.tag != kDecideTag) return;
  const auto& b = e.as<DecideBody>();
  decide(b.value, b.round);
  halt();
}

}  // namespace ecfd::consensus
