#pragma once

#include <map>

#include "broadcast/reliable_broadcast.hpp"
#include "consensus/bodies.hpp"
#include "consensus/consensus.hpp"
#include "fd/oracle.hpp"
#include "net/protocol_ids.hpp"

/// \file chandra_toueg.hpp
/// The Chandra-Toueg ◇S consensus algorithm ([6]) — the rotating-
/// coordinator baseline the paper compares against (Sections 5.2-5.4).
/// Requires f < n/2 and reliable links.
///
/// Rounds are 1-based; the coordinator of round r is p_{(r-1) mod n}
/// (the rotating coordinator paradigm). Each round has four phases:
///   Phase 1 — everyone sends its timestamped estimate to the coordinator;
///   Phase 2 — the coordinator waits for the FIRST majority of estimates,
///             picks one with the largest timestamp, proposes it to all;
///   Phase 3 — everyone waits for the proposition or for the coordinator
///             to become suspected; it acks (adopting the value) or nacks;
///   Phase 4 — the coordinator waits for the FIRST majority of ack/nacks
///             and R-broadcasts `decide` only if ALL of them are acks —
///             one single negative reply blocks the round, which is the
///             behaviour the paper's Phase 2/4 waiting rule improves on.
///
/// Decisions propagate by Reliable Broadcast. The per-round message count
/// is about 3n and, per Theorem 3, a run may need up to n extra rounds
/// after the detector stabilizes before the never-suspected process gets
/// its turn as coordinator.

namespace ecfd::consensus {

class ChandraTouegConsensus final : public ConsensusProtocol {
 public:
  struct Config {
    DurUs poll_period{msec(2)};
    int max_rounds{0};  ///< 0 = unlimited
  };

  ChandraTouegConsensus(Env& env, const SuspectOracle* fd,
                        broadcast::ReliableBroadcast* rb);
  ChandraTouegConsensus(Env& env, const SuspectOracle* fd,
                        broadcast::ReliableBroadcast* rb, Config cfg);

  void start() override;
  void propose(Value v) override;
  void on_message(const Message& m) override;

  [[nodiscard]] int current_round() const override { return round_; }
  [[nodiscard]] bool gave_up() const { return gave_up_; }

  /// Coordinator of round r under rotation.
  [[nodiscard]] ProcessId coordinator_of(int r) const {
    return (r - 1) % env_.n();
  }

 private:
  enum MsgType {
    kEstimate = 1,
    kPropose = 2,
    kAck = 3,
    kNack = 4,
  };

  // Message bodies are the shared consensus wire shapes (consensus/bodies.hpp).
  using EstimateBody = consensus::EstimateBody;
  using ProposeBody = consensus::ProposeBody;
  using RoundOnly = consensus::RoundOnly;
  using DecideBody = consensus::DecideBody;

  struct EstimateTally {
    int total{0};
    Value best{};
    int best_ts{-1};
    ProcessSet responders;
  };
  struct AckTally {
    int acks{0};
    int nacks{0};
    ProcessSet responders;
  };

  [[nodiscard]] int majority() const { return env_.n() / 2 + 1; }

  void on_rb_deliver(const broadcast::RbEnvelope& e);
  void poll();
  void step();
  bool step_once();
  void enter_round(int r);
  void begin_round_one();
  void halt() { halted_ = true; }

  Config cfg_;
  const SuspectOracle* fd_;
  broadcast::ReliableBroadcast* rb_;

  bool proposed_{false};
  bool started_{false};
  bool halted_{false};
  bool gave_up_{false};

  Value estimate_{};
  int ts_{0};

  int round_{0};
  int phase_{0};
  bool is_coordinator_{false};

  std::map<int, EstimateTally> estimates_;
  std::map<int, AckTally> acks_;
  std::map<int, ProposeBody> proposals_;  ///< proposition per round (if any)
  /// Messages that arrived before propose(); replayed when round 1 starts
  /// (a faster coordinator's one-shot proposition must not be lost).
  std::vector<Message> pre_propose_buffer_;
};

}  // namespace ecfd::consensus
