#pragma once

#include "consensus/consensus.hpp"

/// \file bodies.hpp
/// The message bodies exchanged by the consensus engines (core/consensus_c
/// and consensus/chandra_toueg share these exact shapes — both are rounds
/// of timestamped estimates, propositions and ack/nacks).
///
/// They are public (rather than nested in the protocol classes) so the
/// wire codec (wire/codec.hpp) can serialize them for the real-network
/// transport without befriending every engine.

namespace ecfd::consensus {

/// Phase 1: a participant's timestamped estimate for a round.
struct EstimateBody {
  int round{};
  Value value{};
  int ts{};
};

/// Phase 2: a coordinator's (non-null) proposition.
struct ProposeBody {
  int round{};
  Value value{};
};

/// Round-only bodies: coordinator announcements, null estimates, null
/// propositions, acks and nacks.
struct RoundOnly {
  int round{};
};

/// R-broadcast decision payload.
struct DecideBody {
  int round{};
  Value value{};
};

}  // namespace ecfd::consensus
