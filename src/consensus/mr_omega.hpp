#pragma once

#include "core/consensus_c.hpp"
#include "core/ecfd_compose.hpp"

/// \file mr_omega.hpp
/// Leader-based consensus with an Omega failure detector, in the style of
/// Mostefaoui-Raynal (PPL 2001, [20]) — the second baseline of Section 5.4.
///
/// We do not have the figure-level pseudocode of [20] in the reproduced
/// paper, so, as recorded in DESIGN.md, the baseline is reconstructed
/// exactly along the axes the paper compares (Sections 1.3 and 5.4):
///   * coordinator selection comes from Omega (no rotating coordinator),
///     so it also decides one round after stabilization;
///   * the detector offers leader information ONLY — modelled by the
///     paper's own Omega→◇C construction, which suspects everyone but the
///     trusted process — so the coordinator cannot out-wait the first
///     n−f replies (kNMinusF policy; with only "a majority is correct"
///     known, f = ⌈n/2⌉−1 and a single nack among the first majority can
///     block a round, as the paper stresses);
///   * every phase starts with a broadcast (the merged announce/estimate
///     layout), giving the Θ(n²) messages/round and three-communication-
///     step structure reported in Section 5.4.
///
/// Safety is inherited verbatim from the quorum argument of the ConsensusC
/// engine it instantiates.

namespace ecfd::consensus {

class MrOmegaConsensus final : public ConsensusProtocol {
 public:
  struct Config {
    /// Known upper bound f on crashes; <0 means only majority-correct is
    /// known (f = ceil(n/2)-1).
    int f{-1};
    DurUs poll_period{msec(2)};
    int max_rounds{0};
  };

  MrOmegaConsensus(Env& env, const LeaderOracle* omega,
                   broadcast::ReliableBroadcast* rb);
  MrOmegaConsensus(Env& env, const LeaderOracle* omega,
                   broadcast::ReliableBroadcast* rb, Config cfg);

  void start() override { inner_.start(); }
  void propose(Value v) override { inner_.propose(v); }
  void on_message(const Message& m) override { inner_.on_message(m); }
  [[nodiscard]] int current_round() const override {
    return inner_.current_round();
  }
  [[nodiscard]] bool gave_up() const { return inner_.gave_up(); }

 private:
  core::EcfdFromOmega adapter_;
  core::ConsensusC inner_;
};

}  // namespace ecfd::consensus
