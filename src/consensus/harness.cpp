#include "consensus/harness.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "broadcast/reliable_broadcast.hpp"
#include "consensus/chandra_toueg.hpp"
#include "consensus/fd_stacks.hpp"
#include "consensus/mr_omega.hpp"
#include "core/consensus_c.hpp"

namespace ecfd::consensus {

namespace {

/// Sum of ".sent" counters whose key starts with \p prefix.
std::int64_t sum_sent(const sim::Counters& counters,
                      const std::string& prefix) {
  std::int64_t total = 0;
  for (const auto& [key, value] : counters.all()) {
    if (key.rfind(prefix, 0) == 0 && key.size() > 5 &&
        key.compare(key.size() - 5, 5, ".sent") == 0) {
      total += value;
    }
  }
  return total;
}

ProcessSet planned_correct(const ScenarioConfig& sc) {
  ProcessSet correct = ProcessSet::full(sc.n);
  for (const CrashPlan& c : sc.crashes) correct.remove(c.process);
  return correct;
}

}  // namespace

HarnessResult run_consensus(const HarnessConfig& cfg) {
  const int n = cfg.scenario.n;
  auto sys = make_system(cfg.scenario);
  const ProcessSet correct = planned_correct(cfg.scenario);

  // --- failure-detector stack --------------------------------------
  // Raw pointers below are owned by the hosts (protocols) or by `oracles`
  // (query-time adapters), both of which outlive the run.
  std::vector<std::unique_ptr<core::EcfdOracle>> oracles(
      static_cast<std::size_t>(n));
  std::vector<const core::EcfdOracle*> ecfd(static_cast<std::size_t>(n));
  std::vector<const SuspectOracle*> suspects(static_cast<std::size_t>(n));
  std::vector<const LeaderOracle*> leaders(static_cast<std::size_t>(n));

  FdStackParams fd_params;
  fd_params.crashed = ProcessSet::full(n) - correct;
  fd_params.leader = cfg.scripted_leader;
  fd_params.stable_at = cfg.fd_stable_at;
  fd_params.ewa_only = cfg.scripted_ewa_only;
  for (ProcessId p = 0; p < n; ++p) {
    const auto i = static_cast<std::size_t>(p);
    FdInstallation inst = install_fd_stack(cfg.fd, sys->host(p), fd_params);
    oracles[i] = std::move(inst.owned);
    ecfd[i] = inst.ecfd;
    suspects[i] = inst.suspect;
    leaders[i] = inst.leader;
  }

  // --- reliable broadcast + consensus -------------------------------
  std::vector<ConsensusProtocol*> cons(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p) {
    auto& host = sys->host(p);
    const auto i = static_cast<std::size_t>(p);
    auto& rb = host.emplace<broadcast::ReliableBroadcast>();
    switch (cfg.algo) {
      case Algo::kEcfdC:
      case Algo::kEcfdCMerged: {
        core::ConsensusC::Config cc;
        cc.merged_phase01 = cfg.algo == Algo::kEcfdCMerged;
        cc.max_rounds = cfg.max_rounds;
        cons[i] = &host.emplace<core::ConsensusC>(ecfd[i], &rb, cc);
        break;
      }
      case Algo::kChandraTouegS: {
        ChandraTouegConsensus::Config cc;
        cc.max_rounds = cfg.max_rounds;
        cons[i] =
            &host.emplace<ChandraTouegConsensus>(suspects[i], &rb, cc);
        break;
      }
      case Algo::kMrOmega: {
        MrOmegaConsensus::Config cc;
        cc.max_rounds = cfg.max_rounds;
        cons[i] = &host.emplace<MrOmegaConsensus>(leaders[i], &rb, cc);
        break;
      }
    }
  }

  // --- proposals -----------------------------------------------------
  std::vector<Value> proposals = cfg.proposals;
  if (proposals.empty()) {
    proposals.resize(static_cast<std::size_t>(n));
    for (ProcessId p = 0; p < n; ++p) proposals[static_cast<std::size_t>(p)] = 100 + p;
  }

  // --- observers (monitors, fault schedules) -------------------------
  if (cfg.instrument) {
    const HarnessInstruments inst{*sys,     cons,    suspects,
                                  leaders,  correct, proposals};
    cfg.instrument(inst);
  }

  sys->start();
  for (ProcessId p = 0; p < n; ++p) {
    const auto i = static_cast<std::size_t>(p);
    sys->scheduler().schedule_at(cfg.propose_at, [&sys, &cons, i, p,
                                                  v = proposals[i]]() {
      if (!sys->host(p).crashed()) cons[i]->propose(v);
    });
  }

  // --- run -----------------------------------------------------------
  const DurUs chunk = msec(50);
  while (sys->now() < cfg.horizon) {
    sys->run_for(std::min<DurUs>(chunk, cfg.horizon - sys->now()));
    if (cfg.run_to_horizon) continue;
    bool done = true;
    for (ProcessId p : correct.members()) {
      if (!cons[static_cast<std::size_t>(p)]->has_decided()) {
        done = false;
        break;
      }
    }
    if (done) break;
  }

  // --- evaluate ------------------------------------------------------
  HarnessResult r;
  r.correct = correct;
  r.outcomes.resize(static_cast<std::size_t>(n));
  bool first_value = true;
  Value agreed{};
  for (ProcessId p = 0; p < n; ++p) {
    const auto i = static_cast<std::size_t>(p);
    ProcessOutcome& o = r.outcomes[i];
    o.last_round = cons[i]->current_round();
    if (cons[i]->has_decided()) {
      const Decision& d = *cons[i]->decision();
      o.decided = true;
      o.value = d.value;
      o.round = d.round;
      o.at = d.at;
      r.max_decision_round = std::max(r.max_decision_round, d.round);
      r.min_decision_round = r.min_decision_round == 0
                                 ? d.round
                                 : std::min(r.min_decision_round, d.round);
      r.last_decision_at = std::max(r.last_decision_at, d.at);
      if (first_value) {
        agreed = d.value;
        first_value = false;
      } else if (d.value != agreed) {
        r.uniform_agreement = false;
      }
      if (std::find(proposals.begin(), proposals.end(), d.value) ==
          proposals.end()) {
        r.validity = false;
      }
    }
    if (correct.contains(p)) {
      r.max_round_entered = std::max(r.max_round_entered, o.last_round);
    }
  }
  r.every_correct_decided = true;
  for (ProcessId p : correct.members()) {
    if (!r.outcomes[static_cast<std::size_t>(p)].decided) {
      r.every_correct_decided = false;
    }
  }

  r.events_fired = sys->scheduler().fired();
  r.sim_end = sys->now();
  r.counters = sys->counters();

  const auto& counters = sys->counters();
  r.consensus_msgs =
      sum_sent(counters, "msg.cons_c.") + sum_sent(counters, "msg.ct.");
  r.rb_msgs = sum_sent(counters, "msg.rb.");
  r.fd_msgs = 0;
  for (const std::string& prefix : fd_msg_prefixes()) {
    r.fd_msgs += sum_sent(counters, prefix);
  }
  return r;
}

std::string summarize(const HarnessResult& r) {
  std::ostringstream os;
  os << (r.every_correct_decided ? "decided" : "NOT-decided")
     << " round<=" << r.max_decision_round << " t=" << r.last_decision_at
     << "us msgs=" << r.consensus_msgs << " rb=" << r.rb_msgs
     << " agree=" << (r.uniform_agreement ? "y" : "N")
     << " valid=" << (r.validity ? "y" : "N");
  return os.str();
}

}  // namespace ecfd::consensus
