#pragma once

#include <functional>
#include <string>
#include <vector>

#include "consensus/consensus.hpp"
#include "fd/oracle.hpp"
#include "net/scenario.hpp"

/// \file harness.hpp
/// One-call consensus experiment runner shared by tests and benchmarks:
/// builds a System from a scenario, installs a failure-detector stack, a
/// Reliable Broadcast instance and a consensus algorithm on every process,
/// proposes values, runs to a horizon, and evaluates the consensus
/// properties and cost metrics.

namespace ecfd::consensus {

/// Which consensus algorithm to run.
enum class Algo {
  kEcfdC,          ///< the paper's Figs. 3-4 algorithm (◇C)
  kEcfdCMerged,    ///< same with merged Phases 0+1 (Section 5.4 variant)
  kChandraTouegS,  ///< rotating-coordinator ◇S baseline
  kMrOmega,        ///< leader-based Omega baseline (MR style)
};

/// Which failure-detector stack feeds it.
enum class FdStack {
  kRing,            ///< ring ◇S/◇P + its free leader (◇C at no extra cost)
  kHeartbeatP,      ///< all-to-all ◇P, leader = first unsuspected
  kOmegaPlusHeartbeat,  ///< leader-candidate Omega + heartbeat ◇S, composed
  kEfficientP,      ///< §4 piggybacked Omega+◇P (cheapest full stack)
  kScriptedStable,  ///< scripted: chaos until fd_stable_at, then perfect
  kHeartbeatAdaptive,  ///< kHeartbeatP with Chen-style adaptive timeouts
  // Append only: fuzz digests hash the ordinal (see check/fuzz.cpp).
  kHierC,           ///< two-level hierarchical ◇C (√n cells, O(n) msgs)
  kSwim,            ///< SWIM gossip membership as ◇C (O(1) msgs per node)
};

/// Everything an observer may want to hook into, handed to
/// HarnessConfig::instrument after protocols are installed and before the
/// system starts. All vectors are indexed by process id; oracle pointers
/// may be null for stacks lacking that output. Observers must stay
/// read-only with respect to protocol state (they may schedule events,
/// e.g. fault injection, and register decision callbacks).
struct HarnessInstruments {
  System& sys;
  const std::vector<ConsensusProtocol*>& protocols;
  const std::vector<const SuspectOracle*>& suspects;
  const std::vector<const LeaderOracle*>& leaders;
  const ProcessSet& correct;            ///< never crashed by the crash plan
  const std::vector<Value>& proposals;  ///< value process p will propose
};

struct HarnessConfig {
  ScenarioConfig scenario;
  Algo algo{Algo::kEcfdC};
  FdStack fd{FdStack::kScriptedStable};

  /// Observer installation hook; see HarnessInstruments. Used by check/ to
  /// attach property monitors and fault-injection schedules.
  std::function<void(const HarnessInstruments&)> instrument;

  /// When true the run continues to `horizon` even after every correct
  /// process decided (monitors need the tail to watch the FD stabilize).
  bool run_to_horizon{false};

  /// kScriptedStable: when the detector becomes stable, and on whom.
  TimeUs fd_stable_at{msec(50)};
  /// Leader after stabilization; kNoProcess = first process that never
  /// crashes in the scenario.
  ProcessId scripted_leader{kNoProcess};
  /// When true, the scripted detector suspects everyone but the leader
  /// after stabilization (the Theorem 3 adversarial ◇S with only its weak
  /// accuracy witness); when false it suspects exactly the crashed set.
  bool scripted_ewa_only{false};

  /// Proposal values; empty = process p proposes 100 + p.
  std::vector<Value> proposals;
  TimeUs propose_at{msec(1)};

  /// Give up (per process) after this many rounds; 0 = unlimited.
  int max_rounds{0};
  /// Hard stop of the run.
  TimeUs horizon{sec(30)};
};

struct ProcessOutcome {
  bool decided{false};
  Value value{};
  int round{0};
  TimeUs at{0};
  int last_round{0};  ///< round the process was in when the run ended
};

struct HarnessResult {
  std::vector<ProcessOutcome> outcomes;
  ProcessSet correct;  ///< processes that never crashed

  bool every_correct_decided{false};     ///< termination
  bool uniform_agreement{true};          ///< incl. faulty deciders
  bool validity{true};

  int max_decision_round{0};             ///< over deciding processes
  /// Round of the earliest deciding broadcast (0 when nobody decided).
  /// This is the paper's "rounds to reach consensus" metric; a lower-round
  /// and a higher-round broadcast of the SAME decision can race, so max
  /// can exceed it benignly.
  int min_decision_round{0};
  TimeUs last_decision_at{0};            ///< latest decision time
  std::int64_t consensus_msgs{0};        ///< protocol messages sent
  std::int64_t rb_msgs{0};               ///< reliable-broadcast messages
  std::int64_t fd_msgs{0};               ///< failure-detector messages

  /// Largest round number any correct process entered.
  int max_round_entered{0};

  /// Simulator accounting, for throughput reporting and run fingerprints.
  std::uint64_t events_fired{0};  ///< scheduler events executed
  TimeUs sim_end{0};              ///< virtual time when the run stopped
  sim::Counters counters;         ///< full counter registry at end of run
};

/// Runs one configured consensus experiment.
HarnessResult run_consensus(const HarnessConfig& cfg);

/// Human-readable one-liner for logs.
std::string summarize(const HarnessResult& r);

}  // namespace ecfd::consensus
