#include "consensus/mr_omega.hpp"

namespace ecfd::consensus {

namespace {

core::ConsensusC::Config inner_config(const MrOmegaConsensus::Config& cfg) {
  core::ConsensusC::Config out;
  out.policy = core::ReplyPolicy::kNMinusF;
  out.f = cfg.f;
  out.merged_phase01 = true;
  out.poll_period = cfg.poll_period;
  out.max_rounds = cfg.max_rounds;
  return out;
}

}  // namespace

MrOmegaConsensus::MrOmegaConsensus(Env& env, const LeaderOracle* omega,
                                   broadcast::ReliableBroadcast* rb)
    : MrOmegaConsensus(env, omega, rb, Config{}) {}

MrOmegaConsensus::MrOmegaConsensus(Env& env, const LeaderOracle* omega,
                                   broadcast::ReliableBroadcast* rb,
                                   Config cfg)
    : ConsensusProtocol(env, protocol_ids::kConsensusMR),
      adapter_(env.n(), env.self(), omega),
      inner_(env, &adapter_, rb, inner_config(cfg),
             protocol_ids::kConsensusMR) {
  // Surface the inner engine's decision through this wrapper's interface.
  inner_.set_on_decide([this](const Decision& d) { decide(d.value, d.round); });
}

}  // namespace ecfd::consensus
