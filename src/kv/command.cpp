#include "kv/command.hpp"

namespace ecfd::kv {

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kNotFound: return "not_found";
    case Status::kCasMismatch: return "cas_mismatch";
    case Status::kNoSession: return "no_session";
    case Status::kNotLeader: return "not_leader";
    case Status::kOverloaded: return "overloaded";
    case Status::kOutOfOrder: return "out_of_order";
    case Status::kTooLarge: return "too_large";
    case Status::kBadVersion: return "bad_version";
    case Status::kTimeout: return "timeout";
  }
  return "unknown";
}

}  // namespace ecfd::kv
