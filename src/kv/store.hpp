#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kv/command.hpp"

/// \file store.hpp
/// The deterministic key-value state machine replicated by the kv service.
///
/// Everything here is a pure function of the applied command sequence: two
/// replicas that apply the same Cmds in the same order hold byte-identical
/// state (pinned by content_hash() in tests). That includes the session
/// table — sessions and their dedup windows are themselves replicated
/// state, which is what makes retried commands exactly-once *across leader
/// failover*: the new leader's store already remembers which (session,
/// seq) pairs were applied and what they returned.
///
/// Dedup protocol: write ops carry consecutive per-session sequence
/// numbers assigned by the client. apply() applies seq == last_seq + 1,
/// returns the cached result for seq <= last_seq (a retry of a command
/// that already committed, possibly through a previous leader), and
/// rejects gaps. Clients keep at most `dedup_window` writes outstanding
/// per session (the stock client pipelines far fewer).
///
/// serialize()/deserialize() produce a versioned binary image (keys,
/// values, sessions, windows) used for log compaction and for
/// install-on-join snapshot transfer.

namespace ecfd::kv {

class KvStore {
 public:
  struct Config {
    /// Cached results retained per session; retries older than this
    /// window cannot happen with a sane client (it would need more than
    /// dedup_window writes in flight at once).
    std::size_t dedup_window{64};
  };

  /// Apply-path accounting (monotonic; mirrored into the metrics registry
  /// by the service).
  struct Stats {
    std::int64_t applied_writes{0};   ///< first-time write applications
    std::int64_t dedup_hits{0};       ///< retries answered from the window
    std::int64_t out_of_order{0};     ///< rejected seq gaps (client bugs)
    std::int64_t log_reads{0};        ///< kGet commands through the log
  };

  KvStore() = default;
  explicit KvStore(Config cfg) : cfg_(cfg) {}

  /// Applies one replicated command. Deterministic; safe to call with the
  /// same (session, seq) any number of times — only the first application
  /// mutates state.
  OpResult apply(const Cmd& cmd);

  /// Local read, NOT through the log — the leader-lease fast path.
  [[nodiscard]] OpResult read(const std::string& key) const;

  /// Cached result of an applied write, when still in the session's dedup
  /// window. Lets the service answer retries without burning a log slot.
  [[nodiscard]] std::optional<OpResult> cached(std::uint64_t session,
                                               std::uint64_t seq) const;

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] bool has_session(std::uint64_t id) const {
    return sessions_.count(id) != 0;
  }
  /// Highest applied write seq of a session (0 when unknown).
  [[nodiscard]] std::uint64_t session_last_seq(std::uint64_t id) const;

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Versioned binary image of the full state (kv map + session table).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Replaces this store's state with a serialized image. Returns false
  /// (state unchanged) on a malformed or version-mismatched image.
  bool deserialize(const std::uint8_t* data, std::size_t len,
                   std::string* error = nullptr);
  bool deserialize(const std::vector<std::uint8_t>& image,
                   std::string* error = nullptr) {
    return deserialize(image.data(), image.size(), error);
  }

  /// FNV-1a over the ordered (key, value) pairs and session watermarks;
  /// replicas that applied the same prefix agree on this.
  [[nodiscard]] std::uint64_t content_hash() const;

 private:
  struct Session {
    std::uint64_t last_seq{0};
    /// (seq, result) pairs, ascending, at most cfg_.dedup_window long.
    std::deque<std::pair<std::uint64_t, OpResult>> window;
  };

  OpResult apply_to_map(const Cmd& cmd);

  Config cfg_;
  Stats stats_;
  std::map<std::string, std::string> map_;        // ordered: deterministic
  std::map<std::uint64_t, Session> sessions_;     // serialization
};

}  // namespace ecfd::kv
