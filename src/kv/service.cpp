#include "kv/service.hpp"

#include <algorithm>

namespace ecfd::kv {
namespace {

/// Peer-relayed requests get tokens in a reserved range so they can never
/// collide with transport-issued external tokens (SocketEnv packs
/// ip:port into the low 48 bits).
constexpr KvService::Token kPeerTokenBase = 0xFFFF'0000'0000'0000ULL;

bool all_gets(const Request& req) {
  return std::all_of(req.ops.begin(), req.ops.end(), [](const Op& op) {
    return op.op == OpKind::kGet;
  });
}

bool op_too_large(const Op& op) {
  return op.key.size() > kMaxKeyBytes || op.value.size() > kMaxValueBytes ||
         op.expected.size() > kMaxValueBytes;
}

}  // namespace

KvService::KvService(Env& env, const core::EcfdOracle* fd,
                     core::LogReplica* log,
                     broadcast::ReliableBroadcast* batch_rb, Config cfg)
    : Protocol(env, protocol_ids::kKvService),
      cfg_(cfg),
      fd_(fd),
      log_(log),
      rb_(batch_rb),
      store_(KvStore::Config{cfg.dedup_window}) {
  rb_->set_deliver(
      [this](const broadcast::RbEnvelope& e) { on_batch_delivered(e); });
  log_->set_apply(
      [this](const core::LogReplica::Entry& e) { on_log_entry(e); });
}

void KvService::start() {
  env_.set_timer(cfg_.lease_check_every, [this] { lease_tick(); });
  env_.set_timer(cfg_.gossip_every, [this] { gossip_tick(); });
}

int KvService::applied_slot() const {
  // Entries stalled on an undelivered body cap the effective watermark.
  return apply_queue_.empty() ? log_->applied_slots()
                              : apply_queue_.front().slot;
}

// ---------------------------------------------------------------- clients

void KvService::handle_request(Token token, const Request& req) {
  handle_request_from(token, /*via_peer=*/false, kNoProcess, req);
}

void KvService::handle_request_from(Token token, bool via_peer,
                                    ProcessId peer, const Request& req) {
  if (m_requests_) m_requests_->fetch_add(1, std::memory_order_relaxed);

  Waiter w;
  w.token = token;
  w.via_peer = via_peer;
  w.peer = peer;
  w.session = req.session;
  w.tag = req.tag;

  Reply r;
  r.session = req.session;
  r.tag = req.tag;

  if (req.version != kProtoVersion) {
    r.status = Status::kBadVersion;
    reply_to(w, std::move(r));
    return;
  }
  for (const Op& op : req.ops) {
    if (op_too_large(op)) {
      r.status = Status::kTooLarge;
      reply_to(w, std::move(r));
      return;
    }
  }
  if (req.ops.empty()) {
    r.status = Status::kOk;
    reply_to(w, std::move(r));
    return;
  }

  // Lease fast path: GET-only requests served from local state while this
  // replica holds the lease. No slot consumed.
  if (lease_read_ok(req)) {
    if (m_lease_reads_) m_lease_reads_->fetch_add(1, std::memory_order_relaxed);
    r.status = Status::kOk;
    for (const Op& op : req.ops) r.results.push_back(store_.read(op.key));
    reply_to(w, std::move(r));
    return;
  }

  // Everything else commits through the log; only the trusted process
  // accepts, others redirect.
  if (!is_leader()) {
    if (m_redirects_) m_redirects_->fetch_add(1, std::memory_order_relaxed);
    r.status = Status::kNotLeader;
    r.leader_hint = fd_->trusted();
    reply_to(w, std::move(r));
    return;
  }

  // Retry short-circuit: if every write in the request already committed
  // (all seqs at-or-below the session watermark and still cached), answer
  // from the dedup window without a new slot. Mixed fresh/old requests
  // fall through to the log — KvStore::apply dedups per command.
  if (store_.has_session(req.session)) {
    bool all_cached = !req.ops.empty();
    std::vector<OpResult> cached;
    for (const Op& op : req.ops) {
      if (op.op == OpKind::kGet || op.op == OpKind::kOpenSession) {
        all_cached = false;
        break;
      }
      auto hit = store_.cached(req.session, op.seq);
      if (!hit) {
        all_cached = false;
        break;
      }
      cached.push_back(std::move(*hit));
    }
    if (all_cached) {
      r.status = Status::kOk;
      r.results = std::move(cached);
      reply_to(w, std::move(r));
      return;
    }
  }

  // Admission: refuse when the log cannot take more slots or too many
  // flushed-but-undecided commands are already queued behind it. The
  // per-batch wire bound is respected by construction: a batch flushes at
  // batch_max_ops and one request adds at most kMaxOpsPerRequest, both
  // far below kMaxOpsPerBatch.
  static_assert(kMaxOpsPerRequest * 2 <= kMaxOpsPerBatch);
  if (log_->exhausted() ||
      log_->applied_slots() + static_cast<int>(log_->pending()) >=
          log_->capacity() ||
      log_->pending() >= cfg_.max_queued_cmds) {
    if (m_overload_) m_overload_->fetch_add(1, std::memory_order_relaxed);
    r.status = Status::kOverloaded;
    reply_to(w, std::move(r));
    return;
  }

  enqueue(w, req);
}

void KvService::enqueue(const Waiter& w, const Request& req) {
  // Never let a batch grow past the wire bound: flush what is queued
  // first if this request would not fit.
  if (batch_.cmds.size() + req.ops.size() > kMaxOpsPerBatch) flush_batch();

  Waiter waiter = w;
  waiter.first = batch_.cmds.size();
  waiter.count = req.ops.size();
  for (const Op& op : req.ops) {
    Cmd c;
    c.session = req.session;
    c.seq = op.seq;
    c.op = op.op;
    c.key = op.key;
    c.value = op.value;
    c.expected = op.expected;
    batch_.cmds.push_back(std::move(c));
  }
  batch_waiters_.push_back(std::move(waiter));

  if (batch_.cmds.size() >= cfg_.batch_max_ops) {
    flush_batch();
  } else if (batch_timer_ == kInvalidTimer) {
    batch_timer_ = env_.set_timer(cfg_.batch_wait, [this] {
      batch_timer_ = kInvalidTimer;
      flush_batch();
    });
  }
}

void KvService::flush_batch() {
  if (batch_timer_ != kInvalidTimer) {
    env_.cancel_timer(batch_timer_);
    batch_timer_ = kInvalidTimer;
  }
  if (batch_.cmds.empty()) return;

  BatchBody body;
  body.id = make_batch_id(env_.self(), ++batch_counter_);
  body.cmds = std::move(batch_.cmds);
  batch_ = BatchBody{};

  waiters_[body.id] = std::move(batch_waiters_);
  batch_waiters_.clear();

  if (m_batches_) m_batches_->fetch_add(1, std::memory_order_relaxed);
  if (m_batch_ops_)
    m_batch_ops_->fetch_add(static_cast<std::int64_t>(body.cmds.size()),
                            std::memory_order_relaxed);

  // RB delivers locally right away (filling bodies_), then diffuses; the
  // slot only ever decides an id some replica has started diffusing.
  log_->submit(body.id);
  rb_->r_broadcast(kRbTagBatch, std::move(body));
}

void KvService::reply_to(const Waiter& w, Reply r) {
  if (w.via_peer) {
    env_.send(w.peer, Message::make<Reply>(protocol_ids::kKvService,
                                           kMsgClientReply, "kv.reply",
                                           std::move(r)));
    return;
  }
  if (reply_sink_) reply_sink_(w.token, r);
}

// ------------------------------------------------------- apply pipeline

void KvService::on_batch_delivered(const broadcast::RbEnvelope& e) {
  if (e.tag != kRbTagBatch) return;
  const auto& body = e.as<BatchBody>();
  bodies_.emplace(body.id, body);
  drain_applies();
}

void KvService::on_log_entry(const core::LogReplica::Entry& e) {
  apply_queue_.push_back(e);
  drain_applies();
}

void KvService::drain_applies() {
  while (!apply_queue_.empty()) {
    const core::LogReplica::Entry e = apply_queue_.front();
    auto it = bodies_.find(e.command);
    if (it == bodies_.end()) return;  // stall until RB delivers the body
    apply_queue_.pop_front();
    apply_batch(e.slot, it->second);
    bodies_.erase(it);
  }
  maybe_snapshot();
  refresh_gauges();
}

void KvService::apply_batch(int slot, const BatchBody& body) {
  std::vector<OpResult> results;
  results.reserve(body.cmds.size());
  for (const Cmd& c : body.cmds) results.push_back(store_.apply(c));

  auto wit = waiters_.find(body.id);
  if (wit == waiters_.end()) return;  // not the origin replica
  for (const Waiter& w : wit->second) {
    Reply r;
    r.session = w.session;
    r.tag = w.tag;
    r.status = Status::kOk;
    r.applied_slot = slot;
    r.results.assign(results.begin() + static_cast<std::ptrdiff_t>(w.first),
                     results.begin() +
                         static_cast<std::ptrdiff_t>(w.first + w.count));
    reply_to(w, std::move(r));
  }
  waiters_.erase(wit);
}

// ------------------------------------------------------------- snapshots

void KvService::maybe_snapshot() {
  if (cfg_.snapshot_every <= 0) return;
  if (applied_slot() - last_snapshot_upto_ < cfg_.snapshot_every) return;
  snapshot_now();
}

void KvService::snapshot_now() {
  const int upto = applied_slot();
  if (upto <= last_snapshot_upto_) return;
  Snapshot s;
  s.id = ++snap_counter_;
  s.upto_slot = upto;
  s.bytes = store_.serialize();
  snapshot_ = std::move(s);
  last_snapshot_upto_ = upto;
  log_->compact(upto);
  if (m_snaps_taken_) m_snaps_taken_->fetch_add(1, std::memory_order_relaxed);
  refresh_gauges();
}

void KvService::gossip_tick() {
  env_.broadcast(Message::make<std::int64_t>(protocol_ids::kKvService,
                                             kMsgApplied, "kv.applied",
                                             applied_slot()));
  env_.set_timer(cfg_.gossip_every, [this] { gossip_tick(); });
}

void KvService::on_peer_applied(ProcessId peer, std::int64_t applied) {
  peer_applied_[peer] = applied;
  // Catch a lagging replica up when it is behind our compaction floor:
  // the slots it is missing no longer exist as log entries here.
  if (snapshot_.has_value() && applied < last_snapshot_upto_ &&
      snap_sent_[peer] != snapshot_->id) {
    snap_sent_[peer] = snapshot_->id;
    send_snapshot_to(peer);
  }
}

void KvService::send_snapshot_to(ProcessId peer) {
  const Snapshot& s = *snapshot_;
  const std::size_t nchunks =
      s.bytes.empty() ? 1
                      : (s.bytes.size() + kMaxSnapshotChunkBytes - 1) /
                            kMaxSnapshotChunkBytes;
  for (std::size_t i = 0; i < nchunks; ++i) {
    SnapshotChunk c;
    c.snap_id = s.id;
    c.upto_slot = s.upto_slot;
    c.index = static_cast<std::uint32_t>(i);
    c.total = static_cast<std::uint32_t>(nchunks);
    const std::size_t off = i * kMaxSnapshotChunkBytes;
    const std::size_t len =
        std::min(kMaxSnapshotChunkBytes, s.bytes.size() - off);
    c.bytes.assign(s.bytes.begin() + static_cast<std::ptrdiff_t>(off),
                   s.bytes.begin() + static_cast<std::ptrdiff_t>(off + len));
    env_.send(peer, Message::make<SnapshotChunk>(protocol_ids::kKvService,
                                                 kMsgSnapshotChunk, "kv.snap",
                                                 std::move(c)));
  }
}

void KvService::on_snapshot_chunk(const SnapshotChunk& chunk) {
  // Stale or already-covered snapshot: ignore.
  if (chunk.upto_slot <= applied_slot()) return;
  if (!inbound_.has_value() || inbound_->id != chunk.snap_id) {
    Inbound in;
    in.id = chunk.snap_id;
    in.upto_slot = chunk.upto_slot;
    in.total = chunk.total;
    in.chunks.resize(chunk.total);
    inbound_ = std::move(in);
  }
  Inbound& in = *inbound_;
  if (chunk.index >= in.total || !in.chunks[chunk.index].empty()) {
    if (chunk.index >= in.total) inbound_.reset();
    return;
  }
  in.chunks[chunk.index] = chunk.bytes;
  if (++in.have < in.total) return;

  std::vector<std::uint8_t> image;
  for (const auto& part : in.chunks)
    image.insert(image.end(), part.begin(), part.end());
  const int upto = in.upto_slot;
  inbound_.reset();

  std::string err;
  if (!store_.deserialize(image, &err)) {
    env_.trace("kv.snapshot_reject", err);
    return;
  }
  // Drop stalled applies the snapshot covers, fast-forward the log, keep
  // anything beyond the snapshot point for normal application.
  while (!apply_queue_.empty() && apply_queue_.front().slot < upto)
    apply_queue_.pop_front();
  log_->install_snapshot(upto);
  last_snapshot_upto_ = std::max(last_snapshot_upto_, upto);
  if (m_snaps_installed_)
    m_snaps_installed_->fetch_add(1, std::memory_order_relaxed);
  env_.trace("kv.snapshot_install", "upto=" + std::to_string(upto));
  drain_applies();
}

// ------------------------------------------------------------------ lease

void KvService::lease_tick() {
  const bool trusted_self = fd_->trusted() == env_.self();
  const TimeUs now = env_.now();
  if (trusted_self) {
    if (trusted_self_since_ == kTimeNever) trusted_self_since_ = now;
    if (!lease_valid_ && now - trusted_self_since_ >= cfg_.lease_establish) {
      lease_valid_ = true;
      ++lease_term_;
      env_.record(EventType::kLeaseGrant, env_.self(), lease_term_);
      if (m_lease_grants_)
        m_lease_grants_->fetch_add(1, std::memory_order_relaxed);
      env_.trace("kv.lease_grant", "term=" + std::to_string(lease_term_));
    }
  } else {
    trusted_self_since_ = kTimeNever;
    if (lease_valid_) {
      lease_valid_ = false;
      env_.record(EventType::kLeaseRevoke, env_.self(), lease_term_);
      if (m_lease_revokes_)
        m_lease_revokes_->fetch_add(1, std::memory_order_relaxed);
      env_.trace("kv.lease_revoke", "term=" + std::to_string(lease_term_));
    }
  }
  refresh_gauges();
  env_.set_timer(cfg_.lease_check_every, [this] { lease_tick(); });
}

bool KvService::lease_read_ok(const Request& req) const {
  return (req.flags & kFlagLeaseRead) != 0 && lease_valid_ && all_gets(req);
}

// -------------------------------------------------------------- messages

void KvService::on_message(const Message& m) {
  switch (m.type) {
    case kMsgClientRequest:
      handle_request_from(kPeerTokenBase |
                              static_cast<Token>(
                                  static_cast<std::uint32_t>(m.src)),
                          /*via_peer=*/true, m.src, m.as<Request>());
      break;
    case kMsgApplied:
      on_peer_applied(m.src, m.as<std::int64_t>());
      break;
    case kMsgSnapshotChunk:
      on_snapshot_chunk(m.as<SnapshotChunk>());
      break;
    default:
      break;  // kMsgClientReply is handled by clients, not the service
  }
}

// --------------------------------------------------------------- metrics

void KvService::bind_metrics(obs::MetricsRegistry* m) {
  metrics_ = m;
  if (m == nullptr) {
    m_requests_ = m_redirects_ = m_lease_reads_ = m_batches_ = m_batch_ops_ =
        m_overload_ = m_lease_grants_ = m_lease_revokes_ = m_snaps_taken_ =
            m_snaps_installed_ = nullptr;
    return;
  }
  m_requests_ = m->counter("kv.requests");
  m_redirects_ = m->counter("kv.redirects");
  m_lease_reads_ = m->counter("kv.lease.reads");
  m_batches_ = m->counter("kv.batches");
  m_batch_ops_ = m->counter("kv.batch.ops");
  m_overload_ = m->counter("kv.overloaded");
  m_lease_grants_ = m->counter("kv.lease.grants");
  m_lease_revokes_ = m->counter("kv.lease.revokes");
  m_snaps_taken_ = m->counter("kv.snapshots.taken");
  m_snaps_installed_ = m->counter("kv.snapshots.installed");
  refresh_gauges();
}

void KvService::refresh_gauges() {
  if (metrics_ == nullptr) return;
  metrics_->set_gauge("kv.store.keys",
                      static_cast<std::int64_t>(store_.size()));
  metrics_->set_gauge("kv.sessions",
                      static_cast<std::int64_t>(store_.session_count()));
  metrics_->set_gauge("kv.applied_slot", applied_slot());
  metrics_->set_gauge("kv.log.entries",
                      static_cast<std::int64_t>(log_->log().size()));
  metrics_->set_gauge("kv.log.compacted_upto", log_->compacted_upto());
  metrics_->set_gauge("kv.lease.valid", lease_valid_ ? 1 : 0);
  metrics_->set_gauge("kv.bodies.pending",
                      static_cast<std::int64_t>(bodies_.size()));
  metrics_->set_gauge("kv.apply.stalled",
                      static_cast<std::int64_t>(apply_queue_.size()));
  metrics_->set_gauge("kv.store.applied_writes", store_.stats().applied_writes);
  metrics_->set_gauge("kv.store.dedup_hits", store_.stats().dedup_hits);
  metrics_->set_gauge("kv.store.out_of_order", store_.stats().out_of_order);
  metrics_->set_gauge("kv.store.log_reads", store_.stats().log_reads);
}

}  // namespace ecfd::kv
