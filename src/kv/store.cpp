#include "kv/store.hpp"

#include <algorithm>

#include "wire/buffer.hpp"

namespace ecfd::kv {
namespace {

/// Snapshot image format version — bump on any layout change.
constexpr std::uint32_t kSnapMagic = 0xEC5D'4B56;  // "ECFD KV"-ish
constexpr std::uint32_t kSnapVersion = 1;

/// Caps applied while deserializing, so a corrupt image can never force a
/// huge allocation. Generous relative to the wire-level bounds.
constexpr std::uint32_t kMaxSnapEntries = 1u << 22;
constexpr std::uint32_t kMaxSnapSessions = 1u << 20;
constexpr std::uint32_t kMaxSnapWindow = 1u << 12;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  return fnv1a(h, b, sizeof b);
}

}  // namespace

OpResult KvStore::apply(const Cmd& cmd) {
  // Session management commands are writes too, but they are idempotent by
  // construction and carry no seq (retrying kOpenSession is harmless).
  if (cmd.op == OpKind::kOpenSession) {
    sessions_.try_emplace(cmd.session);
    return {Status::kOk, {}};
  }
  if (cmd.op == OpKind::kCloseSession) {
    sessions_.erase(cmd.session);
    return {Status::kOk, {}};
  }

  if (cmd.op == OpKind::kGet) {
    // Reads through the log are idempotent: no session/seq bookkeeping.
    ++stats_.log_reads;
    return read(cmd.key);
  }

  // Writes: exactly-once via the replicated session window.
  auto it = sessions_.find(cmd.session);
  if (it == sessions_.end()) return {Status::kNoSession, {}};
  Session& s = it->second;

  if (cmd.seq <= s.last_seq) {
    // A retry of something that already committed (possibly through a
    // previous leader). Answer from the window if still cached; a hit
    // outside the window means the client violated the pipelining bound.
    ++stats_.dedup_hits;
    for (const auto& [seq, result] : s.window)
      if (seq == cmd.seq) return result;
    return {Status::kOutOfOrder, {}};
  }
  if (cmd.seq != s.last_seq + 1) {
    // Gap: the client skipped a seq. Never apply out of order.
    ++stats_.out_of_order;
    return {Status::kOutOfOrder, {}};
  }

  OpResult r = apply_to_map(cmd);
  ++stats_.applied_writes;
  s.last_seq = cmd.seq;
  s.window.emplace_back(cmd.seq, r);
  while (s.window.size() > cfg_.dedup_window) s.window.pop_front();
  return r;
}

OpResult KvStore::apply_to_map(const Cmd& cmd) {
  switch (cmd.op) {
    case OpKind::kPut:
      map_[cmd.key] = cmd.value;
      return {Status::kOk, {}};
    case OpKind::kDel: {
      const bool erased = map_.erase(cmd.key) != 0;
      return {erased ? Status::kOk : Status::kNotFound, {}};
    }
    case OpKind::kCas: {
      auto it = map_.find(cmd.key);
      const std::string current = it == map_.end() ? std::string{} : it->second;
      if (current != cmd.expected) return {Status::kCasMismatch, current};
      map_[cmd.key] = cmd.value;
      return {Status::kOk, {}};
    }
    default:
      return {Status::kOutOfOrder, {}};
  }
}

OpResult KvStore::read(const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return {Status::kNotFound, {}};
  return {Status::kOk, it->second};
}

std::optional<OpResult> KvStore::cached(std::uint64_t session,
                                        std::uint64_t seq) const {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return std::nullopt;
  for (const auto& [s, result] : it->second.window)
    if (s == seq) return result;
  return std::nullopt;
}

std::uint64_t KvStore::session_last_seq(std::uint64_t id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? 0 : it->second.last_seq;
}

std::vector<std::uint8_t> KvStore::serialize() const {
  wire::WireWriter w;
  w.u32(kSnapMagic);
  w.u32(kSnapVersion);
  w.u32(static_cast<std::uint32_t>(map_.size()));
  w.u32(static_cast<std::uint32_t>(sessions_.size()));
  for (const auto& [key, value] : map_) {
    w.str(key);
    w.str(value);
  }
  for (const auto& [id, s] : sessions_) {
    w.u64(id);
    w.u64(s.last_seq);
    w.u32(static_cast<std::uint32_t>(s.window.size()));
    for (const auto& [seq, result] : s.window) {
      w.u64(seq);
      w.u8(static_cast<std::uint8_t>(result.status));
      w.str(result.value);
    }
  }
  return w.take();
}

bool KvStore::deserialize(const std::uint8_t* data, std::size_t len,
                          std::string* error) {
  auto fail = [&](const char* why) {
    if (error) *error = why;
    return false;
  };
  wire::WireReader r(data, len);
  if (r.u32() != kSnapMagic) return fail("kv snapshot: bad magic");
  if (r.u32() != kSnapVersion) return fail("kv snapshot: unknown version");
  const std::uint32_t n_entries = r.u32();
  const std::uint32_t n_sessions = r.u32();
  if (!r.ok() || n_entries > kMaxSnapEntries || n_sessions > kMaxSnapSessions)
    return fail("kv snapshot: bad header");

  std::map<std::string, std::string> map;
  std::map<std::uint64_t, Session> sessions;
  for (std::uint32_t i = 0; i < n_entries; ++i) {
    std::string key = r.str();
    std::string value = r.str();
    if (!r.ok()) return fail("kv snapshot: truncated entry");
    map.emplace(std::move(key), std::move(value));
  }
  for (std::uint32_t i = 0; i < n_sessions; ++i) {
    const std::uint64_t id = r.u64();
    Session s;
    s.last_seq = r.u64();
    const std::uint32_t n_window = r.u32();
    if (!r.ok() || n_window > kMaxSnapWindow)
      return fail("kv snapshot: bad session");
    for (std::uint32_t j = 0; j < n_window; ++j) {
      const std::uint64_t seq = r.u64();
      const std::uint8_t status = r.u8();
      std::string value = r.str();
      if (!r.ok() || status > static_cast<std::uint8_t>(Status::kTimeout))
        return fail("kv snapshot: bad window entry");
      s.window.emplace_back(
          seq, OpResult{static_cast<Status>(status), std::move(value)});
    }
    sessions.emplace(id, std::move(s));
  }
  if (!r.exhausted()) return fail("kv snapshot: trailing bytes");

  map_ = std::move(map);
  sessions_ = std::move(sessions);
  return true;
}

std::uint64_t KvStore::content_hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a_u64(h, map_.size());
  for (const auto& [key, value] : map_) {
    h = fnv1a(h, key.data(), key.size());
    h = fnv1a(h, value.data(), value.size());
  }
  h = fnv1a_u64(h, sessions_.size());
  for (const auto& [id, s] : sessions_) {
    h = fnv1a_u64(h, id);
    h = fnv1a_u64(h, s.last_seq);
  }
  return h;
}

}  // namespace ecfd::kv
