#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kv/command.hpp"
#include "sim/time.hpp"
#include "transport/node_config.hpp"

/// \file client.hpp
/// Blocking UDP client for the ecfd-kv service (tools/ecfd_kv, examples,
/// and any external program). Not an Env protocol: the client lives
/// *outside* the universe, sends frames with src = kNoProcess, and is
/// routed through SocketEnv's external-frame path on the server side.
///
/// Reliability model: requests are retried until a reply arrives or the
/// attempt budget runs out. Writes carry client-assigned per-session
/// sequence numbers stamped once per call, so a retry that crosses a
/// leader failover is applied exactly once by the replicated session
/// window — the client may send a command five times and still observes
/// a single application. kNotLeader replies redirect to the hinted
/// leader; timeouts rotate through the server table.

namespace ecfd::kv {

class KvClient {
 public:
  struct Config {
    std::vector<transport::PeerAddr> servers;  ///< the cluster's peer table
    std::uint64_t session{0};      ///< 0 = derive one from pid + clock
    DurUs request_timeout{200'000};  ///< per-attempt reply wait
    int max_attempts{25};          ///< per call, across redirects/retries
    bool lease_reads{true};        ///< set kFlagLeaseRead on GET requests
  };

  struct Stats {
    std::int64_t requests{0};   ///< execute() calls
    std::int64_t attempts{0};   ///< datagrams sent (>= requests)
    std::int64_t redirects{0};  ///< kNotLeader hops followed
    std::int64_t timeouts{0};   ///< attempts that got no reply
    std::int64_t failures{0};   ///< calls that exhausted max_attempts
  };

  explicit KvClient(Config cfg);
  ~KvClient();

  KvClient(const KvClient&) = delete;
  KvClient& operator=(const KvClient&) = delete;

  /// Creates the UDP socket. Must succeed before any call.
  bool connect(std::string* error = nullptr);

  /// Opens this client's replicated session (idempotent; retried like any
  /// write). Must commit before writes are accepted.
  bool open_session(std::string* error = nullptr);
  void close_session();

  /// Sends one request envelope (stamping session, tag, and write seqs)
  /// and waits for the matching reply, retrying/redirecting as needed.
  /// nullopt = no reply within the attempt budget.
  std::optional<Reply> execute(std::vector<Op> ops);

  // Single-op conveniences. Status is the op outcome (kTimeout when the
  // attempt budget ran out).
  Status put(const std::string& key, const std::string& value);
  Status del(const std::string& key);
  Status cas(const std::string& key, const std::string& expected,
             const std::string& value, std::string* current = nullptr);
  /// kOk: *value filled. kNotFound: key absent.
  Status get(const std::string& key, std::string* value);

  [[nodiscard]] std::uint64_t session() const { return cfg_.session; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Server currently believed to be the leader (start of next attempt).
  [[nodiscard]] int target() const { return target_; }

 private:
  std::optional<Reply> send_and_wait(const Request& req);

  Config cfg_;
  Stats stats_;
  int fd_{-1};
  int target_{0};
  std::uint64_t next_tag_{1};
  std::uint64_t next_seq_{0};
};

}  // namespace ecfd::kv
