#include "kv/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "net/protocol_ids.hpp"
#include "wire/codec.hpp"

namespace ecfd::kv {

namespace {

TimeUs mono_now() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool is_write(OpKind k) {
  return k == OpKind::kPut || k == OpKind::kDel || k == OpKind::kCas;
}

}  // namespace

KvClient::KvClient(Config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.session == 0) {
    // Collision-resistant enough for a test/load-gen client: pid in the
    // high bits, microsecond clock below. Real deployments pass one in.
    cfg_.session =
        (static_cast<std::uint64_t>(::getpid()) << 40) ^
        static_cast<std::uint64_t>(mono_now());
    if (cfg_.session == 0) cfg_.session = 1;
  }
}

KvClient::~KvClient() {
  if (fd_ >= 0) ::close(fd_);
}

bool KvClient::connect(std::string* error) {
  if (cfg_.servers.empty()) {
    if (error) *error = "no servers configured";
    return false;
  }
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    if (error) *error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  return true;
}

std::optional<Reply> KvClient::send_and_wait(const Request& req) {
  Message m = Message::make<Request>(protocol_ids::kKvService,
                                     kMsgClientRequest, "kv.request", req);
  m.src = kNoProcess;

  for (int attempt = 0; attempt < cfg_.max_attempts; ++attempt) {
    if (target_ < 0 || target_ >= static_cast<int>(cfg_.servers.size())) {
      target_ = 0;
    }
    m.dst = target_;
    std::vector<std::uint8_t> frame;
    if (!wire::encode_message(m, &frame)) return std::nullopt;

    const auto& server = cfg_.servers[static_cast<std::size_t>(target_)];
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(server.port);
    if (::inet_pton(AF_INET, server.host.c_str(), &sa.sin_addr) != 1) {
      target_ = (target_ + 1) % static_cast<int>(cfg_.servers.size());
      continue;
    }
    ++stats_.attempts;
    (void)::sendto(fd_, frame.data(), frame.size(), 0,
                   reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));

    // Wait for the matching reply; stray frames (older tags, other
    // sessions) are discarded and the wait continues on the remaining
    // budget.
    const TimeUs deadline = mono_now() + cfg_.request_timeout;
    for (;;) {
      const TimeUs left = deadline - mono_now();
      if (left <= 0) break;
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(left / 1000 + 1));
      if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;

      std::uint8_t buf[wire::kMaxFrameBytes];
      const auto got = ::recvfrom(fd_, buf, sizeof(buf), 0, nullptr, nullptr);
      if (got <= 0) continue;
      auto decoded =
          wire::decode_message(buf, static_cast<std::size_t>(got));
      if (!decoded || decoded->protocol != protocol_ids::kKvService ||
          decoded->type != kMsgClientReply) {
        continue;
      }
      const Reply& r = decoded->as<Reply>();
      if (r.session != req.session || r.tag != req.tag) continue;

      if (r.status == Status::kNotLeader) {
        ++stats_.redirects;
        target_ = r.leader_hint >= 0 &&
                          r.leader_hint <
                              static_cast<std::int32_t>(cfg_.servers.size())
                      ? r.leader_hint
                      : (target_ + 1) %
                            static_cast<int>(cfg_.servers.size());
        break;  // next attempt, new target
      }
      if (r.status == Status::kOverloaded) break;  // backoff = next attempt
      return r;
    }
    if (mono_now() >= deadline) {
      ++stats_.timeouts;
      // No reply: the server may be down — try the next one.
      target_ = (target_ + 1) % static_cast<int>(cfg_.servers.size());
    }
  }
  ++stats_.failures;
  return std::nullopt;
}

std::optional<Reply> KvClient::execute(std::vector<Op> ops) {
  ++stats_.requests;
  Request req;
  req.version = kProtoVersion;
  req.flags = cfg_.lease_reads ? kFlagLeaseRead : 0;
  req.session = cfg_.session;
  req.tag = next_tag_++;
  // Stamp write seqs once — retries inside send_and_wait reuse them, which
  // is exactly what makes retried writes dedupable server-side.
  for (Op& op : ops) {
    if (is_write(op.op)) op.seq = ++next_seq_;
  }
  req.ops = std::move(ops);
  return send_and_wait(req);
}

bool KvClient::open_session(std::string* error) {
  Op op;
  op.op = OpKind::kOpenSession;
  auto r = execute({op});
  if (!r || r->status != Status::kOk) {
    if (error) {
      *error = !r ? "open_session: no reply"
                  : std::string("open_session: ") + status_name(r->status);
    }
    return false;
  }
  return true;
}

void KvClient::close_session() {
  Op op;
  op.op = OpKind::kCloseSession;
  (void)execute({op});
}

Status KvClient::put(const std::string& key, const std::string& value) {
  Op op;
  op.op = OpKind::kPut;
  op.key = key;
  op.value = value;
  auto r = execute({op});
  if (!r) return Status::kTimeout;
  if (r->status != Status::kOk || r->results.empty()) return r->status;
  return r->results[0].status;
}

Status KvClient::del(const std::string& key) {
  Op op;
  op.op = OpKind::kDel;
  op.key = key;
  auto r = execute({op});
  if (!r) return Status::kTimeout;
  if (r->status != Status::kOk || r->results.empty()) return r->status;
  return r->results[0].status;
}

Status KvClient::cas(const std::string& key, const std::string& expected,
                     const std::string& value, std::string* current) {
  Op op;
  op.op = OpKind::kCas;
  op.key = key;
  op.value = value;
  op.expected = expected;
  auto r = execute({op});
  if (!r) return Status::kTimeout;
  if (r->status != Status::kOk || r->results.empty()) return r->status;
  if (current) *current = r->results[0].value;
  return r->results[0].status;
}

Status KvClient::get(const std::string& key, std::string* value) {
  Op op;
  op.op = OpKind::kGet;
  op.key = key;
  auto r = execute({op});
  if (!r) return Status::kTimeout;
  if (r->status != Status::kOk || r->results.empty()) return r->status;
  if (value) *value = r->results[0].value;
  return r->results[0].status;
}

}  // namespace ecfd::kv
