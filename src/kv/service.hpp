#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "broadcast/reliable_broadcast.hpp"
#include "core/ecfd_oracle.hpp"
#include "core/replicated_log.hpp"
#include "kv/command.hpp"
#include "kv/store.hpp"
#include "net/protocol_ids.hpp"
#include "obs/metrics.hpp"

/// \file service.hpp
/// The replicated key-value service: KvStore replicated over LogReplica,
/// with client sessions, command batching, leader-lease reads, and
/// snapshot-based log compaction.
///
/// Slot values are 64-bit ints (consensus::Value), so commands travel in
/// two parts: a BatchBody (many client commands under one unique positive
/// batch id) is disseminated on a dedicated reliable-broadcast instance,
/// and the consensus slot decides only the id. Replicas apply a slot by
/// looking the id up in their delivered-bodies table; when a slot's body
/// has not arrived yet, the apply pipeline stalls (in slot order) until
/// RB delivers it — agreement on ids plus reliable dissemination of
/// bodies yields identical stores everywhere.
///
/// Exactly-once: sessions are replicated state (kOpenSession is a logged
/// command), and every write carries a per-session sequence number that
/// KvStore dedups against its replicated window. A client that times out
/// and retries through a *different* leader still gets each write applied
/// once, because the new leader's store already saw the (session, seq).
///
/// Lease reads: when this replica has been the ◇C trusted process
/// continuously for `lease_establish`, it serves GET-only requests from
/// local state without a log slot. ◇C gives *eventual* leader agreement,
/// not bounded-time mutual exclusion, so during pathological periods a
/// lease read can return slightly stale (but committed) data; writes are
/// always serialized through consensus, so state never diverges. Grants
/// and revocations are obs events (kLeaseGrant/kLeaseRevoke) and
/// metrics. Requests that cannot use the lease fall back to
/// through-the-log reads.
///
/// Snapshots: every `snapshot_every` applied slots the service serializes
/// the store, compacts the log prefix, and keeps the image; replicas
/// gossip applied watermarks, and a replica that lags behind the
/// compaction floor is caught up by chunked snapshot install
/// (install-on-join).
///
/// The service runs unchanged on all three Env backends. Peer traffic
/// (watermarks, snapshot chunks) flows through Env::send; client traffic
/// enters via handle_request() — called by the UDP node's external-frame
/// handler, by tests directly, or by on_message for requests relayed from
/// a peer process — and leaves through the pluggable reply sink.

namespace ecfd::kv {

class KvService final : public Protocol {
 public:
  /// Opaque client identity a reply should be routed back to. For the UDP
  /// node this is SocketEnv's external token (ip:port); tests pick any
  /// value. Peer-relayed requests use an internal scheme.
  using Token = std::uint64_t;
  using ReplySink = std::function<void(Token, const Reply&)>;

  struct Config {
    std::size_t batch_max_ops{64};   ///< flush when this many cmds queued
    DurUs batch_wait{2'000};         ///< flush at most this long after first
    DurUs lease_establish{500'000};  ///< trusted-self streak before a grant
    DurUs lease_check_every{50'000};
    int snapshot_every{64};          ///< applied slots between snapshots
    DurUs gossip_every{200'000};     ///< applied-watermark broadcast period
    std::size_t dedup_window{64};    ///< per-session cached results
    std::size_t max_queued_cmds{4096};  ///< admission bound before kOverloaded
  };

  KvService(Env& env, const core::EcfdOracle* fd, core::LogReplica* log,
            broadcast::ReliableBroadcast* batch_rb)
      : KvService(env, fd, log, batch_rb, Config{}) {}
  KvService(Env& env, const core::EcfdOracle* fd, core::LogReplica* log,
            broadcast::ReliableBroadcast* batch_rb, Config cfg);

  void start() override;
  void on_message(const Message& m) override;

  /// Client entry point. May reply synchronously (redirect, lease read,
  /// validation error, dedup hit) or asynchronously on commit; every
  /// request produces exactly one reply through the sink.
  void handle_request(Token token, const Request& req);

  /// Where replies to handle_request() clients go. Must be set before the
  /// first request.
  void set_reply_sink(ReplySink sink) { reply_sink_ = std::move(sink); }

  /// Binds service counters/gauges into \p m (nullptr to unbind).
  void bind_metrics(obs::MetricsRegistry* m);

  [[nodiscard]] const KvStore& store() const { return store_; }
  [[nodiscard]] bool lease_valid() const { return lease_valid_; }
  [[nodiscard]] std::int64_t lease_term() const { return lease_term_; }
  /// Slots fully applied to the store (stalled applies excluded).
  [[nodiscard]] int applied_slot() const;
  [[nodiscard]] bool is_leader() const { return fd_->trusted() == env_.self(); }
  [[nodiscard]] std::size_t queued_cmds() const { return batch_.cmds.size(); }

  /// Forces the pending batch out now (tests; avoids waiting batch_wait).
  void flush_batch();

  /// Takes a snapshot + compacts now, regardless of snapshot_every.
  void snapshot_now();

 private:
  struct Waiter {
    Token token{};
    bool via_peer{false};
    ProcessId peer{kNoProcess};
    std::uint64_t session{};
    std::uint64_t tag{};
    std::size_t first{};  ///< index range of this request's cmds in batch
    std::size_t count{};
  };

  struct Snapshot {
    std::uint64_t id{0};
    int upto_slot{0};
    std::vector<std::uint8_t> bytes;
  };

  void handle_request_from(Token token, bool via_peer, ProcessId peer,
                           const Request& req);
  void reply_to(const Waiter& w, Reply r);
  void enqueue(const Waiter& w, const Request& req);
  void on_batch_delivered(const broadcast::RbEnvelope& e);
  void on_log_entry(const core::LogReplica::Entry& e);
  void drain_applies();
  void apply_batch(int slot, const BatchBody& body);
  void maybe_snapshot();
  void lease_tick();
  void gossip_tick();
  void on_peer_applied(ProcessId peer, std::int64_t applied);
  void on_snapshot_chunk(const SnapshotChunk& chunk);
  void send_snapshot_to(ProcessId peer);
  void refresh_gauges();
  [[nodiscard]] bool lease_read_ok(const Request& req) const;

  Config cfg_;
  const core::EcfdOracle* fd_;
  core::LogReplica* log_;
  broadcast::ReliableBroadcast* rb_;
  KvStore store_;
  ReplySink reply_sink_;

  // Batching.
  BatchBody batch_;                 ///< building; id assigned at first cmd
  std::vector<Waiter> batch_waiters_;
  std::uint64_t batch_counter_{0};
  TimerId batch_timer_{kInvalidTimer};

  // Dissemination + apply pipeline.
  std::unordered_map<std::int64_t, BatchBody> bodies_;
  std::unordered_map<std::int64_t, std::vector<Waiter>> waiters_;
  std::deque<core::LogReplica::Entry> apply_queue_;  ///< stalled on bodies

  // Lease.
  bool lease_valid_{false};
  TimeUs trusted_self_since_{kTimeNever};
  std::int64_t lease_term_{0};

  // Snapshots.
  std::optional<Snapshot> snapshot_;       ///< latest taken here
  std::uint64_t snap_counter_{0};
  int last_snapshot_upto_{0};
  std::map<ProcessId, std::int64_t> peer_applied_;
  std::map<ProcessId, std::uint64_t> snap_sent_;   ///< last snap id sent
  struct Inbound {
    std::uint64_t id{0};
    int upto_slot{0};
    std::uint32_t total{0};
    std::uint32_t have{0};
    std::vector<std::vector<std::uint8_t>> chunks;
  };
  std::optional<Inbound> inbound_;

  // Metrics (owned by the registry; null when unbound).
  obs::MetricsRegistry* metrics_{nullptr};
  obs::MetricsRegistry::Cell* m_requests_{nullptr};
  obs::MetricsRegistry::Cell* m_redirects_{nullptr};
  obs::MetricsRegistry::Cell* m_lease_reads_{nullptr};
  obs::MetricsRegistry::Cell* m_batches_{nullptr};
  obs::MetricsRegistry::Cell* m_batch_ops_{nullptr};
  obs::MetricsRegistry::Cell* m_overload_{nullptr};
  obs::MetricsRegistry::Cell* m_lease_grants_{nullptr};
  obs::MetricsRegistry::Cell* m_lease_revokes_{nullptr};
  obs::MetricsRegistry::Cell* m_snaps_taken_{nullptr};
  obs::MetricsRegistry::Cell* m_snaps_installed_{nullptr};
};

}  // namespace ecfd::kv
