#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "consensus/consensus.hpp"
#include "net/process_set.hpp"

/// \file command.hpp
/// The ecfd-kv wire vocabulary: what clients send to servers, what servers
/// send back, and what replicas replicate among themselves.
///
/// The replicated-log core decides plain 64-bit values
/// (consensus::Value), so a key-value command cannot travel through a
/// consensus slot directly. Instead the service uses the classic
/// decomposition: the *payload* (a batch of commands) is disseminated with
/// reliable broadcast under a unique 63-bit batch id, and the consensus
/// slot decides only the id. Every replica applies a slot by looking the
/// id up in its delivered-bodies table — agreement on ids plus reliable
/// dissemination of bodies gives agreement on state.
///
/// All of these shapes are registered in wire/codec.hpp (PayloadKinds
/// kKvRequest..kKvSnapshot), so they share the CRC-framed, fuzz-hardened
/// binary codec with every other protocol in the library.

namespace ecfd::kv {

/// Client-protocol version, carried in every Request; bump on any change
/// to request/reply semantics (the frame layout itself is versioned by
/// wire::kVersion).
inline constexpr std::uint8_t kProtoVersion = 1;

/// Hard bounds enforced on both encode and apply, so a malicious client
/// frame can never blow up a replica.
inline constexpr std::size_t kMaxKeyBytes = 128;
inline constexpr std::size_t kMaxValueBytes = 1024;
inline constexpr std::size_t kMaxOpsPerRequest = 64;
inline constexpr std::size_t kMaxOpsPerBatch = 512;
inline constexpr std::size_t kMaxSnapshotChunkBytes = 32 * 1024;

/// Message types on protocol_ids::kKvService.
enum MsgType {
  kMsgClientRequest = 1,  ///< external: client -> server (Request)
  kMsgClientReply = 2,    ///< external: server -> client (Reply)
  kMsgApplied = 3,        ///< peer gossip: applied-slot watermark (i64)
  kMsgSnapshotChunk = 4,  ///< peer: one chunk of a serialized store
};

/// Operations. Values are on the wire — append only.
enum class OpKind : std::uint8_t {
  kGet = 0,
  kPut = 1,
  kDel = 2,
  kCas = 3,          ///< compare `expected`, swap to `value`
  kOpenSession = 4,  ///< replicated; idempotent
  kCloseSession = 5,
};

/// Statuses. Values are on the wire — append only.
enum class Status : std::uint8_t {
  kOk = 0,
  kNotFound = 1,
  kCasMismatch = 2,   ///< result value = the current (unswapped) value
  kNoSession = 3,     ///< write without a replicated kOpenSession first
  kNotLeader = 4,     ///< retry at Reply::leader_hint
  kOverloaded = 5,    ///< log capacity exhausted / batch full
  kOutOfOrder = 6,    ///< seq gap (client bug; never applied)
  kTooLarge = 7,      ///< key/value/op-count bound violated
  kBadVersion = 8,    ///< Request::version != kProtoVersion
  kTimeout = 9,       ///< client-side only: no reply within the deadline
};

const char* status_name(Status s);

/// One client operation. Write ops carry a per-session sequence number
/// (1-based, assigned by the client, consecutive); reads carry seq 0 and
/// are never deduplicated (they are idempotent).
struct Op {
  OpKind op{OpKind::kGet};
  std::uint64_t seq{0};
  std::string key;
  std::string value;
  std::string expected;  ///< kCas only
};

/// Request flags.
inline constexpr std::uint8_t kFlagLeaseRead = 1;  ///< reads may be served
                                                   ///< leader-locally under
                                                   ///< a valid lease

/// Client -> server envelope: one or more operations of one session.
/// All ops of a request commit in one consensus batch and are answered by
/// a single Reply.
struct Request {
  std::uint8_t version{kProtoVersion};
  std::uint8_t flags{kFlagLeaseRead};
  std::uint64_t session{0};
  std::uint64_t tag{0};  ///< echoed in the Reply; client-side matching
  std::vector<Op> ops;
};

/// Per-op outcome.
struct OpResult {
  Status status{Status::kOk};
  std::string value;

  friend bool operator==(const OpResult& a, const OpResult& b) {
    return a.status == b.status && a.value == b.value;
  }
};

/// Server -> client envelope.
struct Reply {
  std::uint64_t session{0};
  std::uint64_t tag{0};
  Status status{Status::kOk};        ///< transport-level outcome
  std::int32_t leader_hint{-1};      ///< set with kNotLeader
  std::int32_t applied_slot{-1};     ///< slot that committed this request
                                     ///< (-1 for lease reads / dedup hits)
  std::vector<OpResult> results;     ///< one per op when status == kOk
};

/// One replicated command: an Op plus its session. What actually enters
/// the state machine.
struct Cmd {
  std::uint64_t session{0};
  std::uint64_t seq{0};
  OpKind op{OpKind::kGet};
  std::string key;
  std::string value;
  std::string expected;
};

/// The body a consensus slot's decided id refers to: a batch of commands,
/// disseminated by reliable broadcast before (or concurrently with) the
/// slot deciding `id`.
struct BatchBody {
  std::int64_t id{0};  ///< unique, positive; see make_batch_id
  std::vector<Cmd> cmds;
};

/// One chunk of a serialized KvStore snapshot, sent by the leader to a
/// replica whose applied watermark lags behind the leader's compaction
/// floor. Chunks of one snapshot share snap_id; the receiver reassembles
/// `total` of them, installs the state, and fast-forwards its log.
struct SnapshotChunk {
  std::uint64_t snap_id{0};
  std::int32_t upto_slot{0};  ///< state covers slots [0, upto_slot)
  std::uint32_t index{0};
  std::uint32_t total{0};
  std::vector<std::uint8_t> bytes;
};

/// Batch ids must be unique across replicas and positive (so they never
/// collide with core::kNoOpCommand): origin in the top bits, a local
/// counter below.
inline std::int64_t make_batch_id(ProcessId origin, std::uint64_t counter) {
  return static_cast<std::int64_t>(
      ((static_cast<std::uint64_t>(origin) + 1) << 40) |
      (counter & ((std::uint64_t{1} << 40) - 1)));
}

/// The RB tag kv batch bodies travel under.
inline constexpr int kRbTagBatch = 1;

}  // namespace ecfd::kv
