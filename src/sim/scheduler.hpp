#pragma once

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

/// \file scheduler.hpp
/// The discrete-event simulation clock and executor.

namespace ecfd::sim {

/// Single-threaded discrete-event scheduler.
///
/// Owns the virtual clock. Events execute in (time, scheduling-order)
/// sequence; an executing event may schedule or cancel further events.
class Scheduler {
 public:
  /// Current virtual time.
  [[nodiscard]] TimeUs now() const { return now_; }

  /// Schedules \p action to run \p delay after now (delay < 0 clamps to 0).
  EventId schedule_after(DurUs delay, EventQueue::Action action);

  /// Schedules \p action at absolute time \p when (past times clamp to now).
  EventId schedule_at(TimeUs when, EventQueue::Action action);

  /// Cancels a pending event; false if already fired/cancelled/unknown.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// The id the next schedule_after/schedule_at call will return; lets a
  /// closure carry its own event id without a heap-allocated cell.
  [[nodiscard]] EventId next_event_id() const { return queue_.next_id(); }

  /// Runs every event with time <= \p deadline (the queue may refill as
  /// events schedule further events). On return the clock is at exactly
  /// \p deadline, even when the last event fired earlier or no event fired
  /// at all. Returns the number of events fired.
  std::size_t run_until(TimeUs deadline);

  /// Runs until the queue is empty. Returns the number of events fired.
  std::size_t run();

  /// Fires at most one event. Returns false when the queue is empty.
  bool step();

  /// Number of live pending events.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Total events fired so far.
  [[nodiscard]] std::uint64_t fired() const { return fired_; }

 private:
  EventQueue queue_;
  TimeUs now_{0};
  std::uint64_t fired_{0};
};

}  // namespace ecfd::sim
