#pragma once

#include <cstdint>
#include <limits>

#include "sim/time.hpp"

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// Every source of randomness in a simulation (link delays, loss decisions,
/// workload generation) draws from an Rng seeded from the scenario seed, so a
/// run is reproducible from (topology, scenario, seed).

namespace ecfd {

/// xoshiro256** by Blackman & Vigna, seeded via splitmix64.
///
/// Satisfies the UniformRandomBitGenerator requirements so it can also be
/// plugged into <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialises the state from a 64-bit seed (splitmix64 expansion).
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  /// Next raw 64-bit output.
  std::uint64_t next();

  /// Uniform integer in [0, bound). Returns 0 when bound == 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Exponentially distributed duration with the given mean (>= 0).
  DurUs exponential(DurUs mean);

  /// Derives an independent child generator; used to give each process /
  /// link its own stream from one scenario seed.
  Rng split();

 private:
  std::uint64_t s_[4]{};
};

}  // namespace ecfd
