#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

/// \file stats.hpp
/// Named counters and scalar summaries used for experiment accounting
/// (messages per protocol/type, detection latencies, rounds to decide...).

namespace ecfd::sim {

/// A registry of named monotonic counters.
///
/// Keys are free-form strings; the networking layer uses
/// "msg.<protocol>.<type>" so experiments can aggregate by prefix.
class Counters {
 public:
  /// Adds \p delta (default 1) to counter \p key, creating it at 0.
  void add(const std::string& key, std::int64_t delta = 1);

  /// Current value; 0 for unknown keys.
  [[nodiscard]] std::int64_t get(const std::string& key) const;

  /// Stable pointer to the counter cell for \p key (created at 0). Hot
  /// paths intern the pointer once per label and bump it directly,
  /// skipping per-event key construction and map lookups. The pointer
  /// stays valid until reset() — std::map nodes do not move.
  [[nodiscard]] std::int64_t* slot(const std::string& key) {
    return &values_[key];
  }

  /// Sum of all counters whose key starts with \p prefix.
  [[nodiscard]] std::int64_t sum_prefix(const std::string& prefix) const;

  /// All counters, sorted by key.
  [[nodiscard]] const std::map<std::string, std::int64_t>& all() const {
    return values_;
  }

  void reset() { values_.clear(); }

 private:
  std::map<std::string, std::int64_t> values_;
};

/// Online summary of a stream of scalar observations.
///
/// Stores the observations so min/max/mean/percentiles are all exact; the
/// volumes in this project (thousands of samples) make that the right
/// trade-off.
class Summary {
 public:
  void add(double x) { xs_.push_back(x); sorted_ = false; }

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// q in [0,1]; nearest-rank percentile. Requires !empty().
  [[nodiscard]] double percentile(double q) const;

  void reset() { xs_.clear(); sorted_ = false; }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> xs_;
  mutable bool sorted_{false};
};

}  // namespace ecfd::sim
