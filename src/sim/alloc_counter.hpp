#pragma once

#include <atomic>
#include <cstdint>

/// \file alloc_counter.hpp
/// Opt-in global-allocation accounting.
///
/// The counters live here as inline atomics so any TU can read them; they
/// only ever move when `sim/alloc_counter.cpp` — which replaces the global
/// operator new/delete — is linked into the binary. That TU is deliberately
/// NOT part of the ecfd library: only the allocation-regression test and
/// tools/bench_runner link it, so ordinary binaries keep the stock
/// allocator. Check `alloc_counting_active()` before trusting the numbers.
///
/// This is how the "zero heap allocations per scheduled event in the steady
/// state" property is demonstrated: run a warmed-up schedule/pop loop and
/// assert the counter does not advance.

namespace ecfd::sim {

struct AllocCounters {
  std::atomic<std::uint64_t> allocs{0};  ///< operator new calls
  std::atomic<std::uint64_t> frees{0};   ///< operator delete calls
  std::atomic<std::uint64_t> bytes{0};   ///< total bytes requested
  std::atomic<bool> active{false};       ///< override TU linked?
};

inline AllocCounters& alloc_counters() {
  static AllocCounters c;
  return c;
}

/// True when the counting operator new/delete replacement is linked in.
inline bool alloc_counting_active() {
  return alloc_counters().active.load(std::memory_order_relaxed);
}

/// Snapshot of the allocation count (0 when not active).
inline std::uint64_t alloc_count() {
  return alloc_counters().allocs.load(std::memory_order_relaxed);
}

/// Snapshot of total bytes requested via operator new (0 when not active).
inline std::uint64_t alloc_bytes() {
  return alloc_counters().bytes.load(std::memory_order_relaxed);
}

}  // namespace ecfd::sim
