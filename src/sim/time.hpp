#pragma once

#include <cstdint>

/// \file time.hpp
/// Virtual-time representation used throughout the library.
///
/// The simulator measures time in integral microseconds. Protocols are
/// written against these aliases so the same code runs on the discrete-event
/// scheduler and on the wall-clock threaded runtime.

namespace ecfd {

/// Absolute virtual time in microseconds since the start of the run.
using TimeUs = std::int64_t;

/// A duration in microseconds.
using DurUs = std::int64_t;

/// Sentinel for "no time" / "never".
inline constexpr TimeUs kTimeNever = INT64_MAX;

/// Convenience literals-like constructors.
constexpr DurUs usec(std::int64_t v) { return v; }
constexpr DurUs msec(std::int64_t v) { return v * 1000; }
constexpr DurUs sec(std::int64_t v) { return v * 1'000'000; }

}  // namespace ecfd
