#include "sim/trace.hpp"

#include <sstream>
#include <utility>

namespace ecfd::sim {

void Trace::emit(TimeUs time, int process, std::string tag,
                 std::string detail) {
  if (!enabled_) return;
  events_.push_back(TraceEvent{time, process, std::move(tag), std::move(detail)});
}

void Trace::for_tag(const std::string& tag,
                    const std::function<void(const TraceEvent&)>& fn) const {
  for (const auto& e : events_) {
    if (e.tag == tag) fn(e);
  }
}

std::string Trace::to_string() const {
  std::ostringstream os;
  for (const auto& e : events_) {
    os << '[' << e.time << "us] ";
    if (e.process >= 0) {
      os << 'p' << e.process << ' ';
    } else {
      os << "sys ";
    }
    os << e.tag;
    if (!e.detail.empty()) os << ' ' << e.detail;
    os << '\n';
  }
  return os.str();
}

}  // namespace ecfd::sim
