#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"

/// \file trace.hpp
/// Optional structured run trace. Disabled by default; examples and
/// debugging sessions enable it to print protocol timelines.

namespace ecfd::sim {

/// One trace record.
struct TraceEvent {
  TimeUs time{};
  int process{-1};           ///< emitting process id, -1 for system events
  std::string tag;           ///< short category, e.g. "fd.suspect"
  std::string detail;        ///< free-form description
};

/// Collects trace events when enabled; no-ops (and allocates nothing)
/// otherwise.
class Trace {
 public:
  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void emit(TimeUs time, int process, std::string tag, std::string detail);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

  /// Invokes \p fn on every event with the given tag.
  void for_tag(const std::string& tag,
               const std::function<void(const TraceEvent&)>& fn) const;

  /// Renders events as "[time] p<id> tag detail" lines.
  [[nodiscard]] std::string to_string() const;

  void clear() { events_.clear(); }

 private:
  bool enabled_{false};
  std::vector<TraceEvent> events_;
};

}  // namespace ecfd::sim
