// Counting replacement of the global allocator. See alloc_counter.hpp for
// the linking contract: this TU is linked only into binaries that want
// allocation accounting (test_alloc_counting, tools/bench_runner). It must
// not be added to the ecfd library.

#include "sim/alloc_counter.hpp"

#include <cstdlib>
#include <new>

namespace {

struct Activate {
  Activate() {
    ecfd::sim::alloc_counters().active.store(true, std::memory_order_relaxed);
  }
} activate;

void* counted_alloc(std::size_t size) {
  auto& c = ecfd::sim::alloc_counters();
  c.allocs.fetch_add(1, std::memory_order_relaxed);
  c.bytes.fetch_add(size, std::memory_order_relaxed);
  // malloc(0) may return nullptr; operator new must not.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  auto& c = ecfd::sim::alloc_counters();
  c.allocs.fetch_add(1, std::memory_order_relaxed);
  c.bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  ecfd::sim::alloc_counters().frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
