#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inplace_action.hpp"
#include "sim/time.hpp"

/// \file event_queue.hpp
/// Priority queue of timed events with deterministic tie-breaking and
/// O(log n) true cancellation, allocation-free in the steady state.

namespace ecfd::sim {

/// Identifier of a scheduled event; usable to cancel it.
///
/// Encodes (slot index, generation). Slots are reused after an event fires
/// or is cancelled, and each reuse bumps the slot's generation, so a stale
/// id can never cancel the event that now occupies the same slot.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

/// Indexed 4-ary min-heap of (time, sequence) ordered events.
///
/// Two events scheduled for the same instant fire in scheduling order,
/// which makes whole simulations bit-reproducible. Cancellation removes
/// the entry from the heap immediately (O(log n) sift), so cancelled
/// events cost nothing afterwards — no tombstones to skip on pop.
///
/// Storage: a chunked slot slab (time/seq/generation/action; slots are
/// recycled through a free list and NEVER move, so actions can run in
/// place), the heap of slot indices, and the free list. Actions are
/// InplaceAction, stored inline in the slot. After warm-up,
/// schedule/cancel/fire never touch the heap allocator.
class EventQueue {
 public:
  using Action = InplaceAction;

  /// Schedules \p action at absolute time \p when. Returns its id.
  EventId schedule(TimeUs when, Action action);

  /// Cancels a pending event. Returns false if the id is unknown, already
  /// fired, or already cancelled.
  bool cancel(EventId id);

  /// True when no live event remains.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest live event; kTimeNever when empty.
  [[nodiscard]] TimeUs next_time() const {
    return heap_.empty() ? kTimeNever : slab_[heap_[0]].time;
  }

  /// The id the next call to schedule() will return. Lets a caller embed
  /// an event's own id in its closure without a heap-allocated cell.
  [[nodiscard]] EventId next_id() const;

  /// Fires the earliest live event IN PLACE — the hot path. Removes it
  /// from the heap, calls `observe(time, id)` (the scheduler advances its
  /// clock here), runs the action without moving it out of its slot, then
  /// recycles the slot. The action may freely schedule or cancel events;
  /// slots never move, and a slot being fired is not on the free list, so
  /// reentrant scheduling cannot clobber it. Requires !empty().
  template <class ObserveFn>
  void pop_run(ObserveFn&& observe) {
    const SlotIndex s = heap_[0];
    heap_remove(0);
    Slot& slot = slab_[s];
    // Mark the slot off-heap NOW: a firing event is no longer cancellable,
    // so cancel(own id) from inside the action must return false (and must
    // not heap_remove whatever live entry sits at the stale position).
    slot.heap_pos = kNoPos;
    observe(slot.time, encode(s, slot.gen));
    if (slot.action) slot.action();
    slot.action.reset();
    release(s);
  }

  /// Fired event, returned by pop().
  struct Fired {
    TimeUs time{};
    EventId id{kInvalidEvent};
    Action action{};
  };

  /// Removes and returns the earliest live event (moving the action out).
  /// Tests and ad-hoc drivers use this; the scheduler uses pop_run().
  /// Requires !empty().
  Fired pop();

 private:
  using SlotIndex = std::uint32_t;

  static constexpr SlotIndex kNoPos = UINT32_MAX;

  struct Slot {
    TimeUs time{};
    std::uint64_t seq{};       ///< schedule order, the deterministic tie-break
    std::uint32_t gen{0};      ///< bumped on release; half of the EventId
    SlotIndex heap_pos{kNoPos};  ///< kNoPos when the slot is free
    Action action{};
  };

  /// Fixed-chunk slab of slots. Growing appends a chunk; existing slots
  /// never move (so in-flight actions and vector growth can coexist, and
  /// growth never runs O(n) move-constructors like a flat vector would).
  class SlotSlab {
   public:
    static constexpr std::size_t kChunkShift = 10;  // 1024 slots / chunk
    static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
    static constexpr std::size_t kChunkMask = kChunkSize - 1;

    Slot& operator[](std::size_t i) {
      return chunks_[i >> kChunkShift][i & kChunkMask];
    }
    const Slot& operator[](std::size_t i) const {
      return chunks_[i >> kChunkShift][i & kChunkMask];
    }
    [[nodiscard]] std::size_t size() const { return size_; }

    /// Appends a default-constructed slot; returns its index.
    std::size_t grow() {
      if (size_ == chunks_.size() * kChunkSize) {
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
      }
      return size_++;
    }

   private:
    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::size_t size_{0};
  };

  static EventId encode(SlotIndex slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(slot) + 1);
  }

  /// Earlier-fires-first order: (time, seq) lexicographic.
  [[nodiscard]] bool before(SlotIndex a, SlotIndex b) const {
    const Slot& sa = slab_[a];
    const Slot& sb = slab_[b];
    if (sa.time != sb.time) return sa.time < sb.time;
    return sa.seq < sb.seq;
  }

  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  /// Detaches the heap entry at \p pos (swap-with-last + sift).
  void heap_remove(std::size_t pos);
  /// Returns the slot to the free list, bumping its generation.
  void release(SlotIndex slot);

  SlotSlab slab_;
  std::vector<SlotIndex> heap_;  ///< slot indices, 4-ary min-heap
  std::vector<SlotIndex> free_;  ///< LIFO of recycled slot indices
  std::uint64_t next_seq_{1};
};

}  // namespace ecfd::sim
