#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

/// \file event_queue.hpp
/// Priority queue of timed events with deterministic tie-breaking and
/// O(1) lazy cancellation.

namespace ecfd::sim {

/// Identifier of a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

/// Min-heap of (time, sequence) ordered events.
///
/// Two events scheduled for the same instant fire in scheduling order, which
/// makes whole simulations bit-reproducible. Cancellation is lazy: cancelled
/// entries stay in the heap and are skipped on pop.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules \p action at absolute time \p when. Returns its id.
  EventId schedule(TimeUs when, Action action);

  /// Cancels a pending event. Returns false if the id is unknown, already
  /// fired, or already cancelled.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event; kTimeNever when empty.
  [[nodiscard]] TimeUs next_time();

  /// Fired event, returned by pop().
  struct Fired {
    TimeUs time{};
    EventId id{kInvalidEvent};
    Action action{};
  };

  /// Removes and returns the earliest live event. Requires !empty().
  Fired pop();

 private:
  struct Entry {
    TimeUs time{};
    EventId id{};
    Action action{};
    bool cancelled{false};
  };

  struct Cmp {
    // std::priority_queue is a max-heap; invert to get (time, id) min order.
    bool operator()(const Entry* a, const Entry* b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->id > b->id;
    }
  };

  void drop_cancelled_head();

  std::priority_queue<Entry*, std::vector<Entry*>, Cmp> heap_;
  std::unordered_map<EventId, std::unique_ptr<Entry>> entries_;
  EventId next_id_{1};
  std::size_t live_{0};
};

}  // namespace ecfd::sim
