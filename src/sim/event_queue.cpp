#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace ecfd::sim {

EventId EventQueue::schedule(TimeUs when, Action action) {
  const EventId id = next_id_++;
  auto owned = std::make_unique<Entry>(Entry{when, id, std::move(action), false});
  heap_.push(owned.get());
  entries_.emplace(id, std::move(owned));
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  auto it = entries_.find(id);
  if (it == entries_.end() || it->second->cancelled) return false;
  it->second->cancelled = true;
  it->second->action = nullptr;  // release any captured state promptly
  --live_;
  return true;
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty() && heap_.top()->cancelled) {
    Entry* e = heap_.top();
    heap_.pop();
    entries_.erase(e->id);
  }
}

TimeUs EventQueue::next_time() {
  drop_cancelled_head();
  return heap_.empty() ? kTimeNever : heap_.top()->time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  Entry* e = heap_.top();
  heap_.pop();
  --live_;
  Fired f{e->time, e->id, std::move(e->action)};
  entries_.erase(e->id);
  return f;
}

}  // namespace ecfd::sim
