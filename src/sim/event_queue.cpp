#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ecfd::sim {

EventId EventQueue::next_id() const {
  if (!free_.empty()) {
    const SlotIndex s = free_.back();
    return encode(s, slab_[s].gen);
  }
  return encode(static_cast<SlotIndex>(slab_.size()), 0);
}

EventId EventQueue::schedule(TimeUs when, Action action) {
  SlotIndex s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
  } else {
    assert(slab_.size() < kNoPos && "EventQueue slot space exhausted");
    s = static_cast<SlotIndex>(slab_.grow());
  }
  Slot& slot = slab_[s];
  slot.time = when;
  slot.seq = next_seq_++;
  slot.action = std::move(action);
  slot.heap_pos = static_cast<SlotIndex>(heap_.size());
  heap_.push_back(s);
  sift_up(heap_.size() - 1);
  return encode(s, slot.gen);
}

bool EventQueue::cancel(EventId id) {
  if (id == kInvalidEvent) return false;
  const auto raw = (id & 0xffffffffULL);
  if (raw == 0 || raw > slab_.size()) return false;
  const SlotIndex s = static_cast<SlotIndex>(raw - 1);
  Slot& slot = slab_[s];
  if (slot.heap_pos == kNoPos ||
      slot.gen != static_cast<std::uint32_t>(id >> 32)) {
    return false;  // already fired, already cancelled, or a recycled slot
  }
  heap_remove(slot.heap_pos);
  slot.action.reset();  // release any captured state promptly
  release(s);
  return true;
}

EventQueue::Fired EventQueue::pop() {
  assert(!heap_.empty() && "pop() on empty EventQueue");
  const SlotIndex s = heap_[0];
  Slot& slot = slab_[s];
  Fired f{slot.time, encode(s, slot.gen), std::move(slot.action)};
  heap_remove(0);
  release(s);
  return f;
}

void EventQueue::sift_up(std::size_t pos) {
  const SlotIndex moving = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!before(moving, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slab_[heap_[pos]].heap_pos = static_cast<SlotIndex>(pos);
    pos = parent;
  }
  heap_[pos] = moving;
  slab_[moving].heap_pos = static_cast<SlotIndex>(pos);
}

void EventQueue::sift_down(std::size_t pos) {
  const std::size_t n = heap_.size();
  const SlotIndex moving = heap_[pos];
  for (;;) {
    const std::size_t first_child = pos * 4 + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + 4, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], moving)) break;
    heap_[pos] = heap_[best];
    slab_[heap_[pos]].heap_pos = static_cast<SlotIndex>(pos);
    pos = best;
  }
  heap_[pos] = moving;
  slab_[moving].heap_pos = static_cast<SlotIndex>(pos);
}

void EventQueue::heap_remove(std::size_t pos) {
  const SlotIndex last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail entry
  heap_[pos] = last;
  slab_[last].heap_pos = static_cast<SlotIndex>(pos);
  // The swapped-in entry may need to move either way.
  sift_down(pos);
  sift_up(slab_[last].heap_pos);
}

void EventQueue::release(SlotIndex slot) {
  slab_[slot].heap_pos = kNoPos;
  ++slab_[slot].gen;
  free_.push_back(slot);
}

}  // namespace ecfd::sim
