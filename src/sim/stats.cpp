#include "sim/stats.hpp"

#include <cassert>
#include <numeric>

namespace ecfd::sim {

void Counters::add(const std::string& key, std::int64_t delta) {
  values_[key] += delta;
}

std::int64_t Counters::get(const std::string& key) const {
  auto it = values_.find(key);
  return it == values_.end() ? 0 : it->second;
}

std::int64_t Counters::sum_prefix(const std::string& prefix) const {
  std::int64_t total = 0;
  for (auto it = values_.lower_bound(prefix); it != values_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second;
  }
  return total;
}

double Summary::sum() const {
  return std::accumulate(xs_.begin(), xs_.end(), 0.0);
}

double Summary::mean() const { return xs_.empty() ? 0.0 : sum() / count(); }

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Summary::min() const {
  assert(!xs_.empty());
  ensure_sorted();
  return xs_.front();
}

double Summary::max() const {
  assert(!xs_.empty());
  ensure_sorted();
  return xs_.back();
}

double Summary::percentile(double q) const {
  assert(!xs_.empty());
  ensure_sorted();
  if (q <= 0.0) return xs_.front();
  if (q >= 1.0) return xs_.back();
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(xs_.size() - 1) + 0.5);
  return xs_[std::min(idx, xs_.size() - 1)];
}

}  // namespace ecfd::sim
