#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

/// \file inplace_action.hpp
/// A fixed-capacity, non-allocating move-only callable.
///
/// Every event the simulator fires is a closure; with std::function each
/// capture larger than the small-buffer threshold costs a heap allocation
/// on the hottest path in the system. InplaceAction stores the callable
/// inline — always — and makes "too big to fit" a compile error
/// (static_assert) instead of a silent allocation. The capacity is sized
/// for the largest closure the simulator schedules: a Message delivery
/// capture (Message + one pointer) and a ProcessHost timer wrapper
/// (std::function + id + pointer) both fit with room to spare.

namespace ecfd::sim {

class InplaceAction {
 public:
  /// Inline storage size. If a static_assert below fires, shrink the
  /// lambda's capture (capture pointers, not objects) — do not grow this
  /// without re-measuring Entry size in the event queue.
  static constexpr std::size_t kCapacity = 72;

  InplaceAction() = default;
  InplaceAction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceAction> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
  InplaceAction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "closure too large for InplaceAction — capture less, or "
                  "capture by pointer");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "overaligned closures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "InplaceAction requires nothrow-movable callables");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    manage_ = [](void* dst, void* src) noexcept {
      if (src != nullptr) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      } else {
        static_cast<Fn*>(dst)->~Fn();
      }
    };
  }

  InplaceAction(InplaceAction&& other) noexcept { move_from(other); }

  InplaceAction& operator=(InplaceAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InplaceAction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InplaceAction(const InplaceAction&) = delete;
  InplaceAction& operator=(const InplaceAction&) = delete;

  ~InplaceAction() { reset(); }

  /// Destroys the stored callable, releasing captured state promptly.
  void reset() {
    if (manage_ != nullptr) {
      manage_(buf_, nullptr);
      manage_ = nullptr;
      invoke_ = nullptr;
    }
  }

  void operator()() { invoke_(buf_); }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  using InvokeFn = void (*)(void*);
  /// src != nullptr: move-construct *src into dst and destroy src.
  /// src == nullptr: destroy dst.
  using ManageFn = void (*)(void* dst, void* src) noexcept;

  void move_from(InplaceAction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) {
      manage_(buf_, other.buf_);
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kCapacity];
  InvokeFn invoke_{nullptr};
  ManageFn manage_{nullptr};
};

}  // namespace ecfd::sim
