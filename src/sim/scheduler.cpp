#include "sim/scheduler.hpp"

#include <utility>

namespace ecfd::sim {

EventId Scheduler::schedule_after(DurUs delay, EventQueue::Action action) {
  if (delay < 0) delay = 0;
  return queue_.schedule(now_ + delay, std::move(action));
}

EventId Scheduler::schedule_at(TimeUs when, EventQueue::Action action) {
  if (when < now_) when = now_;
  return queue_.schedule(when, std::move(action));
}

std::size_t Scheduler::run_until(TimeUs deadline) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    queue_.pop_run([this](TimeUs t, EventId) {
      now_ = t;
      ++fired_;
    });
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t Scheduler::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  queue_.pop_run([this](TimeUs t, EventId) {
    now_ = t;
    ++fired_;
  });
  return true;
}

}  // namespace ecfd::sim
