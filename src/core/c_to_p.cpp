#include "core/c_to_p.hpp"

namespace ecfd::core {

namespace {
constexpr int kAlive = 1;
constexpr int kList = 2;
}

CToP::CToP(Env& env, const LeaderOracle* trusted_src)
    : CToP(env, trusted_src, Config{}) {}

CToP::CToP(Env& env, const LeaderOracle* trusted_src, Config cfg)
    : Protocol(env, protocol_ids::kCToP),
      cfg_(cfg),
      trusted_src_(trusted_src),
      local_list_(env.n()),
      adopted_(env.n()),
      last_alive_(static_cast<std::size_t>(env.n()), 0),
      timeout_(static_cast<std::size_t>(env.n()), cfg.initial_timeout) {}

void CToP::start() {
  env_.set_timer(env_.rng().range(0, cfg_.alive_period),
                 [this]() { alive_tick(); });
  env_.set_timer(env_.rng().range(0, cfg_.list_period),
                 [this]() { leader_tick(); });
}

void CToP::alive_tick() {
  // Task 2: tell my trusted process I am alive. (A self-message would be
  // pointless: the leader never suspects itself.)
  const ProcessId t = trusted_src_->trusted();
  if (t != env_.self()) {
    env_.send(t, Message::make_empty(protocol_id(), kAlive, "ctp.alive"));
  }
  env_.set_timer(cfg_.alive_period, [this]() { alive_tick(); });
}

void CToP::leader_tick() {
  const bool leader_now = trusted_src_->trusted() == env_.self();
  if (leader_now && !acting_leader_) {
    // Leadership just acquired: nobody has been reporting to us, so grant
    // every process a fresh grace period instead of mass-suspecting on
    // stale timestamps. (Transient leaders are allowed by ◇C; this only
    // reduces noise, eventual properties do not depend on it.)
    const TimeUs now = env_.now();
    for (auto& t : last_alive_) t = now;
    local_list_.clear();
    env_.trace("ctp.leader", "acquired");
  }
  acting_leader_ = leader_now;

  if (acting_leader_) {
    // Task 3: time out silent processes.
    const TimeUs now = env_.now();
    for (ProcessId q = 0; q < env_.n(); ++q) {
      if (q == env_.self()) continue;  // the leader never suspects itself
      const auto i = static_cast<std::size_t>(q);
      if (!local_list_.contains(q) && now - last_alive_[i] > timeout_[i]) {
        local_list_.add(q);
        env_.record(EventType::kSuspect, q);
        env_.trace("ctp.suspect", "p" + std::to_string(q));
      }
    }
    // Task 1: publish the list; the leader's own output is its local list.
    env_.broadcast(
        Message::make(protocol_id(), kList, "ctp.list", local_list_));
    adopted_ = local_list_;
  }
  env_.set_timer(cfg_.list_period, [this]() { leader_tick(); });
}

void CToP::on_message(const Message& m) {
  switch (m.type) {
    case kAlive: {
      const auto i = static_cast<std::size_t>(m.src);
      last_alive_[i] = env_.now();
      if (local_list_.contains(m.src)) {
        // Task 4: a suspected process spoke up — mistake; widen timeout.
        local_list_.remove(m.src);
        timeout_[i] += cfg_.timeout_increment;
        env_.record(EventType::kUnsuspect, m.src);
        env_.trace("ctp.unsuspect", "p" + std::to_string(m.src));
      }
      break;
    }
    case kList: {
      // Task 5: adopt the list, but only from the process we currently
      // trust, and never adopt a suspicion of ourselves.
      if (m.src == trusted_src_->trusted()) {
        adopted_ = m.as<ProcessSet>();
        adopted_.remove(env_.self());
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace ecfd::core
