#pragma once

#include <vector>

#include "core/ecfd_oracle.hpp"
#include "net/env.hpp"
#include "net/protocol_ids.hpp"

/// \file c_to_p.hpp
/// The paper's Fig. 2 algorithm: transforming a ◇C (or Omega) failure
/// detector D into a ◇P failure detector in a model of partial synchrony
/// (Section 4, Theorem 1).
///
/// The idea: let the eventually-agreed trusted process build the suspected
/// list for everyone.
///
///   Task 1 (leader only)  — periodically send the local suspected list to
///                           every other process.
///   Task 2 (everyone)     — periodically send I-AM-ALIVE to D.trusted_p.
///   Task 3 (leader only)  — suspect q when no I-AM-ALIVE arrived within
///                           the per-target timeout Δ_p(q).
///   Task 4 (leader only)  — on I-AM-ALIVE from a suspected q: stop
///                           suspecting q and increase Δ_p(q).
///   Task 5 (everyone)     — on receiving a suspected list from the
///                           process currently trusted: adopt it as own
///                           output (never adopting a suspicion of self).
///
/// Requirements (Section 4): the n-1 input links of the eventual leader are
/// reliable and partially synchronous; its n-1 output links may be fair
/// lossy; nothing is assumed of other links — eventually only these 2(n-1)
/// links carry messages, which is the transformation's headline cost
/// (versus n² for Chandra-Toueg's ◇P and 2n for the ring ◇P).
///
/// The transformation queries D only for its trusted process, so it works
/// verbatim on top of a plain Omega detector too (as the paper notes).

namespace ecfd::core {

class CToP final : public Protocol, public SuspectOracle {
 public:
  struct Config {
    DurUs alive_period{msec(10)};   ///< Task 2 period Φ
    DurUs list_period{msec(10)};    ///< Task 1 period
    DurUs initial_timeout{msec(30)};
    DurUs timeout_increment{msec(10)};
  };

  /// \p trusted_src is this process's local module of the input detector D
  /// (only its trusted() output is used). Not owned.
  CToP(Env& env, const LeaderOracle* trusted_src);
  CToP(Env& env, const LeaderOracle* trusted_src, Config cfg);

  void start() override;
  void on_message(const Message& m) override;

  /// The transformed ◇P output.
  [[nodiscard]] ProcessSet suspected() const override { return adopted_; }

  /// Whether this process currently considers itself the leader.
  [[nodiscard]] bool acting_leader() const { return acting_leader_; }

 private:
  void alive_tick();  ///< Task 2
  void leader_tick(); ///< Tasks 1 + 3 (+ leadership transitions)

  Config cfg_;
  const LeaderOracle* trusted_src_;
  bool acting_leader_{false};
  ProcessSet local_list_;   ///< the list the leader builds (Tasks 3/4)
  ProcessSet adopted_;      ///< the ◇P output (Task 5)
  std::vector<TimeUs> last_alive_;
  std::vector<DurUs> timeout_;
};

}  // namespace ecfd::core
