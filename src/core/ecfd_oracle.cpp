#include "core/ecfd_oracle.hpp"

namespace ecfd::core {

EcfdOracle::~EcfdOracle() = default;

}  // namespace ecfd::core
