#include "core/replicated_log.hpp"

#include <algorithm>

namespace ecfd::core {

void LogReplica::submit(consensus::Value command) {
  assert(command != kNoOpCommand);
  pending_.push_back(command);
  propose_next();
}

// Picks the first pending command not already racing in an undecided slot
// (values may repeat, so count occurrences). kNoOpCommand when none.
consensus::Value LogReplica::pick_pending() const {
  std::map<consensus::Value, std::size_t> skipped;
  for (const consensus::Value v : pending_) {
    if (skipped[v] < in_flight_.count(v)) {
      ++skipped[v];
      continue;
    }
    return v;
  }
  return kNoOpCommand;
}

void LogReplica::propose_into(int slot, consensus::Value v) {
  sent_[static_cast<std::size_t>(slot)] = 1;
  proposed_[static_cast<std::size_t>(slot)] = v;
  if (v != kNoOpCommand) in_flight_.insert(v);
  slots_[static_cast<std::size_t>(slot)]->propose(v);
}

// Foreign traffic on a slot this replica has not proposed into: another
// replica started it, so join in — give a pending command a ride when one
// is eligible, otherwise participate with the classic no-op. (Only wired
// up in quiescent mode.)
void LogReplica::on_slot_activity(int slot) {
  if (sent_[static_cast<std::size_t>(slot)] ||
      decided_[static_cast<std::size_t>(slot)].has_value()) {
    return;
  }
  propose_into(slot, pick_pending());
  propose_next();  // the cursor may now skip past this slot
}

void LogReplica::propose_next() {
  // Propose slot k once slot k - pipeline_depth has decided, i.e. keep at
  // most pipeline_depth consecutive slots in flight. With depth 1 this is
  // the classic "wait for the previous decision" rule.
  while (next_proposal_slot_ < cfg_.capacity) {
    const int k = next_proposal_slot_;
    if (sent_[static_cast<std::size_t>(k)] ||
        decided_[static_cast<std::size_t>(k)].has_value()) {
      ++next_proposal_slot_;  // joined via activity, or decided without us
      continue;
    }
    const int gate = k - cfg_.pipeline_depth;
    if (gate >= 0 && !decided_[static_cast<std::size_t>(gate)].has_value())
      break;

    const consensus::Value choice = pick_pending();
    // A quiescent replica with nothing to say leaves the slot dormant
    // instead of burning it on a no-op.
    if (choice == kNoOpCommand && cfg_.quiescent) break;

    propose_into(k, choice);
    ++next_proposal_slot_;
  }
}

void LogReplica::on_slot_decided(int slot, const consensus::Decision& d) {
  auto& cell = decided_[static_cast<std::size_t>(slot)];
  if (cell.has_value()) return;
  cell = d;

  // Our proposal for this slot is no longer in flight (whether it won or
  // lost); a losing command stays in pending_ and gets a later slot.
  const consensus::Value ours = proposed_[static_cast<std::size_t>(slot)];
  if (ours != kNoOpCommand) {
    auto it = in_flight_.find(ours);
    if (it != in_flight_.end()) in_flight_.erase(it);
  }

  // Retire the decided command from our queue if we were the origin. Not
  // necessarily the front: with pipelining, a later-proposed command can
  // decide first.
  if (d.value != kNoOpCommand) {
    auto it = std::find(pending_.begin(), pending_.end(), d.value);
    if (it != pending_.end()) pending_.erase(it);
  }

  drain_applied();
  propose_next();
}

void LogReplica::drain_applied() {
  // Apply strictly in slot order; decisions can be learned out of order
  // when a later slot's reliable broadcast overtakes an earlier one.
  while (applied_upto_ < cfg_.capacity &&
         decided_[static_cast<std::size_t>(applied_upto_)].has_value()) {
    const consensus::Decision& dd =
        *decided_[static_cast<std::size_t>(applied_upto_)];
    if (dd.value != kNoOpCommand) {
      Entry e{dd.value, applied_upto_, dd.at};
      log_.push_back(e);
      if (apply_) apply_(e);
    }
    ++applied_upto_;
  }
}

void LogReplica::compact(int upto_slot) {
  const int upto = std::min(upto_slot, applied_upto_);
  if (upto <= compacted_upto_) return;
  log_.erase(std::remove_if(log_.begin(), log_.end(),
                            [upto](const Entry& e) { return e.slot < upto; }),
             log_.end());
  compacted_upto_ = upto;
}

void LogReplica::install_snapshot(int upto_slot) {
  const int upto = std::min(upto_slot, cfg_.capacity);
  if (upto <= applied_upto_) return;

  // Mark the covered slots decided (synthetic no-ops) so the apply loop
  // and the proposal gate both step over them. A real decision arriving
  // later for one of these slots hits the has_value() guard and is
  // ignored — the snapshot already reflects it.
  for (int k = applied_upto_; k < upto; ++k) {
    auto& cell = decided_[static_cast<std::size_t>(k)];
    if (!cell.has_value()) cell = consensus::Decision{kNoOpCommand, 0, 0};
    const consensus::Value ours = proposed_[static_cast<std::size_t>(k)];
    if (ours != kNoOpCommand) {
      auto it = in_flight_.find(ours);
      if (it != in_flight_.end()) in_flight_.erase(it);
    }
  }
  applied_upto_ = upto;
  next_proposal_slot_ = std::max(next_proposal_slot_, upto);
  compact(upto);
  drain_applied();
  propose_next();
}

}  // namespace ecfd::core
