#include "core/replicated_log.hpp"

#include <algorithm>
#include <cassert>

namespace ecfd::core {

LogReplica::LogReplica(ProcessHost& host, const EcfdOracle* fd)
    : LogReplica(host, fd, Config{}) {}

LogReplica::LogReplica(ProcessHost& host, const EcfdOracle* fd, Config cfg)
    : cfg_(cfg), decided_(static_cast<std::size_t>(cfg.capacity)) {
  assert(cfg_.capacity > 0);
  slots_.reserve(static_cast<std::size_t>(cfg_.capacity));
  ConsensusC::Config slot_cfg = cfg_.consensus;
  slot_cfg.deprioritized = kNoOpCommand;  // real commands win ties
  for (int k = 0; k < cfg_.capacity; ++k) {
    auto& rb = host.emplace<broadcast::ReliableBroadcast>(
        cfg_.protocol_base + 2 * k + 1);
    auto& cons = host.emplace<ConsensusC>(fd, &rb, slot_cfg,
                                          cfg_.protocol_base + 2 * k);
    cons.set_on_decide([this, k](const consensus::Decision& d) {
      on_slot_decided(k, d);
    });
    slots_.push_back(&cons);
  }
  // Kick slot 0 so the pipeline runs even if nothing is ever submitted
  // (other replicas' slots need our participation).
  propose_next();
}

void LogReplica::submit(consensus::Value command) {
  assert(command != kNoOpCommand);
  pending_.push_back(command);
}

void LogReplica::propose_next() {
  while (next_proposal_slot_ < cfg_.capacity &&
         (next_proposal_slot_ == 0 ||
          decided_[static_cast<std::size_t>(next_proposal_slot_ - 1)]
              .has_value())) {
    const consensus::Value v =
        pending_.empty() ? kNoOpCommand : pending_.front();
    slots_[static_cast<std::size_t>(next_proposal_slot_)]->propose(v);
    ++next_proposal_slot_;
  }
}

void LogReplica::on_slot_decided(int slot, const consensus::Decision& d) {
  auto& cell = decided_[static_cast<std::size_t>(slot)];
  if (cell.has_value()) return;
  cell = d;

  // Retire our oldest pending command if it is the one that won.
  if (!pending_.empty() && d.value == pending_.front()) {
    pending_.erase(pending_.begin());
  }

  // Apply strictly in slot order; decisions can be learned out of order
  // when a later slot's reliable broadcast overtakes an earlier one.
  while (applied_upto_ < cfg_.capacity &&
         decided_[static_cast<std::size_t>(applied_upto_)].has_value()) {
    const consensus::Decision& dd =
        *decided_[static_cast<std::size_t>(applied_upto_)];
    if (dd.value != kNoOpCommand) {
      Entry e{dd.value, applied_upto_, dd.at};
      log_.push_back(e);
      if (apply_) apply_(e);
    }
    ++applied_upto_;
  }

  propose_next();
}

}  // namespace ecfd::core
