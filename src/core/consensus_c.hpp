#pragma once

#include <map>
#include <optional>
#include <vector>

#include "broadcast/reliable_broadcast.hpp"
#include "consensus/bodies.hpp"
#include "consensus/consensus.hpp"
#include "core/ecfd_oracle.hpp"
#include "net/protocol_ids.hpp"

/// \file consensus_c.hpp
/// The paper's main algorithm: solving Uniform Consensus with a ◇C failure
/// detector (Section 5.2, Figs. 3 and 4; Theorem 2). Requires a majority
/// of correct processes (f < n/2) and reliable links.
///
/// The algorithm proceeds in asynchronous rounds of five phases:
///
///   Phase 0 — every process determines its coordinator for the round: it
///     becomes coordinator itself when D.trusted_p = p (announcing this to
///     everyone with a `coordinator` message); it becomes a participant of
///     c when it receives c's announcement for this round. An announcement
///     for a later round makes the process jump to that round (footnote 2).
///   Phase 1 — every process sends its timestamped estimate to its
///     coordinator.
///   Phase 2 — a coordinator gathers replies until it has a majority AND a
///     reply from every process it does not suspect (the ◇C completeness
///     makes this wait non-blocking). With a majority of *real* estimates
///     it picks one with the largest timestamp and proposes it to all;
///     otherwise it sends a null proposition.
///   Phase 3 — every process waits for (a) a non-null proposition from any
///     coordinator: adopt it, timestamp it with the round, and ack; or (b)
///     a null proposition from its own coordinator: move on; or (c) its
///     coordinator becoming suspected: nack.
///   Phase 4 — the (at most one, Lemma 1) coordinator that proposed
///     non-null gathers ack/nacks under the same majority-plus-unsuspected
///     rule; with a majority of *acks* — even alongside nacks, which is the
///     accuracy advantage over first-majority waiting — it R-broadcasts
///     `decide` with its proposition.
///
///   Side tasks (Fig. 4): a process answers any *other* coordinator of the
///   current or a previous round with a null estimate; it nacks any late
///   non-null proposition; and it decides upon R-delivering a decision.
///
/// Because the coordinator comes from the failure detector's leader output
/// rather than rotation, the algorithm decides one round after the ◇C
/// detector stabilizes, versus up to n extra rounds for rotating
/// coordinators (Theorem 3).
///
/// The waiting-rule policy and the merged-phase variant discussed in
/// Section 5.4 are exposed as configuration, which is also how the
/// Mostefaoui-Raynal-style Omega baseline and the E6 ablation are built.

namespace ecfd::core {

/// How Phases 2 and 4 decide they have waited long enough.
enum class ReplyPolicy {
  /// The paper's rule: a majority of replies AND a reply from every
  /// process the ◇C detector does not suspect.
  kMajorityPlusUnsuspected,
  /// Chandra-Toueg's rule: exactly the first majority of replies. One
  /// negative reply among them blocks the round.
  kFirstMajority,
  /// Mostefaoui-Raynal's rule: the first n-f replies (f from config).
  kNMinusF,
};

class ConsensusC final : public consensus::ConsensusProtocol {
 public:
  struct Config {
    ReplyPolicy policy{ReplyPolicy::kMajorityPlusUnsuspected};
    /// For kNMinusF: upper bound on failures; <0 means ceil(n/2)-1 (i.e.
    /// only "a majority is correct" is known).
    int f{-1};
    /// Merge Phases 0 and 1 (Section 5.4): no coordinator announcements;
    /// every process sends its estimate to its leader and a null estimate
    /// to everyone else. Trades Θ(n) messages/round for one fewer phase
    /// (and is the message pattern of the MR Omega baseline).
    bool merged_phase01{false};
    /// How often FD-dependent waits are re-evaluated.
    DurUs poll_period{msec(2)};
    /// Stop without deciding after this many rounds (0 = unlimited); used
    /// by experiments that demonstrate blocking behaviours.
    int max_rounds{0};
    /// When set, a coordinator choosing among largest-timestamp estimates
    /// prefers any other value over this one. A legal refinement of the
    /// Fig. 3 selection rule (which only asks for *an* estimate with the
    /// largest timestamp); replicated logs use it so filler no-ops lose
    /// ties against real commands.
    std::optional<consensus::Value> deprioritized{};
  };

  /// \p fd: local ◇C module; \p rb: reliable-broadcast instance hosted on
  /// the same process. Neither is owned. \p pid allows embedding the engine
  /// under a different protocol id (see consensus/mr_omega.hpp).
  ConsensusC(Env& env, const EcfdOracle* fd, broadcast::ReliableBroadcast* rb);
  ConsensusC(Env& env, const EcfdOracle* fd, broadcast::ReliableBroadcast* rb,
             Config cfg, ProtocolId pid = protocol_ids::kConsensusC);

  void start() override;
  void propose(consensus::Value v) override;
  void on_message(const Message& m) override;

  /// Invoked once, on the first message that arrives before this process
  /// has proposed. Lets an embedding that keeps instances dormant until
  /// needed (a quiescent replicated log) join in as soon as some other
  /// replica starts the instance; the callback may call propose()
  /// directly — buffered messages are replayed afterwards.
  void set_on_wakeup(std::function<void()> fn) { on_wakeup_ = std::move(fn); }

  [[nodiscard]] int current_round() const override { return round_; }
  /// True when the round cap stopped the protocol.
  [[nodiscard]] bool gave_up() const { return gave_up_; }
  /// Phase within the current round (diagnostics).
  [[nodiscard]] int current_phase() const { return phase_; }
  /// Coordinator this process follows in the current round (diagnostics).
  [[nodiscard]] ProcessId current_coordinator() const { return coordinator_; }

 private:
  using Value = consensus::Value;

  enum MsgType {
    kCoordinator = 1,
    kEstimate = 2,
    kNullEstimate = 3,
    kPropose = 4,
    kNullPropose = 5,
    kAck = 6,
    kNack = 7,
  };

  // Message bodies are the shared consensus wire shapes (consensus/bodies.hpp).
  using EstimateBody = consensus::EstimateBody;
  using ProposeBody = consensus::ProposeBody;
  using RoundOnly = consensus::RoundOnly;
  using DecideBody = consensus::DecideBody;

  /// Per-round reply bookkeeping for a coordinator.
  struct EstimateTally {
    int total{0};
    int real{0};
    Value best{};
    int best_ts{-1};
    ProcessSet responders;
  };
  struct AckTally {
    int acks{0};
    int nacks{0};
    ProcessSet responders;
  };
  struct ProposalSeen {
    ProcessId from{kNoProcess};
    bool non_null{false};
    Value value{};
  };

  // --- helpers --------------------------------------------------------
  [[nodiscard]] int majority() const { return env_.n() / 2 + 1; }
  [[nodiscard]] int wait_quorum() const;
  [[nodiscard]] bool everyone_accounted(const ProcessSet& responders) const;
  [[nodiscard]] bool wait_satisfied(int total,
                                    const ProcessSet& responders) const;

  void on_rb_deliver(const broadcast::RbEnvelope& e);
  void arm_poll();
  void poll();
  void step();
  bool step_once();  ///< returns true when a transition fired
  void enter_round(int r);
  void become_coordinator();
  void become_participant(ProcessId c);
  void send_own_estimate();
  void answer_late_coordinator(ProcessId c, int round);
  void record_estimate(int round, ProcessId from, bool real, Value v, int ts);
  void begin_round_one();
  void finish_phase2();
  void finish_phase4(const AckTally& tally);
  void halt() { halted_ = true; }

  Config cfg_;
  const EcfdOracle* fd_;
  broadcast::ReliableBroadcast* rb_;

  bool proposed_{false};
  bool started_{false};
  bool halted_{false};
  bool gave_up_{false};

  Value estimate_{};
  int ts_{0};

  int round_{0};   ///< 0 until propose(); rounds are 1-based
  int phase_{0};
  ProcessId coordinator_{kNoProcess};
  bool is_coordinator_{false};
  bool sent_non_null_{false};

  std::map<int, EstimateTally> estimates_;
  std::map<int, AckTally> acks_;
  std::map<int, std::vector<ProcessId>> announcements_;
  std::map<int, std::vector<ProposalSeen>> proposals_;
  std::map<int, ProcessSet> answered_;  ///< coordinators already replied to
  /// Per round: coordinators whose non-null proposition we ack/nacked.
  /// Guards against double replies when a proposition is both consumed in
  /// Phase 3 and swept by the round-advance nack pass.
  std::map<int, ProcessSet> replied_prop_;
  /// Messages that arrived before this process proposed. Coordinators
  /// announce a round only once, so dropping an early announcement would
  /// stall the whole round; instead it is replayed on propose().
  std::vector<Message> pre_propose_buffer_;
  std::function<void()> on_wakeup_;
  bool wakeup_fired_{false};
  bool poll_armed_{false};
};

}  // namespace ecfd::core
