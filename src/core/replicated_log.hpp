#pragma once

#include <cassert>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "broadcast/reliable_broadcast.hpp"
#include "core/consensus_c.hpp"
#include "net/process_host.hpp"

/// \file replicated_log.hpp
/// State-machine replication on repeated instances of the paper's
/// ◇C-consensus: the canonical application that motivates consensus
/// (Section 1.2). Each log slot is one independent instance of the
/// Figs. 3-4 algorithm; all replicas apply the slot decisions in slot
/// order, so their logs are identical.
///
/// Liveness requires every replica to participate in every slot (a
/// coordinator waits for a reply from every unsuspected process), so a
/// replica with nothing to say proposes a no-op — the classic Multi-Paxos
/// idiom. No-ops consume a slot but are not applied.
///
/// Usage: construct one LogReplica per process (same capacity and
/// protocol_base everywhere), submit() commands at any time, and read the
/// applied log. Slots are proposed strictly in order. With the default
/// pipeline_depth of 1, slot k+1 is proposed once this replica has
/// learned slot k's decision; deeper pipelines keep up to that many
/// consecutive slots in flight, tracking which pending commands are
/// already proposed so the same command is never racing itself in two
/// slots.
///
/// The ctor is templated over the host because the same replica runs on
/// all three Env backends (sim ProcessHost, sharded ThreadHost, UDP
/// SocketEnv) — each exposes `emplace<P>(args...)` for protocol
/// installation.

namespace ecfd::core {

/// Slot filler proposed when a replica has no pending command.
inline constexpr consensus::Value kNoOpCommand =
    std::numeric_limits<consensus::Value>::min();

class LogReplica {
 public:
  /// Decided, applied log entry (no-ops excluded).
  struct Entry {
    consensus::Value command{};
    int slot{};
    TimeUs decided_at{};
  };

  using ApplyFn = std::function<void(const Entry&)>;

  struct Config {
    /// Number of slots to pre-provision. Consensus instances must exist
    /// on every host before their messages arrive, so the capacity is
    /// fixed up front.
    int capacity{16};
    /// First protocol id of the block used by the instances; slot k
    /// consumes ids base+2k (consensus) and base+2k+1 (broadcast). Must
    /// not collide with other protocols and must match across processes.
    ProtocolId protocol_base{1000};
    /// Max consecutive slots proposed ahead of the decided prefix.
    int pipeline_depth{1};
    /// When false (the classic mode), every replica proposes a no-op the
    /// moment a slot's gate opens, so the pipeline free-runs and the log
    /// consumes slots even while idle — fine for unbounded demos, fatal
    /// for a bounded service log. When true, a replica proposes into a
    /// slot only when it has a pending command or the slot has shown
    /// foreign traffic (another replica proposed first): an idle cluster
    /// consumes no slots at all. A replica that submits while not the
    /// FD leader can leave its slot parked until the leader next
    /// submits — services that redirect writes to the leader (ecfd-kv)
    /// make that window both rare and self-healing, because the retried
    /// client lands on the leader and its submission unparks the slot.
    bool quiescent{false};
    ConsensusC::Config consensus;
  };

  /// Installs the instances on \p host (anything with
  /// `emplace<P>(args...)` constructing P with (Env&, args...)). \p fd is
  /// the host's ◇C module (not owned; must outlive the host).
  template <class Host>
  LogReplica(Host& host, const EcfdOracle* fd) : LogReplica(host, fd, Config{}) {}

  template <class Host>
  LogReplica(Host& host, const EcfdOracle* fd, Config cfg)
      : cfg_(cfg),
        decided_(static_cast<std::size_t>(cfg.capacity)),
        proposed_(static_cast<std::size_t>(cfg.capacity), kNoOpCommand),
        sent_(static_cast<std::size_t>(cfg.capacity), 0) {
    assert(cfg_.capacity > 0);
    assert(cfg_.pipeline_depth > 0);
    slots_.reserve(static_cast<std::size_t>(cfg_.capacity));
    ConsensusC::Config slot_cfg = cfg_.consensus;
    slot_cfg.deprioritized = kNoOpCommand;  // real commands win ties
    for (int k = 0; k < cfg_.capacity; ++k) {
      auto& rb = host.template emplace<broadcast::ReliableBroadcast>(
          cfg_.protocol_base + 2 * k + 1);
      auto& cons = host.template emplace<ConsensusC>(
          fd, &rb, slot_cfg, cfg_.protocol_base + 2 * k);
      cons.set_on_decide([this, k](const consensus::Decision& d) {
        on_slot_decided(k, d);
      });
      if (cfg_.quiescent) {
        cons.set_on_wakeup([this, k]() { on_slot_activity(k); });
      }
      slots_.push_back(&cons);
    }
    // Kick slot 0 so the pipeline runs even if nothing is ever submitted
    // (other replicas' slots need our participation). Quiescent logs skip
    // this: slots start on first submit or first foreign traffic.
    propose_next();
  }

  LogReplica(const LogReplica&) = delete;
  LogReplica& operator=(const LogReplica&) = delete;

  /// Queues \p command (!= kNoOpCommand) for replication.
  void submit(consensus::Value command);

  /// Callback invoked, in slot order, for every applied entry.
  void set_apply(ApplyFn fn) { apply_ = std::move(fn); }

  /// The applied log so far (slot order, no-ops filtered out, compacted
  /// prefix dropped).
  [[nodiscard]] const std::vector<Entry>& log() const { return log_; }

  /// Slots whose decision this replica has learned and applied.
  [[nodiscard]] int applied_slots() const { return applied_upto_; }

  /// Commands submitted here and not yet decided anywhere.
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

  [[nodiscard]] int capacity() const { return cfg_.capacity; }

  /// True when every slot has been consumed: nothing further can commit.
  [[nodiscard]] bool exhausted() const {
    return applied_upto_ >= cfg_.capacity;
  }

  /// Drops applied log entries for slots < \p upto_slot (the caller holds
  /// a snapshot of the state machine at that point). Clamped to the
  /// applied prefix; monotone.
  void compact(int upto_slot);

  /// Slots below this are compacted away; log() starts here.
  [[nodiscard]] int compacted_upto() const { return compacted_upto_; }

  /// Fast-forwards a lagging replica past slots [0, upto_slot): the
  /// caller has installed a state-machine snapshot covering them, so they
  /// are marked decided-and-applied without running apply callbacks.
  /// Decisions that later arrive for those slots are ignored. No-op when
  /// upto_slot <= applied_slots().
  void install_snapshot(int upto_slot);

 private:
  void on_slot_decided(int slot, const consensus::Decision& d);
  void on_slot_activity(int slot);
  void propose_into(int slot, consensus::Value v);
  [[nodiscard]] consensus::Value pick_pending() const;
  void propose_next();
  void drain_applied();

  Config cfg_;
  std::vector<ConsensusC*> slots_;  // owned by the host
  std::vector<std::optional<consensus::Decision>> decided_;
  std::vector<consensus::Value> proposed_;  // per-slot proposed value
  std::vector<char> sent_;                  // proposed into this slot yet?
  std::vector<consensus::Value> pending_;
  std::multiset<consensus::Value> in_flight_;  // proposed, not yet decided
  std::vector<Entry> log_;
  int next_proposal_slot_{0};
  int applied_upto_{0};
  int compacted_upto_{0};
  ApplyFn apply_;
};

}  // namespace ecfd::core
