#pragma once

#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "broadcast/reliable_broadcast.hpp"
#include "core/consensus_c.hpp"
#include "net/process_host.hpp"

/// \file replicated_log.hpp
/// State-machine replication on repeated instances of the paper's
/// ◇C-consensus: the canonical application that motivates consensus
/// (Section 1.2). Each log slot is one independent instance of the
/// Figs. 3-4 algorithm; all replicas apply the slot decisions in slot
/// order, so their logs are identical.
///
/// Liveness requires every replica to participate in every slot (a
/// coordinator waits for a reply from every unsuspected process), so a
/// replica with nothing to say proposes a no-op — the classic Multi-Paxos
/// idiom. No-ops consume a slot but are not applied.
///
/// Usage: construct one LogReplica per process (same capacity and
/// protocol_base everywhere), submit() commands at any time, and read the
/// applied log. Slots are proposed strictly in order with pipeline depth
/// one: slot k+1 is proposed once this replica has learned slot k's
/// decision.

namespace ecfd::core {

/// Slot filler proposed when a replica has no pending command.
inline constexpr consensus::Value kNoOpCommand =
    std::numeric_limits<consensus::Value>::min();

class LogReplica {
 public:
  /// Decided, applied log entry (no-ops excluded).
  struct Entry {
    consensus::Value command{};
    int slot{};
    TimeUs decided_at{};
  };

  using ApplyFn = std::function<void(const Entry&)>;

  struct Config {
    /// Number of slots to pre-provision. Consensus instances must exist
    /// on every host before their messages arrive, so the capacity is
    /// fixed up front.
    int capacity{16};
    /// First protocol id of the block used by the instances; slot k
    /// consumes ids base+2k (consensus) and base+2k+1 (broadcast). Must
    /// not collide with other protocols and must match across processes.
    ProtocolId protocol_base{1000};
    ConsensusC::Config consensus;
  };

  /// Installs the instances on \p host. \p fd is the host's ◇C module
  /// (not owned; must outlive the host).
  LogReplica(ProcessHost& host, const EcfdOracle* fd);
  LogReplica(ProcessHost& host, const EcfdOracle* fd, Config cfg);

  LogReplica(const LogReplica&) = delete;
  LogReplica& operator=(const LogReplica&) = delete;

  /// Queues \p command (!= kNoOpCommand) for replication.
  void submit(consensus::Value command);

  /// Callback invoked, in slot order, for every applied entry.
  void set_apply(ApplyFn fn) { apply_ = std::move(fn); }

  /// The applied log so far (slot order, no-ops filtered out).
  [[nodiscard]] const std::vector<Entry>& log() const { return log_; }

  /// Slots whose decision this replica has learned and applied.
  [[nodiscard]] int applied_slots() const { return applied_upto_; }

  /// Commands submitted here and not yet decided anywhere.
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

  [[nodiscard]] int capacity() const { return cfg_.capacity; }

 private:
  void on_slot_decided(int slot, const consensus::Decision& d);
  void propose_next();

  Config cfg_;
  std::vector<ConsensusC*> slots_;  // owned by the host
  std::vector<std::optional<consensus::Decision>> decided_;
  std::vector<consensus::Value> pending_;
  std::vector<Entry> log_;
  int next_proposal_slot_{0};
  int applied_upto_{0};
  ApplyFn apply_;
};

}  // namespace ecfd::core
