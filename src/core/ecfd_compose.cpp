#include "core/ecfd_compose.hpp"

// The Section 3 constructions are query-time adapters and fully defined in
// the header; this translation unit exists to hold their emitted symbols
// in the library.
