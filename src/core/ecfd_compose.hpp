#pragma once

#include "core/ecfd_oracle.hpp"
#include "fd/leader_candidate.hpp"
#include "fd/ring_fd.hpp"

/// \file ecfd_compose.hpp
/// The constructions of Section 3: building a ◇C detector from detectors
/// of the other classes. All of these are local (query-time) adapters —
/// they exchange no messages of their own, which is the point the paper
/// makes: ◇C costs no more than the detectors it is derived from.

namespace ecfd::core {

/// ◇C from Omega (the paper's trivial construction): trusted is the Omega
/// output; suspected is everyone except the trusted process. Correct but
/// with the worst possible accuracy — this is exactly what an algorithm
/// restricted to Omega information must assume, and is how we model the
/// Mostefaoui-Raynal baseline's knowledge.
class EcfdFromOmega final : public EcfdOracle {
 public:
  EcfdFromOmega(int n, ProcessId self, const LeaderOracle* omega)
      : n_(n), self_(self), omega_(omega) {}

  [[nodiscard]] ProcessSet suspected() const override {
    ProcessSet s = ProcessSet::full(n_);
    s.remove(omega_->trusted());
    s.remove(self_);
    return s;
  }
  [[nodiscard]] ProcessId trusted() const override {
    return omega_->trusted();
  }

 private:
  int n_;
  ProcessId self_;
  const LeaderOracle* omega_;
};

/// ◇C from ◇P: suspected is the ◇P set; trusted is the first process (in
/// the total order p0 < p1 < ...) not in it. Since ◇P sets converge to
/// exactly the crashed set at every correct process, the trusted outputs
/// converge to the first correct process.
class EcfdFromP final : public EcfdOracle {
 public:
  explicit EcfdFromP(const SuspectOracle* p) : p_(p) {}

  [[nodiscard]] ProcessSet suspected() const override {
    return p_->suspected();
  }
  [[nodiscard]] ProcessId trusted() const override {
    const ProcessSet s = p_->suspected();
    const ProcessId first = s.first_excluded();
    return first == kNoProcess ? 0 : first;
  }

 private:
  const SuspectOracle* p_;
};

/// ◇C from an arbitrary ◇S plus an Omega detector (e.g. the Chu-style
/// reduction of fd/omega_from_s.hpp run on top of the same ◇S).
///
/// The two ingredients are independent, so clause 3 of Definition 1
/// (eventually trusted ∉ suspected) does not follow automatically: this
/// adapter enforces it by erasing the currently trusted process from the
/// reported suspected set. That cannot break strong completeness, because
/// the Omega output eventually stabilizes on a *correct* process, after
/// which no crashed process is ever erased again.
class EcfdFromSAndOmega final : public EcfdOracle {
 public:
  EcfdFromSAndOmega(const SuspectOracle* s, const LeaderOracle* omega)
      : s_(s), omega_(omega) {}

  [[nodiscard]] ProcessSet suspected() const override {
    ProcessSet out = s_->suspected();
    out.remove(omega_->trusted());
    return out;
  }
  [[nodiscard]] ProcessId trusted() const override {
    return omega_->trusted();
  }

 private:
  const SuspectOracle* s_;
  const LeaderOracle* omega_;
};

/// ◇C from the ring detector at no additional cost (the paper's §3
/// highlight): the ring algorithm already guarantees that the first
/// non-suspected process in ring order converges, at every correct
/// process, to the same correct process — so its own two outputs already
/// satisfy Definition 1 and this adapter merely forwards them.
class EcfdFromRing final : public EcfdOracle {
 public:
  explicit EcfdFromRing(const fd::RingFd* ring) : ring_(ring) {}

  [[nodiscard]] ProcessSet suspected() const override {
    return ring_->suspected();
  }
  [[nodiscard]] ProcessId trusted() const override {
    return ring_->trusted();
  }

 private:
  const fd::RingFd* ring_;
};

}  // namespace ecfd::core
