#pragma once

#include "fd/oracle.hpp"

/// \file ecfd_oracle.hpp
/// The Eventually Consistent failure detector interface — the paper's
/// central definition.
///
/// Definition 1: a failure detector D belongs to class ◇C if it provides
/// every process p with a suspected set D.suspected_p and one trusted
/// process D.trusted_p such that
///   1. the sets satisfy strong completeness and eventual weak accuracy
///      (like ◇S),
///   2. the trusted processes satisfy Property 1 — there is a time after
///      which every correct process permanently trusts the same correct
///      process (like Omega), and
///   3. there is a time after which trusted_p ∉ suspected_p.
///
/// A ◇C detector is therefore a ◇S detector enhanced with an eventual
/// leader-election capability; unlike Omega alone it does not force all
/// processes but one to be suspected, so it can offer much better accuracy.

namespace ecfd::core {

/// Local ◇C module: both query interfaces at once.
class EcfdOracle : public SuspectOracle, public LeaderOracle {
 public:
  ~EcfdOracle() override;
};

}  // namespace ecfd::core
