#include "core/consensus_c.hpp"

#include <cassert>

namespace ecfd::core {

namespace {
/// RB tag for decision broadcasts.
constexpr int kDecideTag = 1;
}

ConsensusC::ConsensusC(Env& env, const EcfdOracle* fd,
                       broadcast::ReliableBroadcast* rb)
    : ConsensusC(env, fd, rb, Config{}) {}

ConsensusC::ConsensusC(Env& env, const EcfdOracle* fd,
                       broadcast::ReliableBroadcast* rb, Config cfg,
                       ProtocolId pid)
    : ConsensusProtocol(env, pid), cfg_(cfg), fd_(fd), rb_(rb) {
  rb_->set_deliver(
      [this](const broadcast::RbEnvelope& e) { on_rb_deliver(e); });
}

void ConsensusC::start() {
  started_ = true;
  // Classic instances poll from the very start (existing deterministic
  // schedules depend on it). Instances with a wakeup hook are dormant
  // until first proposed — their poll timer arms in begin_round_one(),
  // so a pre-provisioned log slot nobody touches costs nothing.
  if (!on_wakeup_) arm_poll();
  if (proposed_ && round_ == 0) begin_round_one();
}

void ConsensusC::arm_poll() {
  if (poll_armed_ || !started_) return;
  poll_armed_ = true;
  env_.set_timer(cfg_.poll_period, [this]() { poll(); });
}

void ConsensusC::propose(consensus::Value v) {
  if (proposed_) return;
  proposed_ = true;
  estimate_ = v;
  ts_ = 0;
  if (started_ && round_ == 0) begin_round_one();
}

void ConsensusC::begin_round_one() {
  arm_poll();
  enter_round(1);
  // Replay everything that arrived before we proposed (e.g. the round-1
  // coordinator announcement of a faster process).
  std::vector<Message> buffered;
  buffered.swap(pre_propose_buffer_);
  for (const Message& m : buffered) on_message(m);
  step();
}

void ConsensusC::poll() {
  if (halted_) return;
  step();
  if (!halted_) env_.set_timer(cfg_.poll_period, [this]() { poll(); });
}

int ConsensusC::wait_quorum() const {
  const int n = env_.n();
  switch (cfg_.policy) {
    case ReplyPolicy::kMajorityPlusUnsuspected:
    case ReplyPolicy::kFirstMajority:
      return majority();
    case ReplyPolicy::kNMinusF: {
      const int f = cfg_.f >= 0 ? cfg_.f : n - majority();
      return n - f;
    }
  }
  return majority();
}

bool ConsensusC::everyone_accounted(const ProcessSet& responders) const {
  const ProcessSet susp = fd_->suspected();
  for (ProcessId q = 0; q < env_.n(); ++q) {
    if (q == env_.self()) continue;
    if (!responders.contains(q) && !susp.contains(q)) return false;
  }
  return true;
}

bool ConsensusC::wait_satisfied(int total,
                                const ProcessSet& responders) const {
  if (total < wait_quorum()) return false;
  if (cfg_.policy == ReplyPolicy::kMajorityPlusUnsuspected) {
    // The paper's rule: also wait for a reply from every process the ◇C
    // detector does not suspect; strong completeness keeps this live.
    return everyone_accounted(responders);
  }
  return true;
}

void ConsensusC::enter_round(int r) {
  assert(r > round_);
  // Fig. 4, second task, sweep form: before leaving the rounds below r,
  // nack every non-null proposition of those rounds that we never
  // answered. (A coordinator that ends its round with a null proposition
  // skips Phase 3, so the other coordinator's proposition may be sitting
  // unanswered in the store — and that coordinator is waiting for our
  // reply in its Phase 4.)
  for (auto it = proposals_.begin();
       it != proposals_.end() && it->first < r; ++it) {
    for (const ProposalSeen& p : it->second) {
      if (!p.non_null) continue;
      auto [rit, inserted] =
          replied_prop_.try_emplace(it->first, ProcessSet(env_.n()));
      if (rit->second.contains(p.from)) continue;
      rit->second.add(p.from);
      env_.send(p.from, Message::make(protocol_id(), kNack, "cons_c.nack",
                                      RoundOnly{it->first}));
    }
  }

  // Per-round state of strictly earlier rounds can never be read again.
  estimates_.erase(estimates_.begin(), estimates_.lower_bound(r));
  acks_.erase(acks_.begin(), acks_.lower_bound(r));
  announcements_.erase(announcements_.begin(), announcements_.lower_bound(r));
  proposals_.erase(proposals_.begin(), proposals_.lower_bound(r));
  answered_.erase(answered_.begin(), answered_.lower_bound(r));
  replied_prop_.erase(replied_prop_.begin(), replied_prop_.lower_bound(r));

  round_ = r;
  env_.record(EventType::kRoundStart, r);
  phase_ = 0;
  coordinator_ = kNoProcess;
  is_coordinator_ = false;
  sent_non_null_ = false;

  if (cfg_.max_rounds > 0 && round_ > cfg_.max_rounds) {
    gave_up_ = true;
    halt();
  }
}

void ConsensusC::record_estimate(int round, ProcessId from, bool real,
                                 Value v, int ts) {
  auto [it, inserted] = estimates_.try_emplace(round);
  EstimateTally& t = it->second;
  if (inserted) t.responders = ProcessSet(env_.n());
  if (t.responders.contains(from)) return;  // duplicate reply
  t.responders.add(from);
  ++t.total;
  if (real) {
    ++t.real;
    bool better = ts > t.best_ts;
    if (!better && ts == t.best_ts && cfg_.deprioritized.has_value() &&
        t.best == *cfg_.deprioritized && v != *cfg_.deprioritized) {
      better = true;  // real command beats the filler on a timestamp tie
    }
    if (better) {
      t.best_ts = ts;
      t.best = v;
    }
  }
}

void ConsensusC::answer_late_coordinator(ProcessId c, int round) {
  auto [it, inserted] = answered_.try_emplace(round, ProcessSet(env_.n()));
  if (it->second.contains(c)) return;
  it->second.add(c);
  env_.send(c, Message::make(protocol_id(), kNullEstimate, "cons_c.null_est",
                             EstimateBody{round, 0, 0}));
}

void ConsensusC::send_own_estimate() {
  // The coordinator's own estimate enters its tally directly: the paper
  // counts no self-messages.
  record_estimate(round_, env_.self(), /*real=*/true, estimate_, ts_);
}

void ConsensusC::become_coordinator() {
  coordinator_ = env_.self();
  is_coordinator_ = true;
  env_.trace("cons_c.coordinator", "r=" + std::to_string(round_));
  if (!cfg_.merged_phase01) {
    env_.broadcast(Message::make(protocol_id(), kCoordinator, "cons_c.coord",
                                 RoundOnly{round_}));
  } else {
    // Merged Phases 0+1: no announcement; instead everyone scatters null
    // estimates so any coordinator can gather a full round of replies.
    env_.broadcast(Message::make(protocol_id(), kNullEstimate,
                                 "cons_c.null_est",
                                 EstimateBody{round_, 0, 0}));
  }
  // Null-answer any other coordinator already announced for this round.
  auto ann = announcements_.find(round_);
  if (ann != announcements_.end()) {
    for (ProcessId other : ann->second) {
      if (other != env_.self()) answer_late_coordinator(other, round_);
    }
  }
  send_own_estimate();
  phase_ = 2;
}

void ConsensusC::become_participant(ProcessId c) {
  coordinator_ = c;
  is_coordinator_ = false;
  // Phase 1: the (single) real estimate of this round goes to c.
  {
    auto [it, inserted] = answered_.try_emplace(round_, ProcessSet(env_.n()));
    it->second.add(c);
  }
  env_.send(c, Message::make(protocol_id(), kEstimate, "cons_c.estimate",
                             EstimateBody{round_, estimate_, ts_}));
  if (cfg_.merged_phase01) {
    for (ProcessId q = 0; q < env_.n(); ++q) {
      if (q != env_.self() && q != c) {
        env_.send(q, Message::make(protocol_id(), kNullEstimate,
                                   "cons_c.null_est",
                                   EstimateBody{round_, 0, 0}));
      }
    }
  } else {
    // Null-answer the other announced coordinators of this round.
    auto ann = announcements_.find(round_);
    if (ann != announcements_.end()) {
      for (ProcessId other : ann->second) {
        if (other != c) answer_late_coordinator(other, round_);
      }
    }
  }
  phase_ = 3;
}

void ConsensusC::finish_phase2() {
  const EstimateTally& t = estimates_[round_];
  if (t.real >= majority()) {
    // Lemma 1: at most one coordinator per round can get here.
    estimate_ = t.best;
    ts_ = round_;
    sent_non_null_ = true;
    env_.broadcast(Message::make(protocol_id(), kPropose, "cons_c.propose",
                                 ProposeBody{round_, estimate_}));
    // The coordinator adopts its own proposition and acks it.
    auto [it, inserted] = acks_.try_emplace(round_);
    if (inserted) it->second.responders = ProcessSet(env_.n());
    it->second.responders.add(env_.self());
    ++it->second.acks;
    phase_ = 4;
  } else {
    env_.broadcast(Message::make(protocol_id(), kNullPropose,
                                 "cons_c.null_propose", RoundOnly{round_}));
    // Its own null proposition releases the coordinator from Phase 3.
    enter_round(round_ + 1);
  }
}

void ConsensusC::finish_phase4(const AckTally& tally) {
  if (tally.acks >= majority()) {
    // A majority adopted the proposition: lock it in via Reliable
    // Broadcast. Nacks alongside do not matter — the paper's improvement
    // over first-majority waiting.
    rb_->r_broadcast(kDecideTag, DecideBody{round_, estimate_});
  }
  enter_round(round_ + 1);
}

bool ConsensusC::step_once() {
  switch (phase_) {
    case 0: {
      if (fd_->trusted() == env_.self()) {
        become_coordinator();
        return true;
      }
      if (cfg_.merged_phase01) {
        become_participant(fd_->trusted());
        return true;
      }
      // Adopt the latest announced round >= ours (footnote 2).
      if (!announcements_.empty()) {
        auto last = std::prev(announcements_.end());
        if (last->first >= round_ && !last->second.empty()) {
          const int target_round = last->first;
          const ProcessId c = last->second.front();
          if (target_round > round_) {
            // Coordinators of the rounds we skip get null estimates.
            for (auto& [rk, coords] : announcements_) {
              if (rk >= target_round) break;
              for (ProcessId other : coords) {
                answer_late_coordinator(other, rk);
              }
            }
            enter_round(target_round);
            if (halted_) return false;
          }
          become_participant(c);
          return true;
        }
      }
      return false;  // keep waiting in Phase 0
    }
    case 2: {
      auto it = estimates_.find(round_);
      if (it == estimates_.end()) return false;
      if (!wait_satisfied(it->second.total, it->second.responders)) {
        return false;
      }
      finish_phase2();
      return true;
    }
    case 3: {
      auto it = proposals_.find(round_);
      if (it != proposals_.end()) {
        for (const ProposalSeen& p : it->second) {
          if (p.non_null) {
            // Adopt and ack (to whichever coordinator proposed it).
            estimate_ = p.value;
            ts_ = round_;
            auto [rit, inserted] =
                replied_prop_.try_emplace(round_, ProcessSet(env_.n()));
            rit->second.add(p.from);
            env_.send(p.from, Message::make(protocol_id(), kAck, "cons_c.ack",
                                            RoundOnly{round_}));
            enter_round(round_ + 1);
            return !halted_;
          }
        }
        for (const ProposalSeen& p : it->second) {
          if (!p.non_null && p.from == coordinator_) {
            enter_round(round_ + 1);
            return !halted_;
          }
        }
      }
      // In the merged-phase variant there are no coordinator
      // announcements: a participant picked fd->trusted() blindly, so it
      // must also stop waiting when its leader output moves away from that
      // choice (the chosen process may never have considered itself
      // coordinator, and an accurate detector will never suspect it).
      const bool leader_moved =
          cfg_.merged_phase01 && fd_->trusted() != coordinator_;
      if (coordinator_ != env_.self() &&
          (leader_moved || fd_->suspected().contains(coordinator_))) {
        env_.send(coordinator_, Message::make(protocol_id(), kNack,
                                              "cons_c.nack",
                                              RoundOnly{round_}));
        enter_round(round_ + 1);
        return !halted_;
      }
      return false;
    }
    case 4: {
      auto it = acks_.find(round_);
      if (it == acks_.end()) return false;
      const AckTally& t = it->second;
      if (!wait_satisfied(t.acks + t.nacks, t.responders)) return false;
      finish_phase4(t);
      return true;
    }
    default:
      return false;
  }
}

void ConsensusC::step() {
  while (!halted_ && round_ > 0 && step_once()) {
  }
}

void ConsensusC::on_message(const Message& m) {
  if (halted_) return;
  if (round_ == 0) {
    pre_propose_buffer_.push_back(m);
    if (on_wakeup_ && !wakeup_fired_) {
      wakeup_fired_ = true;
      on_wakeup_();  // may propose() reentrantly; the buffer replays then
    }
    return;
  }
  switch (m.type) {
    case kCoordinator: {
      const int r = m.as<RoundOnly>().round;
      if (r < round_ || (r == round_ && phase_ > 0)) {
        // Fig. 4, first task: null estimate to any *other* coordinator of
        // the current or a previous round.
        if (!(r == round_ && m.src == coordinator_)) {
          answer_late_coordinator(m.src, r);
        }
      } else {
        announcements_[r].push_back(m.src);
        step();
      }
      break;
    }
    case kEstimate: {
      const auto& b = m.as<EstimateBody>();
      record_estimate(b.round, m.src, /*real=*/true, b.value, b.ts);
      step();
      break;
    }
    case kNullEstimate: {
      const auto& b = m.as<EstimateBody>();
      record_estimate(b.round, m.src, /*real=*/false, 0, 0);
      step();
      break;
    }
    case kPropose: {
      const auto& b = m.as<ProposeBody>();
      if (b.round < round_) {
        // Fig. 4, second task: nack a late non-null proposition.
        env_.send(m.src, Message::make(protocol_id(), kNack, "cons_c.nack",
                                       RoundOnly{b.round}));
      } else {
        proposals_[b.round].push_back(
            ProposalSeen{m.src, true, b.value});
        step();
      }
      break;
    }
    case kNullPropose: {
      const int r = m.as<RoundOnly>().round;
      if (r >= round_) {
        proposals_[r].push_back(ProposalSeen{m.src, false, 0});
        step();
      }
      break;
    }
    case kAck:
    case kNack: {
      const int r = m.as<RoundOnly>().round;
      auto [it, inserted] = acks_.try_emplace(r);
      if (inserted) it->second.responders = ProcessSet(env_.n());
      if (!it->second.responders.contains(m.src)) {
        it->second.responders.add(m.src);
        if (m.type == kAck) {
          ++it->second.acks;
        } else {
          ++it->second.nacks;
        }
        step();
      }
      break;
    }
    default:
      break;
  }
}

void ConsensusC::on_rb_deliver(const broadcast::RbEnvelope& e) {
  if (e.tag != kDecideTag) return;
  const auto& b = e.as<DecideBody>();
  decide(b.value, b.round);
  halt();
}

}  // namespace ecfd::core
