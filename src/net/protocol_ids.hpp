#pragma once

#include "net/message.hpp"

/// \file protocol_ids.hpp
/// Central allocation of protocol ids so that independently developed
/// protocol stacks never collide. A message's protocol id must resolve to
/// the same protocol class on every host.

namespace ecfd {

namespace protocol_ids {
inline constexpr ProtocolId kHeartbeatP = 1;     ///< fd/heartbeat_p
inline constexpr ProtocolId kRingFd = 2;         ///< fd/ring_fd
inline constexpr ProtocolId kLeaderCandidate = 3;///< fd/leader_candidate
inline constexpr ProtocolId kOmegaFromS = 4;     ///< fd/omega_from_s
inline constexpr ProtocolId kWToS = 5;           ///< fd/w_to_s
inline constexpr ProtocolId kCToP = 6;           ///< core/c_to_p (Fig. 2)
inline constexpr ProtocolId kReliableBroadcast = 7;  ///< broadcast/
inline constexpr ProtocolId kConsensusC = 8;     ///< core/consensus_c (Figs. 3-4)
inline constexpr ProtocolId kConsensusCT = 9;    ///< consensus/chandra_toueg
inline constexpr ProtocolId kConsensusMR = 10;   ///< consensus/mr_omega
inline constexpr ProtocolId kScriptedFd = 11;    ///< fd/scripted_fd (no messages)
inline constexpr ProtocolId kEfficientP = 12;    ///< fd/efficient_p (Sec. 4 piggyback)
inline constexpr ProtocolId kStableLeader = 13;  ///< fd/stable_leader ([2])
inline constexpr ProtocolId kHeartbeatCounter = 14;  ///< fd/heartbeat_counter ([1])
inline constexpr ProtocolId kKvService = 15;     ///< kv/service (client + peer msgs)
inline constexpr ProtocolId kKvBatchRb = 16;     ///< kv batch-body dissemination RB
inline constexpr ProtocolId kBenchNet = 17;      ///< bench/bench_net flood frames
inline constexpr ProtocolId kHierC = 18;         ///< fd/hier_c (two-level ◇C)
inline constexpr ProtocolId kSwim = 19;          ///< fd/swim (gossip membership)
inline constexpr ProtocolId kTesting = 100;      ///< unit-test scratch protocols
inline constexpr ProtocolId kCheckMutantFd = 101;        ///< check/mutants (broken FDs)
inline constexpr ProtocolId kCheckMutantConsensus = 102; ///< check/mutants (broken consensus)
}  // namespace protocol_ids

}  // namespace ecfd
