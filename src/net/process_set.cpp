#include "net/process_set.hpp"

#include <bit>
#include <cassert>
#include <sstream>

namespace ecfd {

ProcessSet ProcessSet::full(int n) {
  ProcessSet s(n);
  for (ProcessId p = 0; p < n; ++p) s.add(p);
  return s;
}

void ProcessSet::add(ProcessId p) {
  assert(p >= 0 && p < n_);
  bits_[static_cast<std::size_t>(p) / 64] |= (1ULL << (p % 64));
}

void ProcessSet::remove(ProcessId p) {
  assert(p >= 0 && p < n_);
  bits_[static_cast<std::size_t>(p) / 64] &= ~(1ULL << (p % 64));
}

bool ProcessSet::contains(ProcessId p) const {
  if (p < 0 || p >= n_) return false;
  return (bits_[static_cast<std::size_t>(p) / 64] >> (p % 64)) & 1ULL;
}

int ProcessSet::size() const {
  int c = 0;
  for (auto w : bits_) c += std::popcount(w);
  return c;
}

ProcessId ProcessSet::first() const {
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i] != 0) {
      const int p = static_cast<int>(i * 64) + std::countr_zero(bits_[i]);
      return p < n_ ? p : kNoProcess;
    }
  }
  return kNoProcess;
}

ProcessId ProcessSet::first_excluded() const {
  for (ProcessId p = 0; p < n_; ++p) {
    if (!contains(p)) return p;
  }
  return kNoProcess;
}

std::vector<ProcessId> ProcessSet::members() const {
  std::vector<ProcessId> out;
  out.reserve(static_cast<std::size_t>(size()));
  for (ProcessId p = 0; p < n_; ++p) {
    if (contains(p)) out.push_back(p);
  }
  return out;
}

ProcessSet& ProcessSet::operator|=(const ProcessSet& other) {
  assert(n_ == other.n_);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
  return *this;
}

ProcessSet& ProcessSet::operator&=(const ProcessSet& other) {
  assert(n_ == other.n_);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] &= other.bits_[i];
  return *this;
}

ProcessSet& ProcessSet::operator-=(const ProcessSet& other) {
  assert(n_ == other.n_);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] &= ~other.bits_[i];
  return *this;
}

std::string ProcessSet::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first_item = true;
  for (ProcessId p : members()) {
    if (!first_item) os << ',';
    os << 'p' << p;
    first_item = false;
  }
  os << '}';
  return os.str();
}

void ProcessSet::clear() {
  for (auto& w : bits_) w = 0;
}

}  // namespace ecfd
