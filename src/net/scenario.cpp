#include "net/scenario.hpp"

#include <cassert>

namespace ecfd {

std::unique_ptr<System> make_system(const ScenarioConfig& cfg) {
  auto sys = std::make_unique<System>(cfg.n, cfg.seed);

  switch (cfg.links) {
    case LinkKind::kReliable:
      sys->network().set_links([&cfg](ProcessId, ProcessId) {
        return std::make_unique<ReliableLink>(cfg.min_delay, cfg.max_delay);
      });
      break;
    case LinkKind::kPartialSync:
      sys->network().set_links([&cfg](ProcessId, ProcessId) {
        PartialSyncLink::Config lc;
        lc.gst = cfg.gst;
        lc.delta = cfg.delta;
        lc.pre_min = cfg.min_delay;
        lc.pre_max = cfg.pre_gst_max;
        return std::make_unique<PartialSyncLink>(lc);
      });
      break;
    case LinkKind::kFairLossy:
      sys->network().set_links([&cfg](ProcessId, ProcessId) {
        FairLossyLink::Config lc;
        lc.loss_p = cfg.loss_p;
        lc.force_deliver_every = cfg.force_deliver_every;
        lc.min_delay = cfg.min_delay;
        lc.max_delay = cfg.max_delay;
        return std::make_unique<FairLossyLink>(lc);
      });
      break;
    case LinkKind::kAsync:
      sys->network().set_links([&cfg](ProcessId, ProcessId) {
        return std::make_unique<AsyncLink>(cfg.mean_delay);
      });
      break;
    case LinkKind::kGeo: {
      const GeoSpec* spec =
          cfg.geo.valid() ? &cfg.geo : geo_preset(cfg.geo_preset_name);
      assert(spec != nullptr && "unknown geo preset");
      sys->network().set_links(geo_link_factory(*spec));
      break;
    }
  }

  for (const CrashPlan& c : cfg.crashes) {
    sys->crash_at(c.process, c.at);
  }
  return sys;
}

}  // namespace ecfd
