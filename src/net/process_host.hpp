#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/env.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

/// \file process_host.hpp
/// A simulated process: hosts a stack of protocol instances, implements Env
/// for them, and models crash-stop failures (Section 2.1 — a crashed
/// process permanently stops sending, receiving and executing timers).

namespace ecfd {

class ProcessHost final : public Env {
 public:
  ProcessHost(ProcessId id, int n, sim::Scheduler& sched, Network& network,
              sim::Trace& trace, Rng rng);

  /// Registers a protocol instance. The host owns it. Protocol ids must be
  /// unique within a host.
  void add_protocol(std::unique_ptr<Protocol> proto);

  /// Constructs and registers a protocol of type P with (Env&, args...).
  template <class P, class... Args>
  P& emplace(Args&&... args) {
    auto owned = std::make_unique<P>(*this, std::forward<Args>(args)...);
    P& ref = *owned;
    add_protocol(std::move(owned));
    return ref;
  }

  /// Starts every registered protocol (in registration order).
  void start();

  /// Crash-stop: irreversibly silences the process.
  void crash();
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] TimeUs crash_time() const { return crash_time_; }

  /// Delivers an inbound message to the protocol registered under
  /// m.protocol. Messages for crashed hosts or unknown protocols are
  /// dropped.
  void deliver(const Message& m);

  /// Protocol lookup (nullptr when absent); used by tests.
  [[nodiscard]] Protocol* protocol(ProtocolId id) const;

  // --- Env interface -------------------------------------------------
  [[nodiscard]] TimeUs now() const override { return sched_.now(); }
  void send(ProcessId dst, Message m) override;
  TimerId set_timer(DurUs delay, std::function<void()> fn) override;
  void cancel_timer(TimerId id) override;
  [[nodiscard]] ProcessId self() const override { return id_; }
  [[nodiscard]] int n() const override { return n_; }
  Rng& rng() override { return rng_; }
  void trace(const std::string& tag, const std::string& detail) override;

 private:
  ProcessId id_;
  int n_;
  sim::Scheduler& sched_;
  Network& network_;
  sim::Trace& trace_;
  Rng rng_;
  bool crashed_{false};
  TimeUs crash_time_{kTimeNever};
  std::vector<std::unique_ptr<Protocol>> owned_;
  std::unordered_map<ProtocolId, Protocol*> by_id_;
  std::unordered_set<TimerId> live_timers_;
};

}  // namespace ecfd
