#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/env.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

/// \file process_host.hpp
/// A simulated process: hosts a stack of protocol instances, implements Env
/// for them, and models crash-stop failures (Section 2.1 — a crashed
/// process permanently stops sending, receiving and executing timers).

namespace ecfd {

class ProcessHost final : public Env {
 public:
  ProcessHost(ProcessId id, int n, sim::Scheduler& sched, Network& network,
              sim::Trace& trace, Rng rng);

  /// Registers a protocol instance. The host owns it. Protocol ids must be
  /// unique within a host.
  void add_protocol(std::unique_ptr<Protocol> proto);

  /// Constructs and registers a protocol of type P with (Env&, args...).
  template <class P, class... Args>
  P& emplace(Args&&... args) {
    auto owned = std::make_unique<P>(*this, std::forward<Args>(args)...);
    P& ref = *owned;
    add_protocol(std::move(owned));
    return ref;
  }

  /// Starts every registered protocol (in registration order).
  void start();

  /// Crash-stop: irreversibly silences the process.
  void crash();
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] TimeUs crash_time() const { return crash_time_; }

  /// Delivers an inbound message to the protocol registered under
  /// m.protocol. Messages for crashed hosts or unknown protocols are
  /// dropped.
  void deliver(const Message& m);

  /// Protocol lookup (nullptr when absent); used by tests.
  [[nodiscard]] Protocol* protocol(ProtocolId id) const;

  // --- fault-model knobs (check/ scenario pack) ----------------------

  /// Gray failure: the process stays alive but runs slow. Timer delays are
  /// stretched by factor_milli/1000 (1000 = normal speed) and every
  /// outbound message sits an extra `send_extra` in the "NIC" before
  /// entering the network. set_gray(1000, 0) restores normal operation.
  /// Timers armed before the change keep their original deadline; the
  /// protocols' self-rearming timers pick the factor up on the next arm,
  /// which is exactly the creep a degraded-but-alive host exhibits.
  void set_gray(std::uint32_t factor_milli, DurUs send_extra);
  [[nodiscard]] bool gray() const {
    return gray_factor_milli_ != 1000 || gray_send_extra_ != 0;
  }

  /// Clock skew: the local clock reads true time + offset + drift, where
  /// drift accumulates at drift_ppm from the moment of the call. The total
  /// error is clamped to +-bound_us when bound_us > 0 — the scenario
  /// injector always passes the bound it declared to the monitors, so a
  /// well-formed schedule can never exceed it (bound_us == 0 leaves the
  /// skew unclamped; only mutation tests use that). Local-duration timer
  /// delays are drift-scaled: a fast clock fires its timers early.
  void set_clock_skew(std::int64_t offset_us, std::int32_t drift_ppm,
                      DurUs bound_us);
  void clear_clock_skew() { set_clock_skew(0, 0, 0); }

  /// Signed local-minus-true clock error right now (0 without skew).
  [[nodiscard]] std::int64_t clock_error() const;

  // --- Env interface -------------------------------------------------
  [[nodiscard]] TimeUs now() const override {
    return sched_.now() + clock_error();
  }
  void send(ProcessId dst, Message m) override;
  TimerId set_timer(DurUs delay, std::function<void()> fn) override;
  void cancel_timer(TimerId id) override;
  [[nodiscard]] ProcessId self() const override { return id_; }
  [[nodiscard]] int n() const override { return n_; }
  Rng& rng() override { return rng_; }
  void trace(const std::string& tag, const std::string& detail) override;

 private:
  ProcessId id_;
  int n_;
  sim::Scheduler& sched_;
  Network& network_;
  sim::Trace& trace_;
  Rng rng_;
  bool crashed_{false};
  TimeUs crash_time_{kTimeNever};
  std::uint32_t gray_factor_milli_{1000};
  DurUs gray_send_extra_{0};
  bool skew_active_{false};
  std::int64_t skew_offset_{0};
  std::int32_t skew_drift_ppm_{0};
  DurUs skew_bound_{0};
  TimeUs skew_since_{0};
  std::vector<std::unique_ptr<Protocol>> owned_;
  std::unordered_map<ProtocolId, Protocol*> by_id_;
  std::unordered_set<TimerId> live_timers_;
};

}  // namespace ecfd
