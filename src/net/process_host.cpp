#include "net/process_host.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ecfd {

ProcessHost::ProcessHost(ProcessId id, int n, sim::Scheduler& sched,
                         Network& network, sim::Trace& trace, Rng rng)
    : id_(id), n_(n), sched_(sched), network_(network), trace_(trace),
      rng_(rng) {}

void ProcessHost::add_protocol(std::unique_ptr<Protocol> proto) {
  assert(proto != nullptr);
  const ProtocolId pid = proto->protocol_id();
  assert(by_id_.find(pid) == by_id_.end() && "duplicate protocol id on host");
  by_id_.emplace(pid, proto.get());
  owned_.push_back(std::move(proto));
}

void ProcessHost::start() {
  for (auto& p : owned_) p->start();
}

void ProcessHost::crash() {
  if (crashed_) return;
  crashed_ = true;
  crash_time_ = sched_.now();
  for (TimerId t : live_timers_) sched_.cancel(t);
  live_timers_.clear();
  if (trace_.enabled()) trace_.emit(sched_.now(), id_, "crash", "");
  record(EventType::kCrash);
}

void ProcessHost::deliver(const Message& m) {
  if (crashed_) return;
  auto it = by_id_.find(m.protocol);
  if (it == by_id_.end()) return;  // no such protocol on this host
  record(EventType::kDeliver, m.src, m.protocol);
  it->second->on_message(m);
}

Protocol* ProcessHost::protocol(ProtocolId id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

void ProcessHost::set_gray(std::uint32_t factor_milli, DurUs send_extra) {
  if (crashed_) return;
  assert(factor_milli > 0);
  gray_factor_milli_ = factor_milli;
  gray_send_extra_ = send_extra;
}

void ProcessHost::set_clock_skew(std::int64_t offset_us,
                                 std::int32_t drift_ppm, DurUs bound_us) {
  if (crashed_) return;
  assert(drift_ppm > -1'000'000);
  skew_offset_ = offset_us;
  skew_drift_ppm_ = drift_ppm;
  skew_bound_ = bound_us;
  skew_since_ = sched_.now();
  skew_active_ = offset_us != 0 || drift_ppm != 0;
}

std::int64_t ProcessHost::clock_error() const {
  if (!skew_active_) return 0;
  const TimeUs t = sched_.now();
  std::int64_t e =
      skew_offset_ + skew_drift_ppm_ * (t - skew_since_) / 1'000'000;
  if (skew_bound_ > 0) e = std::clamp<std::int64_t>(e, -skew_bound_, skew_bound_);
  return e;
}

void ProcessHost::send(ProcessId dst, Message m) {
  if (crashed_) return;
  assert(dst >= 0 && dst < n_);
  m.src = id_;
  m.dst = dst;
  record(EventType::kSend, dst, m.protocol);
  if (gray_send_extra_ > 0) {
    // The gray NIC: the message leaves the protocol now but only enters
    // the network after the extra latency — unless the host crashed in
    // the meantime (a crash-stop host sends nothing after the crash).
    sched_.schedule_after(gray_send_extra_, [this, m] {
      if (!crashed_) network_.send(m);
    });
    return;
  }
  network_.send(m);
}

TimerId ProcessHost::set_timer(DurUs delay, std::function<void()> fn) {
  if (crashed_) return kInvalidTimer;
  if (gray_factor_milli_ != 1000) {
    delay = delay * static_cast<DurUs>(gray_factor_milli_) / 1000;
  }
  if (skew_active_ && skew_drift_ppm_ != 0) {
    // `delay` is a local-clock duration; convert to true time so a fast
    // local clock (positive drift) fires early and a slow one late.
    delay = delay * 1'000'000 / (1'000'000 + skew_drift_ppm_);
  }
  // The wrapper removes its own id from the live set when it fires; the
  // queue discloses the id it will assign, so the closure can carry it by
  // value instead of through a heap-allocated cell.
  const TimerId id = sched_.next_event_id();
  const sim::EventId got =
      sched_.schedule_after(delay, [this, id, fn = std::move(fn)]() {
        live_timers_.erase(id);
        if (!crashed_) fn();
      });
  assert(got == id && "scheduler id prediction out of sync");
  (void)got;
  live_timers_.insert(id);
  record(EventType::kTimerSet, -1, static_cast<std::int64_t>(id));
  return id;
}

void ProcessHost::cancel_timer(TimerId id) {
  if (id == kInvalidTimer) return;
  sched_.cancel(id);
  live_timers_.erase(id);
  record(EventType::kTimerCancel, -1, static_cast<std::int64_t>(id));
}

void ProcessHost::trace(const std::string& tag, const std::string& detail) {
  if (trace_.enabled()) trace_.emit(sched_.now(), id_, tag, detail);
  if (recording()) {
    // Cold path by contract: trace() callers already pay string building.
    record(EventType::kNote, -1, recorder()->intern(detail),
           recorder()->intern(tag));
  }
}

}  // namespace ecfd
