#include "net/network.hpp"

#include <cassert>
#include <string>

namespace ecfd {

Network::Network(sim::Scheduler& sched, int n, Rng rng,
                 sim::Counters& counters, sim::Trace& trace)
    : sched_(sched),
      n_(n),
      rng_(rng),
      counters_(counters),
      trace_(trace),
      links_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n)),
      blocked_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0) {
  assert(n > 0);
  // Default: reliable links with modest jitter.
  set_links([](ProcessId, ProcessId) {
    return std::make_unique<ReliableLink>(usec(200), msec(2));
  });
}

void Network::set_links(const LinkFactory& factory) {
  for (ProcessId s = 0; s < n_; ++s) {
    for (ProcessId d = 0; d < n_; ++d) {
      if (s != d) links_[idx(s, d)] = factory(s, d);
    }
  }
}

void Network::set_link(ProcessId src, ProcessId dst,
                       std::unique_ptr<LinkModel> link) {
  assert(src != dst);
  links_[idx(src, dst)] = std::move(link);
}

void Network::set_blocked(ProcessId src, ProcessId dst, bool blocked) {
  blocked_[idx(src, dst)] = blocked ? 1 : 0;
}

void Network::partition(const ProcessSet& group_a) {
  for (ProcessId s = 0; s < n_; ++s) {
    for (ProcessId d = 0; d < n_; ++d) {
      if (s == d) continue;
      if (group_a.contains(s) != group_a.contains(d)) {
        blocked_[idx(s, d)] = 1;
      }
    }
  }
}

void Network::heal() {
  for (auto& b : blocked_) b = 0;
}

Network::LabelCells& Network::cells_for(const Message& m) {
  // Keyed by label pointer identity; see the declaration for why the empty
  // label is excluded (handled by the caller).
  auto [it, inserted] = label_cells_.try_emplace(m.label);
  if (inserted) {
    // The ".dropped" cell stays null until the first drop: creating the
    // counter eagerly would materialize zero-valued keys that the seed
    // behavior (and the determinism fingerprints) never had.
    it->second.sent = counters_.slot(message_counter_key(m) + ".sent");
  }
  return it->second;
}

void Network::send(const Message& m) {
  assert(m.src >= 0 && m.src < n_ && m.dst >= 0 && m.dst < n_);
  assert(sink_ && "Network sink not installed");
  ++sent_total_;
  const bool interned = m.label != nullptr && m.label[0] != '\0';
  LabelCells* cells = interned ? &cells_for(m) : nullptr;
  if (interned) {
    ++*cells->sent;
  } else {
    counters_.add(message_counter_key(m) + ".sent");
  }

  std::optional<DurUs> delay;
  if (m.src == m.dst) {
    delay = self_delay_;
  } else if (blocked_[idx(m.src, m.dst)]) {
    delay = std::nullopt;
  } else {
    LinkModel* link = links_[idx(m.src, m.dst)].get();
    assert(link && "missing link model");
    delay = link->sample_delay(sched_.now(), rng_);
  }

  // Chaos overlay: only consulted while active (so rng_ draw sequences —
  // and with them the determinism fingerprints — are untouched otherwise).
  // Self-addressed messages are exempt: they model local computation, not
  // the network.
  bool duplicate = false;
  if (chaos_.active() && m.src != m.dst && delay.has_value()) {
    if (chaos_.loss_ppm != 0 && rng_.below(1'000'000) < chaos_.loss_ppm) {
      delay = std::nullopt;
    } else {
      if (chaos_.extra_delay_max > 0) {
        *delay += static_cast<DurUs>(
            rng_.below(static_cast<std::uint64_t>(chaos_.extra_delay_max) + 1));
      }
      duplicate = chaos_.duplicate_ppm != 0 &&
                  rng_.below(1'000'000) < chaos_.duplicate_ppm;
    }
  }

  if (!delay.has_value()) {
    ++dropped_total_;
#if !defined(ECFD_OBS_DISABLED)
    if (recorder_ != nullptr) {
      recorder_->ring(m.src).push(sched_.now(), obs::EventType::kDrop, m.dst,
                                  m.protocol);
    }
#endif
    if (interned) {
      if (cells->dropped == nullptr) {
        cells->dropped = counters_.slot(message_counter_key(m) + ".dropped");
      }
      ++*cells->dropped;
    } else {
      counters_.add(message_counter_key(m) + ".dropped");
    }
    return;
  }

  if (trace_.enabled()) {
    trace_.emit(sched_.now(), m.src, "net.send",
                std::string(m.label) + " -> p" + std::to_string(m.dst));
  }

  // Copy the message into the closure; the payload is shared (one pooled
  // body per Message::make, bumped refcount per destination) and the whole
  // capture fits the queue's inline action — no allocation on this path.
  sched_.schedule_after(*delay, [this, copy = m]() {
    ++delivered_total_;
    sink_(copy);
  });
  if (duplicate) {
    // The duplicate trails the original by a fresh jitter in the same band.
    DurUs extra = self_delay_;
    if (chaos_.extra_delay_max > 0) {
      extra += static_cast<DurUs>(
          rng_.below(static_cast<std::uint64_t>(chaos_.extra_delay_max) + 1));
    }
    sched_.schedule_after(*delay + extra, [this, copy = m]() {
      ++delivered_total_;
      sink_(copy);
    });
  }
}

}  // namespace ecfd
