#include "net/system.hpp"

#include <cassert>

namespace ecfd {

System::System(int n, std::uint64_t seed)
    : n_(n),
      master_rng_(seed),
      network_(sched_, n, master_rng_.split(), counters_, trace_) {
  assert(n > 0);
  hosts_.reserve(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p) {
    hosts_.push_back(std::make_unique<ProcessHost>(
        p, n, sched_, network_, trace_, master_rng_.split()));
  }
  network_.set_sink([this](const Message& m) {
    hosts_[static_cast<std::size_t>(m.dst)]->deliver(m);
  });
}

void System::attach_recorder(obs::Recorder* rec) {
  recorder_ = rec;
  network_.set_recorder(rec);
  if (rec == nullptr) {
    for (auto& h : hosts_) h->bind_obs(nullptr, -1);
    return;
  }
  rec->meta().source = "sim";
  rec->meta().clock = obs::ClockDomain::kVirtual;
  rec->meta().wall_epoch_us = 0;
  rec->bind_hosts(n_);
  for (ProcessId p = 0; p < n_; ++p) {
    hosts_[static_cast<std::size_t>(p)]->bind_obs(rec, p);
  }
}

void System::start() {
  assert(!started_ && "System::start called twice");
  started_ = true;
  for (auto& h : hosts_) h->start();
}

void System::crash_at(ProcessId p, TimeUs at) {
  assert(p >= 0 && p < n_);
  sched_.schedule_at(at, [this, p]() { hosts_[static_cast<std::size_t>(p)]->crash(); });
}

void System::crash_now(ProcessId p) {
  assert(p >= 0 && p < n_);
  hosts_[static_cast<std::size_t>(p)]->crash();
}

ProcessSet System::alive() const {
  ProcessSet s(n_);
  for (ProcessId p = 0; p < n_; ++p) {
    if (!hosts_[static_cast<std::size_t>(p)]->crashed()) s.add(p);
  }
  return s;
}

ProcessSet System::crashed() const {
  ProcessSet s(n_);
  for (ProcessId p = 0; p < n_; ++p) {
    if (hosts_[static_cast<std::size_t>(p)]->crashed()) s.add(p);
  }
  return s;
}

}  // namespace ecfd
