#include "net/geo.hpp"

#include <memory>

namespace ecfd {

namespace {

/// Three regions, round-trip-asymmetric one-way delays (microseconds).
/// Rows are source regions, columns destination regions.
GeoSpec make_geo3() {
  GeoSpec g;
  g.regions = 3;
  g.base = {
      // us-east     eu-west      ap-south
      msec(1),       usec(38'000), usec(95'000),   // from us-east
      usec(42'000),  msec(1),      usec(62'000),   // from eu-west
      usec(105'000), usec(71'000), msec(1),        // from ap-south
  };
  g.jitter = {
      usec(500), msec(5),   msec(8),
      msec(6),   usec(500), msec(5),
      msec(9),   msec(7),   usec(500),
  };
  return g;
}

/// Two regions x two availability zones, modeled as four zones:
/// zones 0,1 = region A; zones 2,3 = region B.
GeoSpec make_geo2az() {
  GeoSpec g;
  g.regions = 4;
  const DurUs same_zone = usec(300);
  const DurUs cross_az = usec(1'500);
  const DurUs ab = usec(45'000);  // region A -> B
  const DurUs ba = usec(55'000);  // region B -> A
  const DurUs jz = usec(200);
  const DurUs jaz = usec(700);
  const DurUs jwan = msec(4);
  g.base = {
      same_zone, cross_az,  ab,        ab,
      cross_az,  same_zone, ab,        ab,
      ba,        ba,        same_zone, cross_az,
      ba,        ba,        cross_az,  same_zone,
  };
  g.jitter = {
      jz,   jaz,  jwan, jwan,
      jaz,  jz,   jwan, jwan,
      jwan, jwan, jz,   jaz,
      jwan, jwan, jaz,  jz,
  };
  return g;
}

}  // namespace

GeoSpec GeoSpec::scaled(std::int64_t num, std::int64_t den) const {
  GeoSpec out = *this;
  for (DurUs& d : out.base) d = d * num / den;
  for (DurUs& d : out.jitter) d = d * num / den;
  return out;
}

const std::vector<std::string>& geo_preset_names() {
  static const std::vector<std::string> names = {"geo3", "geo2az"};
  return names;
}

const GeoSpec* geo_preset(const std::string& name) {
  static const GeoSpec geo3 = make_geo3();
  static const GeoSpec geo2az = make_geo2az();
  if (name == "geo3") return &geo3;
  if (name == "geo2az") return &geo2az;
  return nullptr;
}

std::optional<DurUs> GeoLink::sample_delay(TimeUs, Rng& rng) {
  return base_ + rng.range(0, jitter_);
}

LinkFactory geo_link_factory(GeoSpec spec) {
  return [spec = std::move(spec)](ProcessId src, ProcessId dst) {
    return std::make_unique<GeoLink>(spec.base_delay(src, dst),
                                     spec.jitter_of(src, dst));
  };
}

}  // namespace ecfd
