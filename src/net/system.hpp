#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/process_host.hpp"
#include "obs/recorder.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

/// \file system.hpp
/// The top-level simulation harness: scheduler + network + n process hosts
/// + crash scheduling. Tests, benches and examples all drive a System.

namespace ecfd {

class System {
 public:
  /// Creates a system of \p n processes, fully seeded from \p seed.
  System(int n, std::uint64_t seed);

  [[nodiscard]] int n() const { return n_; }

  sim::Scheduler& scheduler() { return sched_; }
  Network& network() { return network_; }
  sim::Counters& counters() { return counters_; }
  sim::Trace& trace() { return trace_; }

  /// Attaches a typed event recorder: binds one ring per host (and stamps
  /// the recorder's meta as a virtual-clock "sim" source). Call before
  /// start(); pass nullptr to detach.
  void attach_recorder(obs::Recorder* rec);
  [[nodiscard]] obs::Recorder* recorder() const { return recorder_; }

  ProcessHost& host(ProcessId p) { return *hosts_[static_cast<std::size_t>(p)]; }
  [[nodiscard]] const ProcessHost& host(ProcessId p) const {
    return *hosts_[static_cast<std::size_t>(p)];
  }

  /// Installs one protocol instance per process using \p factory, which
  /// receives the process's Env. Returns the raw pointers (owned by hosts)
  /// indexed by process id.
  template <class P>
  std::vector<P*> install(
      const std::function<std::unique_ptr<P>(Env&, ProcessId)>& factory) {
    std::vector<P*> out;
    out.reserve(static_cast<std::size_t>(n_));
    for (ProcessId p = 0; p < n_; ++p) {
      auto proto = factory(host(p), p);
      out.push_back(proto.get());
      host(p).add_protocol(std::move(proto));
    }
    return out;
  }

  /// Starts every host's protocol stack. Call after installing protocols
  /// and configuring links.
  void start();

  /// Schedules a crash-stop of process \p p at virtual time \p at.
  void crash_at(ProcessId p, TimeUs at);

  /// Crashes \p p immediately.
  void crash_now(ProcessId p);

  /// The set of processes not (yet) crashed.
  [[nodiscard]] ProcessSet alive() const;

  /// The set of processes that have crashed so far.
  [[nodiscard]] ProcessSet crashed() const;

  /// Advances virtual time, executing all events up to \p deadline.
  void run_until(TimeUs deadline) { sched_.run_until(deadline); }

  /// Advances virtual time by \p d from now.
  void run_for(DurUs d) { sched_.run_until(sched_.now() + d); }

  [[nodiscard]] TimeUs now() const { return sched_.now(); }

 private:
  int n_;
  sim::Scheduler sched_;
  sim::Counters counters_;
  sim::Trace trace_;
  Rng master_rng_;
  Network network_;
  std::vector<std::unique_ptr<ProcessHost>> hosts_;
  obs::Recorder* recorder_{nullptr};
  bool started_{false};
};

}  // namespace ecfd
