#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "net/process_set.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

/// \file link.hpp
/// Per-directed-link timing/loss models (system model of Sections 2.1 & 4).
///
/// Each ordered pair of processes has its own link instance. A link decides,
/// per message, the delivery delay — or that the message is lost.

namespace ecfd {

/// Behaviour of one directed communication link.
class LinkModel {
 public:
  virtual ~LinkModel() = default;

  /// Samples the delivery delay for a message sent at \p now.
  /// Returns std::nullopt when the message is lost.
  virtual std::optional<DurUs> sample_delay(TimeUs now, Rng& rng) = 0;
};

/// Reliable link with uniformly distributed delay in [min_delay, max_delay].
/// No loss; models the paper's default reliable asynchronous links with a
/// bounded horizon so finite runs terminate.
class ReliableLink final : public LinkModel {
 public:
  ReliableLink(DurUs min_delay, DurUs max_delay);
  std::optional<DurUs> sample_delay(TimeUs now, Rng& rng) override;

 private:
  DurUs min_delay_;
  DurUs max_delay_;
};

/// Partially synchronous link (Dwork-Lynch-Stockmeyer / Chandra-Toueg
/// model, Section 4): before the global stabilization time GST, delays are
/// arbitrary within [pre_min, pre_max] (typically large and erratic); from
/// GST on, every message is delivered within the unknown-to-protocols bound
/// delta. Messages are never lost.
class PartialSyncLink final : public LinkModel {
 public:
  struct Config {
    TimeUs gst{0};          ///< global stabilization time
    DurUs delta{msec(5)};   ///< post-GST delivery bound
    DurUs pre_min{usec(100)};
    DurUs pre_max{msec(500)};  ///< pre-GST delays can be this slow
  };

  explicit PartialSyncLink(Config cfg);
  std::optional<DurUs> sample_delay(TimeUs now, Rng& rng) override;

 private:
  Config cfg_;
};

/// Fair-lossy link (output links of the leader in Section 4): each message
/// is independently dropped with probability loss_p, except that every
/// k-th message on the link is delivered unconditionally — this keeps the
/// fairness property ("infinitely many sends imply infinitely many
/// receipts") deterministic on finite runs.
class FairLossyLink final : public LinkModel {
 public:
  struct Config {
    double loss_p{0.3};
    int force_deliver_every{8};  ///< <=0 disables the deterministic escape
    DurUs min_delay{usec(100)};
    DurUs max_delay{msec(5)};
  };

  explicit FairLossyLink(Config cfg);
  std::optional<DurUs> sample_delay(TimeUs now, Rng& rng) override;

 private:
  Config cfg_;
  int since_delivery_{0};
};

/// Asynchronous link: exponential delays with the given mean (long tails,
/// no bound), no loss. Used to exercise algorithms whose safety must not
/// depend on timing.
class AsyncLink final : public LinkModel {
 public:
  explicit AsyncLink(DurUs mean_delay);
  std::optional<DurUs> sample_delay(TimeUs now, Rng& rng) override;

 private:
  DurUs mean_delay_;
};

/// Factory signature used by Network::set_links: returns the model for the
/// directed link src -> dst.
using LinkFactory =
    std::function<std::unique_ptr<LinkModel>(ProcessId, ProcessId)>;

}  // namespace ecfd
