#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/message.hpp"
#include "obs/recorder.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

/// \file network.hpp
/// The simulated message-passing fabric: n processes, one LinkModel per
/// ordered pair, loss/partition injection and message accounting.

namespace ecfd {

/// Simulated network. Owns the link models; delivery is handed to a sink
/// callback installed by the System (which routes to process hosts).
class Network {
 public:
  using DeliverySink = std::function<void(const Message&)>;

  Network(sim::Scheduler& sched, int n, Rng rng, sim::Counters& counters,
          sim::Trace& trace);

  [[nodiscard]] int n() const { return n_; }

  /// Installs the delivery sink (called once by the System).
  void set_sink(DeliverySink sink) { sink_ = std::move(sink); }

  /// Replaces every directed link using \p factory.
  void set_links(const LinkFactory& factory);

  /// Replaces a single directed link.
  void set_link(ProcessId src, ProcessId dst, std::unique_ptr<LinkModel> link);

  /// Blocks/unblocks a directed link (messages silently dropped while
  /// blocked). Used to create partitions.
  void set_blocked(ProcessId src, ProcessId dst, bool blocked);

  /// Blocks both directions between every pair (a, b) with a in \p group_a
  /// and b not in it — a full partition.
  void partition(const ProcessSet& group_a);

  /// Removes every block.
  void heal();

  /// Message-level fault-injection overlay, applied on top of the link
  /// models (used by the check/ schedule fuzzer to model loss bursts,
  /// delay spikes and duplication without swapping links mid-run).
  /// Probabilities are exact parts-per-million integers so schedules
  /// serialize and replay bit-identically. All zeros = inactive; the
  /// inactive overlay draws no randomness, so runs without chaos keep
  /// their historical determinism fingerprints.
  struct Chaos {
    std::uint32_t loss_ppm{0};       ///< extra drop probability, ppm
    DurUs extra_delay_max{0};        ///< adds uniform [0, max] to delay
    std::uint32_t duplicate_ppm{0};  ///< probability of a second delivery
    [[nodiscard]] bool active() const {
      return loss_ppm != 0 || extra_delay_max != 0 || duplicate_ppm != 0;
    }
  };
  void set_chaos(const Chaos& chaos) { chaos_ = chaos; }
  void clear_chaos() { chaos_ = Chaos{}; }
  [[nodiscard]] const Chaos& chaos() const { return chaos_; }

  /// Sends \p m (src/dst must be stamped). Samples the link model for a
  /// delay, schedules the delivery, and keeps counters.
  void send(const Message& m);

  /// Delay applied to self-addressed messages (they bypass link models).
  void set_self_delay(DurUs d) { self_delay_ = d; }

  /// Attached by System::attach_recorder so dropped messages land in the
  /// sender's event ring (ProcessHost only sees the send).
  void set_recorder(obs::Recorder* rec) { recorder_ = rec; }

  [[nodiscard]] std::int64_t sent_total() const { return sent_total_; }
  [[nodiscard]] std::int64_t delivered_total() const { return delivered_total_; }
  [[nodiscard]] std::int64_t dropped_total() const { return dropped_total_; }

 private:
  [[nodiscard]] std::size_t idx(ProcessId src, ProcessId dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(dst);
  }

  /// Interned per-label counter cells: the ".sent"/".dropped" key strings
  /// are built once per distinct label, then every send bumps raw int64
  /// pointers. Keyed by the label's address — labels are string literals
  /// with stable identity. The empty label (numeric proto/type fallback
  /// key) takes the slow path since distinct messages can share it.
  struct LabelCells {
    std::int64_t* sent{nullptr};
    std::int64_t* dropped{nullptr};
  };
  LabelCells& cells_for(const Message& m);

  sim::Scheduler& sched_;
  int n_;
  Rng rng_;
  sim::Counters& counters_;
  sim::Trace& trace_;
  obs::Recorder* recorder_{nullptr};
  DeliverySink sink_;
  std::vector<std::unique_ptr<LinkModel>> links_;
  std::vector<char> blocked_;
  Chaos chaos_;
  DurUs self_delay_{1};
  std::int64_t sent_total_{0};
  std::int64_t delivered_total_{0};
  std::int64_t dropped_total_{0};
  std::unordered_map<const char*, LabelCells> label_cells_;
};

}  // namespace ecfd
