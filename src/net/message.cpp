#include "net/message.hpp"

#include <string>

namespace ecfd {

/// Counter key for a message: "msg.<label>" with a numeric fallback when a
/// protocol did not label its messages.
std::string message_counter_key(const Message& m) {
  if (m.label != nullptr && m.label[0] != '\0') {
    return std::string("msg.") + m.label;
  }
  return "msg.proto" + std::to_string(m.protocol) + ".type" +
         std::to_string(m.type);
}

}  // namespace ecfd
