#include "net/link.hpp"

#include <algorithm>
#include <cassert>

namespace ecfd {

ReliableLink::ReliableLink(DurUs min_delay, DurUs max_delay)
    : min_delay_(min_delay), max_delay_(std::max(min_delay, max_delay)) {
  assert(min_delay >= 0);
}

std::optional<DurUs> ReliableLink::sample_delay(TimeUs /*now*/, Rng& rng) {
  return rng.range(min_delay_, max_delay_);
}

PartialSyncLink::PartialSyncLink(Config cfg) : cfg_(cfg) {
  assert(cfg_.delta > 0);
  assert(cfg_.pre_min >= 0 && cfg_.pre_max >= cfg_.pre_min);
}

std::optional<DurUs> PartialSyncLink::sample_delay(TimeUs now, Rng& rng) {
  if (now >= cfg_.gst) {
    // Post-GST: delivered and processed within delta.
    return rng.range(1, cfg_.delta);
  }
  // Pre-GST: arbitrary (bounded only so finite runs terminate). A message
  // sent just before GST may still arrive late, which is allowed: the bound
  // applies to messages sent after GST.
  return rng.range(cfg_.pre_min, cfg_.pre_max);
}

FairLossyLink::FairLossyLink(Config cfg) : cfg_(cfg) {
  assert(cfg_.loss_p >= 0.0 && cfg_.loss_p < 1.0);
  assert(cfg_.min_delay >= 0 && cfg_.max_delay >= cfg_.min_delay);
}

std::optional<DurUs> FairLossyLink::sample_delay(TimeUs /*now*/, Rng& rng) {
  ++since_delivery_;
  const bool forced = cfg_.force_deliver_every > 0 &&
                      since_delivery_ >= cfg_.force_deliver_every;
  if (!forced && rng.chance(cfg_.loss_p)) {
    return std::nullopt;  // lost
  }
  since_delivery_ = 0;
  return rng.range(cfg_.min_delay, cfg_.max_delay);
}

AsyncLink::AsyncLink(DurUs mean_delay) : mean_delay_(mean_delay) {
  assert(mean_delay > 0);
}

std::optional<DurUs> AsyncLink::sample_delay(TimeUs /*now*/, Rng& rng) {
  // 1 + exponential: strictly positive, unbounded tail.
  return 1 + rng.exponential(mean_delay_);
}

}  // namespace ecfd
