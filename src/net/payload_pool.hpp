#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

/// \file payload_pool.hpp
/// Per-payload-type freelists behind Message::make.
///
/// Every simulated message body is allocated with std::allocate_shared and
/// a pooling allocator, so the control block and the body share ONE block,
/// and that block is recycled through a thread-local freelist keyed by the
/// concrete payload type. In the steady state a message send performs zero
/// heap allocations; a broadcast fan-out shares one body across all n-1
/// destinations (the shared_ptr makes the copies free).
///
/// Thread model: freelists are thread_local, so independent simulations on
/// different threads (tools/bench_runner) never contend or share blocks.
/// A block released on a different thread than it was acquired on (the
/// threaded runtime passes messages across threads) simply migrates to the
/// releasing thread's freelist — all blocks of a type are interchangeable.

namespace ecfd {

/// Global (per-thread) pool accounting, summed over all payload types.
struct PayloadPoolStats {
  std::uint64_t fresh{0};     ///< blocks obtained from operator new
  std::uint64_t reused{0};    ///< blocks served from a freelist
  std::uint64_t released{0};  ///< blocks returned to a freelist
};

namespace detail {

inline thread_local PayloadPoolStats t_payload_pool_stats;

/// The freelist for one (type, size) class. Owns its cached blocks: blocks
/// still on the list at thread exit are freed with the destructor.
class FreeList {
 public:
  ~FreeList() {
    for (void* p : blocks_) ::operator delete(p);
  }

  void* acquire() {
    if (blocks_.empty()) return nullptr;
    void* p = blocks_.back();
    blocks_.pop_back();
    return p;
  }

  bool release(void* p) {
    if (blocks_.size() >= kMaxCached) return false;
    blocks_.push_back(p);
    return true;
  }

 private:
  // Bounds per-type memory retention; beyond this blocks go back to the
  // system allocator.
  static constexpr std::size_t kMaxCached = 4096;
  std::vector<void*> blocks_;
};

/// Allocator plugged into std::allocate_shared. The shared_ptr control
/// block embeds the body, so U is the library's internal combined node
/// type; each distinct U gets its own thread-local freelist sized exactly
/// for sizeof(U). Only single-object allocations hit the pool.
template <class U>
class PoolAllocator {
 public:
  using value_type = U;

  PoolAllocator() = default;
  template <class V>
  PoolAllocator(const PoolAllocator<V>&) {}  // NOLINT(google-explicit-constructor)

  U* allocate(std::size_t n) {
    if (n != 1) {
      return static_cast<U*>(::operator new(n * sizeof(U)));
    }
    if (void* p = pool().acquire()) {
      ++t_payload_pool_stats.reused;
      return static_cast<U*>(p);
    }
    ++t_payload_pool_stats.fresh;
    return static_cast<U*>(::operator new(sizeof(U)));
  }

  void deallocate(U* p, std::size_t n) {
    if (n == 1) {
      ++t_payload_pool_stats.released;
      if (pool().release(p)) return;
    }
    ::operator delete(p);
  }

  template <class V>
  bool operator==(const PoolAllocator<V>&) const {
    return true;
  }
  template <class V>
  bool operator!=(const PoolAllocator<V>&) const {
    return false;
  }

 private:
  static FreeList& pool() {
    static thread_local FreeList list;
    return list;
  }
};

}  // namespace detail

/// Allocates a shared immutable payload body of type T from the per-type
/// pool. This is the only allocation a Message::make performs.
template <class T, class... Args>
std::shared_ptr<const T> make_pooled_payload(Args&&... args) {
  return std::allocate_shared<const T>(detail::PoolAllocator<const T>{},
                                       std::forward<Args>(args)...);
}

/// This thread's pool accounting (fresh/reused/released block counts).
inline PayloadPoolStats payload_pool_thread_stats() {
  return detail::t_payload_pool_stats;
}

}  // namespace ecfd
