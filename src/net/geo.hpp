#pragma once

#include <string>
#include <vector>

#include "net/link.hpp"

/// \file geo.hpp
/// Named multi-region WAN topologies with asymmetric per-link latency.
///
/// A GeoSpec assigns every process to a region (round-robin, p % regions)
/// and gives each ordered region pair its own one-way base delay plus a
/// uniform jitter band — one-way delays are deliberately direction-
/// dependent, matching measured WAN paths where the two directions of a
/// route differ by routing policy, not physics. The spec is a plain value
/// (two integer matrices) so a fuzz schedule can embed the exact drawn
/// matrices in its ecfd.repro.v1 file and replay bit-identically even if
/// the presets below are retuned later.

namespace ecfd {

/// A multi-region topology: regions*regions one-way base delays and
/// jitter bands, all in integral microseconds.
struct GeoSpec {
  int regions{1};
  std::vector<DurUs> base;    ///< [src_region*regions + dst_region]
  std::vector<DurUs> jitter;  ///< same shape; delay = base + U[0, jitter]

  [[nodiscard]] bool valid() const {
    const auto want = static_cast<std::size_t>(regions) *
                      static_cast<std::size_t>(regions);
    return regions >= 1 && base.size() == want && jitter.size() == want;
  }

  [[nodiscard]] int region_of(ProcessId p) const {
    return static_cast<int>(p) % regions;
  }

  [[nodiscard]] DurUs base_delay(ProcessId src, ProcessId dst) const {
    return base[static_cast<std::size_t>(region_of(src)) *
                    static_cast<std::size_t>(regions) +
                static_cast<std::size_t>(region_of(dst))];
  }

  [[nodiscard]] DurUs jitter_of(ProcessId src, ProcessId dst) const {
    return jitter[static_cast<std::size_t>(region_of(src)) *
                      static_cast<std::size_t>(regions) +
                  static_cast<std::size_t>(region_of(dst))];
  }

  /// Every delay scaled by num/den (integer microsecond math); used by the
  /// fuzzer to draw per-seed variations of a preset.
  [[nodiscard]] GeoSpec scaled(std::int64_t num, std::int64_t den) const;
};

/// Preset lookup by name; nullptr when unknown.
///
///   "geo3"    three regions (us-east / eu-west / ap-south): 1 ms intra,
///             38-105 ms inter-region one-way, asymmetric per direction.
///   "geo2az"  two regions x two availability zones (modeled as four
///             zones): sub-ms same-zone, ~2 ms cross-AZ, ~45/55 ms
///             cross-region.
[[nodiscard]] const GeoSpec* geo_preset(const std::string& name);

/// All preset names, in a fixed order (the fuzzer draws an index).
[[nodiscard]] const std::vector<std::string>& geo_preset_names();

/// Directed WAN link: delay = base + U[0, jitter], no loss.
class GeoLink final : public LinkModel {
 public:
  GeoLink(DurUs base, DurUs jitter) : base_(base), jitter_(jitter) {}
  std::optional<DurUs> sample_delay(TimeUs now, Rng& rng) override;

 private:
  DurUs base_;
  DurUs jitter_;
};

/// LinkFactory for Network::set_links: each directed pair gets a GeoLink
/// parameterized by the spec's region matrices.
[[nodiscard]] LinkFactory geo_link_factory(GeoSpec spec);

}  // namespace ecfd
