#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <typeinfo>
#include <utility>

#include "net/payload_pool.hpp"
#include "net/process_set.hpp"

/// \file message.hpp
/// The unit of communication between processes.
///
/// A message carries a protocol id (which protocol instance on the receiving
/// host should handle it), a per-protocol integer type, and an immutable,
/// shared, typed payload. Payloads are shared rather than copied so that a
/// broadcast of one body to n-1 destinations costs one allocation.

namespace ecfd {

/// Identifies a protocol instance across all hosts; see protocol_ids.hpp.
using ProtocolId = int;

struct Message {
  ProcessId src{kNoProcess};
  ProcessId dst{kNoProcess};
  ProtocolId protocol{0};
  int type{0};
  /// Human-readable message label ("cons_c.estimate") used for counters.
  const char* label{""};

  std::shared_ptr<const void> payload{};
  const std::type_info* payload_type{nullptr};

  /// Builds a message with a typed payload. The body comes from the
  /// per-type freelist (payload_pool.hpp) and is shared, never copied, by
  /// every downstream send of this Message — a broadcast fan-out costs one
  /// pooled allocation total.
  template <class T>
  static Message make(ProtocolId protocol, int type, const char* label,
                      T body) {
    Message m;
    m.protocol = protocol;
    m.type = type;
    m.label = label;
    m.payload_type = &typeid(T);
    m.payload = make_pooled_payload<T>(std::move(body));
    return m;
  }

  /// Builds a payload-less message.
  static Message make_empty(ProtocolId protocol, int type, const char* label) {
    Message m;
    m.protocol = protocol;
    m.type = type;
    m.label = label;
    return m;
  }

  /// Typed payload access; asserts on type mismatch (a protocol decoding a
  /// message with the wrong body is a programming error, not a runtime
  /// condition).
  template <class T>
  const T& as() const {
    assert(payload && payload_type && *payload_type == typeid(T) &&
           "message payload type mismatch");
    return *static_cast<const T*>(payload.get());
  }

  [[nodiscard]] bool has_payload() const { return payload != nullptr; }
};

/// Counter key for a message: "msg.<label>" with a numeric fallback when a
/// protocol did not label its messages. Shared by the simulated network and
/// the socket transport so experiment accounting aggregates identically.
std::string message_counter_key(const Message& m);

}  // namespace ecfd
