#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/geo.hpp"
#include "net/system.hpp"

/// \file scenario.hpp
/// Declarative run configurations shared by tests and benchmarks, so a
/// scenario is fully described by a small value type and a seed.

namespace ecfd {

/// Which timing model every link follows.
enum class LinkKind {
  kReliable,      ///< uniform delay in [min_delay, max_delay], no loss
  kPartialSync,   ///< arbitrary before GST, bounded by delta after
  kFairLossy,     ///< lossy but fair
  kAsync,         ///< exponential unbounded delays
  kGeo,           ///< asymmetric multi-region WAN matrix (net/geo.hpp)
};

/// A planned crash.
struct CrashPlan {
  ProcessId process{kNoProcess};
  TimeUs at{0};
};

/// Everything needed to build a reproducible System.
struct ScenarioConfig {
  int n{5};
  std::uint64_t seed{1};
  LinkKind links{LinkKind::kPartialSync};

  // kReliable / kFairLossy delay band.
  DurUs min_delay{usec(200)};
  DurUs max_delay{msec(2)};

  // kPartialSync parameters.
  TimeUs gst{msec(200)};
  DurUs delta{msec(5)};
  DurUs pre_gst_max{msec(300)};

  // kFairLossy parameters.
  double loss_p{0.2};
  int force_deliver_every{8};

  // kAsync parameter.
  DurUs mean_delay{msec(2)};

  // kGeo parameters: a preset name, or a custom spec taking precedence
  // when valid (the fuzzer passes the exact matrices it drew).
  std::string geo_preset_name{"geo3"};
  GeoSpec geo;

  std::vector<CrashPlan> crashes;

  /// Convenience: crash the given processes at the given times.
  ScenarioConfig& with_crash(ProcessId p, TimeUs at) {
    crashes.push_back(CrashPlan{p, at});
    return *this;
  }
};

/// Builds a System with links and crash schedule configured (protocols are
/// installed by the caller before start()).
std::unique_ptr<System> make_system(const ScenarioConfig& cfg);

}  // namespace ecfd
