#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file process_set.hpp
/// Identifiers for the process universe Π = {p_0, ..., p_{n-1}} and a
/// compact set-of-processes type used for suspected sets.

namespace ecfd {

/// Process identifier, 0-based ("p1" in the paper is id 0 here).
using ProcessId = int;

inline constexpr ProcessId kNoProcess = -1;

/// A subset of a fixed process universe of size n, stored as a bitset.
///
/// This is the "set of suspected processes" representation returned by
/// failure detectors; it supports the set algebra the algorithms need and
/// value-compares cheaply (used heavily by property checkers).
class ProcessSet {
 public:
  ProcessSet() = default;

  /// Empty set over a universe of \p n processes.
  explicit ProcessSet(int n) : n_(n), bits_((static_cast<std::size_t>(n) + 63) / 64, 0) {}

  /// Full universe {0..n-1}.
  static ProcessSet full(int n);

  [[nodiscard]] int universe_size() const { return n_; }

  void add(ProcessId p);
  void remove(ProcessId p);
  [[nodiscard]] bool contains(ProcessId p) const;

  /// Number of members.
  [[nodiscard]] int size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Smallest member, or kNoProcess when empty.
  [[nodiscard]] ProcessId first() const;

  /// Smallest id in the universe NOT in the set, or kNoProcess if the set
  /// is the full universe. This is the paper's "first non-suspected
  /// process" rule used to derive a leader from a suspected set.
  [[nodiscard]] ProcessId first_excluded() const;

  /// Members in increasing order.
  [[nodiscard]] std::vector<ProcessId> members() const;

  ProcessSet& operator|=(const ProcessSet& other);
  ProcessSet& operator&=(const ProcessSet& other);
  /// Set difference (this \ other).
  ProcessSet& operator-=(const ProcessSet& other);

  friend ProcessSet operator|(ProcessSet a, const ProcessSet& b) { return a |= b; }
  friend ProcessSet operator&(ProcessSet a, const ProcessSet& b) { return a &= b; }
  friend ProcessSet operator-(ProcessSet a, const ProcessSet& b) { return a -= b; }

  bool operator==(const ProcessSet& other) const = default;

  /// "{p0,p3,p4}" rendering for traces and test failure messages.
  [[nodiscard]] std::string to_string() const;

  void clear();

 private:
  int n_{0};
  std::vector<std::uint64_t> bits_;
};

}  // namespace ecfd
