#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/message.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

/// \file env.hpp
/// The runtime environment a protocol instance runs in.
///
/// Protocols (failure detectors, transformations, consensus) are written
/// against this interface only, so the identical protocol code runs on the
/// deterministic discrete-event simulator (net/process_host.hpp) and on the
/// real threaded runtime (runtime/thread_env.hpp).

namespace ecfd {

/// Handle for a pending timer.
using TimerId = std::uint64_t;

inline constexpr TimerId kInvalidTimer = 0;

/// Per-process runtime services.
class Env {
 public:
  virtual ~Env() = default;

  /// Current time (virtual in simulation, wall-clock in the threaded
  /// runtime), microseconds.
  [[nodiscard]] virtual TimeUs now() const = 0;

  /// Sends \p m to process \p dst. The src field is stamped by the
  /// environment. Sending to self is allowed and delivered like any other
  /// message (with minimal delay).
  virtual void send(ProcessId dst, Message m) = 0;

  /// Arms a one-shot timer; \p fn runs in this process's context after
  /// \p delay. Returns an id usable with cancel_timer. Timers die silently
  /// when the process crashes.
  virtual TimerId set_timer(DurUs delay, std::function<void()> fn) = 0;

  /// Cancels a pending timer; ignores unknown/fired ids.
  virtual void cancel_timer(TimerId id) = 0;

  /// This process's id and the universe size n.
  [[nodiscard]] virtual ProcessId self() const = 0;
  [[nodiscard]] virtual int n() const = 0;

  /// Per-process deterministic random stream.
  virtual Rng& rng() = 0;

  /// Emits a trace record (no-op unless tracing is enabled).
  virtual void trace(const std::string& tag, const std::string& detail) = 0;

  /// Sends \p m to every process except self.
  void broadcast(Message m) {
    for (ProcessId q = 0; q < n(); ++q) {
      if (q != self()) send(q, m);
    }
  }
};

/// Base class for protocol instances hosted on a process.
class Protocol {
 public:
  Protocol(Env& env, ProtocolId id) : env_(env), id_(id) {}
  virtual ~Protocol() = default;

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  /// Invoked once when the system starts.
  virtual void start() {}

  /// Invoked for every message addressed to this protocol id.
  virtual void on_message(const Message& m) = 0;

  [[nodiscard]] ProtocolId protocol_id() const { return id_; }

 protected:
  Env& env_;

 private:
  ProtocolId id_;
};

}  // namespace ecfd
