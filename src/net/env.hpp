#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/message.hpp"
#include "obs/recorder.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

/// \file env.hpp
/// The runtime environment a protocol instance runs in.
///
/// Protocols (failure detectors, transformations, consensus) are written
/// against this interface only, so the identical protocol code runs on the
/// deterministic discrete-event simulator (net/process_host.hpp) and on the
/// real threaded runtime (runtime/thread_env.hpp).

namespace ecfd {

/// Protocols name event kinds without the obs:: qualifier.
using obs::EventType;

/// Handle for a pending timer.
using TimerId = std::uint64_t;

inline constexpr TimerId kInvalidTimer = 0;

/// Per-process runtime services.
class Env {
 public:
  virtual ~Env() = default;

  /// Current time (virtual in simulation, wall-clock in the threaded
  /// runtime), microseconds.
  [[nodiscard]] virtual TimeUs now() const = 0;

  /// Sends \p m to process \p dst. The src field is stamped by the
  /// environment. Sending to self is allowed and delivered like any other
  /// message (with minimal delay).
  virtual void send(ProcessId dst, Message m) = 0;

  /// Arms a one-shot timer; \p fn runs in this process's context after
  /// \p delay. Returns an id usable with cancel_timer. Timers die silently
  /// when the process crashes.
  virtual TimerId set_timer(DurUs delay, std::function<void()> fn) = 0;

  /// Cancels a pending timer; ignores unknown/fired ids.
  virtual void cancel_timer(TimerId id) = 0;

  /// This process's id and the universe size n.
  [[nodiscard]] virtual ProcessId self() const = 0;
  [[nodiscard]] virtual int n() const = 0;

  /// Per-process deterministic random stream.
  virtual Rng& rng() = 0;

  /// Emits a trace record (no-op unless tracing is enabled).
  virtual void trace(const std::string& tag, const std::string& detail) = 0;

  /// Sends \p m to every process except self.
  void broadcast(Message m) {
    for (ProcessId q = 0; q < n(); ++q) {
      if (q != self()) send(q, m);
    }
  }

  /// Records a typed observability event into this process's ring.
  /// Allocation-free, lock-free, and a literal no-op until a backend binds
  /// a ring (or permanently, when built with -DECFD_OBS_DISABLED). This is
  /// the hot-path hook protocols use for suspect/leader/decide events.
  void record(EventType type, std::int32_t a = -1, std::int64_t b = 0,
              std::int32_t label = -1) {
#if defined(ECFD_OBS_DISABLED)
    (void)type; (void)a; (void)b; (void)label;
#else
    if (obs_ring_ == nullptr) return;
    obs::EventRing* ring = obs::is_hot_event(type) ? obs_ring_ : obs_state_ring_;
    ring->push(now(), type, a, b, label);
#endif
  }

  /// True when events recorded here actually land somewhere.
  [[nodiscard]] bool recording() const {
#if defined(ECFD_OBS_DISABLED)
    return false;
#else
    return obs_ring_ != nullptr;
#endif
  }

  /// The recorder this env is bound to (nullptr when not recording); for
  /// cold-path label interning.
  [[nodiscard]] obs::Recorder* recorder() const { return obs_recorder_; }

  /// Backends call this at bind time (before protocol start) to attach the
  /// process's rings for host id \p host (rings must already exist — see
  /// Recorder::bind_hosts). Pass rec == nullptr to detach. Not thread-safe
  /// against concurrent record().
  void bind_obs(obs::Recorder* rec, int host) {
    obs_recorder_ = rec;
    obs_ring_ = rec == nullptr ? nullptr : &rec->ring(host);
    obs_state_ring_ = rec == nullptr ? nullptr : &rec->state_ring(host);
  }

 private:
  obs::Recorder* obs_recorder_{nullptr};
  obs::EventRing* obs_ring_{nullptr};
  obs::EventRing* obs_state_ring_{nullptr};
};

/// Base class for protocol instances hosted on a process.
class Protocol {
 public:
  Protocol(Env& env, ProtocolId id) : env_(env), id_(id) {}
  virtual ~Protocol() = default;

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  /// Invoked once when the system starts.
  virtual void start() {}

  /// Invoked for every message addressed to this protocol id.
  virtual void on_message(const Message& m) = 0;

  [[nodiscard]] ProtocolId protocol_id() const { return id_; }

 protected:
  Env& env_;

 private:
  ProtocolId id_;
};

}  // namespace ecfd
