#pragma once

#include <cstddef>
#include <cstdint>

/// \file crc32.hpp
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
///
/// The frame codec appends this checksum so a frame corrupted in flight
/// (bit flips, truncation at a byte boundary that still parses) is rejected
/// deterministically instead of being delivered to a protocol.

namespace ecfd::wire {

/// CRC of \p len bytes at \p data, with an optional running seed for
/// incremental computation (pass a previous result to continue).
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                                  std::uint32_t seed = 0);

}  // namespace ecfd::wire
