#include "wire/envelope.hpp"

#include "wire/buffer.hpp"
#include "wire/crc32.hpp"

namespace ecfd::wire {

namespace {

bool set_error(std::string* error, const char* reason) {
  if (error) *error = reason;
  return false;
}

}  // namespace

bool is_envelope(const std::uint8_t* data, std::size_t len) {
  return len >= 2 &&
         (static_cast<std::uint16_t>(data[0]) |
          static_cast<std::uint16_t>(data[1]) << 8) == kEnvelopeMagic;
}

bool encode_envelope(const std::vector<std::vector<std::uint8_t>>& frames,
                     std::vector<std::uint8_t>* out, std::string* error) {
  if (frames.empty()) return set_error(error, "empty envelope");
  if (frames.size() > kMaxFramesPerEnvelope) {
    return set_error(error, "too many frames for one envelope");
  }
  std::size_t total = kEnvelopeOverheadBytes;
  for (const auto& f : frames) {
    if (f.empty() || f.size() > kMaxFrameBytes) {
      return set_error(error, "bad inner frame size");
    }
    total += kEnvelopeFrameOverheadBytes + f.size();
  }
  if (total > kMaxFrameBytes) {
    return set_error(error, "envelope exceeds kMaxFrameBytes");
  }

  WireWriter w;
  w.u16(kEnvelopeMagic);
  w.u8(kEnvelopeVersion);
  w.u8(0);  // flags, reserved
  w.u16(static_cast<std::uint16_t>(frames.size()));
  w.u16(0);  // reserved
  for (const auto& f : frames) {
    w.u32(static_cast<std::uint32_t>(f.size()));
    w.bytes(f.data(), f.size());
  }
  w.u32(crc32(w.data().data(), w.size()));
  *out = w.take();
  return true;
}

std::optional<std::vector<FrameView>> decode_envelope(
    const std::uint8_t* data, std::size_t len, std::string* error) {
  const auto fail = [&](const char* reason) -> std::optional<std::vector<FrameView>> {
    set_error(error, reason);
    return std::nullopt;
  };

  if (len < kEnvelopeOverheadBytes || len > kMaxFrameBytes) {
    return fail("bad envelope size");
  }
  // The CRC seals the framing before any length field is trusted, so a
  // split or bit-flipped envelope is rejected up front.
  if (crc32(data, len - 4) !=
      (static_cast<std::uint32_t>(data[len - 4]) |
       static_cast<std::uint32_t>(data[len - 3]) << 8 |
       static_cast<std::uint32_t>(data[len - 2]) << 16 |
       static_cast<std::uint32_t>(data[len - 1]) << 24)) {
    return fail("envelope checksum mismatch");
  }

  WireReader r(data, len - 4);
  if (r.u16() != kEnvelopeMagic) return fail("bad envelope magic");
  if (r.u8() != kEnvelopeVersion) return fail("unsupported envelope version");
  if (r.u8() != 0) return fail("nonzero envelope flags");
  const std::uint16_t count = r.u16();
  if (r.u16() != 0) return fail("nonzero envelope reserved");
  if (!r.ok() || count == 0 || count > kMaxFramesPerEnvelope) {
    return fail("bad envelope frame count");
  }

  std::vector<FrameView> views;
  views.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::uint32_t flen = r.u32();
    if (!r.ok() || flen == 0 || flen > r.remaining()) {
      return fail("envelope frame length lie");
    }
    views.push_back(FrameView{data + r.pos(), flen});
    r.skip(flen);
  }
  if (!r.ok() || !r.exhausted()) return fail("trailing envelope bytes");
  return views;
}

}  // namespace ecfd::wire
