#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wire/codec.hpp"

/// \file envelope.hpp
/// The batch envelope: one CRC-framed datagram carrying every frame due to
/// a peer in the same tick — the paper's §4 piggybacking idea carried all
/// the way to the wire. EfficientP folds the suspected list into the leader
/// heartbeat to amortize periodic traffic at the protocol layer; the
/// envelope amortizes at the transport layer, so heartbeats, leader
/// beacons, suspected lists, consensus messages, and RB/KV traffic that a
/// tick makes due to the same peer leave as ONE datagram instead of k.
///
/// Layout (little-endian, mirrors codec.hpp discipline):
///
///   u16 magic (0xECBA — distinct from the single-frame 0xECFD)
///   u8  version
///   u8  flags     (reserved, must be zero)
///   u16 count     (1..kMaxFramesPerEnvelope)
///   u16 reserved  (must be zero)
///   count × { u32 len; len bytes }   each a complete single-frame encoding
///   u32 crc32 of everything before
///
/// Inner frames keep their own CRC (they are exactly what
/// wire::encode_message produced), so a receiver reuses decode_message
/// unchanged and a corrupt inner frame is rejected individually while its
/// siblings still deliver. The envelope CRC covers the framing itself:
/// truncation, split-across-datagrams, and length lies are rejected before
/// any inner byte is interpreted (fuzzed in tests/test_envelope.cpp).
///
/// Nesting is rejected: an inner frame that is itself an envelope fails
/// decode_message's magic check and is counted as a decode error.

namespace ecfd::wire {

inline constexpr std::uint16_t kEnvelopeMagic = 0xECBA;
inline constexpr std::uint8_t kEnvelopeVersion = 1;

/// Fixed bytes around the frame list: header (8) + trailing CRC (4).
inline constexpr std::size_t kEnvelopeOverheadBytes = 12;
/// Per-frame cost on top of the frame itself (the u32 length prefix).
inline constexpr std::size_t kEnvelopeFrameOverheadBytes = 4;

/// Hard cap on frames per envelope; a corrupt count field can never cause
/// a large allocation (the byte bound kMaxFrameBytes binds first anyway).
inline constexpr std::size_t kMaxFramesPerEnvelope = 256;

/// A borrowed view of one inner frame inside a decoded envelope.
struct FrameView {
  const std::uint8_t* data{nullptr};
  std::size_t len{0};
};

/// True when the datagram starts with the envelope magic — the receive-path
/// dispatch between batched and single-frame datagrams.
[[nodiscard]] bool is_envelope(const std::uint8_t* data, std::size_t len);

/// Packs \p frames (each a complete encode_message frame) into one
/// envelope. Returns false (and sets \p error) when the batch is empty,
/// exceeds kMaxFramesPerEnvelope, or would not fit kMaxFrameBytes.
bool encode_envelope(const std::vector<std::vector<std::uint8_t>>& frames,
                     std::vector<std::uint8_t>* out,
                     std::string* error = nullptr);

/// Unpacks an envelope into borrowed views (valid while \p data lives).
/// Rejects — never crashes on — bad magic/version/flags, truncation at any
/// byte, bit flips (CRC), count or length lies, and trailing garbage.
/// Inner frames are NOT validated here; feed each view to decode_message.
std::optional<std::vector<FrameView>> decode_envelope(
    const std::uint8_t* data, std::size_t len, std::string* error = nullptr);

}  // namespace ecfd::wire
