#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/message.hpp"

/// \file codec.hpp
/// Versioned, endian-stable binary framing for Message — the wire format of
/// the real-network transport (transport/socket_env.hpp).
///
/// Design:
///  * one datagram = one frame; every multi-byte integer is little-endian
///    byte-by-byte (buffer.hpp), so frames are identical across hosts;
///  * a frame starts with magic + version, ends with a CRC-32 of everything
///    before it; decode rejects bad magic, unknown versions, truncation,
///    trailing garbage, length mismatches and checksum failures — it never
///    crashes or reads out of bounds on corrupt input (fuzzed in
///    tests/test_wire_codec.cpp);
///  * payloads are tagged with a PayloadKind drawn from a closed registry of
///    the body types the protocols in this library actually send (mirrors
///    the closed protocol-id registry in net/protocol_ids.hpp). Every typed
///    payload a protocol passes to Env::send must have a kind here — the
///    codec is the one place that knows how to flatten them;
///  * decoded labels are interned so Message::label keeps its
///    static-lifetime `const char*` contract.

namespace ecfd::wire {

/// Frame-format constants (bump kVersion on any layout change).
inline constexpr std::uint16_t kMagic = 0xECFD;
inline constexpr std::uint8_t kVersion = 1;

/// Frame flag bits (byte 3 of the header). A set bit changes the layout
/// right after the flags byte, so unknown bits are rejected — a v1 decoder
/// without this table cannot skip fields it does not know the width of.
/// kFlagCausalSeq inserts a u64 per-sender send sequence number used by
/// ecfd_trace to stitch true happens-before send->deliver edges across
/// process traces; transports only set it while a recorder is attached, so
/// untraced runs emit byte-identical legacy frames.
inline constexpr std::uint8_t kFlagCausalSeq = 0x01;
inline constexpr std::uint8_t kKnownFlags = kFlagCausalSeq;

/// Hard bounds enforced by decode: anything larger is rejected, so a
/// corrupt length field can never cause a huge allocation.
inline constexpr std::size_t kMaxFrameBytes = 64 * 1024;
inline constexpr std::size_t kMaxLabelBytes = 64;
inline constexpr std::uint32_t kMaxElements = 1u << 16;  ///< vector/set caps
inline constexpr int kMaxUniverse = 1 << 16;             ///< max ProcessSet n

/// Wire tags for every payload type protocols send. Values are part of the
/// wire format — never renumber, only append.
enum class PayloadKind : std::uint16_t {
  kNone = 0,        ///< Message::make_empty
  kProcessSet = 1,  ///< c_to_p list, efficient_p leader list, w_to_s suspects
  kU64Vector = 2,   ///< stable_leader counters, omega_from_s count rows
  kRingBody = 3,    ///< fd/ring_fd QUERY/REPLY circulated state
  kEstimate = 4,    ///< consensus::EstimateBody
  kPropose = 5,     ///< consensus::ProposeBody
  kRoundOnly = 6,   ///< consensus::RoundOnly (announce/null/ack/nack)
  kDecide = 7,      ///< consensus::DecideBody (usually nested in kRbEnvelope)
  kRbEnvelope = 8,  ///< broadcast::RbEnvelope (carries a nested payload)
  kI64 = 9,         ///< plain std::int64_t (application values over RB)
  kKvRequest = 10,  ///< kv::Request (client -> server envelope)
  kKvReply = 11,    ///< kv::Reply (server -> client envelope)
  kKvBatch = 12,    ///< kv::BatchBody (replicated command batch, over RB)
  kKvSnapshot = 13, ///< kv::SnapshotChunk (store snapshot transfer)
};

/// Encodes \p m into a self-contained frame. Returns false (and sets
/// \p error when non-null) if the payload type is not in the registry.
/// \p causal_seq, when nonzero, sets kFlagCausalSeq and embeds the
/// sender's send sequence number (sequences start at 1; 0 = untagged).
bool encode_message(const Message& m, std::vector<std::uint8_t>* out,
                    std::string* error = nullptr,
                    std::uint64_t causal_seq = 0);

/// Decodes one frame. Returns std::nullopt (and sets \p error when
/// non-null) on any malformed input; never throws, never reads out of
/// bounds, never allocates more than the bounds above allow. When
/// \p causal_seq is non-null it receives the frame's embedded causal
/// sequence number, or 0 if the frame carries none.
std::optional<Message> decode_message(const std::uint8_t* data,
                                      std::size_t len,
                                      std::string* error = nullptr,
                                      std::uint64_t* causal_seq = nullptr);

inline std::optional<Message> decode_message(
    const std::vector<std::uint8_t>& frame, std::string* error = nullptr,
    std::uint64_t* causal_seq = nullptr) {
  return decode_message(frame.data(), frame.size(), error, causal_seq);
}

}  // namespace ecfd::wire
