#include "wire/codec.hpp"

#include <memory>
#include <mutex>
#include <typeindex>
#include <unordered_set>
#include <vector>

#include "broadcast/reliable_broadcast.hpp"
#include "consensus/bodies.hpp"
#include "fd/ring_fd.hpp"
#include "kv/command.hpp"
#include "net/process_set.hpp"
#include "wire/buffer.hpp"
#include "wire/crc32.hpp"

namespace ecfd::wire {

namespace {

using broadcast::RbEnvelope;
using consensus::DecideBody;
using consensus::EstimateBody;
using consensus::ProposeBody;
using consensus::RoundOnly;
using RingBody = fd::RingFd::Body;

constexpr int kMaxNesting = 4;  ///< RbEnvelope payloads nest one level deep

bool set_error(std::string* error, const char* reason) {
  if (error) *error = reason;
  return false;
}

/// Message::label is a `const char*` that protocols treat as static; a
/// decoded label comes off the wire, so it is interned here once and the
/// pooled c_str handed out forever after.
const char* intern_label(const std::string& s) {
  static std::mutex mu;
  static std::unordered_set<std::string> pool;
  std::lock_guard<std::mutex> lock(mu);
  return pool.insert(s).first->c_str();
}

// --- payload encoders -----------------------------------------------------

void encode_process_set(const ProcessSet& s, WireWriter& w) {
  w.i32(s.universe_size());
  const auto members = s.members();
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (const ProcessId p : members) w.i32(p);
}

void encode_u64_vector(const std::vector<std::uint64_t>& v, WireWriter& w) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const std::uint64_t x : v) w.u64(x);
}

// --- kv payloads ----------------------------------------------------------
//
// One shared shape for client Ops and replicated Cmds (an op plus its
// session), so request decode and batch decode enforce identical bounds.

void encode_kv_op(kv::OpKind op, std::uint64_t seq, const std::string& key,
                  const std::string& value, const std::string& expected,
                  WireWriter& w) {
  w.u8(static_cast<std::uint8_t>(op));
  w.u64(seq);
  w.str(key);
  w.str(value);
  w.str(expected);
}

bool decode_kv_op(WireReader& r, kv::OpKind* op, std::uint64_t* seq,
                  std::string* key, std::string* value, std::string* expected,
                  std::string* error) {
  const std::uint8_t raw = r.u8();
  if (raw > static_cast<std::uint8_t>(kv::OpKind::kCloseSession)) {
    return set_error(error, "bad kv op kind");
  }
  *op = static_cast<kv::OpKind>(raw);
  *seq = r.u64();
  *key = r.str();
  *value = r.str();
  *expected = r.str();
  if (!r.ok() || key->size() > kv::kMaxKeyBytes ||
      value->size() > kv::kMaxValueBytes ||
      expected->size() > kv::kMaxValueBytes) {
    return set_error(error, "bad kv op");
  }
  return true;
}

void encode_kv_request(const kv::Request& b, WireWriter& w) {
  w.u8(b.version);
  w.u8(b.flags);
  w.u64(b.session);
  w.u64(b.tag);
  w.u32(static_cast<std::uint32_t>(b.ops.size()));
  for (const kv::Op& op : b.ops) {
    encode_kv_op(op.op, op.seq, op.key, op.value, op.expected, w);
  }
}

bool decode_kv_request(WireReader& r, kv::Request* out, std::string* error) {
  out->version = r.u8();
  out->flags = r.u8();
  out->session = r.u64();
  out->tag = r.u64();
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kv::kMaxOpsPerRequest) {
    return set_error(error, "bad kv request header");
  }
  out->ops.clear();
  out->ops.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    kv::Op op;
    if (!decode_kv_op(r, &op.op, &op.seq, &op.key, &op.value, &op.expected,
                      error)) {
      return false;
    }
    out->ops.push_back(std::move(op));
  }
  return true;
}

void encode_kv_reply(const kv::Reply& b, WireWriter& w) {
  w.u64(b.session);
  w.u64(b.tag);
  w.u8(static_cast<std::uint8_t>(b.status));
  w.i32(b.leader_hint);
  w.i32(b.applied_slot);
  w.u32(static_cast<std::uint32_t>(b.results.size()));
  for (const kv::OpResult& res : b.results) {
    w.u8(static_cast<std::uint8_t>(res.status));
    w.str(res.value);
  }
}

bool decode_kv_reply(WireReader& r, kv::Reply* out, std::string* error) {
  out->session = r.u64();
  out->tag = r.u64();
  const std::uint8_t status = r.u8();
  out->leader_hint = r.i32();
  out->applied_slot = r.i32();
  const std::uint32_t count = r.u32();
  if (!r.ok() || status > static_cast<std::uint8_t>(kv::Status::kTimeout) ||
      count > kv::kMaxOpsPerRequest) {
    return set_error(error, "bad kv reply header");
  }
  out->status = static_cast<kv::Status>(status);
  out->results.clear();
  out->results.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    kv::OpResult res;
    const std::uint8_t rs = r.u8();
    res.value = r.str();
    if (!r.ok() || rs > static_cast<std::uint8_t>(kv::Status::kTimeout) ||
        res.value.size() > kv::kMaxValueBytes) {
      return set_error(error, "bad kv reply result");
    }
    res.status = static_cast<kv::Status>(rs);
    out->results.push_back(std::move(res));
  }
  return true;
}

void encode_kv_batch(const kv::BatchBody& b, WireWriter& w) {
  w.i64(b.id);
  w.u32(static_cast<std::uint32_t>(b.cmds.size()));
  for (const kv::Cmd& c : b.cmds) {
    w.u64(c.session);
    encode_kv_op(c.op, c.seq, c.key, c.value, c.expected, w);
  }
}

bool decode_kv_batch(WireReader& r, kv::BatchBody* out, std::string* error) {
  out->id = r.i64();
  const std::uint32_t count = r.u32();
  if (!r.ok() || out->id <= 0 || count > kv::kMaxOpsPerBatch) {
    return set_error(error, "bad kv batch header");
  }
  out->cmds.clear();
  out->cmds.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    kv::Cmd c;
    c.session = r.u64();
    if (!r.ok()) return set_error(error, "truncated kv batch");
    if (!decode_kv_op(r, &c.op, &c.seq, &c.key, &c.value, &c.expected,
                      error)) {
      return false;
    }
    out->cmds.push_back(std::move(c));
  }
  return true;
}

void encode_kv_snapshot(const kv::SnapshotChunk& b, WireWriter& w) {
  w.u64(b.snap_id);
  w.i32(b.upto_slot);
  w.u32(b.index);
  w.u32(b.total);
  w.u32(static_cast<std::uint32_t>(b.bytes.size()));
  w.bytes(b.bytes.data(), b.bytes.size());
}

bool decode_kv_snapshot(WireReader& r, kv::SnapshotChunk* out,
                        std::string* error) {
  out->snap_id = r.u64();
  out->upto_slot = r.i32();
  out->index = r.u32();
  out->total = r.u32();
  const std::uint32_t len = r.u32();
  if (!r.ok() || out->upto_slot < 0 || out->total == 0 ||
      out->index >= out->total || len > kv::kMaxSnapshotChunkBytes ||
      len > r.remaining()) {
    return set_error(error, "bad kv snapshot chunk");
  }
  out->bytes.resize(len);
  for (std::uint32_t i = 0; i < len; ++i) out->bytes[i] = r.u8();
  return r.ok();
}

/// Flattens one typed payload; returns false for types not in the registry.
bool encode_payload(const std::type_info* type, const void* body,
                    PayloadKind* kind, WireWriter& w, std::string* error) {
  if (type == nullptr || body == nullptr) {
    *kind = PayloadKind::kNone;
    return true;
  }
  const std::type_index t(*type);
  if (t == std::type_index(typeid(ProcessSet))) {
    *kind = PayloadKind::kProcessSet;
    encode_process_set(*static_cast<const ProcessSet*>(body), w);
  } else if (t == std::type_index(typeid(std::vector<std::uint64_t>))) {
    *kind = PayloadKind::kU64Vector;
    encode_u64_vector(*static_cast<const std::vector<std::uint64_t>*>(body), w);
  } else if (t == std::type_index(typeid(RingBody))) {
    *kind = PayloadKind::kRingBody;
    const auto& b = *static_cast<const RingBody*>(body);
    encode_u64_vector(b.seq, w);
    encode_process_set(b.susp, w);
  } else if (t == std::type_index(typeid(EstimateBody))) {
    *kind = PayloadKind::kEstimate;
    const auto& b = *static_cast<const EstimateBody*>(body);
    w.i32(b.round);
    w.i64(b.value);
    w.i32(b.ts);
  } else if (t == std::type_index(typeid(ProposeBody))) {
    *kind = PayloadKind::kPropose;
    const auto& b = *static_cast<const ProposeBody*>(body);
    w.i32(b.round);
    w.i64(b.value);
  } else if (t == std::type_index(typeid(RoundOnly))) {
    *kind = PayloadKind::kRoundOnly;
    w.i32(static_cast<const RoundOnly*>(body)->round);
  } else if (t == std::type_index(typeid(DecideBody))) {
    *kind = PayloadKind::kDecide;
    const auto& b = *static_cast<const DecideBody*>(body);
    w.i32(b.round);
    w.i64(b.value);
  } else if (t == std::type_index(typeid(std::int64_t))) {
    *kind = PayloadKind::kI64;
    w.i64(*static_cast<const std::int64_t*>(body));
  } else if (t == std::type_index(typeid(kv::Request))) {
    *kind = PayloadKind::kKvRequest;
    encode_kv_request(*static_cast<const kv::Request*>(body), w);
  } else if (t == std::type_index(typeid(kv::Reply))) {
    *kind = PayloadKind::kKvReply;
    encode_kv_reply(*static_cast<const kv::Reply*>(body), w);
  } else if (t == std::type_index(typeid(kv::BatchBody))) {
    *kind = PayloadKind::kKvBatch;
    encode_kv_batch(*static_cast<const kv::BatchBody*>(body), w);
  } else if (t == std::type_index(typeid(kv::SnapshotChunk))) {
    *kind = PayloadKind::kKvSnapshot;
    encode_kv_snapshot(*static_cast<const kv::SnapshotChunk*>(body), w);
  } else if (t == std::type_index(typeid(RbEnvelope))) {
    *kind = PayloadKind::kRbEnvelope;
    const auto& e = *static_cast<const RbEnvelope*>(body);
    w.i32(e.origin);
    w.u64(e.seq);
    w.i32(e.tag);
    PayloadKind inner{};
    WireWriter nested;
    if (!encode_payload(e.body_type, e.body.get(), &inner, nested, error)) {
      return false;
    }
    w.u16(static_cast<std::uint16_t>(inner));
    w.u32(static_cast<std::uint32_t>(nested.size()));
    w.bytes(nested.data().data(), nested.size());
  } else {
    return set_error(error, "payload type not in wire registry");
  }
  return true;
}

// --- payload decoders -----------------------------------------------------

/// Decoded payload: an owning pointer plus the typeid Message::as<T> checks.
struct DecodedPayload {
  std::shared_ptr<const void> body;
  const std::type_info* type{nullptr};
};

bool decode_payload(PayloadKind kind, WireReader& r, int depth,
                    DecodedPayload* out, std::string* error);

bool decode_process_set(WireReader& r, ProcessSet* out, std::string* error) {
  const std::int32_t n = r.i32();
  const std::uint32_t count = r.u32();
  if (!r.ok() || n < 0 || n > kMaxUniverse || count > kMaxElements ||
      count > static_cast<std::uint32_t>(n)) {
    return set_error(error, "bad process set header");
  }
  ProcessSet s(n);
  ProcessId prev = kNoProcess;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::int32_t p = r.i32();
    if (!r.ok() || p < 0 || p >= n || p <= prev) {
      return set_error(error, "bad process set member");
    }
    s.add(p);
    prev = p;
  }
  *out = std::move(s);
  return true;
}

bool decode_u64_vector(WireReader& r, std::vector<std::uint64_t>* out,
                       std::string* error) {
  const std::uint32_t len = r.u32();
  // A u64 element needs 8 bytes on the wire, so a huge length field on a
  // short frame is caught here before any allocation.
  if (!r.ok() || len > kMaxElements || r.remaining() < 8u * len) {
    return set_error(error, "bad u64 vector length");
  }
  out->clear();
  out->reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) out->push_back(r.u64());
  return r.ok();
}

template <class T>
void emplace_payload(DecodedPayload* out, T body) {
  out->body = std::make_shared<const T>(std::move(body));
  out->type = &typeid(T);
}

bool decode_payload(PayloadKind kind, WireReader& r, int depth,
                    DecodedPayload* out, std::string* error) {
  if (depth > kMaxNesting) return set_error(error, "payload nesting too deep");
  switch (kind) {
    case PayloadKind::kNone:
      out->body = nullptr;
      out->type = nullptr;
      return true;
    case PayloadKind::kProcessSet: {
      ProcessSet s;
      if (!decode_process_set(r, &s, error)) return false;
      emplace_payload(out, std::move(s));
      return true;
    }
    case PayloadKind::kU64Vector: {
      std::vector<std::uint64_t> v;
      if (!decode_u64_vector(r, &v, error)) return false;
      emplace_payload(out, std::move(v));
      return true;
    }
    case PayloadKind::kRingBody: {
      RingBody b;
      if (!decode_u64_vector(r, &b.seq, error)) return false;
      if (!decode_process_set(r, &b.susp, error)) return false;
      emplace_payload(out, std::move(b));
      return true;
    }
    case PayloadKind::kEstimate: {
      EstimateBody b;
      b.round = r.i32();
      b.value = r.i64();
      b.ts = r.i32();
      if (!r.ok()) return set_error(error, "truncated estimate body");
      emplace_payload(out, b);
      return true;
    }
    case PayloadKind::kPropose: {
      ProposeBody b;
      b.round = r.i32();
      b.value = r.i64();
      if (!r.ok()) return set_error(error, "truncated propose body");
      emplace_payload(out, b);
      return true;
    }
    case PayloadKind::kRoundOnly: {
      RoundOnly b;
      b.round = r.i32();
      if (!r.ok()) return set_error(error, "truncated round body");
      emplace_payload(out, b);
      return true;
    }
    case PayloadKind::kDecide: {
      DecideBody b;
      b.round = r.i32();
      b.value = r.i64();
      if (!r.ok()) return set_error(error, "truncated decide body");
      emplace_payload(out, b);
      return true;
    }
    case PayloadKind::kI64: {
      const std::int64_t v = r.i64();
      if (!r.ok()) return set_error(error, "truncated i64 body");
      emplace_payload(out, v);
      return true;
    }
    case PayloadKind::kKvRequest: {
      kv::Request b;
      if (!decode_kv_request(r, &b, error)) return false;
      emplace_payload(out, std::move(b));
      return true;
    }
    case PayloadKind::kKvReply: {
      kv::Reply b;
      if (!decode_kv_reply(r, &b, error)) return false;
      emplace_payload(out, std::move(b));
      return true;
    }
    case PayloadKind::kKvBatch: {
      kv::BatchBody b;
      if (!decode_kv_batch(r, &b, error)) return false;
      emplace_payload(out, std::move(b));
      return true;
    }
    case PayloadKind::kKvSnapshot: {
      kv::SnapshotChunk b;
      if (!decode_kv_snapshot(r, &b, error)) return false;
      emplace_payload(out, std::move(b));
      return true;
    }
    case PayloadKind::kRbEnvelope: {
      RbEnvelope e;
      e.origin = r.i32();
      e.seq = r.u64();
      e.tag = r.i32();
      const auto inner = static_cast<PayloadKind>(r.u16());
      const std::uint32_t inner_len = r.u32();
      if (!r.ok() || inner_len > r.remaining()) {
        return set_error(error, "truncated rb envelope");
      }
      DecodedPayload nested;
      if (!decode_payload(inner, r, depth + 1, &nested, error)) return false;
      e.body = std::move(nested.body);
      e.body_type = nested.type;
      emplace_payload(out, std::move(e));
      return true;
    }
  }
  return set_error(error, "unknown payload kind");
}

}  // namespace

bool encode_message(const Message& m, std::vector<std::uint8_t>* out,
                    std::string* error, std::uint64_t causal_seq) {
  WireWriter w;
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(causal_seq != 0 ? kFlagCausalSeq : 0);
  if (causal_seq != 0) w.u64(causal_seq);
  w.i32(m.src);
  w.i32(m.dst);
  w.i32(m.protocol);
  w.i32(m.type);
  std::string label(m.label == nullptr ? "" : m.label);
  if (label.size() > kMaxLabelBytes) label.resize(kMaxLabelBytes);
  w.str(label);

  WireWriter payload;
  PayloadKind kind{};
  if (!encode_payload(m.payload_type, m.payload.get(), &kind, payload, error)) {
    return false;
  }
  w.u16(static_cast<std::uint16_t>(kind));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload.data().data(), payload.size());

  w.u32(crc32(w.data().data(), w.size()));
  if (w.size() > kMaxFrameBytes) {
    return set_error(error, "frame exceeds kMaxFrameBytes");
  }
  *out = w.take();
  return true;
}

std::optional<Message> decode_message(const std::uint8_t* data,
                                      std::size_t len, std::string* error,
                                      std::uint64_t* causal_seq) {
  const auto fail = [&](const char* reason) -> std::optional<Message> {
    set_error(error, reason);
    return std::nullopt;
  };
  if (causal_seq != nullptr) *causal_seq = 0;

  if (len < 4 || len > kMaxFrameBytes) return fail("bad frame size");
  if (crc32(data, len - 4) !=
      (static_cast<std::uint32_t>(data[len - 4]) |
       static_cast<std::uint32_t>(data[len - 3]) << 8 |
       static_cast<std::uint32_t>(data[len - 2]) << 16 |
       static_cast<std::uint32_t>(data[len - 1]) << 24)) {
    return fail("checksum mismatch");
  }

  WireReader r(data, len - 4);  // the checksum itself is not re-read
  if (r.u16() != kMagic) return fail("bad magic");
  if (r.u8() != kVersion) return fail("unsupported version");
  const std::uint8_t flags = r.u8();
  if ((flags & ~kKnownFlags) != 0) return fail("nonzero reserved flags");
  if ((flags & kFlagCausalSeq) != 0) {
    const std::uint64_t seq = r.u64();
    if (!r.ok() || seq == 0) return fail("bad causal sequence");
    if (causal_seq != nullptr) *causal_seq = seq;
  }

  Message m;
  m.src = r.i32();
  m.dst = r.i32();
  m.protocol = r.i32();
  m.type = r.i32();
  if (!r.ok() || m.src < kNoProcess || m.src >= kMaxUniverse ||
      m.dst < kNoProcess || m.dst >= kMaxUniverse) {
    return fail("bad frame header");
  }

  const std::string label = r.str();
  if (!r.ok() || label.size() > kMaxLabelBytes) return fail("bad label");
  m.label = intern_label(label);

  const auto kind = static_cast<PayloadKind>(r.u16());
  const std::uint32_t payload_len = r.u32();
  if (!r.ok() || payload_len != r.remaining()) {
    return fail("payload length mismatch");
  }
  DecodedPayload payload;
  std::string payload_error;
  if (!decode_payload(kind, r, 0, &payload, &payload_error)) {
    set_error(error, payload_error.empty() ? "bad payload"
                                           : payload_error.c_str());
    return std::nullopt;
  }
  if (!r.ok() || !r.exhausted()) return fail("trailing payload bytes");
  m.payload = std::move(payload.body);
  m.payload_type = payload.type;
  return m;
}

}  // namespace ecfd::wire
