#include "wire/codec.hpp"

#include <memory>
#include <mutex>
#include <typeindex>
#include <unordered_set>
#include <vector>

#include "broadcast/reliable_broadcast.hpp"
#include "consensus/bodies.hpp"
#include "fd/ring_fd.hpp"
#include "net/process_set.hpp"
#include "wire/buffer.hpp"
#include "wire/crc32.hpp"

namespace ecfd::wire {

namespace {

using broadcast::RbEnvelope;
using consensus::DecideBody;
using consensus::EstimateBody;
using consensus::ProposeBody;
using consensus::RoundOnly;
using RingBody = fd::RingFd::Body;

constexpr int kMaxNesting = 4;  ///< RbEnvelope payloads nest one level deep

bool set_error(std::string* error, const char* reason) {
  if (error) *error = reason;
  return false;
}

/// Message::label is a `const char*` that protocols treat as static; a
/// decoded label comes off the wire, so it is interned here once and the
/// pooled c_str handed out forever after.
const char* intern_label(const std::string& s) {
  static std::mutex mu;
  static std::unordered_set<std::string> pool;
  std::lock_guard<std::mutex> lock(mu);
  return pool.insert(s).first->c_str();
}

// --- payload encoders -----------------------------------------------------

void encode_process_set(const ProcessSet& s, WireWriter& w) {
  w.i32(s.universe_size());
  const auto members = s.members();
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (const ProcessId p : members) w.i32(p);
}

void encode_u64_vector(const std::vector<std::uint64_t>& v, WireWriter& w) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const std::uint64_t x : v) w.u64(x);
}

/// Flattens one typed payload; returns false for types not in the registry.
bool encode_payload(const std::type_info* type, const void* body,
                    PayloadKind* kind, WireWriter& w, std::string* error) {
  if (type == nullptr || body == nullptr) {
    *kind = PayloadKind::kNone;
    return true;
  }
  const std::type_index t(*type);
  if (t == std::type_index(typeid(ProcessSet))) {
    *kind = PayloadKind::kProcessSet;
    encode_process_set(*static_cast<const ProcessSet*>(body), w);
  } else if (t == std::type_index(typeid(std::vector<std::uint64_t>))) {
    *kind = PayloadKind::kU64Vector;
    encode_u64_vector(*static_cast<const std::vector<std::uint64_t>*>(body), w);
  } else if (t == std::type_index(typeid(RingBody))) {
    *kind = PayloadKind::kRingBody;
    const auto& b = *static_cast<const RingBody*>(body);
    encode_u64_vector(b.seq, w);
    encode_process_set(b.susp, w);
  } else if (t == std::type_index(typeid(EstimateBody))) {
    *kind = PayloadKind::kEstimate;
    const auto& b = *static_cast<const EstimateBody*>(body);
    w.i32(b.round);
    w.i64(b.value);
    w.i32(b.ts);
  } else if (t == std::type_index(typeid(ProposeBody))) {
    *kind = PayloadKind::kPropose;
    const auto& b = *static_cast<const ProposeBody*>(body);
    w.i32(b.round);
    w.i64(b.value);
  } else if (t == std::type_index(typeid(RoundOnly))) {
    *kind = PayloadKind::kRoundOnly;
    w.i32(static_cast<const RoundOnly*>(body)->round);
  } else if (t == std::type_index(typeid(DecideBody))) {
    *kind = PayloadKind::kDecide;
    const auto& b = *static_cast<const DecideBody*>(body);
    w.i32(b.round);
    w.i64(b.value);
  } else if (t == std::type_index(typeid(std::int64_t))) {
    *kind = PayloadKind::kI64;
    w.i64(*static_cast<const std::int64_t*>(body));
  } else if (t == std::type_index(typeid(RbEnvelope))) {
    *kind = PayloadKind::kRbEnvelope;
    const auto& e = *static_cast<const RbEnvelope*>(body);
    w.i32(e.origin);
    w.u64(e.seq);
    w.i32(e.tag);
    PayloadKind inner{};
    WireWriter nested;
    if (!encode_payload(e.body_type, e.body.get(), &inner, nested, error)) {
      return false;
    }
    w.u16(static_cast<std::uint16_t>(inner));
    w.u32(static_cast<std::uint32_t>(nested.size()));
    w.bytes(nested.data().data(), nested.size());
  } else {
    return set_error(error, "payload type not in wire registry");
  }
  return true;
}

// --- payload decoders -----------------------------------------------------

/// Decoded payload: an owning pointer plus the typeid Message::as<T> checks.
struct DecodedPayload {
  std::shared_ptr<const void> body;
  const std::type_info* type{nullptr};
};

bool decode_payload(PayloadKind kind, WireReader& r, int depth,
                    DecodedPayload* out, std::string* error);

bool decode_process_set(WireReader& r, ProcessSet* out, std::string* error) {
  const std::int32_t n = r.i32();
  const std::uint32_t count = r.u32();
  if (!r.ok() || n < 0 || n > kMaxUniverse || count > kMaxElements ||
      count > static_cast<std::uint32_t>(n)) {
    return set_error(error, "bad process set header");
  }
  ProcessSet s(n);
  ProcessId prev = kNoProcess;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::int32_t p = r.i32();
    if (!r.ok() || p < 0 || p >= n || p <= prev) {
      return set_error(error, "bad process set member");
    }
    s.add(p);
    prev = p;
  }
  *out = std::move(s);
  return true;
}

bool decode_u64_vector(WireReader& r, std::vector<std::uint64_t>* out,
                       std::string* error) {
  const std::uint32_t len = r.u32();
  // A u64 element needs 8 bytes on the wire, so a huge length field on a
  // short frame is caught here before any allocation.
  if (!r.ok() || len > kMaxElements || r.remaining() < 8u * len) {
    return set_error(error, "bad u64 vector length");
  }
  out->clear();
  out->reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) out->push_back(r.u64());
  return r.ok();
}

template <class T>
void emplace_payload(DecodedPayload* out, T body) {
  out->body = std::make_shared<const T>(std::move(body));
  out->type = &typeid(T);
}

bool decode_payload(PayloadKind kind, WireReader& r, int depth,
                    DecodedPayload* out, std::string* error) {
  if (depth > kMaxNesting) return set_error(error, "payload nesting too deep");
  switch (kind) {
    case PayloadKind::kNone:
      out->body = nullptr;
      out->type = nullptr;
      return true;
    case PayloadKind::kProcessSet: {
      ProcessSet s;
      if (!decode_process_set(r, &s, error)) return false;
      emplace_payload(out, std::move(s));
      return true;
    }
    case PayloadKind::kU64Vector: {
      std::vector<std::uint64_t> v;
      if (!decode_u64_vector(r, &v, error)) return false;
      emplace_payload(out, std::move(v));
      return true;
    }
    case PayloadKind::kRingBody: {
      RingBody b;
      if (!decode_u64_vector(r, &b.seq, error)) return false;
      if (!decode_process_set(r, &b.susp, error)) return false;
      emplace_payload(out, std::move(b));
      return true;
    }
    case PayloadKind::kEstimate: {
      EstimateBody b;
      b.round = r.i32();
      b.value = r.i64();
      b.ts = r.i32();
      if (!r.ok()) return set_error(error, "truncated estimate body");
      emplace_payload(out, b);
      return true;
    }
    case PayloadKind::kPropose: {
      ProposeBody b;
      b.round = r.i32();
      b.value = r.i64();
      if (!r.ok()) return set_error(error, "truncated propose body");
      emplace_payload(out, b);
      return true;
    }
    case PayloadKind::kRoundOnly: {
      RoundOnly b;
      b.round = r.i32();
      if (!r.ok()) return set_error(error, "truncated round body");
      emplace_payload(out, b);
      return true;
    }
    case PayloadKind::kDecide: {
      DecideBody b;
      b.round = r.i32();
      b.value = r.i64();
      if (!r.ok()) return set_error(error, "truncated decide body");
      emplace_payload(out, b);
      return true;
    }
    case PayloadKind::kI64: {
      const std::int64_t v = r.i64();
      if (!r.ok()) return set_error(error, "truncated i64 body");
      emplace_payload(out, v);
      return true;
    }
    case PayloadKind::kRbEnvelope: {
      RbEnvelope e;
      e.origin = r.i32();
      e.seq = r.u64();
      e.tag = r.i32();
      const auto inner = static_cast<PayloadKind>(r.u16());
      const std::uint32_t inner_len = r.u32();
      if (!r.ok() || inner_len > r.remaining()) {
        return set_error(error, "truncated rb envelope");
      }
      DecodedPayload nested;
      if (!decode_payload(inner, r, depth + 1, &nested, error)) return false;
      e.body = std::move(nested.body);
      e.body_type = nested.type;
      emplace_payload(out, std::move(e));
      return true;
    }
  }
  return set_error(error, "unknown payload kind");
}

}  // namespace

bool encode_message(const Message& m, std::vector<std::uint8_t>* out,
                    std::string* error) {
  WireWriter w;
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(0);  // flags, reserved
  w.i32(m.src);
  w.i32(m.dst);
  w.i32(m.protocol);
  w.i32(m.type);
  std::string label(m.label == nullptr ? "" : m.label);
  if (label.size() > kMaxLabelBytes) label.resize(kMaxLabelBytes);
  w.str(label);

  WireWriter payload;
  PayloadKind kind{};
  if (!encode_payload(m.payload_type, m.payload.get(), &kind, payload, error)) {
    return false;
  }
  w.u16(static_cast<std::uint16_t>(kind));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload.data().data(), payload.size());

  w.u32(crc32(w.data().data(), w.size()));
  if (w.size() > kMaxFrameBytes) {
    return set_error(error, "frame exceeds kMaxFrameBytes");
  }
  *out = w.take();
  return true;
}

std::optional<Message> decode_message(const std::uint8_t* data,
                                      std::size_t len, std::string* error) {
  const auto fail = [&](const char* reason) -> std::optional<Message> {
    set_error(error, reason);
    return std::nullopt;
  };

  if (len < 4 || len > kMaxFrameBytes) return fail("bad frame size");
  if (crc32(data, len - 4) !=
      (static_cast<std::uint32_t>(data[len - 4]) |
       static_cast<std::uint32_t>(data[len - 3]) << 8 |
       static_cast<std::uint32_t>(data[len - 2]) << 16 |
       static_cast<std::uint32_t>(data[len - 1]) << 24)) {
    return fail("checksum mismatch");
  }

  WireReader r(data, len - 4);  // the checksum itself is not re-read
  if (r.u16() != kMagic) return fail("bad magic");
  if (r.u8() != kVersion) return fail("unsupported version");
  if (r.u8() != 0) return fail("nonzero reserved flags");

  Message m;
  m.src = r.i32();
  m.dst = r.i32();
  m.protocol = r.i32();
  m.type = r.i32();
  if (!r.ok() || m.src < kNoProcess || m.src >= kMaxUniverse ||
      m.dst < kNoProcess || m.dst >= kMaxUniverse) {
    return fail("bad frame header");
  }

  const std::string label = r.str();
  if (!r.ok() || label.size() > kMaxLabelBytes) return fail("bad label");
  m.label = intern_label(label);

  const auto kind = static_cast<PayloadKind>(r.u16());
  const std::uint32_t payload_len = r.u32();
  if (!r.ok() || payload_len != r.remaining()) {
    return fail("payload length mismatch");
  }
  DecodedPayload payload;
  std::string payload_error;
  if (!decode_payload(kind, r, 0, &payload, &payload_error)) {
    set_error(error, payload_error.empty() ? "bad payload"
                                           : payload_error.c_str());
    return std::nullopt;
  }
  if (!r.ok() || !r.exhausted()) return fail("trailing payload bytes");
  m.payload = std::move(payload.body);
  m.payload_type = payload.type;
  return m;
}

}  // namespace ecfd::wire
