#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

/// \file buffer.hpp
/// Endian-stable primitives for the wire format.
///
/// All multi-byte integers are encoded little-endian byte by byte, so the
/// encoding is identical on every host regardless of native endianness or
/// struct layout. The reader is bounds-checked and *sticky-failing*: any
/// out-of-range read sets the fail flag and returns zero values, so decoders
/// can parse optimistically and check `ok()` once — truncated or corrupt
/// frames can never read out of bounds (the property the fuzz tests pin).

namespace ecfd::wire {

/// Appends little-endian primitives to a byte vector.
class WireWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }

  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }

  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  /// Length-prefixed (u16) byte string; truncates past 65535 bytes.
  void str(const std::string& s) {
    const auto len = static_cast<std::uint16_t>(
        s.size() > 0xffff ? 0xffff : s.size());
    u16(len);
    out_.insert(out_.end(), s.begin(), s.begin() + len);
  }

  void bytes(const std::uint8_t* p, std::size_t len) {
    out_.insert(out_.end(), p, p + len);
  }

  [[nodiscard]] std::size_t size() const { return out_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }

  /// Patches a previously written u32 in place (for back-filled lengths).
  void patch_u32(std::size_t at, std::uint32_t v) {
    out_[at] = static_cast<std::uint8_t>(v);
    out_[at + 1] = static_cast<std::uint8_t>(v >> 8);
    out_[at + 2] = static_cast<std::uint8_t>(v >> 16);
    out_[at + 3] = static_cast<std::uint8_t>(v >> 24);
  }

 private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked little-endian reader over a borrowed byte range.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return len_ - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == len_; }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return data_[pos_++];
  }

  std::uint16_t u16() {
    if (!need(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                            static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 8;
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  std::string str() {
    const std::uint16_t len = u16();
    if (!need(len)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }

  /// Advances past \p k bytes without interpreting them (bounds-checked,
  /// sticky-failing like every other read).
  void skip(std::size_t k) {
    if (!need(k)) return;
    pos_ += k;
  }

  /// Declares failure from the decoder (semantic error, e.g. a bad tag).
  void fail() { ok_ = false; }

 private:
  bool need(std::size_t k) {
    if (!ok_ || len_ - pos_ < k) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_{0};
  bool ok_{true};
};

}  // namespace ecfd::wire
