file(REMOVE_RECURSE
  "CMakeFiles/ecfd_sim.dir/ecfd_sim.cpp.o"
  "CMakeFiles/ecfd_sim.dir/ecfd_sim.cpp.o.d"
  "ecfd_sim"
  "ecfd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecfd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
