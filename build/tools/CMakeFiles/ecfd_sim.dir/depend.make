# Empty dependencies file for ecfd_sim.
# This may be replaced when dependencies are built.
