# Empty dependencies file for test_c_to_p.
# This may be replaced when dependencies are built.
