file(REMOVE_RECURSE
  "CMakeFiles/test_c_to_p.dir/test_c_to_p.cpp.o"
  "CMakeFiles/test_c_to_p.dir/test_c_to_p.cpp.o.d"
  "test_c_to_p"
  "test_c_to_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_c_to_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
