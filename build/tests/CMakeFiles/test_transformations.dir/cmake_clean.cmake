file(REMOVE_RECURSE
  "CMakeFiles/test_transformations.dir/test_transformations.cpp.o"
  "CMakeFiles/test_transformations.dir/test_transformations.cpp.o.d"
  "test_transformations"
  "test_transformations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transformations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
