file(REMOVE_RECURSE
  "CMakeFiles/test_replicated_log.dir/test_replicated_log.cpp.o"
  "CMakeFiles/test_replicated_log.dir/test_replicated_log.cpp.o.d"
  "test_replicated_log"
  "test_replicated_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replicated_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
