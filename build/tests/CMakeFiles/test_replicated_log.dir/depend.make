# Empty dependencies file for test_replicated_log.
# This may be replaced when dependencies are built.
