file(REMOVE_RECURSE
  "CMakeFiles/test_stats_trace.dir/test_stats_trace.cpp.o"
  "CMakeFiles/test_stats_trace.dir/test_stats_trace.cpp.o.d"
  "test_stats_trace"
  "test_stats_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
