# Empty dependencies file for test_stats_trace.
# This may be replaced when dependencies are built.
