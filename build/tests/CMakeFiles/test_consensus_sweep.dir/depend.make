# Empty dependencies file for test_consensus_sweep.
# This may be replaced when dependencies are built.
