file(REMOVE_RECURSE
  "CMakeFiles/test_consensus_sweep.dir/test_consensus_sweep.cpp.o"
  "CMakeFiles/test_consensus_sweep.dir/test_consensus_sweep.cpp.o.d"
  "test_consensus_sweep"
  "test_consensus_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consensus_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
