# Empty dependencies file for test_scripted_fd.
# This may be replaced when dependencies are built.
