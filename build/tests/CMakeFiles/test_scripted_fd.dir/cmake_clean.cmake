file(REMOVE_RECURSE
  "CMakeFiles/test_scripted_fd.dir/test_scripted_fd.cpp.o"
  "CMakeFiles/test_scripted_fd.dir/test_scripted_fd.cpp.o.d"
  "test_scripted_fd"
  "test_scripted_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scripted_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
