# Empty dependencies file for test_model_fuzz.
# This may be replaced when dependencies are built.
