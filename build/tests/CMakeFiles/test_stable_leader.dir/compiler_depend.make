# Empty compiler generated dependencies file for test_stable_leader.
# This may be replaced when dependencies are built.
