file(REMOVE_RECURSE
  "CMakeFiles/test_stable_leader.dir/test_stable_leader.cpp.o"
  "CMakeFiles/test_stable_leader.dir/test_stable_leader.cpp.o.d"
  "test_stable_leader"
  "test_stable_leader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stable_leader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
