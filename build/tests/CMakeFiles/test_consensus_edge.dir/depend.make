# Empty dependencies file for test_consensus_edge.
# This may be replaced when dependencies are built.
