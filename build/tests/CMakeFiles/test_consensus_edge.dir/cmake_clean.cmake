file(REMOVE_RECURSE
  "CMakeFiles/test_consensus_edge.dir/test_consensus_edge.cpp.o"
  "CMakeFiles/test_consensus_edge.dir/test_consensus_edge.cpp.o.d"
  "test_consensus_edge"
  "test_consensus_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consensus_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
