file(REMOVE_RECURSE
  "CMakeFiles/test_links.dir/test_links.cpp.o"
  "CMakeFiles/test_links.dir/test_links.cpp.o.d"
  "test_links"
  "test_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
