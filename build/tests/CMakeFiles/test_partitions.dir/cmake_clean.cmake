file(REMOVE_RECURSE
  "CMakeFiles/test_partitions.dir/test_partitions.cpp.o"
  "CMakeFiles/test_partitions.dir/test_partitions.cpp.o.d"
  "test_partitions"
  "test_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
