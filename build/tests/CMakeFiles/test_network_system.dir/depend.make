# Empty dependencies file for test_network_system.
# This may be replaced when dependencies are built.
