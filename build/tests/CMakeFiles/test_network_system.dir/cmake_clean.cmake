file(REMOVE_RECURSE
  "CMakeFiles/test_network_system.dir/test_network_system.cpp.o"
  "CMakeFiles/test_network_system.dir/test_network_system.cpp.o.d"
  "test_network_system"
  "test_network_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
