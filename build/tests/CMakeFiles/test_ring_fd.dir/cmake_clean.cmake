file(REMOVE_RECURSE
  "CMakeFiles/test_ring_fd.dir/test_ring_fd.cpp.o"
  "CMakeFiles/test_ring_fd.dir/test_ring_fd.cpp.o.d"
  "test_ring_fd"
  "test_ring_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ring_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
