# Empty compiler generated dependencies file for test_ring_fd.
# This may be replaced when dependencies are built.
