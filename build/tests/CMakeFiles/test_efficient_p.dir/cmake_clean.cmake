file(REMOVE_RECURSE
  "CMakeFiles/test_efficient_p.dir/test_efficient_p.cpp.o"
  "CMakeFiles/test_efficient_p.dir/test_efficient_p.cpp.o.d"
  "test_efficient_p"
  "test_efficient_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_efficient_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
