# Empty compiler generated dependencies file for test_efficient_p.
# This may be replaced when dependencies are built.
