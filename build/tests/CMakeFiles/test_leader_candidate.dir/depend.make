# Empty dependencies file for test_leader_candidate.
# This may be replaced when dependencies are built.
