file(REMOVE_RECURSE
  "CMakeFiles/test_leader_candidate.dir/test_leader_candidate.cpp.o"
  "CMakeFiles/test_leader_candidate.dir/test_leader_candidate.cpp.o.d"
  "test_leader_candidate"
  "test_leader_candidate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leader_candidate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
