# Empty compiler generated dependencies file for test_heartbeat_counter.
# This may be replaced when dependencies are built.
