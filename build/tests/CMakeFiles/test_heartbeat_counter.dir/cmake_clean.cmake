file(REMOVE_RECURSE
  "CMakeFiles/test_heartbeat_counter.dir/test_heartbeat_counter.cpp.o"
  "CMakeFiles/test_heartbeat_counter.dir/test_heartbeat_counter.cpp.o.d"
  "test_heartbeat_counter"
  "test_heartbeat_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heartbeat_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
