file(REMOVE_RECURSE
  "CMakeFiles/test_heartbeat_p.dir/test_heartbeat_p.cpp.o"
  "CMakeFiles/test_heartbeat_p.dir/test_heartbeat_p.cpp.o.d"
  "test_heartbeat_p"
  "test_heartbeat_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heartbeat_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
