# Empty compiler generated dependencies file for test_heartbeat_p.
# This may be replaced when dependencies are built.
