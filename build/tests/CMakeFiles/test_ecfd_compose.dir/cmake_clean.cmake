file(REMOVE_RECURSE
  "CMakeFiles/test_ecfd_compose.dir/test_ecfd_compose.cpp.o"
  "CMakeFiles/test_ecfd_compose.dir/test_ecfd_compose.cpp.o.d"
  "test_ecfd_compose"
  "test_ecfd_compose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecfd_compose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
