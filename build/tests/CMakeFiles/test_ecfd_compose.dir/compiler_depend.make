# Empty compiler generated dependencies file for test_ecfd_compose.
# This may be replaced when dependencies are built.
