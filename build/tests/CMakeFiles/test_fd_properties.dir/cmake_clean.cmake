file(REMOVE_RECURSE
  "CMakeFiles/test_fd_properties.dir/test_fd_properties.cpp.o"
  "CMakeFiles/test_fd_properties.dir/test_fd_properties.cpp.o.d"
  "test_fd_properties"
  "test_fd_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fd_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
