# Empty compiler generated dependencies file for test_consensus_baselines.
# This may be replaced when dependencies are built.
