file(REMOVE_RECURSE
  "CMakeFiles/test_consensus_baselines.dir/test_consensus_baselines.cpp.o"
  "CMakeFiles/test_consensus_baselines.dir/test_consensus_baselines.cpp.o.d"
  "test_consensus_baselines"
  "test_consensus_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consensus_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
