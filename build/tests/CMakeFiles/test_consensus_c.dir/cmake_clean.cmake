file(REMOVE_RECURSE
  "CMakeFiles/test_consensus_c.dir/test_consensus_c.cpp.o"
  "CMakeFiles/test_consensus_c.dir/test_consensus_c.cpp.o.d"
  "test_consensus_c"
  "test_consensus_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consensus_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
