# Empty compiler generated dependencies file for test_consensus_c.
# This may be replaced when dependencies are built.
