file(REMOVE_RECURSE
  "libecfd.a"
)
