
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/broadcast/reliable_broadcast.cpp" "src/CMakeFiles/ecfd.dir/broadcast/reliable_broadcast.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/broadcast/reliable_broadcast.cpp.o.d"
  "/root/repo/src/consensus/chandra_toueg.cpp" "src/CMakeFiles/ecfd.dir/consensus/chandra_toueg.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/consensus/chandra_toueg.cpp.o.d"
  "/root/repo/src/consensus/consensus.cpp" "src/CMakeFiles/ecfd.dir/consensus/consensus.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/consensus/consensus.cpp.o.d"
  "/root/repo/src/consensus/harness.cpp" "src/CMakeFiles/ecfd.dir/consensus/harness.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/consensus/harness.cpp.o.d"
  "/root/repo/src/consensus/mr_omega.cpp" "src/CMakeFiles/ecfd.dir/consensus/mr_omega.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/consensus/mr_omega.cpp.o.d"
  "/root/repo/src/core/c_to_p.cpp" "src/CMakeFiles/ecfd.dir/core/c_to_p.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/core/c_to_p.cpp.o.d"
  "/root/repo/src/core/consensus_c.cpp" "src/CMakeFiles/ecfd.dir/core/consensus_c.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/core/consensus_c.cpp.o.d"
  "/root/repo/src/core/ecfd_compose.cpp" "src/CMakeFiles/ecfd.dir/core/ecfd_compose.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/core/ecfd_compose.cpp.o.d"
  "/root/repo/src/core/ecfd_oracle.cpp" "src/CMakeFiles/ecfd.dir/core/ecfd_oracle.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/core/ecfd_oracle.cpp.o.d"
  "/root/repo/src/core/replicated_log.cpp" "src/CMakeFiles/ecfd.dir/core/replicated_log.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/core/replicated_log.cpp.o.d"
  "/root/repo/src/fd/efficient_p.cpp" "src/CMakeFiles/ecfd.dir/fd/efficient_p.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/fd/efficient_p.cpp.o.d"
  "/root/repo/src/fd/heartbeat_counter.cpp" "src/CMakeFiles/ecfd.dir/fd/heartbeat_counter.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/fd/heartbeat_counter.cpp.o.d"
  "/root/repo/src/fd/heartbeat_p.cpp" "src/CMakeFiles/ecfd.dir/fd/heartbeat_p.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/fd/heartbeat_p.cpp.o.d"
  "/root/repo/src/fd/leader_candidate.cpp" "src/CMakeFiles/ecfd.dir/fd/leader_candidate.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/fd/leader_candidate.cpp.o.d"
  "/root/repo/src/fd/omega_from_s.cpp" "src/CMakeFiles/ecfd.dir/fd/omega_from_s.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/fd/omega_from_s.cpp.o.d"
  "/root/repo/src/fd/oracle.cpp" "src/CMakeFiles/ecfd.dir/fd/oracle.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/fd/oracle.cpp.o.d"
  "/root/repo/src/fd/probe.cpp" "src/CMakeFiles/ecfd.dir/fd/probe.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/fd/probe.cpp.o.d"
  "/root/repo/src/fd/properties.cpp" "src/CMakeFiles/ecfd.dir/fd/properties.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/fd/properties.cpp.o.d"
  "/root/repo/src/fd/qos.cpp" "src/CMakeFiles/ecfd.dir/fd/qos.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/fd/qos.cpp.o.d"
  "/root/repo/src/fd/ring_fd.cpp" "src/CMakeFiles/ecfd.dir/fd/ring_fd.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/fd/ring_fd.cpp.o.d"
  "/root/repo/src/fd/scripted_fd.cpp" "src/CMakeFiles/ecfd.dir/fd/scripted_fd.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/fd/scripted_fd.cpp.o.d"
  "/root/repo/src/fd/stable_leader.cpp" "src/CMakeFiles/ecfd.dir/fd/stable_leader.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/fd/stable_leader.cpp.o.d"
  "/root/repo/src/fd/w_to_s.cpp" "src/CMakeFiles/ecfd.dir/fd/w_to_s.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/fd/w_to_s.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/ecfd.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/net/link.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/CMakeFiles/ecfd.dir/net/message.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/net/message.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/ecfd.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/net/network.cpp.o.d"
  "/root/repo/src/net/process_host.cpp" "src/CMakeFiles/ecfd.dir/net/process_host.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/net/process_host.cpp.o.d"
  "/root/repo/src/net/process_set.cpp" "src/CMakeFiles/ecfd.dir/net/process_set.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/net/process_set.cpp.o.d"
  "/root/repo/src/net/scenario.cpp" "src/CMakeFiles/ecfd.dir/net/scenario.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/net/scenario.cpp.o.d"
  "/root/repo/src/net/system.cpp" "src/CMakeFiles/ecfd.dir/net/system.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/net/system.cpp.o.d"
  "/root/repo/src/runtime/thread_env.cpp" "src/CMakeFiles/ecfd.dir/runtime/thread_env.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/runtime/thread_env.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/ecfd.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/ecfd.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/ecfd.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/ecfd.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/ecfd.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/ecfd.dir/sim/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
