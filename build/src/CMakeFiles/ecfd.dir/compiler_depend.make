# Empty compiler generated dependencies file for ecfd.
# This may be replaced when dependencies are built.
