# Empty compiler generated dependencies file for membership_service.
# This may be replaced when dependencies are built.
