file(REMOVE_RECURSE
  "CMakeFiles/membership_service.dir/membership_service.cpp.o"
  "CMakeFiles/membership_service.dir/membership_service.cpp.o.d"
  "membership_service"
  "membership_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membership_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
