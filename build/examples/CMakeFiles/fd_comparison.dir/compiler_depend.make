# Empty compiler generated dependencies file for fd_comparison.
# This may be replaced when dependencies are built.
