file(REMOVE_RECURSE
  "CMakeFiles/fd_comparison.dir/fd_comparison.cpp.o"
  "CMakeFiles/fd_comparison.dir/fd_comparison.cpp.o.d"
  "fd_comparison"
  "fd_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
