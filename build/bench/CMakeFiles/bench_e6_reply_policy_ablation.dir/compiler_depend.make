# Empty compiler generated dependencies file for bench_e6_reply_policy_ablation.
# This may be replaced when dependencies are built.
