file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_messages_per_round.dir/bench_e1_messages_per_round.cpp.o"
  "CMakeFiles/bench_e1_messages_per_round.dir/bench_e1_messages_per_round.cpp.o.d"
  "bench_e1_messages_per_round"
  "bench_e1_messages_per_round.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_messages_per_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
