# Empty compiler generated dependencies file for bench_e1_messages_per_round.
# This may be replaced when dependencies are built.
