# Empty compiler generated dependencies file for bench_e5_decision_latency.
# This may be replaced when dependencies are built.
