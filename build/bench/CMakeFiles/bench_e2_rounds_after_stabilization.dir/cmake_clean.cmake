file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_rounds_after_stabilization.dir/bench_e2_rounds_after_stabilization.cpp.o"
  "CMakeFiles/bench_e2_rounds_after_stabilization.dir/bench_e2_rounds_after_stabilization.cpp.o.d"
  "bench_e2_rounds_after_stabilization"
  "bench_e2_rounds_after_stabilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_rounds_after_stabilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
