# Empty compiler generated dependencies file for bench_e2_rounds_after_stabilization.
# This may be replaced when dependencies are built.
