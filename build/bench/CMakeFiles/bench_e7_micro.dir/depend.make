# Empty dependencies file for bench_e7_micro.
# This may be replaced when dependencies are built.
