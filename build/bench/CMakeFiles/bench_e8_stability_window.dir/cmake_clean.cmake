file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_stability_window.dir/bench_e8_stability_window.cpp.o"
  "CMakeFiles/bench_e8_stability_window.dir/bench_e8_stability_window.cpp.o.d"
  "bench_e8_stability_window"
  "bench_e8_stability_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_stability_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
