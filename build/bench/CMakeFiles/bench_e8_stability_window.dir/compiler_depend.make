# Empty compiler generated dependencies file for bench_e8_stability_window.
# This may be replaced when dependencies are built.
