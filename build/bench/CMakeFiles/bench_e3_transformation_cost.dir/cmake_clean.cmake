file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_transformation_cost.dir/bench_e3_transformation_cost.cpp.o"
  "CMakeFiles/bench_e3_transformation_cost.dir/bench_e3_transformation_cost.cpp.o.d"
  "bench_e3_transformation_cost"
  "bench_e3_transformation_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_transformation_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
