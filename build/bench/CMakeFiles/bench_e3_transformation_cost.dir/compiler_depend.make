# Empty compiler generated dependencies file for bench_e3_transformation_cost.
# This may be replaced when dependencies are built.
