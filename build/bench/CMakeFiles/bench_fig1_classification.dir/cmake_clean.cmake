file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_classification.dir/bench_fig1_classification.cpp.o"
  "CMakeFiles/bench_fig1_classification.dir/bench_fig1_classification.cpp.o.d"
  "bench_fig1_classification"
  "bench_fig1_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
