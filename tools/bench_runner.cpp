// bench_runner — the multi-seed, multi-config experiment driver.
//
// Runs the canonical E4/E5/churn sweeps (src/runner/suite.hpp) twice:
// once sequentially (the reference), once fanned across a thread pool
// (each case is an independent single-threaded simulation). Per-case
// digests must match bit-for-bit between the two passes — a mismatch is
// a determinism bug and exits nonzero. Everything else is reporting:
// wall times, speedup, events/sec, msgs/sec, and heap-allocation counts
// from the counting operator new linked into this binary.
//
//   bench_runner [--quick] [--jobs N] [--json FILE] [--check]
//                [--metrics FILE] [--trace FILE] [--trace-case EXP]
//
// --quick    CI-sized suite (seconds, not minutes)
// --jobs N   worker threads for the parallel pass (default: all cores)
// --json F   write the machine-readable report (schema ecfd.bench_sim.v1,
//            documented in EXPERIMENTS.md) to F; "-" means stdout
// --check    prepend a property-checked pass: a fault-injection matrix
//            (4 profiles x seeds) run under the online monitors
//            (src/check/); any required-property violation fails the run
// --metrics F  write the run's counters and per-case wall-time histograms
//            as ecfd.metrics.v1 JSON
// --trace F  re-run one case with the typed event recorder attached and
//            write its ecfd.trace.v1 timeline; --trace-case picks the
//            experiment (first case of it; default: first traceable case)
//
// Exit status: 0 on success, 1 on sequential-vs-parallel hash mismatch or
// a --check property violation, 2 on bad usage.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "check/fuzz.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "runner/suite.hpp"
#include "runner/thread_pool.hpp"
#include "sim/alloc_counter.hpp"

namespace {

using ecfd::runner::CaseMetrics;
using ecfd::runner::CaseSpec;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Aggregated view of one experiment's sweep in one pass.
struct ExperimentAgg {
  std::size_t cases{0};
  std::uint64_t events{0};
  std::int64_t msgs{0};
  double metric_sum{0.0};
  double seq_wall{0.0};  ///< sum of per-case sequential walls
  double par_wall{0.0};  ///< wall of the pooled parallel pass
};

void json_escape(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else {
      out->push_back(c);
    }
  }
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// The --check pass: a small fault-injection matrix under the online
/// property monitors. Returns the number of violating cases.
std::size_t run_check_pass(bool quick, unsigned jobs) {
  using ecfd::check::FuzzCaseConfig;
  using ecfd::check::FuzzOutcome;
  using ecfd::check::FuzzProfile;

  const int seeds = quick ? 8 : 32;
  std::vector<FuzzCaseConfig> cases;
  for (FuzzProfile p :
       {FuzzProfile::kCrash, FuzzProfile::kPartition,
        FuzzProfile::kLossDelay, FuzzProfile::kChurn}) {
    for (int s = 0; s < seeds; ++s) {
      FuzzCaseConfig cfg;
      cfg.profile = p;
      cfg.seed = static_cast<std::uint64_t>(s) + 1;
      cases.push_back(cfg);
    }
  }
  std::vector<FuzzOutcome> outcomes(cases.size());
  const auto t0 = std::chrono::steady_clock::now();
  ecfd::runner::parallel_for(cases.size(), jobs, [&](std::size_t i) {
    outcomes[i] = ecfd::check::run_fuzz_case(cases[i]);
  });
  std::size_t bad = 0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    if (outcomes[i].ok) continue;
    ++bad;
    std::fprintf(
        stderr, "CHECK VIOLATION profile=%s seed=%llu: %s\n",
        ecfd::check::profile_name(cases[i].profile),
        static_cast<unsigned long long>(cases[i].seed),
        outcomes[i].violations.front().to_string().c_str());
  }
  std::fprintf(stderr,
               "bench_runner: check pass %zu cases in %.3fs, %zu "
               "violations\n",
               cases.size(), seconds_since(t0), bad);
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  std::string json_path;
  std::string metrics_path;
  std::string trace_path;
  std::string trace_case;
  unsigned jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 2;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::atoi(argv[++i]));
      if (jobs == 0) jobs = 1;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--trace-case" && i + 1 < argc) {
      trace_case = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_runner [--quick] [--jobs N] [--json FILE] "
                   "[--check] [--metrics FILE] [--trace FILE] "
                   "[--trace-case EXP]\n");
      return 2;
    }
  }

  std::size_t check_violations = 0;
  if (check) check_violations = run_check_pass(quick, jobs);

  std::vector<CaseSpec> suite = ecfd::runner::build_suite(quick);
  std::fprintf(stderr, "bench_runner: %zu cases, %u jobs, %s suite\n",
               suite.size(), jobs, quick ? "quick" : "full");

  // --- Pass 1: sequential reference ------------------------------------
  std::vector<CaseMetrics> seq(suite.size());
  std::vector<double> seq_case_wall(suite.size(), 0.0);
  const std::uint64_t allocs_before_seq = ecfd::sim::alloc_count();
  const auto t_seq = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    seq[i] = suite[i].run();
    seq_case_wall[i] = seconds_since(t0);
  }
  const double seq_wall = seconds_since(t_seq);
  const std::uint64_t seq_allocs = ecfd::sim::alloc_count() - allocs_before_seq;

  // --- Pass 2: parallel, grouped per experiment -------------------------
  // Grouping keeps per-experiment speedup honest (each group is timed
  // around its own parallel_for) while still saturating the pool within
  // a group — the sweeps are dozens of cases each.
  std::map<std::string, std::vector<std::size_t>> by_experiment;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    by_experiment[suite[i].experiment].push_back(i);
  }

  std::vector<CaseMetrics> par(suite.size());
  std::map<std::string, double> par_group_wall;
  const std::uint64_t allocs_before_par = ecfd::sim::alloc_count();
  const auto t_par = std::chrono::steady_clock::now();
  for (auto& [name, idxs] : by_experiment) {
    const auto t0 = std::chrono::steady_clock::now();
    ecfd::runner::parallel_for(idxs.size(), jobs, [&](std::size_t k) {
      const std::size_t i = idxs[k];
      par[i] = suite[i].run();
    });
    par_group_wall[name] = seconds_since(t0);
  }
  const double par_wall = seconds_since(t_par);
  const std::uint64_t par_allocs = ecfd::sim::alloc_count() - allocs_before_par;

  // --- Determinism gate -------------------------------------------------
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    if (seq[i].hash != par[i].hash) {
      ++mismatches;
      std::fprintf(stderr,
                   "DETERMINISM MISMATCH %s %s seed=%llu: seq=%016llx "
                   "par=%016llx\n",
                   suite[i].experiment.c_str(), suite[i].config.c_str(),
                   static_cast<unsigned long long>(suite[i].seed),
                   static_cast<unsigned long long>(seq[i].hash),
                   static_cast<unsigned long long>(par[i].hash));
    }
  }

  // --- Aggregate --------------------------------------------------------
  std::map<std::string, ExperimentAgg> agg;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    ExperimentAgg& a = agg[suite[i].experiment];
    ++a.cases;
    a.events += seq[i].events;
    a.msgs += seq[i].msgs;
    a.metric_sum += seq[i].metric;
    a.seq_wall += seq_case_wall[i];
  }
  for (auto& [name, a] : agg) a.par_wall = par_group_wall[name];

  std::uint64_t total_events = 0;
  std::int64_t total_msgs = 0;
  for (const auto& [name, a] : agg) {
    total_events += a.events;
    total_msgs += a.msgs;
    std::fprintf(stderr,
                 "  %-14s %3zu cases  seq %7.3fs  par %7.3fs  speedup "
                 "%5.2fx  %8.3g events/s  %8.3g msgs/s\n",
                 name.c_str(), a.cases, a.seq_wall, a.par_wall,
                 a.par_wall > 0 ? a.seq_wall / a.par_wall : 0.0,
                 a.par_wall > 0 ? static_cast<double>(a.events) / a.par_wall
                                : 0.0,
                 a.par_wall > 0 ? static_cast<double>(a.msgs) / a.par_wall
                                : 0.0);
  }
  std::fprintf(stderr,
               "  total: seq %.3fs  par %.3fs  speedup %.2fx  allocs/case "
               "seq %.1f par %.1f  %s\n",
               seq_wall, par_wall, par_wall > 0 ? seq_wall / par_wall : 0.0,
               static_cast<double>(seq_allocs) /
                   static_cast<double>(suite.size()),
               static_cast<double>(par_allocs) /
                   static_cast<double>(suite.size()),
               mismatches == 0 ? "deterministic" : "MISMATCH");

  // --- JSON report ------------------------------------------------------
  if (!json_path.empty()) {
    std::string j;
    j += "{\n";
    j += "  \"schema\": \"ecfd.bench_sim.v1\",\n";
    j += "  \"quick\": " + std::string(quick ? "true" : "false") + ",\n";
    j += "  \"jobs\": " + std::to_string(jobs) + ",\n";
    j += "  \"hardware_threads\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
    j += "  \"deterministic\": " +
         std::string(mismatches == 0 ? "true" : "false") + ",\n";
    j += "  \"cases\": " + std::to_string(suite.size()) + ",\n";
    j += "  \"totals\": {\n";
    j += "    \"events\": " + std::to_string(total_events) + ",\n";
    j += "    \"msgs\": " + std::to_string(total_msgs) + ",\n";
    j += "    \"seq_wall_s\": " + fmt(seq_wall) + ",\n";
    j += "    \"par_wall_s\": " + fmt(par_wall) + ",\n";
    j += "    \"speedup\": " + fmt(par_wall > 0 ? seq_wall / par_wall : 0.0) +
         ",\n";
    j += "    \"events_per_sec_parallel\": " +
         fmt(par_wall > 0 ? static_cast<double>(total_events) / par_wall
                          : 0.0) +
         ",\n";
    j += "    \"msgs_per_sec_parallel\": " +
         fmt(par_wall > 0 ? static_cast<double>(total_msgs) / par_wall : 0.0) +
         "\n";
    j += "  },\n";
    j += "  \"allocations\": {\n";
    j += "    \"counted\": " +
         std::string(ecfd::sim::alloc_counting_active() ? "true" : "false") +
         ",\n";
    j += "    \"sequential_pass\": " + std::to_string(seq_allocs) + ",\n";
    j += "    \"parallel_pass\": " + std::to_string(par_allocs) + ",\n";
    j += "    \"per_event_sequential\": " +
         fmt(total_events > 0 ? static_cast<double>(seq_allocs) /
                                    static_cast<double>(total_events)
                              : 0.0) +
         "\n";
    j += "  },\n";
    j += "  \"experiments\": [\n";
    bool first = true;
    for (const auto& [name, a] : agg) {
      if (!first) j += ",\n";
      first = false;
      j += "    {\n      \"name\": \"";
      json_escape(&j, name);
      j += "\",\n";
      j += "      \"cases\": " + std::to_string(a.cases) + ",\n";
      j += "      \"events\": " + std::to_string(a.events) + ",\n";
      j += "      \"msgs\": " + std::to_string(a.msgs) + ",\n";
      j += "      \"metric_mean_ms\": " +
           fmt(a.cases > 0 ? a.metric_sum / static_cast<double>(a.cases)
                           : 0.0) +
           ",\n";
      j += "      \"seq_wall_s\": " + fmt(a.seq_wall) + ",\n";
      j += "      \"par_wall_s\": " + fmt(a.par_wall) + ",\n";
      j += "      \"speedup\": " +
           fmt(a.par_wall > 0 ? a.seq_wall / a.par_wall : 0.0) + ",\n";
      j += "      \"events_per_sec\": " +
           fmt(a.par_wall > 0 ? static_cast<double>(a.events) / a.par_wall
                              : 0.0) +
           ",\n";
      j += "      \"msgs_per_sec\": " +
           fmt(a.par_wall > 0 ? static_cast<double>(a.msgs) / a.par_wall
                              : 0.0) +
           "\n    }";
    }
    j += "\n  ]\n}\n";

    if (json_path == "-") {
      std::fputs(j.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (!f) {
        std::fprintf(stderr, "bench_runner: cannot write %s\n",
                     json_path.c_str());
        return 2;
      }
      std::fputs(j.c_str(), f);
      std::fclose(f);
    }
  }

  // --- ecfd.metrics.v1 report -------------------------------------------
  if (!metrics_path.empty()) {
    ecfd::obs::MetricsRegistry metrics;
    metrics.add("bench.cases", static_cast<std::int64_t>(suite.size()));
    metrics.add("bench.mismatches", static_cast<std::int64_t>(mismatches));
    metrics.add("bench.check_violations",
                static_cast<std::int64_t>(check_violations));
    metrics.add("bench.events", static_cast<std::int64_t>(total_events));
    metrics.add("bench.msgs", total_msgs);
    metrics.add("bench.allocs.seq", static_cast<std::int64_t>(seq_allocs));
    metrics.add("bench.allocs.par", static_cast<std::int64_t>(par_allocs));
    metrics.add("bench.seq_wall_us",
                static_cast<std::int64_t>(seq_wall * 1e6));
    metrics.add("bench.par_wall_us",
                static_cast<std::int64_t>(par_wall * 1e6));
    for (const auto& [name, a] : agg) {
      metrics.add("bench." + name + ".cases",
                  static_cast<std::int64_t>(a.cases));
      metrics.add("bench." + name + ".events",
                  static_cast<std::int64_t>(a.events));
      metrics.add("bench." + name + ".msgs", a.msgs);
    }
    // Per-case wall times as log-bucketed histograms, one per experiment
    // and pass — the distribution (straggler cases, parallel-pass skew) is
    // invisible in the aggregate means above.
    for (std::size_t i = 0; i < suite.size(); ++i) {
      metrics.histogram("bench." + suite[i].experiment + ".case_wall_us.seq")
          ->observe(static_cast<std::int64_t>(seq_case_wall[i] * 1e6));
    }
    std::ofstream os(metrics_path);
    if (!os) {
      std::fprintf(stderr, "bench_runner: cannot write %s\n",
                   metrics_path.c_str());
      return 2;
    }
    metrics.write_json(os, "bench_runner");
    std::fprintf(stderr, "bench_runner: metrics written: %s\n",
                 metrics_path.c_str());
  }

  // --- One traced case --------------------------------------------------
  if (!trace_path.empty()) {
    const CaseSpec* pick = nullptr;
    for (const CaseSpec& spec : suite) {
      if (!spec.run_traced) continue;
      if (trace_case.empty() || spec.experiment == trace_case) {
        pick = &spec;
        break;
      }
    }
    if (pick == nullptr) {
      std::fprintf(stderr, "bench_runner: no traceable case%s%s\n",
                   trace_case.empty() ? "" : " in experiment ",
                   trace_case.c_str());
      return 2;
    }
    ecfd::obs::Recorder recorder(4096);
    const CaseMetrics traced = pick->run_traced(&recorder);
    const CaseMetrics* ref = &seq[static_cast<std::size_t>(pick - suite.data())];
    if (traced.hash != ref->hash) {
      // Recording must be invisible to the simulation; a hash drift here
      // means an observability probe perturbed the run.
      std::fprintf(stderr,
                   "bench_runner: traced re-run hash mismatch on %s %s\n",
                   pick->experiment.c_str(), pick->config.c_str());
      return 1;
    }
    std::ofstream os(trace_path);
    if (!os) {
      std::fprintf(stderr, "bench_runner: cannot write %s\n",
                   trace_path.c_str());
      return 2;
    }
    recorder.write_trace_json(os);
    std::fprintf(stderr, "bench_runner: trace of %s %s written: %s\n",
                 pick->experiment.c_str(), pick->config.c_str(),
                 trace_path.c_str());
  }

  return mismatches == 0 && check_violations == 0 ? 0 : 1;
}
