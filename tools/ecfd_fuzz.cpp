// ecfd_fuzz — adversarial fault-injection fuzzer for the FD/consensus
// stacks, driven by the online property monitors (src/check/).
//
// Sweep mode (default): for every profile in the campaign and every seed
// in [seed0, seed0+seeds), generate a fault schedule, run a monitored
// consensus experiment, and collect the verdicts. Seeds fan out across a
// thread pool (each case is an independent single-threaded simulation).
// Any required-property violation is greedily shrunk to a 1-minimal
// schedule and written as a replayable repro file; the run exits 1.
//
// Replay mode (--replay FILE): re-run a recorded repro and verify the run
// digest matches bit for bit; exits 0 on an exact reproduction. With
// --trace the replay records the typed event timeline (including the
// monitor's verdict flips) as ecfd.trace.v1 JSON for tools/ecfd_trace —
// the intended debugging loop: fuzz finds and shrinks a schedule, replay
// turns it into a causally ordered story. --metrics dumps the replay's
// counter registry as ecfd.metrics.v1 JSON.
//
//   ecfd_fuzz [--seeds N] [--seed0 S] [--n N] [--jobs T]
//             [--profile crash|partition|loss_delay|churn|
//                        geo|flap|gray|skew|all]
//             [--algo ecfd_c|ecfd_c_merged|chandra_toueg|mr_omega]
//             [--fd ring|heartbeat_p|omega_heartbeat|efficient_p|
//                   heartbeat_adaptive|hier_c|swim]
//             [--horizon-ms M] [--chaos-end-ms M] [--margin-ms M]
//             [--out DIR] [--no-shrink] [--replay FILE] [--verbose]
//             [--trace FILE] [--trace-depth N] [--metrics FILE]
//
// Exit status: 0 = no violations (or exact replay), 1 = violation found
// (or replay mismatch), 2 = bad usage.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "check/fuzz.hpp"
#include "check/repro.hpp"
#include "obs/metrics.hpp"
#include "runner/thread_pool.hpp"

using namespace ecfd;
using namespace ecfd::check;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: ecfd_fuzz [--seeds N] [--seed0 S] [--n N] [--jobs T]\n"
               "                 [--profile P|all] [--algo A] [--fd F]\n"
               "                 [--horizon-ms M] [--chaos-end-ms M]\n"
               "                 [--margin-ms M] [--out DIR] [--no-shrink]\n"
               "                 [--require-strong-accuracy]\n"
               "                 [--replay FILE] [--verbose]\n"
               "                 [--trace FILE] [--trace-depth N] "
               "[--metrics FILE]   (replay mode)\n");
}

/// Replay-mode observability outputs; empty paths = off.
struct ReplayObs {
  std::string trace_path;
  std::size_t trace_depth{4096};
  std::string metrics_path;
};

int replay_file(const std::string& path, bool verbose, const ReplayObs& o) {
  std::string err;
  const auto repro = load_repro(path, &err);
  if (!repro) {
    std::fprintf(stderr, "ecfd_fuzz: %s\n", err.c_str());
    return 2;
  }
  std::unique_ptr<obs::Recorder> recorder;
  if (!o.trace_path.empty()) {
    recorder = std::make_unique<obs::Recorder>(o.trace_depth);
  }
  const FuzzOutcome out = replay(*repro, recorder.get());
  if (recorder != nullptr) {
    std::ofstream os(o.trace_path);
    if (!os) {
      std::fprintf(stderr, "ecfd_fuzz: cannot open %s for the trace\n",
                   o.trace_path.c_str());
      return 2;
    }
    recorder->write_trace_json(os);
    std::fprintf(stderr, "replay: trace written: %s\n", o.trace_path.c_str());
  }
  if (!o.metrics_path.empty()) {
    obs::MetricsRegistry metrics;
    metrics.import_counters(out.counters);
    metrics.add("run.sim_end_us", out.sim_end);
    metrics.add("run.violations",
                static_cast<std::int64_t>(out.violations.size()));
    if (recorder != nullptr) {
      metrics.add("obs.dropped",
                  static_cast<std::int64_t>(recorder->dropped_total()));
    }
    std::ofstream os(o.metrics_path);
    if (!os) {
      std::fprintf(stderr, "ecfd_fuzz: cannot open %s for metrics\n",
                   o.metrics_path.c_str());
      return 2;
    }
    metrics.write_json(os, "ecfd_fuzz");
    std::fprintf(stderr, "replay: metrics written: %s\n",
                 o.metrics_path.c_str());
  }
  if (verbose) {
    for (const Verdict& v : out.verdicts) {
      std::fprintf(stderr, "  %s\n", v.to_string().c_str());
    }
  }
  std::fprintf(stderr, "replay: digest=%016llx recorded=%016llx %s\n",
               static_cast<unsigned long long>(out.digest),
               static_cast<unsigned long long>(repro->digest),
               out.ok ? "no-violation" : "violation");
  if (!repro->property.empty() && !violates(out, repro->property)) {
    std::fprintf(stderr, "replay: target property %s did NOT reproduce\n",
                 repro->property.c_str());
    return 1;
  }
  if (repro->digest != 0 && out.digest != repro->digest) {
    std::fprintf(stderr, "replay: DIGEST MISMATCH\n");
    return 1;
  }
  std::fprintf(stderr, "replay: exact reproduction\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzCaseConfig base;
  int seeds = 200;
  std::uint64_t seed0 = 1;
  unsigned jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 2;
  std::string profile_arg = "all";
  std::string out_dir = ".";
  std::string replay_path;
  ReplayObs robs;
  bool shrink = true;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (a == "--seeds") {
      seeds = std::stoi(next());
    } else if (a == "--seed0") {
      seed0 = std::stoull(next());
    } else if (a == "--n") {
      base.n = std::stoi(next());
    } else if (a == "--jobs") {
      jobs = static_cast<unsigned>(std::stoul(next()));
      if (jobs == 0) jobs = 1;
    } else if (a == "--profile") {
      profile_arg = next();
    } else if (a == "--algo") {
      const std::string v = next();
      const auto algo = algo_from_name(v);
      if (!algo) {
        std::fprintf(stderr, "unknown algo %s\n", v.c_str());
        return 2;
      }
      base.algo = *algo;
    } else if (a == "--fd") {
      const std::string v = next();
      const auto fd = fd_stack_from_name(v);
      if (!fd) {
        std::fprintf(stderr, "unknown fd stack %s\n", v.c_str());
        return 2;
      }
      base.fd = *fd;
    } else if (a == "--horizon-ms") {
      base.horizon = msec(std::stoll(next()));
    } else if (a == "--chaos-end-ms") {
      base.chaos_end = msec(std::stoll(next()));
    } else if (a == "--margin-ms") {
      base.stable_margin = msec(std::stoll(next()));
    } else if (a == "--out") {
      out_dir = next();
    } else if (a == "--require-strong-accuracy") {
      // Promote fd.eventual_strong_accuracy from informational to
      // required — campaigns over ◇P-grade stacks (adaptive heartbeat,
      // hier_c, swim) gate on it.
      base.require_strong_accuracy = true;
    } else if (a == "--no-shrink") {
      shrink = false;
    } else if (a == "--replay") {
      replay_path = next();
    } else if (a == "--trace") {
      robs.trace_path = next();
    } else if (a == "--trace-depth") {
      robs.trace_depth = std::stoul(next());
    } else if (a == "--metrics") {
      robs.metrics_path = next();
    } else if (a == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      usage();
      return 2;
    }
  }

  if (!replay_path.empty()) return replay_file(replay_path, verbose, robs);
  if (!robs.trace_path.empty() || !robs.metrics_path.empty()) {
    std::fprintf(stderr, "--trace/--metrics require --replay\n");
    return 2;
  }

  std::vector<FuzzProfile> profiles;
  if (profile_arg == "all") {
    profiles = all_profiles();  // LAN quartet + the WAN/geo scenario pack
  } else {
    const auto p = profile_from_name(profile_arg);
    if (!p) {
      std::fprintf(stderr, "unknown profile %s\n", profile_arg.c_str());
      return 2;
    }
    profiles = {*p};
  }

  std::vector<FuzzCaseConfig> cases;
  for (FuzzProfile p : profiles) {
    for (int s = 0; s < seeds; ++s) {
      FuzzCaseConfig cfg = base;
      cfg.profile = p;
      cfg.seed = seed0 + static_cast<std::uint64_t>(s);
      cases.push_back(cfg);
    }
  }
  std::fprintf(stderr,
               "ecfd_fuzz: %zu cases (%zu profiles x %d seeds), n=%d, "
               "algo=%s, fd=%s, %u jobs\n",
               cases.size(), profiles.size(), seeds, base.n,
               algo_name(base.algo), fd_stack_name(base.fd), jobs);

  std::vector<FuzzOutcome> outcomes(cases.size());
  ecfd::runner::parallel_for(cases.size(), jobs, [&](std::size_t i) {
    outcomes[i] = run_fuzz_case(cases[i]);
  });

  std::size_t bad = 0;
  std::size_t undecided = 0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    if (!outcomes[i].every_correct_decided) ++undecided;
    if (outcomes[i].ok) continue;
    ++bad;
    const FuzzCaseConfig& cfg = cases[i];
    const Verdict& first = outcomes[i].violations.front();
    std::fprintf(stderr,
                 "VIOLATION profile=%s seed=%llu property=%s witness=%s\n",
                 profile_name(cfg.profile),
                 static_cast<unsigned long long>(cfg.seed),
                 first.property.c_str(), first.witness.c_str());
    if (verbose) {
      for (const Verdict& v : outcomes[i].verdicts) {
        std::fprintf(stderr, "  %s\n", v.to_string().c_str());
      }
    }

    FaultSchedule schedule = generate_schedule(cfg);
    int shrink_runs = 0;
    if (shrink) {
      const std::size_t before = schedule.events.size();
      schedule =
          shrink_schedule(cfg, std::move(schedule), first.property,
                          &shrink_runs);
      std::fprintf(stderr,
                   "  shrunk %zu -> %zu events in %d re-runs\n", before,
                   schedule.events.size(), shrink_runs);
    }
    ReproFile repro;
    repro.config = cfg;
    repro.schedule = schedule;
    repro.property = first.property;
    repro.digest = run_fuzz_case(cfg, schedule).digest;
    const std::string path = out_dir + "/repro_" +
                             profile_name(cfg.profile) + "_seed" +
                             std::to_string(cfg.seed) + ".txt";
    if (save_repro(repro, path)) {
      std::fprintf(stderr, "  repro written: %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "  FAILED to write repro %s\n", path.c_str());
    }
  }

  std::fprintf(stderr,
               "ecfd_fuzz: %zu/%zu cases clean, %zu violations, "
               "%zu undecided-by-horizon\n",
               cases.size() - bad, cases.size(), bad, undecided);
  return bad == 0 ? 0 : 1;
}
