// ecfd_trace — cross-backend timeline reconstruction.
//
// Reads one or more ecfd.trace.v1 files (written by ecfd_sim --trace,
// ecfd_fuzz --replay --trace, bench_runner --trace, or one ecfd_node
// --trace per OS process), merges them onto a single time axis, and
// renders the result:
//
//   ecfd_trace [--text FILE|-] [--chrome FILE|-] [--qos FILE|-]
//              [--stats] [--postmortem FILE]... [TRACE...]
//
//   --text OUT    human-readable timeline, one event per line
//                 (default when no output flag is given: --text -)
//   --chrome OUT  Chrome-trace JSON for chrome://tracing or Perfetto:
//                 one Chrome "process" per host, suspicion intervals,
//                 leader epochs and consensus rounds as spans
//   --qos OUT     per-peer FD QoS scoreboard (Chen/Toueg/Aguilera T_D,
//                 T_M, T_MR, P_A) replayed from the merged timeline's
//                 kSuspect/kUnsuspect/kCrash transitions
//   --stats       per-host and per-type event counts to stderr
//   --postmortem FILE  read an ecfd.postmortem.v1 crash image (written
//                 by ecfd_node --postmortem) as an input; its rings merge
//                 into the timeline like any trace, a summary of the
//                 death goes to stderr, and the timeline ends at a
//                 synthetic crash event stamped by the signal handler
//
// Merging: virtual-time traces (simulator) pass through unchanged;
// monotonic traces (threaded runtime, UDP nodes) are aligned by their
// recorded wall-clock epochs, so the per-process traces of a real
// cluster line up on one axis. Mixing the two kinds is allowed but the
// axes are unrelated, so a warning is printed.
//
// Exit code: 0 on success, 1 when any input failed to parse, 2 on usage
// errors.

#include <array>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/qos.hpp"
#include "obs/timeline.hpp"

using namespace ecfd;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: ecfd_trace [--text FILE|-] [--chrome FILE|-] "
               "[--qos FILE|-] [--stats] [--postmortem FILE]... "
               "[TRACE...]\n");
}

/// Writes via \p render either to stdout ("-") or to \p path.
bool write_output(const std::string& path, const char* what,
                  const std::function<void(std::ostream&)>& render) {
  if (path == "-") {
    render(std::cout);
    return true;
  }
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "ecfd_trace: cannot open %s for %s\n", path.c_str(),
                 what);
    return false;
  }
  render(os);
  return true;
}

void print_stats(const obs::MergedTimeline& t) {
  std::map<int, std::int64_t> per_host;
  std::array<std::int64_t, obs::kNumEventTypes> per_type{};
  for (const obs::Event& e : t.events) {
    ++per_host[e.host];
    ++per_type[static_cast<std::size_t>(e.type)];
  }
  std::fprintf(stderr, "hosts=%d events=%zu dropped=%llu clock=%s\n", t.n,
               t.events.size(), static_cast<unsigned long long>(t.dropped),
               t.monotonic ? "monotonic" : "virtual");
  for (std::size_t i = 1; i < per_type.size(); ++i) {
    if (per_type[i] == 0) continue;
    std::fprintf(stderr, "  %-14s %lld\n",
                 obs::event_type_name(static_cast<obs::EventType>(i)),
                 static_cast<long long>(per_type[i]));
  }
  for (const auto& [host, count] : per_host) {
    if (host < 0) {
      std::fprintf(stderr, "  monitor: %lld events\n",
                   static_cast<long long>(count));
    } else {
      std::fprintf(stderr, "  p%d: %lld events\n", host,
                   static_cast<long long>(count));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string text_out;
  std::string chrome_out;
  std::string qos_out;
  bool stats = false;
  std::vector<std::string> inputs;
  std::vector<std::string> postmortems;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (a == "--text") {
      text_out = next();
    } else if (a == "--chrome") {
      chrome_out = next();
    } else if (a == "--qos") {
      qos_out = next();
    } else if (a == "--postmortem") {
      postmortems.push_back(next());
    } else if (a == "--stats") {
      stats = true;
    } else if (!a.empty() && a[0] == '-' && a != "-") {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      usage();
      return 2;
    } else {
      inputs.push_back(a);
    }
  }
  if (inputs.empty() && postmortems.empty()) {
    usage();
    return 2;
  }
  if (text_out.empty() && chrome_out.empty() && qos_out.empty() && !stats) {
    text_out = "-";
  }

  std::vector<obs::TimelineDoc> docs;
  bool any_virtual = false;
  bool any_monotonic = false;
  for (const std::string& path : postmortems) {
    obs::TimelineDoc doc;
    obs::PostmortemInfo info;
    std::string error;
    if (!obs::read_postmortem(path, &doc, &info, &error)) {
      std::fprintf(stderr, "ecfd_trace: %s: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    if (info.signal != 0) {
      std::fprintf(stderr,
                   "ecfd_trace: %s: node %d died on signal %d at t=%lldus "
                   "(%llu snapshots, %zu events recovered)\n",
                   path.c_str(), info.node, info.signal,
                   static_cast<long long>(info.crash_time_us),
                   static_cast<unsigned long long>(info.snapshots),
                   doc.events.size());
    } else {
      std::fprintf(stderr,
                   "ecfd_trace: %s: node %d exited cleanly (%llu snapshots, "
                   "%zu events)\n",
                   path.c_str(), info.node,
                   static_cast<unsigned long long>(info.snapshots),
                   doc.events.size());
    }
    doc.origin = path;
    (doc.meta.clock == obs::ClockDomain::kVirtual ? any_virtual
                                                  : any_monotonic) = true;
    docs.push_back(std::move(doc));
  }
  for (const std::string& path : inputs) {
    std::ifstream is(path);
    if (!is) {
      std::fprintf(stderr, "ecfd_trace: cannot read %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string error;
    auto doc = obs::parse_trace_json(buf.str(), &error);
    if (!doc) {
      std::fprintf(stderr, "ecfd_trace: %s: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    doc->origin = path;
    (doc->meta.clock == obs::ClockDomain::kVirtual ? any_virtual
                                                   : any_monotonic) = true;
    docs.push_back(std::move(*doc));
  }
  if (any_virtual && any_monotonic) {
    std::fprintf(stderr,
                 "ecfd_trace: warning: merging virtual-time and wall-clock "
                 "traces; the time axes are unrelated\n");
  }

  const obs::MergedTimeline merged = obs::merge(docs);
  if (merged.dropped > 0) {
    std::fprintf(stderr,
                 "ecfd_trace: warning: %llu events were lost to ring "
                 "overwrite before export (raise the trace depth for full "
                 "history)\n",
                 static_cast<unsigned long long>(merged.dropped));
  }

  if (stats) print_stats(merged);
  if (!text_out.empty() &&
      !write_output(text_out, "text timeline",
                    [&](std::ostream& os) { obs::write_text(os, merged); })) {
    return 1;
  }
  if (!chrome_out.empty() &&
      !write_output(chrome_out, "chrome trace", [&](std::ostream& os) {
        obs::write_chrome_trace(os, merged);
      })) {
    return 1;
  }
  if (!qos_out.empty()) {
    obs::QosScoreboard qos(merged.n);
    qos.ingest_all(merged.events);
    qos.finalize(merged.events.empty() ? 0 : merged.events.back().time);
    if (!write_output(qos_out, "qos scoreboard",
                      [&](std::ostream& os) { qos.write_table(os); })) {
      return 1;
    }
  }
  return 0;
}
