#!/usr/bin/env python3
"""Validate ecfd observability/benchmark JSON by SCHEMA, never by value.

Usage:
  check_bench_schema.py BASELINE.json CANDIDATE.json
  check_bench_schema.py --metrics FILE.json
  check_bench_schema.py --trace FILE.json
  check_bench_schema.py --chrome FILE.json
  check_bench_schema.py --bench-net FILE.json
  check_bench_schema.py --bench-fd-scale FILE.json
  check_bench_schema.py --bench-obs FILE.json
  check_bench_schema.py --postmortem FILE.bin

Default mode compares two ecfd.bench.v1 reports. Wall-clock benchmark
numbers move between machines and runs, so CI cannot gate on them. What CI
*can* gate on is the report shape: same schema tag, same bench name, same
table sections in the same order, same column headers, rows present with
the right arity. A refactor that silently drops a table or renames a column
fails here; a slower runner does not.

The flag modes validate a single file against the corresponding fixed
schema: --metrics checks an ecfd.metrics.v1 registry dump, --trace an
ecfd.trace.v1 typed event trace, --chrome a Chrome-trace JSON export
(the object form with "traceEvents"), --bench-net an ecfd.bench_net.v1
real-network benchmark report (bench/bench_net). The bench_net shape is
pinned here rather than diffed against a baseline because its rows carry
an availability flag: a runner without io_uring still emits all four
backend x coalesce rows, just marked available=0, and the validator
enforces exactly that invariant.

--bench-fd-scale validates the checked-in FULL report of
bench/bench_e13_scale_fd (BENCH_FD_SCALE.json): the four-section shape
with every required (stack, n) row present, plus the experiment's one
machine-independent claim — the headline per-node message-cost ratio at
n=4096, which comes from exact counts on the deterministic simulator and
must show both scalable stacks >= 10x cheaper than the flat heartbeat.
Wall-clock cells (sections 2 and 3) are checked for presence and type
only, per the schema-not-values rule above.

--bench-obs validates the checked-in bench/bench_obs report
(BENCH_OBS.json): the three-section shape (recorder_push, qos_ingest,
flight_snapshot) with every required case row present; measurement cells
are type-checked only. --postmortem validates an ecfd.postmortem.v1 crash
image byte-for-byte against the documented binary layout — an independent
reimplementation of the header/ring/metric structs from src/obs/flight.cpp,
so a C++-side layout drift that the C++ reader would silently follow still
fails CI.

Exit status: 0 on match, 1 on mismatch (with a diff-style explanation on
stderr), 2 on unreadable input.
"""

import json
import sys

TRACE_EVENT_TYPES = {
    "send", "deliver", "timer_set", "timer_cancel", "drop", "suspect",
    "unsuspect", "leader_change", "round_start", "decide", "crash",
    "verdict", "note", "lease_grant", "lease_revoke", "wire_send",
    "wire_deliver",
}


def fail(msg: str) -> None:
    print(f"schema mismatch: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def check_host(doc, path: str) -> None:
    """Validates the optional 'host' block (machine facts for reading a
    report's absolute numbers; never compared across files)."""
    host = doc.get("host")
    if host is None:
        return
    if not isinstance(host, dict):
        fail(f"{path}: 'host' is not an object")
    for key in ("hardware_threads", "page_size"):
        if not isinstance(host.get(key), int) or host[key] <= 0:
            fail(f"{path}: host.{key} missing or not a positive integer")
    if host.get("build_type") not in ("release", "debug"):
        fail(f"{path}: host.build_type '{host.get('build_type')}' "
             "not 'release'/'debug'")


def table_shape(doc, path: str):
    """Reduce a report to its comparable shape."""
    for key in ("schema", "bench", "tables"):
        if key not in doc:
            fail(f"{path}: missing top-level key '{key}'")
    check_host(doc, path)
    shape = []
    for i, t in enumerate(doc["tables"]):
        for key in ("section", "headers", "rows"):
            if key not in t:
                fail(f"{path}: tables[{i}] missing '{key}'")
        if not t["rows"]:
            fail(f"{path}: tables[{i}] ('{t['section']}') has no rows")
        for j, row in enumerate(t["rows"]):
            if len(row) != len(t["headers"]):
                fail(
                    f"{path}: tables[{i}] row {j} has {len(row)} cells "
                    f"for {len(t['headers'])} headers"
                )
        shape.append((t["section"], tuple(t["headers"])))
    return doc["schema"], doc["bench"], shape


def check_metrics(path: str) -> int:
    """Validates one ecfd.metrics.v1 registry dump."""
    doc = load(path)
    if doc.get("schema") != "ecfd.metrics.v1":
        fail(f"{path}: schema tag '{doc.get('schema')}' != 'ecfd.metrics.v1'")
    if not isinstance(doc.get("source"), str) or not doc["source"]:
        fail(f"{path}: missing/empty 'source'")
    for section in ("counters", "gauges"):
        if not isinstance(doc.get(section), dict):
            fail(f"{path}: '{section}' is not an object")
        for name, v in doc[section].items():
            if not isinstance(v, int):
                fail(f"{path}: {section}['{name}'] is not an integer")
    if not isinstance(doc.get("histograms"), dict):
        fail(f"{path}: 'histograms' is not an object")
    for name, h in doc["histograms"].items():
        for key in ("count", "sum", "buckets"):
            if key not in h:
                fail(f"{path}: histograms['{name}'] missing '{key}'")
        if not isinstance(h["buckets"], list) or not all(
            isinstance(b, int) and b >= 0 for b in h["buckets"]
        ):
            fail(f"{path}: histograms['{name}'].buckets malformed")
        if sum(h["buckets"]) != h["count"]:
            fail(
                f"{path}: histograms['{name}'] bucket sum "
                f"{sum(h['buckets'])} != count {h['count']}"
            )
    print(
        f"metrics schema OK: {path}, {len(doc['counters'])} counters, "
        f"{len(doc['gauges'])} gauges, {len(doc['histograms'])} histograms"
    )
    return 0


def check_trace(path: str) -> int:
    """Validates one ecfd.trace.v1 typed event trace."""
    doc = load(path)
    if doc.get("schema") != "ecfd.trace.v1":
        fail(f"{path}: schema tag '{doc.get('schema')}' != 'ecfd.trace.v1'")
    if doc.get("source") not in ("sim", "runtime", "socket"):
        fail(f"{path}: unknown source '{doc.get('source')}'")
    if doc.get("clock") not in ("virtual", "monotonic"):
        fail(f"{path}: unknown clock '{doc.get('clock')}'")
    for key in ("wall_epoch_us", "n", "depth", "dropped"):
        if not isinstance(doc.get(key), int):
            fail(f"{path}: '{key}' missing or not an integer")
    strings = doc.get("strings")
    if not isinstance(strings, list) or not all(
        isinstance(s, str) for s in strings
    ):
        fail(f"{path}: 'strings' is not a list of strings")
    events = doc.get("events")
    if not isinstance(events, list):
        fail(f"{path}: 'events' is not a list")
    n = doc["n"]
    for i, e in enumerate(events):
        if not isinstance(e, list) or len(e) != 6:
            fail(f"{path}: events[{i}] is not a 6-element row")
        time_us, host, etype, a, b, label = e
        if not isinstance(time_us, int) or time_us < 0:
            fail(f"{path}: events[{i}] bad time {time_us!r}")
        if not isinstance(host, int) or host < -1 or host >= max(n, 1):
            fail(f"{path}: events[{i}] host {host!r} out of range for n={n}")
        if etype not in TRACE_EVENT_TYPES:
            fail(f"{path}: events[{i}] unknown type '{etype}'")
        if not isinstance(label, int) or label >= len(strings):
            fail(f"{path}: events[{i}] label {label!r} out of string table")
    print(f"trace schema OK: {path}, n={n}, {len(events)} events")
    return 0


def check_chrome(path: str) -> int:
    """Validates a Chrome-trace JSON export (the object form)."""
    doc = load(path)
    if not isinstance(doc.get("traceEvents"), list):
        fail(f"{path}: 'traceEvents' is not a list")
    if not doc["traceEvents"]:
        fail(f"{path}: empty traceEvents")
    phases = {"M", "i", "X"}
    for i, e in enumerate(doc["traceEvents"]):
        ph = e.get("ph")
        if ph not in phases:
            fail(f"{path}: traceEvents[{i}] unknown phase '{ph}'")
        if "pid" not in e:
            fail(f"{path}: traceEvents[{i}] missing 'pid'")
        if ph != "M":
            if "ts" not in e or "name" not in e:
                fail(f"{path}: traceEvents[{i}] ({ph}) missing ts/name")
            if ph == "X" and "dur" not in e:
                fail(f"{path}: traceEvents[{i}] span missing 'dur'")
    other = doc.get("otherData", {})
    if other.get("schema") != "ecfd.trace.v1":
        fail(f"{path}: otherData.schema != 'ecfd.trace.v1'")
    print(f"chrome trace OK: {path}, {len(doc['traceEvents'])} events")
    return 0


# The pinned shape of an ecfd.bench_net.v1 report: section -> headers.
# bench_net always emits one row per {poll,uring} x {single,coalesced}
# combination; rows where the backend cannot run carry available=0.
BENCH_NET_SECTIONS = (
    ("pair_throughput",
     ("backend", "coalesce", "available", "frames", "frames_per_s",
      "p50_us", "p99_us")),
    ("storm",
     ("backend", "coalesce", "available", "nodes", "frames",
      "frames_per_s", "dgrams_per_frame")),
    ("coalescing_ablation",
     ("backend", "coalesce", "available", "period_ms",
      "dgrams_per_peer_tick", "detect_ms")),
)
BENCH_NET_COMBOS = (("poll", 0), ("poll", 1), ("uring", 0), ("uring", 1))


def check_bench_net(path: str) -> int:
    """Validates one ecfd.bench_net.v1 real-network benchmark report."""
    doc = load(path)
    if doc.get("schema") != "ecfd.bench_net.v1":
        fail(f"{path}: schema tag '{doc.get('schema')}' != 'ecfd.bench_net.v1'")
    if doc.get("bench") != "bench_net":
        fail(f"{path}: bench name '{doc.get('bench')}' != 'bench_net'")
    check_host(doc, path)
    tables = doc.get("tables")
    if not isinstance(tables, list) or len(tables) != len(BENCH_NET_SECTIONS):
        got = len(tables) if isinstance(tables, list) else type(tables).__name__
        fail(f"{path}: expected {len(BENCH_NET_SECTIONS)} tables, got {got}")
    for i, ((section, headers), t) in enumerate(zip(BENCH_NET_SECTIONS, tables)):
        if t.get("section") != section:
            fail(f"{path}: tables[{i}] section '{t.get('section')}' "
                 f"!= '{section}'")
        if tuple(t.get("headers", ())) != headers:
            fail(f"{path}: tables[{i}] ('{section}') headers "
                 f"{t.get('headers')} != {list(headers)}")
        rows = t.get("rows")
        if not isinstance(rows, list) or len(rows) != len(BENCH_NET_COMBOS):
            fail(f"{path}: tables[{i}] ('{section}') must have exactly "
                 f"{len(BENCH_NET_COMBOS)} rows (one per backend x coalesce)")
        for j, row in enumerate(rows):
            if len(row) != len(headers):
                fail(f"{path}: tables[{i}] row {j} has {len(row)} cells "
                     f"for {len(headers)} headers")
            backend, coalesce = BENCH_NET_COMBOS[j]
            if row[0] != backend or row[1] != coalesce:
                fail(f"{path}: tables[{i}] row {j} is "
                     f"({row[0]!r}, {row[1]!r}), expected "
                     f"({backend!r}, {coalesce})")
            if row[2] not in (0, 1):
                fail(f"{path}: tables[{i}] row {j} available={row[2]!r} "
                     "not in {0, 1}")
            for cell in row[3:]:
                if not isinstance(cell, (int, float)):
                    fail(f"{path}: tables[{i}] row {j} non-numeric "
                         f"measurement {cell!r}")
    avail = sum(r[2] for r in tables[0]["rows"])
    print(f"bench_net schema OK: {path}, {len(tables)} sections, "
          f"{avail}/{len(BENCH_NET_COMBOS)} combos available")
    return 0


# The pinned shape of the full bench_e13_scale_fd report: per section, the
# headers and the (stack, n) rows it must contain. Sections 2/3 carry
# wall-clock or machine-local numbers, so only presence and numeric type
# are enforced; section 1 and the headline come from exact deterministic
# counts, which is why the 10x ratio gate below is safe in CI.
FD_SCALE_MIN_RATIO = 10.0
FD_SCALE_SECTIONS = (
    ("E13 steady-state message cost (deterministic sim)",
     ("stack", "n", "period_ms", "msgs_per_node_per_period",
      "msgs_per_node_per_sec", "total_msgs"),
     (("heartbeat_p", 256), ("heartbeat_p", 1024), ("heartbeat_p", 4096),
      ("efficient_p", 256), ("efficient_p", 1024), ("efficient_p", 4096),
      ("hier_c", 256), ("hier_c", 1024), ("hier_c", 4096),
      ("hier_c", 16384),
      ("swim", 256), ("swim", 1024), ("swim", 4096), ("swim", 16384))),
    ("E13 detection latency (threaded runtime)",
     ("stack", "n", "period_ms", "detect_first_ms", "detect_p50_ms",
      "detect_max_ms", "detected", "observers", "msgs_per_node_per_sec"),
     (("heartbeat_p", 256), ("heartbeat_p", 1024),
      ("hier_c", 256), ("hier_c", 1024),
      ("swim", 256), ("swim", 1024))),
    ("E13 per-host memory (threaded runtime, constructed stacks)",
     ("stack", "n", "heap_mb", "kb_per_host"),
     (("heartbeat_p", 256), ("heartbeat_p", 1024), ("heartbeat_p", 4096),
      ("heartbeat_p", 16384),
      ("hier_c", 256), ("hier_c", 1024), ("hier_c", 4096),
      ("hier_c", 16384),
      ("swim", 256), ("swim", 1024), ("swim", 4096), ("swim", 16384))),
    ("E13 headline: per-node message cost at n=4096",
     ("stack", "msgs_per_node_per_period", "flat_ratio"),
     (("heartbeat_p", None), ("hier_c", None), ("swim", None))),
)


def check_bench_fd_scale(path: str) -> int:
    """Validates the checked-in bench_e13_scale_fd full report."""
    doc = load(path)
    if doc.get("schema") != "ecfd.bench.v1":
        fail(f"{path}: schema tag '{doc.get('schema')}' != 'ecfd.bench.v1'")
    if doc.get("bench") != "e13_scale_fd":
        fail(f"{path}: bench name '{doc.get('bench')}' != 'e13_scale_fd'")
    check_host(doc, path)
    tables = doc.get("tables")
    if not isinstance(tables, list) or len(tables) != len(FD_SCALE_SECTIONS):
        got = len(tables) if isinstance(tables, list) else type(tables).__name__
        fail(f"{path}: expected {len(FD_SCALE_SECTIONS)} tables "
             f"(full-mode report), got {got}")
    for i, ((section, headers, required), t) in enumerate(
        zip(FD_SCALE_SECTIONS, tables)
    ):
        if t.get("section") != section:
            fail(f"{path}: tables[{i}] section '{t.get('section')}' "
                 f"!= '{section}'")
        if tuple(t.get("headers", ())) != headers:
            fail(f"{path}: tables[{i}] ('{section}') headers "
                 f"{t.get('headers')} != {list(headers)}")
        rows = t.get("rows")
        if not isinstance(rows, list):
            fail(f"{path}: tables[{i}] ('{section}') rows missing")
        seen = {}
        for j, row in enumerate(rows):
            if len(row) != len(headers):
                fail(f"{path}: tables[{i}] row {j} has {len(row)} cells "
                     f"for {len(headers)} headers")
            for cell in row[1:]:
                if not isinstance(cell, (int, float)):
                    fail(f"{path}: tables[{i}] row {j} non-numeric "
                         f"measurement {cell!r}")
            key = (row[0], row[1] if "n" in headers else None)
            seen[key] = row
        for key in required:
            if key not in seen:
                fail(f"{path}: tables[{i}] ('{section}') missing required "
                     f"row {key}")
    # The experiment's headline claim, from exact deterministic counts:
    # both scalable stacks >= FD_SCALE_MIN_RATIO x cheaper per node than
    # the flat heartbeat at n=4096.
    head = {r[0]: r for r in tables[3]["rows"]}
    for stack in ("hier_c", "swim"):
        ratio = head[stack][2]
        if ratio < FD_SCALE_MIN_RATIO:
            fail(f"{path}: headline flat_ratio for {stack} is {ratio}, "
                 f"must be >= {FD_SCALE_MIN_RATIO}")
    # Strong completeness at scale: every detection-latency row must show
    # all observers detecting the crash within the bench deadline.
    for row in tables[1]["rows"]:
        detected, observers = row[6], row[7]
        if detected != observers:
            fail(f"{path}: detection row {row[0]} n={row[1]} has "
                 f"{detected}/{observers} observers detecting the crash")
    ratios = {s: round(head[s][2], 1) for s in ("hier_c", "swim")}
    print(f"bench_fd_scale schema OK: {path}, {len(tables)} sections, "
          f"n=4096 flat ratios {ratios}")
    return 0


# The pinned shape of the bench_obs report (BENCH_OBS.json): per section,
# the headers and the leading cells of every required row. Wall-clock
# costs move between machines, so only presence and numeric type of the
# measurement cells are enforced.
BENCH_OBS_SECTIONS = (
    ("recorder_push",
     ("case", "threads", "ops", "ns_op"),
     (("hot_push",), ("disabled_push",), ("contended_push",))),
    ("qos_ingest",
     ("case", "n", "ops", "ns_op"),
     (("ingest",), ("export_gauges",))),
    ("flight_snapshot",
     ("case", "depth", "ops", "us_op"),
     (("snapshot", 1024), ("crash_dump", 1024),
      ("snapshot", 4096), ("crash_dump", 4096),
      ("snapshot", 16384), ("crash_dump", 16384))),
)


def check_bench_obs(path: str) -> int:
    """Validates the checked-in bench_obs report."""
    doc = load(path)
    if doc.get("schema") != "ecfd.bench.v1":
        fail(f"{path}: schema tag '{doc.get('schema')}' != 'ecfd.bench.v1'")
    if doc.get("bench") != "obs":
        fail(f"{path}: bench name '{doc.get('bench')}' != 'obs'")
    check_host(doc, path)
    tables = doc.get("tables")
    if not isinstance(tables, list) or len(tables) != len(BENCH_OBS_SECTIONS):
        got = len(tables) if isinstance(tables, list) else type(tables).__name__
        fail(f"{path}: expected {len(BENCH_OBS_SECTIONS)} tables, got {got}")
    for i, ((section, headers, required), t) in enumerate(
        zip(BENCH_OBS_SECTIONS, tables)
    ):
        if t.get("section") != section:
            fail(f"{path}: tables[{i}] section '{t.get('section')}' "
                 f"!= '{section}'")
        if tuple(t.get("headers", ())) != headers:
            fail(f"{path}: tables[{i}] ('{section}') headers "
                 f"{t.get('headers')} != {list(headers)}")
        rows = t.get("rows")
        if not isinstance(rows, list):
            fail(f"{path}: tables[{i}] ('{section}') rows missing")
        seen = set()
        for j, row in enumerate(rows):
            if len(row) != len(headers):
                fail(f"{path}: tables[{i}] row {j} has {len(row)} cells "
                     f"for {len(headers)} headers")
            for cell in row[1:]:
                if not isinstance(cell, (int, float)):
                    fail(f"{path}: tables[{i}] row {j} non-numeric "
                         f"measurement {cell!r}")
            seen.add(tuple(row[:len(required[0])]))
        for key in required:
            if key not in seen:
                fail(f"{path}: tables[{i}] ('{section}') missing required "
                     f"row {key}")
    print(f"bench_obs schema OK: {path}, {len(tables)} sections")
    return 0


# ecfd.postmortem.v1 binary layout, mirrored from src/obs/flight.cpp (the
# structs there carry static_asserts pinning these sizes). Little-endian,
# naturally aligned.
PM_MAGIC = b"ECFDPM01"
PM_HEADER_FMT = "<8sIIiiqqqqQQII16sIIIIIIIII"  # 136 bytes
PM_HEADER_BYTES = 136
PM_RING_DESC_FMT = "<iIQQ"   # host, kind, depth, head = 24 bytes
PM_RING_DESC_BYTES = 24
PM_METRIC_FMT = "<I52sq"     # kind, name, value = 64 bytes
PM_METRIC_BYTES = 64
PM_RAW_EVENT_FMT = "<qqiiII"  # time, b, a, label, type, pad = 32 bytes
PM_RAW_EVENT_BYTES = 32
PM_NUM_EVENT_TYPES = 18


def check_postmortem(path: str) -> int:
    """Validates one ecfd.postmortem.v1 crash image structurally, without
    going through the C++ reader: an independent check that the on-disk
    layout still matches the documented format."""
    import struct

    try:
        with open(path, "rb") as f:
            blob = f.read()
    except OSError as e:
        print(f"cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if len(blob) < PM_HEADER_BYTES:
        fail(f"{path}: {len(blob)} bytes is smaller than the header")
    (magic, version, header_bytes, node, n, wall_epoch_us, crash_time_us,
     base_env_time_us, base_mono_us, snapshot_count, file_bytes,
     crash_signal, clock, source, strings_off, strings_cap, strings_len,
     string_count, metrics_off, metrics_cap, metrics_count, rings_off,
     ring_count) = struct.unpack_from(PM_HEADER_FMT, blob, 0)
    if magic != PM_MAGIC:
        fail(f"{path}: magic {magic!r} != {PM_MAGIC!r}")
    if version != 1:
        fail(f"{path}: version {version} != 1")
    if header_bytes != PM_HEADER_BYTES:
        fail(f"{path}: header_bytes {header_bytes} != {PM_HEADER_BYTES}")
    if file_bytes != len(blob):
        fail(f"{path}: header says {file_bytes} bytes, file has {len(blob)}")
    if node < 0 or n <= 0 or node >= n:
        fail(f"{path}: node {node} out of range for n={n}")
    if clock not in (0, 1):
        fail(f"{path}: clock {clock} not 0 (virtual) / 1 (monotonic)")
    src = source.split(b"\0", 1)[0].decode("ascii", "replace")
    if not src:
        fail(f"{path}: empty source string")
    if snapshot_count == 0:
        fail(f"{path}: snapshot_count is 0 (open() always dumps once)")
    if strings_len > strings_cap or strings_off + strings_len > len(blob):
        fail(f"{path}: string table [{strings_off}, +{strings_len}] "
             "out of bounds")
    if metrics_count > metrics_cap:
        fail(f"{path}: metrics_count {metrics_count} > cap {metrics_cap}")
    if metrics_off + metrics_count * PM_METRIC_BYTES > len(blob):
        fail(f"{path}: metrics region out of bounds")
    for i in range(metrics_count):
        kind, name, _value = struct.unpack_from(
            PM_METRIC_FMT, blob, metrics_off + i * PM_METRIC_BYTES)
        if kind not in (0, 1):
            fail(f"{path}: metric[{i}] kind {kind} not counter/gauge")
        if b"\0" not in name:
            fail(f"{path}: metric[{i}] name not NUL-terminated")
    if ring_count == 0:
        fail(f"{path}: no rings persisted")
    events = 0
    off = rings_off
    for i in range(ring_count):
        if off + PM_RING_DESC_BYTES > len(blob):
            fail(f"{path}: ring[{i}] descriptor out of bounds")
        host, kind, depth, head = struct.unpack_from(
            PM_RING_DESC_FMT, blob, off)
        if host < -1 or host >= n:
            fail(f"{path}: ring[{i}] host {host} out of range for n={n}")
        if kind not in (0, 1, 2):
            fail(f"{path}: ring[{i}] kind {kind} not hot/state/system")
        if depth == 0 or depth & (depth - 1):
            fail(f"{path}: ring[{i}] depth {depth} not a power of two")
        off += PM_RING_DESC_BYTES
        if off + depth * PM_RAW_EVENT_BYTES > len(blob):
            fail(f"{path}: ring[{i}] slots out of bounds")
        live = min(head, depth)
        for j in range(live):
            _t, _b, _a, _label, etype, _pad = struct.unpack_from(
                PM_RAW_EVENT_FMT, blob, off + j * PM_RAW_EVENT_BYTES)
            if etype >= PM_NUM_EVENT_TYPES:
                fail(f"{path}: ring[{i}] slot {j} event type {etype} "
                     f"out of range")
        events += live
        off += depth * PM_RAW_EVENT_BYTES
    death = (f"signal {crash_signal}" if crash_signal else "orderly close")
    print(f"postmortem OK: {path}, node {node}/{n}, source '{src}', "
          f"{ring_count} rings, {events} events, {snapshot_count} "
          f"snapshots, {death}")
    return 0


def main() -> int:
    if len(sys.argv) == 3 and sys.argv[1] in (
        "--metrics", "--trace", "--chrome", "--bench-net", "--bench-fd-scale",
        "--bench-obs", "--postmortem"
    ):
        mode, path = sys.argv[1], sys.argv[2]
        if mode == "--metrics":
            return check_metrics(path)
        if mode == "--trace":
            return check_trace(path)
        if mode == "--bench-net":
            return check_bench_net(path)
        if mode == "--bench-fd-scale":
            return check_bench_fd_scale(path)
        if mode == "--bench-obs":
            return check_bench_obs(path)
        if mode == "--postmortem":
            return check_postmortem(path)
        return check_chrome(path)
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    base_path, cand_path = sys.argv[1], sys.argv[2]
    b_schema, b_bench, b_shape = table_shape(load(base_path), base_path)
    c_schema, c_bench, c_shape = table_shape(load(cand_path), cand_path)

    if b_schema != c_schema:
        fail(f"schema tag '{c_schema}' != baseline '{b_schema}'")
    if b_bench != c_bench:
        fail(f"bench name '{c_bench}' != baseline '{b_bench}'")
    if len(b_shape) != len(c_shape):
        fail(f"{len(c_shape)} tables vs baseline's {len(b_shape)}")
    for i, ((bs, bh), (cs, ch)) in enumerate(zip(b_shape, c_shape)):
        if bs != cs:
            fail(f"tables[{i}] section '{cs}' != baseline '{bs}'")
        if bh != ch:
            fail(f"tables[{i}] ('{bs}') headers {list(ch)} != baseline {list(bh)}")
    print(f"schema OK: {c_bench}, {len(c_shape)} tables match {base_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
