#!/usr/bin/env python3
"""Compare two ecfd.bench.v1 JSON reports by SCHEMA, never by value.

Usage: check_bench_schema.py BASELINE.json CANDIDATE.json

Wall-clock benchmark numbers move between machines and runs, so CI cannot
gate on them. What CI *can* gate on is the report shape: same schema tag,
same bench name, same table sections in the same order, same column headers,
rows present with the right arity. A refactor that silently drops a table or
renames a column fails here; a slower runner does not.

Exit status: 0 on match, 1 on mismatch (with a diff-style explanation on
stderr), 2 on unreadable input.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"schema mismatch: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def table_shape(doc, path: str):
    """Reduce a report to its comparable shape."""
    for key in ("schema", "bench", "tables"):
        if key not in doc:
            fail(f"{path}: missing top-level key '{key}'")
    shape = []
    for i, t in enumerate(doc["tables"]):
        for key in ("section", "headers", "rows"):
            if key not in t:
                fail(f"{path}: tables[{i}] missing '{key}'")
        if not t["rows"]:
            fail(f"{path}: tables[{i}] ('{t['section']}') has no rows")
        for j, row in enumerate(t["rows"]):
            if len(row) != len(t["headers"]):
                fail(
                    f"{path}: tables[{i}] row {j} has {len(row)} cells "
                    f"for {len(t['headers'])} headers"
                )
        shape.append((t["section"], tuple(t["headers"])))
    return doc["schema"], doc["bench"], shape


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    base_path, cand_path = sys.argv[1], sys.argv[2]
    b_schema, b_bench, b_shape = table_shape(load(base_path), base_path)
    c_schema, c_bench, c_shape = table_shape(load(cand_path), cand_path)

    if b_schema != c_schema:
        fail(f"schema tag '{c_schema}' != baseline '{b_schema}'")
    if b_bench != c_bench:
        fail(f"bench name '{c_bench}' != baseline '{b_bench}'")
    if len(b_shape) != len(c_shape):
        fail(f"{len(c_shape)} tables vs baseline's {len(b_shape)}")
    for i, ((bs, bh), (cs, ch)) in enumerate(zip(b_shape, c_shape)):
        if bs != cs:
            fail(f"tables[{i}] section '{cs}' != baseline '{bs}'")
        if bh != ch:
            fail(f"tables[{i}] ('{bs}') headers {list(ch)} != baseline {list(bh)}")
    print(f"schema OK: {c_bench}, {len(c_shape)} tables match {base_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
