// ecfd_node — one process of a real failure-detector cluster, over UDP.
//
// Loads a shared INI config (transport/node_config.hpp), binds its own row
// of the peer table, instantiates a failure-detector stack (optionally with
// the paper's ◇C consensus engine on top), and periodically prints its
// output — so a shell can launch n OS processes, `kill -9` one, and watch
// the survivors' suspicion (and, with --consensus, a decision) happen over
// a real lossy network:
//
//   ecfd_node --config cluster.ini --id 0 [--fd F] [--backend B]
//             [--consensus] [--kv] [--propose V] [--run-ms MS]
//             [--report-ms MS] [--verbose] [--metrics-port P]
//             [--metrics FILE] [--trace FILE]
//
//   --fd F       heartbeat_p   all-to-all heartbeat ◇P (n(n-1) msgs/period)
//                efficient_p   Section 4 piggybacked 2(n-1) ◇P + Omega
//                stable_leader ADFT stable Omega (accusation counters)
//                ecfd          the paper's stack: stable Omega -> ◇C ->
//                              Fig. 2 transformation to ◇P
//                (overrides the config's `fd` key)
//   --backend B  poll          poll(2) + sendmmsg/recvmmsg UDP event loop
//                uring         io_uring: multishot receive into registered
//                              buffers, one submit syscall per tick of
//                              sends; degrades to poll (with a stderr
//                              note) when the kernel lacks io_uring or
//                              the backend was compiled out (ECFD_URING)
//                (overrides the config's `backend` key)
//   --consensus  run ConsensusC on the ◇C view; propose --propose (default:
//                this node's id) once the cluster has had a moment to form
//   --kv         serve the replicated key-value store (kv/service.hpp) on
//                this node: client frames arrive on the same UDP port as
//                peer traffic (src = kNoProcess routes them to the
//                service), writes commit through LogReplica consensus
//                slots, reads are leader-lease-local when ◇C allows.
//                Tunables come from the config's [kv] section.
//   --run-ms     exit after this long (default: run until killed)
//   --report-ms  output period (default 500)
//   --metrics-port P  serve the live registry over HTTP on 127.0.0.1:P:
//                GET /metrics       Prometheus text exposition
//                GET /metrics.json  ecfd.metrics.v1 JSON
//                GET /metrics.txt   human-readable counter dump
//                GET /qos           per-peer FD QoS scoreboard (needs a
//                                   recorder: --trace or --postmortem)
//   --metrics FILE  write the final registry as ecfd.metrics.v1 JSON
//   --trace FILE  record typed events and write this node's ecfd.trace.v1
//                timeline at exit; merge the per-node files with
//                tools/ecfd_trace (wall-clock epochs align them)
//   --postmortem FILE  keep an mmap-backed ecfd.postmortem.v1 flight
//                image at FILE: ring snapshots + metrics are refreshed
//                every report period and on SIGSEGV/SIGABRT/SIGBUS, so
//                the file survives the crash; render it afterwards with
//                ecfd_trace --postmortem FILE
//
// Output: one JSON line per report period on stdout,
//   {"t_ms":1500,"node":0,"fd":"ecfd","suspected":[2],"trusted":1,
//    "decided":null,"sent":123,"recv":119}
//
// Exit code: 0 on clean --run-ms exit, 2 on usage/config errors.
// See README.md ("Real-network quickstart") and examples/cluster_demo.sh.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>

#include "broadcast/reliable_broadcast.hpp"
#include "core/c_to_p.hpp"
#include "core/consensus_c.hpp"
#include "core/ecfd_compose.hpp"
#include "core/replicated_log.hpp"
#include "fd/efficient_p.hpp"
#include "fd/heartbeat_p.hpp"
#include "fd/stable_leader.hpp"
#include "kv/service.hpp"
#include "obs/flight.hpp"
#include "obs/http_export.hpp"
#include "obs/qos.hpp"
#include "transport/dgram_env.hpp"
#include "transport/node_config.hpp"

using namespace ecfd;
using transport::DgramEnv;
using transport::NodeConfig;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

void usage() {
  std::cout <<
      "ecfd_node — failure detection over real UDP sockets\n"
      "\n"
      "  --config FILE   cluster config (required; see README quickstart)\n"
      "  --id N          which peer-table row is this process (required)\n"
      "  --fd F          heartbeat_p | efficient_p | stable_leader | ecfd\n"
      "  --backend B     poll | uring (uring degrades to poll when missing)\n"
      "  --consensus     also run the ◇C consensus engine\n"
      "  --kv            serve the replicated key-value store ([kv] config)\n"
      "  --propose V     consensus proposal (default: node id)\n"
      "  --run-ms MS     exit after MS ms (default: until SIGINT/SIGTERM)\n"
      "  --report-ms MS  report period (default 500)\n"
      "  --verbose       trace protocol events to stderr\n"
      "  --metrics-port P  serve /metrics (Prometheus), /metrics.json,\n"
      "                  /metrics.txt and /qos over HTTP on 127.0.0.1:P\n"
      "  --metrics FILE  write final counters as ecfd.metrics.v1 JSON\n"
      "  --trace FILE    write this node's ecfd.trace.v1 timeline at exit\n"
      "  --postmortem FILE  keep a crash-surviving ecfd.postmortem.v1\n"
      "                  flight image at FILE (ecfd_trace --postmortem)\n";
}

/// The assembled detector stack; all protocols are owned by the env, the
/// oracles by this struct.
struct Stack {
  const SuspectOracle* suspects{nullptr};     ///< may be null (pure Omega)
  const LeaderOracle* leader{nullptr};        ///< may be null (pure ◇P)
  const core::EcfdOracle* ecfd{nullptr};      ///< set when consensus-capable
  std::unique_ptr<core::EcfdOracle> adapter;  ///< owns any composition glue
};

Stack build_fd(DgramEnv& env, const NodeConfig& cfg, const std::string& fd) {
  Stack s;
  if (fd == "heartbeat_p") {
    fd::HeartbeatP::Config c;
    c.period = cfg.period;
    c.initial_timeout = cfg.initial_timeout;
    c.timeout_increment = cfg.timeout_increment;
    auto& hb = env.emplace<fd::HeartbeatP>(c);
    s.suspects = &hb;
    s.adapter = std::make_unique<core::EcfdFromP>(&hb);
    s.ecfd = s.adapter.get();
    s.leader = s.adapter.get();
  } else if (fd == "efficient_p") {
    fd::EfficientP::Config c;
    c.period = cfg.period;
    c.initial_timeout = cfg.initial_timeout;
    c.timeout_increment = cfg.timeout_increment;
    auto& eff = env.emplace<fd::EfficientP>(c);
    s.suspects = &eff;
    s.leader = &eff;
    s.ecfd = &eff;
  } else if (fd == "stable_leader") {
    fd::StableLeader::Config c;
    c.period = cfg.period;
    c.initial_timeout = cfg.initial_timeout;
    c.timeout_increment = cfg.timeout_increment;
    auto& sl = env.emplace<fd::StableLeader>(c);
    s.leader = &sl;
    s.adapter = std::make_unique<core::EcfdFromOmega>(env.n(), env.self(), &sl);
    s.ecfd = s.adapter.get();
    s.suspects = s.adapter.get();
  } else if (fd == "ecfd") {
    // The paper's composition: a stable Omega, lifted to ◇C, transformed
    // to ◇P by the Fig. 2 algorithm (2(n-1) messages per period total),
    // and re-packaged as a ◇C with the transformed (accurate) lists.
    fd::StableLeader::Config c;
    c.period = cfg.period;
    c.initial_timeout = cfg.initial_timeout;
    c.timeout_increment = cfg.timeout_increment;
    auto& sl = env.emplace<fd::StableLeader>(c);
    core::CToP::Config tc;
    tc.alive_period = cfg.period;
    tc.list_period = cfg.period;
    tc.initial_timeout = cfg.initial_timeout;
    tc.timeout_increment = cfg.timeout_increment;
    auto& ctp = env.emplace<core::CToP>(&sl, tc);
    s.suspects = &ctp;
    s.leader = &sl;
    s.adapter = std::make_unique<core::EcfdFromSAndOmega>(&ctp, &sl);
    s.ecfd = s.adapter.get();
  }
  return s;
}

std::string report_line(TimeUs t, ProcessId self, const std::string& fd,
                        const char* backend, const Stack& stack,
                        const consensus::ConsensusProtocol* cons,
                        const kv::KvService* kvs,
                        obs::MetricsRegistry& counters, int n) {
  std::string out = "{\"t_ms\":" + std::to_string(t / 1000) +
                    ",\"node\":" + std::to_string(self) + ",\"fd\":\"" + fd +
                    "\",\"backend\":\"" + backend + "\"";
  out += ",\"suspected\":[";
  if (stack.suspects != nullptr) {
    bool first = true;
    for (const ProcessId q : stack.suspects->suspected().members()) {
      if (!first) out += ",";
      out += std::to_string(q);
      first = false;
    }
  }
  out += "]";
  out += ",\"trusted\":";
  out += stack.leader != nullptr ? std::to_string(stack.leader->trusted())
                                 : std::string("null");
  out += ",\"decided\":";
  out += (cons != nullptr && cons->has_decided())
             ? std::to_string(cons->decision()->value)
             : std::string("null");
  if (kvs != nullptr) {
    out += ",\"kv\":{\"applied\":" + std::to_string(kvs->applied_slot()) +
           ",\"keys\":" + std::to_string(kvs->store().size()) +
           ",\"lease\":" + (kvs->lease_valid() ? "true" : "false") +
           ",\"leader\":" + (kvs->is_leader() ? "true" : "false") + "}";
  }
  std::int64_t sent = 0;
  std::int64_t recv = 0;
  for (ProcessId q = 0; q < n; ++q) {
    sent += counters.get("net.sent.p" + std::to_string(q));
    recv += counters.get("net.recv.p" + std::to_string(q));
  }
  out += ",\"sent\":" + std::to_string(sent) +
         ",\"recv\":" + std::to_string(recv) + "}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  int id = -1;
  std::string fd_override;
  std::string backend_override;
  bool consensus_flag = false;
  bool kv_flag = false;
  std::optional<consensus::Value> propose;
  std::int64_t run_ms = -1;
  std::int64_t report_ms = 500;
  bool verbose = false;
  int metrics_port = -1;
  std::string metrics_path;
  std::string trace_path;
  std::string postmortem_path;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (a == "--config") {
      config_path = next();
    } else if (a == "--id") {
      id = std::stoi(next());
    } else if (a == "--fd") {
      fd_override = next();
    } else if (a == "--backend") {
      backend_override = next();
    } else if (a == "--consensus") {
      consensus_flag = true;
    } else if (a == "--kv") {
      kv_flag = true;
    } else if (a == "--propose") {
      propose = std::stoll(next());
    } else if (a == "--run-ms") {
      run_ms = std::stoll(next());
    } else if (a == "--report-ms") {
      report_ms = std::stoll(next());
    } else if (a == "--verbose") {
      verbose = true;
    } else if (a == "--metrics-port") {
      metrics_port = std::stoi(next());
    } else if (a == "--metrics") {
      metrics_path = next();
    } else if (a == "--trace") {
      trace_path = next();
    } else if (a == "--postmortem") {
      postmortem_path = next();
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      usage();
      return 2;
    }
  }
  if (config_path.empty() || id < 0) {
    usage();
    return 2;
  }

  std::string error;
  const auto cfg = transport::load_node_config(config_path, &error);
  if (!cfg) {
    std::cerr << "ecfd_node: " << error << "\n";
    return 2;
  }
  if (id >= cfg->n()) {
    std::cerr << "ecfd_node: --id " << id << " out of range (n=" << cfg->n()
              << ")\n";
    return 2;
  }
  const std::string fd_name = fd_override.empty() ? cfg->fd : fd_override;
  const bool want_consensus = consensus_flag || cfg->consensus;

  const std::string backend_name =
      backend_override.empty() ? cfg->backend : backend_override;
  const auto backend = transport::parse_backend(backend_name);
  if (!backend) {
    std::cerr << "ecfd_node: unknown backend '" << backend_name
              << "' (poll | uring)\n";
    return 2;
  }

  DgramEnv::Options opts;
  opts.self = id;
  opts.peers = cfg->peers;
  opts.seed = cfg->seed;
  opts.loss = cfg->loss;
  opts.min_extra_delay = cfg->min_delay;
  opts.max_extra_delay = cfg->max_delay;
  opts.trace_to_stderr = verbose;
  opts.net = transport::net_tuning_from(*cfg);

  std::string note;
  auto env_ptr = transport::make_net_env(*backend, std::move(opts), &error,
                                         &note);
  if (env_ptr == nullptr) {
    std::cerr << "ecfd_node: " << error << "\n";
    return 2;
  }
  if (!note.empty()) std::cerr << "ecfd_node: " << note << "\n";
  DgramEnv& env = *env_ptr;

  // A recorder feeds the trace file, the flight recorder AND the live QoS
  // scoreboard, so any of those features turns it on.
  std::unique_ptr<obs::Recorder> recorder;
  if (!trace_path.empty() || !postmortem_path.empty() || metrics_port >= 0) {
    recorder = std::make_unique<obs::Recorder>(4096);
    env.attach_recorder(recorder.get());
  }

  // Live per-peer QoS scoreboard (Chen/Toueg/Aguilera estimators), fed by
  // draining this node's state ring on the report timer. qos_mu covers the
  // scoreboard against the HTTP thread reading /qos; the registry cells it
  // updates are atomics and need no lock.
  obs::QosScoreboard qos(cfg->n());
  std::mutex qos_mu;
  std::uint64_t qos_next_seq = 0;
  std::vector<obs::Event> qos_events;
  std::vector<std::uint64_t> qos_seqs;
  if (recorder != nullptr) qos.bind_metrics(&env.metrics());
  auto drain_qos = [&]() {
    if (recorder == nullptr) return;
    const std::lock_guard<std::mutex> lock(qos_mu);
    recorder->state_ring(id).snapshot(&qos_events, &qos_seqs);
    for (std::size_t i = 0; i < qos_events.size(); ++i) {
      if (qos_seqs[i] < qos_next_seq) continue;
      qos.ingest(qos_events[i]);
    }
    if (!qos_seqs.empty()) qos_next_seq = qos_seqs.back() + 1;
    qos.export_gauges(id, env.now());
  };

  // Crash flight recorder: an mmap-backed postmortem image refreshed every
  // report period; the signal handler re-dumps the rings at the moment of
  // death, and MAP_SHARED dirty pages survive the process.
  obs::FlightRecorder flight;
  if (!postmortem_path.empty()) {
    if (!flight.open(postmortem_path, recorder.get(), id, &error)) {
      std::cerr << "ecfd_node: " << error << "\n";
      return 2;
    }
    flight.set_metrics(&env.metrics());
    obs::FlightRecorder::install_crash_handler(&flight);
  }

  obs::MetricsHttpServer http;
  if (metrics_port >= 0) {
    http.handle("/metrics", "text/plain; version=0.0.4", [&env]() {
      std::ostringstream os;
      env.metrics().write_prometheus(os);
      return os.str();
    });
    http.handle("/metrics.json", "application/json", [&env]() {
      std::ostringstream os;
      env.metrics().write_json(os, "ecfd_node");
      return os.str();
    });
    http.handle("/metrics.txt", "text/plain", [&env]() {
      std::ostringstream os;
      env.metrics().write_text(os);
      return os.str();
    });
    http.handle("/qos", "text/plain", [&qos, &qos_mu]() {
      std::ostringstream os;
      const std::lock_guard<std::mutex> lock(qos_mu);
      qos.write_table(os);
      return os.str();
    });
    if (!http.start(metrics_port, &error)) {
      std::cerr << "ecfd_node: " << error << "\n";
      return 2;
    }
  }

  Stack stack = build_fd(env, *cfg, fd_name);
  if (stack.suspects == nullptr && stack.leader == nullptr) {
    std::cerr << "ecfd_node: unknown fd '" << fd_name
              << "' (heartbeat_p | efficient_p | stable_leader | ecfd)\n";
    return 2;
  }

  core::ConsensusC* cons = nullptr;
  if (want_consensus) {
    auto& rb = env.emplace<broadcast::ReliableBroadcast>();
    core::ConsensusC::Config cc;
    cc.poll_period = cfg->period / 2 > 0 ? cfg->period / 2 : msec(1);
    cons = &env.emplace<core::ConsensusC>(stack.ecfd, &rb, cc);
  }

  // The replicated key-value service: a LogReplica (one consensus + RB
  // pair per slot), a dedicated RB instance for batch bodies, and the
  // service protocol that ties them to external clients.
  std::unique_ptr<core::LogReplica> kv_log;
  kv::KvService* kvs = nullptr;
  if (kv_flag || cfg->kv_enabled) {
    if (stack.ecfd == nullptr) {
      std::cerr << "ecfd_node: --kv requires a consensus-capable fd\n";
      return 2;
    }
    core::LogReplica::Config lc;
    lc.capacity = cfg->kv_capacity;
    lc.pipeline_depth = cfg->kv_pipeline_depth;
    lc.quiescent = true;  // a bounded service log must not idle-burn slots
    lc.consensus.poll_period = cfg->period / 2 > 0 ? cfg->period / 2 : msec(1);
    kv_log = std::make_unique<core::LogReplica>(env, stack.ecfd, lc);

    auto& batch_rb =
        env.emplace<broadcast::ReliableBroadcast>(protocol_ids::kKvBatchRb);
    kv::KvService::Config kc;
    kc.batch_max_ops = static_cast<std::size_t>(cfg->kv_batch_max_ops);
    kc.batch_wait = cfg->kv_batch_wait;
    kc.lease_establish = cfg->kv_lease_establish;
    kc.snapshot_every = cfg->kv_snapshot_every;
    kc.dedup_window = static_cast<std::size_t>(cfg->kv_dedup_window);
    kvs = &env.emplace<kv::KvService>(stack.ecfd, kv_log.get(), &batch_rb, kc);
    kvs->bind_metrics(&env.metrics());
    kvs->set_reply_sink([&env](kv::KvService::Token token,
                               const kv::Reply& r) {
      env.send_external(token, Message::make<kv::Reply>(
                                   protocol_ids::kKvService,
                                   kv::kMsgClientReply, "kv.reply", r));
    });
    env.set_external_handler(
        [kvs](DgramEnv::ExternalToken token, const Message& m) {
          if (m.protocol == protocol_ids::kKvService &&
              m.type == kv::kMsgClientRequest && m.has_payload()) {
            kvs->handle_request(token, m.as<kv::Request>());
          }
        });
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  env.start();

  // Report timer: one JSON line per period, re-armed forever. The same
  // tick drains the state ring into the QoS scoreboard and refreshes the
  // flight image, so the postmortem is never staler than one period.
  std::function<void()> report = [&]() {
    std::cout << report_line(env.now(), id, fd_name, env.backend_name(),
                             stack, cons, kvs, env.counters(), env.n())
              << std::endl;  // flush: readers are pipes and demo scripts
    drain_qos();
    if (flight.is_open()) flight.snapshot(env.now());
    env.set_timer(msec(report_ms), report);
  };
  env.set_timer(msec(report_ms), report);

  if (cons != nullptr) {
    // Propose after a grace period so the detector has formed an opinion;
    // the engine copes either way, this just reduces round churn.
    env.set_timer(msec(500), [&]() {
      cons->propose(propose.value_or(static_cast<consensus::Value>(id)));
    });
  }

  // Signal poller: the env is single-threaded, so a timer is the clean
  // place to notice SIGINT/SIGTERM and stop the loop.
  std::function<void()> watch_signals = [&]() {
    if (g_stop) {
      env.stop();
      return;
    }
    env.set_timer(msec(50), watch_signals);
  };
  env.set_timer(msec(50), watch_signals);

  if (run_ms >= 0) {
    env.run_for(msec(run_ms));
  } else {
    while (!g_stop) env.run_for(sec(3600));
  }

  std::cout << report_line(env.now(), id, fd_name, env.backend_name(),
                           stack, cons, kvs, env.counters(), env.n())
            << std::endl;

  // Orderly teardown of the observability tier: final QoS drain, final
  // flight snapshot (no crash signal stamped), handler deregistered before
  // the flight image unmaps, HTTP server stopped and joined.
  drain_qos();
  if (flight.is_open()) {
    flight.snapshot(env.now());
    obs::FlightRecorder::install_crash_handler(nullptr);
    flight.close();
  }
  http.stop();

  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    if (!os) {
      std::cerr << "ecfd_node: cannot open " << metrics_path << "\n";
      return 2;
    }
    env.metrics().write_json(os, "ecfd_node");
  }
  if (recorder != nullptr && !trace_path.empty()) {
    std::ofstream os(trace_path);
    if (!os) {
      std::cerr << "ecfd_node: cannot open " << trace_path << "\n";
      return 2;
    }
    recorder->write_trace_json(os);
  }
  return 0;
}
