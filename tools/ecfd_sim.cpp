// ecfd_sim — command-line scenario runner.
//
// Runs a consensus experiment on the deterministic simulator and prints
// the outcome, so users can explore the algorithms without writing code:
//
//   ecfd_sim [--n N] [--seed S] [--algo c|c-merged|ct|mr]
//            [--fd ring|heartbeat|mix|effp|scripted|adaptive|hier|swim]
//            [--crash P@MS ...]
//            [--gst MS] [--delta MS] [--stable-at MS] [--horizon MS]
//            [--max-rounds R] [--ewa-only] [--leader K] [--verbose]
//            [--check] [--check-margin MS]
//            [--trace FILE] [--trace-chrome FILE] [--trace-depth N]
//            [--metrics FILE]
//
// Examples:
//   ecfd_sim --n 7 --algo c --fd ring --crash 0@300 --crash 5@500
//   ecfd_sim --n 9 --algo ct --fd scripted --ewa-only --leader 8
//   ecfd_sim --n 5 --fd heartbeat --crash 2@400 --check --horizon 8000
//
// With --check the run continues to the horizon under the online property
// monitors (src/check/) and prints a per-property verdict table; eventual
// properties must stabilize at least --check-margin ms before the end.
//
// With --trace the run records typed events (sends, deliveries, suspicions,
// leader changes, rounds, decisions — plus monitor verdict flips under
// --check) into per-host rings and writes an ecfd.trace.v1 JSON file for
// tools/ecfd_trace; --trace-chrome writes the Chrome-trace rendering
// directly. --metrics writes the run's counter registry as
// ecfd.metrics.v1 JSON.
//
// Exit code: 0 when every correct process decided and all consensus
// properties held (and, with --check, no monitored property failed);
// 1 otherwise.

#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "check/sim_monitor.hpp"
#include "consensus/fd_stacks.hpp"
#include "consensus/harness.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

using namespace ecfd;
using namespace ecfd::consensus;

namespace {

void usage() {
  std::cout <<
      "ecfd_sim — consensus on eventually consistent failure detectors\n"
      "\n"
      "  --n N            processes (default 5)\n"
      "  --seed S         rng seed (default 1)\n"
      "  --algo A         c | c-merged | ct | mr   (default c)\n"
      "  --fd F           failure-detector stack (default ring):\n";
  for (const FdStackInfo& info : all_fd_stacks()) {
    std::cout << "                     " << info.alias;
    if (std::string(info.alias) != info.name) {
      std::cout << " (" << info.name << ")";
    }
    std::cout << " — " << info.summary << "\n";
  }
  std::cout <<
      "  --crash P@MS     crash process P at MS milliseconds (repeatable)\n"
      "  --gst MS         global stabilization time (default 200)\n"
      "  --delta MS       post-GST delay bound (default 5)\n"
      "  --stable-at MS   scripted detector stabilization time (default 300)\n"
      "  --ewa-only       scripted detector suspects everyone but the leader\n"
      "  --leader K       scripted leader (default: first correct)\n"
      "  --horizon MS     stop the run after MS ms (default 30000)\n"
      "  --max-rounds R   give up after R rounds (default unlimited)\n"
      "  --verbose        print the per-process outcome table\n"
      "  --check          attach online property monitors; run to horizon\n"
      "  --check-margin MS  stabilization margin for eventual properties\n"
      "                     (default 2000)\n"
      "  --trace FILE     write the typed event trace (ecfd.trace.v1 JSON)\n"
      "  --trace-chrome FILE  write the Chrome-trace rendering directly\n"
      "  --trace-depth N  per-host hot-ring capacity (default 4096)\n"
      "  --metrics FILE   write run counters as ecfd.metrics.v1 JSON\n";
}

bool parse_crash(const std::string& arg, ScenarioConfig& sc) {
  const auto at = arg.find('@');
  if (at == std::string::npos) return false;
  sc.with_crash(std::stoi(arg.substr(0, at)),
                msec(std::stoll(arg.substr(at + 1))));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  HarnessConfig cfg;
  cfg.scenario.n = 5;
  cfg.scenario.seed = 1;
  cfg.scenario.links = LinkKind::kPartialSync;
  cfg.scenario.gst = msec(200);
  cfg.scenario.delta = msec(5);
  cfg.algo = Algo::kEcfdC;
  cfg.fd = FdStack::kRing;
  cfg.fd_stable_at = msec(300);
  bool verbose = false;
  bool check_mode = false;
  DurUs check_margin = sec(2);
  std::string trace_path;
  std::string trace_chrome_path;
  std::size_t trace_depth = 4096;
  std::string metrics_path;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (a == "--n") {
      cfg.scenario.n = std::stoi(next());
    } else if (a == "--seed") {
      cfg.scenario.seed = std::stoull(next());
    } else if (a == "--algo") {
      const std::string v = next();
      if (v == "c") cfg.algo = Algo::kEcfdC;
      else if (v == "c-merged") cfg.algo = Algo::kEcfdCMerged;
      else if (v == "ct") cfg.algo = Algo::kChandraTouegS;
      else if (v == "mr") cfg.algo = Algo::kMrOmega;
      else { std::cerr << "unknown algo " << v << "\n"; return 2; }
    } else if (a == "--fd") {
      const std::string v = next();
      const FdStackInfo* info = fd_stack_by_name(v);
      if (info == nullptr) { std::cerr << "unknown fd " << v << "\n"; return 2; }
      cfg.fd = info->id;
    } else if (a == "--crash") {
      if (!parse_crash(next(), cfg.scenario)) {
        std::cerr << "--crash expects P@MS\n";
        return 2;
      }
    } else if (a == "--gst") {
      cfg.scenario.gst = msec(std::stoll(next()));
    } else if (a == "--delta") {
      cfg.scenario.delta = msec(std::stoll(next()));
    } else if (a == "--stable-at") {
      cfg.fd_stable_at = msec(std::stoll(next()));
    } else if (a == "--ewa-only") {
      cfg.scripted_ewa_only = true;
    } else if (a == "--leader") {
      cfg.scripted_leader = std::stoi(next());
    } else if (a == "--horizon") {
      cfg.horizon = msec(std::stoll(next()));
    } else if (a == "--max-rounds") {
      cfg.max_rounds = std::stoi(next());
    } else if (a == "--verbose") {
      verbose = true;
    } else if (a == "--check") {
      check_mode = true;
    } else if (a == "--check-margin") {
      check_margin = msec(std::stoll(next()));
    } else if (a == "--trace") {
      trace_path = next();
    } else if (a == "--trace-chrome") {
      trace_chrome_path = next();
    } else if (a == "--trace-depth") {
      trace_depth = std::stoul(next());
    } else if (a == "--metrics") {
      metrics_path = next();
    } else {
      std::cerr << "unknown flag " << a << " (try --help)\n";
      return 2;
    }
  }

  // The recorder outlives the simulated System (it is snapshotted after
  // run_consensus returns), so it lives here and is attached by the
  // instrument hook.
  std::unique_ptr<obs::Recorder> recorder;
  if (!trace_path.empty() || !trace_chrome_path.empty()) {
    recorder = std::make_unique<obs::Recorder>(trace_depth);
  }

  check::SimMonitor monitor(check::SimMonitor::Config{});
  if (check_mode || recorder != nullptr) {
    if (check_mode) cfg.run_to_horizon = true;  // monitors need the tail
    cfg.instrument = [&](const HarnessInstruments& inst) {
      if (recorder != nullptr) inst.sys.attach_recorder(recorder.get());
      if (check_mode) {
        if (recorder != nullptr) monitor.set_recorder(recorder.get());
        monitor.install_from(inst, cfg.horizon);
      }
    };
  }

  const HarnessResult r = run_consensus(cfg);

  std::cout << "result: " << summarize(r) << "\n";
  std::cout << "decision round (earliest broadcast): " << r.min_decision_round
            << "\n";
  std::cout << "messages: consensus=" << r.consensus_msgs
            << " rb=" << r.rb_msgs << " fd=" << r.fd_msgs << "\n";
  if (verbose) {
    std::cout << "\nprocess | decided | value | round | at_ms | last_round\n";
    for (ProcessId p = 0; p < cfg.scenario.n; ++p) {
      const auto& o = r.outcomes[static_cast<std::size_t>(p)];
      std::cout << "   p" << p << "    |   " << (o.decided ? "yes" : " - ")
                << "   | " << (o.decided ? std::to_string(o.value) : "-")
                << " | " << o.round << " | " << o.at / 1000 << " | "
                << o.last_round
                << (r.correct.contains(p) ? "" : "  (crashed)") << "\n";
    }
  }

  bool ok = r.every_correct_decided && r.uniform_agreement && r.validity;
  if (check_mode) {
    std::cout << "\nproperty verdicts (margin "
              << check_margin / 1000 << "ms):\n";
    for (const check::Verdict& v : monitor.verdicts(r.sim_end)) {
      const bool pass = check::satisfied(v, r.sim_end, check_margin);
      std::cout << "  [" << (v.required ? (pass ? "PASS" : "FAIL") : "info")
                << "] " << v.to_string() << "\n";
    }
    ok = ok && monitor.violations(r.sim_end, check_margin).empty();
  }

  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    if (!os) {
      std::cerr << "cannot open " << trace_path << " for the trace\n";
      return 2;
    }
    recorder->write_trace_json(os);
    std::cout << "trace written: " << trace_path << "\n";
  }
  if (!trace_chrome_path.empty()) {
    std::ofstream os(trace_chrome_path);
    if (!os) {
      std::cerr << "cannot open " << trace_chrome_path << " for the trace\n";
      return 2;
    }
    obs::write_chrome_trace(
        os, obs::merge({obs::snapshot_doc(*recorder, "ecfd_sim")}));
    std::cout << "chrome trace written: " << trace_chrome_path << "\n";
  }
  if (!metrics_path.empty()) {
    obs::MetricsRegistry metrics;
    metrics.import_counters(r.counters);
    metrics.add("run.events_fired", static_cast<std::int64_t>(r.events_fired));
    metrics.add("run.sim_end_us", r.sim_end);
    metrics.add("run.msgs.consensus", r.consensus_msgs);
    metrics.add("run.msgs.rb", r.rb_msgs);
    metrics.add("run.msgs.fd", r.fd_msgs);
    if (recorder != nullptr) {
      metrics.add("obs.dropped",
                  static_cast<std::int64_t>(recorder->dropped_total()));
    }
    std::ofstream os(metrics_path);
    if (!os) {
      std::cerr << "cannot open " << metrics_path << " for metrics\n";
      return 2;
    }
    metrics.write_json(os, "ecfd_sim");
    std::cout << "metrics written: " << metrics_path << "\n";
  }

  std::cout << (ok ? "OK" : "FAILED") << "\n";
  return ok ? 0 : 1;
}
