// ecfd_kv — client CLI + closed-loop load generator for the replicated
// key-value service (kv/service.hpp) served by `ecfd_node --kv`.
//
//   ecfd_kv --config cluster.ini put KEY VALUE
//   ecfd_kv --config cluster.ini get KEY
//   ecfd_kv --config cluster.ini del KEY
//   ecfd_kv --config cluster.ini cas KEY EXPECTED VALUE
//   ecfd_kv --config cluster.ini bench [options]
//
// The config's [peers] table doubles as the server list; clients are
// external to the universe (src = kNoProcess frames through SocketEnv's
// external path), follow kNotLeader redirects, rotate servers on timeout,
// and reuse write sequence numbers on retry so every write is applied
// exactly once even across a leader kill -9.
//
// bench options (YCSB-style closed loop; one session per client thread):
//   --clients N        concurrent closed-loop clients (default 4)
//   --ops N            operations per client (default 1000; 0 = duration)
//   --duration-ms MS   run for wall time instead of an op count
//   --read-pct P       percent GETs in the mix (default 50)
//   --keys N           key-space size (default 1000)
//   --dist uniform|zipf  key popularity (default uniform; zipf theta .99)
//   --value-bytes B    value payload size (default 100)
//   --batch N          write ops packed per request envelope (default 1)
//   --suite            run the checked-in baseline matrix (lease vs log
//                      reads, batched vs unbatched writes) in one process
//   --no-lease         clear kFlagLeaseRead: reads go through the log
//   --timeout-ms MS    per-attempt reply timeout (default 200)
//   --verify           read back every key at the end; exit 1 if any
//                      acked write was lost (the smoke test's teeth)
//   --json FILE        mirror results as ecfd.bench.v1 (bench/table.hpp)
//   --metrics FILE     write client-side metrics as ecfd.metrics.v1 JSON:
//                      kv.client.read_us / kv.client.write_us latency
//                      histograms plus op/failure/redirect/timeout
//                      counters (with --suite, the last cell wins)
//
// Output: a fixed-width table (throughput, p50/p95/p99 latency, retries)
// plus per-run accounting; exit 0 on success, 1 on verification failure,
// 2 on usage/config/connect errors.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/table.hpp"
#include "kv/client.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "transport/node_config.hpp"

using namespace ecfd;

namespace {

std::int64_t wall_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct BenchOptions {
  int clients{4};
  std::int64_t ops{1000};
  std::int64_t duration_ms{0};
  int read_pct{50};
  int keys{1000};
  std::string dist{"uniform"};
  int value_bytes{100};
  int batch{1};  ///< write ops packed per request envelope
  bool lease{true};
  std::int64_t timeout_ms{200};
  bool verify{false};
  bool suite{false};
  std::string metrics_path;  ///< ecfd.metrics.v1 JSON (empty = off)
};

/// Zipf(theta) sampler over [0, n) via inverse-CDF on a precomputed table
/// (n is small — the key space — so the table is cheap and exact).
class ZipfPicker {
 public:
  ZipfPicker(int n, double theta) : cdf_(static_cast<std::size_t>(n)) {
    double sum = 0;
    for (int i = 0; i < n; ++i) sum += 1.0 / std::pow(i + 1, theta);
    double acc = 0;
    for (int i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(i + 1, theta) / sum;
      cdf_[static_cast<std::size_t>(i)] = acc;
    }
  }
  int pick(double u) const {
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct ClientResult {
  std::int64_t ops_done{0};
  std::int64_t acked_writes{0};
  std::int64_t reads{0};
  std::int64_t failures{0};  ///< calls with no reply (attempt budget gone)
  kv::KvClient::Stats net;
  std::vector<std::int64_t> latencies_us;
  std::vector<std::int64_t> read_lat_us;   ///< successful GETs only
  std::vector<std::int64_t> write_lat_us;  ///< acked write envelopes only
  /// key -> (last acked value, was the *last issued* write acked?). Keys
  /// are partitioned per client, so this is the ground truth for --verify.
  std::map<std::string, std::pair<std::string, bool>> last_write;
};

std::string ops_value(const std::string& base, int client, std::int64_t req,
                      std::size_t b) {
  return base + "." + std::to_string(client) + "." + std::to_string(req) +
         "." + std::to_string(b);
}

std::string key_name(int client, int k) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "c%02d.k%06d", client, k);
  return buf;
}

ClientResult run_client(int idx, const transport::NodeConfig& cfg,
                        const BenchOptions& opt,
                        const std::atomic<bool>* stop_flag) {
  ClientResult res;
  kv::KvClient::Config cc;
  cc.servers = cfg.peers;
  cc.request_timeout = msec(opt.timeout_ms);
  cc.lease_reads = opt.lease;
  // Sessions are replicated state with monotone seqs: a fresh client MUST
  // NOT reuse an id a previous run opened (its restarted seq counter would
  // collide with the server-side window), so derive a unique one per
  // client instance — clock salted with the client index, since all
  // threads start in the same microsecond.
  cc.session = (static_cast<std::uint64_t>(wall_us()) << 8) ^
               (0x4B56ULL << 48) ^ static_cast<std::uint64_t>(idx + 1);
  kv::KvClient client(cc);
  std::string err;
  if (!client.connect(&err) || !client.open_session(&err)) {
    std::cerr << "client " << idx << ": " << err << "\n";
    res.failures = 1;
    return res;
  }

  Rng rng(0x9E37ULL * static_cast<std::uint64_t>(idx + 1));
  std::optional<ZipfPicker> zipf;
  if (opt.dist == "zipf") zipf.emplace(opt.keys, 0.99);
  const std::string value(static_cast<std::size_t>(opt.value_bytes), 'v');

  const std::int64_t deadline =
      opt.duration_ms > 0 ? wall_us() + msec(opt.duration_ms) : 0;
  for (std::int64_t i = 0; opt.ops <= 0 || i < opt.ops; ++i) {
    if (deadline > 0 && wall_us() >= deadline) break;
    if (stop_flag != nullptr && stop_flag->load()) break;

    const int k = zipf ? zipf->pick(rng.uniform01())
                       : static_cast<int>(rng.below(
                             static_cast<std::uint64_t>(opt.keys)));
    const std::string key = key_name(idx, k);
    const bool is_read =
        static_cast<int>(rng.below(100)) < opt.read_pct;

    const std::int64_t t0 = wall_us();
    if (is_read) {
      std::string out;
      const kv::Status st = client.get(key, &out);
      if (st == kv::Status::kOk || st == kv::Status::kNotFound) {
        ++res.reads;
        res.latencies_us.push_back(wall_us() - t0);
        res.read_lat_us.push_back(res.latencies_us.back());
      } else {
        ++res.failures;
      }
      ++res.ops_done;
    } else {
      // One request envelope carrying opt.batch puts (1 = unbatched).
      // Values are tagged with (client, op#) so verification can't be
      // fooled by an identical older write.
      std::vector<kv::Op> ops;
      std::vector<std::string> keys;
      for (int b = 0; b < opt.batch; ++b) {
        const int bk =
            b == 0 ? k
                   : static_cast<int>(rng.below(
                         static_cast<std::uint64_t>(opt.keys)));
        kv::Op op;
        op.op = kv::OpKind::kPut;
        op.key = key_name(idx, bk);
        op.value = ops_value(value, idx, i, static_cast<std::size_t>(b));
        res.last_write[op.key] = {op.value, false};
        keys.push_back(op.key);
        ops.push_back(std::move(op));
      }
      const auto reply = client.execute(std::move(ops));
      if (reply && reply->status == kv::Status::kOk) {
        res.latencies_us.push_back(wall_us() - t0);
        res.write_lat_us.push_back(res.latencies_us.back());
        for (std::size_t b = 0; b < reply->results.size(); ++b) {
          if (reply->results[b].status != kv::Status::kOk) {
            ++res.failures;
            continue;
          }
          ++res.acked_writes;
          ++res.ops_done;
          // A later op in the same envelope may rewrite the key; only the
          // envelope's last write per key (the value recorded above) is
          // the final state, so only that one is marked acked-for-verify.
          auto it = res.last_write.find(keys[b]);
          if (it != res.last_write.end() &&
              it->second.first == ops_value(value, idx, i, b)) {
            it->second.second = true;
          }
        }
      } else {
        res.failures += static_cast<std::int64_t>(keys.size());
      }
    }
  }
  res.net = client.stats();
  return res;
}

/// Reads back every acked write; returns the number of lost ones. A key
/// whose *last issued* write was never acked is skipped (the unacked
/// write may legitimately have committed).
std::int64_t verify(const transport::NodeConfig& cfg, const BenchOptions& opt,
                    const std::vector<ClientResult>& results) {
  kv::KvClient::Config cc;
  cc.servers = cfg.peers;
  cc.request_timeout = msec(opt.timeout_ms);
  cc.max_attempts = 50;
  kv::KvClient client(cc);
  std::string err;
  if (!client.connect(&err) || !client.open_session(&err)) {
    std::cerr << "verify: " << err << "\n";
    return -1;
  }
  std::int64_t lost = 0;
  std::int64_t checked = 0;
  for (const ClientResult& r : results) {
    for (const auto& [key, vw] : r.last_write) {
      const auto& [val, acked] = vw;
      if (!acked) continue;  // last issued write unacked: value ambiguous
      std::string out;
      const kv::Status st = client.get(key, &out);
      ++checked;
      if (st != kv::Status::kOk || out != val) {
        ++lost;
        if (lost <= 10) {
          std::cerr << "verify: LOST acked write " << key << " (got "
                    << (st == kv::Status::kOk ? out : kv::status_name(st))
                    << ")\n";
        }
      }
    }
  }
  std::cout << "verify: " << checked << " acked keys checked, " << lost
            << " lost\n";
  return lost;
}

std::int64_t pct(std::vector<std::int64_t>& v, double p) {
  if (v.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) / 100.0);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

int run_bench(const transport::NodeConfig& cfg, const BenchOptions& opt) {
  std::atomic<bool> stop{false};
  std::vector<ClientResult> results(static_cast<std::size_t>(opt.clients));
  std::vector<std::thread> threads;
  const std::int64_t t0 = wall_us();
  threads.reserve(static_cast<std::size_t>(opt.clients));
  for (int c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c] {
      results[static_cast<std::size_t>(c)] = run_client(c, cfg, opt, &stop);
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      static_cast<double>(wall_us() - t0) / 1e6;

  std::int64_t ops = 0;
  std::int64_t acked = 0;
  std::int64_t reads = 0;
  std::int64_t failures = 0;
  std::int64_t redirects = 0;
  std::int64_t timeouts = 0;
  std::int64_t attempts = 0;
  std::vector<std::int64_t> lat;
  for (auto& r : results) {
    ops += r.ops_done;
    acked += r.acked_writes;
    reads += r.reads;
    failures += r.failures;
    redirects += r.net.redirects;
    timeouts += r.net.timeouts;
    attempts += r.net.attempts;
    lat.insert(lat.end(), r.latencies_us.begin(), r.latencies_us.end());
  }
  const double thru = elapsed_s > 0 ? static_cast<double>(ops) / elapsed_s : 0;
  std::vector<std::int64_t> l50 = lat;
  std::vector<std::int64_t> l95 = lat;
  std::vector<std::int64_t> l99 = lat;

  bench::section("kv load (" + std::to_string(opt.read_pct) + "% reads, " +
                 (opt.lease ? "lease" : "log") + " reads, " + opt.dist +
                 (opt.batch > 1 ? ", batch " + std::to_string(opt.batch)
                                : std::string(", unbatched")) +
                 ")");
  bench::Table t({"clients", "ops", "acked_w", "reads", "fail", "thru_ops_s",
                  "p50_us", "p95_us", "p99_us", "redirects", "timeouts"},
                 12);
  t.print_header();
  t.print_row(opt.clients, ops, acked, reads, failures, thru, pct(l50, 50),
              pct(l95, 95), pct(l99, 99), redirects, timeouts);
  std::cout << "elapsed " << elapsed_s << " s, " << attempts
            << " datagrams sent\n";

  if (!opt.metrics_path.empty()) {
    // Client-side view of the service, in the same registry format the
    // servers export: per-op latency histograms + outcome counters.
    obs::MetricsRegistry reg;
    obs::Histogram* read_h = reg.histogram("kv.client.read_us");
    obs::Histogram* write_h = reg.histogram("kv.client.write_us");
    for (const auto& r : results) {
      for (const std::int64_t v : r.read_lat_us) read_h->observe(v);
      for (const std::int64_t v : r.write_lat_us) write_h->observe(v);
    }
    reg.add("kv.client.ops", ops);
    reg.add("kv.client.acked_writes", acked);
    reg.add("kv.client.reads", reads);
    reg.add("kv.client.failures", failures);
    reg.add("kv.client.redirects", redirects);
    reg.add("kv.client.timeouts", timeouts);
    reg.add("kv.client.attempts", attempts);
    std::ofstream os(opt.metrics_path);
    if (!os) {
      std::cerr << "ecfd_kv: cannot open " << opt.metrics_path << "\n";
      return 2;
    }
    reg.write_json(os, "ecfd_kv");
  }

  int rc = 0;
  if (opt.verify) {
    const std::int64_t lost = verify(cfg, opt, results);
    if (lost != 0) rc = 1;
  }
  // Every client failing outright (e.g. no cluster) is an error even
  // without --verify.
  if (ops == 0 && failures > 0) rc = 2;
  return rc;
}

/// The checked-in-baseline matrix (BENCH_KV.json): lease vs log reads on a
/// read-heavy mix, a balanced mix, and unbatched vs batched pure writes.
int run_suite(const transport::NodeConfig& cfg, const BenchOptions& base) {
  struct Cell {
    int read_pct;
    bool lease;
    int batch;
  };
  const Cell cells[] = {
      {95, true, 1},   // read-heavy, leader-local lease reads
      {95, false, 1},  // read-heavy, every read through the log
      {50, true, 1},   // balanced mix
      {0, true, 1},    // pure writes, one op per request
      {0, true, 16},   // pure writes, 16 ops per request envelope
  };
  int rc = 0;
  for (const Cell& c : cells) {
    BenchOptions opt = base;
    opt.read_pct = c.read_pct;
    opt.lease = c.lease;
    opt.batch = c.batch;
    const int cell_rc = run_bench(cfg, opt);
    if (rc == 0) rc = cell_rc;
  }
  return rc;
}

void usage() {
  std::cout
      << "ecfd_kv — client for the replicated kv service (ecfd_node --kv)\n"
         "\n"
         "  ecfd_kv --config FILE [--servers H:P,H:P,...] COMMAND\n"
         "\n"
         "  put KEY VALUE | get KEY | del KEY | cas KEY EXPECTED VALUE\n"
         "  bench [--clients N] [--ops N] [--duration-ms MS] [--read-pct P]\n"
         "        [--keys N] [--dist uniform|zipf] [--value-bytes B]\n"
         "        [--batch N] [--no-lease] [--timeout-ms MS] [--verify]\n"
         "        [--suite] [--json FILE] [--metrics FILE]\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string servers_arg;
  std::vector<std::string> rest;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (a == "--config") {
      config_path = next();
    } else if (a == "--servers") {
      servers_arg = next();
    } else {
      rest.push_back(a);
    }
  }

  transport::NodeConfig cfg;
  if (!config_path.empty()) {
    std::string error;
    const auto loaded = transport::load_node_config(config_path, &error);
    if (!loaded) {
      std::cerr << "ecfd_kv: " << error << "\n";
      return 2;
    }
    cfg = *loaded;
  }
  if (!servers_arg.empty()) {
    cfg.peers.clear();
    std::size_t pos = 0;
    while (pos <= servers_arg.size()) {
      const auto comma = servers_arg.find(',', pos);
      const std::string part = servers_arg.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      const auto addr = transport::parse_peer_addr(part);
      if (!addr) {
        std::cerr << "ecfd_kv: bad server address '" << part << "'\n";
        return 2;
      }
      cfg.peers.push_back(*addr);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (cfg.peers.empty() || rest.empty()) {
    usage();
    return 2;
  }

  const std::string cmd = rest[0];
  if (cmd == "bench") {
    BenchOptions opt;
    for (std::size_t i = 1; i < rest.size(); ++i) {
      const std::string& a = rest[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= rest.size()) {
          std::cerr << "missing value for " << a << "\n";
          std::exit(2);
        }
        return rest[++i];
      };
      if (a == "--clients") {
        opt.clients = std::stoi(next());
      } else if (a == "--ops") {
        opt.ops = std::stoll(next());
      } else if (a == "--duration-ms") {
        opt.duration_ms = std::stoll(next());
        if (opt.ops == 1000) opt.ops = 0;  // duration overrides default
      } else if (a == "--read-pct") {
        opt.read_pct = std::stoi(next());
      } else if (a == "--keys") {
        opt.keys = std::stoi(next());
      } else if (a == "--dist") {
        opt.dist = next();
      } else if (a == "--value-bytes") {
        opt.value_bytes = std::stoi(next());
      } else if (a == "--batch") {
        opt.batch = std::stoi(next());
      } else if (a == "--suite") {
        opt.suite = true;
      } else if (a == "--no-lease") {
        opt.lease = false;
      } else if (a == "--timeout-ms") {
        opt.timeout_ms = std::stoll(next());
      } else if (a == "--verify") {
        opt.verify = true;
      } else if (a == "--json") {
        // handled by bench::init below; need argc/argv-style passthrough
        ++i;
      } else if (a == "--metrics") {
        opt.metrics_path = next();
      } else {
        std::cerr << "ecfd_kv: unknown bench option " << a << "\n";
        return 2;
      }
    }
    if (opt.clients < 1 || opt.keys < 1 || opt.read_pct < 0 ||
        opt.read_pct > 100 || opt.value_bytes < 0 ||
        opt.value_bytes > static_cast<int>(kv::kMaxValueBytes) - 32 ||
        opt.batch < 1 ||
        opt.batch > static_cast<int>(kv::kMaxOpsPerRequest) ||
        (opt.dist != "uniform" && opt.dist != "zipf")) {
      std::cerr << "ecfd_kv: bad bench options\n";
      return 2;
    }
    bench::init(argc, argv, "kv_load");
    const int rc = opt.suite ? run_suite(cfg, opt) : run_bench(cfg, opt);
    const int json_rc = bench::finish();
    return rc != 0 ? rc : json_rc;
  }

  // Single-shot commands.
  kv::KvClient::Config cc;
  cc.servers = cfg.peers;
  kv::KvClient client(cc);
  std::string err;
  if (!client.connect(&err) || !client.open_session(&err)) {
    std::cerr << "ecfd_kv: " << err << "\n";
    return 2;
  }
  if (cmd == "put" && rest.size() == 3) {
    const kv::Status st = client.put(rest[1], rest[2]);
    std::cout << kv::status_name(st) << "\n";
    return st == kv::Status::kOk ? 0 : 1;
  }
  if (cmd == "get" && rest.size() == 2) {
    std::string out;
    const kv::Status st = client.get(rest[1], &out);
    if (st == kv::Status::kOk) {
      std::cout << out << "\n";
      return 0;
    }
    std::cout << kv::status_name(st) << "\n";
    return 1;
  }
  if (cmd == "del" && rest.size() == 2) {
    const kv::Status st = client.del(rest[1]);
    std::cout << kv::status_name(st) << "\n";
    return st == kv::Status::kOk ? 0 : 1;
  }
  if (cmd == "cas" && rest.size() == 4) {
    std::string current;
    const kv::Status st = client.cas(rest[1], rest[2], rest[3], &current);
    std::cout << kv::status_name(st);
    if (st == kv::Status::kCasMismatch) std::cout << " current=" << current;
    std::cout << "\n";
    return st == kv::Status::kOk ? 0 : 1;
  }
  usage();
  return 2;
}
