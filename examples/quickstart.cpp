// Quickstart: an eventually consistent failure detector (◇C) in action.
//
// Five simulated processes run the ring detector, which provides both ◇C
// outputs at once: a suspected set (◇S-quality) and a trusted process
// (Omega-quality). We crash two processes and watch every survivor's view
// converge: crashed processes become permanently suspected and everyone
// ends up trusting the same correct process.
//
// Build & run:  ./build/examples/quickstart

#include <iomanip>
#include <iostream>

#include "core/ecfd_compose.hpp"
#include "fd/ring_fd.hpp"
#include "net/scenario.hpp"

using namespace ecfd;

int main() {
  constexpr int kN = 5;

  ScenarioConfig cfg;
  cfg.n = kN;
  cfg.seed = 2024;
  cfg.links = LinkKind::kPartialSync;
  cfg.gst = msec(200);    // network is erratic for the first 200ms
  cfg.delta = msec(5);    // then every message arrives within 5ms
  cfg.with_crash(0, msec(600));   // the initial leader dies...
  cfg.with_crash(3, msec(1200));  // ...and later another process

  auto sys = make_system(cfg);

  // One ◇C module per process: the ring detector already provides both
  // interfaces, so the adapter is free (Section 3 of the paper).
  std::vector<core::EcfdFromRing> oracles;
  oracles.reserve(kN);
  std::vector<fd::RingFd*> rings;
  for (ProcessId p = 0; p < kN; ++p) {
    rings.push_back(&sys->host(p).emplace<fd::RingFd>());
  }
  for (ProcessId p = 0; p < kN; ++p) oracles.emplace_back(rings[p]);

  sys->start();

  std::cout << "time_ms | per-process view: trusted(suspected)\n";
  std::cout << "--------+------------------------------------------\n";
  for (TimeUs t = msec(100); t <= sec(3); t += msec(200)) {
    sys->run_until(t);
    std::cout << std::setw(7) << t / 1000 << " |";
    for (ProcessId p = 0; p < kN; ++p) {
      if (sys->host(p).crashed()) {
        std::cout << "  p" << p << ":dead";
        continue;
      }
      std::cout << "  p" << p << ":p" << oracles[p].trusted()
                << oracles[p].suspected().to_string();
    }
    std::cout << '\n';
  }

  std::cout << "\nFinal state: every survivor trusts p"
            << oracles[1].trusted() << " and suspects "
            << oracles[1].suspected().to_string()
            << " — strong completeness + eventual leader agreement.\n";
  std::cout << "Total messages: " << sys->network().sent_total() << "\n";
  return 0;
}
