// Side-by-side comparison of the failure-detector implementations:
//
//   heartbeat ◇P     — all-to-all, n(n-1) msgs/period, fast detection
//   ring ◇S/◇P       — 2n msgs/period, detection propagates around the ring
//   leader-candidate — Omega only, (n-1) msgs/period in steady state
//   ◇C→◇P (Fig. 2)   — 2(n-1) msgs/period, leader-centred
//
// One process crashes mid-run; the program prints, for each detector, when
// each survivor started suspecting it, plus the total message bill.
//
// Build & run:  ./build/examples/fd_comparison

#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "core/c_to_p.hpp"
#include "fd/heartbeat_p.hpp"
#include "fd/leader_candidate.hpp"
#include "fd/ring_fd.hpp"
#include "net/scenario.hpp"

using namespace ecfd;

namespace {

constexpr int kN = 8;
constexpr ProcessId kVictim = 4;
constexpr TimeUs kCrashAt = sec(1);

struct RunResult {
  std::vector<DurUs> suspect_delay_ms;  // per survivor, -1 = never
  std::int64_t messages{};
};

template <class InstallFn>
RunResult run_detector(InstallFn install, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n = kN;
  cfg.seed = seed;
  cfg.links = LinkKind::kPartialSync;
  cfg.gst = msec(150);
  cfg.delta = msec(5);
  auto sys = make_system(cfg);

  std::vector<const SuspectOracle*> oracles(kN, nullptr);
  install(*sys, oracles);
  sys->crash_at(kVictim, kCrashAt);
  sys->start();

  RunResult out;
  out.suspect_delay_ms.assign(kN, -1);
  const TimeUs end = kCrashAt + sec(5);
  while (sys->now() < end) {
    sys->run_for(msec(1));
    if (sys->now() <= kCrashAt) continue;
    for (ProcessId p = 0; p < kN; ++p) {
      if (p == kVictim || out.suspect_delay_ms[p] >= 0) continue;
      if (oracles[p] != nullptr &&
          oracles[p]->suspected().contains(kVictim)) {
        out.suspect_delay_ms[p] = (sys->now() - kCrashAt) / 1000;
      }
    }
  }
  out.messages = sys->network().sent_total();
  return out;
}

void print_row(const char* name, const RunResult& r) {
  std::cout << std::setw(14) << name << " |";
  for (ProcessId p = 0; p < kN; ++p) {
    if (p == kVictim) {
      std::cout << std::setw(6) << "X";
    } else if (r.suspect_delay_ms[p] < 0) {
      std::cout << std::setw(6) << "-";
    } else {
      std::cout << std::setw(6) << r.suspect_delay_ms[p];
    }
  }
  std::cout << " | " << std::setw(8) << r.messages << '\n';
}

}  // namespace

int main() {
  std::cout << "p" << kVictim << " crashes at t=1s. Cells: ms from crash "
            << "until that process suspects it.\n\n";
  std::cout << std::setw(14) << "detector" << " |";
  for (ProcessId p = 0; p < kN; ++p) std::cout << std::setw(6) << ("p" + std::to_string(p));
  std::cout << " | " << std::setw(8) << "msgs" << '\n';
  std::cout << std::string(14 + 2 + 6 * kN + 3 + 8, '-') << '\n';

  print_row("heartbeat-P",
            run_detector(
                [](System& sys, std::vector<const SuspectOracle*>& out) {
                  for (ProcessId p = 0; p < kN; ++p) {
                    out[p] = &sys.host(p).emplace<fd::HeartbeatP>();
                  }
                },
                1));

  print_row("ring",
            run_detector(
                [](System& sys, std::vector<const SuspectOracle*>& out) {
                  for (ProcessId p = 0; p < kN; ++p) {
                    out[p] = &sys.host(p).emplace<fd::RingFd>();
                  }
                },
                2));

  print_row("ctp(Fig.2)",
            run_detector(
                [](System& sys, std::vector<const SuspectOracle*>& out) {
                  for (ProcessId p = 0; p < kN; ++p) {
                    auto& omega = sys.host(p).emplace<fd::LeaderCandidate>();
                    out[p] = &sys.host(p).emplace<core::CToP>(&omega);
                  }
                },
                3));

  std::cout << "\nNote the ring's staircase: suspicion reaches neighbours "
               "first and propagates hop-by-hop, while heartbeat-P and the "
               "Fig.2 transformation inform everyone almost simultaneously "
               "— at very different message bills.\n";
  return 0;
}
