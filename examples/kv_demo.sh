#!/usr/bin/env sh
# Replicated key-value service demo: launch a 3-node ecfd-kv cluster as
# three OS processes over loopback UDP, drive a mixed read/write load
# against it, kill the leader with SIGKILL mid-load, and verify that
# every acknowledged write survived (exactly-once, zero acked-write loss).
#
# Usage:  examples/kv_demo.sh [path-to-ecfd_node] [path-to-ecfd_kv]
#         (defaults: build/tools/ecfd_node, build/tools/ecfd_kv)
#         ECFD_BACKEND=uring runs the nodes on the io_uring network
#         backend (degrades to poll where the kernel lacks it).
#
# Exit code 0 when the load generator finishes with no lost acked writes
# and a survivor took over leadership; nonzero otherwise.
set -eu

NODE_BIN="${1:-build/tools/ecfd_node}"
KV_BIN="${2:-build/tools/ecfd_kv}"
BACKEND="${ECFD_BACKEND:-poll}"
WORKDIR="$(mktemp -d)"
trap 'kill $PID0 $PID1 $PID2 $BENCH_PID 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

for bin in "$NODE_BIN" "$KV_BIN"; do
  if [ ! -x "$bin" ]; then
    echo "binary not found at $bin (build first: cmake --build build)" >&2
    exit 2
  fi
done

PORT_BASE=$(( 21000 + ($$ % 1000) * 3 ))
cat > "$WORKDIR/cluster.ini" <<EOF
[cluster]
seed = 7
fd = ecfd
period_ms = 50
initial_timeout_ms = 250
timeout_increment_ms = 100

[kv]
enabled = 1
capacity = 16384
pipeline_depth = 4
batch_max_ops = 64
batch_wait_ms = 2
lease_establish_ms = 400
snapshot_every = 64
dedup_window = 64

[peers]
0 = 127.0.0.1:$PORT_BASE
1 = 127.0.0.1:$(( PORT_BASE + 1 ))
2 = 127.0.0.1:$(( PORT_BASE + 2 ))
EOF

echo "== launching 3 kv nodes (ports $PORT_BASE..$(( PORT_BASE + 2 )), backend $BACKEND)"
"$NODE_BIN" --config "$WORKDIR/cluster.ini" --id 0 --kv --backend "$BACKEND" --run-ms 60000 > "$WORKDIR/node0.out" & PID0=$!
"$NODE_BIN" --config "$WORKDIR/cluster.ini" --id 1 --kv --backend "$BACKEND" --run-ms 60000 > "$WORKDIR/node1.out" & PID1=$!
"$NODE_BIN" --config "$WORKDIR/cluster.ini" --id 2 --kv --backend "$BACKEND" --run-ms 60000 > "$WORKDIR/node2.out" & PID2=$!
BENCH_PID=""

sleep 1

echo "== single-shot sanity: put / get through the leader"
"$KV_BIN" --config "$WORKDIR/cluster.ini" put demo-key demo-value
"$KV_BIN" --config "$WORKDIR/cluster.ini" get demo-key

echo "== starting mixed load (4 clients, 50% reads, verify at the end)"
"$KV_BIN" --config "$WORKDIR/cluster.ini" bench \
  --clients 4 --ops 2000 --read-pct 50 --keys 500 --verify \
  > "$WORKDIR/bench.out" 2>&1 & BENCH_PID=$!

sleep 2
echo "== kill -9 the leader (node 0, pid $PID0) mid-load"
kill -9 "$PID0" 2>/dev/null || true

BENCH_RC=0
wait "$BENCH_PID" || BENCH_RC=$?
BENCH_PID=""
cat "$WORKDIR/bench.out"

if [ "$BENCH_RC" -ne 0 ]; then
  echo "== FAIL: load generator reported lost acked writes or errors (rc=$BENCH_RC)" >&2
  exit 1
fi

# A survivor must have taken over leadership to keep serving the load.
if ! tail -n 3 "$WORKDIR/node1.out" "$WORKDIR/node2.out" | grep -q '"leader":true'; then
  echo "== FAIL: no survivor took over leadership" >&2
  tail -n 2 "$WORKDIR/node1.out" "$WORKDIR/node2.out" >&2
  exit 1
fi

echo "== OK: leader killed mid-load, zero acked-write loss, failover complete"
exit 0
