// Group-membership view service on top of the ◇C→◇P transformation.
//
// A ◇P detector's suspected sets eventually agree at every correct
// process, so "Π minus suspected" is a usable membership view. We run the
// paper's Fig. 2 transformation (leader-built suspect lists) over a
// leader-candidate Omega detector, crash processes one by one, and print
// each process's view as it evolves — including the epoch where the view
// LEADER itself crashes and the service re-anchors on the next leader.
//
// Build & run:  ./build/examples/membership_service

#include <iomanip>
#include <iostream>

#include "core/c_to_p.hpp"
#include "fd/leader_candidate.hpp"
#include "net/scenario.hpp"

using namespace ecfd;

namespace {

std::string view_of(const core::CToP& ctp, int n) {
  ProcessSet view = ProcessSet::full(n) - ctp.suspected();
  return view.to_string();
}

}  // namespace

int main() {
  constexpr int kN = 6;

  ScenarioConfig cfg;
  cfg.n = kN;
  cfg.seed = 99;
  cfg.links = LinkKind::kPartialSync;
  cfg.gst = msec(150);
  cfg.delta = msec(5);
  cfg.with_crash(4, msec(500));   // an ordinary member leaves
  cfg.with_crash(0, msec(1500));  // then the list-building leader itself
  auto sys = make_system(cfg);

  std::vector<core::CToP*> ctps;
  for (ProcessId p = 0; p < kN; ++p) {
    auto& omega = sys->host(p).emplace<fd::LeaderCandidate>();
    ctps.push_back(&sys->host(p).emplace<core::CToP>(&omega));
  }
  sys->start();

  std::cout << "time_ms | per-process membership view (leader marked *)\n";
  std::cout << "--------+--------------------------------------------\n";
  for (TimeUs t = msec(200); t <= sec(4); t += msec(400)) {
    sys->run_until(t);
    std::cout << std::setw(7) << t / 1000 << " |";
    for (ProcessId p = 0; p < kN; ++p) {
      if (sys->host(p).crashed()) continue;
      std::cout << "  p" << p << (ctps[p]->acting_leader() ? "*" : "")
                << view_of(*ctps[p], kN);
    }
    std::cout << '\n';
  }

  // Verify convergence: all survivors report the same final view and it is
  // exactly the set of alive processes.
  const ProcessSet alive = sys->alive();
  bool converged = true;
  for (ProcessId p : alive.members()) {
    if (ProcessSet::full(kN) - ctps[p]->suspected() != alive) converged = false;
  }
  std::cout << "\nAll survivors agree the membership is "
            << alive.to_string() << ": " << (converged ? "YES" : "NO")
            << "\n";
  std::cout << "Periodic message cost at the end: 2(n-1) = "
            << 2 * (alive.size() - 1) << " per period, leader-centred.\n";
  return converged ? 0 : 1;
}
