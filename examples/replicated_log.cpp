// Replicated log (state-machine replication) on top of ◇C-consensus.
//
// The motivating application for consensus: a cluster agrees on the ORDER
// of client commands. Each log slot is one independent instance of the
// paper's Figs. 3-4 algorithm. Every process proposes its own pending
// command for the next slot; whatever the slot decides is appended to the
// log at every replica — so all replicas end with the same sequence even
// though each kept pushing its own commands, the leader crashed mid-run,
// and the detector had to re-elect.
//
// Build & run:  ./build/examples/replicated_log

#include <iostream>
#include <vector>

#include "broadcast/reliable_broadcast.hpp"
#include "core/consensus_c.hpp"
#include "core/ecfd_compose.hpp"
#include "fd/ring_fd.hpp"
#include "net/scenario.hpp"

using namespace ecfd;

namespace {

constexpr int kN = 5;
constexpr int kSlots = 6;
// Protocol-id blocks: slot k uses kSlotBase+k for consensus and
// kRbBase+k for its reliable broadcast.
constexpr ProtocolId kSlotBase = 200;
constexpr ProtocolId kRbBase = 300;

/// One replica: pre-creates a consensus instance per log slot and drives
/// them sequentially (propose slot k+1 once slot k decided locally).
struct Replica {
  ProcessId id{};
  std::vector<core::ConsensusC*> slots;
  std::vector<consensus::Value> log;

  /// Command this replica wants to append next (encodes "author*1000+seq").
  consensus::Value next_command() const {
    return (id + 1) * 1000 + static_cast<consensus::Value>(log.size());
  }
};

}  // namespace

int main() {
  ScenarioConfig cfg;
  cfg.n = kN;
  cfg.seed = 7;
  cfg.links = LinkKind::kPartialSync;
  cfg.gst = msec(100);
  cfg.delta = msec(5);
  cfg.with_crash(0, msec(25));  // the first leader dies mid-log

  auto sys = make_system(cfg);

  std::vector<core::EcfdFromRing> oracles;
  oracles.reserve(kN);
  {
    std::vector<fd::RingFd*> rings;
    for (ProcessId p = 0; p < kN; ++p) {
      rings.push_back(&sys->host(p).emplace<fd::RingFd>());
    }
    for (ProcessId p = 0; p < kN; ++p) oracles.emplace_back(rings[p]);
  }

  std::vector<Replica> replicas(kN);
  for (ProcessId p = 0; p < kN; ++p) {
    replicas[p].id = p;
    for (int k = 0; k < kSlots; ++k) {
      auto& rb = sys->host(p).emplace<broadcast::ReliableBroadcast>(kRbBase + k);
      core::ConsensusC::Config cc;
      auto& cons = sys->host(p).emplace<core::ConsensusC>(
          &oracles[static_cast<std::size_t>(p)], &rb, cc, kSlotBase + k);
      replicas[p].slots.push_back(&cons);
    }
  }

  // Chain the slots: when slot k decides at replica r, append to r's log
  // and propose r's next command for slot k+1.
  for (ProcessId p = 0; p < kN; ++p) {
    Replica& r = replicas[p];
    for (int k = 0; k < kSlots; ++k) {
      r.slots[k]->set_on_decide([&r, k](const consensus::Decision& d) {
        r.log.push_back(d.value);
        if (k + 1 < kSlots) {
          r.slots[k + 1]->propose(r.next_command());
        }
      });
    }
  }

  sys->start();
  for (ProcessId p = 0; p < kN; ++p) {
    replicas[p].slots[0]->propose(replicas[p].next_command());
  }
  sys->run_until(sec(20));

  std::cout << "replica | log (command = author*1000 + local seq)\n";
  std::cout << "--------+------------------------------------------\n";
  for (ProcessId p = 0; p < kN; ++p) {
    std::cout << "   p" << p << (sys->host(p).crashed() ? " X " : "   ") << "|";
    for (consensus::Value v : replicas[p].log) std::cout << ' ' << v;
    std::cout << '\n';
  }

  // All surviving replicas must hold identical logs.
  bool identical = true;
  for (ProcessId p = 2; p < kN; ++p) {
    if (replicas[p].log != replicas[1].log) identical = false;
  }
  std::cout << "\nSurvivor logs identical: " << (identical ? "YES" : "NO")
            << "  (" << replicas[1].log.size() << "/" << kSlots
            << " slots decided)\n";
  return identical && replicas[1].log.size() == kSlots ? 0 : 1;
}
