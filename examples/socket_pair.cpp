// Smallest possible real-network example: two SocketEnvs in one program
// (each on its own thread, each bound to a real loopback UDP port) running
// the Section 4 EfficientP detector against each other — then one of them
// goes silent and the survivor's ◇P output flips.
//
// This is the in-process twin of the multi-process demo in
// examples/cluster_demo.sh; see tools/ecfd_node.cpp for the daemon form.
//
//   $ ./socket_pair
//   [p0] trusts p0, suspects {}
//   ...
//   p1 goes silent (simulated kill -9)
//   [p0] trusts p0, suspects {p1}
//   detection confirmed after ~xxx ms

#include <atomic>
#include <iostream>
#include <thread>

#include "fd/efficient_p.hpp"
#include "transport/socket_env.hpp"

using namespace ecfd;
using transport::SocketEnv;

int main() {
  const std::vector<transport::PeerAddr> peers{{"127.0.0.1", 19880},
                                               {"127.0.0.1", 19881}};

  auto make_opts = [&](ProcessId self) {
    SocketEnv::Options o;
    o.self = self;
    o.peers = peers;
    o.seed = 1;
    return o;
  };
  SocketEnv a(make_opts(0));
  SocketEnv b(make_opts(1));
  std::string error;
  if (!a.open(&error) || !b.open(&error)) {
    std::cerr << "socket setup failed: " << error << "\n";
    return 1;
  }

  fd::EfficientP::Config cfg;
  cfg.period = msec(25);
  cfg.initial_timeout = msec(120);
  cfg.timeout_increment = msec(60);
  auto& fda = a.emplace<fd::EfficientP>(cfg);
  b.emplace<fd::EfficientP>(cfg);
  a.start();
  b.start();

  auto show = [&]() {
    std::cout << "[p0] trusts p" << fda.trusted() << ", suspects "
              << fda.suspected().to_string() << "\n";
  };

  // Phase 1: both loops run; p0 should come to trust the pair.
  std::atomic<bool> b_alive{true};
  std::thread tb([&] {
    while (b_alive.load()) b.run_for(msec(20));
  });
  a.run_until([&] { return !fda.suspected().contains(1); }, sec(5));
  show();

  std::cout << "p1 goes silent (simulated kill -9)\n";
  b_alive.store(false);
  tb.join();

  const TimeUs t0 = a.now();
  const bool detected =
      a.run_until([&] { return fda.suspected().contains(1); }, sec(5));
  show();
  if (!detected) {
    std::cerr << "p0 never suspected the silent p1\n";
    return 1;
  }
  std::cout << "detection confirmed after ~" << (a.now() - t0) / 1000
            << " ms\n";
  return 0;
}
