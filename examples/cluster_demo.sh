#!/usr/bin/env sh
# Real-network crash-detection demo: launch a 3-node ecfd cluster as three
# OS processes over loopback UDP, kill one with SIGKILL mid-run, and watch
# the survivors suspect it (and, with consensus enabled, still decide).
#
# Usage:  examples/cluster_demo.sh [path-to-ecfd_node] [fd]
#         (default binary: build/tools/ecfd_node, default fd: ecfd)
#         ECFD_BACKEND=uring selects the io_uring transport (default poll);
#         nodes degrade to poll at runtime if the kernel lacks io_uring.
#
# Exit code 0 when both survivors ended up suspecting the killed node;
# nonzero otherwise. (With fd=heartbeat_p/efficient_p/ecfd the final
# suspected set is exactly the killed node; fd=stable_leader reports the
# pure-Omega view, which by design suspects everyone but the leader.)
set -eu

NODE_BIN="${1:-build/tools/ecfd_node}"
FD="${2:-ecfd}"
BACKEND="${ECFD_BACKEND:-poll}"
WORKDIR="$(mktemp -d)"
trap 'kill $PID0 $PID1 $PID2 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

if [ ! -x "$NODE_BIN" ]; then
  echo "ecfd_node binary not found at $NODE_BIN (build first: cmake --build build)" >&2
  exit 2
fi

PORT_BASE=$(( 19000 + ($$ % 1000) * 3 ))
cat > "$WORKDIR/cluster.ini" <<EOF
[cluster]
seed = 7
fd = $FD
period_ms = 50
initial_timeout_ms = 250
timeout_increment_ms = 100

[peers]
0 = 127.0.0.1:$PORT_BASE
1 = 127.0.0.1:$(( PORT_BASE + 1 ))
2 = 127.0.0.1:$(( PORT_BASE + 2 ))
EOF

echo "== launching 3 nodes (fd=$FD, backend=$BACKEND, ports $PORT_BASE..$(( PORT_BASE + 2 )))"
"$NODE_BIN" --config "$WORKDIR/cluster.ini" --id 0 --backend "$BACKEND" --consensus --run-ms 8000 > "$WORKDIR/node0.out" & PID0=$!
"$NODE_BIN" --config "$WORKDIR/cluster.ini" --id 1 --backend "$BACKEND" --consensus --run-ms 8000 > "$WORKDIR/node1.out" & PID1=$!
"$NODE_BIN" --config "$WORKDIR/cluster.ini" --id 2 --backend "$BACKEND" --consensus --run-ms 8000 > "$WORKDIR/node2.out" & PID2=$!

sleep 3
echo "== kill -9 node 2 (pid $PID2)"
kill -9 "$PID2" 2>/dev/null || true

wait "$PID0" "$PID1" 2>/dev/null || true

echo "== node 0 timeline:"
cat "$WORKDIR/node0.out"
echo "== node 1 timeline:"
cat "$WORKDIR/node1.out"

ok=0
for out in "$WORKDIR/node0.out" "$WORKDIR/node1.out"; do
  if tail -n 1 "$out" | grep -q '"suspected":\[\([0-9],\)*2\]'; then
    ok=$(( ok + 1 ))
  fi
done

if [ "$ok" -eq 2 ]; then
  echo "== OK: both survivors suspect the killed node (p2)"
  exit 0
fi
echo "== FAIL: survivors did not converge on suspecting p2" >&2
exit 1
