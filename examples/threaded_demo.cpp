// The paper's stack on REAL threads: no simulator involved.
//
// Four std::threads, each a process with a heartbeat ◇P module, a derived
// ◇C oracle and the Figs. 3-4 consensus algorithm, exchanging messages
// through an in-process transport with injected delays. One process is
// crashed mid-run; the survivors still reach a common decision — on the
// wall clock, in a few hundred milliseconds.
//
// Build & run:  ./build/examples/threaded_demo

#include <chrono>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "broadcast/reliable_broadcast.hpp"
#include "core/consensus_c.hpp"
#include "core/ecfd_compose.hpp"
#include "fd/heartbeat_p.hpp"
#include "runtime/thread_env.hpp"

using namespace ecfd;

int main() {
  constexpr int kN = 4;

  runtime::ThreadSystem::Config cfg;
  cfg.n = kN;
  cfg.seed = 11;
  cfg.min_delay = usec(200);
  cfg.max_delay = msec(3);
  // NOTE: the consensus algorithm assumes reliable links (Section 2.1);
  // only the FD-to-◇P transformation tolerates lossy leader output links.
  cfg.loss_p = 0.0;
  runtime::ThreadSystem sys(cfg);

  std::vector<std::unique_ptr<core::EcfdFromP>> oracles;
  std::vector<core::ConsensusC*> cons;
  for (ProcessId p = 0; p < kN; ++p) {
    fd::HeartbeatP::Config hc;
    hc.period = msec(20);
    hc.initial_timeout = msec(120);
    auto& hb = sys.host(p).emplace<fd::HeartbeatP>(hc);
    oracles.push_back(std::make_unique<core::EcfdFromP>(&hb));
    auto& rb = sys.host(p).emplace<broadcast::ReliableBroadcast>();
    core::ConsensusC::Config cc;
    cc.poll_period = msec(10);
    cons.push_back(
        &sys.host(p).emplace<core::ConsensusC>(oracles.back().get(), &rb, cc));
  }

  std::mutex mu;
  int decided = 0;
  for (ProcessId p = 0; p < kN; ++p) {
    cons[p]->set_on_decide([&mu, &decided, p](const consensus::Decision& d) {
      std::lock_guard<std::mutex> lock(mu);
      ++decided;
      std::cout << "p" << p << " decided " << d.value << " (round "
                << d.round << ") at " << d.at / 1000 << "ms\n";
    });
  }

  sys.start();
  std::cout << "proposing values 100..103 on " << kN << " threads...\n";
  for (ProcessId p = 0; p < kN; ++p) {
    auto* c = cons[p];
    sys.host(p).post([c, p]() { c->propose(100 + p); });
  }

  // Crash p3 after 150ms of wall-clock time.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::cout << "crashing p3...\n";
  sys.host(3).crash();

  // Wait (up to 10s) for the three survivors.
  for (int waited = 0; waited < 10000; waited += 50) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (decided >= kN - 1) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::lock_guard<std::mutex> lock(mu);
  std::cout << (decided >= kN - 1 ? "SUCCESS" : "TIMEOUT") << ": " << decided
            << " processes decided.\n";
  return decided >= kN - 1 ? 0 : 1;
}
