#include "net/link.hpp"

#include <gtest/gtest.h>

namespace ecfd {
namespace {

TEST(ReliableLink, DelayWithinBoundsAndNoLoss) {
  Rng rng(1);
  ReliableLink link(100, 500);
  for (int i = 0; i < 1000; ++i) {
    auto d = link.sample_delay(0, rng);
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(*d, 100);
    EXPECT_LE(*d, 500);
  }
}

TEST(PartialSyncLink, BoundedAfterGst) {
  Rng rng(2);
  PartialSyncLink::Config cfg;
  cfg.gst = msec(100);
  cfg.delta = msec(5);
  cfg.pre_min = usec(10);
  cfg.pre_max = msec(400);
  PartialSyncLink link(cfg);
  for (int i = 0; i < 1000; ++i) {
    auto d = link.sample_delay(msec(100) + i, rng);
    ASSERT_TRUE(d.has_value());
    EXPECT_LE(*d, msec(5));
    EXPECT_GE(*d, 1);
  }
}

TEST(PartialSyncLink, ArbitraryBeforeGst) {
  Rng rng(3);
  PartialSyncLink::Config cfg;
  cfg.gst = msec(100);
  cfg.delta = msec(5);
  cfg.pre_min = usec(10);
  cfg.pre_max = msec(400);
  PartialSyncLink link(cfg);
  bool slow_seen = false;
  for (int i = 0; i < 1000; ++i) {
    auto d = link.sample_delay(0, rng);
    ASSERT_TRUE(d.has_value());
    EXPECT_LE(*d, msec(400));
    if (*d > msec(5)) slow_seen = true;
  }
  EXPECT_TRUE(slow_seen) << "pre-GST delays should exceed delta sometimes";
}

TEST(FairLossyLink, LosesButNotForever) {
  Rng rng(4);
  FairLossyLink::Config cfg;
  cfg.loss_p = 0.5;
  cfg.force_deliver_every = 4;
  FairLossyLink link(cfg);
  int losses = 0;
  int gap = 0;
  int max_gap = 0;
  for (int i = 0; i < 2000; ++i) {
    auto d = link.sample_delay(0, rng);
    if (!d.has_value()) {
      ++losses;
      ++gap;
      max_gap = std::max(max_gap, gap);
    } else {
      gap = 0;
    }
  }
  EXPECT_GT(losses, 0);
  EXPECT_LT(max_gap, 4) << "deterministic fairness: every 4th must deliver";
}

TEST(FairLossyLink, ZeroLossDeliversEverything) {
  Rng rng(5);
  FairLossyLink::Config cfg;
  cfg.loss_p = 0.0;
  FairLossyLink link(cfg);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(link.sample_delay(0, rng).has_value());
  }
}

TEST(AsyncLink, PositiveUnboundedDelaysNoLoss) {
  Rng rng(6);
  AsyncLink link(msec(2));
  DurUs max_seen = 0;
  for (int i = 0; i < 5000; ++i) {
    auto d = link.sample_delay(0, rng);
    ASSERT_TRUE(d.has_value());
    ASSERT_GT(*d, 0);
    max_seen = std::max(max_seen, *d);
  }
  EXPECT_GT(max_seen, msec(8)) << "exponential tail should exceed 4x mean";
}

}  // namespace
}  // namespace ecfd
