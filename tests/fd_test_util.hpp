#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "fd/probe.hpp"
#include "fd/properties.hpp"
#include "net/scenario.hpp"
#include "scenario_util.hpp"

/// \file fd_test_util.hpp
/// Shared scaffolding for failure-detector property tests: build a system
/// from a scenario, install a detector stack on every process, sample it
/// with FdProbe, and evaluate fd/properties over the run. Scenario
/// construction itself lives in scenario_util.hpp (pulled in here so FD
/// suites get both with one include).

namespace ecfd::testutil {

/// What the per-process installer hands back for probing. Either pointer
/// may be null when the detector has no such output.
struct OracleRefs {
  const SuspectOracle* suspect{nullptr};
  const LeaderOracle* leader{nullptr};
};

/// Installs a detector on host \p host (process \p p). Adapters that are
/// not protocols can be kept alive by pushing them into \p keepalive.
using Installer = std::function<OracleRefs(
    ProcessHost& host, ProcessId p,
    std::vector<std::shared_ptr<void>>& keepalive)>;

struct FdRunResult {
  FdReport report;
  RunFacts facts;
  TimeUs horizon{};
  std::int64_t messages_sent{};
};

/// Runs one FD scenario end to end.
inline FdRunResult run_fd_scenario(const ScenarioConfig& cfg,
                                   const Installer& install, TimeUs horizon,
                                   DurUs probe_period = msec(5)) {
  auto sys = make_system(cfg);
  std::vector<std::shared_ptr<void>> keepalive;
  FdProbe probe(*sys, probe_period);
  for (ProcessId p = 0; p < cfg.n; ++p) {
    OracleRefs refs = install(sys->host(p), p, keepalive);
    probe.attach(p, refs.suspect, refs.leader);
  }
  probe.start(horizon);
  sys->start();
  sys->run_until(horizon);

  FdRunResult out;
  out.facts.n = cfg.n;
  out.facts.correct = ProcessSet::full(cfg.n);
  for (const CrashPlan& c : cfg.crashes) out.facts.correct.remove(c.process);
  out.facts.end_time = horizon;
  out.horizon = horizon;
  out.report = check_fd_properties(out.facts, probe.samples());
  out.messages_sent = sys->network().sent_total();
  return out;
}

/// Asserts helper: the property must hold and have stabilized at least
/// \p margin before the end of the run (guards against "stabilized on the
/// last sample" flukes).
inline bool holds_with_margin(const Eventually& e, TimeUs end, DurUs margin) {
  return e.holds && e.from <= end - margin;
}

}  // namespace ecfd::testutil
