// Tests for the stable leader election of fd/stable_leader.hpp
// (Aguilera et al., the paper's reference [2]).
#include "fd/stable_leader.hpp"

#include <gtest/gtest.h>

#include "fd/leader_candidate.hpp"
#include "fd_test_util.hpp"
#include "scenario_util.hpp"

namespace ecfd {
namespace {

using testutil::run_fd_scenario;

testutil::Installer installer() {
  return [](ProcessHost& host, ProcessId,
            std::vector<std::shared_ptr<void>>&) {
    auto& fd = host.emplace<fd::StableLeader>();
    return testutil::OracleRefs{nullptr, &fd};
  };
}

ScenarioConfig base_scenario(int n, std::uint64_t seed) {
  return testutil::partial_sync_scenario(n, seed, msec(250), msec(60));
}

TEST(StableLeader, ImplementsOmegaFailureFree) {
  auto res = run_fd_scenario(base_scenario(5, 1), installer(), sec(6));
  EXPECT_TRUE(res.report.omega.holds);
}

TEST(StableLeader, ReElectsWhenLeaderCrashes) {
  auto cfg = base_scenario(5, 2);
  cfg.with_crash(0, sec(1));
  auto res = run_fd_scenario(cfg, installer(), sec(8));
  EXPECT_TRUE(res.report.omega.holds);
  EXPECT_NE(res.report.omega_leader, 0);
}

TEST(StableLeader, SurvivesCascadingCrashes) {
  auto cfg = base_scenario(6, 3);
  cfg.with_crash(0, msec(800)).with_crash(1, sec(2));
  auto res = run_fd_scenario(cfg, installer(), sec(10));
  EXPECT_TRUE(res.report.omega.holds)
      << "leader=" << res.report.omega_leader;
}

TEST(StableLeader, AccusationsGrowForCrashedLeaderOnly) {
  const int n = 4;
  auto cfg = base_scenario(n, 4);
  cfg.gst = 0;
  auto sys = make_system(cfg);
  std::vector<fd::StableLeader*> fds;
  for (ProcessId p = 0; p < n; ++p) {
    fds.push_back(&sys->host(p).emplace<fd::StableLeader>());
  }
  sys->crash_at(0, sec(1));
  sys->start();
  sys->run_until(sec(4));
  EXPECT_GT(fds[1]->accusations(0), 0u);
  EXPECT_EQ(fds[1]->accusations(2), 0u) << "no accusation without timeout";
  // All survivors share the counter view (gossip max-merge).
  EXPECT_EQ(fds[1]->accusations(0), fds[2]->accusations(0));
}

TEST(StableLeader, StabilityLeadershipDoesNotBounceBack) {
  // Contrast with the lowest-id rule: temporarily disconnect p0 so that it
  // gets accused and leadership moves to p1; then heal the partition.
  // LeaderCandidate bounces back to p0 (lowest id wins again); the stable
  // detector keeps p1 (p0's accusation count stays elevated).
  const int n = 4;
  auto cfg = base_scenario(n, 5);
  cfg.gst = 0;
  auto sys = make_system(cfg);
  std::vector<fd::StableLeader*> stable;
  std::vector<fd::LeaderCandidate*> lowest;
  for (ProcessId p = 0; p < n; ++p) {
    stable.push_back(&sys->host(p).emplace<fd::StableLeader>());
    lowest.push_back(&sys->host(p).emplace<fd::LeaderCandidate>());
  }
  sys->start();
  sys->run_until(sec(1));
  EXPECT_EQ(stable[1]->trusted(), 0);
  EXPECT_EQ(lowest[1]->trusted(), 0);

  // Isolate p0 long enough for everyone to give up on it.
  ProcessSet island(n);
  island.add(0);
  sys->network().partition(island);
  sys->run_until(sec(3));
  EXPECT_NE(stable[1]->trusted(), 0);
  EXPECT_NE(lowest[1]->trusted(), 0);
  const ProcessId stable_pick = stable[1]->trusted();

  sys->network().heal();
  sys->run_until(sec(6));
  // The lowest-id rule falls back to p0...
  EXPECT_EQ(lowest[1]->trusted(), 0);
  // ...the stable rule does not (p0 carries its accusations forever).
  EXPECT_EQ(stable[1]->trusted(), stable_pick);
  EXPECT_EQ(stable[2]->trusted(), stable_pick) << "and the view is common";
}

TEST(StableLeader, FewLeaderChangesAfterStabilization) {
  auto cfg = base_scenario(5, 6);
  auto sys = make_system(cfg);
  std::vector<fd::StableLeader*> fds;
  for (ProcessId p = 0; p < 5; ++p) {
    fds.push_back(&sys->host(p).emplace<fd::StableLeader>());
  }
  sys->start();
  sys->run_until(sec(2));
  const int changes_mid = fds[1]->leader_changes();
  sys->run_until(sec(8));
  EXPECT_EQ(fds[1]->leader_changes(), changes_mid)
      << "no further leader changes once stable";
}

}  // namespace
}  // namespace ecfd
