// Property sweep: consensus safety and liveness across algorithms,
// detector stacks, seeds and crash patterns (parameterized), plus
// safety-only runs under fully asynchronous links and never-stabilizing
// detectors.
#include <gtest/gtest.h>

#include "consensus/harness.hpp"

namespace ecfd::consensus {
namespace {

struct SweepParam {
  Algo algo;
  FdStack fd;
  int n;
  int crashes;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const SweepParam& p = info.param;
  std::string algo;
  switch (p.algo) {
    case Algo::kEcfdC: algo = "C"; break;
    case Algo::kEcfdCMerged: algo = "Cm"; break;
    case Algo::kChandraTouegS: algo = "CT"; break;
    case Algo::kMrOmega: algo = "MR"; break;
  }
  std::string fd;
  switch (p.fd) {
    case FdStack::kRing: fd = "ring"; break;
    case FdStack::kHeartbeatP: fd = "hb"; break;
    case FdStack::kOmegaPlusHeartbeat: fd = "mix"; break;
    case FdStack::kEfficientP: fd = "effp"; break;
    case FdStack::kScriptedStable: fd = "script"; break;
    case FdStack::kHeartbeatAdaptive: fd = "hbad"; break;
  }
  return algo + "_" + fd + "_n" + std::to_string(p.n) + "f" +
         std::to_string(p.crashes) + "s" + std::to_string(p.seed);
}

class ConsensusSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ConsensusSweep, SafeAndLive) {
  const SweepParam& p = GetParam();
  HarnessConfig cfg;
  cfg.scenario.n = p.n;
  cfg.scenario.seed = p.seed;
  cfg.scenario.links = LinkKind::kPartialSync;
  cfg.scenario.gst = msec(200);
  cfg.scenario.delta = msec(5);
  cfg.scenario.pre_gst_max = msec(60);
  cfg.algo = p.algo;
  cfg.fd = p.fd;
  cfg.fd_stable_at = msec(350);
  cfg.horizon = sec(60);
  for (int i = 0; i < p.crashes; ++i) {
    // Crash a mix of low ids (leaders) and high ids, staggered in time.
    const ProcessId victim = (i % 2 == 0) ? i / 2 : p.n - 1 - i / 2;
    cfg.scenario.with_crash(victim, msec(80) + i * msec(170));
  }
  auto r = run_consensus(cfg);
  EXPECT_TRUE(r.uniform_agreement) << summarize(r);
  EXPECT_TRUE(r.validity) << summarize(r);
  EXPECT_TRUE(r.every_correct_decided) << summarize(r);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConsensusSweep,
    ::testing::Values(
        // The paper's algorithm over every detector stack.
        SweepParam{Algo::kEcfdC, FdStack::kScriptedStable, 5, 2, 41},
        SweepParam{Algo::kEcfdC, FdStack::kRing, 5, 1, 42},
        SweepParam{Algo::kEcfdC, FdStack::kRing, 7, 3, 43},
        SweepParam{Algo::kEcfdC, FdStack::kHeartbeatP, 5, 2, 44},
        SweepParam{Algo::kEcfdC, FdStack::kHeartbeatP, 4, 1, 45},
        SweepParam{Algo::kEcfdC, FdStack::kOmegaPlusHeartbeat, 6, 2, 46},
        SweepParam{Algo::kEcfdC, FdStack::kScriptedStable, 9, 4, 47},
        SweepParam{Algo::kEcfdC, FdStack::kScriptedStable, 3, 1, 48},
        SweepParam{Algo::kEcfdC, FdStack::kEfficientP, 5, 2, 148},
        SweepParam{Algo::kEcfdC, FdStack::kEfficientP, 7, 2, 149},
        SweepParam{Algo::kChandraTouegS, FdStack::kEfficientP, 5, 1, 150},
        // Merged-phase variant.
        SweepParam{Algo::kEcfdCMerged, FdStack::kScriptedStable, 5, 2, 49},
        SweepParam{Algo::kEcfdCMerged, FdStack::kHeartbeatP, 5, 1, 50},
        SweepParam{Algo::kEcfdCMerged, FdStack::kRing, 6, 2, 51},
        // Chandra-Toueg baseline.
        SweepParam{Algo::kChandraTouegS, FdStack::kScriptedStable, 5, 2, 52},
        SweepParam{Algo::kChandraTouegS, FdStack::kHeartbeatP, 5, 2, 53},
        SweepParam{Algo::kChandraTouegS, FdStack::kRing, 7, 3, 54},
        SweepParam{Algo::kChandraTouegS, FdStack::kHeartbeatP, 3, 1, 55},
        // MR Omega baseline.
        SweepParam{Algo::kMrOmega, FdStack::kScriptedStable, 5, 2, 56},
        SweepParam{Algo::kMrOmega, FdStack::kOmegaPlusHeartbeat, 5, 1, 57},
        SweepParam{Algo::kMrOmega, FdStack::kRing, 6, 2, 58},
        SweepParam{Algo::kMrOmega, FdStack::kHeartbeatP, 7, 3, 59}),
    param_name);

// --- safety only, hostile conditions ------------------------------------

class ConsensusSafetyOnly : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConsensusSafetyOnly, NeverDisagreesUnderAsyncLinksAndUselessFd) {
  // Fully asynchronous links (unbounded exponential delays) and a detector
  // that never stabilizes: liveness is forfeit (FLP), but Uniform
  // Agreement and Validity must hold in every run.
  HarnessConfig cfg;
  cfg.scenario.n = 5;
  cfg.scenario.seed = GetParam();
  cfg.scenario.links = LinkKind::kAsync;
  cfg.scenario.mean_delay = msec(4);
  cfg.scenario.with_crash(4, msec(150));
  cfg.algo = Algo::kEcfdC;
  cfg.fd = FdStack::kScriptedStable;
  cfg.fd_stable_at = sec(1000);  // never, within this horizon
  cfg.max_rounds = 60;
  cfg.horizon = sec(20);
  auto r = run_consensus(cfg);
  EXPECT_TRUE(r.uniform_agreement) << summarize(r);
  EXPECT_TRUE(r.validity) << summarize(r);
}

TEST_P(ConsensusSafetyOnly, CtNeverDisagreesEither) {
  HarnessConfig cfg;
  cfg.scenario.n = 5;
  cfg.scenario.seed = GetParam() ^ 0xabcdef;
  cfg.scenario.links = LinkKind::kAsync;
  cfg.scenario.mean_delay = msec(4);
  cfg.algo = Algo::kChandraTouegS;
  cfg.fd = FdStack::kScriptedStable;
  cfg.fd_stable_at = sec(1000);
  cfg.max_rounds = 60;
  cfg.horizon = sec(20);
  auto r = run_consensus(cfg);
  EXPECT_TRUE(r.uniform_agreement) << summarize(r);
  EXPECT_TRUE(r.validity) << summarize(r);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsensusSafetyOnly,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

}  // namespace
}  // namespace ecfd::consensus
