// Determinism regression suite.
//
// The golden hashes below were captured from the lazy-tombstone binary-heap
// EventQueue the repo seeded with (PR 1 state). The indexed 4-ary-heap /
// inline-action rewrite of this PR must not change a single delivery order
// or counter, so the same constants must keep matching. If a future PR
// *deliberately* changes simulation semantics (new message, different
// tie-break), re-capture the constants and say so in the PR description —
// an unexplained mismatch is a determinism bug.
//
// The parallel half asserts that fanning the same cases across a thread
// pool is bit-identical to running them sequentially on the main thread.

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "fd/heartbeat_p.hpp"
#include "net/scenario.hpp"
#include "runner/fingerprint.hpp"
#include "runner/suite.hpp"
#include "runner/thread_pool.hpp"

namespace ecfd {
namespace {

using runner::CaseMetrics;

/// Full-trace digest of a small crash scenario: every net.send line, every
/// suspicion flip, in emission order. The most order-sensitive probe we
/// have short of diffing raw traces.
std::uint64_t traced_detection_hash() {
  ScenarioConfig cfg;
  cfg.n = 4;
  cfg.seed = 7;
  cfg.links = LinkKind::kPartialSync;
  cfg.gst = 0;
  cfg.delta = msec(5);
  auto sys = make_system(cfg);
  sys->trace().enable();
  for (ProcessId p = 0; p < cfg.n; ++p) sys->host(p).emplace<fd::HeartbeatP>();
  sys->start();
  sys->crash_at(1, msec(500));
  sys->run_until(sec(2));

  runner::Fnv1a h;
  h.u64(runner::fingerprint_trace(sys->trace()));
  h.u64(runner::fingerprint_counters(sys->counters()));
  h.u64(sys->scheduler().fired());
  return h.value();
}

// Golden values. Captured pre-rewrite; see file comment.
constexpr std::uint64_t kGoldenTracedDetection = 0xfa6585c475094d51ULL;
constexpr std::uint64_t kGoldenE4Case = 0x3d39c4265c0163adULL;
constexpr std::uint64_t kGoldenE5Case = 0xe43cdd4f359bb33eULL;

TEST(Determinism, TracedDetectionMatchesGolden) {
  const std::uint64_t h = traced_detection_hash();
  std::printf("traced_detection_hash = 0x%016llx\n",
              static_cast<unsigned long long>(h));
  EXPECT_EQ(h, kGoldenTracedDetection);
}

TEST(Determinism, E4CaseMatchesGolden) {
  const CaseMetrics m = runner::run_detection_case(8, 100);
  std::printf("e4 hash = 0x%016llx events=%llu msgs=%lld\n",
              static_cast<unsigned long long>(m.hash),
              static_cast<unsigned long long>(m.events),
              static_cast<long long>(m.msgs));
  EXPECT_EQ(m.hash, kGoldenE4Case);
}

TEST(Determinism, E5CaseMatchesGolden) {
  const CaseMetrics m =
      runner::run_consensus_case(7, 500, consensus::Algo::kEcfdC, 1);
  std::printf("e5 hash = 0x%016llx events=%llu msgs=%lld\n",
              static_cast<unsigned long long>(m.hash),
              static_cast<unsigned long long>(m.events),
              static_cast<long long>(m.msgs));
  EXPECT_EQ(m.hash, kGoldenE5Case);
}

TEST(Determinism, RepeatedRunsIdentical) {
  const std::uint64_t a = traced_detection_hash();
  const std::uint64_t b = traced_detection_hash();
  EXPECT_EQ(a, b);
  const CaseMetrics m1 = runner::run_churn_case(3, 5'000, 50'000);
  const CaseMetrics m2 = runner::run_churn_case(3, 5'000, 50'000);
  EXPECT_EQ(m1.hash, m2.hash);
  EXPECT_EQ(m1.events, m2.events);
}

TEST(Determinism, ParallelRunnerMatchesSequential) {
  auto suite = runner::build_suite(/*quick=*/true);
  ASSERT_FALSE(suite.empty());

  std::vector<CaseMetrics> seq(suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) seq[i] = suite[i].run();

  std::vector<CaseMetrics> par(suite.size());
  runner::parallel_for(suite.size(), 4,
                       [&](std::size_t i) { par[i] = suite[i].run(); });

  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(seq[i].hash, par[i].hash)
        << suite[i].experiment << " " << suite[i].config << " seed "
        << suite[i].seed;
    EXPECT_EQ(seq[i].events, par[i].events);
    EXPECT_EQ(seq[i].msgs, par[i].msgs);
  }
}

}  // namespace
}  // namespace ecfd
